// Extension experiment (beyond the paper): the algorithm comparison on a
// fourth circuit — the folded-cascode OTA — to check that MA-Opt's
// advantages generalize past the three published testbenches.
#include "exp_common.hpp"

int main(int argc, char** argv) {
  using namespace maopt;
  using namespace maopt::bench;
  const CliArgs args(argc, argv);
  ExperimentConfig config = ExperimentConfig::from_cli(args);
  if (config.csv_path.empty()) config.csv_path = "table_foldedcascode_trajectories.csv";

  ckt::FoldedCascodeOta problem;
  print_parameter_table(problem);

  auto summaries = run_comparison(problem, paper_roster(), config);
  print_table("Extension: folded-cascode OTA (" + std::to_string(config.runs) + " runs, " +
                  std::to_string(config.sims) + " sims)",
              "Min power (mW)", summaries);
  write_trajectories_csv(config.csv_path, summaries);
  return 0;
}
