// Reproduces Fig. 5: log10(average best FoM) versus simulation count for
// every algorithm, on the selected circuit(s). Emits CSV series plus an
// ASCII rendering. --circuit {ota,tia,ldo,all}.
#include "exp_common.hpp"

namespace {

using namespace maopt;
using namespace maopt::bench;

void run_circuit(const std::string& which, const ExperimentConfig& config) {
  std::unique_ptr<ckt::SizingProblem> problem;
  if (which == "ota") {
    problem = std::make_unique<ckt::TwoStageOta>();
  } else if (which == "tia") {
    problem = std::make_unique<ckt::ThreeStageTia>();
  } else {
    ckt::LdoTranProfile profile;
    if (!config.full) {
      profile.t_stop = 10e-6;
      profile.dt = 50e-9;
      profile.t_event = 1e-6;
    }
    problem = std::make_unique<ckt::LdoRegulator>(profile);
  }
  auto summaries = run_comparison(*problem, paper_roster(), config);
  std::printf("\n=== Fig. 5 analog: %s ===\n", problem->spec().name.c_str());
  print_ascii_fom_plot(summaries);
  write_trajectories_csv("fig5_" + which + ".csv", summaries);
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  ExperimentConfig config = ExperimentConfig::from_cli(args);
  // Fig. 5 is a trajectory plot: the reduced default keeps it cheap because
  // the three-circuit sweep repeats the table workloads.
  if (!args.has("runs") && !config.full) config.runs = 2;
  if (!args.has("sims") && !config.full) config.sims = 60;
  if (!args.has("init") && !config.full) config.init = 40;

  const std::string which = args.get("circuit", "all");
  if (which == "all") {
    run_circuit("ota", config);
    run_circuit("tia", config);
    run_circuit("ldo", config);
  } else {
    run_circuit(which, config);
  }
  return 0;
}
