// Ablation A1 (DESIGN.md): how does the number of actors N_act affect
// optimization quality and runtime at a fixed simulation budget?
// The paper fixes N_act = 3; this sweep justifies that choice.
// Default workload: the constrained-quadratic analytic problem (fast);
// --circuit ota runs the real OTA.
#include "exp_common.hpp"

int main(int argc, char** argv) {
  using namespace maopt;
  using namespace maopt::bench;
  const CliArgs args(argc, argv);
  ExperimentConfig config = ExperimentConfig::from_cli(args);
  if (!args.has("runs") && !config.full) config.runs = 2;
  if (!args.has("sims") && !config.full) config.sims = 50;
  if (!args.has("init") && !config.full) config.init = 25;

  std::unique_ptr<ckt::SizingProblem> problem;
  if (args.get("circuit", "analytic") == "ota")
    problem = std::make_unique<ckt::TwoStageOta>();
  else
    problem = std::make_unique<ckt::ConstrainedQuadratic>(12);

  std::vector<std::unique_ptr<core::Optimizer>> roster;
  for (const int n_act : {1, 2, 3, 4, 6}) {
    core::MaOptConfig cfg = core::MaOptConfig::ma_opt();
    cfg.num_actors = n_act;
    cfg.name = "Nact=" + std::to_string(n_act);
    roster.push_back(std::make_unique<core::MaOptimizer>(cfg));
  }
  auto summaries = run_comparison(*problem, std::move(roster), config);
  print_table("Ablation: number of actors (" + problem->spec().name + ")",
              "Min target", summaries);
  return 0;
}
