// Reproduces Table I (parameter ranges) and Table II (algorithm comparison)
// for the two-stage OTA. Default: reduced profile; --full for the paper's
// 10 runs x 200 simulations x 100 initial designs.
#include "exp_common.hpp"

int main(int argc, char** argv) {
  using namespace maopt;
  using namespace maopt::bench;
  const CliArgs args(argc, argv);
  ExperimentConfig config = ExperimentConfig::from_cli(args);
  if (config.csv_path.empty()) config.csv_path = "table_ota_trajectories.csv";

  ckt::TwoStageOta problem;
  print_parameter_table(problem);  // Table I

  auto summaries = run_comparison(problem, paper_roster(), config);
  print_table("Table II analog: two-stage OTA (" + std::to_string(config.runs) + " runs, " +
                  std::to_string(config.sims) + " sims)",
              "Min power (mW)", summaries);
  write_trajectories_csv(config.csv_path, summaries);
  return 0;
}
