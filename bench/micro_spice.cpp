// Microbenchmarks: the circuit-simulation substrate. One full OTA
// evaluation is the "SPICE simulation" unit the paper budgets 200 of.
#include <benchmark/benchmark.h>

#include "circuits/ldo_regulator.hpp"
#include "circuits/three_stage_tia.hpp"
#include "circuits/two_stage_ota.hpp"
#include "common/rng.hpp"
#include "spice/ac_analysis.hpp"
#include "spice/dc_analysis.hpp"
#include "spice/devices.hpp"
#include "spice/mosfet.hpp"
#include "spice/tran_analysis.hpp"

namespace {

using namespace maopt;
using namespace maopt::spice;

void build_cs_amp(Netlist& n) {
  const int vdd = n.node("vdd");
  const int in = n.node("in");
  const int out = n.node("out");
  n.add<VSource>(vdd, kGround, Waveform::dc(1.8));
  n.add<VSource>(in, kGround, Waveform::dc(0.7), 1.0);
  n.add<Resistor>(vdd, out, 5e3);
  n.add<Mosfet>(out, in, kGround, kGround, MosModel::nmos_180(), 20e-6, 1e-6);
  n.add<Capacitor>(out, kGround, 1e-12);
}

void BM_DcOperatingPoint(benchmark::State& state) {
  Netlist n;
  build_cs_amp(n);
  DcAnalysis dc;
  for (auto _ : state) benchmark::DoNotOptimize(dc.solve(n).converged);
}
BENCHMARK(BM_DcOperatingPoint);

void BM_AcSweep100Points(benchmark::State& state) {
  Netlist n;
  build_cs_amp(n);
  DcAnalysis dc;
  const auto op = dc.solve(n);
  AcAnalysis ac;
  const auto freqs = log_frequency_grid(1.0, 10e9, 10);
  for (auto _ : state) benchmark::DoNotOptimize(ac.run(n, op.x, freqs).solutions.size());
}
BENCHMARK(BM_AcSweep100Points);

void BM_Transient1kSteps(benchmark::State& state) {
  Netlist n;
  build_cs_amp(n);
  TranOptions opt;
  opt.t_stop = 1e-6;
  opt.dt = 1e-9;
  TranAnalysis tran(opt);
  for (auto _ : state) benchmark::DoNotOptimize(tran.run(n).converged);
}
BENCHMARK(BM_Transient1kSteps);

void BM_AcSweepMulti3Rhs(benchmark::State& state) {
  // Three excitations over one shared factorization per frequency — the
  // shape of the OTA's differential/common-mode/supply measurement trio.
  Netlist n;
  build_cs_amp(n);
  DcAnalysis dc;
  const auto op = dc.solve(n);
  AcAnalysis ac;
  const auto freqs = log_frequency_grid(1.0, 10e9, 10);
  CVec rhs;
  n.build_ac_rhs(rhs);
  const std::vector<CVec> excitations(3, rhs);
  for (auto _ : state)
    benchmark::DoNotOptimize(ac.run_multi(n, op.x, freqs, excitations).size());
}
BENCHMARK(BM_AcSweepMulti3Rhs);

void BM_OtaFullEvaluation(benchmark::State& state) {
  ckt::TwoStageOta p;
  Rng rng(1);
  const auto x = p.clip({1.0, 1.0, 1.0, 0.5, 0.5, 20, 10, 5, 40, 20, 2.0, 500, 1000, 4, 4, 4});
  for (auto _ : state) benchmark::DoNotOptimize(p.evaluate(x).simulation_ok);
}
BENCHMARK(BM_OtaFullEvaluation);

void BM_OtaSessionEvaluation(benchmark::State& state) {
  // Same design through a persistent EvalSession: benches, analysis
  // workspaces, and netlist preparation amortized across evaluations.
  ckt::TwoStageOta p;
  const auto x = p.clip({1.0, 1.0, 1.0, 0.5, 0.5, 20, 10, 5, 40, 20, 2.0, 500, 1000, 4, 4, 4});
  const auto session = p.make_session();
  benchmark::DoNotOptimize(session->evaluate(x).simulation_ok);  // warm-up build
  for (auto _ : state) benchmark::DoNotOptimize(session->evaluate(x).simulation_ok);
}
BENCHMARK(BM_OtaSessionEvaluation);

void BM_TiaFullEvaluation(benchmark::State& state) {
  ckt::ThreeStageTia p;
  const auto x = p.clip({0.4, 0.4, 0.4, 0.4, 0.4, 30, 30, 30, 5, 20, 20.0, 200, 2, 2, 2});
  for (auto _ : state) benchmark::DoNotOptimize(p.evaluate(x).simulation_ok);
}
BENCHMARK(BM_TiaFullEvaluation);

void BM_LdoFullEvaluation(benchmark::State& state) {
  ckt::LdoTranProfile prof;
  prof.t_stop = 10e-6;
  prof.dt = 50e-9;
  prof.t_event = 1e-6;
  ckt::LdoRegulator p(prof);
  const auto x = p.clip({1.0, 1.0, 1.0, 1.0, 0.5, 50, 20, 10, 20, 200, 20, 20, 500, 2, 4, 20});
  for (auto _ : state) benchmark::DoNotOptimize(p.evaluate(x).simulation_ok);
}
BENCHMARK(BM_LdoFullEvaluation);

}  // namespace

BENCHMARK_MAIN();
