// Microbenchmarks: the neural-network stack at the paper's architecture
// (two hidden layers x 100 units) — one critic minibatch step is the unit
// of cost that dominates MA-Opt's "runtime" rows.
#include <benchmark/benchmark.h>

#include "nn/adam.hpp"
#include "nn/mlp.hpp"

namespace {

using namespace maopt;
using namespace maopt::nn;

void BM_PaperCriticForward(benchmark::State& state) {
  Rng rng(1);
  Mlp net = Mlp::make_paper_net(32, 9, rng, false);  // 2d = 32 (16-param circuit)
  Mat x(static_cast<std::size_t>(state.range(0)), 32, 0.1);
  for (auto _ : state) benchmark::DoNotOptimize(net.forward(x));
}
BENCHMARK(BM_PaperCriticForward)->Arg(1)->Arg(64)->Arg(2000);

void BM_PaperCriticTrainStep(benchmark::State& state) {
  Rng rng(2);
  Mlp net = Mlp::make_paper_net(32, 9, rng, false);
  Adam opt(net.params(), {});
  Mat x(64, 32, 0.1), y(64, 9, 0.2), grad;
  for (auto _ : state) {
    const Mat pred = net.forward(x);
    benchmark::DoNotOptimize(mse_loss(pred, y, &grad));
    net.backward(grad);
    opt.step();
  }
}
BENCHMARK(BM_PaperCriticTrainStep);

void BM_PaperActorForward(benchmark::State& state) {
  Rng rng(3);
  Mlp net = Mlp::make_paper_net(16, 16, rng, true);
  Mat x(64, 16, 0.1);
  for (auto _ : state) benchmark::DoNotOptimize(net.forward(x));
}
BENCHMARK(BM_PaperActorForward);

void BM_InputGradient(benchmark::State& state) {
  Rng rng(4);
  Mlp net = Mlp::make_paper_net(32, 9, rng, false);
  Mat x(64, 32, 0.1), dy(64, 9, 1.0);
  net.forward(x);
  for (auto _ : state) benchmark::DoNotOptimize(net.input_gradient(dy));
}
BENCHMARK(BM_InputGradient);

void BM_MlpClone(benchmark::State& state) {
  Rng rng(5);
  Mlp net = Mlp::make_paper_net(32, 9, rng, false);
  for (auto _ : state) {
    Mlp copy = net;
    benchmark::DoNotOptimize(copy.num_parameters());
  }
}
BENCHMARK(BM_MlpClone);

}  // namespace

BENCHMARK_MAIN();
