// Microbenchmarks: the neural-network stack at the paper's architecture
// (two hidden layers x 100 units) — one critic minibatch step is the unit
// of cost that dominates MA-Opt's "runtime" rows.
#include <benchmark/benchmark.h>

#include "circuits/analytic_problems.hpp"
#include "core/critic.hpp"
#include "nn/adam.hpp"
#include "nn/mlp.hpp"

namespace {

using namespace maopt;
using namespace maopt::nn;

void BM_PaperCriticForward(benchmark::State& state) {
  Rng rng(1);
  Mlp net = Mlp::make_paper_net(32, 9, rng, false);  // 2d = 32 (16-param circuit)
  Mat x(static_cast<std::size_t>(state.range(0)), 32, 0.1);
  for (auto _ : state) benchmark::DoNotOptimize(net.forward(x));
}
BENCHMARK(BM_PaperCriticForward)->Arg(1)->Arg(64)->Arg(2000);

void BM_PaperCriticTrainStep(benchmark::State& state) {
  Rng rng(2);
  Mlp net = Mlp::make_paper_net(32, 9, rng, false);
  Adam opt(net.params(), {});
  Mat x(64, 32, 0.1), y(64, 9, 0.2), grad;
  for (auto _ : state) {
    const Mat pred = net.forward(x);
    benchmark::DoNotOptimize(mse_loss(pred, y, &grad));
    net.backward(grad);
    opt.step();
  }
}
BENCHMARK(BM_PaperCriticTrainStep);

void BM_PaperActorForward(benchmark::State& state) {
  Rng rng(3);
  Mlp net = Mlp::make_paper_net(16, 16, rng, true);
  Mat x(64, 16, 0.1);
  for (auto _ : state) benchmark::DoNotOptimize(net.forward(x));
}
BENCHMARK(BM_PaperActorForward);

void BM_InputGradient(benchmark::State& state) {
  Rng rng(4);
  Mlp net = Mlp::make_paper_net(32, 9, rng, false);
  Mat x(64, 32, 0.1), dy(64, 9, 1.0);
  net.forward(x);
  for (auto _ : state) benchmark::DoNotOptimize(net.input_gradient(dy));
}
BENCHMARK(BM_InputGradient);

void BM_MlpClone(benchmark::State& state) {
  Rng rng(5);
  Mlp net = Mlp::make_paper_net(32, 9, rng, false);
  for (auto _ : state) {
    Mlp copy = net;
    benchmark::DoNotOptimize(copy.num_parameters());
  }
}
BENCHMARK(BM_MlpClone);

// Full critic training round at the paper configuration (2 x 100 hidden,
// batch 32, 50 minibatch steps) on a 16-dim problem with 9 metrics — the
// per-iteration training cost in MA-Opt's runtime rows.
struct TrainRoundSetup {
  TrainRoundSetup()
      : problem(16), scaler(problem.lower_bounds(), problem.upper_bounds()) {
    Rng rng(6);
    for (int i = 0; i < 100; ++i) {
      core::SimRecord r;
      r.x = problem.random_design(rng);
      const auto m = problem.evaluate(r.x).metrics;
      r.metrics.assign(9, 0.0);
      for (std::size_t c = 0; c < m.size() && c < 9; ++c) r.metrics[c] = m[c];
      records.push_back(std::move(r));
    }
    config.hidden = {100, 100};
    config.batch_size = 32;
    config.steps_per_round = 50;
  }
  ckt::ConstrainedQuadratic problem;
  nn::RangeScaler scaler;
  std::vector<core::SimRecord> records;
  core::CriticConfig config;
};

void BM_CriticTrainRound(benchmark::State& state) {
  TrainRoundSetup setup;
  Rng crng(7), trng(8);
  core::Critic critic(16, 9, setup.config, crng);
  critic.fit_normalizer(setup.records);
  const core::PseudoSampleBatcher batcher(setup.records, setup.scaler);
  for (auto _ : state) benchmark::DoNotOptimize(critic.train_round(batcher, trng));
}
BENCHMARK(BM_CriticTrainRound);

// Arg = pool thread count; 4 members so the pooled path has work to spread.
void BM_CriticEnsembleTrainRound(benchmark::State& state) {
  TrainRoundSetup setup;
  Rng crng(9), trng(10);
  core::CriticEnsemble ens(4, 16, 9, setup.config, crng);
  ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  ens.fit_normalizer(setup.records, &pool);
  const core::PseudoSampleBatcher batcher(setup.records, setup.scaler);
  for (auto _ : state) benchmark::DoNotOptimize(ens.train_round(batcher, trng, &pool));
}
BENCHMARK(BM_CriticEnsembleTrainRound)->Arg(1)->Arg(4);

}  // namespace

BENCHMARK_MAIN();
