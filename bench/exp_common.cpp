#include "exp_common.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>

namespace maopt::bench {

std::vector<std::unique_ptr<core::Optimizer>> paper_roster() {
  std::vector<std::unique_ptr<core::Optimizer>> roster;
  roster.push_back(std::make_unique<gp::BoOptimizer>());
  roster.push_back(std::make_unique<core::MaOptimizer>(core::MaOptConfig::dnn_opt()));
  roster.push_back(std::make_unique<core::MaOptimizer>(core::MaOptConfig::ma_opt1()));
  roster.push_back(std::make_unique<core::MaOptimizer>(core::MaOptConfig::ma_opt2()));
  roster.push_back(std::make_unique<core::MaOptimizer>(core::MaOptConfig::ma_opt()));
  return roster;
}

std::vector<AlgoSummary> run_comparison(const ckt::SizingProblem& problem,
                                        std::vector<std::unique_ptr<core::Optimizer>> roster,
                                        const ExperimentConfig& config) {
  std::vector<AlgoSummary> summaries(roster.size());
  std::vector<std::vector<double>> final_foms(roster.size());
  std::vector<std::vector<std::vector<double>>> trajectories(roster.size());

  for (std::size_t a = 0; a < roster.size(); ++a) {
    summaries[a].name = roster[a]->name();
    summaries[a].runs = static_cast<int>(config.runs);
  }

  // Every run is observed through the unified telemetry path: the RunReport
  // supplies the per-phase split and failure/retry counters for the tables,
  // the optional JSONL sink records the full event stream of the comparison.
  obs::RunReport report;
  obs::MulticastObserver observer;
  observer.add(&report);
  std::unique_ptr<obs::JsonlObserver> jsonl;
  if (!config.jsonl_path.empty()) {
    jsonl = std::make_unique<obs::JsonlObserver>(config.jsonl_path);
    observer.add(jsonl.get());
  }

  for (std::size_t run = 0; run < config.runs; ++run) {
    const std::uint64_t seed = config.seed0 + run;
    // Shared X_init for every method (paper protocol).
    Rng init_rng(derive_seed(seed, 0x1217));
    const auto initial = core::sample_initial_set(problem, config.init, init_rng);
    std::vector<linalg::Vec> rows;
    rows.reserve(initial.size());
    for (const auto& r : initial) rows.push_back(r.metrics);
    const auto fom = ckt::FomEvaluator::fit_reference(problem, rows);

    core::RunOptions options;
    options.simulation_budget = config.sims;
    options.observer = &observer;
    for (std::size_t a = 0; a < roster.size(); ++a) {
      log_info() << problem.spec().name << " run " << (run + 1) << "/" << config.runs << " "
                 << roster[a]->name();
      options.seed = seed;
      const core::RunHistory h = roster[a]->run(problem, initial, fom, options);
      auto& s = summaries[a];
      const core::SimRecord* bf = h.best_feasible();
      if (bf != nullptr) {
        ++s.successes;
        if (std::isnan(s.min_target) || bf->metrics[0] < s.min_target)
          s.min_target = bf->metrics[0];
      }
      final_foms[a].push_back(h.best_fom_after.back());
      trajectories[a].push_back(h.best_fom_after);
      const double runs_d = static_cast<double>(config.runs);
      s.avg_runtime_s += h.wall_seconds / runs_d;
      s.avg_train_s += h.train_seconds / runs_d;
      s.avg_sim_s += h.sim_seconds / runs_d;
      s.avg_ns_s += h.ns_seconds / runs_d;
      const obs::RunReport::Row& row = report.rows().back();
      s.avg_critic_s += row.phase(obs::Phase::CriticTrain) / runs_d;
      s.avg_actor_s += row.phase(obs::Phase::ActorTrain) / runs_d;
      s.avg_elite_s += row.phase(obs::Phase::EliteUpdate) / runs_d;
      s.failures += row.counters.failures;
      s.retries += row.counters.retries;
    }
  }

  for (std::size_t a = 0; a < roster.size(); ++a) {
    summaries[a].log10_avg_fom = std::log10(std::max(mean(final_foms[a]), 1e-12));
    summaries[a].avg_trajectory = rowwise_mean(trajectories[a]);
  }
  return summaries;
}

void print_table(const std::string& title, const std::string& target_label,
                 const std::vector<AlgoSummary>& summaries) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("%-28s", "Algorithm");
  for (const auto& s : summaries) std::printf("%12s", s.name.c_str());
  std::printf("\n%-28s", "Success rate");
  for (const auto& s : summaries) {
    char buf[16];
    std::snprintf(buf, sizeof buf, "%d/%d", s.successes, s.runs);
    std::printf("%12s", buf);
  }
  std::printf("\n%-28s", target_label.c_str());
  for (const auto& s : summaries) {
    if (std::isnan(s.min_target))
      std::printf("%12s", "-");
    else
      std::printf("%12.3f", s.min_target);
  }
  std::printf("\n%-28s", "log10(average FoM)");
  for (const auto& s : summaries) std::printf("%12.2f", s.log10_avg_fom);
  std::printf("\n%-28s", "Total runtime (s)");
  for (const auto& s : summaries) std::printf("%12.1f", s.avg_runtime_s);
  std::printf("\n%-28s", "  train (s)");
  for (const auto& s : summaries) std::printf("%12.1f", s.avg_train_s);
  std::printf("\n%-28s", "    critic train (s)");
  for (const auto& s : summaries) std::printf("%12.2f", s.avg_critic_s);
  std::printf("\n%-28s", "    actor train (s)");
  for (const auto& s : summaries) std::printf("%12.2f", s.avg_actor_s);
  std::printf("\n%-28s", "  simulate (s)");
  for (const auto& s : summaries) std::printf("%12.1f", s.avg_sim_s);
  std::printf("\n%-28s", "  near-sampling (s)");
  for (const auto& s : summaries) std::printf("%12.2f", s.avg_ns_s);
  std::printf("\n%-28s", "  elite update (s)");
  for (const auto& s : summaries) std::printf("%12.2f", s.avg_elite_s);
  std::printf("\n%-28s", "Failed simulations");
  for (const auto& s : summaries) std::printf("%12llu", static_cast<unsigned long long>(s.failures));
  std::printf("\n%-28s", "Simulator retries");
  for (const auto& s : summaries) std::printf("%12llu", static_cast<unsigned long long>(s.retries));
  std::printf("\n");
}

void print_parameter_table(const ckt::SizingProblem& problem) {
  std::printf("\n--- Design parameters: %s (%zu-dim) ---\n", problem.spec().name.c_str(),
              problem.dim());
  const auto names = problem.parameter_names();
  std::printf("%-8s%14s%14s%10s\n", "Param", "Lower", "Upper", "Integer");
  for (std::size_t i = 0; i < problem.dim(); ++i)
    std::printf("%-8s%14g%14g%10s\n", names[i].c_str(), problem.lower_bounds()[i],
                problem.upper_bounds()[i], problem.integer_mask()[i] ? "yes" : "no");
  std::printf("Target: minimize %s (%s); %zu constraints:\n", problem.spec().target_name.c_str(),
              problem.spec().target_unit.c_str(), problem.spec().constraints.size());
  for (const auto& c : problem.spec().constraints)
    std::printf("  %-16s %s %g %s\n", c.name.c_str(),
                c.kind == ckt::ConstraintKind::GreaterEqual ? ">=" : "<=", c.bound,
                c.unit.c_str());
}

void write_trajectories_csv(const std::string& path, const std::vector<AlgoSummary>& summaries) {
  if (path.empty()) return;
  std::ofstream out(path);
  out << "simulation";
  for (const auto& s : summaries) out << "," << s.name;
  out << "\n";
  std::size_t n = 0;
  for (const auto& s : summaries) n = std::max(n, s.avg_trajectory.size());
  for (std::size_t i = 0; i < n; ++i) {
    out << (i + 1);
    for (const auto& s : summaries) {
      out << ",";
      if (i < s.avg_trajectory.size())
        out << std::log10(std::max(s.avg_trajectory[i], 1e-12));
    }
    out << "\n";
  }
  std::printf("wrote %s\n", path.c_str());
}

void print_ascii_fom_plot(const std::vector<AlgoSummary>& summaries) {
  // Rows: log10(FoM) bins; columns: simulation index downsampled to 72 cols.
  constexpr int kCols = 72, kRows = 16;
  std::size_t n = 0;
  double lo = 1e300, hi = -1e300;
  for (const auto& s : summaries) {
    n = std::max(n, s.avg_trajectory.size());
    for (const double v : s.avg_trajectory) {
      const double l = std::log10(std::max(v, 1e-12));
      lo = std::min(lo, l);
      hi = std::max(hi, l);
    }
  }
  if (n == 0 || !(hi > lo)) return;
  std::vector<std::string> canvas(kRows, std::string(kCols, ' '));
  const char* marks = "BD12M";  // BO, DNN-Opt, MA-Opt1, MA-Opt2, MA-Opt
  for (std::size_t a = 0; a < summaries.size(); ++a) {
    const auto& t = summaries[a].avg_trajectory;
    for (int c = 0; c < kCols; ++c) {
      const std::size_t i = std::min(t.size() - 1, t.size() * static_cast<std::size_t>(c) / kCols);
      const double l = std::log10(std::max(t[i], 1e-12));
      int r = static_cast<int>((hi - l) / (hi - lo) * (kRows - 1));
      r = std::clamp(r, 0, kRows - 1);
      canvas[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] =
          marks[a % 5];
    }
  }
  std::printf("\nlog10(average best FoM) vs simulations  [B=BO D=DNN-Opt 1=MA-Opt1 2=MA-Opt2 M=MA-Opt]\n");
  std::printf("%6.2f +%s\n", hi, std::string(kCols, '-').c_str());
  for (int r = 0; r < kRows; ++r) std::printf("       |%s\n", canvas[static_cast<std::size_t>(r)].c_str());
  std::printf("%6.2f +%s\n", lo, std::string(kCols, '-').c_str());
}

void write_bench_json(const std::string& path, const std::vector<BenchMetric>& metrics) {
  if (path.empty()) return;
  std::ofstream out(path);
  out << "{\n";
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    // Metric names/units are code-controlled identifiers; escape the two
    // characters that could still break the quoting.
    auto escaped = [](const std::string& s) {
      std::string e;
      for (const char c : s) {
        if (c == '"' || c == '\\') e.push_back('\\');
        e.push_back(c);
      }
      return e;
    };
    char value[64];
    std::snprintf(value, sizeof value, "%.6g", metrics[i].value);
    out << "  \"" << escaped(metrics[i].name) << "\": {\"value\": " << value << ", \"unit\": \""
        << escaped(metrics[i].unit) << "\"}";
    if (i + 1 < metrics.size()) out << ",";
    out << "\n";
  }
  out << "}\n";
  if (!out) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return;
  }
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace maopt::bench
