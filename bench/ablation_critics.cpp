// Ablation A3: critic ensembles. Section II-B of the paper notes that
// "using multiple regression models for circuit simulation does improve
// optimization, but consumes more memory resources than using one critic
// network" — and therefore ships a single critic. This bench quantifies
// both sides of that trade-off: quality vs parameter count (memory) and
// training time.
#include "core/critic.hpp"
#include "exp_common.hpp"

int main(int argc, char** argv) {
  using namespace maopt;
  using namespace maopt::bench;
  const CliArgs args(argc, argv);
  ExperimentConfig config = ExperimentConfig::from_cli(args);
  if (!args.has("runs") && !config.full) config.runs = 2;
  if (!args.has("sims") && !config.full) config.sims = 50;
  if (!args.has("init") && !config.full) config.init = 25;

  std::unique_ptr<ckt::SizingProblem> problem;
  if (args.get("circuit", "analytic") == "ota")
    problem = std::make_unique<ckt::TwoStageOta>();
  else
    problem = std::make_unique<ckt::ConstrainedQuadratic>(12);

  std::vector<std::unique_ptr<core::Optimizer>> roster;
  for (const int n_critics : {1, 2, 4}) {
    core::MaOptConfig cfg = core::MaOptConfig::ma_opt();
    cfg.num_critics = n_critics;
    cfg.name = "Ncritic=" + std::to_string(n_critics);
    roster.push_back(std::make_unique<core::MaOptimizer>(cfg));
  }
  auto summaries = run_comparison(*problem, std::move(roster), config);
  print_table("Ablation: critic ensemble size", "Min target", summaries);

  // Memory axis: parameters per ensemble at this problem's dimensions.
  Rng rng(0);
  for (const int n_critics : {1, 2, 4}) {
    core::CriticEnsemble ens(static_cast<std::size_t>(n_critics), problem->dim(),
                             problem->num_metrics(), core::CriticConfig{}, rng);
    std::printf("Ncritic=%d: %zu trainable parameters (%.1f KiB as doubles)\n", n_critics,
                ens.num_parameters(), static_cast<double>(ens.num_parameters()) * 8.0 / 1024.0);
  }
  return 0;
}
