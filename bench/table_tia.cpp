// Reproduces Table III (parameter ranges) and Table IV (algorithm
// comparison) for the three-stage TIA.
#include "exp_common.hpp"

int main(int argc, char** argv) {
  using namespace maopt;
  using namespace maopt::bench;
  const CliArgs args(argc, argv);
  ExperimentConfig config = ExperimentConfig::from_cli(args);
  if (config.csv_path.empty()) config.csv_path = "table_tia_trajectories.csv";

  ckt::ThreeStageTia problem;
  print_parameter_table(problem);  // Table III

  auto summaries = run_comparison(problem, paper_roster(), config);
  print_table("Table IV analog: three-stage TIA (" + std::to_string(config.runs) + " runs, " +
                  std::to_string(config.sims) + " sims)",
              "Min power (mW)", summaries);
  write_trajectories_csv(config.csv_path, summaries);
  return 0;
}
