// Section III-C runtime claims, reproduced directly:
//   1. a near-sampling iteration costs less than an actor-critic iteration
//      (prediction over N_samples designs vs critic + actor training), and
//   2. within the same simulation budget MA-Opt therefore spends less total
//      optimization time than MA-Opt^2 while finding better designs.
#include "exp_common.hpp"

int main(int argc, char** argv) {
  using namespace maopt;
  using namespace maopt::bench;
  const CliArgs args(argc, argv);
  ExperimentConfig config = ExperimentConfig::from_cli(args);
  if (!args.has("runs") && !config.full) config.runs = 2;
  if (!args.has("sims") && !config.full) config.sims = 50;
  if (!args.has("init") && !config.full) config.init = 25;

  ckt::ConstrainedQuadratic problem(12);
  std::vector<std::unique_ptr<core::Optimizer>> roster;
  roster.push_back(std::make_unique<core::MaOptimizer>(core::MaOptConfig::dnn_opt()));
  roster.push_back(std::make_unique<core::MaOptimizer>(core::MaOptConfig::ma_opt2()));
  roster.push_back(std::make_unique<core::MaOptimizer>(core::MaOptConfig::ma_opt()));
  auto summaries = run_comparison(problem, std::move(roster), config);
  print_table("Runtime decomposition (constrained quadratic)", "Min target", summaries);

  // Per-event costs for the Section III-C argument.
  std::printf("\nPer-simulation optimization-time (train+NS)/sims:\n");
  for (const auto& s : summaries) {
    const double per_sim = (s.avg_train_s + s.avg_ns_s) / static_cast<double>(config.sims);
    std::printf("  %-10s %.4f s/sim  (train %.2f s, near-sampling %.3f s)\n", s.name.c_str(),
                per_sim, s.avg_train_s, s.avg_ns_s);
  }
  std::printf("\nExpected shape: MA-Opt spends less optimization time per simulation than\n"
              "MA-Opt2 because every T_NS-th batch of work is a cheap near-sampling scan.\n");
  return 0;
}
