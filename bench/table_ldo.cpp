// Reproduces Table V (parameter ranges) and Table VI (algorithm comparison)
// for the LDO regulator. The default profile also coarsens the four settling
// transients (the dominant simulation cost); --full restores the fine grid.
#include "exp_common.hpp"

int main(int argc, char** argv) {
  using namespace maopt;
  using namespace maopt::bench;
  const CliArgs args(argc, argv);
  ExperimentConfig config = ExperimentConfig::from_cli(args);
  if (config.csv_path.empty()) config.csv_path = "table_ldo_trajectories.csv";

  ckt::LdoTranProfile profile;  // paper-grade grid
  if (!config.full) {
    profile.t_stop = 10e-6;
    profile.dt = 50e-9;
    profile.t_event = 1e-6;
  }
  ckt::LdoRegulator problem(profile);
  print_parameter_table(problem);  // Table V

  auto summaries = run_comparison(problem, paper_roster(), config);
  print_table("Table VI analog: LDO regulator (" + std::to_string(config.runs) + " runs, " +
                  std::to_string(config.sims) + " sims)",
              "Min Q.C. (mA)", summaries);
  write_trajectories_csv(config.csv_path, summaries);
  return 0;
}
