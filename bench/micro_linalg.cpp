// Microbenchmarks: dense linear algebra used by the MNA solver (LU) and the
// GP baseline (Cholesky) — the O(N^3) growth here is the paper's stated
// reason BO scales poorly with simulation count.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/gemm.hpp"
#include "linalg/lu.hpp"

namespace {

using namespace maopt;
using namespace maopt::linalg;

Mat random_dd_matrix(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Mat a(n, n);
  for (auto& v : a.data()) v = rng.uniform(-1, 1);
  for (std::size_t i = 0; i < n; ++i) a(i, i) += static_cast<double>(n);
  return a;
}

Mat random_spd(std::size_t n, std::uint64_t seed) {
  const Mat b = random_dd_matrix(n, seed);
  Mat a = matmul(b, b.transposed());
  for (std::size_t i = 0; i < n; ++i) a(i, i) += 1.0;
  return a;
}

void BM_LuFactorSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Mat a = random_dd_matrix(n, 1);
  Vec b(n, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lu_solve(a, b));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LuFactorSolve)->RangeMultiplier(2)->Range(8, 128)->Complexity(benchmark::oNCubed);

void BM_ComplexLuSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  CMat a(n, n);
  for (auto& v : a.data()) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  for (std::size_t i = 0; i < n; ++i) a(i, i) += static_cast<double>(n);
  CVec b(n, {1.0, 0.0});
  for (auto _ : state) benchmark::DoNotOptimize(lu_solve(a, b));
}
BENCHMARK(BM_ComplexLuSolve)->Arg(16)->Arg(32);

void BM_CholeskyFactor(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Mat a = random_spd(n, 3);
  for (auto _ : state) {
    Cholesky chol(a);
    benchmark::DoNotOptimize(chol.log_determinant());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CholeskyFactor)->RangeMultiplier(2)->Range(32, 256)->Complexity(benchmark::oNCubed);

void BM_Matmul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Mat a = random_dd_matrix(n, 4);
  const Mat b = random_dd_matrix(n, 5);
  for (auto _ : state) benchmark::DoNotOptimize(matmul(a, b));
}
BENCHMARK(BM_Matmul)->Arg(64)->Arg(128);

void BM_MatmulBlocked(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Mat a = random_dd_matrix(n, 4);
  const Mat b = random_dd_matrix(n, 5);
  Mat c;
  for (auto _ : state) {
    matmul_blocked(a, b, c);
    benchmark::DoNotOptimize(c.data().data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * static_cast<double>(n) * static_cast<double>(n) * static_cast<double>(n) * 1e-9,
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_MatmulBlocked)->Arg(64)->Arg(128)->Arg(256);

void BM_MatmulParallel(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Mat a = random_dd_matrix(n, 4);
  const Mat b = random_dd_matrix(n, 5);
  ThreadPool pool(static_cast<std::size_t>(state.range(1)));
  Mat c;
  for (auto _ : state) {
    matmul_parallel(a, b, c, pool, /*min_flops=*/0.0);
    benchmark::DoNotOptimize(c.data().data());
  }
}
BENCHMARK(BM_MatmulParallel)->Args({256, 2})->Args({256, 4});

}  // namespace

BENCHMARK_MAIN();
