// Extended-baselines table (beyond the paper): adds the related-work
// population methods the paper cites but does not run — PSO [7] and DE [8]
// — plus a modernized BO (log-FoM + ARD) next to the vanilla BO baseline,
// against DNN-Opt and MA-Opt. Default workload: the two-stage OTA.
#include "core/de.hpp"
#include "core/pso.hpp"
#include "core/random_search.hpp"
#include "exp_common.hpp"

int main(int argc, char** argv) {
  using namespace maopt;
  using namespace maopt::bench;
  const CliArgs args(argc, argv);
  ExperimentConfig config = ExperimentConfig::from_cli(args);

  std::unique_ptr<ckt::SizingProblem> problem;
  const std::string which = args.get("circuit", "ota");
  if (which == "tia")
    problem = std::make_unique<ckt::ThreeStageTia>();
  else if (which == "analytic")
    problem = std::make_unique<ckt::ConstrainedQuadratic>(12);
  else
    problem = std::make_unique<ckt::TwoStageOta>();

  std::vector<std::unique_ptr<core::Optimizer>> roster;
  roster.push_back(std::make_unique<core::RandomSearch>());
  roster.push_back(std::make_unique<core::PsoOptimizer>());
  roster.push_back(std::make_unique<core::DeOptimizer>());
  roster.push_back(std::make_unique<gp::BoOptimizer>());
  roster.push_back(std::make_unique<gp::BoOptimizer>(gp::BoConfig::tuned()));
  roster.push_back(std::make_unique<core::MaOptimizer>(core::MaOptConfig::dnn_opt()));
  roster.push_back(std::make_unique<core::MaOptimizer>(core::MaOptConfig::ma_opt()));

  auto summaries = run_comparison(*problem, std::move(roster), config);
  print_table("Extended baselines (" + problem->spec().name + ")", "Min target", summaries);
  return 0;
}
