// Microbenchmarks: MA-Opt building blocks — pseudo-sample batching, one
// critic training round, one actor training round, and a full near-sampling
// scan at the paper's N_samples = 2000. These are the quantities behind the
// Section III-C claim that near-sampling is cheaper than actor training.
#include <benchmark/benchmark.h>

#include "circuits/analytic_problems.hpp"
#include "core/actor.hpp"
#include "core/critic.hpp"
#include "core/near_sampling.hpp"

namespace {

using namespace maopt;
using namespace maopt::core;

struct Workbench {
  ckt::ConstrainedQuadratic problem{16};
  nn::RangeScaler scaler{problem.lower_bounds(), problem.upper_bounds()};
  ckt::FomEvaluator fom{problem, 1.0};
  std::vector<SimRecord> records;
  CriticConfig critic_config;

  Workbench() {
    Rng rng(1);
    for (int i = 0; i < 100; ++i) {
      SimRecord r;
      r.x = problem.random_design(rng);
      r.metrics = problem.evaluate(r.x).metrics;
      records.push_back(std::move(r));
    }
  }
};

void BM_PseudoSampleBatch(benchmark::State& state) {
  Workbench w;
  PseudoSampleBatcher batcher(w.records, w.scaler);
  Rng rng(2);
  nn::Mat x, y;
  for (auto _ : state) {
    batcher.sample(64, rng, x, y);
    benchmark::DoNotOptimize(x.data().data());
  }
}
BENCHMARK(BM_PseudoSampleBatch);

void BM_CriticTrainRound(benchmark::State& state) {
  Workbench w;
  Rng rng(3);
  Critic critic(16, 3, w.critic_config, rng);
  critic.fit_normalizer(w.records);
  PseudoSampleBatcher batcher(w.records, w.scaler);
  Rng trng(4);
  for (auto _ : state) benchmark::DoNotOptimize(critic.train_round(batcher, trng));
}
BENCHMARK(BM_CriticTrainRound);

void BM_ActorTrainRound(benchmark::State& state) {
  Workbench w;
  Rng rng(5);
  Critic critic(16, 3, w.critic_config, rng);
  critic.fit_normalizer(w.records);
  PseudoSampleBatcher batcher(w.records, w.scaler);
  Rng trng(6);
  critic.train_round(batcher, trng);
  ActorConfig acfg;
  Actor actor(16, acfg, rng);
  const linalg::Vec lb(16, -1.0), ub(16, 1.0);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        actor.train_round(critic, w.fom, w.records, w.scaler, lb, ub, trng));
}
BENCHMARK(BM_ActorTrainRound);

void BM_NearSamplingScan2000(benchmark::State& state) {
  Workbench w;
  Rng rng(7);
  Critic critic(16, 3, w.critic_config, rng);
  critic.fit_normalizer(w.records);
  PseudoSampleBatcher batcher(w.records, w.scaler);
  Rng trng(8);
  critic.train_round(batcher, trng);
  NearSamplingConfig ns;  // paper: 2000 samples
  const linalg::Vec x_opt(16, 0.4);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        near_sampling_candidate(w.problem, w.fom, critic, w.scaler, x_opt, ns, trng));
}
BENCHMARK(BM_NearSamplingScan2000);

void BM_EliteSetInsert(benchmark::State& state) {
  EliteSet es(20);
  Rng rng(9);
  linalg::Vec x(16, 0.5);
  for (auto _ : state) benchmark::DoNotOptimize(es.try_insert(x, rng.uniform()));
}
BENCHMARK(BM_EliteSetInsert);

}  // namespace

BENCHMARK_MAIN();
