// Ablation A4: the Eq. 2 ambiguity. Read literally, the paper's FoM
// penalizes *satisfied* constraints through the absolute value
// min(1, w|f-c|/|c|); DESIGN.md argues the intended semantics penalize only
// violations (as in DNN-Opt). This bench runs MA-Opt under both readings:
// the literal FoM cannot even rank feasible designs above near-misses, so
// optimization quality and success rates collapse — evidence for the
// corrected reading used everywhere else in this repo.
#include <cmath>

#include "exp_common.hpp"

int main(int argc, char** argv) {
  using namespace maopt;
  using namespace maopt::bench;
  const CliArgs args(argc, argv);
  ExperimentConfig config = ExperimentConfig::from_cli(args);
  if (!args.has("runs") && !config.full) config.runs = 2;
  if (!args.has("sims") && !config.full) config.sims = 50;
  if (!args.has("init") && !config.full) config.init = 25;

  // Default workload: the OTA. The literal reading only bites when satisfied
  // constraints sit far from their bounds (dc_gain 90 dB vs a 60 dB bound
  // incurs a clamped literal penalty of 0.5) — the analytic problem's
  // optimum hugs its bounds, so both readings coincide there.
  std::unique_ptr<ckt::SizingProblem> problem_holder;
  if (args.get("circuit", "ota") == "analytic")
    problem_holder = std::make_unique<ckt::ConstrainedQuadratic>(12);
  else
    problem_holder = std::make_unique<ckt::TwoStageOta>();
  ckt::SizingProblem& problem = *problem_holder;

  for (const auto semantics : {ckt::FomSemantics::Corrected, ckt::FomSemantics::LiteralEq2}) {
    const char* label =
        semantics == ckt::FomSemantics::Corrected ? "corrected (violations only)" : "literal Eq. 2";
    int successes = 0;
    double fom_corrected_sum = 0.0;  // always scored with the corrected FoM for comparability
    for (std::size_t run = 0; run < config.runs; ++run) {
      Rng rng(derive_seed(config.seed0 + run, 0x1217));
      auto initial = core::sample_initial_set(problem, config.init, rng);
      std::vector<linalg::Vec> rows;
      for (const auto& r : initial) rows.push_back(r.metrics);
      const double ref = ckt::FomEvaluator::fit_reference(problem, rows).f0_reference();
      const ckt::FomEvaluator train_fom(problem, ref, semantics);
      const ckt::FomEvaluator score_fom(problem, ref, ckt::FomSemantics::Corrected);

      core::MaOptimizer opt(core::MaOptConfig::ma_opt());
      const auto h = opt.run(problem, initial, train_fom, {.seed = config.seed0 + run, .simulation_budget = config.sims});
      if (h.best_feasible() != nullptr) ++successes;
      double best = 1e300;
      for (const auto& r : h.records) best = std::min(best, score_fom(r.metrics));
      fom_corrected_sum += best;
    }
    std::printf("%-30s success %d/%zu, avg best corrected-FoM = %.5g (log10 %.2f)\n", label,
                successes, config.runs, fom_corrected_sum / config.runs,
                std::log10(std::max(fom_corrected_sum / config.runs, 1e-12)));
  }
  std::printf(
      "\nNote: as an *optimization* signal the two readings perform comparably at\n"
      "small budgets (the elite ranking is dominated by the unclamped terms).\n"
      "The decisive argument for the corrected reading is the *reported metric*:\n"
      "under the literal Eq. 2 a design meeting every spec still carries O(1)\n"
      "clamped penalties per constraint, so the paper's Fig. 5 values of\n"
      "log10(FoM) ~ -3 are unreachable — they are only possible when satisfied\n"
      "constraints contribute zero.\n");
  return 0;
}
