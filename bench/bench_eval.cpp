// Evaluation-service benchmark (writes BENCH_eval.json): measures what the
// service is for — cache hits replacing simulations and batches replacing
// serial point calls. The inner problem is an analytic quadratic wrapped in a
// fixed synthetic delay, standing in for a SPICE run whose cost dwarfs the
// service overhead (the regime the paper's Section III-C runtime split puts
// real sizing runs in).
//
// Rows (service, synthetic simulator cost):
//   cold_sims_per_s    point path, empty cache (every request simulates)
//   warm_sims_per_s    point path, same designs again (every request hits)
//   warm_speedup       warm / cold
//   point_sims_per_s   serial evaluate() over fresh designs
//   batch_sims_per_s   one evaluate_batch() over the same count of fresh designs
//   batch_speedup      batch / point
//
// Rows (fault-tolerant variation sweeps, synthetic simulator cost): each
// optimizer-visible evaluation of a RobustProblem/YieldProblem fans out to
// |variants| simulations, so corner and Monte Carlo workloads are where
// batching pays the most.
//   sweep_serial_sims_per_s   5-corner RobustProblem over the serial sweep
//   sweep_batched_sims_per_s  same corners fanned through EvalService
//   sweep_batch_speedup       batched / serial
//   mc_serial_sims_per_s      64-instance YieldProblem, serial sweep
//   mc_batched_sims_per_s     same instances fanned through EvalService
//   mc_batch_speedup          batched / serial
//
// Rows (optimization-as-a-service daemon, synthetic simulator cost): four
// Random-search jobs — one per tenant — over one shared worker pool, run
// back-to-back vs concurrently. Random search is point-path (one simulation
// in flight per job), so the serial baseline is genuinely serial and the
// concurrent aggregate measures the daemon's job multiplexing.
//   daemon_serial_sims_per_s      4 jobs submitted and awaited one at a time
//   daemon_concurrent_sims_per_s  the same 4 jobs in flight together
//   daemon_concurrency_speedup    concurrent / serial (>= 3x acceptance bar)
//   daemon_fairness_ratio         worst max/min granted-sims ratio across the
//                                 equal-weight tenants, sampled while all
//                                 jobs contend (<= 2x acceptance bar)
//
// Rows (raw in-tree simulator, real TwoStageOta — per-layer hot-path record;
// each is the best of several interleaved rounds so one noisy round cannot
// fake a regression or an improvement):
//   raw_point_sims_per_s      fresh evaluate() per design (cold benches)
//   raw_session_sims_per_s    one persistent EvalSession (amortized benches)
//   raw_session_speedup       session / point
//   raw_batch_sims_per_s      EvalService::evaluate_batch over the session pool
//   newton_iterations_per_solve  DC-sweep Newton effort (workspace counters)
//   lu_factor_solve_per_s     assemble-factor-solve cycles on the MNA size
//   lu_resolve_per_s          back-substitutions against a held factorization
//   lu_reuse_speedup          resolve / factor+solve (the factor/solve split)
//   ac_sweep_points_per_s     hot-path AC points (G/C split + SIMD combine)
//   ac_multi_rhs_speedup      3-excitation run_multi vs 3 independent runs
//
// Flags:
//   --smoke        tiny sizes (CTest wiring; a few seconds)
//   --threads N    service batch pool size (default 4)
//   --designs N    designs per measurement (default 128; smoke 24)
//   --sim-us N     synthetic simulation cost in microseconds (default 500; smoke 100)
//   --raw-evals N  raw-simulator evaluations per round (default 24; smoke 4)
//   --json PATH    output path (default BENCH_eval.json)
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <thread>
#include <vector>

#include "exp_common.hpp"
#include "spice/ac_analysis.hpp"
#include "spice/dc_analysis.hpp"
#include "spice/devices.hpp"
#include "spice/mosfet.hpp"

namespace {

using namespace maopt;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Adds a fixed delay to every evaluation — a stand-in simulator cost. It
/// claims process-variation support so the sweep benches can fan corners and
/// Monte Carlo instances over it; the synthetic cost model itself is
/// variation-independent (only throughput is measured).
class SlowProblem final : public ckt::SizingProblem {
 public:
  SlowProblem(const ckt::SizingProblem& inner, int micros) : inner_(&inner), micros_(micros) {}

  const ckt::ProblemSpec& spec() const override { return inner_->spec(); }
  std::size_t dim() const override { return inner_->dim(); }
  const linalg::Vec& lower_bounds() const override { return inner_->lower_bounds(); }
  const linalg::Vec& upper_bounds() const override { return inner_->upper_bounds(); }
  const std::vector<bool>& integer_mask() const override { return inner_->integer_mask(); }
  std::vector<std::string> parameter_names() const override { return inner_->parameter_names(); }
  ckt::EvalResult evaluate(const linalg::Vec& x) const override {
    std::this_thread::sleep_for(std::chrono::microseconds(micros_));
    return inner_->evaluate(x);
  }
  bool supports_process_variation() const override { return true; }
  ckt::EvalResult evaluate_at(const linalg::Vec& x,
                              const ckt::ProcessVariation& /*pv*/) const override {
    std::this_thread::sleep_for(std::chrono::microseconds(micros_));
    return inner_->evaluate(x);
  }

 private:
  const ckt::SizingProblem* inner_;
  int micros_;
};

std::vector<linalg::Vec> make_designs(const ckt::SizingProblem& problem, std::size_t n,
                                      std::uint64_t seed) {
  Rng rng(seed);
  std::vector<linalg::Vec> designs;
  designs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) designs.push_back(problem.random_design(rng));
  return designs;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const bool smoke = args.get_bool("smoke");
  const auto threads =
      std::max<std::size_t>(1, static_cast<std::size_t>(args.get_int("threads", 4)));
  const auto designs_n = static_cast<std::size_t>(args.get_int("designs", smoke ? 24 : 128));
  const int sim_us = static_cast<int>(args.get_int("sim-us", smoke ? 100 : 500));
  const std::string json_path = args.get("json", "BENCH_eval.json");

  ckt::ConstrainedQuadratic quad(16);
  SlowProblem problem(quad, sim_us);
  std::vector<bench::BenchMetric> metrics;

  const auto cache_dir = std::filesystem::temp_directory_path() / "maopt_bench_eval_cache";
  std::filesystem::remove_all(cache_dir);

  // --- 1) cold vs warm point-path throughput over a persistent journal ---
  double cold_rate = 0.0;
  {
    eval::EvalServiceConfig config;
    config.num_threads = threads;
    config.cache_dir = cache_dir.string();
    const auto designs = make_designs(problem, designs_n, 11);

    double cold_s = 0.0;
    {
      eval::EvalService service(problem, config);
      const auto t0 = Clock::now();
      for (const auto& x : designs) service.evaluate(x);
      cold_s = seconds_since(t0);
    }
    double warm_s = 0.0;
    {
      eval::EvalService service(problem, config);  // fresh process stand-in, same journal
      const auto t0 = Clock::now();
      for (const auto& x : designs) service.evaluate(x);
      warm_s = seconds_since(t0);
      const auto c = service.counters();
      if (c.hits != designs.size())
        std::fprintf(stderr, "warning: warm pass expected %zu hits, got %llu\n", designs.size(),
                     static_cast<unsigned long long>(c.hits));
    }
    cold_rate = static_cast<double>(designs.size()) / cold_s;
    const double warm_rate = static_cast<double>(designs.size()) / warm_s;
    std::printf("point path, %zu designs @ %d us: cold %.0f sims/s, warm %.0f sims/s (%.1fx)\n",
                designs_n, sim_us, cold_rate, warm_rate, warm_rate / cold_rate);
    metrics.push_back({"cold_sims_per_s", cold_rate, "sims/s"});
    metrics.push_back({"warm_sims_per_s", warm_rate, "sims/s"});
    metrics.push_back({"warm_speedup", warm_rate / cold_rate, "x"});
  }
  std::filesystem::remove_all(cache_dir);

  // --- 2) batch vs point throughput on fresh (uncached) designs ---
  {
    eval::EvalServiceConfig config;
    config.num_threads = threads;
    eval::EvalService service(problem, config);  // memory-only

    const auto batch_designs = make_designs(problem, designs_n, 23);
    const auto t0 = Clock::now();
    service.evaluate_batch(batch_designs);
    const double batch_s = seconds_since(t0);
    const double batch_rate = static_cast<double>(designs_n) / batch_s;

    // The cold point rate above is the serial baseline for the same cost.
    std::printf("batch path, %zu designs over %zu threads: %.0f sims/s (%.1fx vs point)\n",
                designs_n, threads, batch_rate, batch_rate / cold_rate);
    metrics.push_back({"point_sims_per_s", cold_rate, "sims/s"});
    metrics.push_back({"batch_sims_per_s", batch_rate, "sims/s"});
    metrics.push_back({"batch_speedup", batch_rate / cold_rate, "x"});
  }

  // --- 3) fault-tolerant variation sweeps: serial vs batched fan-out ---
  // One RobustProblem/YieldProblem evaluation is |variants| simulations; the
  // serial path runs them one after another, the EvalService backend runs
  // them as one parallel batch with per-variant cache keys. Thread count is
  // forced to at least 8: the synthetic cost is a sleep, so even a one-core
  // CI box shows the fan-out win.
  {
    const auto sweep_threads = std::max<std::size_t>(8, threads);
    const auto sweep_designs = static_cast<std::size_t>(smoke ? 4 : 16);
    const auto mc_designs = static_cast<std::size_t>(smoke ? 1 : 4);

    const auto time_sweep = [](const ckt::SizingProblem& sweep,
                               const std::vector<linalg::Vec>& designs) {
      const auto t0 = Clock::now();
      for (const auto& x : designs) sweep.evaluate(x);
      return seconds_since(t0);
    };

    // 5-corner worst-case sweep.
    double corner_speedup = 0.0;
    {
      const ckt::RobustProblem serial(problem);
      eval::EvalServiceConfig config;
      config.num_threads = sweep_threads;
      const eval::EvalService service(problem, config);
      const ckt::RobustProblem batched(service);
      const auto designs = make_designs(problem, sweep_designs, 31);
      const double sims = static_cast<double>(sweep_designs * serial.num_corners());
      const double serial_rate = sims / time_sweep(serial, designs);
      const double batched_rate = sims / time_sweep(batched, designs);
      corner_speedup = batched_rate / serial_rate;
      std::printf("corner sweep, %zu designs x %zu corners over %zu threads: "
                  "serial %.0f, batched %.0f sims/s (%.1fx)\n",
                  sweep_designs, serial.num_corners(), sweep_threads, serial_rate, batched_rate,
                  corner_speedup);
      metrics.push_back({"sweep_serial_sims_per_s", serial_rate, "sims/s"});
      metrics.push_back({"sweep_batched_sims_per_s", batched_rate, "sims/s"});
      metrics.push_back({"sweep_batch_speedup", corner_speedup, "x"});
    }

    // 64-instance Monte Carlo yield sweep.
    {
      ckt::YieldConfig yield_config;
      const ckt::YieldProblem serial(problem, yield_config);
      eval::EvalServiceConfig config;
      config.num_threads = sweep_threads;
      const eval::EvalService service(problem, config);
      const ckt::YieldProblem batched(service, yield_config);
      const auto designs = make_designs(problem, mc_designs, 37);
      const double sims = static_cast<double>(mc_designs * serial.num_instances());
      const double serial_rate = sims / time_sweep(serial, designs);
      const double batched_rate = sims / time_sweep(batched, designs);
      std::printf("mc sweep, %zu designs x %zu instances over %zu threads: "
                  "serial %.0f, batched %.0f sims/s (%.1fx)\n",
                  mc_designs, serial.num_instances(), sweep_threads, serial_rate, batched_rate,
                  batched_rate / serial_rate);
      metrics.push_back({"mc_serial_sims_per_s", serial_rate, "sims/s"});
      metrics.push_back({"mc_batched_sims_per_s", batched_rate, "sims/s"});
      metrics.push_back({"mc_batch_speedup", batched_rate / serial_rate, "x"});
    }
    if (corner_speedup < 3.0)
      std::fprintf(stderr, "warning: sweep_batch_speedup %.2fx below the 3x acceptance bar\n",
                   corner_speedup);
  }

  // --- 4) optimization-as-a-service daemon: multiplexing and fair share ---
  // Serial and concurrent phases use separate work dirs and disjoint seeds,
  // so no phase warms the other's journals: every simulation pays sim_us.
  {
    const auto daemon_threads = std::max<std::size_t>(8, threads);
    constexpr std::size_t kJobs = 4;
    const std::size_t job_budget = smoke ? 16 : 96;
    const std::size_t job_init = smoke ? 4 : 8;
    const double total_sims = static_cast<double>(kJobs * (job_budget + job_init));
    const auto work_root = std::filesystem::temp_directory_path() / "maopt_bench_daemon";
    std::filesystem::remove_all(work_root);

    const auto job_spec = [&](std::size_t i, std::uint64_t seed_base) {
      serve::JobSpec spec;
      spec.name = "job-" + std::to_string(i);
      spec.tenant = "tenant-" + std::to_string(i);
      spec.problem = "quad";
      spec.algorithm = "Random";  // point-path: one simulation in flight per job
      spec.seed = seed_base + i;
      spec.simulation_budget = job_budget;
      spec.initial_samples = job_init;
      return spec;
    };

    double serial_rate = 0.0;
    {
      serve::DaemonConfig config;
      config.work_dir = (work_root / "serial").string();
      config.num_threads = daemon_threads;
      serve::OptDaemon daemon(config);
      daemon.add_problem("quad", problem);
      const auto t0 = Clock::now();
      for (std::size_t i = 0; i < kJobs; ++i) {
        const serve::JobSpec spec = job_spec(i, 100);
        daemon.submit(spec);
        daemon.wait(spec.name);
      }
      serial_rate = total_sims / seconds_since(t0);
    }

    double concurrent_rate = 0.0;
    double fairness_ratio = 1.0;
    {
      serve::DaemonConfig config;
      config.work_dir = (work_root / "concurrent").string();
      config.num_threads = daemon_threads;
      config.scheduler.capacity = daemon_threads;  // route jobs through the DRR gate
      serve::OptDaemon daemon(config);
      for (std::size_t i = 0; i < kJobs; ++i)
        daemon.register_tenant("tenant-" + std::to_string(i), 1.0);
      daemon.add_problem("quad", problem);

      const auto t0 = Clock::now();
      for (std::size_t i = 0; i < kJobs; ++i) daemon.submit(job_spec(i, 200));

      // Sample per-tenant grant totals while the jobs contend: once every
      // tenant has consumed a couple of quanta, the worst max/min ratio seen
      // is the fairness figure (totals trivially equalize at completion —
      // every job has the same budget — so only the in-flight window counts).
      for (;;) {
        bool any_active = false;
        for (const auto& job : daemon.jobs()) any_active |= serve::is_active(job.state);
        if (!any_active) break;
        std::uint64_t lo = UINT64_MAX, hi = 0;
        for (const auto& [tenant, stat] : daemon.scheduler().stats()) {
          lo = std::min(lo, stat.granted_sims);
          hi = std::max(hi, stat.granted_sims);
        }
        if (lo >= 2 * daemon.scheduler().config().quantum)
          fairness_ratio = std::max(fairness_ratio, static_cast<double>(hi) /
                                                        static_cast<double>(lo));
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      for (std::size_t i = 0; i < kJobs; ++i) daemon.wait("job-" + std::to_string(i));
      concurrent_rate = total_sims / seconds_since(t0);
    }
    std::filesystem::remove_all(work_root);

    const double daemon_speedup = concurrent_rate / serial_rate;
    std::printf("daemon, %zu jobs x %zu sims: serial %.0f, concurrent %.0f sims/s (%.1fx), "
                "fairness ratio %.2f\n",
                kJobs, job_budget + job_init, serial_rate, concurrent_rate, daemon_speedup,
                fairness_ratio);
    metrics.push_back({"daemon_serial_sims_per_s", serial_rate, "sims/s"});
    metrics.push_back({"daemon_concurrent_sims_per_s", concurrent_rate, "sims/s"});
    metrics.push_back({"daemon_concurrency_speedup", daemon_speedup, "x"});
    metrics.push_back({"daemon_fairness_ratio", fairness_ratio, "x"});
    if (daemon_speedup < 3.0)
      std::fprintf(stderr, "warning: daemon_concurrency_speedup %.2fx below the 3x bar\n",
                   daemon_speedup);
    if (fairness_ratio > 2.0)
      std::fprintf(stderr, "warning: daemon_fairness_ratio %.2fx above the 2x bar\n",
                   fairness_ratio);
  }

  // --- 5) raw in-tree simulator hot path (real circuit, no synthetic cost) ---
  // Interleaved A/B: every path is timed once per round and the best round
  // wins, so background load hits all paths alike instead of whichever ran
  // last.
  {
    using linalg::Vec;
    const auto raw_evals = static_cast<std::size_t>(args.get_int("raw-evals", smoke ? 4 : 24));
    const int rounds = smoke ? 2 : 5;

    ckt::TwoStageOta ota;
    const Vec x0 = ota.clip({1.0, 1.0, 1.0, 0.5, 0.5, 20, 10, 5, 40, 20, 2.0, 500, 1000, 4, 4, 4});
    // Distinct neighbours of x0 so the batch path cannot coalesce them.
    std::vector<Vec> raw_designs;
    for (std::size_t i = 0; i < raw_evals; ++i) {
      Vec xi = x0;
      xi[10] += 0.01 * static_cast<double>(i);
      raw_designs.push_back(ota.clip(xi));
    }

    const auto session = ota.make_session();
    session->evaluate(x0);  // warm-up: builds the persistent benches

    double point_rate = 0.0, session_rate = 0.0, batch_rate = 0.0;
    for (int r = 0; r < rounds; ++r) {
      auto t0 = Clock::now();
      for (const auto& x : raw_designs) ota.evaluate(x);
      point_rate = std::max(point_rate, static_cast<double>(raw_evals) / seconds_since(t0));

      t0 = Clock::now();
      for (const auto& x : raw_designs) session->evaluate(x);
      session_rate = std::max(session_rate, static_cast<double>(raw_evals) / seconds_since(t0));

      eval::EvalServiceConfig raw_config;
      raw_config.num_threads = threads;
      eval::EvalService raw_service(ota, raw_config);  // fresh memory-only cache per round
      t0 = Clock::now();
      raw_service.evaluate_batch(raw_designs);
      batch_rate = std::max(batch_rate, static_cast<double>(raw_evals) / seconds_since(t0));
    }
    std::printf("raw simulator, %zu evals x %d rounds: point %.0f, session %.0f (%.2fx), "
                "batch %.0f sims/s\n",
                raw_evals, rounds, point_rate, session_rate, session_rate / point_rate,
                batch_rate);
    metrics.push_back({"raw_point_sims_per_s", point_rate, "sims/s"});
    metrics.push_back({"raw_session_sims_per_s", session_rate, "sims/s"});
    metrics.push_back({"raw_session_speedup", session_rate / point_rate, "x"});
    metrics.push_back({"raw_batch_sims_per_s", batch_rate, "sims/s"});
  }

  // --- 6) per-layer micro metrics on a shared MOSFET testbench ---
  {
    using namespace maopt::spice;
    Netlist net;
    const int vdd = net.node("vdd");
    const int in = net.node("in");
    const int out = net.node("out");
    net.add<VSource>(vdd, kGround, Waveform::dc(1.8));
    auto* vin = net.add<VSource>(in, kGround, Waveform::dc(0.7), 1.0);
    net.add<Resistor>(vdd, out, 5e3);
    net.add<Mosfet>(out, in, kGround, kGround, MosModel::nmos_180(), 20e-6, 1e-6);
    net.add<Capacitor>(out, kGround, 1e-12);
    net.prepare();

    // Newton effort: a 33-point DC sweep with guess chaining, counted by the
    // analysis workspace.
    DcAnalysis dc;
    linalg::Vec guess;
    for (int k = 0; k < 33; ++k) {
      vin->set_dc(0.4 + 0.6 * static_cast<double>(k) / 32.0);
      const DcResult pt = dc.solve(net, guess.empty() ? nullptr : &guess);
      if (pt.converged) guess = pt.x;
    }
    vin->set_dc(0.7);
    const double iters_per_solve = static_cast<double>(dc.workspace().iterations) /
                                   static_cast<double>(dc.workspace().solves);
    metrics.push_back({"newton_iterations_per_solve", iters_per_solve, "iters"});

    // Factor/solve split at a representative MNA size: full
    // assemble+factor+solve cycles vs back-substitutions against a held
    // factorization.
    const std::size_t n = 24;
    Rng lu_rng(7);
    linalg::Mat a(n, n);
    for (auto& v : a.data()) v = lu_rng.uniform(-1, 1);
    for (std::size_t i = 0; i < n; ++i) a(i, i) += static_cast<double>(n) + 2.0;
    std::vector<double> b(n, 1.0), xs;
    linalg::LuWorkReal ws;
    const int lu_reps = smoke ? 2000 : 20000;
    double factor_rate = 0.0, resolve_rate = 0.0;
    for (int r = 0; r < (smoke ? 2 : 5); ++r) {
      auto t0 = Clock::now();
      for (int i = 0; i < lu_reps; ++i) {
        ws.matrix() = a;
        linalg::lu_factor(ws);
        linalg::lu_solve_factored(ws, b, xs);
      }
      factor_rate = std::max(factor_rate, lu_reps / seconds_since(t0));
      t0 = Clock::now();
      for (int i = 0; i < lu_reps; ++i) linalg::lu_solve_factored(ws, b, xs);
      resolve_rate = std::max(resolve_rate, lu_reps / seconds_since(t0));
    }
    metrics.push_back({"lu_factor_solve_per_s", factor_rate, "ops/s"});
    metrics.push_back({"lu_resolve_per_s", resolve_rate, "ops/s"});
    metrics.push_back({"lu_reuse_speedup", resolve_rate / factor_rate, "x"});

    // AC layer: hot-path sweep rate and the shared-factorization multi-rhs
    // win (three excitations, the OTA measurement trio's shape).
    const DcResult op = dc.solve(net);
    AcAnalysis ac;
    const auto freqs = log_frequency_grid(1.0, 10e9, 10);
    CVec rhs;
    net.build_ac_rhs(rhs);
    const std::vector<CVec> excitations(3, rhs);
    const int ac_reps = smoke ? 20 : 200;
    double ac_rate = 0.0, multi3_rate = 0.0, single3_rate = 0.0;
    for (int r = 0; r < (smoke ? 2 : 5); ++r) {
      auto t0 = Clock::now();
      for (int i = 0; i < ac_reps; ++i) ac.run(net, op.x, freqs);
      const double sweep_s = seconds_since(t0);
      ac_rate = std::max(ac_rate, static_cast<double>(freqs.size()) * ac_reps / sweep_s);
      single3_rate = std::max(single3_rate, ac_reps / (3.0 * sweep_s));
      t0 = Clock::now();
      for (int i = 0; i < ac_reps; ++i) ac.run_multi(net, op.x, freqs, excitations);
      multi3_rate = std::max(multi3_rate, ac_reps / seconds_since(t0));
    }
    metrics.push_back({"ac_sweep_points_per_s", ac_rate, "points/s"});
    metrics.push_back({"ac_multi_rhs_speedup", multi3_rate / single3_rate, "x"});
    std::printf("layers: %.2f newton iters/solve, LU reuse %.1fx, AC %.0f points/s "
                "(multi-rhs %.2fx)\n",
                iters_per_solve, resolve_rate / factor_rate, ac_rate,
                multi3_rate / single3_rate);
  }

  bench::write_bench_json(json_path, metrics);
  return 0;
}
