// Evaluation-service benchmark (writes BENCH_eval.json): measures what the
// service is for — cache hits replacing simulations and batches replacing
// serial point calls. The inner problem is an analytic quadratic wrapped in a
// fixed synthetic delay, standing in for a SPICE run whose cost dwarfs the
// service overhead (the regime the paper's Section III-C runtime split puts
// real sizing runs in).
//
// Rows:
//   cold_sims_per_s    point path, empty cache (every request simulates)
//   warm_sims_per_s    point path, same designs again (every request hits)
//   warm_speedup       warm / cold
//   point_sims_per_s   serial evaluate() over fresh designs
//   batch_sims_per_s   one evaluate_batch() over the same count of fresh designs
//   batch_speedup      batch / point
//
// Flags:
//   --smoke        tiny sizes (CTest wiring; well under a second)
//   --threads N    service batch pool size (default 4)
//   --designs N    designs per measurement (default 128; smoke 24)
//   --sim-us N     synthetic simulation cost in microseconds (default 500; smoke 100)
//   --json PATH    output path (default BENCH_eval.json)
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <thread>
#include <vector>

#include "exp_common.hpp"

namespace {

using namespace maopt;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Adds a fixed delay to every evaluation — a stand-in simulator cost.
class SlowProblem final : public ckt::SizingProblem {
 public:
  SlowProblem(const ckt::SizingProblem& inner, int micros) : inner_(&inner), micros_(micros) {}

  const ckt::ProblemSpec& spec() const override { return inner_->spec(); }
  std::size_t dim() const override { return inner_->dim(); }
  const linalg::Vec& lower_bounds() const override { return inner_->lower_bounds(); }
  const linalg::Vec& upper_bounds() const override { return inner_->upper_bounds(); }
  const std::vector<bool>& integer_mask() const override { return inner_->integer_mask(); }
  std::vector<std::string> parameter_names() const override { return inner_->parameter_names(); }
  ckt::EvalResult evaluate(const linalg::Vec& x) const override {
    std::this_thread::sleep_for(std::chrono::microseconds(micros_));
    return inner_->evaluate(x);
  }

 private:
  const ckt::SizingProblem* inner_;
  int micros_;
};

std::vector<linalg::Vec> make_designs(const ckt::SizingProblem& problem, std::size_t n,
                                      std::uint64_t seed) {
  Rng rng(seed);
  std::vector<linalg::Vec> designs;
  designs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) designs.push_back(problem.random_design(rng));
  return designs;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const bool smoke = args.get_bool("smoke");
  const auto threads =
      std::max<std::size_t>(1, static_cast<std::size_t>(args.get_int("threads", 4)));
  const auto designs_n = static_cast<std::size_t>(args.get_int("designs", smoke ? 24 : 128));
  const int sim_us = static_cast<int>(args.get_int("sim-us", smoke ? 100 : 500));
  const std::string json_path = args.get("json", "BENCH_eval.json");

  ckt::ConstrainedQuadratic quad(16);
  SlowProblem problem(quad, sim_us);
  std::vector<bench::BenchMetric> metrics;

  const auto cache_dir = std::filesystem::temp_directory_path() / "maopt_bench_eval_cache";
  std::filesystem::remove_all(cache_dir);

  // --- 1) cold vs warm point-path throughput over a persistent journal ---
  double cold_rate = 0.0;
  {
    eval::EvalServiceConfig config;
    config.num_threads = threads;
    config.cache_dir = cache_dir.string();
    const auto designs = make_designs(problem, designs_n, 11);

    double cold_s = 0.0;
    {
      eval::EvalService service(problem, config);
      const auto t0 = Clock::now();
      for (const auto& x : designs) service.evaluate(x);
      cold_s = seconds_since(t0);
    }
    double warm_s = 0.0;
    {
      eval::EvalService service(problem, config);  // fresh process stand-in, same journal
      const auto t0 = Clock::now();
      for (const auto& x : designs) service.evaluate(x);
      warm_s = seconds_since(t0);
      const auto c = service.counters();
      if (c.hits != designs.size())
        std::fprintf(stderr, "warning: warm pass expected %zu hits, got %llu\n", designs.size(),
                     static_cast<unsigned long long>(c.hits));
    }
    cold_rate = static_cast<double>(designs.size()) / cold_s;
    const double warm_rate = static_cast<double>(designs.size()) / warm_s;
    std::printf("point path, %zu designs @ %d us: cold %.0f sims/s, warm %.0f sims/s (%.1fx)\n",
                designs_n, sim_us, cold_rate, warm_rate, warm_rate / cold_rate);
    metrics.push_back({"cold_sims_per_s", cold_rate, "sims/s"});
    metrics.push_back({"warm_sims_per_s", warm_rate, "sims/s"});
    metrics.push_back({"warm_speedup", warm_rate / cold_rate, "x"});
  }
  std::filesystem::remove_all(cache_dir);

  // --- 2) batch vs point throughput on fresh (uncached) designs ---
  {
    eval::EvalServiceConfig config;
    config.num_threads = threads;
    eval::EvalService service(problem, config);  // memory-only

    const auto batch_designs = make_designs(problem, designs_n, 23);
    const auto t0 = Clock::now();
    service.evaluate_batch(batch_designs);
    const double batch_s = seconds_since(t0);
    const double batch_rate = static_cast<double>(designs_n) / batch_s;

    // The cold point rate above is the serial baseline for the same cost.
    std::printf("batch path, %zu designs over %zu threads: %.0f sims/s (%.1fx vs point)\n",
                designs_n, threads, batch_rate, batch_rate / cold_rate);
    metrics.push_back({"point_sims_per_s", cold_rate, "sims/s"});
    metrics.push_back({"batch_sims_per_s", batch_rate, "sims/s"});
    metrics.push_back({"batch_speedup", batch_rate / cold_rate, "x"});
  }

  bench::write_bench_json(json_path, metrics);
  return 0;
}
