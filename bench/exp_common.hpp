// Shared experiment harness for the table/figure reproduction benches.
//
// Reproduces the paper's protocol (Section III-A): per run seed, one initial
// set of N_init random designs is simulated once and shared by every
// algorithm; each algorithm then spends the same simulation budget. The
// paper uses 10 runs x 200 simulations x 100 initial designs; the default
// profile here is reduced so `for b in build/bench/*` terminates quickly on
// one core — pass --full (or --runs/--sims/--init) for the paper protocol.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "maopt.hpp"

namespace maopt::bench {

struct ExperimentConfig {
  std::size_t runs = 2;
  std::size_t sims = 80;
  std::size_t init = 40;
  bool full = false;
  std::uint64_t seed0 = 0;
  std::string csv_path;    ///< optional: per-simulation trajectories
  std::string jsonl_path;  ///< optional: telemetry event stream of every run

  static ExperimentConfig from_cli(const CliArgs& args) {
    ExperimentConfig c;
    c.full = args.get_bool("full");
    if (c.full) {
      c.runs = 10;
      c.sims = 200;
      c.init = 100;
    }
    c.runs = static_cast<std::size_t>(args.get_int("runs", static_cast<std::int64_t>(c.runs)));
    c.sims = static_cast<std::size_t>(args.get_int("sims", static_cast<std::int64_t>(c.sims)));
    c.init = static_cast<std::size_t>(args.get_int("init", static_cast<std::int64_t>(c.init)));
    c.seed0 = static_cast<std::uint64_t>(args.get_int("seed", 0));
    c.csv_path = args.get("csv", "");
    c.jsonl_path = args.get("jsonl", "");
    return c;
  }
};

/// Aggregate of one algorithm over all runs — one column of Table II/IV/VI.
struct AlgoSummary {
  std::string name;
  int successes = 0;
  int runs = 0;
  double min_target = std::numeric_limits<double>::quiet_NaN();  ///< over successful runs
  double log10_avg_fom = 0.0;
  double avg_runtime_s = 0.0;
  double avg_train_s = 0.0;
  double avg_sim_s = 0.0;
  double avg_ns_s = 0.0;
  // Telemetry-driven phase split (obs::RunReport, wall-clock summed over
  // lanes) — finer than the history timers: critic vs actor training and the
  // elite-set bookkeeping are separated.
  double avg_critic_s = 0.0;
  double avg_actor_s = 0.0;
  double avg_elite_s = 0.0;
  std::uint64_t failures = 0;  ///< failed simulations, total over runs
  std::uint64_t retries = 0;   ///< ResilientEvaluator retries, total over runs
  /// mean-over-runs best-FoM trajectory (per post-initial simulation).
  std::vector<double> avg_trajectory;
};

/// The paper's algorithm roster (Tables II/IV/VI).
std::vector<std::unique_ptr<core::Optimizer>> paper_roster();

/// Runs every optimizer in `roster` under the shared-initial-set protocol.
std::vector<AlgoSummary> run_comparison(const ckt::SizingProblem& problem,
                                        std::vector<std::unique_ptr<core::Optimizer>> roster,
                                        const ExperimentConfig& config);

/// Prints a Table II/IV/VI-style comparison.
void print_table(const std::string& title, const std::string& target_label,
                 const std::vector<AlgoSummary>& summaries);

/// Prints the parameter table (Table I/III/V-style).
void print_parameter_table(const ckt::SizingProblem& problem);

/// Writes per-simulation log10(avg FoM) trajectories as CSV.
void write_trajectories_csv(const std::string& path, const std::vector<AlgoSummary>& summaries);

/// Renders trajectories as a coarse ASCII plot (Fig. 5-style, log10 scale).
void print_ascii_fom_plot(const std::vector<AlgoSummary>& summaries);

/// One entry of a benchmark regression record (e.g. {"kernel_gflops", 12.3,
/// "GFLOP/s"}).
struct BenchMetric {
  std::string name;
  double value = 0.0;
  std::string unit;
};

/// Writes `metrics` to `path` as a flat JSON object
///   {"<name>": {"value": <v>, "unit": "<unit>"}, ...}
/// so successive runs can be diffed for performance regressions
/// (BENCH_train.json is the training-hot-path record).
void write_bench_json(const std::string& path, const std::vector<BenchMetric>& metrics);

}  // namespace maopt::bench
