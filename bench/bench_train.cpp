// Training-hot-path regression benchmark (the perf record behind the
// runtime rows): measures the GEMM kernels, CriticEnsemble::train_round on
// the paper net (2 x 100 hidden, batch 32), and end-to-end MA-Opt
// simulations/s on an analytic problem, then writes BENCH_train.json so the
// numbers are versioned and future PRs can spot regressions.
//
// Flags:
//   --smoke           tiny sizes / few reps (CTest wiring; seconds, not minutes)
//   --threads N       pool size for the parallel measurements (default 4)
//   --members N       ensemble size for the pooled train_round row (default 4)
//   --json PATH       output path (default BENCH_train.json)
#include <algorithm>
#include <chrono>
#include <cstdio>

#include "exp_common.hpp"
#include "linalg/gemm.hpp"

namespace {

using namespace maopt;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

double checksum_sink = 0.0;  // defeats dead-code elimination

std::vector<core::SimRecord> make_population(ckt::SizingProblem& problem, std::size_t n,
                                             std::size_t num_metrics, Rng& rng) {
  std::vector<core::SimRecord> records;
  records.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    core::SimRecord r;
    r.x = problem.random_design(rng);
    const auto m = problem.evaluate(r.x).metrics;
    r.metrics.assign(num_metrics, 0.0);
    for (std::size_t c = 0; c < m.size() && c < num_metrics; ++c) r.metrics[c] = m[c];
    r.simulation_ok = true;
    records.push_back(std::move(r));
  }
  return records;
}

double gflops(std::size_t n, int reps, double seconds) {
  return 2.0 * static_cast<double>(n) * static_cast<double>(n) * static_cast<double>(n) * reps /
         seconds / 1e9;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const bool smoke = args.get_bool("smoke");
  const auto threads = std::max<std::size_t>(1, static_cast<std::size_t>(args.get_int("threads", 4)));
  const auto members = std::max<std::size_t>(1, static_cast<std::size_t>(args.get_int("members", 4)));
  const std::string json_path = args.get("json", "BENCH_train.json");

  std::vector<bench::BenchMetric> metrics;

  // --- 1) GEMM kernels: naive vs blocked vs pooled, square n x n ---
  {
    const std::size_t n = smoke ? 48 : 256;
    const int reps = smoke ? 2 : 20;
    Rng rng(1);
    linalg::Mat a(n, n), b(n, n), c;
    for (auto& v : a.data()) v = rng.uniform(-1, 1);
    for (auto& v : b.data()) v = rng.uniform(-1, 1);

    checksum_sink += linalg::matmul(a, b)(0, 0);  // warm
    auto t0 = Clock::now();
    for (int r = 0; r < reps; ++r) checksum_sink += linalg::matmul(a, b)(0, 0);
    const double naive_gf = gflops(n, reps, seconds_since(t0));

    linalg::matmul_blocked(a, b, c);
    t0 = Clock::now();
    for (int r = 0; r < reps; ++r) {
      linalg::matmul_blocked(a, b, c);
      checksum_sink += c(0, 0);
    }
    const double blocked_gf = gflops(n, reps, seconds_since(t0));

    ThreadPool pool(threads);
    linalg::matmul_parallel(a, b, c, pool, /*min_flops=*/0.0);
    t0 = Clock::now();
    for (int r = 0; r < reps; ++r) {
      linalg::matmul_parallel(a, b, c, pool, /*min_flops=*/0.0);
      checksum_sink += c(0, 0);
    }
    const double parallel_gf = gflops(n, reps, seconds_since(t0));

    std::printf("gemm %zux%zu: naive %.2f, blocked %.2f, parallel(%zu) %.2f GFLOP/s\n", n, n,
                naive_gf, blocked_gf, threads, parallel_gf);
    metrics.push_back({"kernel_naive_gflops", naive_gf, "GFLOP/s"});
    metrics.push_back({"kernel_blocked_gflops", blocked_gf, "GFLOP/s"});
    metrics.push_back({"kernel_parallel_gflops", parallel_gf, "GFLOP/s"});
  }

  // --- 2) critic train_round, paper net (2 x 100 hidden, batch 32) ---
  {
    const std::size_t dim = 16, num_metrics = 9;
    ckt::ConstrainedQuadratic problem(dim);
    nn::RangeScaler scaler(problem.lower_bounds(), problem.upper_bounds());
    Rng rng(2);
    const auto records = make_population(problem, smoke ? 20 : 100, num_metrics, rng);
    const core::PseudoSampleBatcher batcher(records, scaler);

    core::CriticConfig cfg;
    cfg.hidden = {100, 100};
    cfg.batch_size = 32;
    cfg.steps_per_round = smoke ? 5 : 50;
    const int reps = smoke ? 2 : 20;

    // Single critic, serial (the DNN-Opt / num_critics=1 path).
    {
      Rng crng(3), trng(4);
      core::Critic critic(dim, num_metrics, cfg, crng);
      critic.fit_normalizer(records);
      checksum_sink += critic.train_round(batcher, trng);
      const auto t0 = Clock::now();
      for (int r = 0; r < reps; ++r) checksum_sink += critic.train_round(batcher, trng);
      const double ms = seconds_since(t0) / reps * 1e3;
      std::printf("critic train_round (1 member, serial): %.2f ms\n", ms);
      metrics.push_back({"train_round_ms", ms, "ms"});
    }

    // Ensemble across the pool (the ablation num_critics>1 path).
    for (const std::size_t nthreads : {std::size_t{1}, threads}) {
      Rng crng(3), trng(4);
      core::CriticEnsemble ens(members, dim, num_metrics, cfg, crng);
      ThreadPool pool(nthreads);
      ens.fit_normalizer(records, &pool);
      checksum_sink += ens.train_round(batcher, trng, &pool);
      const auto t0 = Clock::now();
      for (int r = 0; r < reps; ++r) checksum_sink += ens.train_round(batcher, trng, &pool);
      const double ms = seconds_since(t0) / reps * 1e3;
      std::printf("ensemble train_round (%zu members, %zu threads): %.2f ms\n", members, nthreads,
                  ms);
      metrics.push_back({"ensemble_train_round_" + std::to_string(nthreads) + "t_ms", ms, "ms"});
    }
  }

  // --- 3) end-to-end MA-Opt throughput on the analytic problem ---
  {
    ckt::ConstrainedQuadratic problem(16);
    Rng rng(5);
    const auto init = core::sample_initial_set(problem, smoke ? 10 : 40, rng);
    std::vector<linalg::Vec> rows;
    rows.reserve(init.size());
    for (const auto& r : init) rows.push_back(r.metrics);
    const auto fom = ckt::FomEvaluator::fit_reference(problem, rows);
    const std::size_t budget = smoke ? 6 : 60;

    core::MaOptimizer opt(core::MaOptConfig::ma_opt());
    const auto t0 = Clock::now();
    const auto h = opt.run(problem, init, fom, {.seed = 7, .simulation_budget = budget});
    const double s = seconds_since(t0);
    const double iters_per_s = static_cast<double>(h.simulations_used()) / s;
    std::printf("ma_opt end-to-end: %.2f sims/s (%zu sims, train %.2fs)\n", iters_per_s,
                h.simulations_used(), h.train_seconds);
    metrics.push_back({"end_to_end_iters_per_s", iters_per_s, "sims/s"});
  }

  bench::write_bench_json(json_path, metrics);
  std::printf("checksum %g\n", checksum_sink);
  return 0;
}
