// Microbenchmarks: the Gaussian-process baseline. The paper's stated
// drawback of BO — O(N^3) training in the number of simulations — shows up
// directly in BM_GpFit's complexity estimate.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "gp/acquisition.hpp"
#include "gp/gp_regression.hpp"

namespace {

using namespace maopt;
using namespace maopt::gp;

struct Data {
  Mat x;
  Vec y;
};

Data make_data(std::size_t n, std::size_t d, std::uint64_t seed) {
  Rng rng(seed);
  Data data;
  data.x.resize(n, d);
  data.y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < d; ++j) {
      data.x(i, j) = rng.uniform();
      s += data.x(i, j);
    }
    data.y[i] = std::sin(3.0 * s) + 0.01 * rng.normal();
  }
  return data;
}

GpHyperparams default_hp(std::size_t d) {
  GpHyperparams hp;
  hp.signal_variance = 1.0;
  hp.noise_variance = 1e-4;
  hp.lengthscales.assign(d, 0.4);
  return hp;
}

void BM_GpFit(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Data data = make_data(n, 16, 1);
  for (auto _ : state) {
    GpRegression gp(data.x, data.y, default_hp(16));
    benchmark::DoNotOptimize(gp.log_marginal_likelihood());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_GpFit)->RangeMultiplier(2)->Range(50, 400)->Complexity(benchmark::oNCubed);

void BM_GpPredict(benchmark::State& state) {
  const Data data = make_data(200, 16, 2);
  GpRegression gp(data.x, data.y, default_hp(16));
  Vec z(16, 0.5);
  for (auto _ : state) benchmark::DoNotOptimize(gp.predict(z).mean);
}
BENCHMARK(BM_GpPredict);

void BM_HyperparamSearch(benchmark::State& state) {
  const Data data = make_data(150, 16, 3);
  Rng rng(4);
  for (auto _ : state)
    benchmark::DoNotOptimize(GpRegression::fit_hyperparams(data.x, data.y, rng, 8));
}
BENCHMARK(BM_HyperparamSearch);

void BM_EiMaximization(benchmark::State& state) {
  const Data data = make_data(200, 16, 5);
  GpRegression gp(data.x, data.y, default_hp(16));
  Rng rng(6);
  for (auto _ : state)
    benchmark::DoNotOptimize(maximize_ei(gp, 0.0, 16, rng, 256, 64));
}
BENCHMARK(BM_EiMaximization);

}  // namespace

BENCHMARK_MAIN();
