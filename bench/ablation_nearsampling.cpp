// Ablation A2 (DESIGN.md): sensitivity of MA-Opt to the near-sampling
// schedule T_NS and density N_samples (the paper fixes T_NS = 5 and
// N_samples = 2000, arguing dense sampling in a small radius is what makes
// the critic trustworthy there).
#include "exp_common.hpp"

int main(int argc, char** argv) {
  using namespace maopt;
  using namespace maopt::bench;
  const CliArgs args(argc, argv);
  ExperimentConfig config = ExperimentConfig::from_cli(args);
  if (!args.has("runs") && !config.full) config.runs = 2;
  if (!args.has("sims") && !config.full) config.sims = 50;
  if (!args.has("init") && !config.full) config.init = 25;

  std::unique_ptr<ckt::SizingProblem> problem;
  if (args.get("circuit", "analytic") == "ota")
    problem = std::make_unique<ckt::TwoStageOta>();
  else
    problem = std::make_unique<ckt::ConstrainedQuadratic>(12);

  {
    std::vector<std::unique_ptr<core::Optimizer>> roster;
    for (const int t_ns : {2, 5, 10, 0}) {
      core::MaOptConfig cfg = core::MaOptConfig::ma_opt();
      if (t_ns == 0) {
        cfg.use_near_sampling = false;
        cfg.name = "no-NS";
      } else {
        cfg.t_ns = t_ns;
        cfg.name = "T_NS=" + std::to_string(t_ns);
      }
      roster.push_back(std::make_unique<core::MaOptimizer>(cfg));
    }
    auto summaries = run_comparison(*problem, std::move(roster), config);
    print_table("Ablation: near-sampling period", "Min target", summaries);
  }
  {
    std::vector<std::unique_ptr<core::Optimizer>> roster;
    for (const int n : {200, 2000, 10000}) {
      core::MaOptConfig cfg = core::MaOptConfig::ma_opt();
      cfg.near_sampling.num_samples = n;
      cfg.name = "Ns=" + std::to_string(n);
      roster.push_back(std::make_unique<core::MaOptimizer>(cfg));
    }
    auto summaries = run_comparison(*problem, std::move(roster), config);
    print_table("Ablation: near-sampling density", "Min target", summaries);
  }
  return 0;
}
