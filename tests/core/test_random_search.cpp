#include "core/random_search.hpp"

#include <gtest/gtest.h>

#include "circuits/analytic_problems.hpp"

namespace maopt::core {
namespace {

TEST(RandomSearch, BudgetAndTrajectoryShape) {
  ckt::ConstrainedQuadratic problem(3);
  Rng rng(1);
  auto init = sample_initial_set(problem, 10, rng);
  std::vector<linalg::Vec> rows;
  for (const auto& r : init) rows.push_back(r.metrics);
  const auto fom = ckt::FomEvaluator::fit_reference(problem, rows);

  RandomSearch rs;
  const RunHistory h = rs.run(problem, init, fom, {.seed = 5, .simulation_budget = 25});
  EXPECT_EQ(h.simulations_used(), 25u);
  EXPECT_EQ(h.records.size(), 35u);
  for (std::size_t i = 1; i < h.best_fom_after.size(); ++i)
    EXPECT_LE(h.best_fom_after[i], h.best_fom_after[i - 1]);
}

TEST(RandomSearch, Deterministic) {
  ckt::ConstrainedQuadratic problem(3);
  Rng rng(2);
  auto init = sample_initial_set(problem, 5, rng);
  std::vector<linalg::Vec> rows;
  for (const auto& r : init) rows.push_back(r.metrics);
  const auto fom = ckt::FomEvaluator::fit_reference(problem, rows);
  RandomSearch a, b;
  const auto ha = a.run(problem, init, fom, {.seed = 9, .simulation_budget = 10});
  const auto hb = b.run(problem, init, fom, {.seed = 9, .simulation_budget = 10});
  for (std::size_t i = 0; i < ha.records.size(); ++i) EXPECT_EQ(ha.records[i].x, hb.records[i].x);
}

TEST(SampleInitialSet, CountAndEvaluation) {
  ckt::ConstrainedQuadratic problem(2);
  Rng rng(3);
  const auto init = sample_initial_set(problem, 12, rng);
  EXPECT_EQ(init.size(), 12u);
  for (const auto& r : init) {
    EXPECT_EQ(r.metrics.size(), problem.num_metrics());
    EXPECT_TRUE(r.simulation_ok);
  }
}

TEST(AnnotateFoms, FillsFomAndFeasibility) {
  ckt::ConstrainedQuadratic problem(2);
  Rng rng(4);
  auto recs = sample_initial_set(problem, 8, rng);
  const ckt::FomEvaluator fom(problem, 1.0);
  annotate_foms(recs, problem, fom);
  for (const auto& r : recs) {
    EXPECT_DOUBLE_EQ(r.fom, fom(r.metrics));
    EXPECT_EQ(r.feasible, problem.feasible(r.metrics));
  }
}

}  // namespace
}  // namespace maopt::core
