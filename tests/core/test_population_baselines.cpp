#include <gtest/gtest.h>

#include "circuits/analytic_problems.hpp"
#include "core/de.hpp"
#include "core/pso.hpp"
#include "core/random_search.hpp"

namespace maopt::core {
namespace {

struct BaselineFixture : ::testing::Test {
  BaselineFixture() : problem(6) {
    Rng rng(1);
    initial = sample_initial_set(problem, 20, rng);
    std::vector<linalg::Vec> rows;
    for (const auto& r : initial) rows.push_back(r.metrics);
    fom = std::make_unique<ckt::FomEvaluator>(ckt::FomEvaluator::fit_reference(problem, rows));
  }
  ckt::ConstrainedQuadratic problem;
  std::vector<SimRecord> initial;
  std::unique_ptr<ckt::FomEvaluator> fom;
};

TEST_F(BaselineFixture, PsoRespectsBudgetAndMonotoneTrajectory) {
  PsoOptimizer pso;
  const RunHistory h = pso.run(problem, initial, *fom, {.seed = 3, .simulation_budget = 37});
  EXPECT_EQ(h.simulations_used(), 37u);
  for (std::size_t i = 1; i < h.best_fom_after.size(); ++i)
    EXPECT_LE(h.best_fom_after[i], h.best_fom_after[i - 1]);
}

TEST_F(BaselineFixture, DeRespectsBudgetAndMonotoneTrajectory) {
  DeOptimizer de;
  const RunHistory h = de.run(problem, initial, *fom, {.seed = 3, .simulation_budget = 41});
  EXPECT_EQ(h.simulations_used(), 41u);
  for (std::size_t i = 1; i < h.best_fom_after.size(); ++i)
    EXPECT_LE(h.best_fom_after[i], h.best_fom_after[i - 1]);
}

TEST_F(BaselineFixture, PsoCandidatesWithinBounds) {
  PsoOptimizer pso;
  const RunHistory h = pso.run(problem, initial, *fom, {.seed = 5, .simulation_budget = 40});
  for (std::size_t i = initial.size(); i < h.records.size(); ++i)
    for (std::size_t c = 0; c < problem.dim(); ++c) {
      EXPECT_GE(h.records[i].x[c], problem.lower_bounds()[c]);
      EXPECT_LE(h.records[i].x[c], problem.upper_bounds()[c]);
    }
}

TEST_F(BaselineFixture, DeCandidatesRespectIntegerMask) {
  ckt::ConstrainedRosenbrock rosen(4);
  Rng rng(2);
  auto init = sample_initial_set(rosen, 16, rng);
  std::vector<linalg::Vec> rows;
  for (const auto& r : init) rows.push_back(r.metrics);
  const auto f = ckt::FomEvaluator::fit_reference(rosen, rows);
  DeOptimizer de;
  const RunHistory h = de.run(rosen, init, f, {.seed = 7, .simulation_budget = 30});
  for (std::size_t i = init.size(); i < h.records.size(); ++i)
    EXPECT_DOUBLE_EQ(h.records[i].x.back(), std::round(h.records[i].x.back()));
}

TEST_F(BaselineFixture, BothImproveOverInitialBest) {
  auto recs = initial;
  annotate_foms(recs, problem, *fom);
  double init_best = 1e300;
  for (const auto& r : recs) init_best = std::min(init_best, r.fom);

  PsoOptimizer pso;
  DeOptimizer de;
  EXPECT_LT(pso.run(problem, initial, *fom, {.seed = 11, .simulation_budget = 60}).best_fom_after.back(), init_best);
  EXPECT_LT(de.run(problem, initial, *fom, {.seed = 11, .simulation_budget = 60}).best_fom_after.back(), init_best);
}

TEST_F(BaselineFixture, DeterministicForFixedSeed) {
  PsoOptimizer p1, p2;
  const auto a = p1.run(problem, initial, *fom, {.seed = 21, .simulation_budget = 20});
  const auto b = p2.run(problem, initial, *fom, {.seed = 21, .simulation_budget = 20});
  for (std::size_t i = 0; i < a.records.size(); ++i) EXPECT_EQ(a.records[i].x, b.records[i].x);

  DeOptimizer d1, d2;
  const auto c = d1.run(problem, initial, *fom, {.seed = 22, .simulation_budget = 20});
  const auto d = d2.run(problem, initial, *fom, {.seed = 22, .simulation_budget = 20});
  for (std::size_t i = 0; i < c.records.size(); ++i) EXPECT_EQ(c.records[i].x, d.records[i].x);
}

TEST_F(BaselineFixture, SmallInitialSetStillWorks) {
  Rng rng(9);
  auto tiny = sample_initial_set(problem, 3, rng);  // smaller than swarm/population
  std::vector<linalg::Vec> rows;
  for (const auto& r : tiny) rows.push_back(r.metrics);
  const auto f = ckt::FomEvaluator::fit_reference(problem, rows);
  PsoOptimizer pso;
  DeOptimizer de;
  EXPECT_EQ(pso.run(problem, tiny, f, {.seed = 1, .simulation_budget = 15}).simulations_used(), 15u);
  EXPECT_EQ(de.run(problem, tiny, f, {.seed = 1, .simulation_budget = 15}).simulations_used(), 15u);
}

}  // namespace
}  // namespace maopt::core
