// End-to-end integration: the full MA-Opt pipeline driving the real SPICE
// testbenches (reduced network sizes and budgets keep this in CI time).
#include <gtest/gtest.h>

#include "circuits/three_stage_tia.hpp"
#include "circuits/two_stage_ota.hpp"
#include "core/ma_optimizer.hpp"

namespace maopt::core {
namespace {

MaOptConfig small_config(MaOptConfig base) {
  base.critic.hidden = {32, 32};
  base.critic.steps_per_round = 15;
  base.actor.hidden = {24, 24};
  base.actor.steps_per_round = 8;
  base.near_sampling.num_samples = 200;
  return base;
}

TEST(Integration, MaOptOnTwoStageOtaImprovesFom) {
  ckt::TwoStageOta problem;
  Rng rng(1);
  auto init = sample_initial_set(problem, 15, rng);
  std::vector<linalg::Vec> rows;
  for (const auto& r : init) rows.push_back(r.metrics);
  const auto fom = ckt::FomEvaluator::fit_reference(problem, rows);

  auto annotated = init;
  annotate_foms(annotated, problem, fom);
  double init_best = 1e300;
  for (const auto& r : annotated) init_best = std::min(init_best, r.fom);

  MaOptimizer opt(small_config(MaOptConfig::ma_opt()));
  const RunHistory h = opt.run(problem, init, fom, {.seed = 1, .simulation_budget = 12});
  EXPECT_EQ(h.simulations_used(), 12u);
  EXPECT_LE(h.best_fom_after.back(), init_best);
  // Every proposed design simulated successfully (the testbench is robust).
  int sim_ok = 0;
  for (std::size_t i = h.num_initial; i < h.records.size(); ++i)
    sim_ok += h.records[i].simulation_ok ? 1 : 0;
  EXPECT_GE(sim_ok, 10);
}

TEST(Integration, DnnOptOnTiaRunsDeterministically) {
  ckt::ThreeStageTia problem;
  Rng rng(2);
  auto init = sample_initial_set(problem, 12, rng);
  std::vector<linalg::Vec> rows;
  for (const auto& r : init) rows.push_back(r.metrics);
  const auto fom = ckt::FomEvaluator::fit_reference(problem, rows);

  MaOptimizer a(small_config(MaOptConfig::dnn_opt()));
  MaOptimizer b(small_config(MaOptConfig::dnn_opt()));
  const RunHistory ha = a.run(problem, init, fom, {.seed = 5, .simulation_budget = 8});
  const RunHistory hb = b.run(problem, init, fom, {.seed = 5, .simulation_budget = 8});
  ASSERT_EQ(ha.records.size(), hb.records.size());
  for (std::size_t i = 0; i < ha.records.size(); ++i) {
    EXPECT_EQ(ha.records[i].x, hb.records[i].x);
    EXPECT_EQ(ha.records[i].metrics, hb.records[i].metrics);
  }
}

}  // namespace
}  // namespace maopt::core
