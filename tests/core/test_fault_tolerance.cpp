// End-to-end fault tolerance: optimizers driven over FaultInjectingProblem
// must complete their budget without crashing, keep NaN out of elite sets /
// trajectories, trip the circuit breaker on persistent failure, and resume
// from a checkpoint to the exact uninterrupted trajectory.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "circuits/analytic_problems.hpp"
#include "circuits/resilient_problem.hpp"
#include "core/ma_optimizer.hpp"
#include "gp/bo_optimizer.hpp"

namespace maopt::core {
namespace {

MaOptConfig small_config(MaOptConfig base) {
  base.critic.hidden = {32, 32};
  base.critic.steps_per_round = 20;
  base.actor.hidden = {24, 24};
  base.actor.steps_per_round = 10;
  base.near_sampling.num_samples = 200;
  return base;
}

struct FaultFixture : ::testing::Test {
  FaultFixture() : problem(4) {
    Rng rng(1);
    initial = sample_initial_set(problem, 25, rng);
    std::vector<linalg::Vec> rows;
    for (const auto& r : initial) rows.push_back(r.metrics);
    fom = std::make_unique<ckt::FomEvaluator>(ckt::FomEvaluator::fit_reference(problem, rows));
  }

  void assert_history_clean(const RunHistory& h, std::size_t budget) const {
    EXPECT_EQ(h.simulations_used(), budget);
    EXPECT_EQ(h.best_fom_after.size(), budget);
    for (const auto& r : h.records) {
      EXPECT_TRUE(std::isfinite(r.fom));
      for (const double m : r.metrics) EXPECT_TRUE(std::isfinite(m));
      if (!r.simulation_ok) {
        EXPECT_FALSE(r.feasible);
      }
    }
    for (std::size_t i = 1; i < h.best_fom_after.size(); ++i)
      EXPECT_LE(h.best_fom_after[i], h.best_fom_after[i - 1]);
    const SimRecord* best = h.best();
    if (best != nullptr) {
      EXPECT_TRUE(best->simulation_ok);
    }
  }

  ckt::ConstrainedQuadratic problem;
  std::vector<SimRecord> initial;
  std::unique_ptr<ckt::FomEvaluator> fom;
};

TEST_F(FaultFixture, MaOptSurvivesFaultRateSweep) {
  for (const double rate : {0.0, 0.1, 0.5}) {
    const ckt::FaultInjectingProblem faulty(
        problem, ckt::FaultInjectionConfig::mixed(rate, 21, /*hang_seconds=*/0.002));
    for (const auto& cfg : {MaOptConfig::dnn_opt(), MaOptConfig::ma_opt()}) {
      MaOptimizer opt(small_config(cfg));
      RunHistory h;
      ASSERT_NO_THROW(h = opt.run(faulty, initial, *fom, {.seed = 5, .simulation_budget = 20}))
          << cfg.name << " rate " << rate;
      assert_history_clean(h, 20);
      EXPECT_FALSE(h.aborted);
    }
  }
}

TEST_F(FaultFixture, MaOptAcceptanceRunAtTwentyFivePercent) {
  // The ISSUE acceptance scenario: 25% mixed faults (throws, hangs past a
  // deadline, NaN metrics, garbage), full budget, no crash, clean history.
  const ckt::FaultInjectingProblem faulty(
      problem, ckt::FaultInjectionConfig::mixed(0.25, 33, /*hang_seconds=*/0.02));
  ckt::ResilientConfig rcfg;
  rcfg.deadline_seconds = 0.005;  // hangs become timeouts
  rcfg.max_retries = 1;
  const ckt::ResilientEvaluator resilient(faulty, rcfg);

  MaOptimizer opt(small_config(MaOptConfig::ma_opt()));
  RunHistory h;
  ASSERT_NO_THROW(h = opt.run(resilient, initial, *fom, {.seed = 9, .simulation_budget = 30}));
  assert_history_clean(h, 30);
  EXPECT_FALSE(h.aborted);
  EXPECT_GT(faulty.injected(), 0u);
  const ckt::FailureStats stats = resilient.stats();
  EXPECT_GT(stats.failures + stats.retries, 0u);
}

TEST_F(FaultFixture, FailedRecordsStayOutOfTrajectoryAndBest) {
  ckt::FaultInjectionConfig fcfg;
  fcfg.nan_rate = 0.5;
  fcfg.seed = 77;
  const ckt::FaultInjectingProblem faulty(problem, fcfg);
  MaOptimizer opt(small_config(MaOptConfig::ma_opt2()));
  const RunHistory h = opt.run(faulty, initial, *fom, {.seed = 6, .simulation_budget = 25});
  assert_history_clean(h, 25);
  ASSERT_GT(h.failures(), 0u);  // the 50% NaN rate must have hit something
  // Every failed record carries the same finite penalty FoM and is skipped
  // by best(): the best record must be a genuinely clean simulation.
  const SimRecord* best = h.best();
  ASSERT_NE(best, nullptr);
  EXPECT_TRUE(best->simulation_ok);
}

TEST_F(FaultFixture, CircuitBreakerAbortsCleanlyOnPersistentFailure) {
  ckt::FaultInjectionConfig fcfg;
  fcfg.throw_rate = 1.0;  // simulator is completely broken
  const ckt::FaultInjectingProblem faulty(problem, fcfg);
  MaOptConfig cfg = small_config(MaOptConfig::ma_opt2());
  cfg.max_consecutive_failures = 5;
  MaOptimizer opt(cfg);
  RunHistory h;
  ASSERT_NO_THROW(h = opt.run(faulty, initial, *fom, {.seed = 2, .simulation_budget = 60}));
  EXPECT_TRUE(h.aborted);
  EXPECT_NE(h.abort_reason.find("circuit breaker"), std::string::npos);
  EXPECT_LT(h.simulations_used(), 60u);       // partial history, not a crash
  EXPECT_GE(h.simulations_used(), 5u);        // the breaker needed 5 failures
  EXPECT_EQ(h.best_fom_after.size(), h.simulations_used());
}

TEST_F(FaultFixture, BreakerDisabledRunsFullBudgetEvenWhenAllFail) {
  ckt::FaultInjectionConfig fcfg;
  fcfg.throw_rate = 1.0;
  const ckt::FaultInjectingProblem faulty(problem, fcfg);
  MaOptConfig cfg = small_config(MaOptConfig::dnn_opt());
  cfg.max_consecutive_failures = 0;
  MaOptimizer opt(cfg);
  const RunHistory h = opt.run(faulty, initial, *fom, {.seed = 2, .simulation_budget = 10});
  EXPECT_FALSE(h.aborted);
  EXPECT_EQ(h.simulations_used(), 10u);
  for (const auto& f : h.best_fom_after) EXPECT_TRUE(std::isfinite(f));
}

TEST_F(FaultFixture, BoSurvivesFaultsAndBreaksOnPersistentFailure) {
  for (const double rate : {0.1, 0.5}) {
    ckt::FaultInjectionConfig fcfg;
    fcfg.throw_rate = rate / 2;
    fcfg.nan_rate = rate / 2;
    fcfg.seed = 55;
    const ckt::FaultInjectingProblem faulty(problem, fcfg);
    gp::BoOptimizer bo;
    RunHistory h;
    ASSERT_NO_THROW(h = bo.run(faulty, initial, *fom, {.seed = 3, .simulation_budget = 10})) << "rate " << rate;
    EXPECT_EQ(h.simulations_used(), 10u);
    for (const auto& r : h.records) EXPECT_TRUE(std::isfinite(r.fom));
    for (std::size_t i = 1; i < h.best_fom_after.size(); ++i)
      EXPECT_LE(h.best_fom_after[i], h.best_fom_after[i - 1]);
  }

  ckt::FaultInjectionConfig fcfg;
  fcfg.throw_rate = 1.0;
  const ckt::FaultInjectingProblem broken(problem, fcfg);
  gp::BoConfig bcfg;
  bcfg.max_consecutive_failures = 4;
  gp::BoOptimizer bo(bcfg);
  RunHistory h;
  ASSERT_NO_THROW(h = bo.run(broken, initial, *fom, {.seed = 3, .simulation_budget = 30}));
  EXPECT_TRUE(h.aborted);
  EXPECT_LT(h.simulations_used(), 30u);
}

TEST_F(FaultFixture, CheckpointResumeReproducesUninterruptedRun) {
  const std::string path = "/tmp/maopt_resume_test.ckpt";
  std::remove(path.c_str());

  const std::size_t budget = 24;
  MaOptConfig cfg = small_config(MaOptConfig::ma_opt());

  // Reference: uninterrupted run, no checkpointing.
  MaOptimizer ref_opt(cfg);
  const RunHistory ref = ref_opt.run(problem, initial, *fom, {.seed = 77, .simulation_budget = budget});

  // Checkpointed twin: identical trajectory, but snapshots every 4
  // iterations. The last snapshot on disk is exactly what a run killed
  // mid-budget would leave behind (the final iteration is not a checkpoint
  // boundary, so the file is genuinely mid-run).
  cfg.checkpoint_path = path;
  cfg.checkpoint_every = 4;
  MaOptimizer ckpt_opt(cfg);
  const RunHistory full = ckpt_opt.run(problem, initial, *fom, {.seed = 77, .simulation_budget = budget});
  ASSERT_EQ(full.records.size(), ref.records.size());

  const RunCheckpoint snapshot = load_checkpoint(path);
  EXPECT_EQ(snapshot.seed, 77u);
  ASSERT_GT(snapshot.history.simulations_used(), 0u);
  ASSERT_LT(snapshot.history.simulations_used(), budget);  // genuinely mid-run

  MaOptimizer resumed_opt(cfg);
  const RunHistory resumed = resumed_opt.resume(problem, snapshot, *fom, budget);

  ASSERT_EQ(resumed.records.size(), ref.records.size());
  for (std::size_t i = 0; i < ref.records.size(); ++i) {
    EXPECT_EQ(resumed.records[i].x, ref.records[i].x) << "record " << i;
    EXPECT_DOUBLE_EQ(resumed.records[i].fom, ref.records[i].fom) << "record " << i;
  }
  ASSERT_EQ(resumed.best_fom_after.size(), ref.best_fom_after.size());
  for (std::size_t i = 0; i < ref.best_fom_after.size(); ++i)
    EXPECT_DOUBLE_EQ(resumed.best_fom_after[i], ref.best_fom_after[i]) << "sim " << i;
  std::remove(path.c_str());
}

TEST_F(FaultFixture, CheckpointResumeDeterministicUnderFaults) {
  const std::string path = "/tmp/maopt_resume_fault_test.ckpt";
  std::remove(path.c_str());

  // Fault decisions are a pure function of (seed, design), so they replay
  // identically on resume.
  ckt::FaultInjectionConfig fcfg;
  fcfg.throw_rate = 0.1;
  fcfg.nan_rate = 0.1;
  fcfg.seed = 99;
  const ckt::FaultInjectingProblem faulty(problem, fcfg);

  const std::size_t budget = 18;
  MaOptConfig cfg = small_config(MaOptConfig::ma_opt2());
  MaOptimizer ref_opt(cfg);
  const RunHistory ref = ref_opt.run(faulty, initial, *fom, {.seed = 13, .simulation_budget = budget});

  cfg.checkpoint_path = path;
  cfg.checkpoint_every = 4;
  MaOptimizer ckpt_opt(cfg);
  (void)ckpt_opt.run(faulty, initial, *fom, {.seed = 13, .simulation_budget = budget});

  const RunCheckpoint snapshot = load_checkpoint(path);
  ASSERT_LT(snapshot.history.simulations_used(), budget);
  MaOptimizer resumed_opt(cfg);
  const RunHistory resumed = resumed_opt.resume(faulty, snapshot, *fom, budget);

  ASSERT_EQ(resumed.records.size(), ref.records.size());
  for (std::size_t i = 0; i < ref.records.size(); ++i) {
    EXPECT_EQ(resumed.records[i].x, ref.records[i].x) << "record " << i;
    EXPECT_EQ(resumed.records[i].simulation_ok, ref.records[i].simulation_ok) << "record " << i;
  }
  EXPECT_DOUBLE_EQ(resumed.best_fom_after.back(), ref.best_fom_after.back());
  std::remove(path.c_str());
}

TEST_F(FaultFixture, ResumeWithFullyCompleteCheckpointIsANoOp) {
  const std::string path = "/tmp/maopt_resume_complete_test.ckpt";
  const std::size_t budget = 12;
  MaOptConfig cfg = small_config(MaOptConfig::dnn_opt());
  MaOptimizer opt(cfg);
  const RunHistory h = opt.run(problem, initial, *fom, {.seed = 4, .simulation_budget = budget});
  save_checkpoint(path, h, 4);

  const RunCheckpoint snapshot = load_checkpoint(path);
  MaOptimizer resumed_opt(cfg);
  const RunHistory resumed = resumed_opt.resume(problem, snapshot, *fom, budget);
  ASSERT_EQ(resumed.records.size(), h.records.size());
  for (std::size_t i = 0; i < h.records.size(); ++i)
    EXPECT_EQ(resumed.records[i].x, h.records[i].x);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace maopt::core
