#include <gtest/gtest.h>

#include "circuits/analytic_problems.hpp"
#include "core/critic.hpp"
#include "core/ma_optimizer.hpp"

namespace maopt::core {
namespace {

struct EnsembleFixture : ::testing::Test {
  EnsembleFixture() : problem(3), scaler(problem.lower_bounds(), problem.upper_bounds()) {
    Rng rng(1);
    for (int i = 0; i < 40; ++i) {
      SimRecord r;
      r.x = problem.random_design(rng);
      r.metrics = problem.evaluate(r.x).metrics;
      records.push_back(std::move(r));
    }
    config.hidden = {24, 24};
    config.steps_per_round = 10;
  }
  ckt::ConstrainedQuadratic problem;
  nn::RangeScaler scaler;
  std::vector<SimRecord> records;
  CriticConfig config;
};

TEST_F(EnsembleFixture, ZeroMembersThrows) {
  Rng rng(2);
  EXPECT_THROW(CriticEnsemble(0, 3, 3, config, rng), std::invalid_argument);
}

TEST_F(EnsembleFixture, SingleMemberMatchesPlainCritic) {
  // Same rng stream -> the one member is identical to a directly-built critic.
  Rng rng_a(3), rng_b(3);
  CriticEnsemble ens(1, 3, 3, config, rng_a);
  Critic critic(3, 3, config, rng_b);
  ens.fit_normalizer(records);
  critic.fit_normalizer(records);
  nn::Mat in(1, 6, 0.1);
  const nn::Mat pe = ens.predict(in);
  const nn::Mat pc = critic.predict(in);
  for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(pe(0, c), pc(0, c));
}

TEST_F(EnsembleFixture, PredictionIsMeanOfMembers) {
  Rng rng(4);
  CriticEnsemble ens(3, 3, 3, config, rng);
  ens.fit_normalizer(records);
  // Clone into singles using the copy constructor, then compare.
  nn::Mat in(2, 6, 0.2);
  const nn::Mat avg = ens.predict(in);
  // Averaging property is hard to check without member access; instead use
  // determinism: two identical ensembles agree.
  Rng rng2(4);
  CriticEnsemble ens2(3, 3, 3, config, rng2);
  ens2.fit_normalizer(records);
  const nn::Mat avg2 = ens2.predict(in);
  for (std::size_t k = 0; k < avg.data().size(); ++k)
    EXPECT_DOUBLE_EQ(avg.data()[k], avg2.data()[k]);
}

TEST_F(EnsembleFixture, TrainingReducesLossAcrossMembers) {
  Rng rng(5);
  CriticEnsemble ens(2, 3, 3, config, rng);
  ens.fit_normalizer(records);
  PseudoSampleBatcher batcher(records, scaler);
  Rng trng(6);
  const double first = ens.train_round(batcher, trng);
  double last = first;
  for (int i = 0; i < 15; ++i) last = ens.train_round(batcher, trng);
  EXPECT_LT(last, first);
}

TEST_F(EnsembleFixture, ActionGradientAveragesMatchFiniteDifference) {
  Rng rng(7);
  CriticEnsemble ens(2, 3, 3, config, rng);
  ens.fit_normalizer(records);
  PseudoSampleBatcher batcher(records, scaler);
  Rng trng(8);
  ens.train_round(batcher, trng);

  const Vec w{1.0, -0.5, 0.25};
  nn::Mat in(1, 6, 0.15);
  ens.predict(in);
  nn::Mat dl(1, 3);
  for (std::size_t c = 0; c < 3; ++c) dl(0, c) = w[c];
  const nn::Mat da = ens.action_gradient(dl);

  const double eps = 1e-6;
  for (std::size_t c = 0; c < 3; ++c) {
    nn::Mat inp = in, inm = in;
    inp(0, 3 + c) += eps;
    inm(0, 3 + c) -= eps;
    const nn::Mat rp = ens.predict(inp);
    const nn::Mat rm = ens.predict(inm);
    double lp = 0.0, lm = 0.0;
    for (std::size_t j = 0; j < 3; ++j) {
      lp += w[j] * rp(0, j);
      lm += w[j] * rm(0, j);
    }
    EXPECT_NEAR(da(0, c), (lp - lm) / (2 * eps), 1e-4) << c;
  }
}

TEST_F(EnsembleFixture, TrainRoundBitIdenticalAcrossThreadCounts) {
  // Each member trains on its own derive_seed-derived stream, so the pooled
  // and serial paths must produce *identical* parameters — not just close.
  Rng rng_a(11), rng_b(11);
  CriticEnsemble serial(3, 3, 3, config, rng_a);
  CriticEnsemble pooled(3, 3, 3, config, rng_b);
  PseudoSampleBatcher batcher(records, scaler);
  ThreadPool pool1(1), pool4(4);
  serial.fit_normalizer(records, &pool1);
  pooled.fit_normalizer(records, &pool4);

  Rng trng_a(12), trng_b(12);
  double loss_a = 0.0, loss_b = 0.0;
  for (int round = 0; round < 3; ++round) {
    loss_a = serial.train_round(batcher, trng_a, &pool1);
    loss_b = pooled.train_round(batcher, trng_b, &pool4);
  }
  EXPECT_DOUBLE_EQ(loss_a, loss_b);
  for (std::size_t m = 0; m < serial.size(); ++m) {
    const auto pa = serial.member(m).network().params();
    const auto pb = pooled.member(m).network().params();
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t p = 0; p < pa.size(); ++p) {
      ASSERT_EQ(pa[p].value->size(), pb[p].value->size());
      for (std::size_t i = 0; i < pa[p].value->size(); ++i)
        ASSERT_EQ((*pa[p].value)[i], (*pb[p].value)[i]) << "member " << m << " param " << p;
    }
  }
}

TEST_F(EnsembleFixture, TrainRoundAdvancesCallerRngIndependentlyOfMemberCount) {
  // The caller's rng must advance identically whether the ensemble has 1 or
  // 4 members, so optimizer runs stay reproducible across ablation configs.
  Rng rng_a(13), rng_b(13);
  CriticEnsemble small(1, 3, 3, config, rng_a);
  CriticEnsemble large(4, 3, 3, config, rng_b);
  small.fit_normalizer(records);
  large.fit_normalizer(records);
  PseudoSampleBatcher batcher(records, scaler);
  Rng trng_a(14), trng_b(14);
  small.train_round(batcher, trng_a);
  large.train_round(batcher, trng_b);
  EXPECT_EQ(trng_a.next(), trng_b.next());
}

TEST_F(EnsembleFixture, ParameterCountScalesLinearly) {
  Rng rng(9);
  CriticEnsemble one(1, 3, 3, config, rng);
  CriticEnsemble four(4, 3, 3, config, rng);
  EXPECT_EQ(four.num_parameters(), 4 * one.num_parameters());
}

TEST_F(EnsembleFixture, MaOptimizerRunsWithEnsemble) {
  Rng rng(10);
  auto init = sample_initial_set(problem, 15, rng);
  std::vector<linalg::Vec> rows;
  for (const auto& r : init) rows.push_back(r.metrics);
  const auto fom = ckt::FomEvaluator::fit_reference(problem, rows);

  MaOptConfig cfg = MaOptConfig::ma_opt();
  cfg.num_critics = 2;
  cfg.critic.hidden = {24, 24};
  cfg.critic.steps_per_round = 8;
  cfg.actor.hidden = {16, 16};
  cfg.actor.steps_per_round = 5;
  cfg.near_sampling.num_samples = 100;
  MaOptimizer opt(cfg);
  const RunHistory h = opt.run(problem, init, fom, {.seed = 3, .simulation_budget = 12});
  EXPECT_EQ(h.simulations_used(), 12u);
}

}  // namespace
}  // namespace maopt::core
