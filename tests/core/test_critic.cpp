#include "core/critic.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "circuits/analytic_problems.hpp"

namespace maopt::core {
namespace {

struct CriticFixture : ::testing::Test {
  CriticFixture() : problem(3), scaler(problem.lower_bounds(), problem.upper_bounds()) {
    Rng rng(1);
    for (int i = 0; i < 60; ++i) {
      SimRecord r;
      r.x = problem.random_design(rng);
      r.metrics = problem.evaluate(r.x).metrics;
      r.simulation_ok = true;
      records.push_back(std::move(r));
    }
    config.hidden = {48, 48};
    config.steps_per_round = 40;
    config.batch_size = 32;
  }

  ckt::ConstrainedQuadratic problem;
  nn::RangeScaler scaler;
  std::vector<SimRecord> records;
  CriticConfig config;
};

TEST_F(CriticFixture, LossDecreasesOverTraining) {
  Rng rng(2);
  Critic critic(3, 3, config, rng);
  critic.fit_normalizer(records);
  PseudoSampleBatcher batcher(records, scaler);
  Rng train_rng(3);
  const double first = critic.train_round(batcher, train_rng);
  double last = first;
  for (int round = 0; round < 10; ++round) last = critic.train_round(batcher, train_rng);
  EXPECT_LT(last, first * 0.5);
}

TEST_F(CriticFixture, LearnsToPredictMetrics) {
  Rng rng(4);
  Critic critic(3, 3, config, rng);
  critic.fit_normalizer(records);
  PseudoSampleBatcher batcher(records, scaler);
  Rng train_rng(5);
  for (int round = 0; round < 30; ++round) critic.train_round(batcher, train_rng);

  // Evaluate on fresh pairs: predictions should correlate with truth.
  Rng test_rng(6);
  double err = 0.0, scale = 0.0;
  const int n_test = 40;
  for (int k = 0; k < n_test; ++k) {
    const Vec xi = problem.random_design(test_rng);
    const Vec xj = problem.random_design(test_rng);
    const Vec ui = scaler.to_unit(xi);
    const Vec uj = scaler.to_unit(xj);
    Vec du(3);
    for (int c = 0; c < 3; ++c) du[static_cast<std::size_t>(c)] = uj[static_cast<std::size_t>(c)] - ui[static_cast<std::size_t>(c)];
    const Vec pred = critic.predict_one(ui, du);
    const Vec truth = problem.evaluate(xj).metrics;
    for (std::size_t c = 0; c < 3; ++c) {
      err += std::abs(pred[c] - truth[c]);
      scale += std::abs(truth[c]);
    }
  }
  EXPECT_LT(err, 0.25 * scale);  // mean abs error under 25% of mean magnitude
}

TEST_F(CriticFixture, CopyPredictsIdentically) {
  Rng rng(7);
  Critic critic(3, 3, config, rng);
  critic.fit_normalizer(records);
  PseudoSampleBatcher batcher(records, scaler);
  Rng train_rng(8);
  critic.train_round(batcher, train_rng);

  Critic copy(critic);
  const Vec x(3, 0.2), dx(3, 0.1);
  const Vec a = critic.predict_one(x, dx);
  const Vec b = copy.predict_one(x, dx);
  for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(a[c], b[c]);
}

TEST_F(CriticFixture, ActionGradientMatchesFiniteDifference) {
  Rng rng(9);
  Critic critic(3, 3, config, rng);
  critic.fit_normalizer(records);
  PseudoSampleBatcher batcher(records, scaler);
  Rng train_rng(10);
  for (int round = 0; round < 5; ++round) critic.train_round(batcher, train_rng);

  // Scalar loss L = sum_c w_c * raw_c; check dL/d(dx).
  const Vec w{0.3, -0.7, 1.1};
  nn::Mat in(1, 6);
  for (int c = 0; c < 3; ++c) {
    in(0, static_cast<std::size_t>(c)) = 0.1 * c;
    in(0, static_cast<std::size_t>(3 + c)) = 0.05 * (c + 1);
  }
  critic.predict(in);
  nn::Mat dl(1, 3);
  for (std::size_t c = 0; c < 3; ++c) dl(0, c) = w[c];
  const nn::Mat da = critic.action_gradient(dl);

  const double eps = 1e-6;
  for (std::size_t c = 0; c < 3; ++c) {
    nn::Mat inp = in, inm = in;
    inp(0, 3 + c) += eps;
    inm(0, 3 + c) -= eps;
    const nn::Mat rp = critic.predict(inp);
    const nn::Mat rm = critic.predict(inm);
    double lp = 0.0, lm = 0.0;
    for (std::size_t j = 0; j < 3; ++j) {
      lp += w[j] * rp(0, j);
      lm += w[j] * rm(0, j);
    }
    EXPECT_NEAR(da(0, c), (lp - lm) / (2 * eps), 1e-4) << c;
  }
}

TEST_F(CriticFixture, PredictOneMatchesBatchPredict) {
  Rng rng(11);
  Critic critic(3, 3, config, rng);
  critic.fit_normalizer(records);
  const Vec x(3, -0.3), dx(3, 0.2);
  const Vec single = critic.predict_one(x, dx);
  nn::Mat in(1, 6);
  for (std::size_t c = 0; c < 3; ++c) {
    in(0, c) = x[c];
    in(0, 3 + c) = dx[c];
  }
  const nn::Mat batch = critic.predict(in);
  for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(single[c], batch(0, c));
}

}  // namespace
}  // namespace maopt::core
