#include "core/actor.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "circuits/analytic_problems.hpp"

namespace maopt::core {
namespace {

struct ActorFixture : ::testing::Test {
  ActorFixture()
      : problem(3),
        scaler(problem.lower_bounds(), problem.upper_bounds()),
        fom(problem, 1.0) {
    Rng rng(1);
    for (int i = 0; i < 60; ++i) {
      SimRecord r;
      r.x = problem.random_design(rng);
      r.metrics = problem.evaluate(r.x).metrics;
      r.simulation_ok = true;
      r.fom = fom(r.metrics);
      records.push_back(std::move(r));
    }
    critic_config.hidden = {48, 48};
    critic_config.steps_per_round = 40;
    actor_config.hidden = {32, 32};
    actor_config.steps_per_round = 30;
    actor_config.lambda = 20.0;
  }

  Critic trained_critic(std::uint64_t seed, int rounds = 25) {
    Rng rng(seed);
    Critic critic(3, 3, critic_config, rng);
    critic.fit_normalizer(records);
    PseudoSampleBatcher batcher(records, scaler);
    Rng train_rng(seed + 1);
    for (int i = 0; i < rounds; ++i) critic.train_round(batcher, train_rng);
    return critic;
  }

  ckt::ConstrainedQuadratic problem;
  nn::RangeScaler scaler;
  ckt::FomEvaluator fom;
  std::vector<SimRecord> records;
  CriticConfig critic_config;
  ActorConfig actor_config;
};

TEST_F(ActorFixture, ProposesBoundedActions) {
  Rng rng(2);
  Actor actor(3, actor_config, rng);
  const Vec a = actor.propose_unit({0.1, -0.2, 0.5});
  ASSERT_EQ(a.size(), 3u);
  for (const double v : a) {
    EXPECT_GE(v, -1.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST_F(ActorFixture, TrainingReducesLoss) {
  Critic critic = trained_critic(3);
  Rng rng(4);
  Actor actor(3, actor_config, rng);
  const Vec lb(3, -1.0), ub(3, 1.0);
  Rng train_rng(5);
  const double first =
      actor.train_round(critic, fom, records, scaler, lb, ub, train_rng);
  double last = first;
  for (int i = 0; i < 8; ++i)
    last = actor.train_round(critic, fom, records, scaler, lb, ub, train_rng);
  EXPECT_LT(last, first);
}

TEST_F(ActorFixture, TrainedProposalsReduceTrueFom) {
  // After training against a good critic, applying the actor's action to a
  // random state should (on average) lower the true objective.
  Critic critic = trained_critic(6);
  Rng rng(7);
  Actor actor(3, actor_config, rng);
  const Vec lb(3, -1.0), ub(3, 1.0);
  Rng train_rng(8);
  for (int i = 0; i < 15; ++i)
    actor.train_round(critic, fom, records, scaler, lb, ub, train_rng);

  Rng test_rng(9);
  double before = 0.0, after = 0.0;
  const int n = 25;
  for (int k = 0; k < n; ++k) {
    const Vec x = problem.random_design(test_rng);
    const Vec u = scaler.to_unit(x);
    const Vec a = actor.propose_unit(u);
    Vec un(3);
    for (std::size_t c = 0; c < 3; ++c) un[c] = std::clamp(u[c] + a[c], -1.0, 1.0);
    const Vec xn = problem.clip(scaler.from_unit(un));
    before += fom(problem.evaluate(x).metrics);
    after += fom(problem.evaluate(xn).metrics);
  }
  EXPECT_LT(after, before);
}

TEST_F(ActorFixture, TightEliteBoxConfinesProposals) {
  Critic critic = trained_critic(10);
  Rng rng(11);
  Actor actor(3, actor_config, rng);
  // Narrow box around u = 0.2.
  const Vec lb(3, 0.15), ub(3, 0.25);
  Rng train_rng(12);
  for (int i = 0; i < 20; ++i)
    actor.train_round(critic, fom, records, scaler, lb, ub, train_rng);

  // States inside the box should produce next-designs near the box.
  Rng test_rng(13);
  for (int k = 0; k < 10; ++k) {
    Vec u(3);
    for (auto& v : u) v = test_rng.uniform(0.15, 0.25);
    const Vec a = actor.propose_unit(u);
    for (std::size_t c = 0; c < 3; ++c) {
      const double un = u[c] + a[c];
      EXPECT_GT(un, 0.15 - 0.15);  // within 0.15 of the box
      EXPECT_LT(un, 0.25 + 0.15);
    }
  }
}

TEST_F(ActorFixture, SelectCandidatePicksFromEliteStates) {
  Critic critic = trained_critic(14);
  Rng rng(15);
  Actor actor(3, actor_config, rng);
  std::vector<EliteSet::Entry> elites;
  for (int i = 0; i < 5; ++i)
    elites.push_back({records[static_cast<std::size_t>(i)].x, records[static_cast<std::size_t>(i)].fom});
  const Vec proposal = actor.select_candidate_unit(critic, fom, elites, scaler);
  ASSERT_EQ(proposal.size(), 3u);
  // proposal = state + action with action in [-1,1]: stays in [-2,2].
  for (const double v : proposal) {
    EXPECT_GE(v, -2.0);
    EXPECT_LE(v, 2.0);
  }
}

TEST_F(ActorFixture, SelectCandidateEmptyEliteThrows) {
  Critic critic = trained_critic(16, 2);
  Rng rng(17);
  Actor actor(3, actor_config, rng);
  EXPECT_THROW(actor.select_candidate_unit(critic, fom, {}, scaler), std::invalid_argument);
}

TEST_F(ActorFixture, TrainOnEmptyPopulationThrows) {
  Critic critic = trained_critic(18, 2);
  Rng rng(19);
  Actor actor(3, actor_config, rng);
  std::vector<SimRecord> empty;
  const Vec lb(3, -1.0), ub(3, 1.0);
  EXPECT_THROW(actor.train_round(critic, fom, empty, scaler, lb, ub, rng), std::invalid_argument);
}

}  // namespace
}  // namespace maopt::core
