#include "core/history_io.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "circuits/analytic_problems.hpp"
#include "core/random_search.hpp"

namespace maopt::core {
namespace {

struct IoFixture : ::testing::Test {
  IoFixture() : problem(3) {
    Rng rng(1);
    auto init = sample_initial_set(problem, 5, rng);
    std::vector<linalg::Vec> rows;
    for (const auto& r : init) rows.push_back(r.metrics);
    const auto fom = ckt::FomEvaluator::fit_reference(problem, rows);
    RandomSearch rs;
    history = rs.run(problem, init, fom, 2, 7);
  }
  ckt::ConstrainedQuadratic problem;
  RunHistory history;
};

std::vector<std::string> split(const std::string& line) {
  std::vector<std::string> cells;
  std::stringstream ss(line);
  std::string cell;
  while (std::getline(ss, cell, ',')) cells.push_back(cell);
  return cells;
}

TEST_F(IoFixture, RecordsCsvShape) {
  std::ostringstream out;
  write_records_csv(out, history, problem);
  std::istringstream in(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  const auto header = split(line);
  // index, phase, 3 params, 3 metrics, fom, feasible, simulation_ok
  EXPECT_EQ(header.size(), 2u + 3 + 3 + 3);
  EXPECT_EQ(header[0], "index");
  EXPECT_EQ(header[2], "x0");
  EXPECT_EQ(header[5], "sq_error");
  EXPECT_EQ(header.back(), "simulation_ok");
  std::size_t rows = 0;
  while (std::getline(in, line)) {
    EXPECT_EQ(split(line).size(), header.size());
    ++rows;
  }
  EXPECT_EQ(rows, history.records.size());
}

TEST_F(IoFixture, PhaseColumnSeparatesInitialFromSearch) {
  std::ostringstream out;
  write_records_csv(out, history, problem);
  std::istringstream in(out.str());
  std::string line;
  std::getline(in, line);  // header
  std::size_t initial_rows = 0, search_rows = 0;
  while (std::getline(in, line)) {
    const auto cells = split(line);
    if (cells[1] == "initial")
      ++initial_rows;
    else if (cells[1] == "search")
      ++search_rows;
  }
  EXPECT_EQ(initial_rows, history.num_initial);
  EXPECT_EQ(search_rows, history.simulations_used());
}

TEST_F(IoFixture, TrajectoryCsvShape) {
  std::ostringstream out;
  write_trajectory_csv(out, history);
  std::istringstream in(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "simulation,best_fom");
  std::size_t rows = 0;
  double prev = 1e300;
  while (std::getline(in, line)) {
    const auto cells = split(line);
    ASSERT_EQ(cells.size(), 2u);
    const double v = std::stod(cells[1]);
    EXPECT_LE(v, prev);
    prev = v;
    ++rows;
  }
  EXPECT_EQ(rows, history.simulations_used());
}

TEST_F(IoFixture, FileVariantWritesAndFailsOnBadPath) {
  EXPECT_THROW(write_trajectory_csv("/nonexistent-dir/x.csv", history), std::runtime_error);
  const std::string path = "/tmp/maopt_history_io_test.csv";
  write_records_csv(path, history, problem);
  std::ifstream check(path);
  EXPECT_TRUE(check.good());
}

}  // namespace
}  // namespace maopt::core
