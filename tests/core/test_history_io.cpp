#include "core/history_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <sstream>

#include "circuits/analytic_problems.hpp"
#include "core/random_search.hpp"

namespace maopt::core {
namespace {

struct IoFixture : ::testing::Test {
  IoFixture() : problem(3) {
    Rng rng(1);
    auto init = sample_initial_set(problem, 5, rng);
    std::vector<linalg::Vec> rows;
    for (const auto& r : init) rows.push_back(r.metrics);
    const auto fom = ckt::FomEvaluator::fit_reference(problem, rows);
    RandomSearch rs;
    history = rs.run(problem, init, fom, 2, 7);
  }
  ckt::ConstrainedQuadratic problem;
  RunHistory history;
};

std::vector<std::string> split(const std::string& line) {
  std::vector<std::string> cells;
  std::stringstream ss(line);
  std::string cell;
  while (std::getline(ss, cell, ',')) cells.push_back(cell);
  return cells;
}

TEST_F(IoFixture, RecordsCsvShape) {
  std::ostringstream out;
  write_records_csv(out, history, problem);
  std::istringstream in(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  const auto header = split(line);
  // index, phase, 3 params, 3 metrics, fom, feasible, simulation_ok
  EXPECT_EQ(header.size(), 2u + 3 + 3 + 3);
  EXPECT_EQ(header[0], "index");
  EXPECT_EQ(header[2], "x0");
  EXPECT_EQ(header[5], "sq_error");
  EXPECT_EQ(header.back(), "simulation_ok");
  std::size_t rows = 0;
  while (std::getline(in, line)) {
    EXPECT_EQ(split(line).size(), header.size());
    ++rows;
  }
  EXPECT_EQ(rows, history.records.size());
}

TEST_F(IoFixture, PhaseColumnSeparatesInitialFromSearch) {
  std::ostringstream out;
  write_records_csv(out, history, problem);
  std::istringstream in(out.str());
  std::string line;
  std::getline(in, line);  // header
  std::size_t initial_rows = 0, search_rows = 0;
  while (std::getline(in, line)) {
    const auto cells = split(line);
    if (cells[1] == "initial")
      ++initial_rows;
    else if (cells[1] == "search")
      ++search_rows;
  }
  EXPECT_EQ(initial_rows, history.num_initial);
  EXPECT_EQ(search_rows, history.simulations_used());
}

TEST_F(IoFixture, TrajectoryCsvShape) {
  std::ostringstream out;
  write_trajectory_csv(out, history);
  std::istringstream in(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "simulation,best_fom");
  std::size_t rows = 0;
  double prev = 1e300;
  while (std::getline(in, line)) {
    const auto cells = split(line);
    ASSERT_EQ(cells.size(), 2u);
    const double v = std::stod(cells[1]);
    EXPECT_LE(v, prev);
    prev = v;
    ++rows;
  }
  EXPECT_EQ(rows, history.simulations_used());
}

TEST_F(IoFixture, FileVariantWritesAndFailsOnBadPath) {
  EXPECT_THROW(write_trajectory_csv("/nonexistent-dir/x.csv", history), std::runtime_error);
  const std::string path = "/tmp/maopt_history_io_test.csv";
  write_records_csv(path, history, problem);
  std::ifstream check(path);
  EXPECT_TRUE(check.good());
}

TEST_F(IoFixture, CheckpointRoundTripPreservesEverything) {
  history.aborted = true;
  history.abort_reason = "circuit breaker";
  history.records[1].simulation_ok = false;
  history.records[1].feasible = false;
  const std::string path = "/tmp/maopt_checkpoint_roundtrip.ckpt";
  save_checkpoint(path, history, 0xDEADBEEFu);

  const RunCheckpoint loaded = load_checkpoint(path);
  EXPECT_EQ(loaded.version, kCheckpointFormatVersion);
  EXPECT_EQ(loaded.seed, 0xDEADBEEFu);
  const RunHistory& h = loaded.history;
  EXPECT_EQ(h.algorithm, history.algorithm);
  EXPECT_EQ(h.num_initial, history.num_initial);
  EXPECT_TRUE(h.aborted);
  EXPECT_EQ(h.abort_reason, "circuit breaker");
  EXPECT_DOUBLE_EQ(h.wall_seconds, history.wall_seconds);
  EXPECT_DOUBLE_EQ(h.sim_seconds, history.sim_seconds);
  ASSERT_EQ(h.records.size(), history.records.size());
  for (std::size_t i = 0; i < h.records.size(); ++i) {
    EXPECT_EQ(h.records[i].x, history.records[i].x);
    EXPECT_EQ(h.records[i].metrics, history.records[i].metrics);
    EXPECT_DOUBLE_EQ(h.records[i].fom, history.records[i].fom);
    EXPECT_EQ(h.records[i].feasible, history.records[i].feasible);
    EXPECT_EQ(h.records[i].simulation_ok, history.records[i].simulation_ok);
  }
  EXPECT_EQ(h.best_fom_after, history.best_fom_after);
  std::remove(path.c_str());
}

TEST_F(IoFixture, CheckpointSaveIsAtomicNoTempFileLeftBehind) {
  const std::string path = "/tmp/maopt_checkpoint_atomic.ckpt";
  save_checkpoint(path, history, 1);
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());  // the temp file was renamed away
  std::ifstream real(path);
  EXPECT_TRUE(real.good());
  std::remove(path.c_str());
}

TEST_F(IoFixture, CheckpointLoadRejectsMissingAndCorruptFiles) {
  EXPECT_THROW(load_checkpoint("/tmp/maopt_no_such_file.ckpt"), std::runtime_error);

  const std::string bad_magic = "/tmp/maopt_checkpoint_badmagic.ckpt";
  {
    std::ofstream out(bad_magic, std::ios::binary);
    out << "NOTMAOPT-garbage-garbage-garbage";
  }
  EXPECT_THROW(load_checkpoint(bad_magic), std::runtime_error);
  std::remove(bad_magic.c_str());

  // Truncation anywhere in the payload must throw, never crash or return
  // a partially-filled history.
  const std::string full = "/tmp/maopt_checkpoint_full.ckpt";
  save_checkpoint(full, history, 9);
  std::ifstream in(full, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  in.close();
  const std::string cut = "/tmp/maopt_checkpoint_cut.ckpt";
  for (const double frac : {0.3, 0.6, 0.95}) {
    {
      std::ofstream out(cut, std::ios::binary);
      out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() * frac));
    }
    EXPECT_THROW(load_checkpoint(cut), std::runtime_error) << "frac " << frac;
  }
  std::remove(full.c_str());
  std::remove(cut.c_str());
}

}  // namespace
}  // namespace maopt::core
