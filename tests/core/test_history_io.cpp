#include "core/history_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <sstream>

#include "circuits/analytic_problems.hpp"
#include "core/random_search.hpp"

namespace maopt::core {
namespace {

struct IoFixture : ::testing::Test {
  IoFixture() : problem(3) {
    Rng rng(1);
    auto init = sample_initial_set(problem, 5, rng);
    std::vector<linalg::Vec> rows;
    for (const auto& r : init) rows.push_back(r.metrics);
    const auto fom = ckt::FomEvaluator::fit_reference(problem, rows);
    RandomSearch rs;
    history = rs.run(problem, init, fom, {.seed = 2, .simulation_budget = 7});
  }
  ckt::ConstrainedQuadratic problem;
  RunHistory history;
};

std::vector<std::string> split(const std::string& line) {
  std::vector<std::string> cells;
  std::stringstream ss(line);
  std::string cell;
  while (std::getline(ss, cell, ',')) cells.push_back(cell);
  return cells;
}

TEST_F(IoFixture, RecordsCsvShape) {
  std::ostringstream out;
  write_records_csv(out, history, problem);
  std::istringstream in(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  const auto header = split(line);
  // index, phase, 3 params, 3 metrics, fom, feasible, simulation_ok
  EXPECT_EQ(header.size(), 2u + 3 + 3 + 3);
  EXPECT_EQ(header[0], "index");
  EXPECT_EQ(header[2], "x0");
  EXPECT_EQ(header[5], "sq_error");
  EXPECT_EQ(header.back(), "simulation_ok");
  std::size_t rows = 0;
  while (std::getline(in, line)) {
    EXPECT_EQ(split(line).size(), header.size());
    ++rows;
  }
  EXPECT_EQ(rows, history.records.size());
}

TEST_F(IoFixture, PhaseColumnSeparatesInitialFromSearch) {
  std::ostringstream out;
  write_records_csv(out, history, problem);
  std::istringstream in(out.str());
  std::string line;
  std::getline(in, line);  // header
  std::size_t initial_rows = 0, search_rows = 0;
  while (std::getline(in, line)) {
    const auto cells = split(line);
    if (cells[1] == "initial")
      ++initial_rows;
    else if (cells[1] == "search")
      ++search_rows;
  }
  EXPECT_EQ(initial_rows, history.num_initial);
  EXPECT_EQ(search_rows, history.simulations_used());
}

TEST_F(IoFixture, TrajectoryCsvShape) {
  std::ostringstream out;
  write_trajectory_csv(out, history);
  std::istringstream in(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "simulation,best_fom");
  std::size_t rows = 0;
  double prev = 1e300;
  while (std::getline(in, line)) {
    const auto cells = split(line);
    ASSERT_EQ(cells.size(), 2u);
    const double v = std::stod(cells[1]);
    EXPECT_LE(v, prev);
    prev = v;
    ++rows;
  }
  EXPECT_EQ(rows, history.simulations_used());
}

TEST_F(IoFixture, FileVariantWritesAndFailsOnBadPath) {
  EXPECT_THROW(write_trajectory_csv("/nonexistent-dir/x.csv", history), std::runtime_error);
  const std::string path = "/tmp/maopt_history_io_test.csv";
  write_records_csv(path, history, problem);
  std::ifstream check(path);
  EXPECT_TRUE(check.good());
}

TEST_F(IoFixture, CheckpointRoundTripPreservesEverything) {
  history.aborted = true;
  history.abort_reason = "circuit breaker";
  history.records[1].simulation_ok = false;
  history.records[1].feasible = false;
  const std::string path = "/tmp/maopt_checkpoint_roundtrip.ckpt";
  save_checkpoint(path, history, 0xDEADBEEFu);

  const RunCheckpoint loaded = load_checkpoint(path);
  EXPECT_EQ(loaded.version, kCheckpointFormatVersion);
  EXPECT_EQ(loaded.seed, 0xDEADBEEFu);
  const RunHistory& h = loaded.history;
  EXPECT_EQ(h.algorithm, history.algorithm);
  EXPECT_EQ(h.num_initial, history.num_initial);
  EXPECT_TRUE(h.aborted);
  EXPECT_EQ(h.abort_reason, "circuit breaker");
  EXPECT_DOUBLE_EQ(h.wall_seconds, history.wall_seconds);
  EXPECT_DOUBLE_EQ(h.sim_seconds, history.sim_seconds);
  ASSERT_EQ(h.records.size(), history.records.size());
  for (std::size_t i = 0; i < h.records.size(); ++i) {
    EXPECT_EQ(h.records[i].x, history.records[i].x);
    EXPECT_EQ(h.records[i].metrics, history.records[i].metrics);
    EXPECT_DOUBLE_EQ(h.records[i].fom, history.records[i].fom);
    EXPECT_EQ(h.records[i].feasible, history.records[i].feasible);
    EXPECT_EQ(h.records[i].simulation_ok, history.records[i].simulation_ok);
  }
  EXPECT_EQ(h.best_fom_after, history.best_fom_after);
  std::remove(path.c_str());
}

TEST_F(IoFixture, CheckpointRoundTripPreservesSweepProvenance) {
  history.records[0].degraded = true;
  history.records[0].variants_failed = 2;
  history.records[0].variants_total = 5;
  history.records[2].variants_total = 64;
  const std::string path = "/tmp/maopt_checkpoint_provenance.ckpt";
  save_checkpoint(path, history, 7);

  const RunCheckpoint loaded = load_checkpoint(path);
  EXPECT_EQ(loaded.version, 2u);
  ASSERT_EQ(loaded.history.records.size(), history.records.size());
  for (std::size_t i = 0; i < history.records.size(); ++i) {
    EXPECT_EQ(loaded.history.records[i].degraded, history.records[i].degraded) << i;
    EXPECT_EQ(loaded.history.records[i].variants_failed, history.records[i].variants_failed) << i;
    EXPECT_EQ(loaded.history.records[i].variants_total, history.records[i].variants_total) << i;
  }
  std::remove(path.c_str());
}

TEST_F(IoFixture, CheckpointLoadsVersionOneWithDefaultProvenance) {
  // A v1 snapshot (written before the provenance fields existed) must load
  // with every record defaulting to single-point provenance. Synthesized by
  // writing v2 and rewriting the payload in the v1 layout: version 1 in the
  // header and the 9 provenance bytes stripped from each record.
  const std::string v2_path = "/tmp/maopt_checkpoint_v2_src.ckpt";
  save_checkpoint(v2_path, history, 5);
  std::ifstream in(v2_path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  in.close();

  // Header: 8-byte magic, u32 version, u64 seed, then algorithm string...
  bytes[8] = 1;  // version 2 -> 1 (little-endian u32)
  std::string v1 = bytes.substr(0, 8 + 4);
  std::size_t i = 8 + 4;
  auto copy_n = [&](std::size_t n) { v1.append(bytes, i, n); i += n; };
  auto read_u64 = [&](std::size_t at) {
    std::uint64_t v = 0;
    std::memcpy(&v, bytes.data() + at, sizeof(v));
    return v;
  };
  copy_n(8);  // seed
  const std::uint64_t alg_len = read_u64(i);
  copy_n(8 + alg_len);  // algorithm
  copy_n(8 + 1);        // num_initial + aborted
  const std::uint64_t reason_len = read_u64(i);
  copy_n(8 + reason_len);  // abort_reason
  copy_n(4 * 8);           // the four seconds fields
  const std::uint64_t num_records = read_u64(i);
  copy_n(8);
  for (std::uint64_t r = 0; r < num_records; ++r) {
    const std::uint64_t x_len = read_u64(i);
    copy_n(8 + x_len * 8);
    const std::uint64_t m_len = read_u64(i);
    copy_n(8 + m_len * 8);
    copy_n(8 + 1 + 1);  // fom + feasible + simulation_ok
    i += 1 + 4 + 4;     // strip degraded + variants_failed + variants_total
  }
  v1.append(bytes, i, std::string::npos);  // best_fom_after tail

  const std::string v1_path = "/tmp/maopt_checkpoint_v1.ckpt";
  {
    std::ofstream out(v1_path, std::ios::binary);
    out.write(v1.data(), static_cast<std::streamsize>(v1.size()));
  }
  const RunCheckpoint loaded = load_checkpoint(v1_path);
  EXPECT_EQ(loaded.version, 1u);
  ASSERT_EQ(loaded.history.records.size(), history.records.size());
  for (const auto& r : loaded.history.records) {
    EXPECT_FALSE(r.degraded);
    EXPECT_EQ(r.variants_failed, 0u);
    EXPECT_EQ(r.variants_total, 0u);
  }
  EXPECT_EQ(loaded.history.records.back().x, history.records.back().x);
  EXPECT_EQ(loaded.history.best_fom_after, history.best_fom_after);
  std::remove(v2_path.c_str());
  std::remove(v1_path.c_str());
}

TEST_F(IoFixture, CheckpointRejectsUnknownFutureVersion) {
  const std::string path = "/tmp/maopt_checkpoint_future.ckpt";
  save_checkpoint(path, history, 3);
  std::fstream io(path, std::ios::in | std::ios::out | std::ios::binary);
  io.seekp(8);
  const std::uint32_t future = 99;
  io.write(reinterpret_cast<const char*>(&future), sizeof(future));
  io.close();
  EXPECT_THROW(load_checkpoint(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST_F(IoFixture, CheckpointSaveIsAtomicNoTempFileLeftBehind) {
  const std::string path = "/tmp/maopt_checkpoint_atomic.ckpt";
  save_checkpoint(path, history, 1);
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());  // the temp file was renamed away
  std::ifstream real(path);
  EXPECT_TRUE(real.good());
  std::remove(path.c_str());
}

TEST_F(IoFixture, CheckpointLoadRejectsMissingAndCorruptFiles) {
  EXPECT_THROW(load_checkpoint("/tmp/maopt_no_such_file.ckpt"), std::runtime_error);

  const std::string bad_magic = "/tmp/maopt_checkpoint_badmagic.ckpt";
  {
    std::ofstream out(bad_magic, std::ios::binary);
    out << "NOTMAOPT-garbage-garbage-garbage";
  }
  EXPECT_THROW(load_checkpoint(bad_magic), std::runtime_error);
  std::remove(bad_magic.c_str());

  // Truncation anywhere in the payload must throw, never crash or return
  // a partially-filled history.
  const std::string full = "/tmp/maopt_checkpoint_full.ckpt";
  save_checkpoint(full, history, 9);
  std::ifstream in(full, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  in.close();
  const std::string cut = "/tmp/maopt_checkpoint_cut.ckpt";
  for (const double frac : {0.3, 0.6, 0.95}) {
    {
      std::ofstream out(cut, std::ios::binary);
      out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() * frac));
    }
    EXPECT_THROW(load_checkpoint(cut), std::runtime_error) << "frac " << frac;
  }
  std::remove(full.c_str());
  std::remove(cut.c_str());
}

}  // namespace
}  // namespace maopt::core
