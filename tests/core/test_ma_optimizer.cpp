#include "core/ma_optimizer.hpp"

#include <gtest/gtest.h>

#include "circuits/analytic_problems.hpp"
#include "core/random_search.hpp"

namespace maopt::core {
namespace {

/// Shrunken networks/rounds so unit tests stay fast; the algorithmic paths
/// (multi-actor, shared/individual sets, near-sampling) are all exercised.
MaOptConfig test_config(MaOptConfig base) {
  base.critic.hidden = {32, 32};
  base.critic.steps_per_round = 20;
  base.actor.hidden = {24, 24};
  base.actor.steps_per_round = 10;
  base.near_sampling.num_samples = 200;
  return base;
}

struct OptFixture : ::testing::Test {
  OptFixture() : problem(4) {
    Rng rng(1);
    initial = sample_initial_set(problem, 25, rng);
    std::vector<linalg::Vec> rows;
    for (const auto& r : initial) rows.push_back(r.metrics);
    fom = std::make_unique<ckt::FomEvaluator>(ckt::FomEvaluator::fit_reference(problem, rows));
  }
  ckt::ConstrainedQuadratic problem;
  std::vector<SimRecord> initial;
  std::unique_ptr<ckt::FomEvaluator> fom;
};

TEST_F(OptFixture, PresetConfigsMatchPaperRoles) {
  EXPECT_EQ(MaOptConfig::dnn_opt().num_actors, 1);
  EXPECT_FALSE(MaOptConfig::dnn_opt().use_near_sampling);
  EXPECT_FALSE(MaOptConfig::ma_opt1().shared_elite_set);
  EXPECT_EQ(MaOptConfig::ma_opt1().num_actors, 3);
  EXPECT_TRUE(MaOptConfig::ma_opt2().shared_elite_set);
  EXPECT_FALSE(MaOptConfig::ma_opt2().use_near_sampling);
  EXPECT_TRUE(MaOptConfig::ma_opt().use_near_sampling);
  EXPECT_EQ(MaOptConfig::ma_opt().t_ns, 5);
  EXPECT_EQ(MaOptConfig::ma_opt().near_sampling.num_samples, 2000);
}

TEST_F(OptFixture, RespectsSimulationBudgetExactly) {
  for (const auto& cfg : {MaOptConfig::dnn_opt(), MaOptConfig::ma_opt1(),
                          MaOptConfig::ma_opt2(), MaOptConfig::ma_opt()}) {
    MaOptimizer opt(test_config(cfg));
    const RunHistory h = opt.run(problem, initial, *fom, {.seed = 5, .simulation_budget = 20});
    EXPECT_EQ(h.simulations_used(), 20u) << cfg.name;
    EXPECT_EQ(h.best_fom_after.size(), 20u) << cfg.name;
  }
}

TEST_F(OptFixture, BestFomTrajectoryMonotone) {
  MaOptimizer opt(test_config(MaOptConfig::ma_opt()));
  const RunHistory h = opt.run(problem, initial, *fom, {.seed = 2, .simulation_budget = 30});
  for (std::size_t i = 1; i < h.best_fom_after.size(); ++i)
    EXPECT_LE(h.best_fom_after[i], h.best_fom_after[i - 1]);
}

TEST_F(OptFixture, ImprovesOverInitialBest) {
  auto recs = initial;
  annotate_foms(recs, problem, *fom);
  double init_best = 1e300;
  for (const auto& r : recs) init_best = std::min(init_best, r.fom);

  MaOptimizer opt(test_config(MaOptConfig::ma_opt()));
  const RunHistory h = opt.run(problem, initial, *fom, {.seed = 3, .simulation_budget = 40});
  EXPECT_LT(h.best_fom_after.back(), init_best);
}

TEST_F(OptFixture, DeterministicForFixedSeed) {
  MaOptimizer a(test_config(MaOptConfig::ma_opt()));
  MaOptimizer b(test_config(MaOptConfig::ma_opt()));
  const RunHistory ha = a.run(problem, initial, *fom, {.seed = 77, .simulation_budget = 15});
  const RunHistory hb = b.run(problem, initial, *fom, {.seed = 77, .simulation_budget = 15});
  ASSERT_EQ(ha.records.size(), hb.records.size());
  for (std::size_t i = 0; i < ha.records.size(); ++i) EXPECT_EQ(ha.records[i].x, hb.records[i].x);
}

TEST_F(OptFixture, NearSamplingIterationsHappenOnceFeasible) {
  // The quadratic problem has feasible designs in any moderate sample, so
  // NS fires every T_NS iterations and its timer accumulates.
  MaOptimizer opt(test_config(MaOptConfig::ma_opt()));
  const RunHistory h = opt.run(problem, initial, *fom, {.seed = 4, .simulation_budget = 30});
  EXPECT_GT(h.ns_seconds, 0.0);
}

TEST_F(OptFixture, NoNearSamplingInMaOpt2) {
  MaOptimizer opt(test_config(MaOptConfig::ma_opt2()));
  const RunHistory h = opt.run(problem, initial, *fom, {.seed = 4, .simulation_budget = 30});
  EXPECT_DOUBLE_EQ(h.ns_seconds, 0.0);
}

TEST_F(OptFixture, CandidatesRespectBoundsAndIntegrality) {
  ckt::ConstrainedRosenbrock rosen(4);
  Rng rng(6);
  auto init = sample_initial_set(rosen, 20, rng);
  std::vector<linalg::Vec> rows;
  for (const auto& r : init) rows.push_back(r.metrics);
  const auto rfom = ckt::FomEvaluator::fit_reference(rosen, rows);
  MaOptimizer opt(test_config(MaOptConfig::ma_opt()));
  const RunHistory h = opt.run(rosen, init, rfom, {.seed = 8, .simulation_budget = 25});
  for (std::size_t i = init.size(); i < h.records.size(); ++i) {
    const auto& x = h.records[i].x;
    for (std::size_t c = 0; c < x.size(); ++c) {
      EXPECT_GE(x[c], rosen.lower_bounds()[c]);
      EXPECT_LE(x[c], rosen.upper_bounds()[c]);
    }
    EXPECT_DOUBLE_EQ(x.back(), std::round(x.back()));
  }
}

TEST_F(OptFixture, BeatsRandomSearchOnAverage) {
  // Medium-size config: large enough for learning to actually kick in,
  // deterministic seeds so the comparison is stable.
  MaOptConfig cfg = MaOptConfig::ma_opt();
  cfg.critic.hidden = {64, 64};
  cfg.critic.steps_per_round = 40;
  cfg.actor.hidden = {48, 48};
  cfg.actor.steps_per_round = 20;
  cfg.near_sampling.num_samples = 500;

  double ma_total = 0.0, rnd_total = 0.0;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    Rng rng(seed + 100);
    auto init = sample_initial_set(problem, 25, rng);
    std::vector<linalg::Vec> rows;
    for (const auto& r : init) rows.push_back(r.metrics);
    const auto f = ckt::FomEvaluator::fit_reference(problem, rows);
    MaOptimizer ma(cfg);
    RandomSearch rnd;
    ma_total += ma.run(problem, init, f, {.seed = seed, .simulation_budget = 45}).best_fom_after.back();
    rnd_total += rnd.run(problem, init, f, {.seed = seed, .simulation_budget = 45}).best_fom_after.back();
  }
  EXPECT_LT(ma_total, rnd_total);
}

TEST_F(OptFixture, TimersAccountedAndHistoryAnnotated) {
  MaOptimizer opt(test_config(MaOptConfig::ma_opt2()));
  const RunHistory h = opt.run(problem, initial, *fom, {.seed = 9, .simulation_budget = 12});
  EXPECT_GT(h.train_seconds, 0.0);
  EXPECT_GT(h.wall_seconds, 0.0);
  EXPECT_EQ(h.algorithm, "MA-Opt2");
  for (const auto& r : h.records) {
    EXPECT_TRUE(std::isfinite(r.fom));
  }
  EXPECT_NE(h.best(), nullptr);
}

TEST_F(OptFixture, BestFeasibleReturnsLowestTargetAmongFeasible) {
  MaOptimizer opt(test_config(MaOptConfig::dnn_opt()));
  const RunHistory h = opt.run(problem, initial, *fom, {.seed = 10, .simulation_budget = 20});
  const SimRecord* bf = h.best_feasible();
  if (bf != nullptr) {
    for (const auto& r : h.records) {
      if (r.feasible) {
        EXPECT_LE(bf->metrics[0], r.metrics[0]);
      }
    }
  }
}

}  // namespace
}  // namespace maopt::core
