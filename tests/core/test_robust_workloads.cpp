// Population-scale robustness acceptance tests: optimizers driven over
// corner (RobustProblem) and Monte Carlo yield (YieldProblem) sweeps with
// injected faults must complete their full budget, degrade per policy,
// record sweep provenance in the history, and replay bit-identical from
// checkpoints.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "../support/variation_test_problems.hpp"
#include "circuits/resilient_problem.hpp"
#include "circuits/robust_problem.hpp"
#include "core/ma_optimizer.hpp"
#include "eval/eval_service.hpp"

namespace maopt::core {
namespace {

MaOptConfig small_config(MaOptConfig base) {
  base.critic.hidden = {24, 24};
  base.critic.steps_per_round = 10;
  base.actor.hidden = {16, 16};
  base.actor.steps_per_round = 5;
  base.near_sampling.num_samples = 100;
  return base;
}

/// Faulty corner stack at the given mixed fault rate (no hangs — these tests
/// exercise the sweep policies, not the deadline machinery).
ckt::FaultInjectionConfig fault_config(double rate) {
  ckt::FaultInjectionConfig cfg;
  cfg.throw_rate = rate / 2;
  cfg.nan_rate = rate / 4;
  cfg.garbage_rate = rate / 4;
  cfg.seed = 17;
  return cfg;
}

struct RobustWorkloadFixture : ::testing::Test {
  void run_and_check(const ckt::SizingProblem& problem, std::uint64_t seed, std::size_t budget,
                     RunHistory* out) {
    Rng rng(1);
    auto initial = sample_initial_set(problem, 10, rng);
    std::vector<linalg::Vec> rows;
    for (const auto& r : initial) rows.push_back(r.metrics);
    const auto fom = ckt::FomEvaluator::fit_reference(problem, rows);
    MaOptimizer opt(small_config(MaOptConfig::ma_opt()));
    RunHistory h;
    ASSERT_NO_THROW(h = opt.run(problem, initial, fom, {.seed = seed, .simulation_budget = budget}));
    EXPECT_FALSE(h.aborted);
    EXPECT_EQ(h.simulations_used(), budget);
    for (const auto& r : h.records) {
      EXPECT_TRUE(std::isfinite(r.fom));
      for (const double m : r.metrics) EXPECT_TRUE(std::isfinite(m));
    }
    if (out != nullptr) *out = h;
  }

  ckt::testing::VariedAnalytic inner;
};

TEST_F(RobustWorkloadFixture, WorstCornerRunCompletesFullBudgetAtFiftyPercentFaults) {
  const ckt::FaultInjectingProblem faulty(inner, fault_config(0.5));
  ckt::RobustConfig config;  // worst-case + penalize-failed
  const ckt::RobustProblem robust(faulty, config);

  RunHistory h;
  run_and_check(robust, 11, 25, &h);
  EXPECT_GT(faulty.injected(), 0u);

  // Provenance: every record is a 5-corner aggregate, and with a 50% fault
  // rate a good share of sweeps must be degraded or failed.
  std::size_t with_losses = 0;
  for (const auto& r : h.records) {
    EXPECT_EQ(r.variants_total, 5u);
    if (r.variants_failed > 0) ++with_losses;
    if (r.degraded) {
      EXPECT_TRUE(r.simulation_ok);
      EXPECT_GT(r.variants_failed, 0u);
    }
  }
  EXPECT_GT(with_losses, 0u);
  const ckt::SweepStats stats = robust.stats();
  EXPECT_EQ(stats.sweeps, h.records.size());
  EXPECT_EQ(stats.variants_ok + stats.variants_failed, 5 * h.records.size());
}

TEST_F(RobustWorkloadFixture, YieldRunWith64InstancesCompletesAtFiftyPercentFaults) {
  const ckt::FaultInjectingProblem faulty(inner, fault_config(0.5));
  ckt::YieldConfig config;
  config.mismatch.instances = 64;
  config.mismatch.sigma_vth = 0.05;
  // With per-instance fault draws at 50%, penalize-failed keeps the
  // evaluation usable while the quantile absorbs the losses.
  config.policy.yield_target = 0.9;
  const ckt::YieldProblem yield(faulty, config);

  RunHistory h;
  run_and_check(yield, 5, 15, &h);
  for (const auto& r : h.records) EXPECT_EQ(r.variants_total, 64u);
  const ckt::SweepStats stats = yield.stats();
  EXPECT_EQ(stats.sweeps, h.records.size());
  EXPECT_GT(stats.variants_failed, 0u);
  EXPECT_GT(stats.variants_ok, 0u);
}

TEST_F(RobustWorkloadFixture, SweepTrajectoriesAreReplayDeterministic) {
  for (const double rate : {0.0, 0.3, 0.5}) {
    const ckt::FaultInjectingProblem f1(inner, fault_config(rate));
    const ckt::FaultInjectingProblem f2(inner, fault_config(rate));
    const ckt::RobustProblem r1(f1, ckt::RobustConfig{});
    const ckt::RobustProblem r2(f2, ckt::RobustConfig{});
    RunHistory a, b;
    run_and_check(r1, 23, 18, &a);
    run_and_check(r2, 23, 18, &b);
    ASSERT_EQ(a.records.size(), b.records.size()) << "rate " << rate;
    for (std::size_t i = 0; i < a.records.size(); ++i) {
      EXPECT_EQ(a.records[i].x, b.records[i].x) << "rate " << rate << " record " << i;
      EXPECT_EQ(a.records[i].metrics, b.records[i].metrics)
          << "rate " << rate << " record " << i;
      EXPECT_EQ(a.records[i].variants_failed, b.records[i].variants_failed)
          << "rate " << rate << " record " << i;
    }
    EXPECT_EQ(a.best_fom_after, b.best_fom_after) << "rate " << rate;
  }
}

TEST_F(RobustWorkloadFixture, CheckpointResumeReplaysSweepRunBitIdentical) {
  const std::string path = "/tmp/maopt_robust_resume_test.ckpt";
  std::remove(path.c_str());

  const ckt::FaultInjectingProblem faulty(inner, fault_config(0.5));
  const ckt::RobustProblem robust(faulty, ckt::RobustConfig{});

  Rng rng(1);
  auto initial = sample_initial_set(robust, 10, rng);
  std::vector<linalg::Vec> rows;
  for (const auto& r : initial) rows.push_back(r.metrics);
  const auto fom = ckt::FomEvaluator::fit_reference(robust, rows);

  const std::size_t budget = 20;
  MaOptConfig cfg = small_config(MaOptConfig::ma_opt());
  MaOptimizer ref_opt(cfg);
  const RunHistory ref = ref_opt.run(robust, initial, fom, {.seed = 31, .simulation_budget = budget});

  // The cadence must not divide the terminal iteration, so the last snapshot
  // on disk is exactly what a run killed mid-budget would leave behind.
  cfg.checkpoint_path = path;
  cfg.checkpoint_every = 3;
  MaOptimizer ckpt_opt(cfg);
  (void)ckpt_opt.run(robust, initial, fom, {.seed = 31, .simulation_budget = budget});

  const RunCheckpoint snapshot = load_checkpoint(path);
  EXPECT_EQ(snapshot.version, kCheckpointFormatVersion);
  ASSERT_LT(snapshot.history.simulations_used(), budget);  // genuinely mid-run
  // Provenance survives the checkpoint round trip.
  for (const auto& r : snapshot.history.records) EXPECT_EQ(r.variants_total, 5u);

  MaOptimizer resumed_opt(cfg);
  const RunHistory resumed = resumed_opt.resume(robust, snapshot, fom, budget);
  ASSERT_EQ(resumed.records.size(), ref.records.size());
  for (std::size_t i = 0; i < ref.records.size(); ++i) {
    EXPECT_EQ(resumed.records[i].x, ref.records[i].x) << "record " << i;
    EXPECT_EQ(resumed.records[i].metrics, ref.records[i].metrics) << "record " << i;
    EXPECT_EQ(resumed.records[i].degraded, ref.records[i].degraded) << "record " << i;
    EXPECT_EQ(resumed.records[i].variants_failed, ref.records[i].variants_failed)
        << "record " << i;
    EXPECT_EQ(resumed.records[i].variants_total, ref.records[i].variants_total)
        << "record " << i;
  }
  EXPECT_EQ(resumed.best_fom_after, ref.best_fom_after);
  std::remove(path.c_str());
}

TEST_F(RobustWorkloadFixture, BatchedServiceStackMatchesSerialTrajectory) {
  // Full production stack (faults -> EvalService backend -> RobustProblem)
  // against the serial sweep: identical optimizer trajectories, fewer
  // simulator calls on re-visited corners.
  const ckt::FaultInjectingProblem faulty(inner, fault_config(0.3));

  eval::EvalServiceConfig scfg;
  scfg.num_threads = 4;
  scfg.use_sessions = false;  // fault decisions key off evaluate_at
  const eval::EvalService service(faulty, scfg);
  const ckt::RobustProblem batched(service, ckt::RobustConfig{});
  ASSERT_TRUE(batched.batched());
  const ckt::RobustProblem serial(faulty, ckt::RobustConfig{});
  ASSERT_FALSE(serial.batched());

  RunHistory a, b;
  run_and_check(batched, 41, 16, &a);
  run_and_check(serial, 41, 16, &b);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].x, b.records[i].x) << "record " << i;
    EXPECT_EQ(a.records[i].metrics, b.records[i].metrics) << "record " << i;
  }
  const auto counters = service.counters();
  EXPECT_GT(counters.requested, 0u);
  EXPECT_EQ(counters.hits + counters.misses, counters.requested);
}

}  // namespace
}  // namespace maopt::core
