#include "core/near_sampling.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "circuits/analytic_problems.hpp"

namespace maopt::core {
namespace {

struct NsFixture : ::testing::Test {
  NsFixture()
      : problem(4),
        scaler(problem.lower_bounds(), problem.upper_bounds()),
        fom(problem, 1.0) {
    Rng rng(1);
    for (int i = 0; i < 80; ++i) {
      SimRecord r;
      r.x = problem.random_design(rng);
      r.metrics = problem.evaluate(r.x).metrics;
      r.simulation_ok = true;
      records.push_back(std::move(r));
    }
    CriticConfig cfg;
    cfg.hidden = {48, 48};
    cfg.steps_per_round = 40;
    Rng crng(2);
    critic = std::make_unique<Critic>(4, 3, cfg, crng);
    critic->fit_normalizer(records);
    PseudoSampleBatcher batcher(records, scaler);
    Rng trng(3);
    for (int i = 0; i < 25; ++i) critic->train_round(batcher, trng);
  }

  ckt::ConstrainedQuadratic problem;
  nn::RangeScaler scaler;
  ckt::FomEvaluator fom;
  std::vector<SimRecord> records;
  std::unique_ptr<Critic> critic;
};

TEST_F(NsFixture, CandidateStaysInsideDeltaBox) {
  NearSamplingConfig cfg;
  cfg.num_samples = 300;
  cfg.delta_frac = 0.05;
  const Vec x_opt(4, 0.5);
  Rng rng(4);
  const Vec cand = near_sampling_candidate(problem, fom, *critic, scaler, x_opt, cfg, rng);
  for (std::size_t c = 0; c < 4; ++c) EXPECT_LE(std::abs(cand[c] - 0.5), 0.05 + 1e-12);
}

TEST_F(NsFixture, CandidateClippedToGlobalBounds) {
  NearSamplingConfig cfg;
  cfg.num_samples = 200;
  cfg.delta_frac = 0.10;
  const Vec x_opt(4, 0.0);  // at the lower corner
  Rng rng(5);
  const Vec cand = near_sampling_candidate(problem, fom, *critic, scaler, x_opt, cfg, rng);
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_GE(cand[c], 0.0);
    EXPECT_LE(cand[c], 0.10 + 1e-12);
  }
}

TEST_F(NsFixture, PredictedBestMovesTowardTrueOptimum) {
  // With a decent critic and x_opt away from 0.3, the selected neighbour
  // should usually reduce the true objective.
  NearSamplingConfig cfg;
  cfg.num_samples = 1000;
  cfg.delta_frac = 0.04;
  const Vec x_opt(4, 0.5);
  Rng rng(6);
  const double before = fom(problem.evaluate(x_opt).metrics);
  int improved = 0;
  for (int trial = 0; trial < 5; ++trial) {
    const Vec cand = near_sampling_candidate(problem, fom, *critic, scaler, x_opt, cfg, rng);
    if (fom(problem.evaluate(cand).metrics) < before) ++improved;
  }
  EXPECT_GE(improved, 3);
}

TEST_F(NsFixture, SingleSampleDegenerateCase) {
  NearSamplingConfig cfg;
  cfg.num_samples = 1;
  cfg.delta_frac = 0.01;
  const Vec x_opt(4, 0.4);
  Rng rng(7);
  const Vec cand = near_sampling_candidate(problem, fom, *critic, scaler, x_opt, cfg, rng);
  for (std::size_t c = 0; c < 4; ++c) EXPECT_NEAR(cand[c], 0.4, 0.011);
}

TEST_F(NsFixture, IntegerParametersStayIntegral) {
  ckt::ConstrainedRosenbrock rosen(3);  // last param integer
  nn::RangeScaler rscaler(rosen.lower_bounds(), rosen.upper_bounds());
  ckt::FomEvaluator rfom(rosen, 1.0);
  std::vector<SimRecord> recs;
  Rng rng(8);
  for (int i = 0; i < 30; ++i) {
    SimRecord r;
    r.x = rosen.random_design(rng);
    r.metrics = rosen.evaluate(r.x).metrics;
    recs.push_back(std::move(r));
  }
  CriticConfig cfg;
  cfg.hidden = {24, 24};
  cfg.steps_per_round = 10;
  Rng crng(9);
  Critic rcritic(3, 2, cfg, crng);
  rcritic.fit_normalizer(recs);
  PseudoSampleBatcher batcher(recs, rscaler);
  rcritic.train_round(batcher, crng);

  NearSamplingConfig ns;
  ns.num_samples = 100;
  ns.delta_frac = 0.2;
  const Vec x_opt{0.9, 0.9, 1.0};
  const Vec cand = near_sampling_candidate(rosen, rfom, rcritic, rscaler, x_opt, ns, rng);
  EXPECT_DOUBLE_EQ(cand[2], std::round(cand[2]));
}

}  // namespace
}  // namespace maopt::core
