#include "core/history.hpp"

#include <gtest/gtest.h>

#include "circuits/analytic_problems.hpp"

namespace maopt::core {
namespace {

SimRecord make_record(double f0, double fom, bool feasible) {
  SimRecord r;
  r.x = {0.0};
  r.metrics = {f0, 1.0, 0.0};
  r.fom = fom;
  r.feasible = feasible;
  r.simulation_ok = true;
  return r;
}

TEST(RunHistory, BestPicksLowestFom) {
  RunHistory h;
  h.records.push_back(make_record(1.0, 0.5, false));
  h.records.push_back(make_record(2.0, 0.1, false));
  h.records.push_back(make_record(3.0, 0.9, false));
  ASSERT_NE(h.best(), nullptr);
  EXPECT_DOUBLE_EQ(h.best()->fom, 0.1);
}

TEST(RunHistory, BestFeasiblePicksLowestTargetAmongFeasible) {
  RunHistory h;
  h.records.push_back(make_record(0.5, 0.01, false));  // better FoM but infeasible
  h.records.push_back(make_record(2.0, 0.2, true));
  h.records.push_back(make_record(1.5, 0.3, true));    // worse FoM, better target
  ASSERT_NE(h.best_feasible(), nullptr);
  EXPECT_DOUBLE_EQ(h.best_feasible()->metrics[0], 1.5);
}

TEST(RunHistory, BestFeasibleNullWhenNoneFeasible) {
  RunHistory h;
  h.records.push_back(make_record(1.0, 0.5, false));
  EXPECT_EQ(h.best_feasible(), nullptr);
}

TEST(RunHistory, EmptyHistoryBestIsNull) {
  RunHistory h;
  EXPECT_EQ(h.best(), nullptr);
  EXPECT_EQ(h.best_feasible(), nullptr);
}

TEST(RunHistory, SimulationsUsedExcludesInitial) {
  RunHistory h;
  h.num_initial = 3;
  for (int i = 0; i < 8; ++i) h.records.push_back(make_record(1, 1, false));
  EXPECT_EQ(h.simulations_used(), 5u);
}

TEST(SampleInitialSet, DifferentSeedsGiveDifferentSets) {
  ckt::ConstrainedQuadratic problem(4);
  Rng a(1), b(2);
  const auto sa = sample_initial_set(problem, 5, a);
  const auto sb = sample_initial_set(problem, 5, b);
  EXPECT_NE(sa[0].x, sb[0].x);
}

}  // namespace
}  // namespace maopt::core
