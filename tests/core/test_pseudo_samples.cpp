#include "core/pseudo_samples.hpp"

#include <gtest/gtest.h>

#include "circuits/analytic_problems.hpp"

namespace maopt::core {
namespace {

std::vector<SimRecord> make_records(const ckt::SizingProblem& p, std::size_t n, Rng& rng) {
  std::vector<SimRecord> recs;
  for (std::size_t i = 0; i < n; ++i) {
    SimRecord r;
    r.x = p.random_design(rng);
    r.metrics = p.evaluate(r.x).metrics;
    r.simulation_ok = true;
    recs.push_back(std::move(r));
  }
  return recs;
}

TEST(PseudoSamples, ShapesMatchBatchRequest) {
  ckt::ConstrainedQuadratic p(3);
  Rng rng(1);
  const auto recs = make_records(p, 10, rng);
  nn::RangeScaler scaler(p.lower_bounds(), p.upper_bounds());
  PseudoSampleBatcher batcher(recs, scaler);
  nn::Mat x, y;
  batcher.sample(17, rng, x, y);
  EXPECT_EQ(x.rows(), 17u);
  EXPECT_EQ(x.cols(), 6u);  // 2d
  EXPECT_EQ(y.rows(), 17u);
  EXPECT_EQ(y.cols(), 3u);  // m+1
}

TEST(PseudoSamples, Eq3InvariantHolds) {
  // For every row: target must equal the metrics of the design at
  // unit(x_i) + delta — i.e. f(x_j) (Eq. 3).
  ckt::ConstrainedQuadratic p(4);
  Rng rng(2);
  const auto recs = make_records(p, 12, rng);
  nn::RangeScaler scaler(p.lower_bounds(), p.upper_bounds());
  PseudoSampleBatcher batcher(recs, scaler);
  nn::Mat x, y;
  batcher.sample(50, rng, x, y);
  for (std::size_t k = 0; k < 50; ++k) {
    // Reconstruct x_j from the input row.
    linalg::Vec uj(4);
    for (std::size_t c = 0; c < 4; ++c) uj[c] = x(k, c) + x(k, 4 + c);
    const linalg::Vec xj = scaler.from_unit(uj);
    const auto eval = p.evaluate(xj);
    for (std::size_t c = 0; c < 3; ++c) EXPECT_NEAR(y(k, c), eval.metrics[c], 1e-9);
  }
}

TEST(PseudoSamples, InputsLieInUnitRange) {
  ckt::ConstrainedQuadratic p(2);
  Rng rng(3);
  const auto recs = make_records(p, 8, rng);
  nn::RangeScaler scaler(p.lower_bounds(), p.upper_bounds());
  PseudoSampleBatcher batcher(recs, scaler);
  nn::Mat x, y;
  batcher.sample(100, rng, x, y);
  for (std::size_t k = 0; k < 100; ++k) {
    for (std::size_t c = 0; c < 2; ++c) {
      EXPECT_GE(x(k, c), -1.0 - 1e-12);
      EXPECT_LE(x(k, c), 1.0 + 1e-12);
      EXPECT_GE(x(k, 2 + c), -2.0 - 1e-12);  // deltas span [-2, 2]
      EXPECT_LE(x(k, 2 + c), 2.0 + 1e-12);
    }
  }
}

TEST(PseudoSamples, PopulationOfOneYieldsZeroDeltas) {
  ckt::ConstrainedQuadratic p(2);
  Rng rng(4);
  const auto recs = make_records(p, 1, rng);
  nn::RangeScaler scaler(p.lower_bounds(), p.upper_bounds());
  PseudoSampleBatcher batcher(recs, scaler);
  nn::Mat x, y;
  batcher.sample(5, rng, x, y);
  for (std::size_t k = 0; k < 5; ++k) {
    EXPECT_DOUBLE_EQ(x(k, 2), 0.0);
    EXPECT_DOUBLE_EQ(x(k, 3), 0.0);
  }
}

TEST(PseudoSamples, EmptyPopulationThrows) {
  ckt::ConstrainedQuadratic p(2);
  nn::RangeScaler scaler(p.lower_bounds(), p.upper_bounds());
  std::vector<SimRecord> empty;
  EXPECT_THROW(PseudoSampleBatcher(empty, scaler), std::invalid_argument);
}

}  // namespace
}  // namespace maopt::core
