#include "core/elite_set.hpp"

#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <utility>

namespace maopt::core {
namespace {

TEST(EliteSet, KeepsBestWhenFull) {
  EliteSet es(2);
  EXPECT_TRUE(es.try_insert({1.0}, 5.0));
  EXPECT_TRUE(es.try_insert({2.0}, 3.0));
  EXPECT_TRUE(es.try_insert({3.0}, 4.0));   // evicts fom=5
  EXPECT_FALSE(es.try_insert({4.0}, 9.0));  // worse than current worst
  const auto snap = es.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_DOUBLE_EQ(snap[0].fom, 3.0);
  EXPECT_DOUBLE_EQ(snap[1].fom, 4.0);
}

TEST(EliteSet, SnapshotSortedAscending) {
  EliteSet es(5);
  es.try_insert({1.0}, 2.0);
  es.try_insert({2.0}, 1.0);
  es.try_insert({3.0}, 3.0);
  const auto snap = es.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  for (std::size_t i = 1; i < snap.size(); ++i) EXPECT_LE(snap[i - 1].fom, snap[i].fom);
}

TEST(EliteSet, DuplicateDesignNeverOccupiesSecondSlot) {
  EliteSet es(5);
  EXPECT_TRUE(es.try_insert({1.0, 2.0}, 3.0));
  EXPECT_FALSE(es.try_insert({1.0, 2.0}, 3.0));  // identical design + fom
  EXPECT_FALSE(es.try_insert({1.0, 2.0}, 4.0));  // identical design, worse fom
  EXPECT_EQ(es.size(), 1u);
}

TEST(EliteSet, DuplicateWithBetterFomReranksInPlace) {
  EliteSet es(5);
  es.try_insert({1.0}, 3.0);
  es.try_insert({2.0}, 2.0);
  EXPECT_TRUE(es.try_insert({1.0}, 1.0));  // same design, better fom
  const auto snap = es.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_DOUBLE_EQ(snap[0].fom, 1.0);
  EXPECT_DOUBLE_EQ(snap[0].x[0], 1.0);
}

TEST(EliteSet, BestReturnsLowestFom) {
  EliteSet es(3);
  es.try_insert({1.0}, 2.0);
  es.try_insert({2.0}, 0.5);
  EXPECT_DOUBLE_EQ(es.best().fom, 0.5);
  EXPECT_DOUBLE_EQ(es.best().x[0], 2.0);
}

TEST(EliteSet, BestOnEmptyThrows) {
  EliteSet es(3);
  EXPECT_THROW(es.best(), std::logic_error);
}

TEST(EliteSet, BoundsAreColumnwiseBox) {
  EliteSet es(3);
  es.try_insert({1.0, 5.0}, 1.0);
  es.try_insert({3.0, 2.0}, 2.0);
  Vec lo, hi;
  es.bounds(lo, hi);
  EXPECT_DOUBLE_EQ(lo[0], 1.0);
  EXPECT_DOUBLE_EQ(hi[0], 3.0);
  EXPECT_DOUBLE_EQ(lo[1], 2.0);
  EXPECT_DOUBLE_EQ(hi[1], 5.0);
}

TEST(EliteSet, BoundsSingleEntryDegenerate) {
  EliteSet es(2);
  es.try_insert({7.0}, 1.0);
  Vec lo, hi;
  es.bounds(lo, hi);
  EXPECT_DOUBLE_EQ(lo[0], 7.0);
  EXPECT_DOUBLE_EQ(hi[0], 7.0);
}

TEST(EliteSet, ZeroCapacityThrows) { EXPECT_THROW(EliteSet es(0), std::invalid_argument); }

TEST(EliteSet, TieOnFomStillInserts) {
  EliteSet es(3);
  es.try_insert({1.0}, 1.0);
  EXPECT_TRUE(es.try_insert({2.0}, 1.0));
  EXPECT_EQ(es.size(), 2u);
}

TEST(EliteSet, ConcurrentInsertsKeepInvariant) {
  EliteSet es(16);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&es, t] {
      // Each thread hammers 8 designs with varying FoMs; the duplicate
      // screen must leave exactly one slot per unique design, holding the
      // best FoM that design ever reported.
      for (int i = 0; i < 1000; ++i)
        es.try_insert({static_cast<double>(t), static_cast<double>(i % 8)},
                      static_cast<double>((i * 37 + t * 11) % 500));
    });
  }
  for (auto& th : threads) th.join();
  const auto snap = es.snapshot();
  EXPECT_EQ(snap.size(), 16u);
  for (std::size_t i = 1; i < snap.size(); ++i) EXPECT_LE(snap[i - 1].fom, snap[i].fom);
  std::set<std::pair<double, double>> unique_designs;
  for (const auto& e : snap) unique_designs.emplace(e.x[0], e.x[1]);
  EXPECT_EQ(unique_designs.size(), snap.size()) << "duplicate design occupies two slots";
  // The 4 threads each produced fom=0 at some point; the best must be 0.
  EXPECT_DOUBLE_EQ(snap[0].fom, 0.0);
}

/// The paper's core argument for sharing (Fig. 2): a shared set absorbs all
/// N_act results per iteration, an individual set only its own actor's one.
TEST(EliteSet, SharedSetRefreshesFasterThanIndividual) {
  const int n_act = 3, iterations = 20;
  EliteSet shared(8);
  std::vector<std::unique_ptr<EliteSet>> individual;
  for (int i = 0; i < n_act; ++i) individual.push_back(std::make_unique<EliteSet>(8));

  int shared_updates = 0, individual_updates = 0;
  double fom = 100.0;
  for (int t = 0; t < iterations; ++t) {
    for (int a = 0; a < n_act; ++a) {
      fom -= 1.0;  // every simulation is an improvement
      if (shared.try_insert({fom}, fom)) ++shared_updates;
      if (individual[static_cast<std::size_t>(a)]->try_insert({fom}, fom)) ++individual_updates;
    }
  }
  // Same totals here, but the *best member propagation* differs: each
  // individual set saw only one third of the stream.
  EXPECT_DOUBLE_EQ(shared.best().fom, 40.0);
  double avg_individual_best = 0.0;
  for (const auto& es : individual) avg_individual_best += es->best().fom;
  avg_individual_best /= n_act;
  EXPECT_EQ(shared_updates, individual_updates);
  EXPECT_LE(shared.best().fom, avg_individual_best);
}

}  // namespace
}  // namespace maopt::core
