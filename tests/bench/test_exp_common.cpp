// Tests for the experiment harness the table/figure benches share.
#include "exp_common.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/pso.hpp"
#include "core/random_search.hpp"

namespace maopt::bench {
namespace {

ExperimentConfig tiny_config() {
  ExperimentConfig c;
  c.runs = 2;
  c.sims = 10;
  c.init = 8;
  return c;
}

std::vector<std::unique_ptr<core::Optimizer>> tiny_roster() {
  std::vector<std::unique_ptr<core::Optimizer>> roster;
  roster.push_back(std::make_unique<core::RandomSearch>());
  roster.push_back(std::make_unique<core::PsoOptimizer>());
  return roster;
}

TEST(ExpCommon, ConfigFromCliDefaultsAndFull) {
  {
    const char* argv[] = {"prog"};
    const CliArgs args(1, argv);
    const auto c = ExperimentConfig::from_cli(args);
    EXPECT_EQ(c.runs, 2u);
    EXPECT_EQ(c.sims, 80u);
    EXPECT_FALSE(c.full);
  }
  {
    const char* argv[] = {"prog", "--full"};
    const CliArgs args(2, argv);
    const auto c = ExperimentConfig::from_cli(args);
    EXPECT_TRUE(c.full);
    EXPECT_EQ(c.runs, 10u);
    EXPECT_EQ(c.sims, 200u);
    EXPECT_EQ(c.init, 100u);
  }
  {
    const char* argv[] = {"prog", "--full", "--runs", "4"};
    const CliArgs args(4, argv);
    const auto c = ExperimentConfig::from_cli(args);
    EXPECT_EQ(c.runs, 4u);  // explicit flag overrides the full profile
    EXPECT_EQ(c.sims, 200u);
  }
}

TEST(ExpCommon, RunComparisonAggregatesAllAlgorithms) {
  ckt::ConstrainedQuadratic problem(4);
  const auto summaries = run_comparison(problem, tiny_roster(), tiny_config());
  ASSERT_EQ(summaries.size(), 2u);
  for (const auto& s : summaries) {
    EXPECT_EQ(s.runs, 2);
    EXPECT_GE(s.successes, 0);
    EXPECT_LE(s.successes, 2);
    EXPECT_EQ(s.avg_trajectory.size(), 10u);
    // Trajectories are best-so-far: averaged curves stay non-increasing.
    for (std::size_t i = 1; i < s.avg_trajectory.size(); ++i)
      EXPECT_LE(s.avg_trajectory[i], s.avg_trajectory[i - 1] + 1e-12);
  }
  EXPECT_EQ(summaries[0].name, "Random");
  EXPECT_EQ(summaries[1].name, "PSO");
}

TEST(ExpCommon, SharedInitialSetMakesRunsComparable) {
  // Both algorithms see the same initial set, so their trajectories start
  // from the same best-FoM value.
  ckt::ConstrainedQuadratic problem(4);
  ExperimentConfig config = tiny_config();
  config.runs = 1;
  const auto summaries = run_comparison(problem, tiny_roster(), config);
  // First trajectory points may already differ (first proposal differs), so
  // compare against a fresh reconstruction of the shared initial best.
  Rng rng(derive_seed(config.seed0, 0x1217));
  auto init = core::sample_initial_set(problem, config.init, rng);
  std::vector<linalg::Vec> rows;
  for (const auto& r : init) rows.push_back(r.metrics);
  const auto fom = ckt::FomEvaluator::fit_reference(problem, rows);
  core::annotate_foms(init, problem, fom);
  double init_best = 1e300;
  for (const auto& r : init) init_best = std::min(init_best, r.fom);
  for (const auto& s : summaries) EXPECT_LE(s.avg_trajectory.front(), init_best + 1e-12);
}

TEST(ExpCommon, TrajectoriesCsvWellFormed) {
  ckt::ConstrainedQuadratic problem(3);
  const auto summaries = run_comparison(problem, tiny_roster(), tiny_config());
  const std::string path = "/tmp/maopt_exp_common_test.csv";
  write_trajectories_csv(path, summaries);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "simulation,Random,PSO");
  std::size_t rows = 0;
  std::string line;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, 10u);
  std::remove(path.c_str());
}

TEST(ExpCommon, BenchJsonWellFormed) {
  const std::string path = "/tmp/maopt_bench_json_test.json";
  write_bench_json(path, {{"kernel_gflops", 12.5, "GFLOP/s"},
                          {"train_round_ms", 3.25, "ms"},
                          {"odd\"name\\", 1.0, "unit"}});
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string text((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("\"kernel_gflops\": {\"value\": 12.5, \"unit\": \"GFLOP/s\"}"), std::string::npos)
      << text;
  EXPECT_NE(text.find("\"train_round_ms\": {\"value\": 3.25, \"unit\": \"ms\"}"), std::string::npos);
  // Quotes and backslashes in names must be escaped so the file stays JSON.
  EXPECT_NE(text.find("\"odd\\\"name\\\\\""), std::string::npos) << text;
  EXPECT_EQ(text.front(), '{');
  EXPECT_EQ(text.back(), '\n');
  std::remove(path.c_str());
}

TEST(ExpCommon, PaperRosterHasFiveAlgorithmsInTableOrder) {
  const auto roster = paper_roster();
  ASSERT_EQ(roster.size(), 5u);
  EXPECT_EQ(roster[0]->name(), "BO");
  EXPECT_EQ(roster[1]->name(), "DNN-Opt");
  EXPECT_EQ(roster[2]->name(), "MA-Opt1");
  EXPECT_EQ(roster[3]->name(), "MA-Opt2");
  EXPECT_EQ(roster[4]->name(), "MA-Opt");
}

}  // namespace
}  // namespace maopt::bench
