#include "linalg/cholesky.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "linalg/lu.hpp"

namespace maopt::linalg {
namespace {

Mat random_spd(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Mat b(n, n);
  for (auto& v : b.data()) v = rng.uniform(-1, 1);
  Mat a = matmul(b, b.transposed());
  for (std::size_t i = 0; i < n; ++i) a(i, i) += 0.5;
  return a;
}

TEST(Cholesky, FactorOfIdentityIsIdentity) {
  const Mat i3 = Mat::identity(3);
  const Cholesky chol(i3);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c)
      EXPECT_NEAR(chol.lower()(r, c), r == c ? 1.0 : 0.0, 1e-14);
}

TEST(Cholesky, Known2x2) {
  Mat a(2, 2, {4, 2, 2, 3});
  const Cholesky chol(a);
  EXPECT_NEAR(chol.lower()(0, 0), 2.0, 1e-12);
  EXPECT_NEAR(chol.lower()(1, 0), 1.0, 1e-12);
  EXPECT_NEAR(chol.lower()(1, 1), std::sqrt(2.0), 1e-12);
}

TEST(Cholesky, NotPositiveDefiniteThrows) {
  Mat a(2, 2, {1, 2, 2, 1});  // eigenvalues 3, -1
  EXPECT_THROW(Cholesky chol(a), std::runtime_error);
}

TEST(Cholesky, NonSquareThrows) {
  Mat a(2, 3);
  EXPECT_THROW(Cholesky chol(a), std::invalid_argument);
}

TEST(Cholesky, SolveMatchesLu) {
  const Mat a = random_spd(8, 3);
  Rng rng(4);
  Vec b(8);
  for (auto& v : b) v = rng.uniform(-5, 5);
  const Cholesky chol(a);
  const auto x1 = chol.solve(b);
  const auto x2 = lu_solve(a, b);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_NEAR(x1[i], x2[i], 1e-9);
}

TEST(Cholesky, LogDeterminantMatchesLu) {
  const Mat a = random_spd(6, 7);
  const Cholesky chol(a);
  const LuReal lu(a);
  EXPECT_NEAR(chol.log_determinant(), std::log(std::abs(lu.determinant())), 1e-9);
}

class CholeskyRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(CholeskyRoundTrip, LLtReconstructsMatrix) {
  const auto n = static_cast<std::size_t>(GetParam());
  const Mat a = random_spd(n, GetParam());
  const Cholesky chol(a);
  const Mat rec = matmul(chol.lower(), chol.lower().transposed());
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) EXPECT_NEAR(rec(r, c), a(r, c), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskyRoundTrip, ::testing::Values(1, 2, 4, 8, 16, 32));

TEST(Cholesky, SolveLowerForwardSubstitution) {
  Mat a(2, 2, {4, 0, 2, 3});  // treat as SPD: use A = L L^T with L known
  Mat spd = matmul(a, a.transposed());
  const Cholesky chol(spd);
  Vec b{8.0, 10.0};
  const auto y = chol.solve_lower(b);
  // L y = b must hold.
  const auto& l = chol.lower();
  EXPECT_NEAR(l(0, 0) * y[0], b[0], 1e-10);
  EXPECT_NEAR(l(1, 0) * y[0] + l(1, 1) * y[1], b[1], 1e-10);
}

}  // namespace
}  // namespace maopt::linalg
