#include "linalg/lu.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace maopt::linalg {
namespace {

TEST(Lu, Solves2x2System) {
  Mat a(2, 2, {2, 1, 1, 3});
  const std::vector<double> b{5, 10};
  const auto x = lu_solve(a, b);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Lu, PivotingHandlesZeroDiagonal) {
  Mat a(2, 2, {0, 1, 1, 0});
  const std::vector<double> b{2, 3};
  const auto x = lu_solve(a, b);
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Lu, SingularMatrixThrows) {
  Mat a(2, 2, {1, 2, 2, 4});
  EXPECT_THROW(LuReal dec(a), std::runtime_error);
}

TEST(Lu, NonSquareThrows) {
  Mat a(2, 3);
  EXPECT_THROW(LuReal dec(a), std::invalid_argument);
}

TEST(Lu, DeterminantKnown) {
  Mat a(2, 2, {3, 8, 4, 6});
  const LuReal dec(a);
  EXPECT_NEAR(dec.determinant(), -14.0, 1e-10);
}

TEST(Lu, SolveTransposedMatchesExplicit) {
  Rng rng(1);
  const std::size_t n = 6;
  Mat a(n, n);
  for (auto& v : a.data()) v = rng.uniform(-1, 1);
  for (std::size_t i = 0; i < n; ++i) a(i, i) += 3.0;
  std::vector<double> b(n);
  for (auto& v : b) v = rng.uniform(-1, 1);

  const LuReal dec(a);
  const auto x1 = dec.solve_transposed(b);
  const auto x2 = lu_solve(a.transposed(), b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x1[i], x2[i], 1e-10);
}

TEST(Lu, ComplexSolve) {
  using C = std::complex<double>;
  CMat a(2, 2, {C(1, 1), C(0, 0), C(0, 0), C(0, 2)});
  const std::vector<C> b{C(2, 0), C(4, 0)};
  const auto x = lu_solve(a, b);
  EXPECT_NEAR(x[0].real(), 1.0, 1e-12);
  EXPECT_NEAR(x[0].imag(), -1.0, 1e-12);
  EXPECT_NEAR(x[1].real(), 0.0, 1e-12);
  EXPECT_NEAR(x[1].imag(), -2.0, 1e-12);
}

TEST(Lu, ComplexSolveTransposed) {
  using C = std::complex<double>;
  Rng rng(2);
  const std::size_t n = 5;
  CMat a(n, n);
  for (auto& v : a.data()) v = C(rng.uniform(-1, 1), rng.uniform(-1, 1));
  for (std::size_t i = 0; i < n; ++i) a(i, i) += C(4, 0);
  std::vector<C> b(n);
  for (auto& v : b) v = C(rng.uniform(-1, 1), rng.uniform(-1, 1));

  const LuComplex dec(a);
  const auto x1 = dec.solve_transposed(b);
  const auto x2 = lu_solve(a.transposed(), b);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(x1[i].real(), x2[i].real(), 1e-10);
    EXPECT_NEAR(x1[i].imag(), x2[i].imag(), 1e-10);
  }
}

/// Property sweep: A * solve(A, b) == b for random diagonally-dominant A.
class LuRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(LuRoundTrip, SolveThenMultiplyRecoversRhs) {
  const int n = GetParam();
  Rng rng(static_cast<std::uint64_t>(n));
  Mat a(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
  for (auto& v : a.data()) v = rng.uniform(-1, 1);
  for (int i = 0; i < n; ++i) a(static_cast<std::size_t>(i), static_cast<std::size_t>(i)) += n;
  std::vector<double> b(static_cast<std::size_t>(n));
  for (auto& v : b) v = rng.uniform(-10, 10);

  const auto x = lu_solve(a, b);
  const auto back = matvec(a, x);
  for (int i = 0; i < n; ++i) EXPECT_NEAR(back[static_cast<std::size_t>(i)], b[static_cast<std::size_t>(i)], 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuRoundTrip, ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55));

TEST(Lu, SolveDimensionMismatchThrows) {
  Mat a(2, 2, {1, 0, 0, 1});
  const LuReal dec(a);
  EXPECT_THROW(dec.solve({1.0, 2.0, 3.0}), std::invalid_argument);
}

// --- Workspace (hot-path) API ---

Mat random_dd_matrix(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Mat a(n, n);
  for (auto& v : a.data()) v = rng.uniform(-1, 1);
  for (std::size_t i = 0; i < n; ++i) a(i, i) += static_cast<double>(n) + 2.0;
  return a;
}

TEST(LuWorkspaceTest, FactoredSolveIsBitIdenticalToDecomposition) {
  const std::size_t n = 9;
  const Mat a = random_dd_matrix(n, 7);
  Rng rng(8);
  std::vector<double> b(n);
  for (auto& v : b) v = rng.uniform(-5, 5);

  LuWorkReal ws;
  ws.matrix() = a;
  ASSERT_TRUE(lu_factor(ws));
  std::vector<double> x;
  lu_solve_factored(ws, b, x);

  // LuDecomposition runs on the same kernels, so results must match exactly.
  const LuReal dec(a);
  const auto x_ref = dec.solve(b);
  ASSERT_EQ(x.size(), x_ref.size());
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(x[i], x_ref[i]);

  std::vector<double> xt;
  lu_solve_factored_transposed(ws, b, xt);
  const auto xt_ref = dec.solve_transposed(b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(xt[i], xt_ref[i]);

  EXPECT_EQ(ws.determinant(), dec.determinant());
}

TEST(LuWorkspaceTest, ComplexFactoredSolveMatchesDecomposition) {
  using C = std::complex<double>;
  const std::size_t n = 7;
  Rng rng(11);
  CMat a(n, n);
  for (auto& v : a.data()) v = C(rng.uniform(-1, 1), rng.uniform(-1, 1));
  for (std::size_t i = 0; i < n; ++i) a(i, i) += C(5, 0);
  std::vector<C> b(n);
  for (auto& v : b) v = C(rng.uniform(-1, 1), rng.uniform(-1, 1));

  LuWorkComplex ws;
  ws.matrix() = a;
  ASSERT_TRUE(lu_factor(ws));
  std::vector<C> x;
  lu_solve_factored(ws, b, x);
  const LuComplex dec(a);
  const auto x_ref = dec.solve(b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(x[i], x_ref[i]);

  std::vector<C> xt;
  lu_solve_factored_transposed(ws, b, xt);
  const auto xt_ref = dec.solve_transposed(b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(xt[i], xt_ref[i]);
}

TEST(LuWorkspaceTest, SteadyStateReuseNeverReallocates) {
  const std::size_t n = 12;
  LuWorkReal ws;
  std::vector<double> b(n, 1.0);
  std::vector<double> x;
  std::vector<double> xt;

  // Warm-up: first factor/solve sizes every buffer.
  ws.matrix() = random_dd_matrix(n, 100);
  ASSERT_TRUE(lu_factor(ws));
  lu_solve_factored(ws, b, x);
  lu_solve_factored_transposed(ws, b, xt);

  const double* a_ptr = ws.matrix().data().data();
  const std::size_t a_cap = ws.matrix().data().capacity();
  const double* x_ptr = x.data();

  // Steady state: re-assemble same-dimension systems in place and re-solve.
  for (int round = 0; round < 16; ++round) {
    Mat& m = ws.matrix();
    Rng rng(200 + static_cast<std::uint64_t>(round));
    for (auto& v : m.data()) v = rng.uniform(-1, 1);
    for (std::size_t i = 0; i < n; ++i) m(i, i) += static_cast<double>(n) + 2.0;
    ASSERT_TRUE(lu_factor(ws));
    lu_solve_factored(ws, b, x);
    lu_solve_factored_transposed(ws, b, xt);

    EXPECT_EQ(ws.matrix().data().data(), a_ptr);
    EXPECT_EQ(ws.matrix().data().capacity(), a_cap);
    EXPECT_EQ(x.data(), x_ptr);
  }
}

TEST(LuWorkspaceTest, SingularFactorReturnsFalseAndLeavesUnfactored) {
  LuWorkReal ws;
  ws.matrix() = Mat(2, 2, {1, 2, 2, 4});
  EXPECT_FALSE(lu_factor(ws));
  EXPECT_FALSE(ws.factored());

  // The workspace stays usable: assemble a regular system and carry on.
  ws.matrix() = Mat(2, 2, {2, 1, 1, 3});
  ASSERT_TRUE(lu_factor(ws));
  EXPECT_TRUE(ws.factored());
  std::vector<double> x;
  lu_solve_factored(ws, {5, 10}, x);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(LuWorkspaceTest, WritingMatrixInvalidatesFactorization) {
  LuWorkReal ws;
  ws.matrix() = Mat(2, 2, {2, 1, 1, 3});
  ASSERT_TRUE(lu_factor(ws));
  EXPECT_TRUE(ws.factored());
  ws.matrix()(0, 0) = 5.0;  // non-const access flips the factored flag
  EXPECT_FALSE(ws.factored());
}

}  // namespace
}  // namespace maopt::linalg
