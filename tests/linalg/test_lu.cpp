#include "linalg/lu.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace maopt::linalg {
namespace {

TEST(Lu, Solves2x2System) {
  Mat a(2, 2, {2, 1, 1, 3});
  const std::vector<double> b{5, 10};
  const auto x = lu_solve(a, b);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Lu, PivotingHandlesZeroDiagonal) {
  Mat a(2, 2, {0, 1, 1, 0});
  const std::vector<double> b{2, 3};
  const auto x = lu_solve(a, b);
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Lu, SingularMatrixThrows) {
  Mat a(2, 2, {1, 2, 2, 4});
  EXPECT_THROW(LuReal dec(a), std::runtime_error);
}

TEST(Lu, NonSquareThrows) {
  Mat a(2, 3);
  EXPECT_THROW(LuReal dec(a), std::invalid_argument);
}

TEST(Lu, DeterminantKnown) {
  Mat a(2, 2, {3, 8, 4, 6});
  const LuReal dec(a);
  EXPECT_NEAR(dec.determinant(), -14.0, 1e-10);
}

TEST(Lu, SolveTransposedMatchesExplicit) {
  Rng rng(1);
  const std::size_t n = 6;
  Mat a(n, n);
  for (auto& v : a.data()) v = rng.uniform(-1, 1);
  for (std::size_t i = 0; i < n; ++i) a(i, i) += 3.0;
  std::vector<double> b(n);
  for (auto& v : b) v = rng.uniform(-1, 1);

  const LuReal dec(a);
  const auto x1 = dec.solve_transposed(b);
  const auto x2 = lu_solve(a.transposed(), b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x1[i], x2[i], 1e-10);
}

TEST(Lu, ComplexSolve) {
  using C = std::complex<double>;
  CMat a(2, 2, {C(1, 1), C(0, 0), C(0, 0), C(0, 2)});
  const std::vector<C> b{C(2, 0), C(4, 0)};
  const auto x = lu_solve(a, b);
  EXPECT_NEAR(x[0].real(), 1.0, 1e-12);
  EXPECT_NEAR(x[0].imag(), -1.0, 1e-12);
  EXPECT_NEAR(x[1].real(), 0.0, 1e-12);
  EXPECT_NEAR(x[1].imag(), -2.0, 1e-12);
}

TEST(Lu, ComplexSolveTransposed) {
  using C = std::complex<double>;
  Rng rng(2);
  const std::size_t n = 5;
  CMat a(n, n);
  for (auto& v : a.data()) v = C(rng.uniform(-1, 1), rng.uniform(-1, 1));
  for (std::size_t i = 0; i < n; ++i) a(i, i) += C(4, 0);
  std::vector<C> b(n);
  for (auto& v : b) v = C(rng.uniform(-1, 1), rng.uniform(-1, 1));

  const LuComplex dec(a);
  const auto x1 = dec.solve_transposed(b);
  const auto x2 = lu_solve(a.transposed(), b);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(x1[i].real(), x2[i].real(), 1e-10);
    EXPECT_NEAR(x1[i].imag(), x2[i].imag(), 1e-10);
  }
}

/// Property sweep: A * solve(A, b) == b for random diagonally-dominant A.
class LuRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(LuRoundTrip, SolveThenMultiplyRecoversRhs) {
  const int n = GetParam();
  Rng rng(static_cast<std::uint64_t>(n));
  Mat a(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
  for (auto& v : a.data()) v = rng.uniform(-1, 1);
  for (int i = 0; i < n; ++i) a(static_cast<std::size_t>(i), static_cast<std::size_t>(i)) += n;
  std::vector<double> b(static_cast<std::size_t>(n));
  for (auto& v : b) v = rng.uniform(-10, 10);

  const auto x = lu_solve(a, b);
  const auto back = matvec(a, x);
  for (int i = 0; i < n; ++i) EXPECT_NEAR(back[static_cast<std::size_t>(i)], b[static_cast<std::size_t>(i)], 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuRoundTrip, ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55));

TEST(Lu, SolveDimensionMismatchThrows) {
  Mat a(2, 2, {1, 0, 0, 1});
  const LuReal dec(a);
  EXPECT_THROW(dec.solve({1.0, 2.0, 3.0}), std::invalid_argument);
}

}  // namespace
}  // namespace maopt::linalg
