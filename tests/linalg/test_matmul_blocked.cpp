#include "linalg/gemm.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"

namespace maopt::linalg {
namespace {

Mat random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  Mat m(rows, cols);
  for (auto& v : m.data()) v = rng.uniform(-1.0, 1.0);
  return m;
}

void expect_close(const Mat& a, const Mat& b, double tol) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t r = 0; r < a.rows(); ++r)
    for (std::size_t c = 0; c < a.cols(); ++c) EXPECT_NEAR(a(r, c), b(r, c), tol) << r << "," << c;
}

// Shapes straddling the kernel tile sizes (64/64/256), deliberately including
// non-multiples, degenerate dims, and the skinny shapes the MLPs use.
struct Shape {
  std::size_t m, k, n;
};
const Shape kShapes[] = {
    {1, 1, 1},   {1, 7, 3},    {3, 1, 5},    {5, 5, 5},     {32, 100, 100},
    {63, 65, 7}, {64, 64, 64}, {65, 63, 66}, {100, 100, 9}, {70, 130, 300},
};

TEST(MatmulBlocked, MatchesNaiveOnRectangularShapes) {
  Rng rng(1);
  for (const auto& s : kShapes) {
    const Mat a = random_matrix(s.m, s.k, rng);
    const Mat b = random_matrix(s.k, s.n, rng);
    const Mat expected = matmul(a, b);
    const Mat actual = matmul_blocked(a, b);
    expect_close(actual, expected, 1e-12 * static_cast<double>(s.k));
  }
}

TEST(MatmulBlocked, AccumulatesIntoReusedOutput) {
  Rng rng(2);
  const Mat a = random_matrix(65, 63, rng);
  const Mat b = random_matrix(63, 66, rng);
  Mat c(3, 3, 777.0);  // wrong shape and stale contents: must be overwritten
  matmul_blocked(a, b, c);
  expect_close(c, matmul(a, b), 1e-10);
  matmul_blocked(a, b, c);  // second call reuses capacity, same result
  expect_close(c, matmul(a, b), 1e-10);
}

TEST(MatmulBlocked, DimensionMismatchThrows) {
  const Mat a(3, 4), b(5, 2);
  EXPECT_THROW(matmul_blocked(a, b), std::invalid_argument);
}

TEST(MatmulParallel, MatchesNaiveForEveryThreadCount) {
  Rng rng(3);
  const Mat a = random_matrix(70, 130, rng);
  const Mat b = random_matrix(130, 300, rng);
  const Mat expected = matmul(a, b);
  for (const std::size_t threads : {1u, 2u, 4u, 7u}) {
    ThreadPool pool(threads);
    // min_flops = 0 forces the parallel path even at this small size.
    const Mat actual = matmul_parallel(a, b, pool, /*min_flops=*/0.0);
    expect_close(actual, expected, 1e-10);
  }
}

TEST(MatmulParallel, BitIdenticalToBlockedAcrossThreadCounts) {
  // Row panels never split a dot product, so the parallel kernel must be
  // bit-identical to the serial blocked kernel, not merely close.
  Rng rng(4);
  const Mat a = random_matrix(33, 65, rng);
  const Mat b = random_matrix(65, 129, rng);
  const Mat serial = matmul_blocked(a, b);
  ThreadPool pool(4);
  const Mat parallel = matmul_parallel(a, b, pool, /*min_flops=*/0.0);
  for (std::size_t i = 0; i < serial.data().size(); ++i)
    EXPECT_EQ(serial.data()[i], parallel.data()[i]);
}

TEST(MatmulParallel, SmallShapesFallBackToSerial) {
  Rng rng(5);
  const Mat a = random_matrix(4, 4, rng);
  const Mat b = random_matrix(4, 4, rng);
  ThreadPool pool(4);
  expect_close(matmul_parallel(a, b, pool), matmul(a, b), 1e-12);
}

TEST(GemmVariants, TransposedKernelsMatchExplicitTranspose) {
  Rng rng(6);
  const std::size_t m = 37, n = 53, k = 29;
  // gemm_tn: C += A^T B with A stored (k x m).
  {
    const Mat a = random_matrix(k, m, rng);
    const Mat b = random_matrix(k, n, rng);
    Mat c(m, n, 0.0);
    gemm_tn(m, n, k, a.data().data(), b.data().data(), c.data().data());
    expect_close(c, matmul(a.transposed(), b), 1e-11);
  }
  // gemm_nt: C += A B^T with B stored (n x k).
  {
    const Mat a = random_matrix(m, k, rng);
    const Mat b = random_matrix(n, k, rng);
    Mat c(m, n, 0.0);
    gemm_nt(m, n, k, a.data().data(), b.data().data(), c.data().data());
    expect_close(c, matmul(a, b.transposed()), 1e-11);
  }
}

TEST(GemmVariants, KernelsAccumulateOntoExistingC) {
  Rng rng(7);
  const std::size_t m = 10, n = 12, k = 8;
  const Mat a = random_matrix(m, k, rng);
  const Mat b = random_matrix(k, n, rng);
  Mat c(m, n, 1.0);
  gemm_nn(m, n, k, a.data().data(), b.data().data(), c.data().data());
  const Mat product = matmul(a, b);
  for (std::size_t r = 0; r < m; ++r)
    for (std::size_t j = 0; j < n; ++j) EXPECT_NEAR(c(r, j), product(r, j) + 1.0, 1e-12);
}

}  // namespace
}  // namespace maopt::linalg
