#include "linalg/matrix.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace maopt::linalg {
namespace {

TEST(Matrix, ConstructAndIndex) {
  Mat m(2, 3, 0.0);
  m(0, 0) = 1.0;
  m(1, 2) = 5.0;
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(1, 2), 5.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 0.0);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
}

TEST(Matrix, CheckedAtMatchesOperatorAndRejectsOutOfRange) {
  Mat m(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_DOUBLE_EQ(m.at(1, 2), 6.0);
  m.at(0, 1) = 9.0;
  EXPECT_DOUBLE_EQ(m(0, 1), 9.0);
  const Mat& cm = m;
  EXPECT_DOUBLE_EQ(cm.at(0, 1), 9.0);
  EXPECT_THROW(m.at(2, 0), std::invalid_argument);
  EXPECT_THROW(m.at(0, 3), std::invalid_argument);
  EXPECT_THROW(cm.at(2, 3), std::invalid_argument);
}

TEST(Matrix, GenerationBumpsOnReshapeNotOnReadOrWrite) {
  Mat m(2, 2, 1.0);
  const auto g0 = m.generation();
  m(0, 0) = 5.0;          // element writes do not invalidate borrows
  (void)m.row(1);
  EXPECT_EQ(m.generation(), g0);
  m.ensure_shape(2, 2);   // reshape (even same-shape) marks contents unspecified
  EXPECT_GT(m.generation(), g0);
  const auto g1 = m.generation();
  m.resize(3, 3);
  EXPECT_GT(m.generation(), g1);
}

TEST(Matrix, InitializerListSizeMismatchThrows) {
  EXPECT_THROW(Mat(2, 2, {1.0, 2.0, 3.0}), std::invalid_argument);
}

TEST(Matrix, InitializerListLayoutIsRowMajor) {
  Mat m(2, 2, {1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(Matrix, IdentityMatmulIsNoOp) {
  Mat a(3, 3, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  const Mat i = Mat::identity(3);
  const Mat p = matmul(a, i);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(p(r, c), a(r, c));
}

TEST(Matrix, MatmulKnownProduct) {
  Mat a(2, 3, {1, 2, 3, 4, 5, 6});
  Mat b(3, 2, {7, 8, 9, 10, 11, 12});
  const Mat c = matmul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 154.0);
}

TEST(Matrix, MatmulDimensionMismatchThrows) {
  Mat a(2, 3), b(2, 3);
  EXPECT_THROW(matmul(a, b), std::invalid_argument);
}

TEST(Matrix, MatvecKnownResult) {
  Mat a(2, 2, {1, 2, 3, 4});
  const std::vector<double> x{5, 6};
  const auto y = matvec(a, x);
  EXPECT_DOUBLE_EQ(y[0], 17.0);
  EXPECT_DOUBLE_EQ(y[1], 39.0);
}

TEST(Matrix, MatvecTransposedMatchesExplicitTranspose) {
  Mat a(2, 3, {1, 2, 3, 4, 5, 6});
  const std::vector<double> x{7, 8};
  const auto y1 = matvec_transposed(a, x);
  const auto y2 = matvec(a.transposed(), x);
  ASSERT_EQ(y1.size(), y2.size());
  for (std::size_t i = 0; i < y1.size(); ++i) EXPECT_DOUBLE_EQ(y1[i], y2[i]);
}

TEST(Matrix, TransposedShape) {
  Mat a(2, 3);
  const Mat t = a.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
}

TEST(Matrix, ComplexMatmul) {
  using C = std::complex<double>;
  CMat a(1, 1, {C(0, 1)});
  CMat b(1, 1, {C(0, 1)});
  const CMat c = matmul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0).real(), -1.0);
  EXPECT_DOUBLE_EQ(c(0, 0).imag(), 0.0);
}

TEST(Matrix, RowSpanWritesThrough) {
  Mat m(2, 2, 0.0);
  auto r = m.row(1);
  r[0] = 9.0;
  EXPECT_DOUBLE_EQ(m(1, 0), 9.0);
}

TEST(VectorOps, DotAndNorms) {
  const std::vector<double> a{3.0, 4.0};
  const std::vector<double> b{1.0, 2.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 11.0);
  EXPECT_DOUBLE_EQ(norm2(a), 5.0);
  EXPECT_DOUBLE_EQ(norm_inf(a), 4.0);
}

TEST(VectorOps, DotMismatchThrows) {
  const std::vector<double> a{1.0};
  const std::vector<double> b{1.0, 2.0};
  EXPECT_THROW(dot(a, b), std::invalid_argument);
}

TEST(VectorOps, Axpy) {
  std::vector<double> a{1.0, 1.0};
  const std::vector<double> b{2.0, 3.0};
  axpy(2.0, b, a);
  EXPECT_DOUBLE_EQ(a[0], 5.0);
  EXPECT_DOUBLE_EQ(a[1], 7.0);
}

TEST(Matrix, FillAndResize) {
  Mat m(2, 2, 1.0);
  m.fill(3.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 3.0);
  m.resize(1, 4, -1.0);
  EXPECT_EQ(m.rows(), 1u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_DOUBLE_EQ(m(0, 3), -1.0);
}

}  // namespace
}  // namespace maopt::linalg
