#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace maopt {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanApproximatesHalf) {
  Rng rng(11);
  double s = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) s += rng.uniform();
  EXPECT_NEAR(s / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(2, 6);
    ASSERT_GE(v, 2);
    ASSERT_LE(v, 6);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntSingleValue) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(4, 4), 4);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(5);
  const int n = 200000;
  double mean = 0.0, var = 0.0;
  std::vector<double> xs(n);
  for (auto& x : xs) x = rng.normal();
  for (const double x : xs) mean += x;
  mean /= n;
  for (const double x : xs) var += (x - mean) * (x - mean);
  var /= n - 1;
  EXPECT_NEAR(mean, 0.0, 0.01);
  EXPECT_NEAR(var, 1.0, 0.02);
}

TEST(Rng, NormalScaledMoments) {
  Rng rng(5);
  const int n = 100000;
  double mean = 0.0;
  for (int i = 0; i < n; ++i) mean += rng.normal(3.0, 2.0);
  EXPECT_NEAR(mean / n, 3.0, 0.05);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(9);
  for (int trial = 0; trial < 50; ++trial) {
    const auto picked = rng.sample_without_replacement(20, 7);
    ASSERT_EQ(picked.size(), 7u);
    std::set<std::size_t> s(picked.begin(), picked.end());
    EXPECT_EQ(s.size(), 7u);
    for (const auto p : picked) EXPECT_LT(p, 20u);
  }
}

TEST(Rng, SampleWithoutReplacementFullSet) {
  Rng rng(9);
  const auto picked = rng.sample_without_replacement(5, 5);
  std::set<std::size_t> s(picked.begin(), picked.end());
  EXPECT_EQ(s.size(), 5u);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(13);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, DeriveSeedIsStreamDependent) {
  const auto a = derive_seed(100, 0);
  const auto b = derive_seed(100, 1);
  const auto c = derive_seed(101, 0);
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a, derive_seed(100, 0));
}

}  // namespace
}  // namespace maopt
