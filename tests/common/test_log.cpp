#include "common/log.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace maopt {
namespace {

TEST(Log, LevelThresholdRoundTrip) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::Warn);
  EXPECT_EQ(log_level(), LogLevel::Warn);
  set_log_level(LogLevel::Off);
  EXPECT_EQ(log_level(), LogLevel::Off);
  // Emitting below threshold must be a no-op (no crash, nothing observable).
  log_debug() << "suppressed";
  log_error() << "also suppressed at Off";
  set_log_level(saved);
}

TEST(Log, StreamingAcceptsMixedTypes) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::Off);
  log_info() << "x=" << 42 << " y=" << 1.5 << " z=" << std::string("s");
  set_log_level(saved);
}

// Streamed into a suppressed LogLine, formatting must never run: the lazy
// LogLine only materializes its stream above the threshold, so operator<<
// on the payload type is the observable side effect to count.
struct FormatProbe {
  int* formats;
  friend std::ostream& operator<<(std::ostream& os, const FormatProbe& p) {
    ++*p.formats;
    return os << "probe";
  }
};

TEST(Log, SuppressedLinesSkipFormattingEntirely) {
  int formats = 0;
  const FormatProbe probe{&formats};
  const LogLevel saved = log_level();
  set_log_level(LogLevel::Warn);
  log_debug() << probe << probe;
  EXPECT_EQ(formats, 0);  // below threshold: no ostringstream, no formatting
  log_warn() << probe;
  EXPECT_EQ(formats, 1);  // at threshold: formatted exactly once
  set_log_level(saved);
}

TEST(Stopwatch, MeasuresElapsedWallTime) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double t = sw.elapsed_seconds();
  EXPECT_GE(t, 0.015);
  EXPECT_LT(t, 5.0);
}

TEST(Stopwatch, ResetRestarts) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  sw.reset();
  EXPECT_LT(sw.elapsed_seconds(), 0.010);
}

TEST(ThreadCpuTimer, CountsOwnWorkNotSleep) {
  ThreadCpuTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  const double slept = timer.elapsed_seconds();
  EXPECT_LT(slept, 0.02);  // sleeping burns (almost) no CPU

  timer.reset();
  volatile double sink = 0.0;
  for (int i = 0; i < 20000000; ++i) sink = sink + i * 1e-9;
  EXPECT_GT(timer.elapsed_seconds(), 0.001);
}

TEST(ThreadCpuTimer, IsPerThread) {
  ThreadCpuTimer main_timer;
  std::thread worker([] {
    volatile double sink = 0.0;
    for (int i = 0; i < 20000000; ++i) sink = sink + i * 1e-9;
  });
  worker.join();
  // The worker's CPU time must not appear on this thread's clock.
  EXPECT_LT(main_timer.elapsed_seconds(), 0.05);
}

}  // namespace
}  // namespace maopt
