#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>

namespace maopt {
namespace {

TEST(ThreadPool, RunsSubmittedTask) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  auto fut = pool.submit([] { return 7; });
  EXPECT_EQ(fut.get(), 7);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroIterations) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto fut = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(8, [&](std::size_t i) {
        if (i == 3) throw std::runtime_error("task failed");
      }),
      std::runtime_error);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(3);
  std::atomic<long> sum{0};
  std::vector<std::future<void>> futs;
  for (int i = 1; i <= 500; ++i) futs.push_back(pool.submit([&sum, i] { sum += i; }));
  for (auto& f : futs) f.get();
  EXPECT_EQ(sum.load(), 500L * 501 / 2);
}

TEST(ThreadPool, TasksRunConcurrently) {
  ThreadPool pool(2);
  std::atomic<int> running{0};
  std::atomic<int> peak{0};
  pool.parallel_for(4, [&](std::size_t) {
    const int now = ++running;
    int expect = peak.load();
    while (now > expect && !peak.compare_exchange_weak(expect, now)) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    --running;
  });
  EXPECT_GE(peak.load(), 2);
}

}  // namespace
}  // namespace maopt
