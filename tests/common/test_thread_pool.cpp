#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>

#include "common/check.hpp"

namespace maopt {
namespace {

TEST(ThreadPool, RunsSubmittedTask) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  auto fut = pool.submit([] { return 7; });
  EXPECT_EQ(fut.get(), 7);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroIterations) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto fut = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(8, [&](std::size_t i) {
        if (i == 3) throw std::runtime_error("task failed");
      }),
      std::runtime_error);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(3);
  std::atomic<long> sum{0};
  std::vector<std::future<void>> futs;
  for (int i = 1; i <= 500; ++i) futs.push_back(pool.submit([&sum, i] { sum += i; }));
  for (auto& f : futs) f.get();
  EXPECT_EQ(sum.load(), 500L * 501 / 2);
}

TEST(ThreadPool, ParallelForDrainsAllChunksBeforeRethrow) {
  // Regression: parallel_for used to rethrow from the first failed future
  // while later chunks could still be queued or running — and those chunks
  // reference `fn`, which dies when parallel_for unwinds. The contract is
  // now: every chunk (even after a failure) completes before the rethrow,
  // so no index is ever visited after parallel_for returns.
  ThreadPool pool(4);
  std::atomic<int> visited{0};
  std::atomic<bool> returned{false};
  std::atomic<bool> late_visit{false};
  EXPECT_THROW(
      pool.parallel_for(64,
                        [&](std::size_t i) {
                          if (returned.load()) late_visit = true;
                          if (i == 0) throw std::runtime_error("first chunk fails fast");
                          std::this_thread::sleep_for(std::chrono::milliseconds(1));
                          visited.fetch_add(1);
                        }),
      std::runtime_error);
  returned = true;
  // Give any (incorrectly) still-running chunk time to trip the flag.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(late_visit.load());
  // 4 workers x 16-index chunks, one index threw and skipped its chunk tail.
  EXPECT_EQ(visited.load(), 48);
}

TEST(ThreadPool, ThrowingWorkerUnderConcurrentSubmits) {
  // A worker throwing from parallel_for must not poison unrelated tasks
  // that race with it through the same queue, and the pool must stay
  // usable afterwards.
  constexpr int kSideTasks = 50;
  ThreadPool pool(3);
  std::atomic<bool> submitter_done{false};
  std::atomic<int> side_tasks_ok{0};
  std::thread submitter([&] {
    std::vector<std::future<int>> futs;
    futs.reserve(kSideTasks);
    for (int i = 0; i < kSideTasks; ++i) {
      futs.push_back(pool.submit([] { return 1; }));
      std::this_thread::yield();
    }
    for (auto& f : futs) side_tasks_ok += f.get();
    submitter_done = true;
  });
  // Keep throwing parallel_for rounds racing through the queue until every
  // side task made it (at least 10 rounds even if the submitter wins the
  // race outright; hard cap so a wedged pool fails instead of hanging).
  for (int round = 0; round < 10 || (!submitter_done.load() && round < 10000); ++round) {
    EXPECT_THROW(
        pool.parallel_for(24,
                          [&](std::size_t i) {
                            if (i % 8 == 3) throw std::runtime_error("worker failure");
                          }),
        std::runtime_error);
  }
  submitter.join();
  EXPECT_EQ(side_tasks_ok.load(), kSideTasks);
  // Pool still fully functional after repeated failures.
  std::atomic<int> hits{0};
  pool.parallel_for(10, [&](std::size_t) { hits.fetch_add(1); });
  EXPECT_EQ(hits.load(), 10);
}

TEST(ThreadPool, ParallelForRejectsNullFunction) {
  ThreadPool pool(2);
  std::function<void(std::size_t)> null_fn;
  EXPECT_THROW(pool.parallel_for(4, null_fn), ContractViolation);
}

TEST(ThreadPool, TasksRunConcurrently) {
  ThreadPool pool(2);
  std::atomic<int> running{0};
  std::atomic<int> peak{0};
  pool.parallel_for(4, [&](std::size_t) {
    const int now = ++running;
    int expect = peak.load();
    while (now > expect && !peak.compare_exchange_weak(expect, now)) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    --running;
  });
  EXPECT_GE(peak.load(), 2);
}

}  // namespace
}  // namespace maopt
