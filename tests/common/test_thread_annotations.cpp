// Behavior and cost of the annotated locking layer
// (common/thread_annotations.hpp). The thread-safety *analysis* is a Clang
// compile-time feature (exercised by the static-analysis CI job under
// -DMAOPT_THREAD_SAFETY=ON); these tests pin down what every build must
// guarantee regardless of compiler: the wrappers behave exactly like the
// std primitives they wrap, and cost nothing extra.
#include "common/thread_annotations.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

namespace maopt {
namespace {

TEST(MutexTest, ProvidesMutualExclusion) {
  Mutex mutex;
  long counter = 0;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        const MutexLock lock(mutex);
        ++counter;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIncrements);
}

TEST(MutexTest, TryLockReflectsOwnership) {
  Mutex mutex;
  ASSERT_TRUE(mutex.try_lock());
  // Contended try_lock must fail (from another thread: self-try_lock on an
  // owned std::mutex is undefined behavior).
  bool contended_result = true;
  std::thread prober([&] { contended_result = mutex.try_lock(); });
  prober.join();
  EXPECT_FALSE(contended_result);
  mutex.unlock();
  std::thread reprober([&] {
    if (mutex.try_lock()) mutex.unlock();
    contended_result = true;
  });
  reprober.join();
  EXPECT_TRUE(contended_result);
}

TEST(MutexLockTest, UnlockRelockRoundTrip) {
  Mutex mutex;
  MutexLock lock(mutex);
  EXPECT_TRUE(lock.owns_lock());
  lock.unlock();
  EXPECT_FALSE(lock.owns_lock());
  {
    // While released, others can acquire.
    bool acquired = false;
    std::thread t([&] {
      const MutexLock inner(mutex);
      acquired = true;
    });
    t.join();
    EXPECT_TRUE(acquired);
  }
  lock.lock();
  EXPECT_TRUE(lock.owns_lock());
}

TEST(CondVarTest, WaitWakesOnNotify) {
  Mutex mutex;
  CondVar cv;
  bool ready = false;

  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    {
      const MutexLock lock(mutex);
      ready = true;
    }
    cv.notify_one();
  });

  MutexLock lock(mutex);
  cv.wait(lock, [&]() MAOPT_REQUIRES(mutex) { return ready; });
  EXPECT_TRUE(ready);
  EXPECT_TRUE(lock.owns_lock());
  lock.unlock();
  producer.join();
}

TEST(CondVarTest, WaitForTimesOutWithoutNotify) {
  Mutex mutex;
  CondVar cv;
  const bool never = false;

  MutexLock lock(mutex);
  const bool woke = cv.wait_for(lock, std::chrono::milliseconds(10),
                                [&]() MAOPT_REQUIRES(mutex) { return never; });
  EXPECT_FALSE(woke);
  EXPECT_TRUE(lock.owns_lock());
}

// The wrapper is a reinterpretation of std::mutex, not an extension of it:
// same size, and (annotations compile to nothing at runtime) the same cost.
// The timing bound is deliberately loose — it catches a wrapper that grew a
// second lock or bookkeeping, not scheduler noise.
TEST(MutexTest, ZeroOverheadVersusStdMutex) {
  static_assert(sizeof(Mutex) == sizeof(std::mutex),
                "annotated Mutex must add no state to std::mutex");

  constexpr int kIters = 200000;
  constexpr int kTrials = 5;
  auto best_of = [](auto body) {
    double best = 1e300;
    for (int trial = 0; trial < kTrials; ++trial) {
      const auto t0 = std::chrono::steady_clock::now();
      body();
      const auto t1 = std::chrono::steady_clock::now();
      best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
    }
    return best;
  };

  std::mutex raw;
  volatile long sink = 0;
  const double raw_s = best_of([&] {
    for (int i = 0; i < kIters; ++i) {
      const std::lock_guard<std::mutex> lock(raw);
      sink = sink + 1;
    }
  });

  Mutex wrapped;
  const double wrapped_s = best_of([&] {
    for (int i = 0; i < kIters; ++i) {
      const MutexLock lock(wrapped);
      sink = sink + 1;
    }
  });

  EXPECT_LT(wrapped_s, raw_s * 2.5 + 1e-3)
      << "annotated Mutex path took " << wrapped_s << "s vs std::mutex " << raw_s
      << "s over " << kIters << " uncontended lock/unlock cycles";
}

}  // namespace
}  // namespace maopt
