#include "common/statistics.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace maopt {
namespace {

TEST(Statistics, MeanOfConstants) {
  const std::vector<double> xs{4.0, 4.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 4.0);
}

TEST(Statistics, MeanSimple) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(Statistics, MeanEmptyThrows) {
  const std::vector<double> xs;
  EXPECT_THROW(mean(xs), std::invalid_argument);
}

TEST(Statistics, VarianceUnbiased) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_NEAR(variance(xs), 4.571428571, 1e-9);
}

TEST(Statistics, VarianceOfSingletonIsZero) {
  const std::vector<double> xs{3.0};
  EXPECT_DOUBLE_EQ(variance(xs), 0.0);
}

TEST(Statistics, MedianOddCount) {
  const std::vector<double> xs{9.0, 1.0, 5.0};
  EXPECT_DOUBLE_EQ(median(xs), 5.0);
}

TEST(Statistics, MedianEvenCountInterpolates) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(median(xs), 2.5);
}

TEST(Statistics, PercentileEndpoints) {
  const std::vector<double> xs{10.0, 20.0, 30.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 30.0);
}

TEST(Statistics, PercentileInterpolation) {
  const std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 2.5);
}

TEST(Statistics, MinMax) {
  const std::vector<double> xs{3.0, -1.0, 7.0};
  EXPECT_DOUBLE_EQ(min_of(xs), -1.0);
  EXPECT_DOUBLE_EQ(max_of(xs), 7.0);
}

TEST(Statistics, RowwiseMean) {
  const std::vector<std::vector<double>> rows{{1.0, 2.0}, {3.0, 6.0}};
  const auto m = rowwise_mean(rows);
  ASSERT_EQ(m.size(), 2u);
  EXPECT_DOUBLE_EQ(m[0], 2.0);
  EXPECT_DOUBLE_EQ(m[1], 4.0);
}

TEST(Statistics, RowwiseMeanRaggedThrows) {
  const std::vector<std::vector<double>> rows{{1.0, 2.0}, {3.0}};
  EXPECT_THROW(rowwise_mean(rows), std::invalid_argument);
}

TEST(Statistics, RowwiseMeanEmpty) { EXPECT_TRUE(rowwise_mean({}).empty()); }

}  // namespace
}  // namespace maopt
