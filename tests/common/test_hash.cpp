#include "common/hash.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"

namespace maopt {
namespace {

// Published FNV-1a 64-bit test vectors: the platform-stability anchor. If any
// of these fail on a new compiler/architecture, on-disk cache journals are no
// longer portable to it.
TEST(Hash, MatchesFnv1aReferenceVectors) {
  EXPECT_EQ(hash_bytes("", 0), 0xCBF29CE484222325ULL);
  EXPECT_EQ(hash_bytes("a", 1), 0xAF63DC4C8601EC8CULL);
  EXPECT_EQ(hash_bytes("foobar", 6), 0x85944171F73967E8ULL);
}

TEST(Hash, HashU64FoldsLittleEndianBytes) {
  // hash_u64 must equal hash_bytes over the value's little-endian bytes on
  // every platform (that is the definition that makes journals portable).
  const std::uint64_t v = 0x0123456789ABCDEFULL;
  const unsigned char le[8] = {0xEF, 0xCD, 0xAB, 0x89, 0x67, 0x45, 0x23, 0x01};
  EXPECT_EQ(hash_u64(v, kHashSeed), hash_bytes(le, 8));
}

TEST(Hash, DesignHashIsDeterministic) {
  const std::vector<double> x = {1.5, -2.25, 3.0e-6, 4.0e9};
  EXPECT_EQ(hash_design(x), hash_design(x));
  EXPECT_EQ(hash_design(x, 1e-9), hash_design(x, 1e-9));
}

TEST(Hash, LengthIsFolded) {
  // A prefix must never collide with its zero-extension.
  const std::vector<double> a = {1.0, 2.0};
  const std::vector<double> b = {1.0, 2.0, 0.0};
  EXPECT_NE(hash_design(a), hash_design(b));
  EXPECT_NE(hash_design({}), hash_design(b));
}

TEST(Hash, NegativeZeroCanonicalized) {
  const std::vector<double> pos = {0.0, 1.0};
  const std::vector<double> neg = {-0.0, 1.0};
  EXPECT_EQ(hash_design(pos), hash_design(neg));
  EXPECT_EQ(quantize_coord(0.0, 0.0), quantize_coord(-0.0, 0.0));
}

TEST(Hash, ExactModeSeparatesNearbyValues) {
  // epsilon <= 0: bit-exact addressing, adjacent representable doubles differ.
  const double v = 1.0;
  const double next = std::nextafter(v, 2.0);
  EXPECT_NE(hash_design({&v, 1}), hash_design({&next, 1}));
}

TEST(Hash, QuantizationBucketsWithinEpsilon) {
  const double eps = 0.5;
  EXPECT_EQ(quantize_coord(1.2, eps), 2);  // 2.4 rounds to 2
  EXPECT_EQ(quantize_coord(1.3, eps), 3);  // 2.6 rounds to 3
  EXPECT_EQ(quantize_coord(1.01, eps), quantize_coord(0.99, eps));
  EXPECT_NE(quantize_coord(1.01, eps), quantize_coord(1.49, eps));
  // Half-away-from-zero, both signs.
  EXPECT_EQ(quantize_coord(1.25, eps), 3);
  EXPECT_EQ(quantize_coord(-1.25, eps), -3);

  const std::vector<double> a = {1.01, -3.49};
  const std::vector<double> b = {0.99, -3.51};
  EXPECT_EQ(hash_design(a, eps), hash_design(b, eps));
}

TEST(Hash, QuantizationSaturatesInsteadOfOverflowing) {
  const double huge = std::numeric_limits<double>::max();
  EXPECT_EQ(quantize_coord(huge, 1e-9), std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(quantize_coord(-huge, 1e-9), std::numeric_limits<std::int64_t>::min());
}

TEST(Hash, NoCollisionsAcrossRandomDesigns) {
  // 64-bit FNV over 20k random 8-d designs: any collision here would signal
  // a broken fold, not bad luck (expected collisions ~ 1e-11).
  Rng rng(42);
  std::unordered_set<std::uint64_t> seen;
  std::vector<double> x(8);
  for (int i = 0; i < 20000; ++i) {
    for (auto& v : x) v = rng.uniform(-1e6, 1e6);
    EXPECT_TRUE(seen.insert(hash_design(x)).second) << "collision at design " << i;
  }
}

TEST(Hash, SeedChangesHash) {
  const std::vector<double> x = {1.0, 2.0, 3.0};
  EXPECT_NE(hash_design(x, 0.0, kHashSeed), hash_design(x, 0.0, kHashSeed ^ 1U));
}

}  // namespace
}  // namespace maopt
