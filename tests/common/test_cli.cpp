#include "common/cli.hpp"

#include <gtest/gtest.h>

namespace maopt {
namespace {

CliArgs make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return CliArgs(static_cast<int>(argv.size()), argv.data());
}

TEST(CliArgs, SpaceSeparatedValue) {
  const auto args = make({"--runs", "5"});
  EXPECT_EQ(args.get_int("runs", 0), 5);
}

TEST(CliArgs, EqualsSeparatedValue) {
  const auto args = make({"--sims=123"});
  EXPECT_EQ(args.get_int("sims", 0), 123);
}

TEST(CliArgs, BooleanFlagWithoutValue) {
  const auto args = make({"--full"});
  EXPECT_TRUE(args.get_bool("full"));
  EXPECT_TRUE(args.has("full"));
}

TEST(CliArgs, MissingFlagUsesFallback) {
  const auto args = make({});
  EXPECT_EQ(args.get_int("runs", 10), 10);
  EXPECT_DOUBLE_EQ(args.get_double("lr", 0.5), 0.5);
  EXPECT_FALSE(args.get_bool("full"));
  EXPECT_EQ(args.get("name", "x"), "x");
}

TEST(CliArgs, DoubleParsing) {
  const auto args = make({"--lr", "0.25"});
  EXPECT_DOUBLE_EQ(args.get_double("lr", 0.0), 0.25);
}

TEST(CliArgs, PositionalArgumentsCollected) {
  const auto args = make({"alpha", "--k", "3", "beta"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "alpha");
  EXPECT_EQ(args.positional()[1], "beta");
}

TEST(CliArgs, ExplicitFalseValues) {
  const auto args = make({"--x=false", "--y=0"});
  EXPECT_FALSE(args.get_bool("x", true));
  EXPECT_FALSE(args.get_bool("y", true));
}

TEST(CliArgs, ConsecutiveFlags) {
  const auto args = make({"--a", "--b", "2"});
  EXPECT_TRUE(args.get_bool("a"));
  EXPECT_EQ(args.get_int("b", 0), 2);
}

}  // namespace
}  // namespace maopt
