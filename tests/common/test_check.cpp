#include "common/check.hpp"

#include <gtest/gtest.h>

#include <string>

namespace maopt {
namespace {

TEST(Check, PassingCheckIsSilent) {
  EXPECT_NO_THROW(MAOPT_CHECK(1 + 1 == 2, "arithmetic broke"));
}

TEST(Check, FailingCheckThrowsContractViolation) {
  EXPECT_THROW(MAOPT_CHECK(false, "always fails"), ContractViolation);
}

TEST(Check, ContractViolationIsInvalidArgument) {
  // Call sites migrated from `throw std::invalid_argument` must keep their
  // existing catch behavior (and std::invalid_argument is-a logic_error).
  EXPECT_THROW(MAOPT_CHECK(false, "x"), std::invalid_argument);
  EXPECT_THROW(MAOPT_CHECK(false, "x"), std::logic_error);
}

TEST(Check, MessageCarriesConditionAndLocation) {
  try {
    MAOPT_CHECK(2 < 1, "ordering violated");
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("ordering violated"), std::string::npos);
    EXPECT_NE(what.find("2 < 1"), std::string::npos);
    EXPECT_NE(what.find("test_check.cpp"), std::string::npos);
  }
}

TEST(Check, MessageExpressionOnlyEvaluatedOnFailure) {
  int evaluations = 0;
  auto msg = [&evaluations] {
    ++evaluations;
    return std::string("expensive");
  };
  MAOPT_CHECK(true, msg());
  EXPECT_EQ(evaluations, 0);
  EXPECT_THROW(MAOPT_CHECK(false, msg()), ContractViolation);
  EXPECT_EQ(evaluations, 1);
}

TEST(CheckDeathTest, DcheckAbortsWhenEnabled) {
#if MAOPT_DCHECK_ENABLED
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(MAOPT_DCHECK(false, "hot-loop invariant"), "hot-loop invariant");
#else
  // Release flavor: the check must compile away entirely.
  EXPECT_NO_FATAL_FAILURE(MAOPT_DCHECK(false, "hot-loop invariant"));
#endif
}

TEST(Check, DcheckPassesSilently) {
  EXPECT_NO_FATAL_FAILURE(MAOPT_DCHECK(true, "fine"));
}

}  // namespace
}  // namespace maopt
