#include "gp/kernel.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace maopt::gp {
namespace {

TEST(Kernel, SelfCovarianceIsSignalVariance) {
  SquaredExponentialArd k(2.5, {1.0, 1.0});
  const Vec x{0.3, -0.7};
  EXPECT_DOUBLE_EQ(k(x, x), 2.5);
}

TEST(Kernel, DecaysWithDistance) {
  SquaredExponentialArd k(1.0, {1.0});
  const Vec a{0.0};
  EXPECT_GT(k(a, Vec{0.1}), k(a, Vec{0.5}));
  EXPECT_GT(k(a, Vec{0.5}), k(a, Vec{2.0}));
}

TEST(Kernel, KnownValue) {
  SquaredExponentialArd k(1.0, {2.0});
  // exp(-0.5 * (1/2)^2) = exp(-0.125)
  EXPECT_NEAR(k(Vec{0.0}, Vec{1.0}), std::exp(-0.125), 1e-12);
}

TEST(Kernel, ArdLengthscalesWeightDimensionsIndependently) {
  SquaredExponentialArd k(1.0, {0.1, 10.0});
  const Vec origin{0.0, 0.0};
  // Same offset is far along dim 0 but negligible along dim 1.
  EXPECT_LT(k(origin, Vec{0.5, 0.0}), 1e-5);
  EXPECT_GT(k(origin, Vec{0.0, 0.5}), 0.99);
}

TEST(Kernel, GramIsSymmetricWithUnitDiagonalScale) {
  SquaredExponentialArd k(3.0, {1.0});
  Mat x(3, 1, {0.0, 0.5, 2.0});
  const Mat g = k.gram(x);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(g(i, i), 3.0);
    for (std::size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(g(i, j), g(j, i));
  }
}

TEST(Kernel, CrossMatchesElementwise) {
  SquaredExponentialArd k(1.0, {1.0, 1.0});
  Mat x(2, 2, {0.0, 0.0, 1.0, 1.0});
  const Vec z{0.5, 0.5};
  const Vec c = k.cross(x, z);
  EXPECT_DOUBLE_EQ(c[0], k(x.row(0), z));
  EXPECT_DOUBLE_EQ(c[1], k(x.row(1), z));
}

TEST(Kernel, InvalidHyperparametersThrow) {
  EXPECT_THROW(SquaredExponentialArd(0.0, {1.0}), std::invalid_argument);
  EXPECT_THROW(SquaredExponentialArd(1.0, {0.0}), std::invalid_argument);
  EXPECT_THROW(SquaredExponentialArd(1.0, {1.0, -1.0}), std::invalid_argument);
}

}  // namespace
}  // namespace maopt::gp
