#include "gp/bo_optimizer.hpp"

#include <gtest/gtest.h>

#include "circuits/analytic_problems.hpp"
#include "core/random_search.hpp"

namespace maopt::gp {
namespace {

using core::RunHistory;
using core::SimRecord;

struct BoSetup {
  ckt::ConstrainedQuadratic problem{4};
  std::vector<SimRecord> initial;
  std::unique_ptr<ckt::FomEvaluator> fom;

  explicit BoSetup(std::size_t n_init = 20, std::uint64_t seed = 1) {
    Rng rng(seed);
    initial = core::sample_initial_set(problem, n_init, rng);
    std::vector<linalg::Vec> rows;
    for (const auto& r : initial) rows.push_back(r.metrics);
    fom = std::make_unique<ckt::FomEvaluator>(ckt::FomEvaluator::fit_reference(problem, rows));
  }
};

TEST(Bo, RespectsSimulationBudget) {
  BoSetup s;
  BoConfig cfg;
  cfg.random_candidates = 128;
  cfg.local_candidates = 32;
  cfg.hyperfit_restarts = 4;
  BoOptimizer bo(cfg);
  const RunHistory h = bo.run(s.problem, s.initial, *s.fom, {.seed = 7, .simulation_budget = 15});
  EXPECT_EQ(h.simulations_used(), 15u);
  EXPECT_EQ(h.records.size(), s.initial.size() + 15);
  EXPECT_EQ(h.best_fom_after.size(), 15u);
}

TEST(Bo, BestFomTrajectoryIsMonotoneNonIncreasing) {
  BoSetup s;
  BoConfig cfg;
  cfg.random_candidates = 128;
  cfg.local_candidates = 32;
  cfg.hyperfit_restarts = 4;
  BoOptimizer bo(cfg);
  const RunHistory h = bo.run(s.problem, s.initial, *s.fom, {.seed = 3, .simulation_budget = 20});
  for (std::size_t i = 1; i < h.best_fom_after.size(); ++i)
    EXPECT_LE(h.best_fom_after[i], h.best_fom_after[i - 1]);
}

TEST(Bo, ImprovesOverInitialBest) {
  BoSetup s;
  double init_best = 1e300;
  {
    auto recs = s.initial;
    core::annotate_foms(recs, s.problem, *s.fom);
    for (const auto& r : recs) init_best = std::min(init_best, r.fom);
  }
  BoConfig cfg;
  cfg.random_candidates = 256;
  cfg.local_candidates = 64;
  cfg.hyperfit_restarts = 8;
  BoOptimizer bo(cfg);
  const RunHistory h = bo.run(s.problem, s.initial, *s.fom, {.seed = 11, .simulation_budget = 30});
  EXPECT_LT(h.best_fom_after.back(), init_best);
}

TEST(Bo, DeterministicForFixedSeed) {
  BoSetup s;
  BoConfig cfg;
  cfg.random_candidates = 64;
  cfg.local_candidates = 16;
  cfg.hyperfit_restarts = 2;
  BoOptimizer a(cfg), b(cfg);
  const RunHistory ha = a.run(s.problem, s.initial, *s.fom, {.seed = 42, .simulation_budget = 10});
  const RunHistory hb = b.run(s.problem, s.initial, *s.fom, {.seed = 42, .simulation_budget = 10});
  ASSERT_EQ(ha.records.size(), hb.records.size());
  for (std::size_t i = 0; i < ha.records.size(); ++i)
    EXPECT_EQ(ha.records[i].x, hb.records[i].x);
}

TEST(Bo, TracksTrainAndSimTime) {
  BoSetup s;
  BoConfig cfg;
  cfg.random_candidates = 64;
  cfg.local_candidates = 16;
  cfg.hyperfit_restarts = 2;
  BoOptimizer bo(cfg);
  const RunHistory h = bo.run(s.problem, s.initial, *s.fom, {.seed = 1, .simulation_budget = 5});
  EXPECT_GT(h.train_seconds, 0.0);
  EXPECT_GE(h.wall_seconds, h.train_seconds);
}

}  // namespace
}  // namespace maopt::gp
