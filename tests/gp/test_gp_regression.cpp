#include "gp/gp_regression.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace maopt::gp {
namespace {

GpHyperparams default_hp(std::size_t d) {
  GpHyperparams hp;
  hp.signal_variance = 1.0;
  hp.noise_variance = 1e-6;
  hp.lengthscales.assign(d, 0.4);
  return hp;
}

TEST(Gp, InterpolatesTrainingPointsWithTinyNoise) {
  Mat x(3, 1, {0.0, 0.5, 1.0});
  Vec y{1.0, -1.0, 2.0};
  GpRegression gp(x, y, default_hp(1));
  for (std::size_t i = 0; i < 3; ++i) {
    const auto p = gp.predict(x.row(i));
    EXPECT_NEAR(p.mean, y[i], 1e-3);
    EXPECT_LT(p.variance, 1e-4);
  }
}

TEST(Gp, RevertsToMeanFarFromData) {
  Mat x(2, 1, {0.0, 0.1});
  Vec y{5.0, 5.2};
  GpRegression gp(x, y, default_hp(1));
  const auto p = gp.predict(Vec{100.0});
  EXPECT_NEAR(p.mean, 5.1, 1e-6);               // prior mean = data mean
  EXPECT_NEAR(p.variance, 1.0, 1e-6);           // prior variance
}

TEST(Gp, VarianceShrinksNearData) {
  Mat x(1, 1, {0.5});
  Vec y{0.0};
  GpRegression gp(x, y, default_hp(1));
  EXPECT_LT(gp.predict(Vec{0.55}).variance, gp.predict(Vec{0.9}).variance);
}

TEST(Gp, SmoothInterpolationOfQuadratic) {
  const std::size_t n = 15;
  Mat x(n, 1);
  Vec y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = static_cast<double>(i) / (n - 1);
    y[i] = std::pow(x(i, 0) - 0.4, 2);
  }
  GpHyperparams hp = default_hp(1);
  hp.lengthscales = {0.2};
  GpRegression gp(x, y, hp);
  for (double t = 0.05; t < 1.0; t += 0.1) {
    const auto p = gp.predict(Vec{t});
    EXPECT_NEAR(p.mean, std::pow(t - 0.4, 2), 0.01) << t;
  }
}

TEST(Gp, LmlPrefersSensibleLengthscale) {
  // Data from a smooth function: an absurdly tiny lengthscale should have
  // lower marginal likelihood than a reasonable one.
  const std::size_t n = 12;
  Mat x(n, 1);
  Vec y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = static_cast<double>(i) / (n - 1);
    y[i] = std::sin(3.0 * x(i, 0));
  }
  GpHyperparams good = default_hp(1);
  good.lengthscales = {0.3};
  GpHyperparams bad = default_hp(1);
  bad.lengthscales = {0.001};
  EXPECT_GT(GpRegression(x, y, good).log_marginal_likelihood(),
            GpRegression(x, y, bad).log_marginal_likelihood());
}

TEST(Gp, FitHyperparamsReturnsUsableValues) {
  Rng rng(1);
  const std::size_t n = 20;
  Mat x(n, 2);
  Vec y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.uniform();
    x(i, 1) = rng.uniform();
    y[i] = x(i, 0) * x(i, 0) + 0.3 * x(i, 1);
  }
  const auto hp = GpRegression::fit_hyperparams(x, y, rng, 16);
  EXPECT_GT(hp.signal_variance, 0.0);
  EXPECT_GT(hp.noise_variance, 0.0);
  ASSERT_EQ(hp.lengthscales.size(), 2u);
  // The fitted model must at least reproduce the training data decently.
  GpRegression gp(x, y, hp);
  double err = 0.0;
  for (std::size_t i = 0; i < n; ++i) err += std::abs(gp.predict(x.row(i)).mean - y[i]);
  EXPECT_LT(err / n, 0.1);
}

TEST(Gp, MismatchedSizesThrow) {
  Mat x(3, 1);
  Vec y{1.0, 2.0};
  EXPECT_THROW(GpRegression(x, y, default_hp(1)), std::invalid_argument);
  Vec y3{1.0, 2.0, 3.0};
  EXPECT_THROW(GpRegression(x, y3, default_hp(2)), std::invalid_argument);
}

}  // namespace
}  // namespace maopt::gp
