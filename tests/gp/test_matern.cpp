#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "gp/gp_regression.hpp"

namespace maopt::gp {
namespace {

TEST(Matern52, SelfCovarianceIsSignalVariance) {
  Matern52Ard k(1.7, {1.0});
  const Vec x{0.4};
  EXPECT_DOUBLE_EQ(k(x, x), 1.7);
}

TEST(Matern52, KnownValueAtUnitDistance) {
  Matern52Ard k(1.0, {1.0});
  const double sr = std::sqrt(5.0);
  const double expect = (1.0 + sr + 5.0 / 3.0) * std::exp(-sr);
  EXPECT_NEAR(k(Vec{0.0}, Vec{1.0}), expect, 1e-12);
}

TEST(Matern52, DecaysMonotonically) {
  Matern52Ard k(1.0, {1.0});
  double prev = 1.0;
  for (double d = 0.1; d < 5.0; d += 0.1) {
    const double v = k(Vec{0.0}, Vec{d});
    EXPECT_LT(v, prev);
    prev = v;
  }
}

TEST(Matern52, HeavierTailThanSquaredExponential) {
  Matern52Ard matern(1.0, {1.0});
  SquaredExponentialArd se(1.0, {1.0});
  // At large distance the Matern covariance dominates the Gaussian decay.
  EXPECT_GT(matern(Vec{0.0}, Vec{3.0}), se(Vec{0.0}, Vec{3.0}));
}

TEST(Matern52, GramSymmetricPositiveDiagonal) {
  Matern52Ard k(2.0, {0.5, 0.5});
  Mat x(3, 2, {0.0, 0.0, 0.3, 0.1, 0.9, 0.8});
  const Mat g = k.gram(x);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(g(i, i), 2.0);
    for (std::size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(g(i, j), g(j, i));
  }
}

TEST(Matern52, InvalidHyperparametersThrow) {
  EXPECT_THROW(Matern52Ard(0.0, {1.0}), std::invalid_argument);
  EXPECT_THROW(Matern52Ard(1.0, {-1.0}), std::invalid_argument);
}

TEST(KernelFacade, DispatchesByKind) {
  Kernel se(KernelKind::SquaredExponential, 1.0, {1.0});
  Kernel mat(KernelKind::Matern52, 1.0, {1.0});
  SquaredExponentialArd se_ref(1.0, {1.0});
  Matern52Ard mat_ref(1.0, {1.0});
  const Vec a{0.0}, b{0.7};
  EXPECT_DOUBLE_EQ(se(a, b), se_ref(a, b));
  EXPECT_DOUBLE_EQ(mat(a, b), mat_ref(a, b));
  EXPECT_NE(se(a, b), mat(a, b));
}

TEST(GpWithMatern, InterpolatesTrainingData) {
  Mat x(4, 1, {0.0, 0.3, 0.6, 1.0});
  Vec y{0.0, 1.0, 0.5, -0.5};
  GpHyperparams hp;
  hp.signal_variance = 1.0;
  hp.noise_variance = 1e-8;
  hp.lengthscales = {0.3};
  hp.kernel = KernelKind::Matern52;
  GpRegression gp(x, y, hp);
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_NEAR(gp.predict(x.row(i)).mean, y[i], 1e-3);
}

TEST(GpWithMatern, PredictionsDifferFromSeOffData) {
  Rng rng(1);
  Mat x(10, 1);
  Vec y(10);
  for (std::size_t i = 0; i < 10; ++i) {
    x(i, 0) = static_cast<double>(i) / 9.0;
    y[i] = std::sin(6.0 * x(i, 0));
  }
  GpHyperparams hp;
  hp.signal_variance = 1.0;
  hp.noise_variance = 1e-6;
  hp.lengthscales = {0.2};
  GpRegression se(x, y, hp);
  hp.kernel = KernelKind::Matern52;
  GpRegression matern(x, y, hp);
  EXPECT_NE(se.predict(Vec{0.55}).mean, matern.predict(Vec{0.55}).mean);
}

}  // namespace
}  // namespace maopt::gp
