#include "gp/acquisition.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace maopt::gp {
namespace {

TEST(Ei, ZeroVarianceReducesToPlainImprovement) {
  EXPECT_DOUBLE_EQ(expected_improvement({1.0, 0.0}, 3.0), 2.0);
  EXPECT_DOUBLE_EQ(expected_improvement({5.0, 0.0}, 3.0), 0.0);
}

TEST(Ei, AlwaysNonNegative) {
  for (double mean : {-2.0, 0.0, 2.0, 10.0})
    for (double var : {1e-6, 0.1, 4.0})
      EXPECT_GE(expected_improvement({mean, var}, 0.0), 0.0) << mean << "/" << var;
}

TEST(Ei, GrowsWithVarianceAtEqualMean) {
  // mean == best: improvement comes purely from exploration.
  EXPECT_GT(expected_improvement({0.0, 4.0}, 0.0), expected_improvement({0.0, 0.01}, 0.0));
}

TEST(Ei, GrowsAsMeanDropsBelowBest) {
  EXPECT_GT(expected_improvement({-1.0, 1.0}, 0.0), expected_improvement({0.5, 1.0}, 0.0));
}

TEST(Ei, KnownGaussianValue) {
  // mean = best, sigma = 1: EI = phi(0) = 1/sqrt(2 pi).
  EXPECT_NEAR(expected_improvement({0.0, 1.0}, 0.0), 0.3989422804, 1e-9);
}

TEST(MaximizeEi, FindsRegionNearKnownMinimum) {
  // GP on f(x) = (x-0.3)^2 with a gap around the minimum: EI should focus
  // near the low-mean region.
  const std::size_t n = 8;
  Mat x(n, 1);
  Vec y(n);
  const double xs[n] = {0.0, 0.1, 0.2, 0.45, 0.6, 0.75, 0.9, 1.0};
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = xs[i];
    y[i] = std::pow(xs[i] - 0.3, 2);
  }
  GpHyperparams hp;
  hp.signal_variance = 0.1;
  hp.noise_variance = 1e-8;
  hp.lengthscales = {0.15};
  GpRegression gp(x, y, hp);
  Rng rng(3);
  const Vec best = maximize_ei(gp, 0.0225, 1, rng, 512, 128);
  EXPECT_NEAR(best[0], 0.3, 0.15);
}

TEST(MaximizeEi, StaysInUnitBox) {
  Mat x(2, 3, {0.2, 0.2, 0.2, 0.8, 0.8, 0.8});
  Vec y{1.0, 0.0};
  GpHyperparams hp;
  hp.signal_variance = 1.0;
  hp.noise_variance = 1e-6;
  hp.lengthscales = {0.5, 0.5, 0.5};
  GpRegression gp(x, y, hp);
  Rng rng(5);
  const Vec best = maximize_ei(gp, 0.0, 3, rng, 128, 64);
  for (const double v : best) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

}  // namespace
}  // namespace maopt::gp
