#include "serve/service_config.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>
#include <string>

#include "circuits/analytic_problems.hpp"

namespace maopt::serve {
namespace {

/// build() must throw std::invalid_argument whose message names the
/// offending field — the daemon surfaces these verbatim at submit time.
void expect_rejects(const ServiceConfig& config, const std::string& field) {
  try {
    config.validate();
    FAIL() << "expected validate() to reject " << field;
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(field), std::string::npos)
        << "message does not name the field: " << e.what();
  }
}

TEST(ServiceConfig, DefaultsValidate) {
  EXPECT_NO_THROW(ServiceConfig{}.validate());
  EXPECT_NO_THROW(ServiceConfig::builder().build());
}

TEST(ServiceConfig, BuilderSetsEveryKnob) {
  const ServiceConfig config = ServiceConfig::builder()
                                   .threads(3)
                                   .memory_capacity(17)
                                   .cache_dir("some/dir")
                                   .quant_epsilon(1e-9)
                                   .sessions(false)
                                   .resilient(true)
                                   .deadline_seconds(2.5)
                                   .max_retries(4)
                                   .retry_jitter_frac(0.01)
                                   .max_metric_magnitude(1e12)
                                   .retry_seed(99)
                                   .yield_target(0.9)
                                   .build();
  EXPECT_EQ(config.num_threads, 3u);
  EXPECT_EQ(config.memory_capacity, 17u);
  EXPECT_EQ(config.cache_dir, "some/dir");
  EXPECT_EQ(config.quant_epsilon, 1e-9);
  EXPECT_FALSE(config.use_sessions);
  EXPECT_TRUE(config.resilient);
  EXPECT_EQ(config.sweep.yield_target, 0.9);

  const eval::EvalServiceConfig eval = config.eval_config();
  EXPECT_EQ(eval.num_threads, 3u);
  EXPECT_EQ(eval.memory_capacity, 17u);
  EXPECT_EQ(eval.cache_dir, "some/dir");
  EXPECT_FALSE(eval.use_sessions);

  const ckt::ResilientConfig resilient = config.resilient_config();
  EXPECT_EQ(resilient.deadline_seconds, 2.5);
  EXPECT_EQ(resilient.max_retries, 4);
  EXPECT_EQ(resilient.retry_jitter_frac, 0.01);
  EXPECT_EQ(resilient.max_metric_magnitude, 1e12);
  EXPECT_EQ(resilient.seed, 99u);
}

TEST(ServiceConfig, RejectsEachBadKnobByName) {
  const double nan = std::numeric_limits<double>::quiet_NaN();

  ServiceConfig config;
  config.memory_capacity = 0;
  expect_rejects(config, "memory_capacity");

  config = {};
  config.quant_epsilon = -1.0;
  expect_rejects(config, "quant_epsilon");

  config = {};
  config.deadline_seconds = -0.5;
  expect_rejects(config, "deadline_seconds");

  config = {};
  config.max_retries = -1;
  expect_rejects(config, "max_retries");

  config = {};
  config.retry_jitter_frac = nan;
  expect_rejects(config, "retry_jitter_frac");

  config = {};
  config.max_metric_magnitude = 0.0;
  expect_rejects(config, "max_metric_magnitude");

  config = {};
  config.sweep.k_sigma = nan;
  expect_rejects(config, "sweep.k_sigma");

  config = {};
  config.sweep.yield_target = 0.0;
  expect_rejects(config, "sweep.yield_target");
  config.sweep.yield_target = 1.5;
  expect_rejects(config, "sweep.yield_target");

  config = {};
  config.sweep.min_ok_fraction = -0.1;
  expect_rejects(config, "sweep.min_ok_fraction");

  config = {};
  config.sweep.breaker.trip_after = -1;
  expect_rejects(config, "sweep.breaker.trip_after");

  config = {};
  config.sweep.breaker.cooldown = 0;
  expect_rejects(config, "sweep.breaker.cooldown");
}

TEST(ServiceConfig, BuilderBuildThrowsOnInvalid) {
  EXPECT_THROW(ServiceConfig::builder().memory_capacity(0).build(), std::invalid_argument);
  EXPECT_THROW(ServiceConfig::builder().yield_target(2.0).build(), std::invalid_argument);
}

TEST(ServiceStack, BareStackHasNoResilienceLayer) {
  ckt::ConstrainedQuadratic problem(4);
  const ServiceStack stack(problem, ServiceConfig::builder().threads(1).build());
  EXPECT_EQ(stack.resilient(), nullptr);

  // The service answers as the problem would — same metrics, counted once.
  const linalg::Vec x = {0.3, 0.3, 0.3, 0.3};
  const ckt::EvalResult direct = problem.evaluate(x);
  const ckt::EvalResult via = stack.service().evaluate(x);
  ASSERT_EQ(via.metrics.size(), direct.metrics.size());
  for (std::size_t i = 0; i < direct.metrics.size(); ++i)
    EXPECT_EQ(via.metrics[i], direct.metrics[i]);
  EXPECT_EQ(stack.service().counters().requested, 1u);
}

TEST(ServiceStack, ResilientConfigInsertsLayer) {
  ckt::ConstrainedQuadratic problem(4);
  const ServiceStack stack(
      problem, ServiceConfig::builder().threads(1).resilient(true).max_retries(1).build());
  ASSERT_NE(stack.resilient(), nullptr);

  // Second identical request is a cache hit, resilient or not.
  const linalg::Vec x = {0.5, 0.5, 0.5, 0.5};
  (void)stack.service().evaluate(x);
  (void)stack.service().evaluate(x);
  const eval::EvalCounters counters = stack.service().counters();
  EXPECT_EQ(counters.requested, 2u);
  EXPECT_EQ(counters.hits, 1u);
  EXPECT_EQ(counters.simulations, 1u);
}

TEST(ServiceStack, ConstructorRejectsInvalidConfig) {
  ckt::ConstrainedQuadratic problem(4);
  ServiceConfig config;
  config.memory_capacity = 0;
  EXPECT_THROW(ServiceStack(problem, config), std::invalid_argument);
}

}  // namespace
}  // namespace maopt::serve
