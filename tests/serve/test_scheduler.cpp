#include "serve/scheduler.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace maopt::serve {
namespace {

using namespace std::chrono_literals;

/// Spins until `predicate` holds (the scheduler has no wait-for-waiter API;
/// tests poll stats() instead). Bounded so a regression fails, not hangs.
template <typename Predicate>
bool eventually(Predicate predicate, std::chrono::milliseconds limit = 5000ms) {
  const auto deadline = std::chrono::steady_clock::now() + limit;
  while (!predicate()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(1ms);
  }
  return true;
}

TEST(FairShareScheduler, UnlimitedModeNeverBlocks) {
  FairShareScheduler scheduler({.capacity = 0, .quantum = 8});
  scheduler.acquire("a", 1000);  // far beyond any real pool; must not block
  scheduler.acquire("b", 3);
  EXPECT_EQ(scheduler.in_use(), 1003u);

  const auto stats = scheduler.stats();
  EXPECT_EQ(stats.at("a").granted_sims, 1000u);
  EXPECT_EQ(stats.at("b").granted_sims, 3u);
  EXPECT_EQ(stats.at("a").waiting, 0u);

  scheduler.release("a", 1000);
  scheduler.release("b", 3);
  EXPECT_EQ(scheduler.in_use(), 0u);
}

TEST(FairShareScheduler, CapacityBoundsInFlightSlots) {
  constexpr std::size_t kCapacity = 4;
  FairShareScheduler scheduler({.capacity = kCapacity, .quantum = 8});

  std::atomic<std::size_t> in_flight{0};
  std::atomic<std::size_t> peak{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&scheduler, &in_flight, &peak, t] {
      const std::string tenant = t % 2 == 0 ? "even" : "odd";
      for (int i = 0; i < 20; ++i) {
        scheduler.acquire(tenant, 2);
        const std::size_t now = in_flight.fetch_add(2, std::memory_order_acq_rel) + 2;
        std::size_t seen = peak.load(std::memory_order_relaxed);
        while (now > seen && !peak.compare_exchange_weak(seen, now, std::memory_order_relaxed)) {
        }
        std::this_thread::sleep_for(100us);
        in_flight.fetch_sub(2, std::memory_order_acq_rel);
        scheduler.release(tenant, 2);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_LE(peak.load(), kCapacity);
  EXPECT_EQ(scheduler.in_use(), 0u);
  const auto stats = scheduler.stats();
  EXPECT_EQ(stats.at("even").granted_sims + stats.at("odd").granted_sims, 8u * 20u * 2u);
}

TEST(FairShareScheduler, FifoWithinOneTenant) {
  FairShareScheduler scheduler({.capacity = 2, .quantum = 8});
  scheduler.acquire("t", 2);  // saturate the capacity so the waiters queue up

  std::mutex order_mutex;
  std::vector<int> order;
  const auto waiter = [&](int id) {
    scheduler.acquire("t", 2);
    {
      const std::lock_guard<std::mutex> lock(order_mutex);
      order.push_back(id);
    }
    scheduler.release("t", 2);
  };

  std::thread first(waiter, 1);
  ASSERT_TRUE(eventually([&] { return scheduler.stats().at("t").waiting == 1; }));
  std::thread second(waiter, 2);
  ASSERT_TRUE(eventually([&] { return scheduler.stats().at("t").waiting == 2; }));

  scheduler.release("t", 2);
  first.join();
  second.join();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
}

TEST(FairShareScheduler, OversizeRequestAdmittedAlone) {
  FairShareScheduler scheduler({.capacity = 2, .quantum = 8});

  // Wider than the whole capacity: admitted via the in_use == 0 escape.
  scheduler.acquire("big", 10);
  EXPECT_EQ(scheduler.in_use(), 10u);

  // While the oversize grant is out, nothing else fits.
  std::atomic<bool> small_granted{false};
  std::thread small([&] {
    scheduler.acquire("small", 1);
    small_granted.store(true);
    scheduler.release("small", 1);
  });
  ASSERT_TRUE(eventually([&] { return scheduler.stats().count("small") != 0 &&
                                      scheduler.stats().at("small").waiting == 1; }));
  EXPECT_FALSE(small_granted.load());

  scheduler.release("big", 10);
  small.join();
  EXPECT_TRUE(small_granted.load());
  EXPECT_EQ(scheduler.in_use(), 0u);
}

/// Races tenant client threads against each other on a contended scheduler
/// (`tenants` may repeat a name — one thread per entry, so a repeated tenant
/// keeps several requests queued at once): every thread loops acquire ->
/// hold -> release until the FIRST thread to reach `per_thread_target`
/// granted sims raises the stop flag, then all exit after their in-flight
/// cycle. The returned per-tenant grant totals therefore reflect scheduler
/// policy, not thread racing. Note the standard-DRR boundary this harness
/// exposes: a grant that empties a tenant's queue forfeits its banked
/// deficit, so weights only bind for tenants that stay backlogged (more
/// than one client in flight); a lone client per tenant degenerates to
/// strict alternation regardless of weight.
std::map<std::string, std::uint64_t> run_contention(FairShareScheduler& scheduler,
                                                    const std::vector<std::string>& tenants,
                                                    std::size_t batch,
                                                    std::size_t per_thread_target,
                                                    std::chrono::microseconds hold) {
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (const std::string& tenant : tenants) {
    threads.emplace_back([&, tenant] {
      std::size_t mine = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        scheduler.acquire(tenant, batch);
        std::this_thread::sleep_for(hold);
        scheduler.release(tenant, batch);
        mine += batch;
        if (mine >= per_thread_target) stop.store(true, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  std::map<std::string, std::uint64_t> granted;
  for (const auto& [name, stats] : scheduler.stats()) granted[name] = stats.granted_sims;
  return granted;
}

TEST(FairShareScheduler, EqualWeightsShareWithinTwoFold) {
  FairShareScheduler scheduler({.capacity = 2, .quantum = 4});
  scheduler.set_weight("a", 1.0);
  scheduler.set_weight("b", 1.0);

  const auto granted = run_contention(scheduler, {"a", "b"}, 2, 300, 50us);

  // Equal weights, both backlogged: when the faster tenant crosses the
  // finish line the other must hold at least half its total — the "within
  // 2x of proportional share" invariant.
  const std::uint64_t lo = std::min(granted.at("a"), granted.at("b"));
  const std::uint64_t hi = std::max(granted.at("a"), granted.at("b"));
  EXPECT_GE(2 * lo, hi) << "a=" << granted.at("a") << " b=" << granted.at("b");
}

TEST(FairShareScheduler, HeavierWeightEarnsMoreGrants) {
  FairShareScheduler scheduler({.capacity = 1, .quantum = 4});
  scheduler.set_weight("heavy", 3.0);
  scheduler.set_weight("light", 1.0);

  // Three clients per tenant keep both queues non-empty across grants, so
  // deficits persist and the steady-state grant ratio tracks the 3:1
  // weights (quantum * weight sims per replenishment round). A lone client
  // per tenant would alternate 1:1 — see run_contention's note.
  const auto granted = run_contention(
      scheduler, {"heavy", "heavy", "heavy", "light", "light", "light"}, 1, 80, 100us);
  EXPECT_GE(granted.at("heavy"), 2 * granted.at("light"))
      << "heavy=" << granted.at("heavy") << " light=" << granted.at("light");
}

TEST(FairShareScheduler, NonPositiveWeightClampedNotZeroed) {
  FairShareScheduler scheduler({.capacity = 0, .quantum = 8});
  scheduler.set_weight("z", -1.0);
  EXPECT_GT(scheduler.stats().at("z").weight, 0.0);  // never starves outright
}

}  // namespace
}  // namespace maopt::serve
