#include "serve/daemon.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "circuits/analytic_problems.hpp"
#include "circuits/fom.hpp"
#include "common/rng.hpp"
#include "core/history_io.hpp"
#include "core/ma_optimizer.hpp"

namespace maopt::serve {
namespace {

using namespace std::chrono_literals;

/// The reference the daemon must match bit-for-bit: the bare-run protocol
/// (X_init from Rng(seed), FoM reference fit on the initial metrics, default
/// MA-Opt config) without any service, scheduler, or daemon in the path.
core::RunHistory bare_run(const ckt::SizingProblem& problem, std::uint64_t seed, std::size_t init,
                          std::size_t budget) {
  Rng rng(seed);
  auto initial = core::sample_initial_set(problem, init, rng);
  std::vector<linalg::Vec> rows;
  rows.reserve(initial.size());
  for (const auto& record : initial) rows.push_back(record.metrics);
  const auto fom = ckt::FomEvaluator::fit_reference(problem, rows);
  core::MaOptimizer optimizer(core::MaOptConfig::ma_opt());
  return optimizer.run(problem, initial, fom, {.seed = seed, .simulation_budget = budget});
}

/// Collects the daemon's job-scoped telemetry for chain/terminal assertions.
class JobEventLog final : public obs::RunObserver {
 public:
  void on_job_submitted(const obs::JobSubmitted& event) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    submitted_.push_back(event);
  }
  void on_job_state_changed(const obs::JobStateChanged& event) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    transitions_.push_back(event);
  }
  void on_job_finished(const obs::JobFinished& event) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    finished_.push_back(event);
  }

  std::vector<obs::JobSubmitted> submitted() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return submitted_;
  }
  std::vector<obs::JobStateChanged> transitions() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return transitions_;
  }
  std::vector<obs::JobFinished> finished() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return finished_;
  }

 private:
  mutable std::mutex mutex_;
  std::vector<obs::JobSubmitted> submitted_;
  std::vector<obs::JobStateChanged> transitions_;
  std::vector<obs::JobFinished> finished_;
};

template <typename Predicate>
bool eventually(Predicate predicate, std::chrono::milliseconds limit = 30000ms) {
  const auto deadline = std::chrono::steady_clock::now() + limit;
  while (!predicate()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(1ms);
  }
  return true;
}

struct DaemonFixture : ::testing::Test {
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    work_dir = ::testing::TempDir() + "maopt_daemon_" + info->name();
    std::filesystem::remove_all(work_dir);
  }
  void TearDown() override { std::filesystem::remove_all(work_dir); }

  DaemonConfig daemon_config() {
    DaemonConfig config;
    config.work_dir = work_dir;
    config.num_threads = 2;
    config.observer = &log;
    return config;
  }

  std::string work_dir;
  JobEventLog log;
  ckt::ConstrainedQuadratic problem{6};
};

TEST_F(DaemonFixture, MatchesBareRunBitIdentically) {
  constexpr std::uint64_t kSeed = 7;
  constexpr std::size_t kInit = 10;
  constexpr std::size_t kBudget = 24;

  OptDaemon daemon(daemon_config());
  daemon.add_problem("quad", problem);

  JobSpec spec;
  spec.name = "solo";
  spec.problem = "quad";
  spec.seed = kSeed;
  spec.simulation_budget = kBudget;
  spec.initial_samples = kInit;
  spec.checkpoint_every = 2;
  daemon.submit(spec);
  const JobStatus status = daemon.wait("solo");

  const core::RunHistory bare = bare_run(problem, kSeed, kInit, kBudget);
  ASSERT_EQ(status.state, JobState::Done);
  EXPECT_EQ(status.simulations, kBudget);
  EXPECT_EQ(status.best_fom, bare.best_fom_after.back());  // exact, not approx
  EXPECT_EQ(status.feasible, bare.best_feasible() != nullptr);

  // The periodic checkpoint holds a prefix of the run; every entry of its
  // best-FoM trajectory must equal the bare run's, element for element.
  const core::RunCheckpoint checkpoint = core::load_checkpoint(work_dir + "/solo.ckpt");
  EXPECT_EQ(checkpoint.seed, kSeed);
  ASSERT_FALSE(checkpoint.history.best_fom_after.empty());
  ASSERT_LE(checkpoint.history.best_fom_after.size(), bare.best_fom_after.size());
  for (std::size_t i = 0; i < checkpoint.history.best_fom_after.size(); ++i)
    EXPECT_EQ(checkpoint.history.best_fom_after[i], bare.best_fom_after[i]) << "at " << i;
}

TEST_F(DaemonFixture, PauseResumeCycleReproducesTheUninterruptedRun) {
  constexpr std::uint64_t kSeed = 3;
  constexpr std::size_t kInit = 10;
  constexpr std::size_t kBudget = 40;

  OptDaemon daemon(daemon_config());
  daemon.add_problem("quad", problem);

  JobSpec spec;
  spec.name = "pr";
  spec.problem = "quad";
  spec.seed = kSeed;
  spec.simulation_budget = kBudget;
  spec.initial_samples = kInit;
  daemon.submit(spec);

  // Pause mid-run (after a few post-initial simulations). If the job races
  // to completion first the pause is refused and the equality check below
  // still holds — but on any realistic machine the pause lands.
  ASSERT_TRUE(eventually([&] {
    const JobStatus status = daemon.status("pr");
    return status.simulations >= 4 || is_terminal(status.state);
  }));
  if (daemon.pause("pr")) {
    const JobStatus paused = daemon.wait("pr");
    if (paused.state == JobState::Paused) {
      EXPECT_TRUE(std::filesystem::exists(work_dir + "/pr.ckpt"));
      EXPECT_FALSE(daemon.resume("nonexistent"));
      ASSERT_TRUE(daemon.resume("pr"));
      EXPECT_FALSE(daemon.resume("pr"));  // already running again
    }
  }

  const JobStatus status = daemon.wait("pr");
  const core::RunHistory bare = bare_run(problem, kSeed, kInit, kBudget);
  ASSERT_EQ(status.state, JobState::Done);
  EXPECT_EQ(status.simulations, kBudget);
  EXPECT_EQ(status.best_fom, bare.best_fom_after.back());
  EXPECT_EQ(status.feasible, bare.best_feasible() != nullptr);

  // Counters accumulate across segments: the resumed segment replays the
  // checkpointed records without re-simulating, so the summed simulation
  // count equals the budget regardless of how many segments ran.
  EXPECT_EQ(status.counters.simulations, kBudget);
}

TEST_F(DaemonFixture, KillWhileCheckpointingStopsAtYieldPoint) {
  OptDaemon daemon(daemon_config());
  daemon.add_problem("quad", problem);

  JobSpec spec;
  spec.name = "doomed";
  spec.problem = "quad";
  spec.seed = 5;
  spec.simulation_budget = 5000;  // far more than the test lets it spend
  spec.initial_samples = 10;
  spec.checkpoint_every = 1;  // checkpoint every iteration: kill races the writer
  daemon.submit(spec);

  ASSERT_TRUE(eventually([&] { return daemon.status("doomed").simulations >= 2; }));
  ASSERT_TRUE(daemon.kill("doomed"));
  const JobStatus status = daemon.wait("doomed");
  EXPECT_EQ(status.state, JobState::Killed);
  EXPECT_LT(status.simulations, spec.simulation_budget);
  EXPECT_FALSE(daemon.kill("doomed"));    // already terminal
  EXPECT_FALSE(daemon.resume("doomed"));  // killed jobs stay dead

  const auto finished = log.finished();
  ASSERT_EQ(finished.size(), 1u);
  EXPECT_EQ(finished[0].name, "doomed");
  EXPECT_EQ(finished[0].state, "killed");
}

TEST_F(DaemonFixture, ResumeAfterDaemonRestartCompletesTheBudget) {
  constexpr std::uint64_t kSeed = 11;
  constexpr std::size_t kInit = 10;
  constexpr std::size_t kBudget = 30;

  JobSpec spec;
  spec.name = "restart";
  spec.problem = "quad";
  spec.seed = kSeed;
  spec.simulation_budget = kBudget;
  spec.initial_samples = kInit;

  {
    OptDaemon daemon(daemon_config());
    daemon.add_problem("quad", problem);
    daemon.submit(spec);
    // Pause before the first yield point: the checkpoint then carries only
    // the initial set — the hardest replay case for the restart path.
    ASSERT_TRUE(daemon.pause("restart"));
    const JobStatus paused = daemon.wait("restart");
    ASSERT_EQ(paused.state, JobState::Paused);
  }  // daemon destroyed; the paused job's checkpoint stays in work_dir

  OptDaemon daemon(daemon_config());
  daemon.add_problem("quad", problem);
  spec.resume_from_checkpoint = true;
  daemon.submit(spec);
  const JobStatus status = daemon.wait("restart");

  const core::RunHistory bare = bare_run(problem, kSeed, kInit, kBudget);
  ASSERT_EQ(status.state, JobState::Done);
  EXPECT_EQ(status.simulations, kBudget);
  EXPECT_EQ(status.best_fom, bare.best_fom_after.back());
}

TEST_F(DaemonFixture, TwoTenantsSameDesignIsolatedJournals) {
  constexpr std::uint64_t kSeed = 21;
  constexpr std::size_t kInit = 10;
  constexpr std::size_t kBudget = 20;

  DaemonConfig config = daemon_config();
  config.scheduler.capacity = 8;  // force both jobs through the admission gate
  OptDaemon daemon(config);
  daemon.register_tenant("alice", 1.0);
  daemon.register_tenant("bob", 1.0);
  daemon.add_problem("quad", problem);

  JobSpec spec;
  spec.problem = "quad";
  spec.seed = kSeed;
  spec.simulation_budget = kBudget;
  spec.initial_samples = kInit;

  spec.name = "job-a";
  spec.tenant = "alice";
  daemon.submit(spec);
  spec.name = "job-b";
  spec.tenant = "bob";
  daemon.submit(spec);

  const JobStatus a = daemon.wait("job-a");
  const JobStatus b = daemon.wait("job-b");
  ASSERT_EQ(a.state, JobState::Done);
  ASSERT_EQ(b.state, JobState::Done);
  // Same seed, same problem: identical trajectories whichever tenant ran.
  EXPECT_EQ(a.best_fom, b.best_fom);
  EXPECT_EQ(a.simulations, b.simulations);

  // Isolated journals: each tenant's namespace persisted its own results.
  const std::string alice_dir = work_dir + "/tenants/alice/quad";
  const std::string bob_dir = work_dir + "/tenants/bob/quad";
  EXPECT_TRUE(std::filesystem::exists(alice_dir) && !std::filesystem::is_empty(alice_dir));
  EXPECT_TRUE(std::filesystem::exists(bob_dir) && !std::filesystem::is_empty(bob_dir));

  // Both tenants were metered, and equal weights kept them within 2x of the
  // proportional (equal) grant share.
  const auto stats = daemon.scheduler().stats();
  const std::uint64_t alice_granted = stats.at("alice").granted_sims;
  const std::uint64_t bob_granted = stats.at("bob").granted_sims;
  EXPECT_GE(alice_granted, kBudget);
  EXPECT_GE(bob_granted, kBudget);
  EXPECT_LE(alice_granted, 2 * bob_granted);
  EXPECT_LE(bob_granted, 2 * alice_granted);

  // Warm rerun in alice's namespace: every in-run request is now a hit —
  // a cache miss here would mean the namespaces leaked or the trajectory
  // diverged.
  spec.name = "job-a2";
  spec.tenant = "alice";
  daemon.submit(spec);
  const JobStatus a2 = daemon.wait("job-a2");
  ASSERT_EQ(a2.state, JobState::Done);
  EXPECT_EQ(a2.best_fom, a.best_fom);
  EXPECT_EQ(a2.counters.cache_misses, 0u);
  EXPECT_EQ(a2.counters.cache_hits, kBudget);
}

TEST_F(DaemonFixture, SubmitValidation) {
  OptDaemon daemon(daemon_config());
  daemon.add_problem("quad", problem);
  EXPECT_THROW(daemon.add_problem("quad", problem), std::invalid_argument);

  JobSpec ok;
  ok.name = "valid";
  ok.problem = "quad";
  ok.algorithm = "Random";
  ok.simulation_budget = 5;
  ok.initial_samples = 8;
  daemon.submit(ok);

  JobSpec bad = ok;
  EXPECT_THROW(daemon.submit(bad), std::invalid_argument);  // duplicate name
  bad.name = "";
  EXPECT_THROW(daemon.submit(bad), std::invalid_argument);  // empty name
  bad = ok;
  bad.name = "b1";
  bad.problem = "no-such-problem";
  EXPECT_THROW(daemon.submit(bad), std::invalid_argument);
  bad = ok;
  bad.name = "b2";
  bad.algorithm = "SimulatedAnnealing";
  EXPECT_THROW(daemon.submit(bad), std::invalid_argument);
  bad = ok;
  bad.name = "b3";
  bad.simulation_budget = 0;
  EXPECT_THROW(daemon.submit(bad), std::invalid_argument);
  bad = ok;
  bad.name = "b4";
  bad.algorithm = "PSO";
  bad.resume_from_checkpoint = true;  // PSO cannot checkpoint
  EXPECT_THROW(daemon.submit(bad), std::invalid_argument);

  EXPECT_THROW(daemon.status("no-such-job"), std::invalid_argument);
  EXPECT_THROW(daemon.wait("no-such-job"), std::invalid_argument);
  EXPECT_THROW(daemon.service("no-such-problem"), std::invalid_argument);
  EXPECT_FALSE(daemon.kill("no-such-job"));
  EXPECT_FALSE(daemon.pause("no-such-job"));

  const JobStatus status = daemon.wait("valid");
  EXPECT_EQ(status.state, JobState::Done);
  EXPECT_FALSE(daemon.pause("valid"));  // terminal, and Random is not pausable
  ASSERT_EQ(daemon.jobs().size(), 1u);
  EXPECT_EQ(daemon.jobs()[0].spec.name, "valid");
}

TEST_F(DaemonFixture, JobEventsChainFromPendingToTerminal) {
  OptDaemon daemon(daemon_config());
  daemon.add_problem("quad", problem);

  JobSpec spec;
  spec.name = "observed";
  spec.tenant = "carol";
  spec.problem = "quad";
  spec.algorithm = "Random";
  spec.seed = 13;
  spec.simulation_budget = 6;
  spec.initial_samples = 8;
  const std::uint64_t id = daemon.submit(spec);
  const JobStatus status = daemon.wait("observed");
  ASSERT_EQ(status.state, JobState::Done);

  const auto submitted = log.submitted();
  ASSERT_EQ(submitted.size(), 1u);
  EXPECT_EQ(submitted[0].job_id, id);
  EXPECT_EQ(submitted[0].name, "observed");
  EXPECT_EQ(submitted[0].tenant, "carol");
  EXPECT_EQ(submitted[0].problem, "quad");
  EXPECT_EQ(submitted[0].algorithm, "Random");
  EXPECT_EQ(submitted[0].seed, 13u);
  EXPECT_EQ(submitted[0].simulation_budget, 6u);

  // Transitions form an unbroken chain starting at "pending" and ending in
  // the finished event's terminal state — the invariant check_telemetry.py
  // enforces on JSONL streams, asserted here at the source.
  const auto transitions = log.transitions();
  ASSERT_GE(transitions.size(), 2u);
  std::string state = "pending";
  for (const auto& transition : transitions) {
    EXPECT_EQ(transition.from, state);
    EXPECT_EQ(transition.job_id, id);
    state = transition.to;
  }
  EXPECT_EQ(state, "done");

  const auto finished = log.finished();
  ASSERT_EQ(finished.size(), 1u);
  EXPECT_EQ(finished[0].state, "done");
  EXPECT_EQ(finished[0].tenant, "carol");
  EXPECT_EQ(finished[0].simulations, 6u);
}

}  // namespace
}  // namespace maopt::serve
