#include "deck/expression.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

namespace maopt::deck {
namespace {

TEST(Expression, PrecedenceAndParentheses) {
  EXPECT_DOUBLE_EQ(Expr::parse("1+2*3").eval({}), 7.0);
  EXPECT_DOUBLE_EQ(Expr::parse("(1+2)*3").eval({}), 9.0);
  EXPECT_DOUBLE_EQ(Expr::parse("10-4-3").eval({}), 3.0);  // left-associative
  EXPECT_DOUBLE_EQ(Expr::parse("8/2/2").eval({}), 2.0);
}

TEST(Expression, UnaryMinus) {
  EXPECT_DOUBLE_EQ(Expr::parse("-3").eval({}), -3.0);
  EXPECT_DOUBLE_EQ(Expr::parse("2*-3").eval({}), -6.0);
  EXPECT_DOUBLE_EQ(Expr::parse("-(1+2)").eval({}), -3.0);
  EXPECT_DOUBLE_EQ(Expr::parse("--4").eval({}), 4.0);
}

TEST(Expression, SpiceSuffixNumbers) {
  EXPECT_DOUBLE_EQ(Expr::parse("1.5k+500").eval({}), 2000.0);
  EXPECT_DOUBLE_EQ(Expr::parse("2meg/1k").eval({}), 2000.0);
  EXPECT_DOUBLE_EQ(Expr::parse("100f*1e15").eval({}), 100.0);
}

TEST(Expression, VariablesAreCaseInsensitive) {
  const ParamEnv env{{"W1", 3.0}, {"RLOAD", 2.0}};
  EXPECT_DOUBLE_EQ(Expr::parse("W1*2").eval(env), 6.0);
  EXPECT_DOUBLE_EQ(Expr::parse("w1*rload").eval(env), 6.0);
}

TEST(Expression, UnknownParamAndEmptyThrow) {
  EXPECT_THROW(Expr::parse("nope+1").eval({}), std::invalid_argument);
  EXPECT_THROW(Expr().eval({}), std::invalid_argument);
  EXPECT_THROW(Expr::parse("1+*2"), std::invalid_argument);
  EXPECT_THROW(Expr::parse("(1"), std::invalid_argument);
}

TEST(Expression, ConstantDetection) {
  EXPECT_TRUE(Expr::parse("1+2*3").is_constant());
  EXPECT_FALSE(Expr::parse("1+W").is_constant());
  EXPECT_TRUE(Expr::number(4.0).is_constant());
  EXPECT_DOUBLE_EQ(Expr::number(4.0).eval({}), 4.0);
}

TEST(Expression, CollectParams) {
  std::set<std::string> refs;
  Expr::parse("a + b*(c - a)").collect_params(refs);
  EXPECT_EQ(refs, (std::set<std::string>{"A", "B", "C"}));
}

TEST(Expression, Substitute) {
  const Expr e = Expr::parse("W+1");
  const Expr bound = e.substitute({{"W", Expr::parse("2*X")}});
  EXPECT_DOUBLE_EQ(bound.eval({{"X", 3.0}}), 7.0);
  // The original tree is unchanged (immutability).
  EXPECT_DOUBLE_EQ(e.eval({{"W", 10.0}}), 11.0);
}

TEST(Expression, CanonicalIsWhitespaceInsensitive) {
  EXPECT_EQ(Expr::parse("1 + 2*a").canonical(), Expr::parse("1+2 * A").canonical());
  EXPECT_NE(Expr::parse("1+2*a").canonical(), Expr::parse("1+2*b").canonical());
  EXPECT_NE(Expr::parse("1+2").canonical(), Expr::parse("2+1").canonical());
}

}  // namespace
}  // namespace maopt::deck
