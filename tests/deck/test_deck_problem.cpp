#include "deck/deck_problem.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "spice/ac_analysis.hpp"
#include "spice/dc_analysis.hpp"
#include "spice/measure.hpp"
#include "spice/mosfet.hpp"
#include "spice/netlist.hpp"

namespace maopt::deck {
namespace {

using ckt::Vec;

// A resistive divider with a designable bottom leg: V(out) = R2 / (R1 + R2).
const char* kDividerDeck = R"(
.param R1VAL=1k
.param R2VAL=3k
V1 in 0 DC 1
R1 in out {R1VAL}
R2 out 0 {R2VAL}
.op
.measure op vout v v(out)
)";

const char* kDividerSpec = R"(
name divider
param R2VAL lower=100 upper=10k
minimize {1 - VOUT} name=drop
constraint VOUT >= 0.5 unit=V
)";

// MOSFET common-source amplifier: exercises models, AC measures and lets.
const char* kCsDeck = R"(
.model n180 NMOS
.param WCS=20u
.param RLOAD=5k
VDD vdd 0 1.8
VIN in 0 DC 0.7 AC 1
RL vdd out {RLOAD}
M1 out in 0 0 n180 W={WCS} L=1u
CL out 0 200f
.op
.ac dec 10 1 1g
.measure op power supplypower VDD
.measure op vout v v(out)
.measure ac gain dcgain v(out)
.measure ac bw bw v(out) default=0
)";

const char* kCsSpec = R"(
name cs_amp_test
param WCS   lower=2u  upper=100u
param RLOAD lower=500 upper=20k
let power_mw {POWER*1e3}
minimize power_mw unit=mW
constraint GAIN >= 12   unit=dB
constraint BW   >= 1meg unit=Hz
constraint VOUT >= 0.5  unit=V
)";

TEST(DeckProblem, CompilesBoundsNamesAndSpec) {
  const DeckProblem p = DeckProblem::from_text(kCsDeck, kCsSpec);
  EXPECT_EQ(p.spec().name, "cs_amp_test");
  EXPECT_EQ(p.spec().target_name, "power_mw");
  EXPECT_EQ(p.spec().target_unit, "mW");
  ASSERT_EQ(p.dim(), 2u);
  EXPECT_EQ(p.parameter_names(), (std::vector<std::string>{"WCS", "RLOAD"}));
  EXPECT_DOUBLE_EQ(p.lower_bounds()[0], 2e-6);
  EXPECT_DOUBLE_EQ(p.upper_bounds()[1], 20e3);
  ASSERT_EQ(p.spec().constraints.size(), 3u);
  EXPECT_EQ(p.spec().constraints[0].name, "GAIN");
  EXPECT_EQ(p.spec().constraints[1].bound, 1e6);
  EXPECT_TRUE(p.supports_process_variation());
  EXPECT_EQ(p.num_metrics(), 4u);
}

TEST(DeckProblem, EvaluatesAnalyticDivider) {
  const DeckProblem p = DeckProblem::from_text(kDividerDeck, kDividerSpec);
  EXPECT_FALSE(p.supports_process_variation());  // no MOSFETs
  Vec x(1);
  x[0] = 3000.0;
  const auto r = p.evaluate(x);
  ASSERT_TRUE(r.simulation_ok);
  EXPECT_NEAR(r.metrics[0], 0.25, 1e-9);  // 1 - 3k/4k
  EXPECT_NEAR(r.metrics[1], 0.75, 1e-9);
  EXPECT_TRUE(p.feasible(r.metrics));

  x[0] = 500.0;  // V(out) = 1/3 — constraint violated
  const auto r2 = p.evaluate(x);
  ASSERT_TRUE(r2.simulation_ok);
  EXPECT_NEAR(r2.metrics[1], 1.0 / 3.0, 1e-9);
  EXPECT_FALSE(p.feasible(r2.metrics));
}

TEST(DeckProblem, SessionMatchesEvaluateBitwise) {
  const DeckProblem p = DeckProblem::from_text(kCsDeck, kCsSpec);
  Vec x(2);
  x[0] = 30e-6;
  x[1] = 8e3;
  const auto direct = p.evaluate(x);
  ASSERT_TRUE(direct.simulation_ok);

  auto session = p.make_session();
  const auto first = session->evaluate(x);
  const auto second = session->evaluate(x);  // re-targeted, same design
  for (std::size_t k = 0; k < direct.metrics.size(); ++k) {
    EXPECT_EQ(direct.metrics[k], first.metrics[k]) << "metric " << k;
    EXPECT_EQ(first.metrics[k], second.metrics[k]) << "metric " << k;
  }
}

TEST(DeckProblem, SessionReusedAcrossDesigns) {
  const DeckProblem p = DeckProblem::from_text(kCsDeck, kCsSpec);
  auto session = p.make_session();
  Vec a(2), b(2);
  a[0] = 10e-6;
  a[1] = 4e3;
  b[0] = 60e-6;
  b[1] = 12e3;
  const auto ra = session->evaluate(a);
  const auto rb = session->evaluate(b);
  const auto ra_again = session->evaluate(a);  // b's state must not leak into a
  ASSERT_TRUE(ra.simulation_ok);
  ASSERT_TRUE(rb.simulation_ok);
  for (std::size_t k = 0; k < ra.metrics.size(); ++k)
    EXPECT_EQ(ra.metrics[k], ra_again.metrics[k]) << "metric " << k;
  EXPECT_NE(ra.metrics[0], rb.metrics[0]);
}

TEST(DeckProblem, FingerprintStableAcrossReformatting) {
  const DeckProblem a = DeckProblem::from_text(kCsDeck, kCsSpec);
  const std::string reformatted = std::string("* a comment\n") + kCsDeck + "\n* trailing\n";
  const DeckProblem b = DeckProblem::from_text(reformatted, kCsSpec);
  EXPECT_NE(a.content_fingerprint(), 0u);
  EXPECT_EQ(a.content_fingerprint(), b.content_fingerprint());
}

TEST(DeckProblem, FingerprintDistinguishesCircuitAndSpec) {
  const DeckProblem base = DeckProblem::from_text(kCsDeck, kCsSpec);
  // Same spec, different circuit (load capacitor value).
  std::string other_deck = kCsDeck;
  other_deck.replace(other_deck.find("200f"), 4, "300f");
  EXPECT_NE(DeckProblem::from_text(other_deck, kCsSpec).content_fingerprint(),
            base.content_fingerprint());
  // Same circuit, different spec (constraint bound).
  std::string other_spec = kCsSpec;
  other_spec.replace(other_spec.find(">= 12"), 5, ">= 14");
  EXPECT_NE(DeckProblem::from_text(kCsDeck, other_spec).content_fingerprint(),
            base.content_fingerprint());
}

TEST(DeckProblem, IntegerMaskAndClip) {
  const DeckProblem p = DeckProblem::from_text(R"(
.param A=2 B=3
R1 x 0 {A*1k}
R2 x 0 {B*1k}
V1 x 0 1
.op
.measure op vx v v(x)
)",
                                               R"(
name intmask
param A lower=1 upper=8 integer
param B lower=1k upper=9k
minimize VX
)");
  ASSERT_EQ(p.dim(), 2u);
  EXPECT_TRUE(p.integer_mask()[0]);
  EXPECT_FALSE(p.integer_mask()[1]);
  Vec x(2);
  x[0] = 3.4;
  x[1] = 20e3;
  const Vec clipped = p.clip(x);
  EXPECT_DOUBLE_EQ(clipped[0], 3.0);
  EXPECT_DOUBLE_EQ(clipped[1], 9e3);
}

TEST(DeckProblem, CompileErrors) {
  // Spec param that is not a deck .param.
  EXPECT_THROW(DeckProblem::from_text(kDividerDeck, R"(
param NOPE lower=1 upper=2
minimize {1}
)"),
               std::invalid_argument);
  // Objective referencing an unknown name.
  EXPECT_THROW(DeckProblem::from_text(kDividerDeck, R"(
param R2VAL lower=100 upper=10k
minimize MISSING
)"),
               std::invalid_argument);
  // Measure probing a node that does not exist in the circuit.
  EXPECT_THROW(DeckProblem::from_text(R"(
V1 in 0 1
R1 in 0 1k
.op
.measure op v1 v v(ghost)
)",
                                      "param R2VAL lower=1 upper=2\nminimize V1\n"),
               std::invalid_argument);
}

TEST(DeckProblem, DesignableDrivingFixedFieldRejected) {
  // Inductor values are fixed at netlist-build time.
  EXPECT_THROW(DeckProblem::from_text(R"(
.param LVAL=1m
V1 in 0 1
L1 in out {LVAL}
R1 out 0 1k
.op
.measure op vout v v(out)
)",
                                      "param LVAL lower=1u upper=1\nminimize VOUT\n"),
               std::invalid_argument);
  // Analysis sweep grids are design-independent by contract.
  EXPECT_THROW(DeckProblem::from_text(R"(
.param FMAX=1g
V1 in 0 DC 1 AC 1
R1 in out 1k
C1 out 0 1p
.op
.ac dec 10 1 {FMAX}
.measure ac bw bw v(out) default=0
)",
                                      "param FMAX lower=1meg upper=10g\nminimize BW\n"),
               std::invalid_argument);
}

TEST(DeckProblem, MeasureDefaultFallback) {
  // A 100% feed-through "amplifier" never crosses unity from above, so UGF is
  // undefined; default= must kick in instead of failing the evaluation.
  const DeckProblem p = DeckProblem::from_text(R"(
.param RVAL=1k
V1 in 0 DC 1 AC 1
R1 in out {RVAL}
C1 out 0 1n
.op
.ac dec 10 1 1meg
.measure ac ugf ugf v(out) default=123
)",
                                               R"(
param RVAL lower=100 upper=10k
minimize UGF
)");
  Vec x(1);
  x[0] = 1000.0;
  const auto r = p.evaluate(x);
  ASSERT_TRUE(r.simulation_ok);
  EXPECT_DOUBLE_EQ(r.metrics[0], 123.0);
}

TEST(DeckProblem, VariationIsSeededAndDeterministic) {
  const DeckProblem p = DeckProblem::from_text(kCsDeck, kCsSpec);
  Vec x(2);
  x[0] = 30e-6;
  x[1] = 8e3;
  ckt::ProcessVariation pv;
  pv.sigma_vth = 0.05;
  pv.seed = 7;
  const auto nominal = p.evaluate(x);
  const auto varied = p.evaluate_at(x, pv);
  const auto varied_again = p.evaluate_at(x, pv);
  ASSERT_TRUE(varied.simulation_ok);
  for (std::size_t k = 0; k < varied.metrics.size(); ++k)
    EXPECT_EQ(varied.metrics[k], varied_again.metrics[k]) << "metric " << k;
  EXPECT_NE(nominal.metrics[1], varied.metrics[1]);  // gain moves with Vth

  pv.seed = 8;
  const auto other_seed = p.evaluate_at(x, pv);
  EXPECT_NE(varied.metrics[1], other_seed.metrics[1]);

  // Sessions pinned via make_session_at agree with evaluate_at.
  pv.seed = 7;
  auto session = p.make_session_at(pv);
  const auto via_session = session->evaluate(x);
  for (std::size_t k = 0; k < varied.metrics.size(); ++k)
    EXPECT_EQ(varied.metrics[k], via_session.metrics[k]) << "metric " << k;
}

TEST(DeckProblem, FailedSimulationReportsFailureMetrics) {
  // Designable resistor driven to a value that floats the probe node is fine,
  // but an unknown-measure default path is covered above; here force failure
  // via a nonsensical tran grid at evaluation time is impossible (compile
  // validates), so use a deck whose DC solve cannot converge: a floating
  // gate with subthreshold feedback is hard to build analytically — instead
  // drive the divider with x outside physical range via clip-free evaluate.
  const DeckProblem p = DeckProblem::from_text(kDividerDeck, kDividerSpec);
  Vec x(1);
  x[0] = -1e3;  // negative resistance: DC still solves; metrics stay finite
  const auto r = p.evaluate(x);
  // Either a clean solve with finite metrics or explicit failure metrics —
  // never NaN leaking into the optimizer.
  for (const double m : r.metrics) EXPECT_TRUE(std::isfinite(m));
}

// The acceptance gate: a deck-compiled five-transistor OTA must agree with a
// handwritten Netlist of the same circuit, measure for measure.
TEST(DeckProblem, AgreesWithHandwrittenOta) {
  const char* ota_deck = R"(
.model n180 NMOS
.model p180 PMOS
.param W1=20u
.param W3=10u
.param W5=5u
.param L1=1u
.param MTAIL=4
VDD vdd 0 1.8
VINP inp 0 DC 0.9 AC 1
VINN inn 0 DC 0.9
IB vdd vbn 20u
.subckt nmirror in out ratio=1 w=5u l=1u
MDIODE in in 0 0 n180 W={w} L={l}
MOUT out in 0 0 n180 W={w} L={l} M={ratio}
.ends
XTAIL vbn tail nmirror ratio={MTAIL} w={W5} l={L1}
M1 n1 inn tail 0 n180 W={W1} L={L1}
M2 out inp tail 0 n180 W={W1} L={L1}
M3 n1 n1 vdd vdd p180 W={W3} L={L1}
M4 out n1 vdd vdd p180 W={W3} L={L1}
CL out 0 500f
.op
.ac dec 10 1 1g
.measure op power supplypower VDD
.measure ac gain dcgain v(out)
.measure ac ugf ugf v(out) default=0
)";
  const char* ota_spec = R"(
name ota_agreement
param W1 lower=2u upper=100u
param W3 lower=2u upper=100u
param W5 lower=2u upper=50u
param L1 lower=0.18u upper=2u
param MTAIL lower=1 upper=8 integer
minimize {POWER*1e3} name=power unit=mW
constraint GAIN >= 25 unit=dB
constraint UGF >= 1meg unit=Hz
)";
  const DeckProblem p = DeckProblem::from_text(ota_deck, ota_spec);
  Vec x(5);
  x[0] = 20e-6;
  x[1] = 10e-6;
  x[2] = 5e-6;
  x[3] = 1e-6;
  x[4] = 4.0;
  const auto deck_result = p.evaluate(x);
  ASSERT_TRUE(deck_result.simulation_ok);

  // Handwritten: same topology built directly on the Netlist API, with the
  // mirror subcircuit flattened by hand.
  using namespace maopt::spice;
  Netlist net;
  const MosModel nm = MosModel::nmos_180();
  const MosModel pm = MosModel::pmos_180();
  const int vdd = net.node("vdd");
  const int inp = net.node("inp");
  const int inn = net.node("inn");
  const int vbn = net.node("vbn");
  const int tail = net.node("tail");
  const int n1 = net.node("n1");
  const int out = net.node("out");
  auto* vdd_src = net.add<VSource>(vdd, kGround, Waveform::dc(1.8), 0.0);
  net.add<VSource>(inp, kGround, Waveform::dc(0.9), 1.0);
  net.add<VSource>(inn, kGround, Waveform::dc(0.9), 0.0);
  net.add<ISource>(vdd, vbn, Waveform::dc(20e-6), 0.0);
  net.add<Mosfet>(vbn, vbn, kGround, kGround, nm, x[2], x[3], 1.0);   // XTAIL.MDIODE
  net.add<Mosfet>(tail, vbn, kGround, kGround, nm, x[2], x[3], x[4]); // XTAIL.MOUT
  net.add<Mosfet>(n1, inn, tail, kGround, nm, x[0], x[3], 1.0);       // M1
  net.add<Mosfet>(out, inp, tail, kGround, nm, x[0], x[3], 1.0);      // M2
  net.add<Mosfet>(n1, n1, vdd, vdd, pm, x[1], x[3], 1.0);             // M3
  net.add<Mosfet>(out, n1, vdd, vdd, pm, x[1], x[3], 1.0);            // M4
  net.add<Capacitor>(out, kGround, 500e-15);
  net.prepare();

  DcAnalysis dc;
  const DcResult op = dc.solve(net);
  ASSERT_TRUE(op.converged);
  AcAnalysis ac;
  const AcSweep sweep = ac.run(net, op.x, log_frequency_grid(1.0, 1e9, 10));

  const double power = std::abs(vdd_src->branch_current(op.x) * 1.8);
  const double gain = dc_gain_db(sweep, out);
  const auto ugf = unity_gain_frequency(sweep, out);
  ASSERT_TRUE(ugf.has_value());

  const double rel = 1e-9;
  EXPECT_NEAR(deck_result.metrics[0], power * 1e3, std::abs(power * 1e3) * rel);
  EXPECT_NEAR(deck_result.metrics[1], gain, std::abs(gain) * rel);
  EXPECT_NEAR(deck_result.metrics[2], *ugf, std::abs(*ugf) * rel);
  EXPECT_GT(deck_result.metrics[1], 25.0);  // the OTA actually has gain
}

}  // namespace
}  // namespace maopt::deck
