#include "deck/elaborator.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

namespace maopt::deck {
namespace {

namespace fs = std::filesystem;

/// Scratch directory for include-resolution tests; removed on destruction.
class TempDeckDir {
 public:
  TempDeckDir() : dir_(fs::temp_directory_path() / fs::path("maopt_deck_test_" + unique())) {
    fs::create_directories(dir_);
  }
  ~TempDeckDir() { fs::remove_all(dir_); }

  std::string write(const std::string& rel, const std::string& text) {
    const fs::path p = dir_ / rel;
    fs::create_directories(p.parent_path());
    std::ofstream(p) << text;
    return p.string();
  }

 private:
  static std::string unique() {
    static int counter = 0;
    return std::to_string(++counter) + "_" + std::to_string(::getpid());
  }
  fs::path dir_;
};

TEST(Elaborator, ParamExpressionsEvaluateInOrder) {
  const auto deck = elaborate_deck_text(".param A=2\n.param B={A*3} C={B+A}\nR1 a 0 {C}\n");
  const ParamEnv env = deck.nominal_env();
  EXPECT_DOUBLE_EQ(env.at("A"), 2.0);
  EXPECT_DOUBLE_EQ(env.at("B"), 6.0);
  EXPECT_DOUBLE_EQ(env.at("C"), 8.0);
  ASSERT_EQ(deck.elements.size(), 1u);
  EXPECT_DOUBLE_EQ(deck.elements[0].value.eval(env), 8.0);
}

TEST(Elaborator, LaterParamRedefinitionWins) {
  // Redefinition appends; nominal_env applies declaration order, so the last
  // assignment is what elements see — the include-then-override idiom.
  const auto deck = elaborate_deck_text(".param W=1u\n.param W=5u\nR1 a 0 {W*1e6}\n");
  EXPECT_DOUBLE_EQ(deck.nominal_env().at("W"), 5e-6);
}

TEST(Elaborator, QuotedAndBracedExpressionsEquivalent) {
  const auto braced = elaborate_deck_text(".param A=3\nR1 a 0 {A*2}\n");
  const auto quoted = elaborate_deck_text(".param A=3\nR1 a 0 'A*2'\n");
  EXPECT_DOUBLE_EQ(braced.elements[0].value.eval(braced.nominal_env()),
                   quoted.elements[0].value.eval(quoted.nominal_env()));
}

TEST(Elaborator, ContinuationLinesJoin) {
  const auto deck = elaborate_deck_text("V1 in 0 PULSE(0 1\n+ 1u 10n 10n\n+ 2u 10u)\nR1 in 0 1k\n");
  ASSERT_EQ(deck.elements.size(), 2u);
  EXPECT_EQ(deck.elements[0].source.wave, SourceSpec::Wave::Pulse);
  EXPECT_EQ(deck.elements[0].source.args.size(), 7u);
}

TEST(Elaborator, IncludeResolvesRelativeToIncludingFile) {
  TempDeckDir tmp;
  tmp.write("lib/models.lib", ".model nx NMOS VTO=0.42\n");
  const std::string top = tmp.write("top.cir",
                                    ".include lib/models.lib\n"
                                    "Vd d 0 1.8\n"
                                    "M1 d d 0 0 nx W=1u L=1u\n");
  const auto deck = elaborate_deck_file(top);
  ASSERT_EQ(deck.models.size(), 1u);
  EXPECT_EQ(deck.models[0].name, "NX");
  EXPECT_TRUE(deck.warnings.empty());
}

TEST(Elaborator, IncludeCycleIsError) {
  TempDeckDir tmp;
  const std::string a = tmp.write("a.cir", ".include b.cir\nR1 x 0 1k\n");
  tmp.write("b.cir", ".include a.cir\n");
  try {
    elaborate_deck_file(a);
    FAIL() << "expected ParseError";
  } catch (const spice::ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("circular"), std::string::npos) << e.what();
  }
}

TEST(Elaborator, ErrorsInsideIncludesCarryChainContext) {
  TempDeckDir tmp;
  tmp.write("broken.lib", "* comment\nM1 d g s b nosuchmodel W=1u L=1u garbage\n");
  const std::string top = tmp.write("top.cir", "R1 a 0 1k\n.include broken.lib\n");
  try {
    elaborate_deck_file(top);
    FAIL() << "expected ParseError";
  } catch (const spice::ParseError& e) {
    EXPECT_NE(e.file().find("broken.lib"), std::string::npos);
    ASSERT_EQ(e.include_chain().size(), 1u);
    EXPECT_NE(e.include_chain()[0].find("top.cir:2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("included from"), std::string::npos);
  }
}

TEST(Elaborator, SubcktFlattensWithPrefixedNames) {
  const auto deck = elaborate_deck_text(R"(
.subckt divider top bot
R1 top mid 1k
R2 mid bot 1k
.ends
X1 in out divider
X2 out 0 divider
)");
  ASSERT_EQ(deck.elements.size(), 4u);
  EXPECT_EQ(deck.elements[0].name, "X1.R1");
  EXPECT_EQ(deck.elements[1].name, "X1.R2");
  // Pin nodes map to the instance's connections; internals get a prefix.
  EXPECT_EQ(deck.elements[0].nodes[0], "in");
  EXPECT_EQ(deck.elements[0].nodes[1], "x1.mid");
  EXPECT_EQ(deck.elements[1].nodes[1], "out");
  EXPECT_EQ(deck.elements[3].nodes[1], "0");  // ground never gets prefixed
}

TEST(Elaborator, SubcktDefaultsAndInstanceOverrides) {
  const auto deck = elaborate_deck_text(R"(
.param SCALE=3
.subckt load a ratio=1
R1 a 0 {1k*ratio}
.ends
X1 n1 load
X2 n2 load ratio={SCALE*2}
)");
  const ParamEnv env = deck.nominal_env();
  ASSERT_EQ(deck.elements.size(), 2u);
  EXPECT_DOUBLE_EQ(deck.elements[0].value.eval(env), 1000.0);   // default ratio=1
  EXPECT_DOUBLE_EQ(deck.elements[1].value.eval(env), 6000.0);   // {SCALE*2} substituted
}

TEST(Elaborator, NestedSubcktsFlatten) {
  const auto deck = elaborate_deck_text(R"(
.subckt unit p
R1 p 0 1k
.ends
.subckt pair q
X1 q unit
X2 q unit
.ends
XTOP n pair
)");
  ASSERT_EQ(deck.elements.size(), 2u);
  EXPECT_EQ(deck.elements[0].name, "XTOP.X1.R1");
  EXPECT_EQ(deck.elements[1].name, "XTOP.X2.R1");
  EXPECT_EQ(deck.elements[0].nodes[0], "n");
}

TEST(Elaborator, AnalysisCardsParse) {
  const auto deck = elaborate_deck_text(R"(
R1 a 0 1k
.op
.ac dec 20 1 1g
.tran 1u 1m
.noise v(a) dec 8 10 1e8
)");
  ASSERT_NE(deck.analysis(AnalysisKind::Op), nullptr);
  const AnalysisCard* ac = deck.analysis(AnalysisKind::Ac);
  ASSERT_NE(ac, nullptr);
  EXPECT_EQ(ac->points_per_decade, 20);
  EXPECT_DOUBLE_EQ(ac->f_stop.eval({}), 1e9);
  const AnalysisCard* tr = deck.analysis(AnalysisKind::Tran);
  ASSERT_NE(tr, nullptr);
  EXPECT_DOUBLE_EQ(tr->dt.eval({}), 1e-6);
  const AnalysisCard* nz = deck.analysis(AnalysisKind::Noise);
  ASSERT_NE(nz, nullptr);
  EXPECT_EQ(nz->noise_pos, "a");
}

TEST(Elaborator, MeasureCardsMapKindsAndKv) {
  const auto deck = elaborate_deck_text(R"(
V1 in 0 DC 1 AC 1
R1 in out 1k
C1 out 0 1u
.op
.ac dec 10 1 1meg
.tran 1u 10m
.measure op vout v v(out)
.measure op pow supplypower V1
.measure ac gain dcgain v(out)
.measure ac m0 magat v(out) f=100
.measure tran rise risetime v(out) from=1m initial=0 final=1 default=1
)");
  ASSERT_EQ(deck.measures.size(), 5u);
  EXPECT_EQ(deck.measures[0].kind, MeasureKind::Voltage);
  EXPECT_EQ(deck.measures[0].name, "VOUT");
  EXPECT_EQ(deck.measures[1].kind, MeasureKind::SupplyPower);
  EXPECT_EQ(deck.measures[1].element, "V1");
  EXPECT_EQ(deck.measures[2].analysis, AnalysisKind::Ac);
  EXPECT_DOUBLE_EQ(deck.measures[3].kv.at("F").eval({}), 100.0);
  EXPECT_TRUE(deck.measures[4].has_default());
  EXPECT_FALSE(deck.measures[0].has_default());
}

TEST(Elaborator, MeasureAnalysisMismatchIsError) {
  // dcgain reads an AC sweep; declaring it under op is a deck bug.
  EXPECT_THROW(elaborate_deck_text("R1 a 0 1k\n.op\n.measure op g dcgain v(a)\n"),
               spice::ParseError);
}

TEST(Elaborator, UnknownCardsWarnAndEndTerminates) {
  const auto deck = elaborate_deck_text(R"(
R1 a 0 1k
.options reltol=1e-5
.end
R2 a 0 2k
)");
  ASSERT_EQ(deck.elements.size(), 1u);
  ASSERT_EQ(deck.warnings.size(), 1u);
  EXPECT_NE(deck.warnings[0].find(".options"), std::string::npos);
}

TEST(Elaborator, ContentHashIgnoresFormattingButNotValues) {
  const auto a = elaborate_deck_text(".param W=2u\nR1 a 0 {W*2}\n.op\n");
  const auto b = elaborate_deck_text("* comment\n.param  W=2u\n\nR1  a 0  { W * 2 }\n.op\n");
  const auto c = elaborate_deck_text(".param W=3u\nR1 a 0 {W*2}\n.op\n");
  EXPECT_EQ(a.content_hash(), b.content_hash());
  EXPECT_NE(a.content_hash(), c.content_hash());
}

}  // namespace
}  // namespace maopt::deck
