// End-to-end deck ingestion through the optimization daemon: submit-by-path,
// warm-rerun caching, cold/warm bit-identity, and robustness sweeps over a
// deck-compiled problem under injected faults.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <string>

#include "circuits/resilient_problem.hpp"
#include "circuits/robust_problem.hpp"
#include "deck/deck_problem.hpp"
#include "serve/daemon.hpp"

namespace maopt {
namespace {

namespace fs = std::filesystem;

const char* kCsDeck = R"(
.model n180 NMOS
.param WCS=20u
.param RLOAD=5k
VDD vdd 0 1.8
VIN in 0 DC 0.7 AC 1
RL vdd out {RLOAD}
M1 out in 0 0 n180 W={WCS} L=1u
CL out 0 200f
.op
.ac dec 10 1 1g
.measure op power supplypower VDD
.measure op vout v v(out)
.measure ac gain dcgain v(out)
.measure ac bw bw v(out) default=0
)";

const char* kCsSpec = R"(
name cs_daemon_test
param WCS   lower=2u  upper=100u
param RLOAD lower=500 upper=20k
minimize {POWER*1e3} name=power unit=mW
constraint GAIN >= 12   unit=dB
constraint BW   >= 1meg unit=Hz
constraint VOUT >= 0.5  unit=V
)";

/// Writes deck + sibling spec into a scratch dir; removed on destruction.
class DeckFixture {
 public:
  DeckFixture() {
    dir_ = fs::temp_directory_path() / fs::path("maopt_deck_daemon_" + std::to_string(::getpid()) +
                                               "_" + std::to_string(counter_++));
    fs::create_directories(dir_);
    deck_path_ = (dir_ / "cs_stage.cir").string();
    std::ofstream(deck_path_) << kCsDeck;
    std::ofstream((dir_ / "cs_stage.spec").string()) << kCsSpec;
  }
  ~DeckFixture() { fs::remove_all(dir_); }

  const std::string& deck_path() const { return deck_path_; }
  std::string work_dir() const { return (dir_ / "daemon").string(); }

 private:
  static int counter_;
  fs::path dir_;
  std::string deck_path_;
};

int DeckFixture::counter_ = 0;

serve::JobSpec deck_job(const DeckFixture& fx, const std::string& name, std::uint64_t seed) {
  serve::JobSpec spec;
  spec.name = name;
  spec.deck_path = fx.deck_path();
  spec.algorithm = "Random";  // cheap and deterministic for the same seed
  spec.seed = seed;
  spec.simulation_budget = 12;
  spec.initial_samples = 4;
  return spec;
}

TEST(DeckDaemon, SubmitByDeckPathCompilesAndRegisters) {
  DeckFixture fx;
  serve::DaemonConfig config;
  config.work_dir = fx.work_dir();
  config.num_threads = 2;
  serve::OptDaemon daemon(config);

  const std::uint64_t id = daemon.submit(deck_job(fx, "job1", 3));
  EXPECT_GT(id, 0u);
  const auto status = daemon.wait("job1");
  EXPECT_EQ(status.state, serve::JobState::Done);
  // The problem registered under the deck's file stem.
  EXPECT_EQ(status.spec.problem, "cs_stage");
  EXPECT_TRUE(std::isfinite(status.best_fom));
  // The service stack carries the deck's content fingerprint.
  EXPECT_NE(daemon.service("cs_stage").fingerprint(), 0u);
}

TEST(DeckDaemon, WarmRerunHitsCacheAndIsBitIdentical) {
  DeckFixture fx;
  serve::DaemonConfig config;
  config.work_dir = fx.work_dir();
  config.num_threads = 2;
  serve::OptDaemon daemon(config);

  daemon.submit(deck_job(fx, "cold", 42));
  const auto cold = daemon.wait("cold");
  ASSERT_EQ(cold.state, serve::JobState::Done);
  const auto counters_cold = daemon.service("cs_stage").counters();
  EXPECT_GT(counters_cold.misses, 0u);

  // Re-submitting the same deck reuses the registered problem (no duplicate
  // registration), and the same seed replays the same designs — every
  // simulation is served from the warm result cache.
  daemon.submit(deck_job(fx, "warm", 42));
  const auto warm = daemon.wait("warm");
  ASSERT_EQ(warm.state, serve::JobState::Done);
  const auto counters_warm = daemon.service("cs_stage").counters();
  EXPECT_EQ(counters_warm.misses, counters_cold.misses);  // no new simulations
  EXPECT_GT(counters_warm.hits, counters_cold.hits);
  EXPECT_EQ(warm.best_fom, cold.best_fom);  // bit-identical cold vs warm
}

TEST(DeckDaemon, AddDeckRejectsDuplicatesAndBadPaths) {
  DeckFixture fx;
  serve::DaemonConfig config;
  config.work_dir = fx.work_dir();
  config.num_threads = 1;
  serve::OptDaemon daemon(config);

  daemon.add_deck("stage", fx.deck_path());
  EXPECT_THROW(daemon.add_deck("stage", fx.deck_path()), std::invalid_argument);
  EXPECT_THROW(daemon.add_deck("missing", "/nonexistent/deck.cir"), std::exception);

  // Submitting against the pre-loaded name coalesces instead of recompiling.
  auto spec = deck_job(fx, "job", 1);
  spec.problem = "stage";
  daemon.submit(spec);
  EXPECT_EQ(daemon.wait("job").state, serve::JobState::Done);
}

TEST(DeckDaemon, YieldSweepUnderInjectedFaults) {
  // A deck-compiled problem behind seeded fault injection, swept by the
  // Monte Carlo yield engine: partial failures must degrade deterministically
  // instead of poisoning the aggregate.
  const deck::DeckProblem problem = deck::DeckProblem::from_text(kCsDeck, kCsSpec);

  ckt::FaultInjectionConfig faults;
  faults.throw_rate = 0.2;
  faults.nan_rate = 0.1;
  const ckt::FaultInjectingProblem faulty(problem, faults);

  ckt::YieldConfig config;
  config.mismatch.sigma_vth = 0.03;
  config.mismatch.instances = 12;
  config.policy.failure_policy = ckt::SweepFailurePolicy::PenalizeFailedVariant;
  const ckt::YieldProblem sweep(faulty, config);

  ckt::Vec x(2);
  x[0] = 30e-6;
  x[1] = 8e3;
  const auto first = sweep.evaluate(x);
  EXPECT_EQ(first.variants_total, 12u);
  for (const double m : first.metrics) EXPECT_TRUE(std::isfinite(m));
  // ~30% fault rate over 12 instances: failures are near-certain, and the
  // policy keeps the evaluation usable.
  EXPECT_GT(first.variants_failed, 0u);
  EXPECT_TRUE(first.simulation_ok);
  EXPECT_TRUE(first.degraded);

  // Determinism: the whole sweep (fault draws included) replays identically.
  const auto second = sweep.evaluate(x);
  EXPECT_EQ(second.variants_failed, first.variants_failed);
  for (std::size_t k = 0; k < first.metrics.size(); ++k)
    EXPECT_EQ(first.metrics[k], second.metrics[k]) << "metric " << k;

  // The sweep preserves the deck's content fingerprint for caching layers.
  EXPECT_EQ(sweep.content_fingerprint(), problem.content_fingerprint());
}

}  // namespace
}  // namespace maopt
