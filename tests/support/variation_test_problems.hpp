// Shared analytic test problems for the variation-sweep / robustness tests:
// closed-form metrics that respond deterministically to ProcessVariation, so
// sweep aggregates can be checked against hand-computed values without SPICE.
#pragma once

#include <set>
#include <utility>

#include "circuits/sizing_problem.hpp"
#include "common/rng.hpp"

namespace maopt::ckt::testing {

/// 2-D analytic problem whose metrics read the variation fields directly:
///   f0 (minimize)           = x0 + x1 + nmos_vth_shift + sigma_vth * u(seed)
///   ge (>= 0.5)             = 1.0 + pmos_vth_shift
///   le (<= 2.0)             = nmos_kp_factor
/// u(seed) is a deterministic draw in [-1, 1), so Monte Carlo variants with
/// distinct seeds produce distinct-but-reproducible metric spreads.
class VariedAnalytic final : public SizingProblem {
 public:
  VariedAnalytic() : lower_(2, 0.0), upper_(2, 1.0), integer_(2, false) {
    spec_.name = "varied-analytic";
    spec_.target_name = "f0";
    spec_.constraints = {
        ConstraintSpec{"ge_metric", "", ConstraintKind::GreaterEqual, 0.5, 1.0},
        ConstraintSpec{"le_metric", "", ConstraintKind::LessEqual, 2.0, 1.0},
    };
  }

  const ProblemSpec& spec() const override { return spec_; }
  std::size_t dim() const override { return 2; }
  const Vec& lower_bounds() const override { return lower_; }
  const Vec& upper_bounds() const override { return upper_; }
  const std::vector<bool>& integer_mask() const override { return integer_; }
  std::vector<std::string> parameter_names() const override { return {"x0", "x1"}; }

  EvalResult evaluate(const Vec& x) const override { return evaluate_at(x, ProcessVariation{}); }

  EvalResult evaluate_at(const Vec& x, const ProcessVariation& pv) const override {
    validate_process_variation(pv);
    EvalResult r;
    r.metrics = {x[0] + x[1] + pv.nmos_vth_shift + pv.sigma_vth * unit_draw(pv.seed),
                 1.0 + pv.pmos_vth_shift, pv.nmos_kp_factor};
    return r;
  }

  bool supports_process_variation() const override { return true; }

  /// The deterministic Monte Carlo draw used for f0, exposed so tests can
  /// recompute expected per-instance metrics.
  static double unit_draw(std::uint64_t seed) {
    Rng rng(seed + 1);
    return 2.0 * rng.uniform() - 1.0;
  }

 private:
  ProblemSpec spec_;
  Vec lower_, upper_;
  std::vector<bool> integer_;
};

/// Decorator that fails (simulation_ok = false) exactly the variants whose
/// pv.seed is in the fail set — precise, deterministic control over which
/// sweep variants go down, unlike rate-based fault injection.
class SeedFailInjector final : public SizingProblem {
 public:
  SeedFailInjector(const SizingProblem& inner, std::set<std::uint64_t> fail_seeds)
      : inner_(&inner), fail_seeds_(std::move(fail_seeds)) {}

  const ProblemSpec& spec() const override { return inner_->spec(); }
  std::size_t dim() const override { return inner_->dim(); }
  const Vec& lower_bounds() const override { return inner_->lower_bounds(); }
  const Vec& upper_bounds() const override { return inner_->upper_bounds(); }
  const std::vector<bool>& integer_mask() const override { return inner_->integer_mask(); }
  std::vector<std::string> parameter_names() const override { return inner_->parameter_names(); }
  Vec failure_metrics() const override { return inner_->failure_metrics(); }
  bool supports_process_variation() const override { return inner_->supports_process_variation(); }

  EvalResult evaluate(const Vec& x) const override { return evaluate_at(x, ProcessVariation{}); }

  EvalResult evaluate_at(const Vec& x, const ProcessVariation& pv) const override {
    EvalResult r = inner_->evaluate_at(x, pv);
    if (fail_seeds_.count(pv.seed) != 0) {
      r.metrics = inner_->failure_metrics();
      r.simulation_ok = false;
    }
    return r;
  }

  void set_fail_seeds(std::set<std::uint64_t> fail_seeds) { fail_seeds_ = std::move(fail_seeds); }

 private:
  const SizingProblem* inner_;
  std::set<std::uint64_t> fail_seeds_;
};

}  // namespace maopt::ckt::testing
