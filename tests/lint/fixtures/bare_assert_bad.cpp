// maopt-lint-fixture-path: src/core/fixture.cpp
// BAD: bare assert() in src/ — the contract evaporates under NDEBUG.
#include <cassert>

namespace maopt::core {

int clamp_index(int i, int n) {
  assert(i >= 0 && i < n);  // flagged: use MAOPT_CHECK / MAOPT_DCHECK
  return i;
}

}  // namespace maopt::core
