// maopt-lint-fixture-path: src/eval/fixture.cpp
// GOOD: locking via the annotated maopt wrappers.
#include "common/thread_annotations.hpp"

namespace maopt::eval {

class Queue {
 public:
  void notify() {
    {
      const MutexLock lock(mutex_);
      ready_ = true;
    }
    cv_.notify_one();
  }

 private:
  Mutex mutex_;
  CondVar cv_;
  bool ready_ MAOPT_GUARDED_BY(mutex_) = false;
};

}  // namespace maopt::eval
