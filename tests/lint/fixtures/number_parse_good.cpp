// maopt-lint-fixture-path: src/serve/number_parse_good.cpp
// Clean: user-facing numbers go through the SPICE value parser, and the one
// genuine C-locale conversion carries a justified suppression.
#include <cstdlib>
#include <string>

namespace maopt::spice {
double parse_spice_value(const std::string& token);
}

double good_spice(const std::string& s) { return maopt::spice::parse_spice_value(s); }

double good_checkpoint_float(const char* s) {
  // Checkpoint payloads are plain C doubles, never suffixed.
  return std::strtod(s, nullptr);  // maopt-lint: allow(number-parse)
}

// Mentions in comments or strings never count: std::stod("1k").
const char* kDoc = "use parse_spice_value, not atof(";
