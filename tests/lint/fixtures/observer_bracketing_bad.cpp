// maopt-lint-fixture-path: src/core/fixture.cpp
// BAD: a do_run implementation emitting its own run bracket, plus a raw
// SpanCollector::add instead of the RAII ScopedSpan.
#include "obs/observer.hpp"

namespace maopt::core {

void run_search(obs::RunObserver& observer, obs::SpanCollector& spans) {
  obs::RunStarted started;  // flagged: brackets belong to Optimizer::run
  observer.on_run_started(started);
  spans.add(obs::Phase::Simulation, 0.0, 1.0);  // flagged: use ScopedSpan
}

}  // namespace maopt::core
