// maopt-lint-fixture-path: src/core/fixture.cpp
// GOOD: a do_run implementation emits interior events only and records
// spans through the RAII helper.
#include "obs/observer.hpp"

namespace maopt::core {

void run_search(obs::RunObserver& observer, obs::SpanCollector& spans) {
  {
    const obs::ScopedSpan span(spans, obs::Phase::Simulation);
    obs::SimulationCompleted done;
    observer.on_simulation_completed(done);
  }
}

}  // namespace maopt::core
