// maopt-lint-fixture-path: src/eval/fixture.cpp
// BAD: raw std:: locking in src/ — invisible to -Wthread-safety.
#include <condition_variable>
#include <mutex>

namespace maopt::eval {

class Queue {
 public:
  void notify() {
    const std::lock_guard<std::mutex> lock(mutex_);  // flagged twice
    ready_ = true;
    cv_.notify_one();
  }

 private:
  std::mutex mutex_;             // flagged
  std::condition_variable cv_;   // flagged
  bool ready_ = false;
};

}  // namespace maopt::eval
