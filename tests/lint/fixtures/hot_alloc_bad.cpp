// maopt-lint-fixture-path: src/linalg/fixture.cpp
// BAD: heap allocation inside a MAOPT_HOT function body.
#include <memory>
#include <vector>

#include "common/thread_annotations.hpp"

namespace maopt::linalg {

MAOPT_HOT void accumulate(std::vector<double>& out, const double* src, int n) {
  out.reserve(static_cast<std::size_t>(n));  // flagged: growing-container call
  for (int i = 0; i < n; ++i) out.push_back(src[i]);  // flagged
  auto scratch = std::make_unique<double[]>(16);      // flagged
  (void)scratch;
}

}  // namespace maopt::linalg
