// maopt-lint-fixture-path: src/core/fixture.cpp
// GOOD: decisions derive from seeded common/rng.hpp streams; identifiers that
// merely contain forbidden substrings (operand, strand) are not matches.
#include <cstdint>

#include "common/rng.hpp"

namespace maopt::core {

double jitter(std::uint64_t seed, std::uint64_t design_hash) {
  Rng rng(derive_seed(seed, design_hash));
  return rng.normal();
}

int operand_count(int strands) { return strands + 1; }  // no rand() match

}  // namespace maopt::core
