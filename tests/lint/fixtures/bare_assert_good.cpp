// maopt-lint-fixture-path: src/core/fixture.cpp
// GOOD: contracts via MAOPT_CHECK/MAOPT_DCHECK; static_assert is fine; the
// word assert in comments/strings must not trip the masked scanner.
#include "common/check.hpp"

namespace maopt::core {

static_assert(sizeof(int) >= 4, "ILP32 or wider");

int clamp_index(int i, int n) {
  MAOPT_CHECK(n > 0, "clamp_index: empty range");
  MAOPT_DCHECK(i >= 0 && i < n, "clamp_index: out of range");
  const char* doc = "call assert(x) to taste";  // masked: not a finding
  (void)doc;
  return i;
}

}  // namespace maopt::core
