// maopt-lint-fixture-path: src/core/fixture.cpp
// BAD: entropy and wall-clock sources inside the deterministic core.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace maopt::core {

unsigned fresh_seed() {
  std::random_device rd;  // flagged
  return rd();
}

double jitter() {
  std::srand(static_cast<unsigned>(time(nullptr)));  // flagged twice
  return rand() / 100.0;                             // flagged
}

long long stamp() {
  return std::chrono::steady_clock::now().time_since_epoch().count();  // flagged
}

}  // namespace maopt::core
