// maopt-lint-fixture-path: src/serve/number_parse_bad.cpp
// Hand-rolled string->double conversions outside the blessed parsing sites:
// every one of these silently mis-reads SPICE-suffixed input.
#include <cstdio>
#include <cstdlib>
#include <string>

double bad_stod(const std::string& s) { return std::stod(s); }

double bad_strtod(const char* s) { return std::strtod(s, nullptr); }

double bad_atof(const char* s) { return atof(s); }

double bad_sscanf(const char* s) {
  double v = 0.0;
  sscanf(s, "%lf", &v);
  return v;
}
