// maopt-lint-fixture-path: src/linalg/fixture.cpp
// GOOD: hot body touches only caller-sized workspaces; allocation outside the
// MAOPT_HOT function is fine; a justified cold-start line uses the
// suppression comment; "new" inside a comment/string is masked.
#include <vector>

#include "common/thread_annotations.hpp"

namespace maopt::linalg {

MAOPT_HOT void accumulate(std::vector<double>& out, const double* src, int n) {
  if (out.size() != static_cast<std::size_t>(n))
    out.assign(static_cast<std::size_t>(n), 0.0);  // maopt-lint: allow(hot-alloc) cold-start sizing
  for (int i = 0; i < n; ++i) out[static_cast<std::size_t>(i)] += src[i];
  // a new value lands in out[i] each pass — masked, not a finding
}

void cold_setup(std::vector<double>& out, int n) {
  out.resize(static_cast<std::size_t>(n));  // not hot: allocation allowed
}

}  // namespace maopt::linalg
