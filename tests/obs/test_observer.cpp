// Unit tests of the telemetry primitives: RunTelemetry null-safety,
// SpanCollector / ScopedSpan, and MulticastObserver fan-out.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/observer.hpp"

namespace maopt::obs {
namespace {

struct CountingObserver final : RunObserver {
  int started = 0, sims = 0, iterations = 0, checkpoints = 0, finished = 0;
  void on_run_started(const RunStarted&) override { ++started; }
  void on_simulation_completed(const SimulationCompleted&) override { ++sims; }
  void on_iteration_completed(const IterationCompleted&) override { ++iterations; }
  void on_checkpoint_written(const CheckpointWritten&) override { ++checkpoints; }
  void on_run_finished(const RunFinished&) override { ++finished; }
};

TEST(RunTelemetry, NullObserverDisablesEmission) {
  RunTelemetry telemetry(nullptr);
  EXPECT_FALSE(telemetry.enabled());
  // Emitting into a null telemetry must be a harmless no-op.
  telemetry.emit(RunStarted{});
  telemetry.emit(SimulationCompleted{});
  telemetry.emit(IterationCompleted{});
  telemetry.emit(CheckpointWritten{});
  telemetry.emit(RunFinished{});
  telemetry.counters().simulations = 3;
  EXPECT_EQ(telemetry.counters().simulations, 3u);
}

TEST(RunTelemetry, ForwardsEveryEventKind) {
  CountingObserver sink;
  RunTelemetry telemetry(&sink);
  EXPECT_TRUE(telemetry.enabled());
  telemetry.emit(RunStarted{});
  telemetry.emit(SimulationCompleted{});
  telemetry.emit(SimulationCompleted{});
  telemetry.emit(IterationCompleted{});
  telemetry.emit(CheckpointWritten{});
  telemetry.emit(RunFinished{});
  EXPECT_EQ(sink.started, 1);
  EXPECT_EQ(sink.sims, 2);
  EXPECT_EQ(sink.iterations, 1);
  EXPECT_EQ(sink.checkpoints, 1);
  EXPECT_EQ(sink.finished, 1);
}

TEST(MulticastObserver, FansOutToEverySink) {
  CountingObserver a, b;
  MulticastObserver multicast;
  multicast.add(&a);
  multicast.add(&b);
  RunTelemetry telemetry(&multicast);
  telemetry.emit(RunStarted{});
  telemetry.emit(SimulationCompleted{});
  telemetry.emit(IterationCompleted{});
  telemetry.emit(CheckpointWritten{});
  telemetry.emit(RunFinished{});
  for (const CountingObserver* sink : {&a, &b}) {
    EXPECT_EQ(sink->started, 1);
    EXPECT_EQ(sink->sims, 1);
    EXPECT_EQ(sink->iterations, 1);
    EXPECT_EQ(sink->checkpoints, 1);
    EXPECT_EQ(sink->finished, 1);
  }
}

TEST(SpanCollector, DisabledCollectorDropsSpans) {
  SpanCollector spans(false);
  spans.add(Phase::Simulate, -1, 1.0);
  { const ScopedSpan span(spans, Phase::CriticTrain); }
  EXPECT_TRUE(spans.take().empty());
}

TEST(SpanCollector, CollectsFromConcurrentLanes) {
  SpanCollector spans(true);
  std::vector<std::thread> workers;
  workers.reserve(4);
  for (int lane = 0; lane < 4; ++lane)
    workers.emplace_back([&spans, lane] {
      spans.add(Phase::ActorTrain, lane, 0.25);
      spans.add(Phase::Simulate, lane, 0.5);
    });
  for (auto& w : workers) w.join();
  const auto collected = spans.take();
  EXPECT_EQ(collected.size(), 8u);
  double actor = 0.0, sim = 0.0;
  for (const PhaseSpan& s : collected) {
    if (s.phase == Phase::ActorTrain) actor += s.seconds;
    if (s.phase == Phase::Simulate) sim += s.seconds;
  }
  EXPECT_DOUBLE_EQ(actor, 1.0);
  EXPECT_DOUBLE_EQ(sim, 2.0);
  EXPECT_TRUE(spans.take().empty());  // take() drains
}

TEST(ScopedSpan, RecordsNonNegativeDurationOnce) {
  SpanCollector spans(true);
  {
    ScopedSpan span(spans, Phase::EliteUpdate, 2);
    span.stop();
    span.stop();  // idempotent: the second stop must not add a span
  }
  const auto collected = spans.take();
  ASSERT_EQ(collected.size(), 1u);
  EXPECT_EQ(collected[0].phase, Phase::EliteUpdate);
  EXPECT_EQ(collected[0].lane, 2);
  EXPECT_GE(collected[0].seconds, 0.0);
}

TEST(Phase, NamesAreStable) {
  EXPECT_STREQ(to_string(Phase::CriticTrain), "critic-train");
  EXPECT_STREQ(to_string(Phase::ActorTrain), "actor-train");
  EXPECT_STREQ(to_string(Phase::Simulate), "simulate");
  EXPECT_STREQ(to_string(Phase::NearSample), "near-sample");
  EXPECT_STREQ(to_string(Phase::EliteUpdate), "elite-update");
}

}  // namespace
}  // namespace maopt::obs
