// Integration tests of the unified Optimizer::run(RunOptions) API: every
// optimizer emits the same event protocol, the null observer changes
// nothing about a run, and the phase spans account for iteration time.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>

#include "circuits/analytic_problems.hpp"
#include "core/de.hpp"
#include "core/history_io.hpp"
#include "core/ma_optimizer.hpp"
#include "core/pso.hpp"
#include "core/random_search.hpp"
#include "gp/bo_optimizer.hpp"
#include "obs/run_report.hpp"

namespace maopt::core {
namespace {

MaOptConfig fast_ma(MaOptConfig base) {
  base.critic.hidden = {16, 16};
  base.critic.steps_per_round = 5;
  base.actor.hidden = {12, 12};
  base.actor.steps_per_round = 5;
  base.near_sampling.num_samples = 50;
  return base;
}

struct CountingObserver final : obs::RunObserver {
  int started = 0, finished = 0, checkpoints = 0;
  std::uint64_t sims = 0;
  std::vector<obs::IterationCompleted> iterations;
  obs::RunStarted first;
  obs::RunFinished last;
  void on_run_started(const obs::RunStarted& event) override {
    ++started;
    first = event;
  }
  void on_simulation_completed(const obs::SimulationCompleted&) override { ++sims; }
  void on_iteration_completed(const obs::IterationCompleted& event) override {
    iterations.push_back(event);
  }
  void on_checkpoint_written(const obs::CheckpointWritten&) override { ++checkpoints; }
  void on_run_finished(const obs::RunFinished& event) override {
    ++finished;
    last = event;
  }
};

struct RunApiFixture : ::testing::Test {
  RunApiFixture() : problem(4) {
    Rng rng(1);
    initial = sample_initial_set(problem, 20, rng);
    std::vector<linalg::Vec> rows;
    for (const auto& r : initial) rows.push_back(r.metrics);
    fom = std::make_unique<ckt::FomEvaluator>(ckt::FomEvaluator::fit_reference(problem, rows));
  }

  std::vector<std::unique_ptr<Optimizer>> full_roster() const {
    std::vector<std::unique_ptr<Optimizer>> roster;
    roster.push_back(std::make_unique<RandomSearch>());
    roster.push_back(std::make_unique<PsoOptimizer>());
    roster.push_back(std::make_unique<DeOptimizer>());
    roster.push_back(std::make_unique<gp::BoOptimizer>());
    roster.push_back(std::make_unique<MaOptimizer>(fast_ma(MaOptConfig::ma_opt())));
    return roster;
  }

  ckt::ConstrainedQuadratic problem;
  std::vector<SimRecord> initial;
  std::unique_ptr<ckt::FomEvaluator> fom;
};

TEST_F(RunApiFixture, EveryOptimizerEmitsTheFullEventProtocol) {
  constexpr std::size_t kBudget = 12;
  for (const auto& opt : full_roster()) {
    CountingObserver sink;
    RunOptions options;
    options.seed = 3;
    options.simulation_budget = kBudget;
    options.observer = &sink;
    const RunHistory h = opt->run(problem, initial, *fom, options);

    EXPECT_EQ(sink.started, 1) << opt->name();
    EXPECT_EQ(sink.finished, 1) << opt->name();
    // One SimulationCompleted per budgeted simulation, no more, no less.
    EXPECT_EQ(sink.sims, kBudget) << opt->name();
    EXPECT_EQ(h.simulations_used(), kBudget) << opt->name();
    EXPECT_FALSE(sink.iterations.empty()) << opt->name();

    EXPECT_EQ(sink.first.algorithm, opt->name());
    EXPECT_EQ(sink.first.problem, problem.spec().name);
    EXPECT_EQ(sink.first.seed, 3u);
    EXPECT_EQ(sink.first.simulation_budget, kBudget);
    EXPECT_EQ(sink.first.num_initial, initial.size());
    EXPECT_EQ(sink.first.dim, problem.dim());

    EXPECT_EQ(sink.last.algorithm, opt->name());
    EXPECT_EQ(sink.last.simulations, kBudget);
    EXPECT_DOUBLE_EQ(sink.last.best_fom, h.best_fom_after.back());
    EXPECT_EQ(sink.last.counters.simulations, kBudget);
    EXPECT_EQ(sink.last.counters.iterations, sink.iterations.size());

    // The last iteration event saw the whole budget spent, and per-event
    // invariants hold along the way.
    EXPECT_EQ(sink.iterations.back().simulations_done, kBudget);
    std::uint64_t prev_iter = 0;
    for (const auto& it : sink.iterations) {
      EXPECT_GT(it.iteration, prev_iter) << opt->name();
      prev_iter = it.iteration;
      EXPECT_GE(it.wall_seconds, 0.0);
    }
  }
}

TEST_F(RunApiFixture, NullObserverLeavesTrajectoriesBitIdentical) {
  for (const auto& plain : full_roster()) {
    RunOptions options;
    options.seed = 11;
    options.simulation_budget = 10;
    const RunHistory base = plain->run(problem, initial, *fom, options);

    CountingObserver sink;
    RunOptions observed = options;
    observed.observer = &sink;
    const RunHistory with_obs = plain->run(problem, initial, *fom, observed);

    // Legacy 5-argument entry point must hit the identical path. It is
    // deprecated (PR 9) but stays for one release; this is its last caller.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
    const RunHistory legacy = plain->run(problem, initial, *fom, 11, 10);
#pragma GCC diagnostic pop

    ASSERT_EQ(base.records.size(), with_obs.records.size()) << plain->name();
    ASSERT_EQ(base.records.size(), legacy.records.size()) << plain->name();
    for (std::size_t i = 0; i < base.records.size(); ++i) {
      EXPECT_EQ(base.records[i].x, with_obs.records[i].x) << plain->name();
      EXPECT_EQ(base.records[i].x, legacy.records[i].x) << plain->name();
      EXPECT_DOUBLE_EQ(base.records[i].fom, with_obs.records[i].fom) << plain->name();
    }
    EXPECT_EQ(base.best_fom_after, with_obs.best_fom_after) << plain->name();
    EXPECT_EQ(base.best_fom_after, legacy.best_fom_after) << plain->name();
  }
}

// Decorator whose evaluation takes a known minimum time, so the Simulate
// spans have a lower bound the test can assert against.
class SleepyProblem final : public ckt::SizingProblem {
 public:
  explicit SleepyProblem(const ckt::SizingProblem& inner) : inner_(&inner) {}
  const ckt::ProblemSpec& spec() const override { return inner_->spec(); }
  std::size_t dim() const override { return inner_->dim(); }
  const Vec& lower_bounds() const override { return inner_->lower_bounds(); }
  const Vec& upper_bounds() const override { return inner_->upper_bounds(); }
  const std::vector<bool>& integer_mask() const override { return inner_->integer_mask(); }
  std::vector<std::string> parameter_names() const override { return inner_->parameter_names(); }
  Vec failure_metrics() const override { return inner_->failure_metrics(); }
  ckt::EvalResult evaluate(const Vec& x) const override {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    return inner_->evaluate(x);
  }

 private:
  const ckt::SizingProblem* inner_;
};

TEST_F(RunApiFixture, PhaseSpansAccountForIterationTime) {
  SleepyProblem sleepy(problem);
  Rng rng(1);
  auto init = sample_initial_set(sleepy, 15, rng);
  std::vector<linalg::Vec> rows;
  for (const auto& r : init) rows.push_back(r.metrics);
  const auto f = ckt::FomEvaluator::fit_reference(sleepy, rows);

  // Single actor on a single thread: every span runs sequentially on the
  // driving thread, so per iteration the spans must (a) sum to no more than
  // the iteration wall clock (plus loop bookkeeping slack) and (b) cover the
  // sleep floor of its simulations.
  MaOptConfig config = fast_ma(MaOptConfig::dnn_opt());
  config.num_threads = 1;
  MaOptimizer opt(config);
  CountingObserver sink;
  RunOptions options;
  options.seed = 5;
  options.simulation_budget = 10;
  options.observer = &sink;
  opt.run(sleepy, init, f, options);

  ASSERT_FALSE(sink.iterations.empty());
  for (const auto& it : sink.iterations) {
    ASSERT_FALSE(it.spans.empty());
    double span_sum = 0.0;
    double sim_sum = 0.0;
    for (const auto& s : it.spans) {
      EXPECT_GE(s.seconds, 0.0);
      span_sum += s.seconds;
      if (s.phase == obs::Phase::Simulate) sim_sum += s.seconds;
    }
    // Tolerances are loose (2ms absolute + 50% relative) to stay robust on
    // loaded CI machines; the invariant being guarded is "spans measure this
    // iteration", not clock precision.
    EXPECT_LE(span_sum, it.wall_seconds * 1.5 + 0.002);
    EXPECT_GE(sim_sum, 0.002 * 0.5);
    EXPECT_GE(it.wall_seconds, sim_sum * 0.5);
  }
}

TEST_F(RunApiFixture, CheckpointEventsCarryBytesAndCounters) {
  const std::string path = "/tmp/maopt_obs_ckpt_test.bin";
  MaOptConfig config = fast_ma(MaOptConfig::ma_opt2());
  config.checkpoint_path = path;
  config.checkpoint_every = 2;
  MaOptimizer opt(config);
  CountingObserver sink;
  RunOptions options;
  options.seed = 9;
  options.simulation_budget = 12;
  options.observer = &sink;
  opt.run(problem, initial, *fom, options);

  EXPECT_GT(sink.checkpoints, 0);
  EXPECT_EQ(sink.last.counters.checkpoints, static_cast<std::uint64_t>(sink.checkpoints));
  EXPECT_GT(sink.last.counters.checkpoint_bytes, 0u);
  // The bytes counter matches what actually landed on disk (last snapshot).
  const RunCheckpoint ckpt = load_checkpoint(path);
  EXPECT_EQ(ckpt.seed, 9u);
  std::remove(path.c_str());
}

TEST_F(RunApiFixture, ResumeEmitsRunBracketing) {
  const std::string path = "/tmp/maopt_obs_resume_test.bin";
  MaOptConfig config = fast_ma(MaOptConfig::ma_opt2());
  config.checkpoint_path = path;
  config.checkpoint_every = 2;
  MaOptimizer opt(config);
  opt.run(problem, initial, *fom, {.seed = 13, .simulation_budget = 8});
  const RunCheckpoint ckpt = load_checkpoint(path);

  MaOptConfig config2 = fast_ma(MaOptConfig::ma_opt2());
  MaOptimizer resumed(config2);
  CountingObserver sink;
  RunOptions options;
  options.simulation_budget = 14;
  options.observer = &sink;
  const RunHistory h = resumed.resume(problem, ckpt, *fom, options);
  EXPECT_EQ(h.simulations_used(), 14u);
  EXPECT_EQ(sink.started, 1);
  EXPECT_EQ(sink.finished, 1);
  // The checkpoint's seed wins over options.seed (which stayed 0).
  EXPECT_EQ(sink.first.seed, 13u);
  EXPECT_EQ(sink.last.simulations, 14u);
  std::remove(path.c_str());
}

TEST_F(RunApiFixture, RunReportAggregatesARoster) {
  obs::RunReport report;
  RunOptions options;
  options.seed = 2;
  options.simulation_budget = 8;
  options.observer = &report;
  for (const auto& opt : full_roster()) opt->run(problem, initial, *fom, options);

  ASSERT_EQ(report.rows().size(), 5u);
  for (const auto& row : report.rows()) {
    EXPECT_TRUE(row.finished);
    EXPECT_EQ(row.budget, 8u);
    EXPECT_EQ(row.simulations, 8u);
    EXPECT_GT(row.iterations, 0u);
    EXPECT_GE(row.wall_seconds, 0.0);
  }
  EXPECT_EQ(report.rows()[0].algorithm, "Random");
  EXPECT_EQ(report.rows()[4].algorithm, "MA-Opt");
  // MA-Opt actually trains: its critic/actor phases must show up.
  EXPECT_GT(report.rows()[4].phase(obs::Phase::CriticTrain), 0.0);
  EXPECT_GT(report.rows()[4].phase(obs::Phase::ActorTrain), 0.0);
  const std::string table = report.table();
  EXPECT_NE(table.find("MA-Opt"), std::string::npos);
  EXPECT_NE(table.find("Random"), std::string::npos);
}

}  // namespace
}  // namespace maopt::core
