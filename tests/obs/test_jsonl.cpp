// JsonlObserver tests: escaping, line schema, and — the property the sink
// exists for — every line stays parseable when the run itself is stormy
// (fault-injected simulator behind the resilient evaluator).
#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "../support/variation_test_problems.hpp"
#include "circuits/analytic_problems.hpp"
#include "circuits/resilient_problem.hpp"
#include "circuits/robust_problem.hpp"
#include "core/ma_optimizer.hpp"
#include "core/random_search.hpp"
#include "obs/jsonl_writer.hpp"

namespace maopt::obs {
namespace {

// --- Minimal JSON validator -------------------------------------------------
// Recursive-descent check over the subset the writer emits (objects, arrays,
// strings, numbers, true/false/null). No value extraction beyond top-level
// string fields; the point is "a standard parser would accept this line".

struct JsonCursor {
  const std::string& s;
  std::size_t i = 0;

  void skip_ws() {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
  }
  bool eat(char c) {
    skip_ws();
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    return false;
  }
  bool parse_string(std::string* out) {
    skip_ws();
    if (i >= s.size() || s[i] != '"') return false;
    ++i;
    std::string value;
    while (i < s.size() && s[i] != '"') {
      if (static_cast<unsigned char>(s[i]) < 0x20) return false;  // raw control char
      if (s[i] == '\\') {
        if (i + 1 >= s.size()) return false;
        const char esc = s[i + 1];
        if (esc == 'u') {
          if (i + 5 >= s.size()) return false;
          for (std::size_t k = i + 2; k < i + 6; ++k)
            if (std::isxdigit(static_cast<unsigned char>(s[k])) == 0) return false;
          i += 6;
          value.push_back('?');
          continue;
        }
        if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' && esc != 'f' && esc != 'n' &&
            esc != 'r' && esc != 't')
          return false;
        value.push_back(esc);
        i += 2;
        continue;
      }
      value.push_back(s[i]);
      ++i;
    }
    if (i >= s.size()) return false;
    ++i;  // closing quote
    if (out != nullptr) *out = value;
    return true;
  }
  bool parse_number() {
    skip_ws();
    const std::size_t start = i;
    if (i < s.size() && s[i] == '-') ++i;
    std::size_t digits = 0;
    while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i])) != 0) ++i, ++digits;
    if (digits == 0) return false;
    if (i < s.size() && s[i] == '.') {
      ++i;
      digits = 0;
      while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i])) != 0) ++i, ++digits;
      if (digits == 0) return false;
    }
    if (i < s.size() && (s[i] == 'e' || s[i] == 'E')) {
      ++i;
      if (i < s.size() && (s[i] == '+' || s[i] == '-')) ++i;
      digits = 0;
      while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i])) != 0) ++i, ++digits;
      if (digits == 0) return false;
    }
    return i > start;
  }
  bool parse_literal(const char* lit) {
    skip_ws();
    const std::size_t n = std::string(lit).size();
    if (s.compare(i, n, lit) != 0) return false;
    i += n;
    return true;
  }
  bool parse_value() {
    skip_ws();
    if (i >= s.size()) return false;
    switch (s[i]) {
      case '{': return parse_object(nullptr);
      case '[': return parse_array();
      case '"': return parse_string(nullptr);
      case 't': return parse_literal("true");
      case 'f': return parse_literal("false");
      case 'n': return parse_literal("null");
      default: return parse_number();
    }
  }
  bool parse_array() {
    if (!eat('[')) return false;
    if (eat(']')) return true;
    while (true) {
      if (!parse_value()) return false;
      if (eat(']')) return true;
      if (!eat(',')) return false;
    }
  }
  /// Parses an object; records top-level string fields into `fields` when the
  /// caller asks for them (nested objects/arrays are validated, not recorded).
  bool parse_object(std::map<std::string, std::string>* fields) {
    if (!eat('{')) return false;
    if (eat('}')) return true;
    while (true) {
      std::string key;
      if (!parse_string(&key)) return false;
      if (!eat(':')) return false;
      skip_ws();
      if (fields != nullptr && i < s.size() && s[i] == '"') {
        std::string value;
        if (!parse_string(&value)) return false;
        (*fields)[key] = value;
      } else {
        if (!parse_value()) return false;
        if (fields != nullptr) (*fields)[key] = "";
      }
      if (eat('}')) return true;
      if (!eat(',')) return false;
    }
  }
};

/// Validates one JSONL line; returns true and fills `fields` with the
/// top-level keys (string values kept, others mapped to "") on success.
bool parse_line(const std::string& line, std::map<std::string, std::string>* fields) {
  JsonCursor cursor{line};
  if (!cursor.parse_object(fields)) return false;
  cursor.skip_ws();
  return cursor.i == line.size();
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line))
    if (!line.empty()) lines.push_back(line);
  return lines;
}

TEST(JsonEscape, EscapesQuotesBackslashesAndControlChars) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc\r"), "a\\nb\\tc\\r");
  EXPECT_EQ(json_escape(std::string("a\x01z")), "a\\u0001z");
}

TEST(JsonEscape, EscapedStringsRoundTripThroughTheValidator) {
  const std::string nasty = "he said \"x\\y\"\n\tdone\x02";
  const std::string line = "{\"v\":\"" + json_escape(nasty) + "\"}";
  std::map<std::string, std::string> fields;
  EXPECT_TRUE(parse_line(line, &fields));
  EXPECT_EQ(fields.count("v"), 1u);
}

struct JsonlFixture : ::testing::Test {
  JsonlFixture() : problem(4) {
    Rng rng(1);
    initial = core::sample_initial_set(problem, 20, rng);
    std::vector<linalg::Vec> rows;
    for (const auto& r : initial) rows.push_back(r.metrics);
    fom = std::make_unique<ckt::FomEvaluator>(ckt::FomEvaluator::fit_reference(problem, rows));
  }

  std::string temp_path(const char* name) const { return ::testing::TempDir() + name; }

  ckt::ConstrainedQuadratic problem;
  std::vector<core::SimRecord> initial;
  std::unique_ptr<ckt::FomEvaluator> fom;
};

TEST_F(JsonlFixture, CleanRunWritesTheDocumentedSchema) {
  const std::string path = temp_path("maopt_jsonl_clean.jsonl");
  std::remove(path.c_str());
  {
    JsonlObserver sink(path);
    core::RandomSearch opt;
    core::RunOptions options;
    options.seed = 7;
    options.simulation_budget = 6;
    options.observer = &sink;
    opt.run(problem, initial, *fom, options);
  }

  const auto lines = read_lines(path);
  // run_started + 6 x (simulation_completed + iteration_completed) + run_finished.
  ASSERT_EQ(lines.size(), 1u + 6u * 2u + 1u);
  std::map<std::string, int> event_counts;
  for (const auto& line : lines) {
    std::map<std::string, std::string> fields;
    ASSERT_TRUE(parse_line(line, &fields)) << line;
    ASSERT_EQ(fields.count("event"), 1u) << line;
    EXPECT_EQ(fields.count("t"), 1u) << line;  // every event is timestamped
    ++event_counts[fields["event"]];
  }
  EXPECT_EQ(event_counts["run_started"], 1);
  EXPECT_EQ(event_counts["simulation_completed"], 6);
  EXPECT_EQ(event_counts["iteration_completed"], 6);
  EXPECT_EQ(event_counts["run_finished"], 1);

  // Spot-check the documented per-event keys.
  std::map<std::string, std::string> started, sim, iter, finished;
  ASSERT_TRUE(parse_line(lines.front(), &started));
  ASSERT_TRUE(parse_line(lines[1], &sim));
  ASSERT_TRUE(parse_line(lines[2], &iter));
  ASSERT_TRUE(parse_line(lines.back(), &finished));
  for (const char* key : {"algorithm", "problem", "seed", "budget", "num_initial", "dim"})
    EXPECT_EQ(started.count(key), 1u) << key;
  for (const char* key :
       {"index", "iteration", "lane", "ok", "feasible", "fom", "seconds", "retries", "failure_kind"})
    EXPECT_EQ(sim.count(key), 1u) << key;
  for (const char* key :
       {"iteration", "simulations", "best_fom", "feasible_found", "near_sampling", "wall_seconds",
        "spans"})
    EXPECT_EQ(iter.count(key), 1u) << key;
  for (const char* key :
       {"algorithm", "simulations", "best_fom", "feasible", "aborted", "wall_seconds", "counters"})
    EXPECT_EQ(finished.count(key), 1u) << key;
  EXPECT_EQ(started["algorithm"], "Random");
  std::remove(path.c_str());
}

TEST_F(JsonlFixture, FaultInjectedRunStaysParseableLineByLine) {
  // A simulator that throws / hangs / returns NaN or garbage at a combined
  // 40% rate, behind the resilient evaluator with bounded retries. The event
  // stream must remain valid JSONL throughout and record the turbulence.
  ckt::FaultInjectingProblem faulty(problem, ckt::FaultInjectionConfig::mixed(0.4, 99, 0.0));
  ckt::ResilientConfig rc;
  rc.max_retries = 2;
  ckt::ResilientEvaluator resilient(faulty, rc);

  Rng rng(2);
  auto init = core::sample_initial_set(resilient, 15, rng);
  std::vector<linalg::Vec> rows;
  for (const auto& r : init) rows.push_back(r.metrics);
  const auto f = ckt::FomEvaluator::fit_reference(resilient, rows);

  core::MaOptConfig config = core::MaOptConfig::ma_opt();
  config.critic.hidden = {16, 16};
  config.critic.steps_per_round = 5;
  config.actor.hidden = {12, 12};
  config.actor.steps_per_round = 5;
  config.near_sampling.num_samples = 50;

  const std::string path = temp_path("maopt_jsonl_faulty.jsonl");
  std::remove(path.c_str());
  constexpr std::size_t kBudget = 16;
  {
    JsonlObserver sink(path);
    core::MaOptimizer opt(config);
    core::RunOptions options;
    options.seed = 4;
    options.simulation_budget = kBudget;
    options.observer = &sink;
    opt.run(resilient, init, f, options);
  }

  const auto lines = read_lines(path);
  ASSERT_GE(lines.size(), kBudget + 2);
  std::map<std::string, int> event_counts;
  std::uint64_t retried_or_failed = 0;
  for (const auto& line : lines) {
    std::map<std::string, std::string> fields;
    ASSERT_TRUE(parse_line(line, &fields)) << line;
    ASSERT_EQ(fields.count("event"), 1u) << line;
    if (fields["event"] == "simulation_completed" &&
        (line.find("\"retries\":0") == std::string::npos || !fields["failure_kind"].empty()))
      ++retried_or_failed;
    ++event_counts[fields["event"]];
  }
  EXPECT_EQ(event_counts["run_started"], 1);
  EXPECT_EQ(event_counts["simulation_completed"], static_cast<int>(kBudget));
  EXPECT_EQ(event_counts["run_finished"], 1);
  EXPECT_GT(event_counts["iteration_completed"], 0);
  // With a 40% injection rate over 16+ evaluations the resilient layer is all
  // but guaranteed to have retried or exhausted at least one call — and the
  // event stream must say so.
  EXPECT_GT(retried_or_failed + 0u, 0u);
  EXPECT_GT(faulty.injected(), 0u);
  std::remove(path.c_str());
}

TEST_F(JsonlFixture, SweepBracketsWriteTheDocumentedSchema) {
  ckt::testing::VariedAnalytic varied;
  ckt::testing::SeedFailInjector faulty(varied, {1});
  ckt::RobustConfig rconfig;  // 5 corners, penalize-failed
  ckt::RobustProblem robust(faulty, rconfig);

  const std::string path = temp_path("maopt_jsonl_sweep.jsonl");
  std::remove(path.c_str());
  {
    JsonlObserver sink(path);
    robust.set_observer(&sink);
    robust.evaluate({0.3, 0.3});
    robust.evaluate({0.6, 0.6});
  }

  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 2u * (1 + 5 + 1));
  int started = 0, variants = 0, completed = 0;
  std::string open_id;  // sweep_id of the open bracket, "" when closed
  for (const auto& line : lines) {
    std::map<std::string, std::string> fields;
    ASSERT_TRUE(parse_line(line, &fields)) << line;
    const std::string& kind = fields["event"];
    if (kind == "sweep_started") {
      ++started;
      EXPECT_TRUE(open_id.empty()) << "bracket interleaving: " << line;
      for (const char* key : {"sweep_id", "kind", "aggregation", "variants", "t"})
        EXPECT_EQ(fields.count(key), 1u) << key << " missing: " << line;
      EXPECT_EQ(fields["kind"], "corners");
      EXPECT_EQ(fields["aggregation"], "worst-case");
      open_id = "open";
    } else if (kind == "sweep_variant") {
      ++variants;
      EXPECT_FALSE(open_id.empty()) << "variant outside bracket: " << line;
      for (const char* key : {"sweep_id", "variant", "label", "ok", "skipped", "fom0",
                              "seconds", "t"})
        EXPECT_EQ(fields.count(key), 1u) << key << " missing: " << line;
    } else if (kind == "sweep_completed") {
      ++completed;
      EXPECT_FALSE(open_id.empty()) << "completed outside bracket: " << line;
      for (const char* key : {"sweep_id", "ok", "failed", "skipped", "degraded", "policy",
                              "seconds", "t"})
        EXPECT_EQ(fields.count(key), 1u) << key << " missing: " << line;
      EXPECT_EQ(fields["policy"], "penalize-failed");
      open_id.clear();
    } else {
      ADD_FAILURE() << "unexpected event kind in sweep-only stream: " << line;
    }
  }
  EXPECT_EQ(started, 2);
  EXPECT_EQ(variants, 10);
  EXPECT_EQ(completed, 2);
  std::remove(path.c_str());
}

TEST(MulticastObserver, FansOutSweepEvents) {
  struct CountingSink final : RunObserver {
    int started = 0, variants = 0, completed = 0;
    void on_sweep_started(const SweepStarted&) override { ++started; }
    void on_sweep_variant_evaluated(const SweepVariantEvaluated&) override { ++variants; }
    void on_sweep_completed(const SweepCompleted&) override { ++completed; }
  };
  CountingSink a, b;
  MulticastObserver multicast;
  multicast.add(&a);
  multicast.add(&b);
  multicast.on_sweep_started(SweepStarted{});
  multicast.on_sweep_variant_evaluated(SweepVariantEvaluated{});
  multicast.on_sweep_completed(SweepCompleted{});
  for (const CountingSink* sink : {&a, &b}) {
    EXPECT_EQ(sink->started, 1);
    EXPECT_EQ(sink->variants, 1);
    EXPECT_EQ(sink->completed, 1);
  }
}

}  // namespace
}  // namespace maopt::obs
