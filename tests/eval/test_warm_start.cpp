// Warm start end-to-end: a run seeded from a prior run's cached results must
// match-or-beat a cold run at the same budget, and rerunning the same seed
// over a populated cache must reproduce the cold trajectory bit-for-bit
// (cache hits remove wall-clock, never change results).
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "circuits/analytic_problems.hpp"
#include "core/ma_optimizer.hpp"
#include "eval/eval_service.hpp"

namespace maopt::core {
namespace {

namespace fs = std::filesystem;

MaOptConfig test_config(MaOptConfig base) {
  base.critic.hidden = {32, 32};
  base.critic.steps_per_round = 20;
  base.actor.hidden = {24, 24};
  base.actor.steps_per_round = 10;
  base.near_sampling.num_samples = 200;
  return base;
}

struct WarmStartFixture : ::testing::Test {
  void SetUp() override {
    cache_dir = (fs::temp_directory_path() /
                 ("maopt_warm_" +
                  std::string(::testing::UnitTest::GetInstance()->current_test_info()->name())))
                    .string();
    fs::remove_all(cache_dir);

    Rng rng(1);
    initial = sample_initial_set(problem, 25, rng);
    std::vector<linalg::Vec> rows;
    for (const auto& r : initial) rows.push_back(r.metrics);
    fom = std::make_unique<ckt::FomEvaluator>(ckt::FomEvaluator::fit_reference(problem, rows));
  }
  void TearDown() override { fs::remove_all(cache_dir); }

  std::unique_ptr<eval::EvalService> make_service() {
    eval::EvalServiceConfig config;
    config.cache_dir = cache_dir;
    return std::make_unique<eval::EvalService>(problem, config);
  }

  RunHistory run(const ckt::SizingProblem& target, std::uint64_t seed, std::size_t budget,
                 bool warm = false) {
    MaOptimizer opt(test_config(MaOptConfig::ma_opt()));
    RunOptions options;
    options.seed = seed;
    options.simulation_budget = budget;
    options.warm_start = warm;
    return opt.run(target, initial, *fom, options);
  }

  ckt::ConstrainedQuadratic problem{4};
  std::vector<SimRecord> initial;
  std::unique_ptr<ckt::FomEvaluator> fom;
  std::string cache_dir;
};

TEST_F(WarmStartFixture, WarmRunDominatesColdRunAtEqualBudget) {
  // Prior run populates the journal with 40 evaluated designs.
  {
    auto service = make_service();
    const RunHistory prior = run(*service, 7, 40);
    EXPECT_EQ(prior.simulations_used(), 40u);
    EXPECT_GT(service->cached().size(), 0u);
  }

  const RunHistory cold = run(problem, 21, 12);
  auto service = make_service();  // fresh service, same journal on disk
  const RunHistory warm = run(*service, 21, 12, /*warm=*/true);

  // The cached results were absorbed as extra initial samples.
  EXPECT_GT(warm.num_initial, cold.num_initial);
  EXPECT_EQ(warm.simulations_used(), cold.simulations_used());

  // Starting from a superset of the cold run's information, the warm run's
  // best-so-far can never be behind at any point of the budget.
  ASSERT_EQ(warm.best_fom_after.size(), cold.best_fom_after.size());
  for (std::size_t k = 0; k < cold.best_fom_after.size(); ++k)
    EXPECT_LE(warm.best_fom_after[k], cold.best_fom_after[k] + 1e-12) << "simulation " << k;
}

TEST_F(WarmStartFixture, SameSeedOverPopulatedCacheIsBitIdenticalWithHits) {
  auto first_service = make_service();
  const RunHistory first = run(*first_service, 33, 18);
  const auto first_counters = first_service->counters();
  EXPECT_EQ(first_counters.hits + first_counters.misses, first_counters.requested);

  auto second_service = make_service();
  const RunHistory second = run(*second_service, 33, 18);
  const auto c = second_service->counters();
  EXPECT_GT(c.hits, 0u) << "rerun over a populated journal must hit the cache";

  // Hits replace simulations, not results: the trajectory is bit-identical.
  ASSERT_EQ(second.records.size(), first.records.size());
  for (std::size_t i = 0; i < first.records.size(); ++i) {
    EXPECT_EQ(second.records[i].x, first.records[i].x) << "record " << i;
    EXPECT_EQ(second.records[i].metrics, first.records[i].metrics) << "record " << i;
  }
  ASSERT_EQ(second.best_fom_after.size(), first.best_fom_after.size());
  for (std::size_t k = 0; k < first.best_fom_after.size(); ++k)
    EXPECT_EQ(second.best_fom_after[k], first.best_fom_after[k]);
}

TEST_F(WarmStartFixture, WarmStartIsNoOpOnBareProblem) {
  const RunHistory plain = run(problem, 5, 10);
  const RunHistory warmed = run(problem, 5, 10, /*warm=*/true);
  EXPECT_EQ(warmed.num_initial, plain.num_initial);
  ASSERT_EQ(warmed.records.size(), plain.records.size());
  for (std::size_t i = 0; i < plain.records.size(); ++i)
    EXPECT_EQ(warmed.records[i].x, plain.records[i].x);
}

TEST_F(WarmStartFixture, WarmStartRespectsCapAndDeduplicates) {
  {
    auto service = make_service();
    run(*service, 11, 30);
  }
  auto service = make_service();
  RunOptions options;
  options.seed = 11;
  options.simulation_budget = 8;
  options.warm_start = true;
  options.warm_start_max = 5;
  MaOptimizer opt(test_config(MaOptConfig::ma_opt2()));
  const RunHistory h = opt.run(*service, initial, *fom, options);
  EXPECT_LE(h.num_initial, initial.size() + 5);
  EXPECT_GT(h.num_initial, initial.size());
}

}  // namespace
}  // namespace maopt::core
