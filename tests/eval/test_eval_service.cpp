#include "eval/eval_service.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <thread>
#include <vector>

#include "../support/variation_test_problems.hpp"
#include "circuits/analytic_problems.hpp"
#include "circuits/resilient_problem.hpp"
#include "circuits/robust_problem.hpp"
#include "circuits/two_stage_ota.hpp"
#include "common/rng.hpp"

namespace maopt::eval {
namespace {

/// Counts inner evaluate() calls and optionally runs a hook inside them —
/// the instrument for "exactly one simulation per unique key" assertions.
class CountingProblem final : public ckt::SizingProblem {
 public:
  explicit CountingProblem(const ckt::SizingProblem& inner) : inner_(&inner) {}

  const ckt::ProblemSpec& spec() const override { return inner_->spec(); }
  std::size_t dim() const override { return inner_->dim(); }
  const Vec& lower_bounds() const override { return inner_->lower_bounds(); }
  const Vec& upper_bounds() const override { return inner_->upper_bounds(); }
  const std::vector<bool>& integer_mask() const override { return inner_->integer_mask(); }
  std::vector<std::string> parameter_names() const override {
    return inner_->parameter_names();
  }

  ckt::EvalResult evaluate(const Vec& x) const override {
    calls.fetch_add(1, std::memory_order_relaxed);
    if (hook) hook(x);
    return inner_->evaluate(x);
  }

  ckt::EvalResult evaluate_at(const Vec& x, const ckt::ProcessVariation& pv) const override {
    calls.fetch_add(1, std::memory_order_relaxed);
    if (hook) hook(x);
    return inner_->evaluate_at(x, pv);
  }

  bool supports_process_variation() const override {
    return inner_->supports_process_variation();
  }

  mutable std::atomic<int> calls{0};
  std::function<void(const Vec&)> hook;

 private:
  const ckt::SizingProblem* inner_;
};

/// Always reports simulation failure (to prove failures are never cached).
class AlwaysFailing final : public ckt::SizingProblem {
 public:
  explicit AlwaysFailing(const ckt::SizingProblem& inner) : inner_(&inner) {}
  const ckt::ProblemSpec& spec() const override { return inner_->spec(); }
  std::size_t dim() const override { return inner_->dim(); }
  const Vec& lower_bounds() const override { return inner_->lower_bounds(); }
  const Vec& upper_bounds() const override { return inner_->upper_bounds(); }
  const std::vector<bool>& integer_mask() const override { return inner_->integer_mask(); }
  std::vector<std::string> parameter_names() const override {
    return inner_->parameter_names();
  }
  ckt::EvalResult evaluate(const Vec&) const override {
    calls.fetch_add(1, std::memory_order_relaxed);
    return {inner_->failure_metrics(), /*simulation_ok=*/false};
  }
  mutable std::atomic<int> calls{0};

 private:
  const ckt::SizingProblem* inner_;
};

struct ServiceFixture : ::testing::Test {
  ckt::ConstrainedQuadratic quad{3};
  CountingProblem counting{quad};
};

TEST_F(ServiceFixture, ForwardsProblemInterface) {
  EvalService service(counting);
  EXPECT_EQ(service.dim(), quad.dim());
  EXPECT_EQ(service.spec().name, quad.spec().name);
  EXPECT_EQ(service.lower_bounds(), quad.lower_bounds());
  EXPECT_EQ(service.upper_bounds(), quad.upper_bounds());
  EXPECT_EQ(service.parameter_names(), quad.parameter_names());
  EXPECT_EQ(service.fingerprint(), problem_fingerprint(quad));
}

TEST_F(ServiceFixture, PointPathHitsOnRepeat) {
  EvalService service(counting);
  const Vec x = {0.1, 0.2, 0.3};

  const auto first = service.evaluate(x);
  const auto miss = EvalService::last_outcome();
  EXPECT_TRUE(first.simulation_ok);
  EXPECT_FALSE(miss.cache_hit);
  EXPECT_FALSE(miss.coalesced);
  EXPECT_GE(miss.seconds, 0.0);

  const auto second = service.evaluate(x);
  const auto hit = EvalService::last_outcome();
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_FALSE(hit.coalesced);
  EXPECT_EQ(hit.seconds, 0.0);
  EXPECT_EQ(second.metrics, first.metrics);

  EXPECT_EQ(counting.calls.load(), 1);
  const auto c = service.counters();
  EXPECT_EQ(c.requested, 2u);
  EXPECT_EQ(c.hits, 1u);
  EXPECT_EQ(c.misses, 1u);
  EXPECT_EQ(c.coalesced, 0u);
  EXPECT_EQ(c.simulations, 1u);
}

TEST_F(ServiceFixture, MatchesUnwrappedResults) {
  EvalService service(counting);
  const Vec x = {0.25, 0.5, 0.75};
  EXPECT_EQ(service.evaluate(x).metrics, quad.evaluate(x).metrics);
}

TEST_F(ServiceFixture, FailuresAreNotCached) {
  AlwaysFailing failing(quad);
  EvalService service(failing);
  const Vec x = {0.1, 0.2, 0.3};
  EXPECT_FALSE(service.evaluate(x).simulation_ok);
  EXPECT_FALSE(service.evaluate(x).simulation_ok);
  EXPECT_EQ(failing.calls.load(), 2);  // the failure was re-attempted
  const auto c = service.counters();
  EXPECT_EQ(c.hits, 0u);
  EXPECT_EQ(c.misses, 2u);
  EXPECT_EQ(c.simulations, 2u);
  EXPECT_EQ(service.cache().size(), 0u);
}

TEST_F(ServiceFixture, InnerExceptionPropagatesAndIsNotCached) {
  struct Throwing final : ckt::SizingProblem {
    explicit Throwing(const ckt::SizingProblem& inner) : inner_(&inner) {}
    const ckt::ProblemSpec& spec() const override { return inner_->spec(); }
    std::size_t dim() const override { return inner_->dim(); }
    const Vec& lower_bounds() const override { return inner_->lower_bounds(); }
    const Vec& upper_bounds() const override { return inner_->upper_bounds(); }
    const std::vector<bool>& integer_mask() const override { return inner_->integer_mask(); }
    std::vector<std::string> parameter_names() const override {
      return inner_->parameter_names();
    }
    ckt::EvalResult evaluate(const Vec&) const override {
      calls.fetch_add(1, std::memory_order_relaxed);
      throw std::runtime_error("solver exploded");
    }
    mutable std::atomic<int> calls{0};
    const ckt::SizingProblem* inner_;
  } throwing(quad);

  EvalService service(throwing);
  const Vec x = {0.1, 0.2, 0.3};
  EXPECT_THROW(service.evaluate(x), std::runtime_error);
  // The key must not be stuck in the in-flight map: a retry throws again
  // (rather than deadlocking on a dead producer) and runs a fresh attempt.
  EXPECT_THROW(service.evaluate(x), std::runtime_error);
  EXPECT_EQ(throwing.calls.load(), 2);
  EXPECT_EQ(service.cache().size(), 0u);
}

TEST_F(ServiceFixture, BatchIsPositionalAndDeduplicatesWithinBatch) {
  EvalService service(counting);
  const Vec a = {0.1, 0.2, 0.3};
  const Vec b = {0.4, 0.5, 0.6};
  const Vec c = {0.7, 0.8, 0.9};
  const std::vector<Vec> xs = {a, b, a, c, b, a};

  std::vector<EvalOutcome> outcomes;
  const auto results = service.evaluate_batch(xs, &outcomes);
  ASSERT_EQ(results.size(), xs.size());
  ASSERT_EQ(outcomes.size(), xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_TRUE(results[i].simulation_ok);
    EXPECT_EQ(results[i].metrics, quad.evaluate(xs[i]).metrics) << "position " << i;
  }

  EXPECT_EQ(counting.calls.load(), 3) << "one simulation per unique design";
  const auto totals = service.counters();
  EXPECT_EQ(totals.requested, xs.size());
  EXPECT_EQ(totals.hits + totals.misses, xs.size());
  EXPECT_EQ(totals.simulations, 3u);
  EXPECT_EQ(totals.misses - totals.coalesced, 3u);

  // Exactly three requests produced a fresh simulation; the duplicates were
  // served by the cache or a concurrent producer (scheduling decides which).
  std::size_t fresh = 0;
  for (const auto& o : outcomes) fresh += (!o.cache_hit && !o.coalesced) ? 1 : 0;
  EXPECT_EQ(fresh, 3u);
}

TEST_F(ServiceFixture, BatchHandlesEmptyAndSingle) {
  EvalService service(counting);
  EXPECT_TRUE(service.evaluate_batch({}).empty());
  const std::vector<Vec> one = {{0.1, 0.2, 0.3}};
  std::vector<EvalOutcome> outcomes;
  const auto results = service.evaluate_batch(one, &outcomes);
  ASSERT_EQ(results.size(), 1u);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(results[0].metrics, quad.evaluate(one[0]).metrics);
  EXPECT_FALSE(outcomes[0].cache_hit);
}

// Satellite #3: N threads requesting overlapping keys must coalesce onto
// exactly one underlying simulation per unique key, and every waiter must
// receive the producer's result. Deterministic even under TSan: the producer
// blocks *inside* the inner problem until all N waiters have registered
// (counted via the service's own coalesced counter), so the schedule cannot
// race the assertion.
TEST_F(ServiceFixture, ConcurrentRequestsCoalesceOntoOneSimulation) {
  constexpr int kWaiters = 4;
  EvalService service(counting);
  const Vec x = {0.3, 0.3, 0.3};

  std::atomic<bool> producer_entered{false};
  counting.hook = [&](const Vec&) {
    producer_entered.store(true, std::memory_order_release);
    while (service.counters().coalesced < kWaiters) std::this_thread::yield();
  };

  ckt::EvalResult producer_result;
  std::thread producer([&] { producer_result = service.evaluate(x); });
  while (!producer_entered.load(std::memory_order_acquire)) std::this_thread::yield();

  std::vector<ckt::EvalResult> waiter_results(kWaiters);
  std::vector<EvalOutcome> waiter_outcomes(kWaiters);
  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&, i] {
      waiter_results[i] = service.evaluate(x);
      waiter_outcomes[i] = EvalService::last_outcome();
    });
  }
  for (auto& t : waiters) t.join();
  producer.join();
  counting.hook = nullptr;

  EXPECT_EQ(counting.calls.load(), 1) << "exactly one simulation for the shared key";
  for (int i = 0; i < kWaiters; ++i) {
    EXPECT_EQ(waiter_results[i].metrics, producer_result.metrics);
    EXPECT_TRUE(waiter_outcomes[i].coalesced);
    EXPECT_FALSE(waiter_outcomes[i].cache_hit);
    EXPECT_EQ(waiter_outcomes[i].seconds, 0.0);
  }
  const auto c = service.counters();
  EXPECT_EQ(c.requested, static_cast<std::uint64_t>(kWaiters) + 1);
  EXPECT_EQ(c.hits, 0u);
  EXPECT_EQ(c.misses, static_cast<std::uint64_t>(kWaiters) + 1);
  EXPECT_EQ(c.coalesced, static_cast<std::uint64_t>(kWaiters));
  EXPECT_EQ(c.simulations, 1u);
}

// Overlapping keys across many free-running threads: whatever the schedule,
// each unique design simulates exactly once (a requester either hits the
// cache or joins the in-flight producer — the publish protocol has no gap).
TEST_F(ServiceFixture, ManyThreadsManyKeysSimulateEachKeyOnce) {
  constexpr int kThreads = 8;
  constexpr int kUnique = 4;
  EvalService service(counting);
  std::vector<Vec> designs;
  for (int k = 0; k < kUnique; ++k)
    designs.push_back({0.1 + 0.2 * k, 0.5, 0.5});

  std::vector<ckt::EvalResult> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] { results[i] = service.evaluate(designs[i % kUnique]); });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(counting.calls.load(), kUnique);
  for (int i = 0; i < kThreads; ++i)
    EXPECT_EQ(results[i].metrics, quad.evaluate(designs[i % kUnique]).metrics);
  const auto c = service.counters();
  EXPECT_EQ(c.requested, static_cast<std::uint64_t>(kThreads));
  EXPECT_EQ(c.hits + c.misses, static_cast<std::uint64_t>(kThreads));
  EXPECT_EQ(c.simulations, static_cast<std::uint64_t>(kUnique));
  EXPECT_LE(c.coalesced, c.misses);
}

TEST_F(ServiceFixture, CapturesResilientCallStats) {
  ckt::ResilientEvaluator resilient(quad);
  EvalService service(resilient);
  const Vec x = {0.2, 0.2, 0.2};
  EXPECT_TRUE(service.evaluate(x).simulation_ok);
  const auto outcome = EvalService::last_outcome();
  EXPECT_FALSE(outcome.call.failed);
  EXPECT_EQ(outcome.call.retries, 0u);
  EXPECT_EQ(service.fingerprint(), problem_fingerprint(quad))
      << "fingerprint must see through the resilient wrapper";
}

TEST_F(ServiceFixture, CachedExposesEvaluatedDesigns) {
  EvalService service(counting);
  const Vec a = {0.1, 0.2, 0.3};
  const Vec b = {0.4, 0.5, 0.6};
  service.evaluate(a);
  service.evaluate(b);
  service.evaluate(a);  // hit: no new entry
  const auto cached = service.cached();
  ASSERT_EQ(cached.size(), 2u);
  EXPECT_EQ(cached[0].x, a);
  EXPECT_EQ(cached[1].x, b);
  EXPECT_EQ(cached[0].metrics, quad.evaluate(a).metrics);
}

TEST_F(ServiceFixture, QuantizationEpsilonMergesNearbyDesigns) {
  EvalServiceConfig config;
  config.quant_epsilon = 1e-3;
  EvalService service(counting, config);
  const Vec a = {0.10000, 0.2, 0.3};
  const Vec b = {0.10004, 0.2, 0.3};  // same 1e-3 bucket
  const auto ra = service.evaluate(a);
  const auto rb = service.evaluate(b);
  EXPECT_EQ(counting.calls.load(), 1);
  EXPECT_EQ(rb.metrics, ra.metrics) << "b served from a's bucket";
  EXPECT_EQ(service.counters().hits, 1u);
}

/// Counts make_session() calls so the pool's reuse can be asserted.
class SessionCountingProblem final : public ckt::SizingProblem {
 public:
  explicit SessionCountingProblem(const ckt::SizingProblem& inner) : inner_(&inner) {}
  const ckt::ProblemSpec& spec() const override { return inner_->spec(); }
  std::size_t dim() const override { return inner_->dim(); }
  const Vec& lower_bounds() const override { return inner_->lower_bounds(); }
  const Vec& upper_bounds() const override { return inner_->upper_bounds(); }
  const std::vector<bool>& integer_mask() const override { return inner_->integer_mask(); }
  std::vector<std::string> parameter_names() const override {
    return inner_->parameter_names();
  }
  ckt::EvalResult evaluate(const Vec& x) const override { return inner_->evaluate(x); }
  std::unique_ptr<ckt::EvalSession> make_session() const override {
    sessions_created.fetch_add(1, std::memory_order_relaxed);
    return inner_->make_session();
  }

  mutable std::atomic<int> sessions_created{0};

 private:
  const ckt::SizingProblem* inner_;
};

TEST_F(ServiceFixture, SessionPoolCreatesAtMostOneSessionPerWorker) {
  SessionCountingProblem problem(quad);
  EvalServiceConfig config;
  config.num_threads = 2;
  EvalService service(problem, config);

  std::vector<Vec> designs;
  for (int i = 0; i < 8; ++i) designs.push_back({0.01 * i, 0.2, 0.3});
  service.evaluate_batch(designs);
  service.evaluate_batch(designs);  // all hits: no new sessions either way
  for (int i = 0; i < 8; ++i) designs[static_cast<std::size_t>(i)][0] = 0.5 + 0.01 * i;
  service.evaluate_batch(designs);  // misses again: sessions come from the pool

  const int created = problem.sessions_created.load();
  EXPECT_GE(created, 1);
  EXPECT_LE(created, 2) << "at most one session per concurrent worker";

  const auto c = service.counters();
  EXPECT_EQ(c.hits + c.misses, c.requested);
  EXPECT_EQ(c.simulations, c.misses - c.coalesced);
}

TEST_F(ServiceFixture, SessionsDisabledNeverCreatesSessions) {
  SessionCountingProblem problem(quad);
  EvalServiceConfig config;
  config.use_sessions = false;
  EvalService service(problem, config);
  service.evaluate({0.1, 0.2, 0.3});
  std::vector<Vec> designs = {{0.3, 0.2, 0.1}, {0.4, 0.2, 0.1}};
  service.evaluate_batch(designs);
  EXPECT_EQ(problem.sessions_created.load(), 0);
}

TEST(EvalServiceSessions, CircuitBatchThroughSessionsMatchesPointPath) {
  ckt::TwoStageOta ota;
  EvalServiceConfig config;
  config.num_threads = 2;
  ASSERT_TRUE(config.use_sessions);  // default on
  EvalService service(ota, config);

  maopt::Rng rng(123);
  std::vector<Vec> designs;
  for (int i = 0; i < 3; ++i) designs.push_back(ota.random_design(rng));
  designs.push_back(designs[0]);  // duplicate: coalesces or hits

  const auto results = service.evaluate_batch(designs);
  ASSERT_EQ(results.size(), designs.size());
  for (std::size_t i = 0; i < designs.size(); ++i) {
    const auto ref = ota.evaluate(designs[i]);
    EXPECT_EQ(results[i].simulation_ok, ref.simulation_ok) << "design " << i;
    EXPECT_EQ(results[i].metrics, ref.metrics) << "design " << i;
  }

  const auto c = service.counters();
  EXPECT_EQ(c.requested, 4u);
  EXPECT_EQ(c.hits + c.misses, c.requested);
  EXPECT_EQ(c.simulations, c.misses - c.coalesced);
  EXPECT_EQ(c.simulations, 3u) << "duplicate design must not re-simulate";
}

TEST(ServiceSweep, EvaluateAtUsesPerVariantCacheKeys) {
  ckt::testing::VariedAnalytic varied;
  CountingProblem counting(varied);
  EvalServiceConfig config;
  config.use_sessions = false;  // CountingProblem counts evaluate() only
  EvalService service(counting, config);

  const Vec x{0.4, 0.6};
  ckt::ProcessVariation corner;
  corner.nmos_vth_shift = 0.03;

  const auto nominal = service.evaluate(x);
  const auto at_corner = service.evaluate_at(x, corner);
  EXPECT_NE(nominal.metrics, at_corner.metrics);
  // A corner result must never be served from the nominal cache entry (or
  // vice versa), but repeats of either key are pure hits.
  EXPECT_EQ(service.evaluate(x).metrics, nominal.metrics);
  EXPECT_EQ(service.evaluate_at(x, corner).metrics, at_corner.metrics);
  const auto c = service.counters();
  EXPECT_EQ(c.requested, 4u);
  EXPECT_EQ(c.hits, 2u);
  EXPECT_EQ(c.misses, 2u);
}

TEST(ServiceSweep, NominalEvaluateAtSharesTheNominalKey) {
  ckt::ConstrainedQuadratic quad(3);
  CountingProblem counting(quad);
  EvalService service(counting);
  const Vec x{0.3, 0.3, 0.3};
  service.evaluate(x);
  // A disabled variation is the nominal key: pure cache hit, no new sim.
  service.evaluate_at(x, ckt::ProcessVariation{});
  const auto c = service.counters();
  EXPECT_EQ(c.hits, 1u);
  EXPECT_EQ(c.misses, 1u);
  EXPECT_EQ(counting.calls.load(), 1);
}

TEST(ServiceSweep, EvaluateVariantsMatchesDirectEvaluateAt) {
  ckt::testing::VariedAnalytic varied;
  EvalServiceConfig config;
  config.num_threads = 4;
  EvalService service(varied, config);

  std::vector<ckt::ProcessVariation> pvs(6);
  for (std::size_t k = 0; k < pvs.size(); ++k) {
    pvs[k].sigma_vth = 0.04;
    pvs[k].seed = k + 1;
  }
  const Vec x{0.2, 0.7};
  const auto batched = service.evaluate_variants(x, pvs);
  ASSERT_EQ(batched.size(), pvs.size());
  for (std::size_t k = 0; k < pvs.size(); ++k) {
    const auto direct = varied.evaluate_at(x, pvs[k]);
    EXPECT_EQ(batched[k].metrics, direct.metrics) << "variant " << k;
    EXPECT_TRUE(batched[k].simulation_ok) << "variant " << k;
  }
  // Re-running the same sweep is all cache hits.
  (void)service.evaluate_variants(x, pvs);
  const auto c = service.counters();
  EXPECT_EQ(c.requested, 12u);
  EXPECT_EQ(c.hits, 6u);
  EXPECT_EQ(c.simulations, 6u);
}

TEST(ServiceSweep, ThrowingVariantIsReportedFailedNotPropagated) {
  ckt::testing::VariedAnalytic varied;
  ckt::FaultInjectionConfig fcfg;
  fcfg.throw_rate = 1.0;
  ckt::FaultInjectingProblem faulty(varied, fcfg);
  EvalService service(faulty);
  std::vector<ckt::ProcessVariation> pvs(3);
  for (std::size_t k = 0; k < pvs.size(); ++k) {
    pvs[k].sigma_vth = 0.02;
    pvs[k].seed = k;
  }
  std::vector<ckt::EvalResult> results;
  ASSERT_NO_THROW(results = service.evaluate_variants({0.5, 0.5}, pvs));
  ASSERT_EQ(results.size(), 3u);
  for (const auto& r : results) {
    EXPECT_FALSE(r.simulation_ok);
    EXPECT_EQ(r.metrics, faulty.failure_metrics());
  }
}

TEST(ServiceSweep, SweepProblemOverServiceRunsBatched) {
  // The full tentpole stack: VariationSweepProblem detects the service as a
  // SweepBackend and fans corners through it, with per-variant caching.
  ckt::testing::VariedAnalytic varied;
  EvalServiceConfig config;
  config.num_threads = 4;
  EvalService service(varied, config);
  ckt::RobustProblem robust(service, ckt::RobustConfig{});
  EXPECT_TRUE(robust.batched());

  const Vec x{0.25, 0.25};
  const auto via_service = robust.evaluate(x);
  ckt::RobustProblem serial(varied, ckt::RobustConfig{});
  EXPECT_FALSE(serial.batched());
  const auto via_serial = serial.evaluate(x);
  ASSERT_TRUE(via_service.simulation_ok);
  EXPECT_EQ(via_service.metrics, via_serial.metrics);  // batched == serial, bitwise

  // Second sweep of the same design: all five corners served from cache.
  (void)robust.evaluate(x);
  const auto c = service.counters();
  EXPECT_EQ(c.requested, 10u);
  EXPECT_EQ(c.hits, 5u);
  EXPECT_EQ(c.simulations, 5u);
}

}  // namespace
}  // namespace maopt::eval
