#include "eval/result_cache.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "circuits/analytic_problems.hpp"
#include "circuits/resilient_problem.hpp"

namespace maopt::eval {
namespace {

namespace fs = std::filesystem;

/// Fresh scratch directory per test, removed on teardown.
struct CacheDir : ::testing::Test {
  void SetUp() override {
    dir = fs::temp_directory_path() /
          ("maopt_cache_" +
           std::string(::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(dir);
    fs::create_directories(dir);
    journal = (dir / "eval_cache.bin").string();
  }
  void TearDown() override { fs::remove_all(dir); }

  ResultCache::Config config(double epsilon = 0.0) const {
    ResultCache::Config c;
    c.journal_path = journal;
    c.quant_epsilon = epsilon;
    return c;
  }

  fs::path dir;
  std::string journal;
};

CacheKey key_of(std::uint64_t fp, const Vec& x) { return make_cache_key(fp, x, 0.0); }

TEST(ResultCacheMemory, InsertLookupAndMiss) {
  ResultCache cache({.memory_capacity = 8, .journal_path = {}, .quant_epsilon = 0.0});
  const Vec x = {1.0, 2.0};
  const Vec metrics = {3.0, 4.0, 5.0};
  EXPECT_FALSE(cache.lookup(key_of(7, x)).has_value());
  cache.insert(key_of(7, x), 7, x, metrics);
  const auto hit = cache.lookup(key_of(7, x));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, metrics);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ResultCacheMemory, FirstWriterWins) {
  ResultCache cache({.memory_capacity = 8, .journal_path = {}, .quant_epsilon = 0.0});
  const Vec x = {1.0};
  cache.insert(key_of(1, x), 1, x, {10.0});
  cache.insert(key_of(1, x), 1, x, {99.0});
  EXPECT_EQ(cache.lookup(key_of(1, x)).value(), Vec{10.0});
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ResultCacheMemory, LruEvictsLeastRecentlyUsed) {
  ResultCache cache({.memory_capacity = 2, .journal_path = {}, .quant_epsilon = 0.0});
  cache.insert(key_of(1, {1.0}), 1, {1.0}, {1.0});
  cache.insert(key_of(1, {2.0}), 1, {2.0}, {2.0});
  ASSERT_TRUE(cache.lookup(key_of(1, {1.0})).has_value());  // refresh {1}
  cache.insert(key_of(1, {3.0}), 1, {3.0}, {3.0});          // evicts {2}
  EXPECT_FALSE(cache.lookup(key_of(1, {2.0})).has_value());
  EXPECT_TRUE(cache.lookup(key_of(1, {1.0})).has_value());
  EXPECT_TRUE(cache.lookup(key_of(1, {3.0})).has_value());
}

TEST(ResultCacheMemory, EntriesForFiltersByFingerprint) {
  ResultCache cache({.memory_capacity = 8, .journal_path = {}, .quant_epsilon = 0.0});
  cache.insert(key_of(1, {1.0}), 1, {1.0}, {10.0});
  cache.insert(key_of(2, {2.0}), 2, {2.0}, {20.0});
  cache.insert(key_of(1, {3.0}), 1, {3.0}, {30.0});
  const auto mine = cache.entries_for(1);
  ASSERT_EQ(mine.size(), 2u);
  EXPECT_EQ(mine[0].metrics, Vec{10.0});  // insertion order preserved
  EXPECT_EQ(mine[1].metrics, Vec{30.0});
  EXPECT_EQ(cache.entries_for(3).size(), 0u);
}

TEST_F(CacheDir, JournalSurvivesReopen) {
  {
    ResultCache cache(config());
    cache.insert(key_of(5, {1.0, 2.0}), 5, {1.0, 2.0}, {42.0});
    cache.insert(key_of(5, {3.0, 4.0}), 5, {3.0, 4.0}, {43.0});
  }
  ResultCache reopened(config());
  EXPECT_EQ(reopened.size(), 2u);
  const auto hit = reopened.lookup(key_of(5, {1.0, 2.0}));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, Vec{42.0});
  const auto entries = reopened.entries_for(5);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].x, (Vec{1.0, 2.0}));
}

TEST_F(CacheDir, L2HitPromotesAfterEviction) {
  // Capacity 1: inserting 3 entries leaves 2 on disk only; both must still
  // be retrievable (read + promote), evicting each other in turn.
  auto c = config();
  c.memory_capacity = 1;
  ResultCache cache(c);
  cache.insert(key_of(1, {1.0}), 1, {1.0}, {10.0});
  cache.insert(key_of(1, {2.0}), 1, {2.0}, {20.0});
  cache.insert(key_of(1, {3.0}), 1, {3.0}, {30.0});
  EXPECT_EQ(cache.lookup(key_of(1, {1.0})).value(), Vec{10.0});
  EXPECT_EQ(cache.lookup(key_of(1, {2.0})).value(), Vec{20.0});
  EXPECT_EQ(cache.lookup(key_of(1, {3.0})).value(), Vec{30.0});
  EXPECT_EQ(cache.size(), 3u);
}

TEST_F(CacheDir, EpsilonMismatchStartsEmpty) {
  {
    ResultCache cache(config(0.0));
    cache.insert(key_of(1, {1.0}), 1, {1.0}, {10.0});
  }
  ResultCache mismatched(config(1e-6));
  EXPECT_EQ(mismatched.size(), 0u);
  // The stale journal was replaced: a matching reopen now sees the new header.
  mismatched.insert(make_cache_key(1, Vec{2.0}, 1e-6), 1, {2.0}, {20.0});
  ResultCache reopened(config(1e-6));
  EXPECT_EQ(reopened.size(), 1u);
}

TEST_F(CacheDir, CorruptHeaderStartsEmpty) {
  {
    std::ofstream out(journal, std::ios::binary);
    out << "this is not a journal";
  }
  ResultCache cache(config());
  EXPECT_EQ(cache.size(), 0u);
  cache.insert(key_of(1, {1.0}), 1, {1.0}, {10.0});
  ResultCache reopened(config());
  EXPECT_EQ(reopened.size(), 1u);
}

TEST_F(CacheDir, TruncatedTailKeepsCompleteRecords) {
  {
    ResultCache cache(config());
    cache.insert(key_of(1, {1.0}), 1, {1.0}, {10.0});
    cache.insert(key_of(1, {2.0}), 1, {2.0}, {20.0});
  }
  // Chop a few bytes off the second record (a torn append).
  const auto size = fs::file_size(journal);
  fs::resize_file(journal, size - 5);

  ResultCache cache(config());
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.lookup(key_of(1, {1.0})).value(), Vec{10.0});
  EXPECT_FALSE(cache.lookup(key_of(1, {2.0})).has_value());

  // Loading compacted the file: a further reopen parses cleanly end-to-end.
  ResultCache again(config());
  EXPECT_EQ(again.size(), 1u);
}

TEST_F(CacheDir, CompactRewritesExactlyCurrentEntries) {
  ResultCache cache(config());
  cache.insert(key_of(1, {1.0}), 1, {1.0}, {10.0});
  cache.insert(key_of(1, {2.0}), 1, {2.0}, {20.0});
  const auto before = fs::file_size(journal);
  cache.compact();
  EXPECT_EQ(fs::file_size(journal), before);  // nothing to drop: same bytes
  EXPECT_EQ(cache.lookup(key_of(1, {1.0})).value(), Vec{10.0});
  cache.insert(key_of(1, {3.0}), 1, {3.0}, {30.0});  // appends still work
  ResultCache reopened(config());
  EXPECT_EQ(reopened.size(), 3u);
}

TEST(ProblemFingerprint, StableAndDiscriminating) {
  ckt::ConstrainedQuadratic a(4);
  ckt::ConstrainedQuadratic b(4);
  ckt::ConstrainedQuadratic other(5);
  EXPECT_EQ(problem_fingerprint(a), problem_fingerprint(b));
  EXPECT_NE(problem_fingerprint(a), problem_fingerprint(other));
}

TEST(ProblemFingerprint, DecoratorsShareTheInnerFingerprint) {
  ckt::ConstrainedQuadratic inner(4);
  ckt::ResilientEvaluator resilient(inner);
  EXPECT_EQ(problem_fingerprint(inner), problem_fingerprint(resilient));
}

TEST(CacheKeyTest, DistinctProblemsNeverShareKeys) {
  const Vec x = {1.0, 2.0};
  const CacheKey a = make_cache_key(1, x, 0.0);
  const CacheKey b = make_cache_key(2, x, 0.0);
  EXPECT_FALSE(a == b);
  EXPECT_TRUE(a == make_cache_key(1, x, 0.0));
}

}  // namespace
}  // namespace maopt::eval
