// Session-identity regression: a persistent EvalSession must return results
// identical to the owning problem's evaluate() — for every circuit, across
// repeated designs, regardless of what the previous design left behind in
// the reused testbench (swept DC levels, transient waveforms, AC magnitudes).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "circuits/analytic_problems.hpp"
#include "circuits/folded_cascode_ota.hpp"
#include "circuits/ldo_regulator.hpp"
#include "circuits/resilient_problem.hpp"
#include "circuits/sizing_problem.hpp"
#include "circuits/three_stage_tia.hpp"
#include "circuits/two_stage_ota.hpp"
#include "common/rng.hpp"

namespace maopt::ckt {
namespace {

void expect_identical(const EvalResult& got, const EvalResult& want, const char* context) {
  EXPECT_EQ(got.simulation_ok, want.simulation_ok) << context;
  ASSERT_EQ(got.metrics.size(), want.metrics.size()) << context;
  for (std::size_t i = 0; i < want.metrics.size(); ++i)
    EXPECT_EQ(got.metrics[i], want.metrics[i]) << context << " metric " << i;
}

/// Sessions reuse benches across designs; evaluate() builds fresh ones. The
/// A, B, A' sequence (with A' == A) catches any state the second design
/// leaks into the third evaluation.
void check_session_identity(const SizingProblem& problem, std::uint64_t seed) {
  Rng rng(seed);
  const Vec a = problem.random_design(rng);
  const Vec b = problem.random_design(rng);

  const EvalResult ref_a = problem.evaluate(a);
  const EvalResult ref_b = problem.evaluate(b);

  const auto session = problem.make_session();
  ASSERT_NE(session, nullptr);
  expect_identical(session->evaluate(a), ref_a, "first design");
  expect_identical(session->evaluate(b), ref_b, "second design (reused bench)");
  expect_identical(session->evaluate(a), ref_a, "first design again (after reuse)");
}

TEST(EvalSessionTest, TwoStageOtaSessionMatchesEvaluate) {
  check_session_identity(TwoStageOta{}, 41);
}

TEST(EvalSessionTest, FoldedCascodeSessionMatchesEvaluate) {
  check_session_identity(FoldedCascodeOta{}, 42);
}

TEST(EvalSessionTest, ThreeStageTiaSessionMatchesEvaluate) {
  check_session_identity(ThreeStageTia{}, 43);
}

TEST(EvalSessionTest, LdoRegulatorSessionMatchesEvaluate) {
  check_session_identity(LdoRegulator{}, 44);
}

TEST(EvalSessionTest, SessionSnapshotsProcessVariation) {
  TwoStageOta ota;
  ProcessVariation pv;
  pv.sigma_vth = 5e-3;
  pv.seed = 7;
  ota.set_process_variation(pv);
  check_session_identity(ota, 45);
}

TEST(EvalSessionTest, DefaultSessionForwardsForAnalyticProblems) {
  ConstrainedQuadratic quad(3);
  Rng rng(1);
  const Vec x = quad.random_design(rng);
  const auto session = quad.make_session();
  ASSERT_NE(session, nullptr);
  expect_identical(session->evaluate(x), quad.evaluate(x), "analytic");
}

TEST(EvalSessionTest, ResilientInlineSessionMatchesEvaluate) {
  TwoStageOta ota;
  ResilientConfig config;
  config.deadline_seconds = 0.0;  // inline attempts: inner session is reused
  ResilientEvaluator resilient(ota, config);
  check_session_identity(resilient, 46);
}

TEST(EvalSessionTest, ResilientWithDeadlineFallsBackToForwarding) {
  TwoStageOta ota;
  ResilientConfig config;
  config.deadline_seconds = 30.0;  // detached-thread attempts: no reuse
  ResilientEvaluator resilient(ota, config);
  Rng rng(47);
  const Vec x = resilient.random_design(rng);
  const auto session = resilient.make_session();
  ASSERT_NE(session, nullptr);
  expect_identical(session->evaluate(x), resilient.evaluate(x), "deadline fallback");
}

}  // namespace
}  // namespace maopt::ckt
