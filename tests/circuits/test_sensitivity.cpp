#include "circuits/sensitivity.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "circuits/analytic_problems.hpp"
#include "circuits/two_stage_ota.hpp"
#include "core/history.hpp"

namespace maopt::ckt {
namespace {

TEST(Sensitivity, MatchesAnalyticGradientOfQuadratic) {
  // f0 = sum (x_i - 0.3)^2: df0/dx_j = 2(x_j - 0.3); mean metric: 1/d; x0: e0.
  ConstrainedQuadratic p(4);
  const Vec x{0.5, 0.1, 0.7, 0.3};
  const auto s = sensitivity_analysis(p, x, 1e-4);
  ASSERT_TRUE(s.ok);
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_NEAR(s.jacobian(0, j), 2.0 * (x[j] - 0.3), 1e-5) << j;
    EXPECT_NEAR(s.jacobian(1, j), 0.25, 1e-9) << j;  // mean
    EXPECT_NEAR(s.jacobian(2, j), j == 0 ? 1.0 : 0.0, 1e-9) << j;
  }
}

TEST(Sensitivity, ShapesMatchProblem) {
  ConstrainedQuadratic p(3);
  const auto s = sensitivity_analysis(p, {0.4, 0.4, 0.4});
  EXPECT_EQ(s.jacobian.rows(), p.num_metrics());
  EXPECT_EQ(s.jacobian.cols(), p.dim());
  EXPECT_EQ(s.base_metrics.size(), p.num_metrics());
}

TEST(Sensitivity, OneSidedAtBoxEdge) {
  ConstrainedQuadratic p(2);
  // x0 at the lower bound: probe must stay inside and still give a gradient.
  const auto s = sensitivity_analysis(p, {0.0, 0.5}, 0.01);
  ASSERT_TRUE(s.ok);
  EXPECT_NEAR(s.jacobian(0, 0), 2.0 * (0.0 - 0.3), 0.05);
}

TEST(Sensitivity, IntegerParametersUseUnitStep) {
  ConstrainedRosenbrock p(3);  // last param integer
  const auto s = sensitivity_analysis(p, {1.0, 1.0, 1.0}, 0.01);
  ASSERT_TRUE(s.ok);
  // Finite and well-defined despite rounding.
  EXPECT_TRUE(std::isfinite(s.jacobian(0, 2)));
}

TEST(Sensitivity, OtaPowerRespondsToTailMultiplier) {
  // N1 scales the tail current: power sensitivity to N1 must be positive and
  // among the strongest integer knobs for power.
  TwoStageOta p;
  const Vec x = p.clip({1.0, 1.0, 1.0, 0.5, 0.5, 20, 10, 5, 40, 20, 2.0, 500, 1000, 4, 4, 4});
  const auto s = sensitivity_analysis(p, x, 0.02);
  ASSERT_TRUE(s.ok);
  EXPECT_GT(s.jacobian(TwoStageOta::kPowerMw, 13), 0.0);  // dPower/dN1 > 0
}

TEST(Sensitivity, FormatTableListsAllMetricsAndParams) {
  ConstrainedQuadratic p(3);
  const auto s = sensitivity_analysis(p, {0.4, 0.4, 0.4});
  const std::string table = format_sensitivity_table(p, s);
  EXPECT_NE(table.find("sq_error"), std::string::npos);
  EXPECT_NE(table.find("x2"), std::string::npos);
  EXPECT_NE(table.find('*'), std::string::npos);
}

TEST(LhsSampling, StratifiedCoveragePerDimension) {
  ConstrainedQuadratic p(2);
  Rng rng(3);
  const auto records = maopt::core::sample_initial_set_lhs(p, 10, rng);
  ASSERT_EQ(records.size(), 10u);
  // Exactly one sample per decile in each dimension.
  for (std::size_t j = 0; j < 2; ++j) {
    std::vector<int> bucket(10, 0);
    for (const auto& r : records) {
      const int b = std::min(9, static_cast<int>(r.x[j] * 10.0));
      ++bucket[static_cast<std::size_t>(b)];
    }
    for (const int c : bucket) EXPECT_EQ(c, 1) << "dim " << j;
  }
}

TEST(LhsSampling, EvaluatesAndRespectsIntegers) {
  ConstrainedRosenbrock p(3);
  Rng rng(4);
  const auto records = maopt::core::sample_initial_set_lhs(p, 8, rng);
  for (const auto& r : records) {
    EXPECT_EQ(r.metrics.size(), p.num_metrics());
    EXPECT_DOUBLE_EQ(r.x[2], std::round(r.x[2]));
  }
}

}  // namespace
}  // namespace maopt::ckt
