#include "circuits/two_stage_ota.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace maopt::ckt {
namespace {

/// A hand-sized, deliberately conservative design used across the OTA tests.
Vec reference_design() {
  //      L1   L2   L3   L4   L5    W1  W2  W3  W4  W5   R    C    Cf  N1 N2 N3
  return {1.0, 1.0, 1.0, 0.5, 0.5, 20, 10, 5, 40, 20, 2.0, 500, 1000, 4, 4, 4};
}

TEST(TwoStageOta, SpecMatchesTableI) {
  TwoStageOta p;
  EXPECT_EQ(p.dim(), 16u);
  EXPECT_EQ(p.num_metrics(), 9u);  // power + 8 constraints (Eq. 7)
  EXPECT_EQ(p.spec().constraints.size(), 8u);
  EXPECT_EQ(p.parameter_names().size(), 16u);
  // Table I ranges.
  EXPECT_DOUBLE_EQ(p.lower_bounds()[0], 0.18);
  EXPECT_DOUBLE_EQ(p.upper_bounds()[0], 2.0);
  EXPECT_DOUBLE_EQ(p.lower_bounds()[5], 0.22);
  EXPECT_DOUBLE_EQ(p.upper_bounds()[5], 150.0);
  EXPECT_DOUBLE_EQ(p.upper_bounds()[12], 10000.0);  // Cf up to 10 pF
  EXPECT_TRUE(p.integer_mask()[13]);
  EXPECT_TRUE(p.integer_mask()[15]);
  EXPECT_FALSE(p.integer_mask()[0]);
}

TEST(TwoStageOta, ReferenceDesignSimulates) {
  TwoStageOta p;
  const auto r = p.evaluate(p.clip(reference_design()));
  ASSERT_TRUE(r.simulation_ok);
  for (const double m : r.metrics) EXPECT_TRUE(std::isfinite(m));
  // Physically plausible ballpark values.
  EXPECT_GT(r.metrics[TwoStageOta::kPowerMw], 0.01);
  EXPECT_LT(r.metrics[TwoStageOta::kPowerMw], 50.0);
  EXPECT_GT(r.metrics[TwoStageOta::kDcGainDb], 20.0);
  EXPECT_GT(r.metrics[TwoStageOta::kUgfMhz], 0.1);
  EXPECT_GT(r.metrics[TwoStageOta::kSwingV], 0.2);
  EXPECT_GT(r.metrics[TwoStageOta::kNoiseMvrms], 0.0);
}

TEST(TwoStageOta, EvaluationIsDeterministic) {
  TwoStageOta p;
  const Vec x = p.clip(reference_design());
  const auto a = p.evaluate(x);
  const auto b = p.evaluate(x);
  ASSERT_EQ(a.metrics.size(), b.metrics.size());
  for (std::size_t i = 0; i < a.metrics.size(); ++i)
    EXPECT_DOUBLE_EQ(a.metrics[i], b.metrics[i]);
}

TEST(TwoStageOta, WiderInputPairRaisesGain) {
  TwoStageOta p;
  Vec narrow = reference_design();
  Vec wide = reference_design();
  narrow[5] = 5.0;   // W1
  wide[5] = 80.0;
  const auto rn = p.evaluate(p.clip(narrow));
  const auto rw = p.evaluate(p.clip(wide));
  ASSERT_TRUE(rn.simulation_ok);
  ASSERT_TRUE(rw.simulation_ok);
  // gm1 grows with W1 -> first-stage gain grows.
  EXPECT_GT(rw.metrics[TwoStageOta::kDcGainDb], rn.metrics[TwoStageOta::kDcGainDb]);
}

TEST(TwoStageOta, MoreTailCurrentBurnsMorePower) {
  TwoStageOta p;
  Vec small = reference_design();
  Vec big = reference_design();
  small[13] = 1;  // N1
  big[13] = 12;
  const auto rs = p.evaluate(p.clip(small));
  const auto rb = p.evaluate(p.clip(big));
  ASSERT_TRUE(rs.simulation_ok);
  ASSERT_TRUE(rb.simulation_ok);
  EXPECT_GT(rb.metrics[TwoStageOta::kPowerMw], rs.metrics[TwoStageOta::kPowerMw]);
}

TEST(TwoStageOta, RandomDesignsMostlySimulate) {
  TwoStageOta p;
  Rng rng(11);
  int ok = 0;
  const int n = 8;
  for (int i = 0; i < n; ++i) {
    const auto r = p.evaluate(p.random_design(rng));
    if (r.simulation_ok) ++ok;
  }
  // The DC continuation ladder should rescue nearly all random designs.
  EXPECT_GE(ok, n - 1);
}

}  // namespace
}  // namespace maopt::ckt
