#include <gtest/gtest.h>

#include "circuits/process_variation.hpp"
#include "circuits/two_stage_ota.hpp"

namespace maopt::ckt {
namespace {

TEST(Corners, NamesAndTtIsNominal) {
  EXPECT_STREQ(corner_name(ProcessCorner::TT), "TT");
  EXPECT_STREQ(corner_name(ProcessCorner::FF), "FF");
  EXPECT_STREQ(corner_name(ProcessCorner::SF), "SF");
  EXPECT_FALSE(corner_variation(ProcessCorner::TT).enabled());
  EXPECT_TRUE(corner_variation(ProcessCorner::FF).enabled());
}

TEST(Corners, ShiftDirectionsPerType) {
  const auto ff = corner_variation(ProcessCorner::FF, 0.03, 0.10);
  EXPECT_DOUBLE_EQ(ff.nmos_vth_shift, -0.03);
  EXPECT_DOUBLE_EQ(ff.pmos_vth_shift, -0.03);
  EXPECT_DOUBLE_EQ(ff.nmos_kp_factor, 1.10);
  const auto fs = corner_variation(ProcessCorner::FS, 0.03, 0.10);
  EXPECT_DOUBLE_EQ(fs.nmos_vth_shift, -0.03);
  EXPECT_DOUBLE_EQ(fs.pmos_vth_shift, 0.03);
  EXPECT_DOUBLE_EQ(fs.pmos_kp_factor, 0.90);
}

TEST(Corners, VaryModelAppliesTypeSpecificShift) {
  Rng rng(1);
  const auto pv = corner_variation(ProcessCorner::SF);  // slow N, fast P
  const auto n = vary_model(spice::MosModel::nmos_180(), rng, pv);
  const auto p = vary_model(spice::MosModel::pmos_180(), rng, pv);
  EXPECT_GT(n.vth0, spice::MosModel::nmos_180().vth0);
  EXPECT_LT(n.kp, spice::MosModel::nmos_180().kp);
  EXPECT_LT(p.vth0, spice::MosModel::pmos_180().vth0);
  EXPECT_GT(p.kp, spice::MosModel::pmos_180().kp);
}

TEST(Corners, OtaPowerOrdersWithCornerSpeed) {
  // Faster devices at fixed bias geometry draw more current: FF power must
  // exceed SS power, with TT in between.
  TwoStageOta p;
  const linalg::Vec x =
      p.clip({1.0, 1.0, 1.0, 0.5, 0.5, 20, 10, 5, 40, 20, 2.0, 500, 1000, 4, 4, 4});
  const auto results = evaluate_corners(p, x);
  ASSERT_EQ(results.size(), 5u);
  for (const auto& r : results) ASSERT_TRUE(r.simulation_ok);
  const double tt = results[0].metrics[TwoStageOta::kPowerMw];
  const double ff = results[1].metrics[TwoStageOta::kPowerMw];
  const double ss = results[2].metrics[TwoStageOta::kPowerMw];
  EXPECT_GT(ff, tt);
  EXPECT_LT(ss, tt);
}

TEST(Corners, EvaluationResetsToNominal) {
  TwoStageOta p;
  const linalg::Vec x =
      p.clip({1.0, 1.0, 1.0, 0.5, 0.5, 20, 10, 5, 40, 20, 2.0, 500, 1000, 4, 4, 4});
  const auto nominal = p.evaluate(x);
  evaluate_corners(p, x);
  EXPECT_EQ(p.evaluate(x).metrics, nominal.metrics);
}

TEST(Corners, TtCornerMatchesNominalEvaluation) {
  TwoStageOta p;
  const linalg::Vec x =
      p.clip({1.0, 1.0, 1.0, 0.5, 0.5, 20, 10, 5, 40, 20, 2.0, 500, 1000, 4, 4, 4});
  const auto nominal = p.evaluate(x);
  const auto results = evaluate_corners(p, x);
  EXPECT_EQ(results[0].metrics, nominal.metrics);
}

}  // namespace
}  // namespace maopt::ckt
