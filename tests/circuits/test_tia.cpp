#include "circuits/three_stage_tia.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace maopt::ckt {
namespace {

Vec reference_design() {
  //      L1   L2   L3   L4   L5    W1  W2  W3  W4  W5   R   Cf  N1 N2 N3
  return {0.4, 0.4, 0.4, 0.4, 0.4, 30, 30, 30, 5, 20, 20.0, 200, 2, 2, 2};
}

TEST(ThreeStageTia, SpecMatchesTableIII) {
  ThreeStageTia p;
  EXPECT_EQ(p.dim(), 15u);
  EXPECT_EQ(p.num_metrics(), 4u);  // power + 3 constraints (Eq. 8)
  EXPECT_EQ(p.spec().constraints.size(), 3u);
  EXPECT_DOUBLE_EQ(p.upper_bounds()[10], 100.0);  // R up to 100 kOhm
  EXPECT_DOUBLE_EQ(p.upper_bounds()[11], 2000.0); // Cf up to 2 pF
  EXPECT_TRUE(p.integer_mask()[12]);
}

TEST(ThreeStageTia, ReferenceDesignSimulates) {
  ThreeStageTia p;
  const auto r = p.evaluate(p.clip(reference_design()));
  ASSERT_TRUE(r.simulation_ok);
  for (const double m : r.metrics) EXPECT_TRUE(std::isfinite(m));
  EXPECT_GT(r.metrics[ThreeStageTia::kPowerMw], 0.001);
  EXPECT_LT(r.metrics[ThreeStageTia::kPowerMw], 100.0);
  // With the loop closed, Z_T ~ R = 20 kOhm = 86 dBOhm.
  EXPECT_GT(r.metrics[ThreeStageTia::kZtDbOhm], 60.0);
  EXPECT_LT(r.metrics[ThreeStageTia::kZtDbOhm], 110.0);
  EXPECT_GT(r.metrics[ThreeStageTia::kInputNoisePa], 0.0);
}

TEST(ThreeStageTia, TransimpedanceTracksFeedbackResistor) {
  ThreeStageTia p;
  Vec lo = reference_design();
  Vec hi = reference_design();
  lo[10] = 5.0;   // 5 kOhm
  hi[10] = 50.0;  // 50 kOhm
  const auto rl = p.evaluate(p.clip(lo));
  const auto rh = p.evaluate(p.clip(hi));
  ASSERT_TRUE(rl.simulation_ok);
  ASSERT_TRUE(rh.simulation_ok);
  const double dzt =
      rh.metrics[ThreeStageTia::kZtDbOhm] - rl.metrics[ThreeStageTia::kZtDbOhm];
  // 10x resistor = +20 dB if loop gain is high; accept a generous window.
  EXPECT_GT(dzt, 10.0);
  EXPECT_LT(dzt, 26.0);
}

TEST(ThreeStageTia, EvaluationIsDeterministic) {
  ThreeStageTia p;
  const Vec x = p.clip(reference_design());
  const auto a = p.evaluate(x);
  const auto b = p.evaluate(x);
  for (std::size_t i = 0; i < a.metrics.size(); ++i)
    EXPECT_DOUBLE_EQ(a.metrics[i], b.metrics[i]);
}

TEST(ThreeStageTia, RandomDesignsMostlySimulate) {
  ThreeStageTia p;
  Rng rng(13);
  int ok = 0;
  const int n = 8;
  for (int i = 0; i < n; ++i)
    if (p.evaluate(p.random_design(rng)).simulation_ok) ++ok;
  EXPECT_GE(ok, n - 1);
}

}  // namespace
}  // namespace maopt::ckt
