#include "circuits/process_variation.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "circuits/analytic_problems.hpp"
#include "circuits/two_stage_ota.hpp"

namespace maopt::ckt {
namespace {

TEST(VaryModel, NominalWhenSigmasZero) {
  Rng rng(1);
  const auto nominal = spice::MosModel::nmos_180();
  const auto varied = vary_model(nominal, rng, ProcessVariation{});
  EXPECT_DOUBLE_EQ(varied.vth0, nominal.vth0);
  EXPECT_DOUBLE_EQ(varied.kp, nominal.kp);
}

TEST(VaryModel, PerturbsWithRequestedSpread) {
  Rng rng(2);
  const auto nominal = spice::MosModel::nmos_180();
  ProcessVariation pv;
  pv.sigma_vth = 0.02;
  pv.sigma_kp_rel = 0.10;
  double vth_var = 0.0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    const auto m = vary_model(nominal, rng, pv);
    vth_var += std::pow(m.vth0 - nominal.vth0, 2);
    EXPECT_GT(m.kp, 0.0);
  }
  EXPECT_NEAR(std::sqrt(vth_var / n), 0.02, 0.002);
}

TEST(ProcessVariation, AnalyticProblemsIgnoreIt) {
  ConstrainedQuadratic p(3);
  EXPECT_FALSE(p.supports_process_variation());
  const Vec x{0.3, 0.3, 0.3};
  const auto before = p.evaluate(x);
  ProcessVariation pv;
  pv.sigma_vth = 0.1;
  p.set_process_variation(pv);  // no-op
  const auto after = p.evaluate(x);
  EXPECT_EQ(before.metrics, after.metrics);
}

TEST(ProcessVariation, OtaMetricsShiftUnderMismatch) {
  TwoStageOta p;
  EXPECT_TRUE(p.supports_process_variation());
  const Vec x = p.clip({1.0, 1.0, 1.0, 0.5, 0.5, 20, 10, 5, 40, 20, 2.0, 500, 1000, 4, 4, 4});
  const auto nominal = p.evaluate(x);
  ASSERT_TRUE(nominal.simulation_ok);

  ProcessVariation pv;
  pv.sigma_vth = 0.02;
  pv.sigma_kp_rel = 0.05;
  pv.seed = 1;
  p.set_process_variation(pv);
  const auto varied = p.evaluate(x);
  ASSERT_TRUE(varied.simulation_ok);
  // Mismatch must move at least the matching-sensitive metrics (CMRR).
  EXPECT_NE(nominal.metrics[TwoStageOta::kCmrrDb], varied.metrics[TwoStageOta::kCmrrDb]);

  // Same seed -> identical result; different seed -> different result.
  const auto varied_again = p.evaluate(x);
  EXPECT_EQ(varied.metrics, varied_again.metrics);
  pv.seed = 2;
  p.set_process_variation(pv);
  const auto other_seed = p.evaluate(x);
  EXPECT_NE(varied.metrics, other_seed.metrics);

  p.set_process_variation(ProcessVariation{});
  const auto back = p.evaluate(x);
  EXPECT_EQ(back.metrics, nominal.metrics);
}

TEST(ProcessVariation, MismatchVisiblyMovesCmrr) {
  // In this topology the nominal common-mode gain is set by the finite tail
  // impedance (not by matching), so mismatch can move CMRR either way — but
  // it must move it measurably in essentially every instance.
  TwoStageOta p;
  const Vec x = p.clip({1.0, 1.0, 1.0, 0.5, 0.5, 20, 10, 5, 40, 20, 2.0, 500, 1000, 4, 4, 4});
  const double nominal_cmrr = p.evaluate(x).metrics[TwoStageOta::kCmrrDb];
  int moved = 0;
  const int n = 6;
  for (int k = 0; k < n; ++k) {
    ProcessVariation pv;
    pv.sigma_vth = 0.01;
    pv.seed = static_cast<std::uint64_t>(k);
    p.set_process_variation(pv);
    const auto r = p.evaluate(x);
    if (r.simulation_ok && std::abs(r.metrics[TwoStageOta::kCmrrDb] - nominal_cmrr) > 0.1) ++moved;
  }
  p.set_process_variation(ProcessVariation{});
  EXPECT_GE(moved, n - 1);
}

TEST(EstimateYield, CountsAndResetsToNominal) {
  TwoStageOta p;
  const Vec x = p.clip({1.0, 1.0, 1.0, 0.5, 0.5, 20, 10, 5, 40, 20, 2.0, 500, 1000, 4, 4, 4});
  const auto nominal = p.evaluate(x);
  const YieldResult y = estimate_yield(p, x, 5, 0.01, 0.03);
  EXPECT_EQ(y.total, 5);
  EXPECT_EQ(y.metric_samples.size(), 5u);
  EXPECT_GE(y.feasible, 0);
  EXPECT_LE(y.feasible, 5);
  EXPECT_GE(y.yield(), 0.0);
  EXPECT_LE(y.yield(), 1.0);
  // State restored.
  EXPECT_EQ(p.evaluate(x).metrics, nominal.metrics);
}

TEST(EstimateYield, ZeroSigmaYieldMatchesNominalFeasibility) {
  TwoStageOta p;
  const Vec x = p.clip({1.0, 1.0, 1.0, 0.5, 0.5, 20, 10, 5, 40, 20, 2.0, 500, 1000, 4, 4, 4});
  const bool nominal_feasible = p.feasible(p.evaluate(x).metrics);
  const YieldResult y = estimate_yield(p, x, 3, 0.0, 0.0);
  EXPECT_EQ(y.yield(), nominal_feasible ? 1.0 : 0.0);
}

TEST(ValidateProcessVariation, ContractChecks) {
  EXPECT_NO_THROW(validate_process_variation(ProcessVariation{}));

  ProcessVariation negative_sigma;
  negative_sigma.sigma_vth = -0.01;
  EXPECT_THROW(validate_process_variation(negative_sigma), std::invalid_argument);

  ProcessVariation nan_sigma;
  nan_sigma.sigma_kp_rel = std::nan("");
  EXPECT_THROW(validate_process_variation(nan_sigma), std::invalid_argument);

  ProcessVariation inf_shift;
  inf_shift.nmos_vth_shift = std::numeric_limits<double>::infinity();
  EXPECT_THROW(validate_process_variation(inf_shift), std::invalid_argument);

  ProcessVariation zero_kp;
  zero_kp.pmos_kp_factor = 0.0;
  EXPECT_THROW(validate_process_variation(zero_kp), std::invalid_argument);

  ProcessVariation negative_kp;
  negative_kp.nmos_kp_factor = -1.0;
  EXPECT_THROW(validate_process_variation(negative_kp), std::invalid_argument);
}

TEST(EvaluateAt, RejectsEnabledVariationOnUnawareProblem) {
  ConstrainedQuadratic p(3);
  ProcessVariation pv;
  pv.sigma_vth = 0.02;
  EXPECT_THROW(p.evaluate_at({0.3, 0.3, 0.3}, pv), std::invalid_argument);
  EXPECT_THROW(p.make_session_at(pv), std::invalid_argument);
  // Nominal pv is fine and matches evaluate().
  const Vec x{0.3, 0.3, 0.3};
  EXPECT_EQ(p.evaluate_at(x, ProcessVariation{}).metrics, p.evaluate(x).metrics);
}

TEST(EvaluateAt, DoesNotTouchAmbientVariationState) {
  TwoStageOta p;
  const Vec x = p.clip({1.0, 1.0, 1.0, 0.5, 0.5, 20, 10, 5, 40, 20, 2.0, 500, 1000, 4, 4, 4});
  const auto nominal = p.evaluate(x);

  ProcessVariation pv;
  pv.sigma_vth = 0.02;
  pv.seed = 7;
  const auto varied = p.evaluate_at(x, pv);
  ASSERT_TRUE(varied.simulation_ok);
  EXPECT_NE(varied.metrics, nominal.metrics);
  // The ambient state was never mutated: evaluate() still reports nominal.
  EXPECT_EQ(p.evaluate(x).metrics, nominal.metrics);

  // evaluate_at matches the legacy set_process_variation + evaluate result.
  p.set_process_variation(pv);
  EXPECT_EQ(p.evaluate(x).metrics, varied.metrics);
  p.set_process_variation(ProcessVariation{});
}

TEST(EvaluateAt, SessionPinnedToVariationMatchesEvaluateAt) {
  TwoStageOta p;
  const Vec x = p.clip({1.0, 1.0, 1.0, 0.5, 0.5, 20, 10, 5, 40, 20, 2.0, 500, 1000, 4, 4, 4});
  ProcessVariation pv;
  pv.sigma_vth = 0.015;
  pv.seed = 3;
  const auto direct = p.evaluate_at(x, pv);
  auto session = p.make_session_at(pv);
  EXPECT_EQ(session->evaluate(x).metrics, direct.metrics);
  EXPECT_EQ(session->evaluate(x).metrics, direct.metrics);  // reusable
}

}  // namespace
}  // namespace maopt::ckt
