#include "circuits/ldo_regulator.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace maopt::ckt {
namespace {

Vec reference_design() {
  //      L1   L2   L3   L4   L5    W1  W2  W3  W4   W5   R1  R2   C   N1 N2 N3
  return {1.0, 1.0, 1.0, 1.0, 0.5, 50, 20, 10, 20, 200, 20, 20, 500, 2, 4, 20};
}

/// Coarse transient profile keeps the unit tests fast.
LdoTranProfile fast_profile() {
  LdoTranProfile prof;
  prof.t_stop = 10e-6;
  prof.dt = 50e-9;
  prof.t_event = 1e-6;
  return prof;
}

TEST(LdoRegulator, SpecMatchesTableV) {
  LdoRegulator p;
  EXPECT_EQ(p.dim(), 16u);
  EXPECT_EQ(p.num_metrics(), 10u);  // Iq + 9 constraints (Eq. 9)
  EXPECT_EQ(p.spec().constraints.size(), 9u);
  EXPECT_DOUBLE_EQ(p.lower_bounds()[0], 0.32);
  EXPECT_DOUBLE_EQ(p.upper_bounds()[0], 3.0);
  EXPECT_DOUBLE_EQ(p.upper_bounds()[5], 200.0);
  EXPECT_TRUE(p.integer_mask()[13]);
}

TEST(LdoRegulator, ReferenceDesignRegulates) {
  LdoRegulator p(fast_profile());
  const auto r = p.evaluate(p.clip(reference_design()));
  ASSERT_TRUE(r.simulation_ok);
  for (const double m : r.metrics) EXPECT_TRUE(std::isfinite(m));
  // Output near the 1.8 V target (divider R1 = R2, vref = 0.9).
  EXPECT_GT(r.metrics[LdoRegulator::kVoutMinV], 1.5);
  EXPECT_LT(r.metrics[LdoRegulator::kVoutMaxV], 2.1);
  EXPECT_GT(r.metrics[LdoRegulator::kQuiescentMa], 0.0);
  EXPECT_GT(r.metrics[LdoRegulator::kPsrrDb], 10.0);
}

TEST(LdoRegulator, VoutMinAndMaxReportSameMeasurement) {
  LdoRegulator p(fast_profile());
  const auto r = p.evaluate(p.clip(reference_design()));
  ASSERT_TRUE(r.simulation_ok);
  EXPECT_DOUBLE_EQ(r.metrics[LdoRegulator::kVoutMinV], r.metrics[LdoRegulator::kVoutMaxV]);
}

TEST(LdoRegulator, DividerRatioShiftsOutput) {
  LdoRegulator p(fast_profile());
  Vec balanced = reference_design();
  Vec skewed = reference_design();
  skewed[10] = 40.0;  // R1 larger -> Vout = vref*(1+R1/R2) larger
  const auto rb = p.evaluate(p.clip(balanced));
  const auto rs = p.evaluate(p.clip(skewed));
  ASSERT_TRUE(rb.simulation_ok);
  ASSERT_TRUE(rs.simulation_ok);
  EXPECT_GT(rs.metrics[LdoRegulator::kVoutMinV], rb.metrics[LdoRegulator::kVoutMinV] + 0.3);
}

TEST(LdoRegulator, EvaluationIsDeterministic) {
  LdoRegulator p(fast_profile());
  const Vec x = p.clip(reference_design());
  const auto a = p.evaluate(x);
  const auto b = p.evaluate(x);
  for (std::size_t i = 0; i < a.metrics.size(); ++i)
    EXPECT_DOUBLE_EQ(a.metrics[i], b.metrics[i]);
}

TEST(LdoRegulator, RandomDesignsMostlySimulate) {
  LdoRegulator p(fast_profile());
  Rng rng(17);
  int ok = 0;
  const int n = 5;
  for (int i = 0; i < n; ++i)
    if (p.evaluate(p.random_design(rng)).simulation_ok) ++ok;
  EXPECT_GE(ok, n - 1);
}

}  // namespace
}  // namespace maopt::ckt
