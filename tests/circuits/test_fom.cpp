#include "circuits/fom.hpp"

#include <gtest/gtest.h>

#include "circuits/analytic_problems.hpp"

namespace maopt::ckt {
namespace {

class FomTest : public ::testing::Test {
 protected:
  FomTest() : problem_(2, 0.3, 0.25, 0.6), fom_(problem_, 1.0) {}
  ConstrainedQuadratic problem_;  // metrics = [f0, mean, x0<=0.6]
  FomEvaluator fom_;
};

TEST_F(FomTest, FeasibleDesignHasOnlyTargetTerm) {
  // w0 = 1 (analytic problem), f0_ref = 1.
  const double g = fom_(Vec{0.42, 0.5, 0.3});
  EXPECT_DOUBLE_EQ(g, 0.42);
}

TEST_F(FomTest, ViolationAddsPenalty) {
  const double g_ok = fom_(Vec{0.1, 0.5, 0.3});
  const double g_bad = fom_(Vec{0.1, 0.125, 0.3});  // mean violated by 50%
  EXPECT_DOUBLE_EQ(g_bad - g_ok, 0.5);
}

TEST_F(FomTest, PenaltyClampsAtOnePerConstraint) {
  const double g = fom_(Vec{0.0, -100.0, 0.3});  // enormous violation
  EXPECT_DOUBLE_EQ(g, 1.0);
}

TEST_F(FomTest, FeasibleAlwaysBeatsClampedInfeasible) {
  // A feasible design with moderate f0 must outrank any design with a fully
  // clamped violation if w0*f0/f0_ref < 1 — the circuits use w0 = 0.01.
  FomEvaluator fom(problem_, 10.0);  // target term = f0/10
  const double feasible = fom(Vec{5.0, 0.5, 0.3});
  const double infeasible = fom(Vec{0.0, -100.0, 0.3});
  EXPECT_LT(feasible, infeasible);
}

TEST_F(FomTest, GradientTargetTerm) {
  const Vec g = fom_.gradient(Vec{0.42, 0.5, 0.3});
  EXPECT_DOUBLE_EQ(g[0], 1.0);  // w0 / f0_ref
  EXPECT_DOUBLE_EQ(g[1], 0.0);  // satisfied constraint: flat
  EXPECT_DOUBLE_EQ(g[2], 0.0);
}

TEST_F(FomTest, GradientOfActiveGreaterEqualConstraintIsNegative) {
  const Vec g = fom_.gradient(Vec{0.1, 0.2, 0.3});  // mean 0.2 < 0.25
  EXPECT_LT(g[1], 0.0);  // increasing the metric reduces the violation
}

TEST_F(FomTest, GradientOfActiveLessEqualConstraintIsPositive) {
  const Vec g = fom_.gradient(Vec{0.1, 0.5, 0.7});  // x0 0.7 > 0.6
  EXPECT_GT(g[2], 0.0);
}

TEST_F(FomTest, GradientZeroWhenClamped) {
  const Vec g = fom_.gradient(Vec{0.1, -100.0, 0.3});
  EXPECT_DOUBLE_EQ(g[1], 0.0);
}

TEST_F(FomTest, GradientMatchesFiniteDifference) {
  const Vec m{0.3, 0.22, 0.65};  // both constraints mildly active
  const Vec g = fom_.gradient(m);
  const double eps = 1e-7;
  for (std::size_t i = 0; i < m.size(); ++i) {
    Vec mp = m, mm = m;
    mp[i] += eps;
    mm[i] -= eps;
    EXPECT_NEAR(g[i], (fom_(mp) - fom_(mm)) / (2 * eps), 1e-6) << i;
  }
}

TEST_F(FomTest, FitReferenceUsesMedianAbsTarget) {
  const std::vector<Vec> rows{{2.0, 1, 1}, {4.0, 1, 1}, {8.0, 1, 1}};
  const auto fom = FomEvaluator::fit_reference(problem_, rows);
  EXPECT_DOUBLE_EQ(fom.f0_reference(), 4.0);
}

TEST_F(FomTest, FitReferenceGuardsAgainstZero) {
  const std::vector<Vec> rows{{0.0, 1, 1}};
  const auto fom = FomEvaluator::fit_reference(problem_, rows);
  EXPECT_GT(fom.f0_reference(), 0.0);
}

TEST_F(FomTest, InvalidReferenceThrows) {
  EXPECT_THROW(FomEvaluator(problem_, 0.0), std::invalid_argument);
  EXPECT_THROW(FomEvaluator(problem_, -1.0), std::invalid_argument);
}

TEST_F(FomTest, MetricCountMismatchThrows) {
  EXPECT_THROW(fom_(Vec{1.0, 2.0}), std::invalid_argument);
}

TEST_F(FomTest, WeightedConstraintScalesPenalty) {
  ProblemSpec spec = problem_.spec();
  // Build a second evaluator through a modified problem is overkill here;
  // instead check weight semantics via normalized_violation + manual math.
  const ConstraintSpec c{"w", "", ConstraintKind::GreaterEqual, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(std::min(1.0, c.weight * normalized_violation(c, 0.75)), 0.5);
}

}  // namespace
}  // namespace maopt::ckt
