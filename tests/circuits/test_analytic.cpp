#include "circuits/analytic_problems.hpp"

#include <gtest/gtest.h>

namespace maopt::ckt {
namespace {

TEST(ConstrainedQuadratic, OptimumHasZeroTarget) {
  ConstrainedQuadratic p(4);
  const auto r = p.evaluate({0.3, 0.3, 0.3, 0.3});
  EXPECT_TRUE(r.simulation_ok);
  EXPECT_NEAR(r.metrics[0], 0.0, 1e-12);
  EXPECT_TRUE(p.feasible(r.metrics));
}

TEST(ConstrainedQuadratic, MetricsMatchDefinition) {
  ConstrainedQuadratic p(2, 0.0);
  const auto r = p.evaluate({0.6, 0.8});
  EXPECT_NEAR(r.metrics[0], 0.36 + 0.64, 1e-12);
  EXPECT_NEAR(r.metrics[1], 0.7, 1e-12);   // mean
  EXPECT_NEAR(r.metrics[2], 0.6, 1e-12);   // x0
}

TEST(ConstrainedQuadratic, LowMeanIsInfeasible) {
  ConstrainedQuadratic p(2);
  const auto r = p.evaluate({0.0, 0.0});
  EXPECT_FALSE(p.feasible(r.metrics));
}

TEST(ConstrainedRosenbrock, GlobalOptimumValue) {
  ConstrainedRosenbrock p(3);
  const auto r = p.evaluate({1.0, 1.0, 1.0});
  EXPECT_NEAR(r.metrics[0], 0.0, 1e-12);
  EXPECT_TRUE(p.feasible(r.metrics));  // ||x||^2 = 3 <= 4.5
}

TEST(ConstrainedRosenbrock, NormConstraintBinds) {
  ConstrainedRosenbrock p(2);  // radius^2 = 3.5
  const auto r = p.evaluate({2.0, 2.0});
  EXPECT_FALSE(p.feasible(r.metrics));
  EXPECT_NEAR(r.metrics[1], 8.0, 1e-12);
}

TEST(ConstrainedRosenbrock, KnownNonOptimalValue) {
  ConstrainedRosenbrock p(2);
  const auto r = p.evaluate({0.0, 0.0});
  EXPECT_NEAR(r.metrics[0], 1.0, 1e-12);
}

TEST(AnalyticProblems, EvaluationIsDeterministic) {
  ConstrainedQuadratic p(5);
  Rng rng(3);
  const Vec x = p.random_design(rng);
  const auto a = p.evaluate(x);
  const auto b = p.evaluate(x);
  EXPECT_EQ(a.metrics, b.metrics);
}

TEST(AnalyticProblems, ParameterNamesSized) {
  ConstrainedQuadratic p(3);
  EXPECT_EQ(p.parameter_names().size(), 3u);
  ConstrainedRosenbrock q(4);
  EXPECT_EQ(q.parameter_names().size(), 4u);
}

}  // namespace
}  // namespace maopt::ckt
