#include "circuits/folded_cascode_ota.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace maopt::ckt {
namespace {

Vec reference_design() {
  //      L1   L2   L3   L4   L5    W1  W2  W3  W4  W5     C  N1 N2 N3
  return {0.5, 1.0, 1.0, 0.4, 0.5, 40, 20, 15, 20, 30, 1000, 2, 2, 2};
}

TEST(FoldedCascodeOta, SpecShape) {
  FoldedCascodeOta p;
  EXPECT_EQ(p.dim(), 14u);
  EXPECT_EQ(p.num_metrics(), 7u);
  EXPECT_EQ(p.spec().constraints.size(), 6u);
  EXPECT_EQ(p.parameter_names().size(), 14u);
  EXPECT_TRUE(p.integer_mask()[11]);
  EXPECT_FALSE(p.integer_mask()[10]);
}

TEST(FoldedCascodeOta, ReferenceDesignSimulatesWithCascodeGain) {
  FoldedCascodeOta p;
  const auto r = p.evaluate(p.clip(reference_design()));
  ASSERT_TRUE(r.simulation_ok);
  for (const double m : r.metrics) EXPECT_TRUE(std::isfinite(m));
  // Single-stage cascode: high gain at sub-mW power.
  EXPECT_GT(r.metrics[FoldedCascodeOta::kDcGainDb], 60.0);
  EXPECT_LT(r.metrics[FoldedCascodeOta::kPowerMw], 5.0);
  EXPECT_GT(r.metrics[FoldedCascodeOta::kPhaseMarginDeg], 45.0);
  EXPECT_GT(r.metrics[FoldedCascodeOta::kUgfMhz], 10.0);
}

TEST(FoldedCascodeOta, SingleStageHasBetterPhaseMarginThanLowLoadCap) {
  // Bigger load cap pushes the dominant pole down: PM improves (or stays
  // ~90) while UGF drops.
  FoldedCascodeOta p;
  Vec small_c = reference_design();
  Vec big_c = reference_design();
  small_c[10] = 200;
  big_c[10] = 2000;
  const auto rs = p.evaluate(p.clip(small_c));
  const auto rb = p.evaluate(p.clip(big_c));
  ASSERT_TRUE(rs.simulation_ok);
  ASSERT_TRUE(rb.simulation_ok);
  EXPECT_GT(rs.metrics[FoldedCascodeOta::kUgfMhz], rb.metrics[FoldedCascodeOta::kUgfMhz]);
}

TEST(FoldedCascodeOta, EvaluationIsDeterministic) {
  FoldedCascodeOta p;
  const Vec x = p.clip(reference_design());
  const auto a = p.evaluate(x);
  const auto b = p.evaluate(x);
  for (std::size_t i = 0; i < a.metrics.size(); ++i)
    EXPECT_DOUBLE_EQ(a.metrics[i], b.metrics[i]);
}

TEST(FoldedCascodeOta, RandomDesignsSimulate) {
  FoldedCascodeOta p;
  Rng rng(23);
  int ok = 0;
  for (int i = 0; i < 6; ++i)
    if (p.evaluate(p.random_design(rng)).simulation_ok) ++ok;
  EXPECT_GE(ok, 5);
}

}  // namespace
}  // namespace maopt::ckt
