#include "circuits/resilient_problem.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <thread>

#include "../support/variation_test_problems.hpp"
#include "circuits/analytic_problems.hpp"

namespace maopt::ckt {
namespace {

/// Scriptable inner problem: fails the first `fail_first` calls with the
/// configured mode, then behaves like a clean quadratic.
class FlakyProblem final : public SizingProblem {
 public:
  enum class Mode { Throw, NotOk, NanMetrics, Sleep };

  FlakyProblem(std::size_t dim, Mode mode, int fail_first, double sleep_seconds = 0.0)
      : inner_(dim), mode_(mode), fail_first_(fail_first), sleep_seconds_(sleep_seconds) {}

  const ProblemSpec& spec() const override { return inner_.spec(); }
  std::size_t dim() const override { return inner_.dim(); }
  const Vec& lower_bounds() const override { return inner_.lower_bounds(); }
  const Vec& upper_bounds() const override { return inner_.upper_bounds(); }
  const std::vector<bool>& integer_mask() const override { return inner_.integer_mask(); }
  std::vector<std::string> parameter_names() const override { return inner_.parameter_names(); }

  EvalResult evaluate(const Vec& x) const override {
    const int call = calls_.fetch_add(1);
    if (call < fail_first_) {
      switch (mode_) {
        case Mode::Throw: throw std::runtime_error("flaky: singular Jacobian");
        case Mode::NotOk: {
          EvalResult r;
          r.metrics = failure_metrics();
          r.simulation_ok = false;
          return r;
        }
        case Mode::NanMetrics: {
          EvalResult r = inner_.evaluate(x);
          r.metrics[0] = std::nan("");
          return r;
        }
        case Mode::Sleep:
          std::this_thread::sleep_for(
              std::chrono::milliseconds(static_cast<int>(sleep_seconds_ * 1e3)));
          break;
      }
    }
    return inner_.evaluate(x);
  }

  int calls() const { return calls_.load(); }

 private:
  ConstrainedQuadratic inner_;
  Mode mode_;
  int fail_first_;
  double sleep_seconds_;
  mutable std::atomic<int> calls_{0};
};

TEST(ResilientEvaluator, ForwardsProblemShape) {
  ConstrainedQuadratic inner(5);
  const ResilientEvaluator res(inner);
  EXPECT_EQ(res.dim(), inner.dim());
  EXPECT_EQ(res.num_metrics(), inner.num_metrics());
  EXPECT_EQ(res.lower_bounds(), inner.lower_bounds());
  EXPECT_EQ(res.upper_bounds(), inner.upper_bounds());
  EXPECT_EQ(res.parameter_names(), inner.parameter_names());
  EXPECT_EQ(res.spec().name, inner.spec().name);
}

TEST(ResilientEvaluator, CleanProblemPassesThroughUntouched) {
  ConstrainedQuadratic inner(4);
  const ResilientEvaluator res(inner);
  Rng rng(3);
  const Vec x = inner.random_design(rng);
  const EvalResult direct = inner.evaluate(x);
  const EvalResult wrapped = res.evaluate(x);
  ASSERT_TRUE(wrapped.simulation_ok);
  EXPECT_EQ(wrapped.metrics, direct.metrics);
  const FailureStats s = res.stats();
  EXPECT_EQ(s.evaluations, 1u);
  EXPECT_EQ(s.attempts, 1u);
  EXPECT_EQ(s.retries, 0u);
  EXPECT_EQ(s.failures, 0u);
}

TEST(ResilientEvaluator, CapturesExceptionsAsFailedResults) {
  FlakyProblem flaky(4, FlakyProblem::Mode::Throw, 1 << 20);
  ResilientConfig cfg;
  cfg.max_retries = 1;
  const ResilientEvaluator res(flaky, cfg);
  Rng rng(4);
  EvalResult r;
  EXPECT_NO_THROW(r = res.evaluate(flaky.random_design(rng)));
  EXPECT_FALSE(r.simulation_ok);
  EXPECT_EQ(r.metrics, flaky.failure_metrics());
  const FailureStats s = res.stats();
  EXPECT_EQ(s.failures, 1u);
  EXPECT_EQ(s.by_kind[static_cast<std::size_t>(FailureKind::Exception)], 2u);  // 1 + 1 retry
}

TEST(ResilientEvaluator, RetriesRecoverTransientFailures) {
  // Fails the first two calls, then succeeds: 2 retries rescue the eval.
  FlakyProblem flaky(4, FlakyProblem::Mode::Throw, 2);
  ResilientConfig cfg;
  cfg.max_retries = 2;
  const ResilientEvaluator res(flaky, cfg);
  Rng rng(5);
  const EvalResult r = res.evaluate(flaky.random_design(rng));
  EXPECT_TRUE(r.simulation_ok);
  const FailureStats s = res.stats();
  EXPECT_EQ(s.evaluations, 1u);
  EXPECT_EQ(s.attempts, 3u);
  EXPECT_EQ(s.retries, 2u);
  EXPECT_EQ(s.failures, 0u);
  EXPECT_EQ(flaky.calls(), 3);
}

TEST(ResilientEvaluator, RetryJitterStaysWithinBounds) {
  FlakyProblem flaky(6, FlakyProblem::Mode::NotOk, 1);
  ResilientConfig cfg;
  cfg.max_retries = 3;
  cfg.retry_jitter_frac = 0.2;  // large jitter to stress the clip
  const ResilientEvaluator res(flaky, cfg);
  const EvalResult r = res.evaluate(res.lower_bounds());  // corner design
  EXPECT_TRUE(r.simulation_ok);
}

TEST(ResilientEvaluator, ScrubsNonFiniteMetrics) {
  FlakyProblem flaky(4, FlakyProblem::Mode::NanMetrics, 1 << 20);
  ResilientConfig cfg;
  cfg.max_retries = 0;
  const ResilientEvaluator res(flaky, cfg);
  Rng rng(6);
  const EvalResult r = res.evaluate(flaky.random_design(rng));
  EXPECT_FALSE(r.simulation_ok);
  for (const double m : r.metrics) EXPECT_TRUE(std::isfinite(m));
  EXPECT_EQ(res.stats().by_kind[static_cast<std::size_t>(FailureKind::NonFinite)], 1u);
}

TEST(ResilientEvaluator, PlausibilityScreenCatchesSilentGarbage) {
  ConstrainedQuadratic inner(4);
  FaultInjectionConfig fcfg;
  fcfg.garbage_rate = 1.0;  // solver always "succeeds" with absurd metrics
  const FaultInjectingProblem garbage(inner, fcfg);
  ResilientConfig cfg;
  cfg.max_retries = 0;
  cfg.max_metric_magnitude = 1e6;  // injected garbage is ~1e12
  const ResilientEvaluator res(garbage, cfg);
  Rng rng(13);
  const EvalResult r = res.evaluate(inner.random_design(rng));
  EXPECT_FALSE(r.simulation_ok);
  EXPECT_EQ(res.stats().by_kind[static_cast<std::size_t>(FailureKind::NonFinite)], 1u);
}

TEST(ResilientEvaluator, DeadlineConvertsHangsToTimeouts) {
  FlakyProblem flaky(4, FlakyProblem::Mode::Sleep, 1 << 20, /*sleep_seconds=*/0.25);
  ResilientConfig cfg;
  cfg.deadline_seconds = 0.02;
  cfg.max_retries = 0;
  Rng rng(7);
  Vec x;
  {
    const ResilientEvaluator res(flaky, cfg);
    x = flaky.random_design(rng);
    const EvalResult r = res.evaluate(x);
    EXPECT_FALSE(r.simulation_ok);
    EXPECT_EQ(res.stats().by_kind[static_cast<std::size_t>(FailureKind::Timeout)], 1u);
    EXPECT_EQ(res.stats().failures, 1u);
    // Destructor must block until the abandoned attempt drains, so `flaky`
    // (destroyed after `res`) is never used after free.
  }
}

TEST(ResilientEvaluator, DeadlineLetsFastEvaluationsThrough) {
  ConstrainedQuadratic inner(4);
  ResilientConfig cfg;
  cfg.deadline_seconds = 5.0;
  const ResilientEvaluator res(inner, cfg);
  Rng rng(8);
  const EvalResult r = res.evaluate(inner.random_design(rng));
  EXPECT_TRUE(r.simulation_ok);
  EXPECT_EQ(res.stats().failures, 0u);
}

TEST(ResilientEvaluator, ReportMentionsEveryFailureKind) {
  ConstrainedQuadratic inner(3);
  const ResilientEvaluator res(inner);
  const std::string report = res.stats().report();
  EXPECT_NE(report.find("timeout"), std::string::npos);
  EXPECT_NE(report.find("non-convergence"), std::string::npos);
  EXPECT_NE(report.find("non-finite"), std::string::npos);
  EXPECT_NE(report.find("exception"), std::string::npos);
  EXPECT_NE(report.find("0 evals"), std::string::npos);
}

TEST(FaultInjection, ZeroRatesPassThrough) {
  ConstrainedQuadratic inner(4);
  const FaultInjectingProblem faulty(inner, FaultInjectionConfig{});
  Rng rng(9);
  for (int i = 0; i < 20; ++i) {
    const Vec x = inner.random_design(rng);
    EXPECT_EQ(faulty.evaluate(x).metrics, inner.evaluate(x).metrics);
  }
  EXPECT_EQ(faulty.injected(), 0u);
}

TEST(FaultInjection, DeterministicInDesignNotCallOrder) {
  ConstrainedQuadratic inner(4);
  FaultInjectionConfig cfg;
  cfg.throw_rate = 0.5;
  const FaultInjectingProblem faulty(inner, cfg);
  Rng rng(10);
  for (int i = 0; i < 30; ++i) {
    const Vec x = inner.random_design(rng);
    bool threw_first = false;
    try {
      (void)faulty.evaluate(x);
    } catch (const std::runtime_error&) {
      threw_first = true;
    }
    // Re-evaluating the same design must reproduce the same fault decision.
    bool threw_second = false;
    try {
      (void)faulty.evaluate(x);
    } catch (const std::runtime_error&) {
      threw_second = true;
    }
    EXPECT_EQ(threw_first, threw_second);
  }
}

TEST(FaultInjection, RatesRoughlyRespected) {
  ConstrainedQuadratic inner(4);
  FaultInjectionConfig cfg;
  cfg.nan_rate = 0.5;
  const FaultInjectingProblem faulty(inner, cfg);
  Rng rng(11);
  int nan_count = 0;
  const int trials = 200;
  for (int i = 0; i < trials; ++i) {
    const EvalResult r = faulty.evaluate(inner.random_design(rng));
    if (std::isnan(r.metrics[0])) ++nan_count;
  }
  EXPECT_GT(nan_count, trials / 4);      // ~0.5 +- noise
  EXPECT_LT(nan_count, 3 * trials / 4);
  EXPECT_EQ(faulty.injected(), static_cast<std::uint64_t>(nan_count));
}

TEST(FaultInjection, MixedSplitsTotalEvenly) {
  const FaultInjectionConfig cfg = FaultInjectionConfig::mixed(0.2, 42, 0.01);
  EXPECT_DOUBLE_EQ(cfg.throw_rate, 0.05);
  EXPECT_DOUBLE_EQ(cfg.hang_rate, 0.05);
  EXPECT_DOUBLE_EQ(cfg.nan_rate, 0.05);
  EXPECT_DOUBLE_EQ(cfg.garbage_rate, 0.05);
  EXPECT_EQ(cfg.seed, 42u);
  EXPECT_DOUBLE_EQ(cfg.hang_seconds, 0.01);
}

TEST(FaultInjection, RejectsInvalidRates) {
  ConstrainedQuadratic inner(3);
  FaultInjectionConfig cfg;
  cfg.throw_rate = 0.6;
  cfg.nan_rate = 0.6;
  EXPECT_THROW(FaultInjectingProblem(inner, cfg), std::invalid_argument);
}

TEST(FaultInjection, NominalEvaluateAtMatchesEvaluateFaultDecisions) {
  // Fault decisions at nominal are pure in (seed, x): evaluate_at with a
  // disabled variation must draw exactly the same faults as evaluate().
  ConstrainedQuadratic inner(3);
  FaultInjectionConfig cfg;
  cfg.nan_rate = 0.5;
  cfg.seed = 11;
  const FaultInjectingProblem a(inner, cfg);
  const FaultInjectingProblem b(inner, cfg);
  Rng rng(5);
  for (int i = 0; i < 40; ++i) {
    const Vec x = inner.random_design(rng);
    const EvalResult via_evaluate = a.evaluate(x);
    const EvalResult via_at = b.evaluate_at(x, ProcessVariation{});
    EXPECT_EQ(via_evaluate.simulation_ok, via_at.simulation_ok);
    const bool a_nan = std::isnan(via_evaluate.metrics[0]);
    const bool b_nan = std::isnan(via_at.metrics[0]);
    EXPECT_EQ(a_nan, b_nan);
  }
}

TEST(FaultInjection, VariantsDrawIndependentDeterministicFaults) {
  // Under an enabled variation the fault decision folds in pv, so each
  // corner / instance draws its own fault — deterministically.
  testing::VariedAnalytic inner;
  FaultInjectionConfig cfg;
  cfg.nan_rate = 0.5;
  cfg.seed = 23;
  const FaultInjectingProblem faulty(inner, cfg);
  Rng rng(9);
  int diverged = 0;
  for (int i = 0; i < 30; ++i) {
    const Vec x = inner.random_design(rng);
    ProcessVariation pv;
    pv.sigma_vth = 0.02;
    pv.seed = 1;
    const EvalResult first = faulty.evaluate_at(x, pv);
    EXPECT_EQ(faulty.evaluate_at(x, pv).simulation_ok, first.simulation_ok);  // replayable
    pv.seed = 2;
    const EvalResult second = faulty.evaluate_at(x, pv);
    const bool first_nan = std::isnan(first.metrics[0]);
    const bool second_nan = std::isnan(second.metrics[0]);
    if (first_nan != second_nan) ++diverged;
  }
  EXPECT_GT(diverged, 0);  // at ~50% rates the two variants must disagree somewhere
}

TEST(ResilientEvaluator, EvaluateAtRetriesAndScrubsPerVariant) {
  // The full deadline/retry/scrub pipeline applies to variation-pinned
  // evaluations too, and forwards pv on every attempt.
  testing::VariedAnalytic inner;
  FaultInjectionConfig cfg;
  cfg.nan_rate = 0.4;
  cfg.seed = 31;
  const FaultInjectingProblem faulty(inner, cfg);
  ResilientConfig rcfg;
  rcfg.max_retries = 2;
  const ResilientEvaluator res(faulty, rcfg);
  EXPECT_TRUE(res.supports_process_variation());
  Rng rng(3);
  for (int i = 0; i < 30; ++i) {
    ProcessVariation pv;
    pv.sigma_vth = 0.05;
    pv.seed = static_cast<std::uint64_t>(i);
    EvalResult r;
    EXPECT_NO_THROW(r = res.evaluate_at(inner.random_design(rng), pv));
    for (const double m : r.metrics) EXPECT_TRUE(std::isfinite(m));
  }
  EXPECT_GT(faulty.injected(), 0u);
}

TEST(ResilientEvaluator, SessionAtMatchesEvaluateAt) {
  testing::VariedAnalytic inner;
  const ResilientEvaluator res(inner);  // no deadline -> wrapping session
  ProcessVariation pv;
  pv.sigma_vth = 0.03;
  pv.seed = 5;
  auto session = res.make_session_at(pv);
  Rng rng(8);
  for (int i = 0; i < 10; ++i) {
    const Vec x = inner.random_design(rng);
    EXPECT_EQ(session->evaluate(x).metrics, res.evaluate_at(x, pv).metrics);
  }
}

TEST(ResilientOverFaultInjection, EndToEndNeverThrowsAndScrubs) {
  ConstrainedQuadratic inner(4);
  const FaultInjectingProblem faulty(inner, FaultInjectionConfig::mixed(0.4, 7, 0.005));
  ResilientConfig rcfg;
  rcfg.deadline_seconds = 0.5;
  rcfg.max_retries = 1;
  const ResilientEvaluator res(faulty, rcfg);
  Rng rng(12);
  for (int i = 0; i < 50; ++i) {
    EvalResult r;
    EXPECT_NO_THROW(r = res.evaluate(inner.random_design(rng)));
    for (const double m : r.metrics) EXPECT_TRUE(std::isfinite(m));
  }
  EXPECT_GT(faulty.injected(), 0u);
}

}  // namespace
}  // namespace maopt::ckt
