// Unit tests for the fault-tolerant batched sweep engine
// (variation_sweep.hpp): aggregation math, partial-failure policies,
// per-variant circuit breakers, provenance, determinism under injected
// faults, and atomic telemetry bracketing.
#include "circuits/variation_sweep.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "../support/variation_test_problems.hpp"
#include "circuits/analytic_problems.hpp"
#include "circuits/resilient_problem.hpp"

namespace maopt::ckt {
namespace {

using testing::SeedFailInjector;
using testing::VariedAnalytic;

/// Three variants whose metrics are distinct closed forms: shifts move f0 /
/// the GE metric / the LE metric independently (seeds tag the variants for
/// SeedFailInjector).
std::vector<SweepVariant> three_variants() {
  std::vector<SweepVariant> v(3);
  v[0].pv.nmos_vth_shift = 0.10;
  v[0].pv.seed = 0;
  v[0].label = "v0";
  v[1].pv.pmos_vth_shift = -0.30;
  v[1].pv.seed = 1;
  v[1].label = "v1";
  v[2].pv.nmos_kp_factor = 1.50;
  v[2].pv.seed = 2;
  v[2].label = "v2";
  return v;
}

Vec test_design() { return {0.25, 0.25}; }

/// Per-variant metric columns for three_variants() at test_design():
///   f0: {0.6, 0.5, 0.5}   ge: {1.0, 0.7, 1.0}   le: {1.0, 1.0, 1.5}
std::vector<Vec> expected_columns(const VariedAnalytic& p) {
  std::vector<Vec> cols(3);
  for (const auto& v : three_variants()) {
    const Vec m = p.evaluate_at(test_design(), v.pv).metrics;
    for (std::size_t j = 0; j < 3; ++j) cols[j].push_back(m[j]);
  }
  return cols;
}

TEST(VariationSweep, WorstCaseAggregatesPerConstraintDirection) {
  VariedAnalytic p;
  SweepPolicyConfig policy;  // WorstCase
  VariationSweepProblem sweep(p, three_variants(), policy, "corners");
  EXPECT_FALSE(sweep.batched());
  const EvalResult r = sweep.evaluate(test_design());
  ASSERT_TRUE(r.simulation_ok);
  EXPECT_FALSE(r.degraded);
  EXPECT_EQ(r.variants_total, 3u);
  EXPECT_EQ(r.variants_failed, 0u);
  const auto cols = expected_columns(p);
  // Target: worst = max. GE constraint: worst = min. LE constraint: worst = max.
  EXPECT_DOUBLE_EQ(r.metrics[0], *std::max_element(cols[0].begin(), cols[0].end()));
  EXPECT_DOUBLE_EQ(r.metrics[1], *std::min_element(cols[1].begin(), cols[1].end()));
  EXPECT_DOUBLE_EQ(r.metrics[2], *std::max_element(cols[2].begin(), cols[2].end()));
}

TEST(VariationSweep, KSigmaMatchesHandComputedMeanPlusKSigma) {
  VariedAnalytic p;
  SweepPolicyConfig policy;
  policy.aggregation = RobustAggregation::KSigma;
  policy.k_sigma = 2.0;
  VariationSweepProblem sweep(p, three_variants(), policy, "corners");
  const EvalResult r = sweep.evaluate(test_design());
  ASSERT_TRUE(r.simulation_ok);
  const auto cols = expected_columns(p);
  for (std::size_t j = 0; j < 3; ++j) {
    double mean = 0.0;
    for (const double v : cols[j]) mean += v;
    mean /= static_cast<double>(cols[j].size());
    double var = 0.0;
    for (const double v : cols[j]) var += (v - mean) * (v - mean);
    const double sigma = std::sqrt(var / static_cast<double>(cols[j].size()));
    // Signed toward the violating direction: + for the target and the LE
    // constraint (bigger is worse), - for the GE constraint.
    const double expected = j == 1 ? mean - 2.0 * sigma : mean + 2.0 * sigma;
    EXPECT_NEAR(r.metrics[j], expected, 1e-12) << "metric " << j;
  }
}

TEST(VariationSweep, YieldQuantileAtOneEqualsWorstCase) {
  VariedAnalytic p;
  SweepPolicyConfig worst;
  SweepPolicyConfig quantile;
  quantile.aggregation = RobustAggregation::YieldQuantile;
  quantile.yield_target = 1.0;
  VariationSweepProblem sweep_worst(p, three_variants(), worst, "corners");
  VariationSweepProblem sweep_quantile(p, three_variants(), quantile, "corners");
  const Vec x = test_design();
  EXPECT_EQ(sweep_worst.evaluate(x).metrics, sweep_quantile.evaluate(x).metrics);
}

TEST(VariationSweep, YieldQuantilePicksTheCoveringValue) {
  VariedAnalytic p;
  SweepPolicyConfig policy;
  policy.aggregation = RobustAggregation::YieldQuantile;
  policy.yield_target = 2.0 / 3.0;  // 2 of 3 variants must achieve the value
  VariationSweepProblem sweep(p, three_variants(), policy, "corners");
  const EvalResult r = sweep.evaluate(test_design());
  ASSERT_TRUE(r.simulation_ok);
  auto cols = expected_columns(p);
  for (auto& c : cols) std::sort(c.begin(), c.end());
  // Bigger-is-worse metrics (f0, LE): value the best 2 of 3 stay at or below
  // -> second-smallest. GE: value the best 2 of 3 stay at or above ->
  // second-largest.
  EXPECT_DOUBLE_EQ(r.metrics[0], cols[0][1]);
  EXPECT_DOUBLE_EQ(r.metrics[1], cols[1][1]);
  EXPECT_DOUBLE_EQ(r.metrics[2], cols[2][1]);
}

TEST(VariationSweep, FailFastFailsWholeSweepButRunsFullBatch) {
  VariedAnalytic p;
  SeedFailInjector faulty(p, {1});
  SweepPolicyConfig policy;
  policy.failure_policy = SweepFailurePolicy::FailFast;
  VariationSweepProblem sweep(faulty, three_variants(), policy, "corners");
  const EvalResult r = sweep.evaluate(test_design());
  EXPECT_FALSE(r.simulation_ok);
  EXPECT_FALSE(r.degraded);  // whole-sweep failure, not a degraded aggregate
  EXPECT_EQ(r.metrics, p.failure_metrics());
  EXPECT_EQ(r.variants_failed, 1u);
  EXPECT_EQ(r.variants_total, 3u);
  // Budget predictability: the surviving variants were still evaluated.
  const SweepStats s = sweep.stats();
  EXPECT_EQ(s.variants_ok, 2u);
  EXPECT_EQ(s.variants_failed, 1u);
  EXPECT_EQ(s.failed_sweeps, 1u);
}

TEST(VariationSweep, PenalizeFailedVariantDegradesDeterministically) {
  VariedAnalytic p;
  SeedFailInjector faulty(p, {1});
  SweepPolicyConfig policy;  // PenalizeFailedVariant is the default
  VariationSweepProblem sweep(faulty, three_variants(), policy, "corners");
  const EvalResult r = sweep.evaluate(test_design());
  ASSERT_TRUE(r.simulation_ok);
  EXPECT_TRUE(r.degraded);
  EXPECT_EQ(r.variants_failed, 1u);
  EXPECT_EQ(r.variants_total, 3u);
  // The failed variant contributes failure_metrics to the worst-case: the
  // aggregate equals worst over {v0, v2, penalty} per metric direction.
  const Vec penalty = p.failure_metrics();
  const auto cols = expected_columns(p);
  EXPECT_DOUBLE_EQ(r.metrics[0], std::max({cols[0][0], cols[0][2], penalty[0]}));
  EXPECT_DOUBLE_EQ(r.metrics[1], std::min({cols[1][0], cols[1][2], penalty[1]}));
  EXPECT_DOUBLE_EQ(r.metrics[2], std::max({cols[2][0], cols[2][2], penalty[2]}));
}

TEST(VariationSweep, ConservativeBoundDropsFailedVariants) {
  VariedAnalytic p;
  SeedFailInjector faulty(p, {1});
  SweepPolicyConfig policy;
  policy.failure_policy = SweepFailurePolicy::ConservativeBound;
  policy.min_ok_fraction = 0.5;
  VariationSweepProblem sweep(faulty, three_variants(), policy, "corners");
  const EvalResult r = sweep.evaluate(test_design());
  ASSERT_TRUE(r.simulation_ok);
  EXPECT_TRUE(r.degraded);
  // Aggregate over survivors only (v0 and v2).
  const auto cols = expected_columns(p);
  EXPECT_DOUBLE_EQ(r.metrics[0], std::max(cols[0][0], cols[0][2]));
  EXPECT_DOUBLE_EQ(r.metrics[1], std::min(cols[1][0], cols[1][2]));
  EXPECT_DOUBLE_EQ(r.metrics[2], std::max(cols[2][0], cols[2][2]));
}

TEST(VariationSweep, ConservativeBoundFailsBelowSurvivalFloor) {
  VariedAnalytic p;
  SeedFailInjector faulty(p, {0, 1});  // 1 of 3 survives < min_ok_fraction
  SweepPolicyConfig policy;
  policy.failure_policy = SweepFailurePolicy::ConservativeBound;
  policy.min_ok_fraction = 0.5;
  VariationSweepProblem sweep(faulty, three_variants(), policy, "corners");
  const EvalResult r = sweep.evaluate(test_design());
  EXPECT_FALSE(r.simulation_ok);
  EXPECT_EQ(r.metrics, p.failure_metrics());
  EXPECT_EQ(r.variants_failed, 2u);
}

TEST(VariationSweep, AllVariantsFailedFailsEveryPolicy) {
  VariedAnalytic p;
  SeedFailInjector faulty(p, {0, 1, 2});
  for (const auto fp :
       {SweepFailurePolicy::FailFast, SweepFailurePolicy::PenalizeFailedVariant,
        SweepFailurePolicy::ConservativeBound}) {
    SweepPolicyConfig policy;
    policy.failure_policy = fp;
    VariationSweepProblem sweep(faulty, three_variants(), policy, "corners");
    const EvalResult r = sweep.evaluate(test_design());
    EXPECT_FALSE(r.simulation_ok) << to_string(fp);
    EXPECT_EQ(r.metrics, p.failure_metrics()) << to_string(fp);
    EXPECT_EQ(r.variants_failed, 3u) << to_string(fp);
  }
}

TEST(VariationSweep, ThrowingVariantBecomesFailedNotPropagated) {
  VariedAnalytic p;
  FaultInjectionConfig fcfg;
  fcfg.throw_rate = 1.0;
  FaultInjectingProblem faulty(p, fcfg);
  SweepPolicyConfig policy;
  VariationSweepProblem sweep(faulty, three_variants(), policy, "corners");
  EvalResult r;
  ASSERT_NO_THROW(r = sweep.evaluate(test_design()));
  EXPECT_FALSE(r.simulation_ok);
  EXPECT_EQ(r.variants_failed, 3u);
}

TEST(VariationSweep, BreakerTripsCoolsDownAndRecloses) {
  VariedAnalytic p;
  SeedFailInjector faulty(p, {1});
  SweepPolicyConfig policy;
  policy.breaker.trip_after = 2;
  policy.breaker.cooldown = 2;
  VariationSweepProblem sweep(faulty, three_variants(), policy, "corners");
  const Vec x = test_design();

  EXPECT_TRUE(sweep.evaluate(x).degraded);  // failure 1 of 2
  EXPECT_TRUE(sweep.evaluate(x).degraded);  // failure 2 -> breaker trips
  // Two cooldown sweeps: variant 1 skipped without touching the inner problem.
  EXPECT_TRUE(sweep.evaluate(x).degraded);
  EXPECT_TRUE(sweep.evaluate(x).degraded);
  SweepStats s = sweep.stats();
  EXPECT_EQ(s.variants_skipped, 2u);
  EXPECT_EQ(s.variants_failed, 2u);

  // Half-open retry: the fault is gone, so the breaker closes and the sweep
  // is clean again.
  faulty.set_fail_seeds({});
  const EvalResult healed = sweep.evaluate(x);
  EXPECT_TRUE(healed.simulation_ok);
  EXPECT_FALSE(healed.degraded);
  EXPECT_EQ(healed.variants_failed, 0u);
  s = sweep.stats();
  EXPECT_EQ(s.variants_skipped, 2u);  // no further skips
  EXPECT_EQ(s.sweeps, 5u);
  EXPECT_EQ(s.degraded_sweeps, 4u);
}

TEST(VariationSweep, BreakerHalfOpenFailureRetrips) {
  VariedAnalytic p;
  SeedFailInjector faulty(p, {1});
  SweepPolicyConfig policy;
  policy.breaker.trip_after = 1;
  policy.breaker.cooldown = 1;
  VariationSweepProblem sweep(faulty, three_variants(), policy, "corners");
  const Vec x = test_design();
  sweep.evaluate(x);  // fails -> trips
  sweep.evaluate(x);  // cooldown skip
  sweep.evaluate(x);  // half-open retry fails -> re-trips
  sweep.evaluate(x);  // cooldown skip again
  const SweepStats s = sweep.stats();
  EXPECT_EQ(s.variants_skipped, 2u);
  EXPECT_EQ(s.variants_failed, 2u);
}

TEST(VariationSweep, DeterministicUnderFaultRateGrid) {
  // The ISSUE acceptance grid: 0 / 10 / 30 / 50 % injected faults. Every
  // sweep must complete with a well-formed result, and two identical stacks
  // must produce bit-identical trajectories.
  const Vec designs[] = {{0.1, 0.2}, {0.5, 0.5}, {0.9, 0.1}, {0.3, 0.8}};
  for (const double rate : {0.0, 0.1, 0.3, 0.5}) {
    FaultInjectionConfig fcfg;
    fcfg.throw_rate = rate / 2;
    fcfg.nan_rate = rate / 4;
    fcfg.garbage_rate = rate / 4;
    fcfg.seed = 42;
    VariedAnalytic p1, p2;
    FaultInjectingProblem f1(p1, fcfg), f2(p2, fcfg);
    SweepPolicyConfig policy;
    VariationSweepProblem s1(f1, three_variants(), policy, "corners");
    VariationSweepProblem s2(f2, three_variants(), policy, "corners");
    for (const Vec& x : designs) {
      const EvalResult a = s1.evaluate(x);
      const EvalResult b = s2.evaluate(x);
      EXPECT_EQ(a.metrics, b.metrics) << "rate " << rate;
      EXPECT_EQ(a.simulation_ok, b.simulation_ok) << "rate " << rate;
      EXPECT_EQ(a.degraded, b.degraded) << "rate " << rate;
      EXPECT_EQ(a.variants_failed, b.variants_failed) << "rate " << rate;
      for (const double m : a.metrics) EXPECT_TRUE(std::isfinite(m));
      // Repeat evaluation of the same design is bit-identical too.
      EXPECT_EQ(s1.evaluate(x).metrics, a.metrics) << "rate " << rate;
    }
    const SweepStats stats = s1.stats();
    EXPECT_EQ(stats.sweeps, 8u);  // 4 designs x 2 evaluations
    EXPECT_EQ(stats.variants_ok + stats.variants_failed, 24u);
    if (rate == 0.0) {
      EXPECT_EQ(stats.variants_failed, 0u);
    }
  }
}

TEST(VariationSweep, GarbageShapedSuccessIsClassifiedFailed) {
  // A variant that "succeeds" with NaN metrics must not poison the aggregate.
  VariedAnalytic p;
  FaultInjectionConfig fcfg;
  fcfg.nan_rate = 1.0;
  FaultInjectingProblem faulty(p, fcfg);
  SweepPolicyConfig policy;
  VariationSweepProblem sweep(faulty, three_variants(), policy, "corners");
  const EvalResult r = sweep.evaluate(test_design());
  EXPECT_FALSE(r.simulation_ok);
  for (const double m : r.metrics) EXPECT_TRUE(std::isfinite(m));
}

struct RecordingObserver final : obs::RunObserver {
  std::vector<obs::SweepStarted> started;
  std::vector<obs::SweepVariantEvaluated> variant_events;
  std::vector<obs::SweepCompleted> completed;
  std::vector<char> order;  // 's' / 'v' / 'c' in emission order

  void on_sweep_started(const obs::SweepStarted& e) override {
    started.push_back(e);
    order.push_back('s');
  }
  void on_sweep_variant_evaluated(const obs::SweepVariantEvaluated& e) override {
    variant_events.push_back(e);
    order.push_back('v');
  }
  void on_sweep_completed(const obs::SweepCompleted& e) override {
    completed.push_back(e);
    order.push_back('c');
  }
};

TEST(VariationSweep, TelemetryBracketsAreCompleteAndTagged) {
  VariedAnalytic p;
  SeedFailInjector faulty(p, {1});
  SweepPolicyConfig policy;
  VariationSweepProblem sweep(faulty, three_variants(), policy, "corners");
  RecordingObserver obs;
  sweep.set_observer(&obs);
  sweep.evaluate(test_design());
  sweep.evaluate({0.7, 0.7});

  ASSERT_EQ(obs.started.size(), 2u);
  ASSERT_EQ(obs.variant_events.size(), 6u);
  ASSERT_EQ(obs.completed.size(), 2u);
  EXPECT_EQ(std::string(obs.order.begin(), obs.order.end()), "svvvcsvvvc");
  for (std::size_t k = 0; k < 2; ++k) {
    EXPECT_EQ(obs.started[k].sweep_id, k);
    EXPECT_EQ(obs.started[k].kind, "corners");
    EXPECT_EQ(obs.started[k].aggregation, "worst-case");
    EXPECT_EQ(obs.started[k].variants, 3u);
    EXPECT_EQ(obs.completed[k].sweep_id, k);
    EXPECT_EQ(obs.completed[k].variants_ok, 2u);
    EXPECT_EQ(obs.completed[k].variants_failed, 1u);
    EXPECT_EQ(obs.completed[k].variants_skipped, 0u);
    EXPECT_TRUE(obs.completed[k].degraded);
    EXPECT_EQ(obs.completed[k].policy, "penalize-failed");
  }
  const char* labels[] = {"v0", "v1", "v2"};
  for (std::size_t i = 0; i < obs.variant_events.size(); ++i) {
    const auto& e = obs.variant_events[i];
    EXPECT_EQ(e.sweep_id, i / 3);
    EXPECT_EQ(e.variant, i % 3);
    EXPECT_EQ(e.label, labels[i % 3]);
    EXPECT_EQ(e.ok, (i % 3) != 1);
    EXPECT_FALSE(e.skipped);
  }
}

TEST(VariationSweep, StatsReportMentionsEveryCounter) {
  VariedAnalytic p;
  SeedFailInjector faulty(p, {1});
  SweepPolicyConfig policy;
  VariationSweepProblem sweep(faulty, three_variants(), policy, "corners");
  sweep.evaluate(test_design());
  const std::string report = sweep.stats().report();
  EXPECT_NE(report.find("1 sweeps"), std::string::npos) << report;
  EXPECT_NE(report.find("2 ok"), std::string::npos) << report;
  EXPECT_NE(report.find("1 failed"), std::string::npos) << report;
}

TEST(VariationSweep, CtorContractChecks) {
  VariedAnalytic p;
  const auto variants = three_variants();
  SweepPolicyConfig ok;
  EXPECT_THROW(VariationSweepProblem(p, {}, ok, "corners"), std::invalid_argument);

  SweepPolicyConfig bad_k = ok;
  bad_k.aggregation = RobustAggregation::KSigma;
  bad_k.k_sigma = -1.0;
  EXPECT_THROW(VariationSweepProblem(p, variants, bad_k, "corners"), std::invalid_argument);

  SweepPolicyConfig bad_target = ok;
  bad_target.aggregation = RobustAggregation::YieldQuantile;
  bad_target.yield_target = 0.0;
  EXPECT_THROW(VariationSweepProblem(p, variants, bad_target, "corners"), std::invalid_argument);
  bad_target.yield_target = 1.5;
  EXPECT_THROW(VariationSweepProblem(p, variants, bad_target, "corners"), std::invalid_argument);

  SweepPolicyConfig bad_floor = ok;
  bad_floor.min_ok_fraction = -0.1;
  EXPECT_THROW(VariationSweepProblem(p, variants, bad_floor, "corners"), std::invalid_argument);

  SweepPolicyConfig bad_breaker = ok;
  bad_breaker.breaker.trip_after = 2;
  bad_breaker.breaker.cooldown = 0;
  EXPECT_THROW(VariationSweepProblem(p, variants, bad_breaker, "corners"), std::invalid_argument);

  // An enabled variation requires a variation-capable inner problem.
  ConstrainedQuadratic quad(2);
  EXPECT_THROW(VariationSweepProblem(quad, variants, ok, "corners"), std::invalid_argument);
  // ...but all-nominal variants are fine on any problem.
  std::vector<SweepVariant> nominal(2);
  nominal[0].label = "a";
  nominal[1].label = "b";
  EXPECT_NO_THROW(VariationSweepProblem(quad, nominal, ok, "corners"));
}

TEST(VariationSweep, RejectsInvalidVariantVariation) {
  VariedAnalytic p;
  std::vector<SweepVariant> bad(1);
  bad[0].pv.sigma_vth = -0.1;
  SweepPolicyConfig policy;
  EXPECT_THROW(VariationSweepProblem(p, bad, policy, "corners"), std::invalid_argument);
}

}  // namespace
}  // namespace maopt::ckt
