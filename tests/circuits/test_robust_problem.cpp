#include "circuits/robust_problem.hpp"

#include <gtest/gtest.h>

#include "circuits/analytic_problems.hpp"
#include "circuits/two_stage_ota.hpp"

namespace maopt::ckt {
namespace {

Vec ota_reference() {
  return {1.0, 1.0, 1.0, 0.5, 0.5, 20, 10, 5, 40, 20, 2.0, 500, 1000, 4, 4, 4};
}

TEST(RobustProblem, RejectsVariationUnawareInner) {
  ConstrainedQuadratic analytic(3);
  EXPECT_THROW(RobustProblem robust(analytic), std::invalid_argument);
}

TEST(RobustProblem, RejectsEmptyCornerSet) {
  TwoStageOta ota;
  EXPECT_THROW(RobustProblem robust(ota, {}), std::invalid_argument);
}

TEST(RobustProblem, DelegatesProblemShape) {
  TwoStageOta ota;
  RobustProblem robust(ota);
  EXPECT_EQ(robust.dim(), ota.dim());
  EXPECT_EQ(robust.num_metrics(), ota.num_metrics());
  EXPECT_EQ(robust.parameter_names(), ota.parameter_names());
  EXPECT_EQ(robust.num_corners(), 5u);
}

TEST(RobustProblem, TtOnlyMatchesNominal) {
  TwoStageOta ota;
  RobustProblem robust(ota, {ProcessCorner::TT});
  const Vec x = ota.clip(ota_reference());
  const auto nominal = ota.evaluate(x);
  const auto robust_r = robust.evaluate(x);
  EXPECT_EQ(robust_r.metrics, nominal.metrics);
}

TEST(RobustProblem, WorstCaseIsNeverBetterThanNominal) {
  TwoStageOta ota;
  RobustProblem robust(ota);
  const Vec x = ota.clip(ota_reference());
  const auto nominal = ota.evaluate(x);
  const auto worst = robust.evaluate(x);
  ASSERT_TRUE(worst.simulation_ok);
  // Target (power): worst-case >= nominal.
  EXPECT_GE(worst.metrics[0], nominal.metrics[0] - 1e-12);
  // Each constraint's worst-case violation >= nominal violation.
  const auto& cs = ota.spec().constraints;
  for (std::size_t i = 0; i < cs.size(); ++i) {
    EXPECT_GE(normalized_violation(cs[i], worst.metrics[i + 1]),
              normalized_violation(cs[i], nominal.metrics[i + 1]) - 1e-12)
        << cs[i].name;
  }
}

TEST(RobustProblem, RestoresInnerToNominal) {
  TwoStageOta ota;
  const Vec x = ota.clip(ota_reference());
  const auto before = ota.evaluate(x);
  {
    RobustProblem robust(ota);
    robust.evaluate(x);
  }
  EXPECT_EQ(ota.evaluate(x).metrics, before.metrics);
}

TEST(RobustProblem, FeasibleRobustDesignIsFeasibleAtEveryCorner) {
  TwoStageOta ota;
  RobustProblem robust(ota);
  const Vec x = ota.clip(ota_reference());
  const auto worst = robust.evaluate(x);
  if (robust.feasible(worst.metrics)) {
    for (const auto& r : evaluate_corners(ota, x)) EXPECT_TRUE(ota.feasible(r.metrics));
  } else {
    SUCCEED();  // reference design need not be robust-feasible
  }
}

}  // namespace
}  // namespace maopt::ckt
