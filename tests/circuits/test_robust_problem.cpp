#include "circuits/robust_problem.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "../support/variation_test_problems.hpp"
#include "circuits/analytic_problems.hpp"
#include "circuits/two_stage_ota.hpp"

namespace maopt::ckt {
namespace {

Vec ota_reference() {
  return {1.0, 1.0, 1.0, 0.5, 0.5, 20, 10, 5, 40, 20, 2.0, 500, 1000, 4, 4, 4};
}

TEST(RobustProblem, RejectsVariationUnawareInner) {
  ConstrainedQuadratic analytic(3);
  EXPECT_THROW(RobustProblem robust(analytic), std::invalid_argument);
}

TEST(RobustProblem, RejectsEmptyCornerSet) {
  TwoStageOta ota;
  EXPECT_THROW(RobustProblem robust(ota, {}), std::invalid_argument);
}

TEST(RobustProblem, DelegatesProblemShape) {
  TwoStageOta ota;
  RobustProblem robust(ota);
  EXPECT_EQ(robust.dim(), ota.dim());
  EXPECT_EQ(robust.num_metrics(), ota.num_metrics());
  EXPECT_EQ(robust.parameter_names(), ota.parameter_names());
  EXPECT_EQ(robust.num_corners(), 5u);
}

TEST(RobustProblem, TtOnlyMatchesNominal) {
  TwoStageOta ota;
  RobustProblem robust(ota, {ProcessCorner::TT});
  const Vec x = ota.clip(ota_reference());
  const auto nominal = ota.evaluate(x);
  const auto robust_r = robust.evaluate(x);
  EXPECT_EQ(robust_r.metrics, nominal.metrics);
}

TEST(RobustProblem, WorstCaseIsNeverBetterThanNominal) {
  TwoStageOta ota;
  RobustProblem robust(ota);
  const Vec x = ota.clip(ota_reference());
  const auto nominal = ota.evaluate(x);
  const auto worst = robust.evaluate(x);
  ASSERT_TRUE(worst.simulation_ok);
  // Target (power): worst-case >= nominal.
  EXPECT_GE(worst.metrics[0], nominal.metrics[0] - 1e-12);
  // Each constraint's worst-case violation >= nominal violation.
  const auto& cs = ota.spec().constraints;
  for (std::size_t i = 0; i < cs.size(); ++i) {
    EXPECT_GE(normalized_violation(cs[i], worst.metrics[i + 1]),
              normalized_violation(cs[i], nominal.metrics[i + 1]) - 1e-12)
        << cs[i].name;
  }
}

TEST(RobustProblem, RestoresInnerToNominal) {
  TwoStageOta ota;
  const Vec x = ota.clip(ota_reference());
  const auto before = ota.evaluate(x);
  {
    RobustProblem robust(ota);
    robust.evaluate(x);
  }
  EXPECT_EQ(ota.evaluate(x).metrics, before.metrics);
}

TEST(RobustProblem, FeasibleRobustDesignIsFeasibleAtEveryCorner) {
  TwoStageOta ota;
  RobustProblem robust(ota);
  const Vec x = ota.clip(ota_reference());
  const auto worst = robust.evaluate(x);
  if (robust.feasible(worst.metrics)) {
    for (const auto& r : evaluate_corners(ota, x)) EXPECT_TRUE(ota.feasible(r.metrics));
  } else {
    SUCCEED();  // reference design need not be robust-feasible
  }
}

TEST(RobustProblem, RejectsDuplicateCorners) {
  TwoStageOta ota;
  RobustConfig config;
  config.corners = {ProcessCorner::TT, ProcessCorner::FF, ProcessCorner::FF};
  EXPECT_THROW(RobustProblem robust(ota, config), std::invalid_argument);
  EXPECT_THROW(RobustProblem robust(ota, {ProcessCorner::SS, ProcessCorner::SS}),
               std::invalid_argument);
}

TEST(RobustProblem, RejectsNonFiniteSteps) {
  TwoStageOta ota;
  RobustConfig config;
  config.vth_step = std::nan("");
  EXPECT_THROW(RobustProblem robust(ota, config), std::invalid_argument);
}

TEST(RobustProblem, ConfigCtorSelectsPolicy) {
  testing::VariedAnalytic p;
  RobustConfig config;
  config.policy.aggregation = RobustAggregation::KSigma;
  config.policy.k_sigma = 1.5;
  RobustProblem robust(p, config);
  EXPECT_EQ(robust.num_corners(), 5u);
  EXPECT_EQ(robust.policy().aggregation, RobustAggregation::KSigma);
  EXPECT_EQ(robust.policy().failure_policy, SweepFailurePolicy::PenalizeFailedVariant);
  // Legacy corner-list ctor keeps the original fail-fast semantics.
  RobustProblem legacy(p, {ProcessCorner::TT, ProcessCorner::FF});
  EXPECT_EQ(legacy.policy().failure_policy, SweepFailurePolicy::FailFast);
  EXPECT_EQ(legacy.policy().aggregation, RobustAggregation::WorstCase);
}

TEST(RobustProblem, CornerVariantsAreLabeled) {
  testing::VariedAnalytic p;
  RobustProblem robust(p);
  ASSERT_EQ(robust.variants().size(), 5u);
  EXPECT_EQ(robust.variants()[0].label, "TT");
  EXPECT_EQ(robust.variants()[1].label, "FF");
  EXPECT_EQ(robust.variants()[4].label, "SF");
}

TEST(RobustProblem, AllCornersFailedFailsWholeSweepWithProvenance) {
  // Corner variants carry seed 0, so failing seed 0 downs every corner: the
  // sweep must fail as a whole but still report exact provenance.
  testing::VariedAnalytic p;
  testing::SeedFailInjector faulty(p, {0});
  RobustProblem robust(faulty, RobustConfig{});
  const EvalResult r = robust.evaluate({0.5, 0.5});
  EXPECT_FALSE(r.simulation_ok);
  EXPECT_EQ(r.variants_failed, 5u);
  EXPECT_EQ(r.variants_total, 5u);
}

TEST(MismatchSettings, ValidationContract) {
  MismatchSettings ok;
  EXPECT_NO_THROW(validate_mismatch_settings(ok));

  MismatchSettings zero_instances = ok;
  zero_instances.instances = 0;
  EXPECT_THROW(validate_mismatch_settings(zero_instances), std::invalid_argument);

  MismatchSettings negative_sigma = ok;
  negative_sigma.sigma_vth = -0.01;
  EXPECT_THROW(validate_mismatch_settings(negative_sigma), std::invalid_argument);

  MismatchSettings nan_sigma = ok;
  nan_sigma.sigma_kp_rel = std::nan("");
  EXPECT_THROW(validate_mismatch_settings(nan_sigma), std::invalid_argument);

  MismatchSettings all_zero = ok;
  all_zero.sigma_vth = 0.0;
  all_zero.sigma_kp_rel = 0.0;
  EXPECT_THROW(validate_mismatch_settings(all_zero), std::invalid_argument);
}

TEST(YieldProblem, SweepsSeededInstancesDeterministically) {
  testing::VariedAnalytic p;
  YieldConfig config;
  config.mismatch.instances = 16;
  config.mismatch.sigma_vth = 0.05;
  config.mismatch.sigma_kp_rel = 0.0;
  YieldProblem yield(p, config);
  EXPECT_EQ(yield.num_instances(), 16u);
  EXPECT_EQ(yield.policy().aggregation, RobustAggregation::YieldQuantile);
  ASSERT_EQ(yield.variants().size(), 16u);
  EXPECT_EQ(yield.variants()[0].pv.seed, config.mismatch.seed_base);
  EXPECT_EQ(yield.variants()[15].pv.seed, config.mismatch.seed_base + 15);
  EXPECT_EQ(yield.variants()[3].label, "mc3");

  const Vec x{0.4, 0.4};
  const EvalResult a = yield.evaluate(x);
  const EvalResult b = yield.evaluate(x);
  ASSERT_TRUE(a.simulation_ok);
  EXPECT_EQ(a.metrics, b.metrics);
  EXPECT_EQ(a.variants_total, 16u);
  // Another instance of the same configuration is bit-identical too.
  YieldProblem twin(p, config);
  EXPECT_EQ(twin.evaluate(x).metrics, a.metrics);
}

TEST(YieldProblem, QuantileCoversTargetFractionOfInstances) {
  testing::VariedAnalytic p;
  YieldConfig config;
  config.mismatch.instances = 20;
  config.mismatch.sigma_vth = 0.08;
  config.mismatch.sigma_kp_rel = 0.0;
  config.policy.aggregation = RobustAggregation::YieldQuantile;
  config.policy.yield_target = 0.9;
  YieldProblem yield(p, config);
  const Vec x{0.4, 0.4};
  const EvalResult r = yield.evaluate(x);
  ASSERT_TRUE(r.simulation_ok);
  // At least 90% of the per-instance f0 values sit at or below the reported
  // quantile (f0 is bigger-is-worse).
  int covered = 0;
  for (const auto& v : yield.variants())
    if (p.evaluate_at(x, v.pv).metrics[0] <= r.metrics[0] + 1e-12) ++covered;
  EXPECT_GE(covered, 18);
}

TEST(YieldProblem, RejectsVariationUnawareInner) {
  ConstrainedQuadratic quad(2);
  EXPECT_THROW(YieldProblem yield(quad, YieldConfig{}), std::invalid_argument);
}

}  // namespace
}  // namespace maopt::ckt
