#include "circuits/sizing_problem.hpp"

#include <gtest/gtest.h>

#include "circuits/analytic_problems.hpp"

namespace maopt::ckt {
namespace {

TEST(Constraint, NormalizedViolationGreaterEqual) {
  const ConstraintSpec c{"g", "", ConstraintKind::GreaterEqual, 60.0, 1.0};
  EXPECT_DOUBLE_EQ(normalized_violation(c, 70.0), 0.0);   // satisfied
  EXPECT_DOUBLE_EQ(normalized_violation(c, 60.0), 0.0);   // boundary
  EXPECT_DOUBLE_EQ(normalized_violation(c, 30.0), 0.5);   // halfway violation
}

TEST(Constraint, NormalizedViolationLessEqual) {
  const ConstraintSpec c{"t", "", ConstraintKind::LessEqual, 100.0, 1.0};
  EXPECT_DOUBLE_EQ(normalized_violation(c, 50.0), 0.0);
  EXPECT_DOUBLE_EQ(normalized_violation(c, 150.0), 0.5);
}

TEST(Constraint, NormalizedViolationScalesByBoundMagnitude) {
  const ConstraintSpec c{"x", "", ConstraintKind::LessEqual, 0.1, 1.0};
  EXPECT_NEAR(normalized_violation(c, 0.2), 1.0, 1e-12);
}

TEST(SizingProblem, ClipClampsToBox) {
  ConstrainedQuadratic p(3);
  const Vec x = p.clip({-1.0, 0.5, 2.0});
  EXPECT_DOUBLE_EQ(x[0], 0.0);
  EXPECT_DOUBLE_EQ(x[1], 0.5);
  EXPECT_DOUBLE_EQ(x[2], 1.0);
}

TEST(SizingProblem, ClipRoundsIntegerParameters) {
  ConstrainedRosenbrock p(3);  // last parameter is integer-masked
  const Vec x = p.clip({0.5, 0.5, 0.7});
  EXPECT_DOUBLE_EQ(x[2], 1.0);
  const Vec y = p.clip({0.5, 0.5, 0.4});
  EXPECT_DOUBLE_EQ(y[2], 0.0);
}

TEST(SizingProblem, RandomDesignWithinBounds) {
  ConstrainedQuadratic p(8);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const Vec x = p.random_design(rng);
    ASSERT_EQ(x.size(), 8u);
    for (std::size_t j = 0; j < 8; ++j) {
      EXPECT_GE(x[j], p.lower_bounds()[j]);
      EXPECT_LE(x[j], p.upper_bounds()[j]);
    }
  }
}

TEST(SizingProblem, RandomDesignIntegerParamsAreIntegral) {
  ConstrainedRosenbrock p(4);
  Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    const Vec x = p.random_design(rng);
    EXPECT_DOUBLE_EQ(x[3], std::round(x[3]));
  }
}

TEST(SizingProblem, FeasibleChecksAllConstraints) {
  ConstrainedQuadratic p(2, 0.3, 0.25, 0.6);
  // metrics = [f0, mean, x0]
  EXPECT_TRUE(p.feasible({0.1, 0.3, 0.3}));
  EXPECT_FALSE(p.feasible({0.1, 0.2, 0.3}));   // mean below 0.25
  EXPECT_FALSE(p.feasible({0.1, 0.3, 0.7}));   // x0 above 0.6
}

TEST(SizingProblem, FailureMetricsViolateEveryConstraint) {
  ConstrainedQuadratic p(2);
  const Vec f = p.failure_metrics();
  ASSERT_EQ(f.size(), p.num_metrics());
  EXPECT_FALSE(p.feasible(f));
  for (std::size_t i = 0; i < p.spec().constraints.size(); ++i)
    EXPECT_GT(normalized_violation(p.spec().constraints[i], f[i + 1]), 0.0);
}

TEST(SizingProblem, NumMetricsCountsTargetPlusConstraints) {
  ConstrainedQuadratic p(2);
  EXPECT_EQ(p.num_metrics(), 3u);
}

}  // namespace
}  // namespace maopt::ckt
