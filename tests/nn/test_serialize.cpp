#include "nn/serialize.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace maopt::nn {
namespace {

TEST(Serialize, RoundTripIsBitExact) {
  Rng rng(1);
  Mlp net(4, {8, 8}, 3, rng, Activation::Relu, false);
  std::stringstream buffer;
  save_mlp(buffer, net);

  Rng rng2(99);  // different init
  Mlp restored(4, {8, 8}, 3, rng2, Activation::Relu, false);
  load_mlp(buffer, restored);

  Mat x(3, 4, 0.37);
  const Mat a = net.forward(x);
  const Mat b = restored.forward(x);
  for (std::size_t i = 0; i < a.data().size(); ++i) EXPECT_EQ(a.data()[i], b.data()[i]);
}

TEST(Serialize, ExtremeValuesSurvive) {
  Rng rng(2);
  Mlp net(2, {3}, 1, rng);
  auto params = net.params();
  (*params[0].value)[0] = 1e-300;
  (*params[0].value)[1] = -1e300;
  (*params[0].value)[2] = 0.1 + 0.2;  // classic non-representable decimal
  std::stringstream buffer;
  save_mlp(buffer, net);
  Rng rng2(3);
  Mlp restored(2, {3}, 1, rng2);
  load_mlp(buffer, restored);
  auto rp = restored.params();
  EXPECT_EQ((*rp[0].value)[0], 1e-300);
  EXPECT_EQ((*rp[0].value)[1], -1e300);
  EXPECT_EQ((*rp[0].value)[2], 0.1 + 0.2);
}

TEST(Serialize, ArchitectureMismatchThrows) {
  Rng rng(4);
  Mlp net(4, {8}, 2, rng);
  std::stringstream buffer;
  save_mlp(buffer, net);

  Mlp wrong_width(4, {9}, 2, rng);
  EXPECT_THROW(load_mlp(buffer, wrong_width), std::runtime_error);

  std::stringstream buffer2;
  save_mlp(buffer2, net);
  Mlp wrong_depth(4, {8, 8}, 2, rng);
  EXPECT_THROW(load_mlp(buffer2, wrong_depth), std::runtime_error);
}

TEST(Serialize, BadMagicThrows) {
  std::stringstream buffer("not-a-model 1\n");
  Rng rng(5);
  Mlp net(2, {2}, 1, rng);
  EXPECT_THROW(load_mlp(buffer, net), std::runtime_error);
}

TEST(Serialize, TruncatedFileThrows) {
  Rng rng(6);
  Mlp net(2, {2}, 1, rng);
  std::stringstream buffer;
  save_mlp(buffer, net);
  std::string text = buffer.str();
  std::stringstream truncated(text.substr(0, text.size() / 2));
  EXPECT_THROW(load_mlp(truncated, net), std::runtime_error);
}

TEST(Serialize, FilePathVariant) {
  Rng rng(7);
  Mlp net(3, {4}, 2, rng);
  const std::string path = "/tmp/maopt_serialize_test.mlp";
  save_mlp(path, net);
  Rng rng2(8);
  Mlp restored(3, {4}, 2, rng2);
  load_mlp(path, restored);
  Mat x(1, 3, -0.2);
  EXPECT_EQ(net.forward(x)(0, 0), restored.forward(x)(0, 0));
  EXPECT_THROW(load_mlp("/nonexistent/x.mlp", net), std::runtime_error);
}

}  // namespace
}  // namespace maopt::nn
