// Parameterized training-behaviour sweeps: the optimizer stack must train
// reliably across the learning rates and widths the experiments use.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/adam.hpp"
#include "nn/mlp.hpp"

namespace maopt::nn {
namespace {

class AdamLrSweep : public ::testing::TestWithParam<double> {};

TEST_P(AdamLrSweep, ConvergesOnConvexBowl) {
  const double lr = GetParam();
  Vec x{4.0, -2.0, 1.0};
  Vec g(3, 0.0);
  Adam opt({{&x, &g}}, {.lr = lr});
  for (int i = 0; i < 20000; ++i) {
    for (std::size_t j = 0; j < 3; ++j) g[j] = 2.0 * x[j];
    opt.step();
  }
  for (const double v : x) EXPECT_NEAR(v, 0.0, 0.02) << "lr=" << lr;
}

INSTANTIATE_TEST_SUITE_P(LearningRates, AdamLrSweep,
                         ::testing::Values(3e-4, 1e-3, 3e-3, 1e-2, 3e-2));

struct WidthCase {
  std::size_t width;
  double target_loss;
};

class MlpWidthSweep : public ::testing::TestWithParam<WidthCase> {};

TEST_P(MlpWidthSweep, FitsQuadraticMap) {
  const auto [width, target_loss] = GetParam();
  Rng rng(width);
  Mlp net(2, {width, width}, 1, rng, Activation::Relu, false);
  Adam opt(net.params(), {.lr = 3e-3});
  Rng data(7);
  Mat x(48, 2), y(48, 1), grad;
  double loss = 1e9;
  for (int step = 0; step < 600; ++step) {
    for (std::size_t i = 0; i < 48; ++i) {
      x(i, 0) = data.uniform(-1, 1);
      x(i, 1) = data.uniform(-1, 1);
      y(i, 0) = x(i, 0) * x(i, 0) + 0.5 * x(i, 1);
    }
    const Mat pred = net.forward(x);
    loss = mse_loss(pred, y, &grad);
    net.backward(grad);
    opt.step();
  }
  EXPECT_LT(loss, target_loss) << "width=" << width;
}

INSTANTIATE_TEST_SUITE_P(Widths, MlpWidthSweep,
                         ::testing::Values(WidthCase{16, 2e-2}, WidthCase{32, 1e-2},
                                           WidthCase{64, 5e-3}, WidthCase{100, 5e-3}));

TEST(TrainingProperties, DeeperTanhNetStillHasHealthyGradients) {
  // 4 hidden layers of tanh: gradient magnitudes at the input layer must be
  // nonzero after a forward/backward pass (no catastrophic vanishing for
  // the depths used here).
  Rng rng(1);
  Mlp net(4, {32, 32, 32, 32}, 1, rng, Activation::Tanh, false);
  Mat x(16, 4, 0.25);
  Mat dy(16, 1, 1.0);
  net.forward(x);
  net.zero_grad();
  net.backward(dy);
  double grad_norm = 0.0;
  const auto params = net.params();
  for (const double g : *params[0].grad) grad_norm += g * g;
  EXPECT_GT(std::sqrt(grad_norm), 1e-6);
}

}  // namespace
}  // namespace maopt::nn
