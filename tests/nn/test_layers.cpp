#include "nn/layer.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace maopt::nn {
namespace {

// Central finite-difference check of parameter and input gradients of a
// scalar loss L = sum(Y) through a single layer.
void check_layer_gradients(Layer& layer, const Mat& x, double tol = 1e-6) {
  Mat y = layer.forward(x);
  Mat dy(y.rows(), y.cols(), 1.0);  // dL/dY for L = sum(Y)
  for (const auto& p : layer.params()) p.grad->assign(p.grad->size(), 0.0);
  const Mat dx = layer.backward(dy);

  const double eps = 1e-6;
  auto loss = [&](const Mat& input) {
    const Mat out = layer.forward(input);
    double s = 0.0;
    for (const double v : out.data()) s += v;
    return s;
  };

  // Input gradient.
  for (std::size_t i = 0; i < x.data().size(); ++i) {
    Mat xp = x, xm = x;
    xp.data()[i] += eps;
    xm.data()[i] -= eps;
    const double num = (loss(xp) - loss(xm)) / (2 * eps);
    EXPECT_NEAR(dx.data()[i], num, tol) << "input grad " << i;
  }

  // Parameter gradients.
  for (const auto& p : layer.params()) {
    for (std::size_t i = 0; i < p.value->size(); ++i) {
      const double saved = (*p.value)[i];
      (*p.value)[i] = saved + eps;
      const double lp = loss(x);
      (*p.value)[i] = saved - eps;
      const double lm = loss(x);
      (*p.value)[i] = saved;
      EXPECT_NEAR((*p.grad)[i], (lp - lm) / (2 * eps), tol) << "param grad " << i;
    }
  }
}

TEST(Linear, ForwardKnownValues) {
  Rng rng(0);
  Linear lin(2, 1, rng);
  lin.weights() = {2.0, 3.0};  // w[in*out]: in=2, out=1
  lin.bias() = {1.0};
  Mat x(1, 2, {4.0, 5.0});
  const Mat y = lin.forward(x);
  EXPECT_DOUBLE_EQ(y(0, 0), 1.0 + 2.0 * 4.0 + 3.0 * 5.0);
}

TEST(Linear, GradientCheck) {
  Rng rng(1);
  Linear lin(3, 4, rng);
  Mat x(5, 3);
  Rng xr(2);
  for (auto& v : x.data()) v = xr.uniform(-1, 1);
  check_layer_gradients(lin, x);
}

TEST(Linear, XavierInitWithinLimit) {
  Rng rng(3);
  Linear lin(10, 10, rng);
  const double limit = std::sqrt(6.0 / 20.0);
  for (const double w : lin.weights()) {
    EXPECT_LE(std::abs(w), limit);
  }
  for (const double b : lin.bias()) EXPECT_DOUBLE_EQ(b, 0.0);
}

TEST(Linear, ForwardWrongFeatureCountThrows) {
  Rng rng(0);
  Linear lin(3, 2, rng);
  Mat x(1, 4);
  EXPECT_THROW(lin.forward(x), std::invalid_argument);
}

TEST(Tanh, ForwardMatchesStdTanh) {
  Tanh t(3);
  Mat x(1, 3, {-1.0, 0.0, 2.0});
  const Mat y = t.forward(x);
  EXPECT_DOUBLE_EQ(y(0, 0), std::tanh(-1.0));
  EXPECT_DOUBLE_EQ(y(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(y(0, 2), std::tanh(2.0));
}

TEST(Tanh, GradientCheck) {
  Tanh t(4);
  Mat x(3, 4);
  Rng xr(5);
  for (auto& v : x.data()) v = xr.uniform(-2, 2);
  check_layer_gradients(t, x);
}

TEST(Relu, ForwardClampsNegatives) {
  Relu r(3);
  Mat x(1, 3, {-1.0, 0.0, 2.0});
  const Mat y = r.forward(x);
  EXPECT_DOUBLE_EQ(y(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(y(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(y(0, 2), 2.0);
}

TEST(Relu, GradientCheckAwayFromKink) {
  Relu r(4);
  Mat x(3, 4);
  Rng xr(6);
  // Keep inputs away from 0 where the subgradient is ambiguous.
  for (auto& v : x.data()) {
    v = xr.uniform(-2, 2);
    if (std::abs(v) < 0.1) v = v < 0 ? -0.1 : 0.1;
  }
  check_layer_gradients(r, x);
}

TEST(Linear, CloneCopiesWeightsIndependently) {
  Rng rng(7);
  Linear lin(2, 2, rng);
  auto copy = lin.clone();
  auto* copy_lin = dynamic_cast<Linear*>(copy.get());
  ASSERT_NE(copy_lin, nullptr);
  EXPECT_EQ(copy_lin->weights(), lin.weights());
  lin.weights()[0] += 1.0;
  EXPECT_NE(copy_lin->weights()[0], lin.weights()[0]);
}

}  // namespace
}  // namespace maopt::nn
