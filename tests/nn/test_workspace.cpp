#include "nn/workspace.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "nn/layer.hpp"

namespace maopt::nn {
namespace {

TEST(Workspace, AcquireGrowsSlotTableOnDemand) {
  Workspace ws;
  EXPECT_EQ(ws.num_slots(), 0u);
  ws.acquire(0, 2, 3);
  EXPECT_EQ(ws.num_slots(), 1u);
  ws.acquire(5, 1, 1);
  EXPECT_EQ(ws.num_slots(), 6u);
  // Re-acquiring a low slot does not shrink the table.
  ws.acquire(1, 4, 4);
  EXPECT_EQ(ws.num_slots(), 6u);
}

TEST(Workspace, AcquireRejectsOutOfRangeSlotId) {
  Workspace ws;
  EXPECT_THROW(ws.acquire(Workspace::kMaxSlots, 1, 1), ContractViolation);
  EXPECT_THROW(ws.acquire(static_cast<std::size_t>(-1), 1, 1), ContractViolation);
}

TEST(Workspace, AcquireRejectsOverflowingShape) {
  Workspace ws;
  const auto big = std::numeric_limits<std::size_t>::max() / 2;
  EXPECT_THROW(ws.acquire(0, big, 4), ContractViolation);
}

TEST(Workspace, EnsureShapeReusesCapacityAcrossReacquires) {
  Workspace ws;
  Mat& m = ws.acquire(0, 8, 16);
  const double* storage = m.data().data();
  const std::size_t cap = m.data().capacity();
  // Same shape, then smaller shapes: same slot object, no reallocation.
  const std::vector<std::pair<std::size_t, std::size_t>> shapes = {{8, 16}, {4, 16}, {2, 8}};
  for (const auto& [r, c] : shapes) {
    Mat& again = ws.acquire(0, r, c);
    EXPECT_EQ(&again, &m);
    EXPECT_EQ(again.rows(), r);
    EXPECT_EQ(again.cols(), c);
    EXPECT_EQ(again.data().data(), storage);
    EXPECT_EQ(again.data().capacity(), cap);
  }
}

// Regression for an ASan-caught use-after-free: slot references must stay
// valid when a later acquire grows the slot table (the exact pattern of
// activation backward — peek the forward slot, then acquire the backward
// slot for the first time).
TEST(Workspace, SlotReferencesStableAcrossTableGrowth) {
  Workspace ws;
  Mat& fwd = ws.acquire(0, 2, 2);
  fwd.fill(1.5);
  const Mat& peeked = ws.peek(0, 2, 2);
  Mat& bwd = ws.acquire(7, 3, 3);  // grows the table — must not move slot 0
  bwd.fill(0.0);
  EXPECT_EQ(&peeked, &fwd);
  EXPECT_EQ(&ws.peek(0, 2, 2), &fwd);
  EXPECT_EQ(fwd(0, 0), 1.5);
  EXPECT_EQ(peeked(1, 1), 1.5);
}

TEST(Workspace, AcquireBumpsGenerationPeekDoesNot) {
  Workspace ws;
  const Mat& m = ws.acquire(0, 2, 2);
  const auto gen = m.generation();
  EXPECT_EQ(ws.peek(0, 2, 2).generation(), gen);  // peek: pure read
  ws.acquire(0, 2, 2);                            // re-acquire invalidates contents
  EXPECT_GT(m.generation(), gen);
}

TEST(Workspace, PeekRejectsMissingSlotAndShapeMismatch) {
  Workspace ws;
  EXPECT_THROW(ws.peek(0, 1, 1), ContractViolation);
  ws.acquire(0, 3, 4);
  EXPECT_THROW(ws.peek(0, 4, 3), ContractViolation);
  EXPECT_THROW(ws.peek(1, 3, 4), ContractViolation);
  EXPECT_NO_THROW(ws.peek(0, 3, 4));
}

TEST(Workspace, ClearReleasesSlots) {
  Workspace ws;
  ws.acquire(2, 4, 4);
  ws.clear();
  EXPECT_EQ(ws.num_slots(), 0u);
  EXPECT_THROW(ws.peek(2, 4, 4), ContractViolation);
}

// The borrow-guard death test: Linear borrows its forward input; reshaping
// that input (which marks its contents unspecified) before backward must be
// caught in checked builds instead of silently training on garbage.
TEST(WorkspaceBorrowGuardDeathTest, StaleBorrowedForwardInputAborts) {
#if MAOPT_DCHECK_ENABLED
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Rng rng(7);
  Linear lin(3, 2, rng);
  Mat x(4, 3, 0.5);
  Mat dy(4, 2, 1.0);
  lin.forward(x);
  x.ensure_shape(4, 3);  // same shape, but contents now unspecified
  EXPECT_DEATH(lin.backward(dy), "borrowed forward input was invalidated");
#else
  GTEST_SKIP() << "MAOPT_DCHECK disabled in this build flavor";
#endif
}

TEST(WorkspaceBorrowGuard, IntactBorrowPassesThroughBackward) {
  Rng rng(7);
  Linear lin(3, 2, rng);
  Mat x(4, 3, 0.5);
  Mat dy(4, 2, 1.0);
  lin.forward(x);
  EXPECT_NO_THROW(lin.backward(dy));
  // A fresh forward re-borrows the reshaped buffer: legal again.
  x.ensure_shape(4, 3);
  x.fill(0.25);
  lin.forward(x);
  EXPECT_NO_THROW(lin.backward(dy));
}

}  // namespace
}  // namespace maopt::nn
