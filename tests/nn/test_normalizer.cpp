#include "nn/normalizer.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace maopt::nn {
namespace {

TEST(RangeScaler, MapsBoundsToUnitInterval) {
  RangeScaler s({0.0, -10.0}, {2.0, 10.0});
  const Vec lo = s.to_unit(Vec{0.0, -10.0});
  const Vec hi = s.to_unit(Vec{2.0, 10.0});
  EXPECT_DOUBLE_EQ(lo[0], -1.0);
  EXPECT_DOUBLE_EQ(lo[1], -1.0);
  EXPECT_DOUBLE_EQ(hi[0], 1.0);
  EXPECT_DOUBLE_EQ(hi[1], 1.0);
}

TEST(RangeScaler, CenterMapsToZero) {
  RangeScaler s({0.0}, {4.0});
  EXPECT_DOUBLE_EQ(s.to_unit(Vec{2.0})[0], 0.0);
}

TEST(RangeScaler, RoundTrip) {
  RangeScaler s({0.18, 0.22, 0.1}, {2.0, 150.0, 100.0});
  const Vec x{1.0, 42.0, 3.0};
  const Vec back = s.from_unit(s.to_unit(x));
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(back[i], x[i], 1e-12);
}

TEST(RangeScaler, DeltaScalingIsOffsetFree) {
  RangeScaler s({0.0}, {10.0});
  EXPECT_DOUBLE_EQ(s.delta_to_unit(Vec{5.0})[0], 1.0);  // 5 / half-span(5)
  EXPECT_DOUBLE_EQ(s.delta_from_unit(Vec{1.0})[0], 5.0);
}

TEST(RangeScaler, MatrixOverloadMatchesVector) {
  RangeScaler s({0.0, 0.0}, {1.0, 2.0});
  Mat x(2, 2, {0.2, 0.4, 0.8, 1.6});
  const Mat u = s.to_unit(x);
  for (std::size_t r = 0; r < 2; ++r) {
    const Vec row(x.row(r).begin(), x.row(r).end());
    const Vec uv = s.to_unit(row);
    EXPECT_DOUBLE_EQ(u(r, 0), uv[0]);
    EXPECT_DOUBLE_EQ(u(r, 1), uv[1]);
  }
}

TEST(RangeScaler, InvalidBoundsThrow) {
  EXPECT_THROW(RangeScaler({1.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(RangeScaler({0.0, 1.0}, {1.0}), std::invalid_argument);
}

TEST(ZScore, TransformedColumnsAreStandardized) {
  Mat samples(100, 2);
  Rng rng(1);
  for (std::size_t r = 0; r < 100; ++r) {
    samples(r, 0) = rng.normal(5.0, 2.0);
    samples(r, 1) = rng.normal(-100.0, 30.0);
  }
  ZScoreNormalizer z;
  z.fit(samples);
  const Mat t = z.transform(samples);
  for (std::size_t c = 0; c < 2; ++c) {
    double m = 0.0, v = 0.0;
    for (std::size_t r = 0; r < 100; ++r) m += t(r, c);
    m /= 100;
    for (std::size_t r = 0; r < 100; ++r) v += (t(r, c) - m) * (t(r, c) - m);
    v /= 100;
    EXPECT_NEAR(m, 0.0, 1e-10);
    EXPECT_NEAR(v, 1.0, 1e-10);
  }
}

TEST(ZScore, RoundTrip) {
  Mat samples(10, 1);
  for (std::size_t r = 0; r < 10; ++r) samples(r, 0) = static_cast<double>(r);
  ZScoreNormalizer z;
  z.fit(samples);
  const Vec x{3.7};
  EXPECT_NEAR(z.inverse(z.transform(x))[0], 3.7, 1e-12);
}

TEST(ZScore, ConstantColumnSafe) {
  Mat samples(5, 1, 2.0);
  ZScoreNormalizer z;
  z.fit(samples);
  const Vec t = z.transform(Vec{2.0});
  EXPECT_DOUBLE_EQ(t[0], 0.0);
  EXPECT_DOUBLE_EQ(z.inverse(t)[0], 2.0);
}

TEST(ZScore, GradientChainRule) {
  Mat samples(4, 1, {0.0, 2.0, 4.0, 6.0});
  ZScoreNormalizer z;
  z.fit(samples);
  // raw = z*std + mean => d raw/d z = std => dz = draw * std; gradient_to_raw
  // maps d/dz -> d/draw = (d/dz) / std.
  const Vec g = z.gradient_to_raw(Vec{1.0});
  EXPECT_NEAR(g[0], 1.0 / z.std()[0], 1e-12);
}

TEST(ZScore, FitEmptyThrows) {
  ZScoreNormalizer z;
  Mat empty(0, 3);
  EXPECT_THROW(z.fit(empty), std::invalid_argument);
}

}  // namespace
}  // namespace maopt::nn
