#include "nn/adam.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace maopt::nn {
namespace {

TEST(Adam, MinimizesQuadratic) {
  Vec x{5.0, -3.0};
  Vec g(2, 0.0);
  Adam opt({{&x, &g}}, {.lr = 0.1});
  for (int i = 0; i < 500; ++i) {
    g[0] = 2.0 * x[0];
    g[1] = 2.0 * x[1];
    opt.step();
  }
  EXPECT_NEAR(x[0], 0.0, 1e-3);
  EXPECT_NEAR(x[1], 0.0, 1e-3);
}

TEST(Adam, StepZeroesGradients) {
  Vec x{1.0};
  Vec g{0.5};
  Adam opt({{&x, &g}}, AdamConfig{});
  opt.step();
  EXPECT_DOUBLE_EQ(g[0], 0.0);
}

TEST(Adam, FirstStepMagnitudeIsLearningRate) {
  // With bias correction, the first Adam step is ~lr * sign(grad).
  Vec x{0.0};
  Vec g{0.3};
  Adam opt({{&x, &g}}, {.lr = 0.01});
  opt.step();
  EXPECT_NEAR(x[0], -0.01, 1e-6);
}

TEST(Adam, WeightDecayShrinksParameters) {
  Vec x{1.0};
  Vec g{0.0};
  Adam opt({{&x, &g}}, {.lr = 0.1, .weight_decay = 0.5});
  opt.step();
  EXPECT_LT(x[0], 1.0);
}

TEST(Adam, HandlesMultipleParameterGroups) {
  Vec a{2.0}, b{-2.0};
  Vec ga(1, 0.0), gb(1, 0.0);
  Adam opt({{&a, &ga}, {&b, &gb}}, {.lr = 0.05});
  for (int i = 0; i < 400; ++i) {
    ga[0] = 2.0 * (a[0] - 1.0);
    gb[0] = 2.0 * (b[0] + 1.0);
    opt.step();
  }
  EXPECT_NEAR(a[0], 1.0, 1e-2);
  EXPECT_NEAR(b[0], -1.0, 1e-2);
}

TEST(Adam, SetLearningRate) {
  Vec x{0.0};
  Vec g{1.0};
  Adam opt({{&x, &g}}, {.lr = 0.01});
  opt.set_learning_rate(0.5);
  EXPECT_DOUBLE_EQ(opt.learning_rate(), 0.5);
  opt.step();
  EXPECT_NEAR(x[0], -0.5, 1e-6);
}

}  // namespace
}  // namespace maopt::nn
