#include "nn/mlp.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/adam.hpp"

namespace maopt::nn {
namespace {

TEST(Mlp, ShapesPropagate) {
  Rng rng(0);
  Mlp net(3, {8, 8}, 2, rng);
  EXPECT_EQ(net.input_size(), 3u);
  EXPECT_EQ(net.output_size(), 2u);
  Mat x(5, 3, 0.1);
  const Mat y = net.forward(x);
  EXPECT_EQ(y.rows(), 5u);
  EXPECT_EQ(y.cols(), 2u);
}

TEST(Mlp, PaperNetHasTwoHiddenHundredUnitLayers) {
  Rng rng(0);
  Mlp net = Mlp::make_paper_net(16, 9, rng, false);
  // 16*100+100 + 100*100+100 + 100*9+9 parameters
  EXPECT_EQ(net.num_parameters(), 16u * 100 + 100 + 100 * 100 + 100 + 100 * 9 + 9);
}

TEST(Mlp, ConstParamsViewMatchesMutableParams) {
  Rng rng(3);
  Mlp net(4, {8, 8}, 2, rng);
  const Mlp& cnet = net;
  const auto mut = net.params();
  const auto ro = cnet.params();
  ASSERT_EQ(mut.size(), ro.size());
  std::size_t total = 0;
  for (std::size_t i = 0; i < mut.size(); ++i) {
    EXPECT_EQ(ro[i].value, mut[i].value);  // same underlying storage
    EXPECT_EQ(ro[i].grad, mut[i].grad);
    total += ro[i].value->size();
  }
  EXPECT_EQ(cnet.num_parameters(), total);
}

TEST(Mlp, FullGradientCheck) {
  Rng rng(1);
  Mlp net(2, {5}, 2, rng, Activation::Tanh, false);
  Mat x(3, 2);
  Rng xr(2);
  for (auto& v : x.data()) v = xr.uniform(-1, 1);

  Mat y = net.forward(x);
  Mat dy(y.rows(), y.cols(), 1.0);
  net.zero_grad();
  const Mat dx = net.backward(dy);

  auto loss = [&](const Mat& input) {
    const Mat out = net.forward(input);
    double s = 0.0;
    for (const double v : out.data()) s += v;
    return s;
  };
  const double eps = 1e-6;
  for (std::size_t i = 0; i < x.data().size(); ++i) {
    Mat xp = x, xm = x;
    xp.data()[i] += eps;
    xm.data()[i] -= eps;
    EXPECT_NEAR(dx.data()[i], (loss(xp) - loss(xm)) / (2 * eps), 1e-6);
  }
  for (const auto& p : net.params()) {
    for (std::size_t i = 0; i < p.value->size(); ++i) {
      const double saved = (*p.value)[i];
      (*p.value)[i] = saved + eps;
      const double lp = loss(x);
      (*p.value)[i] = saved - eps;
      const double lm = loss(x);
      (*p.value)[i] = saved;
      EXPECT_NEAR((*p.grad)[i], (lp - lm) / (2 * eps), 1e-6);
    }
  }
}

TEST(Mlp, InputGradientLeavesParamGradsUntouched) {
  Rng rng(3);
  Mlp net(2, {4}, 1, rng);
  Mat x(2, 2, 0.3);
  net.forward(x);
  net.zero_grad();
  Mat dy(2, 1, 1.0);
  net.input_gradient(dy);
  for (const auto& p : net.params())
    for (const double g : *p.grad) EXPECT_DOUBLE_EQ(g, 0.0);
}

TEST(Mlp, InputGradientMatchesBackward) {
  Rng rng(4);
  Mlp net(3, {6}, 2, rng);
  Mat x(2, 3, 0.2);
  Mat dy(2, 2, 0.7);
  net.forward(x);
  const Mat g1 = net.input_gradient(dy);
  net.forward(x);
  net.zero_grad();
  const Mat g2 = net.backward(dy);
  for (std::size_t i = 0; i < g1.data().size(); ++i)
    EXPECT_DOUBLE_EQ(g1.data()[i], g2.data()[i]);
}

TEST(Mlp, CopyIsDeepAndEquivalent) {
  Rng rng(5);
  Mlp net(2, {4}, 1, rng);
  Mlp copy = net;
  Mat x(1, 2, 0.5);
  const Mat y1 = net.forward(x);
  const Mat y2 = copy.forward(x);
  EXPECT_DOUBLE_EQ(y1(0, 0), y2(0, 0));
  // Mutate the copy; the original must not change.
  copy.params()[0].value->at(0) += 1.0;
  const Mat y3 = net.forward(x);
  EXPECT_DOUBLE_EQ(y1(0, 0), y3(0, 0));
}

TEST(Mlp, OutputTanhBoundsOutputs) {
  Rng rng(6);
  Mlp net(2, {8}, 3, rng, Activation::Relu, /*output_tanh=*/true);
  Mat x(10, 2);
  Rng xr(7);
  for (auto& v : x.data()) v = xr.uniform(-10, 10);
  const Mat y = net.forward(x);
  for (const double v : y.data()) {
    EXPECT_GE(v, -1.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(Mlp, LearnsSineFunction) {
  Rng rng(8);
  Mlp net(1, {32, 32}, 1, rng, Activation::Tanh, false);
  Adam opt(net.params(), {.lr = 5e-3});
  Rng data_rng(9);
  Mat x(64, 1), y(64, 1), grad;
  double final_loss = 1.0;
  for (int step = 0; step < 800; ++step) {
    for (std::size_t i = 0; i < 64; ++i) {
      x(i, 0) = data_rng.uniform(-2.0, 2.0);
      y(i, 0) = std::sin(x(i, 0));
    }
    const Mat pred = net.forward(x);
    final_loss = mse_loss(pred, y, &grad);
    net.backward(grad);
    opt.step();
  }
  EXPECT_LT(final_loss, 1e-3);
}

TEST(MseLoss, KnownValueAndGradient) {
  Mat pred(1, 2, {1.0, 3.0});
  Mat target(1, 2, {0.0, 0.0});
  Mat grad;
  const double loss = mse_loss(pred, target, &grad);
  EXPECT_DOUBLE_EQ(loss, (1.0 + 9.0) / 2.0);
  EXPECT_DOUBLE_EQ(grad(0, 0), 2.0 * 1.0 / 2.0);
  EXPECT_DOUBLE_EQ(grad(0, 1), 2.0 * 3.0 / 2.0);
}

TEST(MseLoss, ShapeMismatchThrows) {
  Mat pred(1, 2), target(2, 1);
  EXPECT_THROW(mse_loss(pred, target, nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace maopt::nn
