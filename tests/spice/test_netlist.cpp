#include "spice/netlist.hpp"

#include <gtest/gtest.h>

#include "spice/devices.hpp"

namespace maopt::spice {
namespace {

TEST(Netlist, GroundAliases) {
  Netlist n;
  EXPECT_EQ(n.node("0"), kGround);
  EXPECT_EQ(n.node("gnd"), kGround);
  EXPECT_EQ(n.node("GND"), kGround);
}

TEST(Netlist, NodesGetStableIds) {
  Netlist n;
  const int a = n.node("a");
  const int b = n.node("b");
  EXPECT_NE(a, b);
  EXPECT_EQ(n.node("a"), a);
  EXPECT_EQ(n.num_nodes(), 2u);
}

TEST(Netlist, FindNodeThrowsOnUnknown) {
  Netlist n;
  n.node("a");
  EXPECT_EQ(n.find_node("a"), 0);
  EXPECT_THROW(n.find_node("zz"), std::invalid_argument);
}

TEST(Netlist, PrepareAssignsBranchIndices) {
  Netlist n;
  const int a = n.node("a");
  const int b = n.node("b");
  auto* v1 = n.add<VSource>(a, n.node("0"), Waveform::dc(1.0));
  auto* v2 = n.add<VSource>(b, n.node("0"), Waveform::dc(2.0));
  n.prepare();
  EXPECT_EQ(n.system_size(), 4u);  // 2 nodes + 2 branches
  EXPECT_EQ(v1->branch_base(), 2);
  EXPECT_EQ(v2->branch_base(), 3);
}

TEST(Netlist, BuildWithoutPrepareThrows) {
  Netlist n;
  n.add<Resistor>(n.node("a"), kGround, 1e3);
  Mat a;
  Vec rhs;
  EXPECT_THROW(n.build_nonlinear_system({0.0}, 1.0, -1.0, 1e-12, a, rhs), std::logic_error);
}

TEST(Netlist, GroundStampsDropped) {
  Netlist n;
  const int a = n.node("a");
  n.add<Resistor>(a, kGround, 2.0);  // g = 0.5
  n.prepare();
  Mat mat;
  Vec rhs;
  Vec x(1, 0.0);
  n.build_nonlinear_system(x, 1.0, -1.0, 0.0, mat, rhs);
  EXPECT_EQ(mat.rows(), 1u);
  EXPECT_DOUBLE_EQ(mat(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(rhs[0], 0.0);
}

TEST(Netlist, GminAppliedToDiagonal) {
  Netlist n;
  n.node("a");
  n.prepare();
  Mat mat;
  Vec rhs;
  Vec x(1, 0.0);
  n.build_nonlinear_system(x, 1.0, -1.0, 1e-3, mat, rhs);
  EXPECT_DOUBLE_EQ(mat(0, 0), 1e-3);
}

TEST(Netlist, VoltageHelperHandlesGround) {
  Vec x{1.5, 2.5};
  EXPECT_DOUBLE_EQ(Netlist::voltage(x, kGround), 0.0);
  EXPECT_DOUBLE_EQ(Netlist::voltage(x, 1), 2.5);
}

TEST(Waveform, DcConstant) {
  const auto w = Waveform::dc(3.3);
  EXPECT_DOUBLE_EQ(w.value(0.0), 3.3);
  EXPECT_DOUBLE_EQ(w.value(1e-3), 3.3);
}

TEST(Waveform, PwlInterpolatesAndClamps) {
  const auto w = Waveform::pwl({{1.0, 0.0}, {2.0, 10.0}});
  EXPECT_DOUBLE_EQ(w.value(0.5), 0.0);    // before first point
  EXPECT_DOUBLE_EQ(w.value(1.5), 5.0);    // interpolated
  EXPECT_DOUBLE_EQ(w.value(3.0), 10.0);   // after last point
}

TEST(Waveform, PwlEmptyThrows) { EXPECT_THROW(Waveform::pwl({}), std::invalid_argument); }

TEST(Waveform, PulseShape) {
  const auto w = Waveform::pulse(0.0, 1.0, /*delay=*/1.0, /*rise=*/0.5, /*fall=*/0.5,
                                 /*width=*/2.0, /*period=*/10.0);
  EXPECT_DOUBLE_EQ(w.value(0.5), 0.0);   // before delay
  EXPECT_DOUBLE_EQ(w.value(1.25), 0.5);  // mid-rise
  EXPECT_DOUBLE_EQ(w.value(2.0), 1.0);   // flat top
  EXPECT_DOUBLE_EQ(w.value(3.75), 0.5);  // mid-fall
  EXPECT_DOUBLE_EQ(w.value(5.0), 0.0);   // back to v1
  EXPECT_DOUBLE_EQ(w.value(12.0), 1.0);  // periodic repeat (11s -> 2s into cycle)
}

TEST(Devices, InvalidValuesThrow) {
  EXPECT_THROW(Resistor(0, 1, 0.0), std::invalid_argument);
  EXPECT_THROW(Resistor(0, 1, -5.0), std::invalid_argument);
  EXPECT_THROW(Capacitor(0, 1, -1e-12), std::invalid_argument);
  EXPECT_THROW(Inductor(0, 1, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace maopt::spice
