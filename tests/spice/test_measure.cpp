#include "spice/measure.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <numbers>

namespace maopt::spice {
namespace {

/// Builds an AcSweep for a single-pole transfer H(f) = A / (1 + j f/fp) at
/// node 0 of a 1-node system.
AcSweep single_pole_sweep(double a0, double fp, double f_lo, double f_hi, int ppd) {
  AcSweep sweep;
  sweep.frequencies = log_frequency_grid(f_lo, f_hi, ppd);
  for (const double f : sweep.frequencies) {
    const std::complex<double> h = a0 / std::complex<double>(1.0, f / fp);
    sweep.solutions.push_back({h});
  }
  return sweep;
}

TEST(Measure, DcGainDb) {
  const auto sweep = single_pole_sweep(100.0, 1e3, 1.0, 1e7, 10);
  EXPECT_NEAR(dc_gain_db(sweep, 0), 40.0, 0.01);
}

TEST(Measure, UnityGainFrequencySinglePole) {
  // For a0 >> 1: f_ugf ~ a0 * fp.
  const auto sweep = single_pole_sweep(100.0, 1e3, 1.0, 1e7, 20);
  const auto fu = unity_gain_frequency(sweep, 0);
  ASSERT_TRUE(fu.has_value());
  EXPECT_NEAR(*fu, 1e5, 1e5 * 0.02);
}

TEST(Measure, UnityGainFrequencyAbsentWhenGainBelowUnity) {
  const auto sweep = single_pole_sweep(0.5, 1e3, 1.0, 1e7, 10);
  EXPECT_FALSE(unity_gain_frequency(sweep, 0).has_value());
}

TEST(Measure, PhaseMarginSinglePoleIsNinetyDegrees) {
  const auto sweep = single_pole_sweep(1000.0, 1e3, 1.0, 1e9, 20);
  const auto pm = phase_margin_deg(sweep, 0);
  ASSERT_TRUE(pm.has_value());
  EXPECT_NEAR(*pm, 90.0, 1.5);
}

TEST(Measure, PhaseMarginInvertingPathUsesRelativePhase) {
  // Same single pole but with an inverting DC sign: PM must be unchanged.
  auto sweep = single_pole_sweep(1000.0, 1e3, 1.0, 1e9, 20);
  for (auto& sol : sweep.solutions) sol[0] = -sol[0];
  const auto pm = phase_margin_deg(sweep, 0);
  ASSERT_TRUE(pm.has_value());
  EXPECT_NEAR(*pm, 90.0, 1.5);
}

TEST(Measure, TwoPolePhaseMarginDropsBelowNinety) {
  AcSweep sweep;
  sweep.frequencies = log_frequency_grid(1.0, 1e9, 20);
  const double fp1 = 1e3, fp2 = 1e6, a0 = 1000.0;
  for (const double f : sweep.frequencies) {
    const auto h = a0 / (std::complex<double>(1.0, f / fp1) * std::complex<double>(1.0, f / fp2));
    sweep.solutions.push_back({h});
  }
  const auto pm = phase_margin_deg(sweep, 0);
  ASSERT_TRUE(pm.has_value());
  // Analytic: |H|=1 at f ~ 7.9e5 Hz, PM = 180 - atan(f/fp1) - atan(f/fp2)
  // ~ 51.9 degrees (the second pole sits just above the unity crossing).
  EXPECT_NEAR(*pm, 51.9, 3.0);
}

TEST(Measure, Bandwidth3DbOfSinglePole) {
  const auto sweep = single_pole_sweep(10.0, 1e4, 1.0, 1e8, 20);
  const auto bw = bandwidth_3db(sweep, 0);
  ASSERT_TRUE(bw.has_value());
  EXPECT_NEAR(*bw, 1e4, 1e4 * 0.03);
}

TEST(Measure, MagnitudeAtInterpolates) {
  const auto sweep = single_pole_sweep(100.0, 1e3, 1.0, 1e7, 5);
  const double m = magnitude_at(sweep, 0, 1e3);
  EXPECT_NEAR(m, 100.0 / std::sqrt(2.0), 100.0 / std::sqrt(2.0) * 0.05);
}

TEST(Measure, PhaseUnwrappingIsContinuous) {
  AcSweep sweep;
  sweep.frequencies = log_frequency_grid(1.0, 1e9, 20);
  // Three poles: total phase approaches -270, crossing the -180 wrap.
  for (const double f : sweep.frequencies) {
    const auto pole = std::complex<double>(1.0, f / 1e4);
    sweep.solutions.push_back({1000.0 / (pole * pole * pole)});
  }
  const auto ph = phase_deg_unwrapped(sweep, 0);
  for (std::size_t k = 1; k < ph.size(); ++k) EXPECT_LT(std::abs(ph[k] - ph[k - 1]), 90.0);
  EXPECT_LT(ph.back(), -240.0);
}

TEST(Measure, SettlingTimeExactOnSyntheticExponential) {
  std::vector<double> time, wave;
  const double tau = 1e-6;
  for (int k = 0; k <= 1000; ++k) {
    const double t = k * 1e-8;
    time.push_back(t);
    wave.push_back(1.0 - std::exp(-t / tau));
  }
  // 1% band: settles at t = tau * ln(100) ~ 4.605 us.
  const auto st = settling_time(time, wave, 0.0, 1.0, 0.01);
  ASSERT_TRUE(st.has_value());
  EXPECT_NEAR(*st, 4.605e-6, 0.05e-6);
}

TEST(Measure, SettlingTimeZeroWhenAlreadySettled) {
  const std::vector<double> time{0.0, 1.0, 2.0};
  const std::vector<double> wave{1.0, 1.0, 1.0};
  const auto st = settling_time(time, wave, 0.0, 1.0, 0.01);
  ASSERT_TRUE(st.has_value());
  EXPECT_DOUBLE_EQ(*st, 0.0);
}

TEST(Measure, SettlingTimeNulloptWhenNeverSettles) {
  const std::vector<double> time{0.0, 1.0, 2.0};
  const std::vector<double> wave{0.0, 0.5, 2.0};
  EXPECT_FALSE(settling_time(time, wave, 0.0, 1.0, 0.01).has_value());
}

TEST(Measure, OvershootFraction) {
  const std::vector<double> wave{0.0, 0.6, 1.3, 1.1, 1.0};
  EXPECT_NEAR(overshoot_fraction(wave, 0, 0.0, 1.0), 0.3, 1e-12);
}

TEST(Measure, OvershootZeroForMonotone) {
  const std::vector<double> wave{0.0, 0.5, 0.9, 1.0};
  EXPECT_DOUBLE_EQ(overshoot_fraction(wave, 0, 0.0, 1.0), 0.0);
}

}  // namespace
}  // namespace maopt::spice
