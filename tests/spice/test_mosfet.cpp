#include "spice/mosfet.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "spice/dc_analysis.hpp"
#include "spice/devices.hpp"

namespace maopt::spice {
namespace {

TEST(MosEval, CutoffBelowThreshold) {
  const auto e = mos_level1_eval(0.3, 1.0, 0.45, 1e-3, 0.1);
  EXPECT_TRUE(e.cutoff);
  EXPECT_DOUBLE_EQ(e.id, 0.0);
  EXPECT_DOUBLE_EQ(e.gm, 0.0);
}

TEST(MosEval, SaturationCurrent) {
  // id = k/2 * vov^2 * (1 + lambda*vds)
  const auto e = mos_level1_eval(1.0, 1.5, 0.45, 2e-3, 0.1);
  EXPECT_TRUE(e.saturated);
  const double vov = 0.55;
  EXPECT_NEAR(e.id, 0.5 * 2e-3 * vov * vov * 1.15, 1e-12);
  EXPECT_NEAR(e.gm, 2e-3 * vov * 1.15, 1e-12);
  EXPECT_NEAR(e.gds, 0.5 * 2e-3 * vov * vov * 0.1, 1e-12);
}

TEST(MosEval, TriodeCurrent) {
  const auto e = mos_level1_eval(1.0, 0.2, 0.45, 2e-3, 0.0);
  EXPECT_FALSE(e.saturated);
  EXPECT_FALSE(e.cutoff);
  EXPECT_NEAR(e.id, 2e-3 * (0.55 - 0.1) * 0.2, 1e-12);
}

TEST(MosEval, ContinuousAtSaturationBoundary) {
  const double vov = 0.55;
  const auto sat = mos_level1_eval(1.0, vov + 1e-9, 0.45, 2e-3, 0.1);
  const auto tri = mos_level1_eval(1.0, vov - 1e-9, 0.45, 2e-3, 0.1);
  EXPECT_NEAR(sat.id, tri.id, 1e-9);
  EXPECT_NEAR(sat.gm, tri.gm, 1e-6);
}

TEST(MosEval, GmGdsMatchFiniteDifference) {
  const double vth = 0.45, k = 2e-3, lambda = 0.08;
  for (const double vgs : {0.7, 1.0, 1.4}) {
    for (const double vds : {0.1, 0.4, 1.2}) {
      const auto e = mos_level1_eval(vgs, vds, vth, k, lambda);
      const double h = 1e-7;
      const double gm_fd = (mos_level1_eval(vgs + h, vds, vth, k, lambda).id -
                            mos_level1_eval(vgs - h, vds, vth, k, lambda).id) /
                           (2 * h);
      const double gds_fd = (mos_level1_eval(vgs, vds + h, vth, k, lambda).id -
                             mos_level1_eval(vgs, vds - h, vth, k, lambda).id) /
                            (2 * h);
      EXPECT_NEAR(e.gm, gm_fd, 1e-6) << vgs << "/" << vds;
      EXPECT_NEAR(e.gds, gds_fd, 1e-6) << vgs << "/" << vds;
    }
  }
}

TEST(Mosfet, NmosOperatingPointCurrent) {
  Netlist n;
  const int d = n.node("d");
  const int g = n.node("g");
  n.add<VSource>(d, kGround, Waveform::dc(1.8));
  n.add<VSource>(g, kGround, Waveform::dc(1.0));
  auto* m = n.add<Mosfet>(d, g, kGround, kGround, MosModel::nmos_180(), 10e-6, 1e-6);
  DcAnalysis dc;
  const auto r = dc.solve(n);
  ASSERT_TRUE(r.converged);
  // k = 280u * 10 = 2.8 mA/V^2, vov = 0.55, lambda = 0.08
  const double expect = 0.5 * 2.8e-3 * 0.55 * 0.55 * (1 + 0.08 * 1.8);
  EXPECT_NEAR(m->drain_current(r.x), expect, 1e-8);
  EXPECT_TRUE(m->operating_point(r.x).saturated);
}

TEST(Mosfet, MultiplierScalesCurrent) {
  for (const double mult : {1.0, 4.0}) {
    Netlist n;
    const int d = n.node("d");
    const int g = n.node("g");
    n.add<VSource>(d, kGround, Waveform::dc(1.8));
    n.add<VSource>(g, kGround, Waveform::dc(1.0));
    auto* m = n.add<Mosfet>(d, g, kGround, kGround, MosModel::nmos_180(), 10e-6, 1e-6, mult);
    DcAnalysis dc;
    const auto r = dc.solve(n);
    ASSERT_TRUE(r.converged);
    static double base = 0.0;
    if (mult == 1.0)
      base = m->drain_current(r.x);
    else
      EXPECT_NEAR(m->drain_current(r.x), base * mult, 1e-10);
  }
}

TEST(Mosfet, PmosConductsWithNegativeVgs) {
  Netlist n;
  const int s = n.node("s");
  const int d = n.node("d");
  n.add<VSource>(s, kGround, Waveform::dc(1.8));  // source at vdd
  n.add<VSource>(d, kGround, Waveform::dc(0.5));
  const int g = n.node("g");
  n.add<VSource>(g, kGround, Waveform::dc(0.8));  // vsg = 1.0
  auto* m = n.add<Mosfet>(d, g, s, s, MosModel::pmos_180(), 10e-6, 1e-6);
  DcAnalysis dc;
  const auto r = dc.solve(n);
  ASSERT_TRUE(r.converged);
  // Current flows source -> drain: drain_current (into drain) is negative.
  EXPECT_LT(m->drain_current(r.x), -1e-5);
}

TEST(Mosfet, DrainSourceSwapSymmetry) {
  // Same device, terminals swapped: current negates exactly.
  auto run = [](bool swapped) {
    Netlist n;
    const int a = n.node("a");
    const int g = n.node("g");
    n.add<VSource>(a, kGround, Waveform::dc(0.8));
    n.add<VSource>(g, kGround, Waveform::dc(1.3));
    auto* m = swapped
                  ? n.add<Mosfet>(kGround, g, a, kGround, MosModel::nmos_180(), 5e-6, 0.5e-6)
                  : n.add<Mosfet>(a, g, kGround, kGround, MosModel::nmos_180(), 5e-6, 0.5e-6);
    DcAnalysis dc;
    const auto r = dc.solve(n);
    EXPECT_TRUE(r.converged);
    return m->drain_current(r.x);
  };
  const double forward = run(false);
  const double reverse = run(true);
  EXPECT_GT(forward, 0.0);
  EXPECT_NEAR(forward, -reverse, 1e-10);
}

TEST(Mosfet, CapsDependOnRegion) {
  const MosModel nm = MosModel::nmos_180();
  Mosfet m(0, 1, 2, 2, nm, 10e-6, 1e-6);
  // op vector: nodes 0(d),1(g),2(s)
  Vec sat_op{1.8, 1.0, 0.0};
  Vec cut_op{1.8, 0.0, 0.0};
  std::vector<CapacitorStamp> sat_caps, cut_caps;
  m.collect_caps(sat_caps, sat_op);
  m.collect_caps(cut_caps, cut_op);
  ASSERT_EQ(sat_caps.size(), 4u);
  // cgs in saturation (2/3 Cox WL + Cov) exceeds cutoff (Cov only).
  EXPECT_GT(sat_caps[0].capacitance, cut_caps[0].capacitance);
  // cgd equals the overlap cap in both regions.
  EXPECT_NEAR(sat_caps[1].capacitance, cut_caps[1].capacitance, 1e-20);
}

TEST(Mosfet, NoiseOnlyWhenConducting) {
  const MosModel nm = MosModel::nmos_180();
  Mosfet m(0, 1, 2, 2, nm, 10e-6, 1e-6);
  std::vector<NoiseSource> on, off;
  m.collect_noise(on, {1.8, 1.0, 0.0});
  m.collect_noise(off, {1.8, 0.0, 0.0});
  EXPECT_EQ(on.size(), 1u);
  EXPECT_TRUE(off.empty());
  EXPECT_GT(on[0].white, 0.0);
  EXPECT_GT(on[0].flicker, 0.0);
  // Flicker rises toward low frequency.
  EXPECT_GT(on[0].psd(10.0), on[0].psd(1e6));
}

TEST(Mosfet, InvalidGeometryThrows) {
  const MosModel nm = MosModel::nmos_180();
  EXPECT_THROW(Mosfet(0, 1, 2, 2, nm, 0.0, 1e-6), std::invalid_argument);
  EXPECT_THROW(Mosfet(0, 1, 2, 2, nm, 1e-6, -1e-6), std::invalid_argument);
  EXPECT_THROW(Mosfet(0, 1, 2, 2, nm, 1e-6, 1e-6, 0.5), std::invalid_argument);
}

}  // namespace
}  // namespace maopt::spice
