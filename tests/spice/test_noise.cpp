#include "spice/noise_analysis.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "spice/ac_analysis.hpp"
#include "spice/dc_analysis.hpp"
#include "spice/devices.hpp"
#include "spice/mosfet.hpp"

namespace maopt::spice {
namespace {

constexpr double kT4 = 4.0 * 1.380649e-23 * 300.0;

TEST(Noise, SingleResistorPsdIs4kTR) {
  Netlist n;
  const int out = n.node("out");
  n.add<Resistor>(out, kGround, 1e3);
  n.prepare();
  Vec op(n.system_size(), 0.0);
  NoiseAnalysis noise;
  const auto r = noise.run(n, op, out, kGround, {1e3});
  ASSERT_EQ(r.output_psd.size(), 1u);
  EXPECT_NEAR(r.output_psd[0], kT4 * 1e3, kT4 * 1e3 * 1e-6);
}

TEST(Noise, ParallelResistorsGiveParallelResistance) {
  Netlist n;
  const int out = n.node("out");
  n.add<Resistor>(out, kGround, 2e3);
  n.add<Resistor>(out, kGround, 2e3);
  n.prepare();
  Vec op(n.system_size(), 0.0);
  NoiseAnalysis noise;
  const auto r = noise.run(n, op, out, kGround, {1e3});
  EXPECT_NEAR(r.output_psd[0], kT4 * 1e3, kT4 * 1e3 * 1e-6);
}

TEST(Noise, RcFilterShapesResistorNoise) {
  // PSD(f) = 4kTR / (1 + (f/fc)^2): check the corner value.
  Netlist n;
  const int out = n.node("out");
  n.add<Resistor>(out, kGround, 1e3);
  n.add<Capacitor>(out, kGround, 1e-9);
  n.prepare();
  Vec op(n.system_size(), 0.0);
  const double fc = 1.0 / (2.0 * 3.14159265358979 * 1e3 * 1e-9);
  NoiseAnalysis noise;
  const auto r = noise.run(n, op, out, kGround, {fc});
  EXPECT_NEAR(r.output_psd[0], kT4 * 1e3 / 2.0, kT4 * 1e3 * 1e-4);
}

TEST(Noise, TotalRmsOfRcApproacheskTOverC) {
  // Integrated noise of an RC filter -> sqrt(kT/C), independent of R.
  Netlist n;
  const int out = n.node("out");
  n.add<Resistor>(out, kGround, 1e3);
  n.add<Capacitor>(out, kGround, 1e-12);
  n.prepare();
  Vec op(n.system_size(), 0.0);
  NoiseAnalysis noise;
  const auto freqs = log_frequency_grid(1.0, 1e12, 20);
  const auto r = noise.run(n, op, out, kGround, freqs);
  const double ktc = std::sqrt(1.380649e-23 * 300.0 / 1e-12);
  EXPECT_NEAR(r.total_rms, ktc, ktc * 0.02);
}

TEST(Noise, VoltageSourceShortsNoiseAtOutput) {
  Netlist n;
  const int out = n.node("out");
  n.add<Resistor>(out, kGround, 1e3);
  n.add<VSource>(out, kGround, Waveform::dc(1.0));
  DcAnalysis dc;
  const auto opr = dc.solve(n);
  ASSERT_TRUE(opr.converged);
  NoiseAnalysis noise;
  const auto r = noise.run(n, opr.x, out, kGround, {1e3});
  EXPECT_LT(r.output_psd[0], 1e-25);
}

TEST(Noise, MosfetChannelNoiseAppearsAtAmpOutput) {
  // CS amp: output noise ~ (4kT(2/3)gm + 4kT/R/R... ) * Rout^2 at mid-band.
  Netlist n;
  const int vdd = n.node("vdd");
  const int in = n.node("in");
  const int out = n.node("out");
  n.add<VSource>(vdd, kGround, Waveform::dc(1.8));
  n.add<VSource>(in, kGround, Waveform::dc(0.7));
  n.add<Resistor>(vdd, out, 20e3);
  auto* m = n.add<Mosfet>(out, in, kGround, kGround, MosModel::nmos_180(), 20e-6, 1e-6);
  DcAnalysis dc;
  const auto opr = dc.solve(n);
  ASSERT_TRUE(opr.converged);
  const auto e = m->operating_point(opr.x);
  NoiseAnalysis noise;
  // High frequency point to make flicker negligible.
  const auto r = noise.run(n, opr.x, out, kGround, {100e6});
  const double rout = 1.0 / (1.0 / 20e3 + e.gds);
  const double expect = (kT4 * (2.0 / 3.0) * e.gm + kT4 / 20e3) * rout * rout;
  EXPECT_NEAR(r.output_psd[0], expect, expect * 0.05);
}

TEST(Noise, IntegratePsdTrapezoid) {
  const std::vector<double> f{0.0, 1.0, 3.0};
  const std::vector<double> psd{2.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(integrate_psd(f, psd), 6.0);
}

TEST(Noise, FlickerDominatesAtLowFrequency) {
  Netlist n;
  const int vdd = n.node("vdd");
  const int in = n.node("in");
  const int out = n.node("out");
  n.add<VSource>(vdd, kGround, Waveform::dc(1.8));
  n.add<VSource>(in, kGround, Waveform::dc(0.7));
  n.add<Resistor>(vdd, out, 20e3);
  n.add<Mosfet>(out, in, kGround, kGround, MosModel::nmos_180(), 20e-6, 1e-6);
  DcAnalysis dc;
  const auto opr = dc.solve(n);
  ASSERT_TRUE(opr.converged);
  NoiseAnalysis noise;
  const auto r = noise.run(n, opr.x, out, kGround, {1.0, 1e8});
  EXPECT_GT(r.output_psd[0], 5.0 * r.output_psd[1]);
}

}  // namespace
}  // namespace maopt::spice
