#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "spice/measure.hpp"

namespace maopt::spice {
namespace {

/// Three identical poles: phase reaches -270, crossing -180 at f = sqrt(3)*fp
/// where each pole contributes 60 degrees.
AcSweep triple_pole_sweep(double a0, double fp) {
  AcSweep sweep;
  sweep.frequencies = log_frequency_grid(1.0, 1e9, 40);
  for (const double f : sweep.frequencies) {
    const auto pole = std::complex<double>(1.0, f / fp);
    sweep.solutions.push_back({a0 / (pole * pole * pole)});
  }
  return sweep;
}

TEST(GainMargin, TriplePoleAnalyticValue) {
  // At the -180 crossing f = sqrt(3) fp: |H| = a0 / (1+3)^{3/2} = a0 / 8.
  const auto sweep = triple_pole_sweep(100.0, 1e4);
  const auto gm = gain_margin_db(sweep, 0);
  ASSERT_TRUE(gm.has_value());
  EXPECT_NEAR(*gm, -20.0 * std::log10(100.0 / 8.0), 0.3);
}

TEST(GainMargin, PositiveWhenGainBelowUnityAtCrossing) {
  const auto sweep = triple_pole_sweep(4.0, 1e4);  // |H| at crossing = 0.5
  const auto gm = gain_margin_db(sweep, 0);
  ASSERT_TRUE(gm.has_value());
  EXPECT_NEAR(*gm, 6.02, 0.3);
}

TEST(GainMargin, NulloptForSinglePole) {
  AcSweep sweep;
  sweep.frequencies = log_frequency_grid(1.0, 1e9, 20);
  for (const double f : sweep.frequencies)
    sweep.solutions.push_back({10.0 / std::complex<double>(1.0, f / 1e4)});
  EXPECT_FALSE(gain_margin_db(sweep, 0).has_value());
}

TEST(SlewRate, MaxSlopeOfRamp) {
  const std::vector<double> t{0.0, 1e-9, 2e-9, 3e-9};
  const std::vector<double> v{0.0, 0.1, 0.5, 0.6};
  EXPECT_NEAR(slew_rate(t, v), 0.4 / 1e-9, 1e-3);
}

TEST(SlewRate, ZeroForFlatRecord) {
  const std::vector<double> t{0.0, 1.0, 2.0};
  const std::vector<double> v{1.0, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(slew_rate(t, v), 0.0);
}

TEST(SlewRate, SizeMismatchThrows) {
  EXPECT_THROW(slew_rate({0.0, 1.0}, {0.0}), std::invalid_argument);
}

TEST(RiseTime, ExponentialStepMatchesTheory) {
  // v(t) = 1 - exp(-t/tau): rise time (10-90%) = tau * ln(9) ~ 2.197 tau.
  std::vector<double> t, v;
  const double tau = 1e-6;
  for (int k = 0; k <= 2000; ++k) {
    t.push_back(k * 5e-9);
    v.push_back(1.0 - std::exp(-t.back() / tau));
  }
  const auto rt = rise_time(t, v, 0.0, 0.0, 1.0);
  ASSERT_TRUE(rt.has_value());
  EXPECT_NEAR(*rt, tau * std::log(9.0), tau * 0.02);
}

TEST(RiseTime, FallingStepMeasured) {
  std::vector<double> t, v;
  for (int k = 0; k <= 100; ++k) {
    t.push_back(k * 1e-9);
    v.push_back(1.0 - 0.01 * k);  // linear fall 1 -> 0
  }
  const auto rt = rise_time(t, v, 0.0, 1.0, 0.0);
  ASSERT_TRUE(rt.has_value());
  EXPECT_NEAR(*rt, 80e-9, 2e-9);  // 10%..90% of a 100 ns linear ramp
}

TEST(RiseTime, NulloptWhenStepNeverCompletes) {
  const std::vector<double> t{0.0, 1.0, 2.0};
  const std::vector<double> v{0.0, 0.2, 0.4};  // never reaches 90%
  EXPECT_FALSE(rise_time(t, v, 0.0, 0.0, 1.0).has_value());
}

}  // namespace
}  // namespace maopt::spice
