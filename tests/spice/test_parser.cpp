#include "spice/parser.hpp"

#include <gtest/gtest.h>

#include "spice/ac_analysis.hpp"
#include "spice/dc_analysis.hpp"

namespace maopt::spice {
namespace {

TEST(SpiceValue, PlainNumbers) {
  EXPECT_DOUBLE_EQ(parse_spice_value("1.5"), 1.5);
  EXPECT_DOUBLE_EQ(parse_spice_value("-3"), -3.0);
  EXPECT_DOUBLE_EQ(parse_spice_value("1e-9"), 1e-9);
}

TEST(SpiceValue, EngineeringSuffixes) {
  EXPECT_DOUBLE_EQ(parse_spice_value("1k"), 1e3);
  EXPECT_DOUBLE_EQ(parse_spice_value("2.2u"), 2.2e-6);
  EXPECT_DOUBLE_EQ(parse_spice_value("100f"), 100e-15);
  EXPECT_DOUBLE_EQ(parse_spice_value("10p"), 10e-12);
  EXPECT_DOUBLE_EQ(parse_spice_value("5n"), 5e-9);
  EXPECT_DOUBLE_EQ(parse_spice_value("3m"), 3e-3);
  EXPECT_DOUBLE_EQ(parse_spice_value("2meg"), 2e6);
  EXPECT_DOUBLE_EQ(parse_spice_value("1g"), 1e9);
  EXPECT_DOUBLE_EQ(parse_spice_value("4t"), 4e12);
}

TEST(SpiceValue, UnitLettersAfterSuffixIgnored) {
  EXPECT_DOUBLE_EQ(parse_spice_value("10pF"), 10e-12);
  EXPECT_DOUBLE_EQ(parse_spice_value("1kOhm"), 1e3);
}

TEST(SpiceValue, MalformedThrows) {
  EXPECT_THROW(parse_spice_value(""), std::invalid_argument);
  EXPECT_THROW(parse_spice_value("abc"), std::invalid_argument);
  EXPECT_THROW(parse_spice_value("1.5x"), std::invalid_argument);
}

TEST(SpiceValue, MegVersusMilli) {
  // The classic SPICE trap: M is milli, MEG is mega — in any case mix.
  EXPECT_DOUBLE_EQ(parse_spice_value("3M"), 3e-3);
  EXPECT_DOUBLE_EQ(parse_spice_value("3m"), 3e-3);
  EXPECT_DOUBLE_EQ(parse_spice_value("3MEG"), 3e6);
  EXPECT_DOUBLE_EQ(parse_spice_value("3Meg"), 3e6);
  EXPECT_DOUBLE_EQ(parse_spice_value("2MEGHz"), 2e6);  // unit letters after MEG
  EXPECT_DOUBLE_EQ(parse_spice_value("50mV"), 50e-3);  // V is a unit, not a suffix
}

TEST(SpiceValue, MilSuffix) {
  EXPECT_DOUBLE_EQ(parse_spice_value("1mil"), 25.4e-6);
  EXPECT_DOUBLE_EQ(parse_spice_value("5MIL"), 5 * 25.4e-6);
  EXPECT_DOUBLE_EQ(parse_spice_value("2milInch"), 2 * 25.4e-6);
}

TEST(SpiceValue, ExponentThenSuffix) {
  // stod consumes the exponent; the engineering suffix still multiplies.
  EXPECT_DOUBLE_EQ(parse_spice_value("1.5e2u"), 1.5e2 * 1e-6);
  EXPECT_DOUBLE_EQ(parse_spice_value("1e3k"), 1e6);
  EXPECT_DOUBLE_EQ(parse_spice_value("2E-1m"), 2e-4);
}

TEST(SpiceValue, NegativeValuesKeepSuffix) {
  EXPECT_DOUBLE_EQ(parse_spice_value("-2.2u"), -2.2e-6);
  EXPECT_DOUBLE_EQ(parse_spice_value("-1meg"), -1e6);
  EXPECT_DOUBLE_EQ(parse_spice_value("-100f"), -100e-15);
}

TEST(Parser, ResistorDividerDeck) {
  const auto parsed = parse_netlist(R"(
* simple divider
V1 vin 0 DC 10
R1 vin mid 1k
R2 mid 0 3k
)");
  EXPECT_EQ(parsed.devices.size(), 3u);
  Netlist& n = const_cast<Netlist&>(parsed.netlist);
  DcAnalysis dc;
  const auto r = dc.solve(n);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(Netlist::voltage(r.x, parsed.netlist.find_node("mid")), 7.5, 1e-6);
}

TEST(Parser, BareValueSourceShorthand) {
  const auto parsed = parse_netlist("V1 a 0 1.8\nR1 a 0 1k\n");
  Netlist& n = const_cast<Netlist&>(parsed.netlist);
  DcAnalysis dc;
  const auto r = dc.solve(n);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(Netlist::voltage(r.x, parsed.netlist.find_node("a")), 1.8, 1e-9);
}

TEST(Parser, AcMagnitudeAndRcResponse) {
  auto parsed = parse_netlist(R"(
V1 in 0 DC 0 AC 1
R1 in out 1k
C1 out 0 1u
)");
  Vec op(parsed.netlist.system_size(), 0.0);
  AcAnalysis ac;
  const double fc = 1.0 / (2.0 * 3.14159265358979 * 1e-3);
  const auto sweep = ac.run(parsed.netlist, op, {fc});
  EXPECT_NEAR(std::abs(sweep.voltage(0, parsed.netlist.find_node("out"))), 1.0 / std::sqrt(2.0),
              1e-4);
}

TEST(Parser, MosfetWithModelCard) {
  auto parsed = parse_netlist(R"(
.model mynmos NMOS VTO=0.5 KP=200u
Vd d 0 1.8
Vg g 0 1.0
M1 d g 0 0 mynmos W=10u L=1u
)");
  DcAnalysis dc;
  const auto r = dc.solve(parsed.netlist);
  ASSERT_TRUE(r.converged);
  auto* m1 = parsed.device<Mosfet>("M1");
  // vov = 0.5, k = 200u*10 = 2m, lambda = 0.08 (default nmos_180 lambda_l/L)
  const double expect = 0.5 * 2e-3 * 0.25 * (1 + 0.08 * 1.8);
  EXPECT_NEAR(m1->drain_current(r.x), expect, 1e-8);
}

TEST(Parser, PulseAndPwlSources) {
  auto parsed = parse_netlist(R"(
V1 a 0 PULSE(0 1 1u 10n 10n 2u 10u)
V2 b 0 PWL(0 0 1u 0 2u 5)
R1 a 0 1k
R2 b 0 1k
)");
  auto* v1 = parsed.device<VSource>("V1");
  EXPECT_DOUBLE_EQ(v1->waveform().value(0.5e-6), 0.0);
  EXPECT_DOUBLE_EQ(v1->waveform().value(2e-6), 1.0);
  auto* v2 = parsed.device<VSource>("V2");
  EXPECT_DOUBLE_EQ(v2->waveform().value(1.5e-6), 2.5);
}

TEST(Parser, VcvsAndInductor) {
  auto parsed = parse_netlist(R"(
V1 in 0 2
E1 out 0 in 0 5
L1 out lx 1m
R1 lx 0 1k
)");
  DcAnalysis dc;
  const auto r = dc.solve(parsed.netlist);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(Netlist::voltage(r.x, parsed.netlist.find_node("out")), 10.0, 1e-6);
  EXPECT_NEAR(Netlist::voltage(r.x, parsed.netlist.find_node("lx")), 10.0, 1e-6);
}

TEST(Parser, CommentsAndBlankLinesIgnored) {
  const auto parsed = parse_netlist(R"(
* header comment

R1 a 0 1k ; trailing comment
* another
)");
  EXPECT_EQ(parsed.devices.size(), 1u);
}

TEST(Parser, CaseInsensitiveElementNames) {
  const auto parsed = parse_netlist("r1 a 0 1k\nc1 a 0 1p\n");
  EXPECT_NE(parsed.devices.find("R1"), parsed.devices.end());
  EXPECT_NE(parsed.devices.find("C1"), parsed.devices.end());
}

TEST(Parser, ErrorsCarryLineNumbers) {
  try {
    parse_netlist("R1 a 0 1k\nQ1 a b c\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2);
  }
}

TEST(Parser, UnknownModelIsError) {
  EXPECT_THROW(parse_netlist("M1 d g 0 0 nosuch W=1u L=1u\n"), ParseError);
}

TEST(Parser, MissingModelCardFieldsError) {
  EXPECT_THROW(parse_netlist(".model m NMOS FOO=1\n"), ParseError);
  EXPECT_THROW(parse_netlist(".model m BJT\n"), ParseError);
}

TEST(Parser, MalformedElementArityError) {
  EXPECT_THROW(parse_netlist("R1 a 0\n"), ParseError);
  EXPECT_THROW(parse_netlist("E1 a 0 b\n"), ParseError);
}

TEST(Parser, DeviceLookupTypeMismatch) {
  const auto parsed = parse_netlist("R1 a 0 1k\n");
  EXPECT_THROW(parsed.device<Capacitor>("R1"), std::runtime_error);
  EXPECT_THROW(parsed.device<Resistor>("R9"), std::runtime_error);
}

TEST(Parser, UnknownDotCardsBecomeWarnings) {
  const auto parsed = parse_netlist(R"(
R1 a 0 1k
.options reltol=1e-4
.temp 27
)");
  EXPECT_EQ(parsed.devices.size(), 1u);  // parsing continued past the cards
  ASSERT_EQ(parsed.warnings.size(), 2u);
  EXPECT_NE(parsed.warnings[0].find("line 3"), std::string::npos);
  EXPECT_NE(parsed.warnings[0].find(".options"), std::string::npos);
  EXPECT_NE(parsed.warnings[1].find(".temp"), std::string::npos);
}

TEST(Parser, EndCardTerminatesDeck) {
  const auto parsed = parse_netlist(R"(
R1 a 0 1k
.end
R2 a 0 2k
this line would be a parse error if it were reached
)");
  EXPECT_EQ(parsed.devices.size(), 1u);
  EXPECT_EQ(parsed.devices.count("R2"), 0u);
  EXPECT_TRUE(parsed.warnings.empty());
}

TEST(ParseErrorContext, PlainLineOnlyForm) {
  const ParseError e(7, "bad card");
  EXPECT_EQ(e.line(), 7);
  EXPECT_TRUE(e.file().empty());
  EXPECT_TRUE(e.include_chain().empty());
  EXPECT_STREQ(e.what(), "line 7: bad card");
}

TEST(ParseErrorContext, FileAndIncludeChainForm) {
  const ParseError e("lib/mos.lib", 12, "unknown model",
                     {"top.cir:3", "amp.inc:9"});
  EXPECT_EQ(e.file(), "lib/mos.lib");
  EXPECT_EQ(e.line(), 12);
  ASSERT_EQ(e.include_chain().size(), 2u);
  EXPECT_STREQ(e.what(),
               "lib/mos.lib:12 (included from top.cir:3, amp.inc:9): unknown model");
}

TEST(Parser, FullAmplifierDeckEndToEnd) {
  auto parsed = parse_netlist(R"(
* NMOS common-source amplifier
.model n180 NMOS
VDD vdd 0 1.8
VIN in 0 DC 0.7 AC 1
RL vdd out 5k
M1 out in 0 0 n180 W=20u L=1u
CL out 0 200f
)");
  DcAnalysis dc;
  const auto op = dc.solve(parsed.netlist);
  ASSERT_TRUE(op.converged);
  AcAnalysis ac;
  const auto sweep = ac.run(parsed.netlist, op.x, {1e3});
  // Inverting gain > 1 at low frequency.
  EXPECT_GT(std::abs(sweep.voltage(0, parsed.netlist.find_node("out"))), 2.0);
}

}  // namespace
}  // namespace maopt::spice
