// Golden-value regression tests for the solver hot path.
//
// The factor/solve split, the allocation-free Newton workspace, and the
// G + jωC AC decomposition must not change simulator answers. Each test
// compares the reworked path against the dense one-shot reference that
// predates it (build_ac_system + lu_solve, per-call LuDecomposition) on a
// nonlinear MOSFET testbench, to a 1e-12 relative tolerance.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "linalg/lu.hpp"
#include "spice/ac_analysis.hpp"
#include "spice/dc_analysis.hpp"
#include "spice/devices.hpp"
#include "spice/mosfet.hpp"
#include "spice/noise_analysis.hpp"
#include "spice/tran_analysis.hpp"

namespace maopt::spice {
namespace {

using C = std::complex<double>;

double rel_err(double got, double want) {
  return std::abs(got - want) / std::max(std::abs(want), 1e-30);
}

double rel_err(C got, C want) { return std::abs(got - want) / std::max(std::abs(want), 1e-30); }

/// Two-transistor amplifier exercising every AC-relevant stamp family:
/// Mosfet (G and Meyer caps), Resistor, Capacitor, VSource (dc + ac),
/// ISource bias, CurrentSinkLoad.
struct AmpBench {
  Netlist net;
  VSource* vin = nullptr;
  int out = 0;

  AmpBench() {
    const int vdd = net.node("vdd");
    const int in = net.node("in");
    const int mid = net.node("mid");
    out = net.node("out");
    const int vbn = net.node("vbn");

    const MosModel nm = MosModel::nmos_180();
    const MosModel pm = MosModel::pmos_180();

    net.add<VSource>(vdd, kGround, Waveform::dc(1.8));
    vin = net.add<VSource>(in, kGround, Waveform::dc(0.7), /*ac_mag=*/1.0);
    net.add<ISource>(vdd, vbn, Waveform::dc(20e-6));
    net.add<Mosfet>(vbn, vbn, kGround, kGround, nm, 10e-6, 1e-6);
    net.add<Mosfet>(mid, in, kGround, kGround, nm, 20e-6, 0.5e-6);
    net.add<Mosfet>(mid, mid, vdd, vdd, pm, 10e-6, 0.5e-6);
    net.add<Mosfet>(out, mid, vdd, vdd, pm, 40e-6, 0.5e-6, 2.0);
    net.add<Mosfet>(out, vbn, kGround, kGround, nm, 20e-6, 1e-6, 2.0);
    net.add<Resistor>(out, mid, 50e3);
    net.add<Capacitor>(out, kGround, 1e-12);
    net.add<CurrentSinkLoad>(out, kGround, Waveform::dc(1e-6));
    net.prepare();
  }
};

TEST(GoldenAc, PartsCombineMatchesDirectAssembly) {
  AmpBench b;
  DcAnalysis dc;
  const DcResult op = dc.solve(b.net);
  ASSERT_TRUE(op.converged);

  Mat g, c;
  CVec rhs_parts;
  b.net.build_ac_parts(op.x, g, c, rhs_parts);

  for (const double f : {1.0, 1e3, 1e6, 1e9}) {
    const double omega = 2.0 * M_PI * f;
    CMat a_ref;
    CVec rhs_ref;
    b.net.build_ac_system(omega, op.x, a_ref, rhs_ref);

    CMat a_hot;
    combine_ac_system(g, c, omega, a_hot);

    ASSERT_EQ(a_hot.rows(), a_ref.rows());
    ASSERT_EQ(a_hot.cols(), a_ref.cols());
    for (std::size_t i = 0; i < a_ref.data().size(); ++i)
      EXPECT_LE(rel_err(a_hot.data()[i], a_ref.data()[i]), 1e-12)
          << "f=" << f << " entry " << i << " hot=" << a_hot.data()[i]
          << " ref=" << a_ref.data()[i];
    ASSERT_EQ(rhs_parts.size(), rhs_ref.size());
    for (std::size_t i = 0; i < rhs_ref.size(); ++i)
      EXPECT_EQ(rhs_parts[i], rhs_ref[i]) << "rhs entry " << i;
  }
}

TEST(GoldenAc, SweepMatchesOneShotLuReference) {
  AmpBench b;
  DcAnalysis dc;
  const DcResult op = dc.solve(b.net);
  ASSERT_TRUE(op.converged);

  const auto freqs = log_frequency_grid(1.0, 1e9, 6);
  AcAnalysis ac;
  const AcSweep sweep = ac.run(b.net, op.x, freqs);
  ASSERT_EQ(sweep.solutions.size(), freqs.size());

  for (std::size_t k = 0; k < freqs.size(); ++k) {
    const double omega = 2.0 * M_PI * freqs[k];
    CMat a_ref;
    CVec rhs_ref;
    b.net.build_ac_system(omega, op.x, a_ref, rhs_ref);
    const std::vector<C> x_ref = linalg::lu_solve(a_ref, rhs_ref);
    ASSERT_EQ(sweep.solutions[k].size(), x_ref.size());
    // Normwise relative error: componentwise comparison on tiny components
    // would amplify the ~1 ulp assembly difference past any fixed tolerance.
    double norm = 0.0;
    for (const C& v : x_ref) norm = std::max(norm, std::abs(v));
    for (std::size_t i = 0; i < x_ref.size(); ++i)
      EXPECT_LE(std::abs(sweep.solutions[k][i] - x_ref[i]), 1e-12 * norm)
          << "f=" << freqs[k] << " unknown " << i;
  }
}

TEST(GoldenDc, SolutionIsAFixedPointOfTheOneShotReference) {
  AmpBench b;
  DcAnalysis dc;
  const DcResult op = dc.solve(b.net);
  ASSERT_TRUE(op.converged);
  ASSERT_GT(op.iterations, 0);

  // One reference Newton step from the solution, assembled and solved with
  // the legacy dense path, must stay at the solution (to solver tolerance).
  Mat a;
  Vec rhs;
  b.net.build_nonlinear_system(op.x, 1.0, -1.0, 1e-12, a, rhs);
  const Vec x_next = linalg::lu_solve(a, rhs);
  for (std::size_t i = 0; i < op.x.size(); ++i)
    EXPECT_NEAR(x_next[i], op.x[i], 1e-6) << "unknown " << i;
}

TEST(GoldenDc, RepeatedSolvesOnOneAnalysisAreBitIdentical) {
  AmpBench b1, b2;
  DcAnalysis dc;
  // Warm the workspace on a different bench first: reuse must not leak state.
  AmpBench warm;
  warm.vin->set_dc(0.9);
  ASSERT_TRUE(dc.solve(warm.net).converged);

  const DcResult warm_reuse = dc.solve(b1.net);
  DcAnalysis fresh;
  const DcResult cold = fresh.solve(b2.net);
  ASSERT_TRUE(warm_reuse.converged);
  ASSERT_TRUE(cold.converged);
  ASSERT_EQ(warm_reuse.x.size(), cold.x.size());
  for (std::size_t i = 0; i < cold.x.size(); ++i) EXPECT_EQ(warm_reuse.x[i], cold.x[i]);
  EXPECT_EQ(warm_reuse.iterations, cold.iterations);
  EXPECT_EQ(warm_reuse.method, cold.method);
}

TEST(GoldenDc, WorkspaceBuffersAreStableAcrossSolves) {
  AmpBench b;
  DcAnalysis dc;
  ASSERT_TRUE(dc.solve(b.net).converged);

  const NewtonWorkspace& ws = dc.workspace();
  const double* a_ptr = ws.lu.matrix().data().data();
  const double* rhs_ptr = ws.rhs.data();
  const double* x_new_ptr = ws.x_new.data();
  const std::size_t solves0 = ws.solves;
  ASSERT_GT(ws.iterations, 0u);

  for (int round = 0; round < 8; ++round) {
    b.vin->set_dc(0.6 + 0.05 * round);
    ASSERT_TRUE(dc.solve(b.net).converged);
    EXPECT_EQ(ws.lu.matrix().data().data(), a_ptr);
    EXPECT_EQ(ws.rhs.data(), rhs_ptr);
    EXPECT_EQ(ws.x_new.data(), x_new_ptr);
  }
  EXPECT_GT(ws.solves, solves0);
}

TEST(GoldenTran, WorkspaceReuseIsBitIdenticalToFreshRun) {
  TranOptions topt;
  topt.t_stop = 50e-9;
  topt.dt = 0.5e-9;

  auto run_fresh = [&] {
    AmpBench b;
    b.vin->set_waveform(Waveform::pwl({{0.0, 0.7}, {5e-9, 0.7}, {6e-9, 0.8}}));
    return TranAnalysis(topt).run(b.net);
  };
  const TranResult r1 = run_fresh();
  const TranResult r2 = run_fresh();
  ASSERT_TRUE(r1.converged);
  ASSERT_TRUE(r2.converged);
  ASSERT_GT(r1.newton_iterations, 0u);
  EXPECT_EQ(r1.newton_iterations, r2.newton_iterations);
  ASSERT_EQ(r1.num_steps(), r2.num_steps());
  ASSERT_EQ(r1.states.size(), r2.states.size());
  for (std::size_t i = 0; i < r1.states.size(); ++i) EXPECT_EQ(r1.states[i], r2.states[i]);
}

TEST(GoldenNoise, AdjointSolveMatchesOneShotTransposedReference) {
  AmpBench b;
  DcAnalysis dc;
  const DcResult op = dc.solve(b.net);
  ASSERT_TRUE(op.converged);

  const std::vector<double> freqs = {1e3, 1e6, 1e9};
  NoiseAnalysis noise;
  const NoiseResult nres = noise.run(b.net, op.x, b.out, kGround, freqs);
  ASSERT_EQ(nres.output_psd.size(), freqs.size());

  // Reference: dense transposed solve per frequency, PSD accumulated the
  // same way from the same collected noise sources.
  const auto sources = b.net.collect_noise(op.x);
  ASSERT_FALSE(sources.empty());
  for (std::size_t k = 0; k < freqs.size(); ++k) {
    const double omega = 2.0 * M_PI * freqs[k];
    CMat a;
    CVec rhs;
    b.net.build_ac_system(omega, op.x, a, rhs);
    CVec e_out(a.rows(), C{});
    e_out[static_cast<std::size_t>(b.out)] = C(1.0, 0.0);
    const linalg::LuComplex dec(a);
    const CVec z = dec.solve_transposed(e_out);
    double psd = 0.0;
    for (const auto& s : sources) {
      C tf{};
      if (s.node_a != kGround) tf += z[static_cast<std::size_t>(s.node_a)];
      if (s.node_b != kGround) tf -= z[static_cast<std::size_t>(s.node_b)];
      psd += std::norm(tf) * s.psd(freqs[k]);
    }
    EXPECT_LE(rel_err(nres.output_psd[k], psd), 1e-12) << "f=" << freqs[k];
  }
}

}  // namespace
}  // namespace maopt::spice
