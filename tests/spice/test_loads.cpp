#include <gtest/gtest.h>

#include "spice/dc_analysis.hpp"
#include "spice/devices.hpp"
#include "spice/tran_analysis.hpp"

namespace maopt::spice {
namespace {

TEST(CurrentSinkLoad, DrawsFullCurrentAboveKnee) {
  // Stiff source feeding the load: V stays high, load draws its target.
  Netlist n;
  const int out = n.node("out");
  auto* vs = n.add<VSource>(out, kGround, Waveform::dc(1.8));
  n.add<CurrentSinkLoad>(out, kGround, Waveform::dc(50e-3));
  DcAnalysis dc;
  const auto r = dc.solve(n);
  ASSERT_TRUE(r.converged);
  // All 50 mA flows through the source branch.
  EXPECT_NEAR(vs->branch_current(r.x), -50e-3, 1e-9);
}

TEST(CurrentSinkLoad, CurrentAtReportsActualDraw) {
  Netlist n;
  const int out = n.node("out");
  n.add<VSource>(out, kGround, Waveform::dc(1.8));
  auto* load = n.add<CurrentSinkLoad>(out, kGround, Waveform::dc(10e-3), 0.2);
  DcAnalysis dc;
  const auto r = dc.solve(n);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(load->current_at(r.x), 10e-3, 1e-9);
}

TEST(CurrentSinkLoad, CollapsesGracefullyWhenSourceIsWeak) {
  // A 1 kOhm source can deliver at most 1.8 mA into a short; asking the
  // load for 100 mA must NOT drive the node to huge negative voltages
  // (the failure mode of an ideal ISource).
  Netlist n;
  const int src = n.node("src");
  const int out = n.node("out");
  n.add<VSource>(src, kGround, Waveform::dc(1.8));
  n.add<Resistor>(src, out, 1e3);
  auto* load = n.add<CurrentSinkLoad>(out, kGround, Waveform::dc(100e-3), 0.2);
  DcAnalysis dc;
  const auto r = dc.solve(n);
  ASSERT_TRUE(r.converged);
  const double v = Netlist::voltage(r.x, out);
  EXPECT_GE(v, 0.0);
  EXPECT_LE(v, 0.2);  // stuck in the compliance region
  EXPECT_LT(load->current_at(r.x), 100e-3);
}

TEST(CurrentSinkLoad, LinearRegionSolvesConsistently) {
  // In the compliance region the load acts like a conductance I/v_knee:
  // 1.8 V source, 1 kOhm series, load 10 mA with knee 0.5 V.
  // Equivalent conductance g = 0.02 S -> v = 1.8 * (1/g)/(1k + 1/g)?? Solve:
  // v = 1.8 - 1e3 * i, i = 10e-3 * v / 0.5 = 0.02 v  =>  v = 1.8 / 21 * 10.
  Netlist n;
  const int src = n.node("src");
  const int out = n.node("out");
  n.add<VSource>(src, kGround, Waveform::dc(1.8));
  n.add<Resistor>(src, out, 1e3);
  n.add<CurrentSinkLoad>(out, kGround, Waveform::dc(10e-3), 0.5);
  DcAnalysis dc;
  const auto r = dc.solve(n);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(Netlist::voltage(r.x, out), 1.8 / 21.0, 1e-6);
}

TEST(CurrentSinkLoad, TransientStepFollowsWaveform) {
  Netlist n;
  const int out = n.node("out");
  n.add<VSource>(out, kGround, Waveform::dc(1.8));
  auto* load = n.add<CurrentSinkLoad>(
      out, kGround, Waveform::pwl({{0.0, 1e-3}, {1e-6, 1e-3}, {1.1e-6, 20e-3}}));
  (void)load;
  // A VSource pins the node, so just check the transient converges and the
  // source branch current steps accordingly.
  TranOptions topt;
  topt.t_stop = 2e-6;
  topt.dt = 10e-9;
  TranAnalysis tran(topt);
  const auto tr = tran.run(n);
  ASSERT_TRUE(tr.converged);
  // Branch current of the vsource = -load current.
  const std::size_t branch = 1;  // 1 node + branch index 1
  EXPECT_NEAR(tr.value(0, static_cast<int>(branch)), -1e-3, 1e-9);
  EXPECT_NEAR(tr.value(tr.num_steps() - 1, static_cast<int>(branch)), -20e-3, 1e-9);
}

TEST(CurrentSinkLoad, InvalidKneeThrows) {
  EXPECT_THROW(CurrentSinkLoad(0, 1, Waveform::dc(1e-3), 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace maopt::spice
