#include "spice/tran_analysis.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "spice/devices.hpp"
#include "spice/mosfet.hpp"

namespace maopt::spice {
namespace {

TEST(Tran, RcStepResponseMatchesAnalytic) {
  // R = 1k, C = 1n -> tau = 1 us; step at t = 1 us.
  Netlist n;
  const int vin = n.node("vin");
  const int out = n.node("out");
  n.add<VSource>(vin, kGround,
                 Waveform::pwl({{0.0, 0.0}, {1e-6, 0.0}, {1.001e-6, 1.0}}));
  n.add<Resistor>(vin, out, 1e3);
  n.add<Capacitor>(out, kGround, 1e-9);

  TranOptions opt;
  opt.t_stop = 6e-6;
  opt.dt = 10e-9;
  TranAnalysis tran(opt);
  const auto r = tran.run(n);
  ASSERT_TRUE(r.converged);
  const auto wave = r.node_waveform(out);

  for (std::size_t k = 0; k < r.time.size(); ++k) {
    const double t = r.time[k];
    double expect = 0.0;
    if (t > 1.001e-6) expect = 1.0 - std::exp(-(t - 1.0005e-6) / 1e-6);
    EXPECT_NEAR(wave[k], expect, 0.01) << "t=" << t;
  }
  // Fully settled by 5 tau.
  EXPECT_NEAR(wave.back(), 1.0, 0.01);
}

TEST(Tran, InitialConditionFromDc) {
  Netlist n;
  const int vin = n.node("vin");
  const int out = n.node("out");
  n.add<VSource>(vin, kGround, Waveform::dc(2.0));
  n.add<Resistor>(vin, out, 1e3);
  n.add<Resistor>(out, kGround, 1e3);
  n.add<Capacitor>(out, kGround, 1e-9);
  TranOptions opt;
  opt.t_stop = 1e-6;
  opt.dt = 10e-9;
  TranAnalysis tran(opt);
  const auto r = tran.run(n);
  ASSERT_TRUE(r.converged);
  const auto wave = r.node_waveform(out);
  // DC steady state from the start: flat at the divider value.
  for (const double v : wave) EXPECT_NEAR(v, 1.0, 1e-6);
}

TEST(Tran, CapacitorDividerConservesCharge) {
  // Step through a capacitive divider: out = step * C1/(C1+C2).
  Netlist n;
  const int vin = n.node("vin");
  const int out = n.node("out");
  n.add<VSource>(vin, kGround, Waveform::pwl({{0.0, 0.0}, {1e-7, 0.0}, {1.1e-7, 1.0}}));
  n.add<Capacitor>(vin, out, 2e-12);   // C1
  n.add<Capacitor>(out, kGround, 2e-12);  // C2
  n.add<Resistor>(out, kGround, 1e12);    // weak bleed to keep DC defined
  TranOptions opt;
  opt.t_stop = 5e-7;
  opt.dt = 1e-9;
  TranAnalysis tran(opt);
  const auto r = tran.run(n);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.node_waveform(out).back(), 0.5, 0.01);
}

TEST(Tran, RejectsInductors) {
  Netlist n;
  const int a = n.node("a");
  n.add<VSource>(a, kGround, Waveform::dc(1.0));
  n.add<Inductor>(a, kGround, 1e-3);
  TranOptions opt;
  TranAnalysis tran(opt);
  EXPECT_THROW(tran.run(n), std::logic_error);
}

TEST(Tran, TimeAxisCoversStopTime) {
  Netlist n;
  const int a = n.node("a");
  n.add<VSource>(a, kGround, Waveform::dc(1.0));
  n.add<Resistor>(a, kGround, 1e3);
  TranOptions opt;
  opt.t_stop = 1e-6;
  opt.dt = 1e-7;
  TranAnalysis tran(opt);
  const auto r = tran.run(n);
  ASSERT_TRUE(r.converged);
  EXPECT_DOUBLE_EQ(r.time.front(), 0.0);
  EXPECT_NEAR(r.time.back(), 1e-6, 1e-12);
  EXPECT_EQ(r.time.size(), 11u);
}

TEST(Tran, MosInverterSwitchesDynamically) {
  // Common-source stage driven by a pulse: output swings rail-ward.
  Netlist n;
  const int vdd = n.node("vdd");
  const int in = n.node("in");
  const int out = n.node("out");
  n.add<VSource>(vdd, kGround, Waveform::dc(1.8));
  n.add<VSource>(in, kGround,
                 Waveform::pwl({{0.0, 0.0}, {1e-8, 0.0}, {1.2e-8, 1.8}}));
  n.add<Resistor>(vdd, out, 10e3);
  n.add<Mosfet>(out, in, kGround, kGround, MosModel::nmos_180(), 10e-6, 0.5e-6);
  n.add<Capacitor>(out, kGround, 50e-15);
  TranOptions opt;
  opt.t_stop = 1e-7;
  opt.dt = 1e-10;
  TranAnalysis tran(opt);
  const auto r = tran.run(n);
  ASSERT_TRUE(r.converged);
  const auto wave = r.node_waveform(out);
  EXPECT_NEAR(wave.front(), 1.8, 1e-3);  // off at t=0
  EXPECT_LT(wave.back(), 0.2);           // pulled low after the input step
}

TEST(Tran, TrapezoidalBeatsCoarseAccuracyBound) {
  // Halving dt should reduce the max error roughly 4x (2nd-order method);
  // we only assert it does not get worse.
  auto max_err = [](double dt) {
    Netlist n;
    const int vin = n.node("vin");
    const int out = n.node("out");
    n.add<VSource>(vin, kGround, Waveform::pwl({{0.0, 0.0}, {1e-8, 0.0}, {1.05e-8, 1.0}}));
    n.add<Resistor>(vin, out, 1e3);
    n.add<Capacitor>(out, kGround, 1e-9);
    TranOptions opt;
    opt.t_stop = 4e-6;
    opt.dt = dt;
    const auto r = TranAnalysis(opt).run(n);
    EXPECT_TRUE(r.converged);
    const auto wave = r.node_waveform(out);
    double worst = 0.0;
    for (std::size_t k = 0; k < r.time.size(); ++k) {
      const double t = r.time[k];
      if (t < 2e-8) continue;
      const double expect = 1.0 - std::exp(-(t - 1.025e-8) / 1e-6);
      worst = std::max(worst, std::abs(wave[k] - expect));
    }
    return worst;
  };
  const double coarse = max_err(4e-8);
  const double fine = max_err(1e-8);
  EXPECT_LE(fine, coarse + 1e-12);
  EXPECT_LT(fine, 0.02);
}

}  // namespace
}  // namespace maopt::spice
