#include <gtest/gtest.h>

#include <cmath>

#include "spice/dc_analysis.hpp"
#include "spice/devices.hpp"
#include "spice/mosfet.hpp"

namespace maopt::spice {
namespace {

constexpr double kNvt = 1.5 * 0.02585;

TEST(Subthreshold, ZeroNvtReproducesHardCutoff) {
  for (double vgs : {0.2, 0.45, 0.7, 1.2}) {
    for (double vds : {0.1, 0.9}) {
      const auto hard = mos_level1_eval(vgs, vds, 0.45, 1e-3, 0.1);
      const auto smooth0 = mos_eval_smooth(vgs, vds, 0.45, 1e-3, 0.1, 0.0);
      EXPECT_DOUBLE_EQ(hard.id, smooth0.id);
      EXPECT_DOUBLE_EQ(hard.gm, smooth0.gm);
      EXPECT_DOUBLE_EQ(hard.gds, smooth0.gds);
    }
  }
}

TEST(Subthreshold, ExponentialTailBelowThreshold) {
  // 100 mV below threshold, current drops ~ exp(-dV/nvt) per dV.
  const double i1 = mos_eval_smooth(0.35, 1.0, 0.45, 1e-3, 0.0, kNvt).id;
  const double i2 = mos_eval_smooth(0.25, 1.0, 0.45, 1e-3, 0.0, kNvt).id;
  EXPECT_GT(i1, 0.0);
  EXPECT_GT(i2, 0.0);
  const double decade_ratio = i1 / i2;
  // id ~ vov_eff^2 ~ exp(2*vov/s) with s = kNvt here, so the expected ratio
  // over a 100 mV step is exp(0.2 / kNvt); generous band for the softplus
  // transition region.
  const double expect = std::exp(0.2 / kNvt);
  EXPECT_GT(decade_ratio, expect * 0.3);
  EXPECT_LT(decade_ratio, expect * 3.0);
}

TEST(Subthreshold, ConvergesToLevel1InStrongInversion) {
  const auto smooth = mos_eval_smooth(1.4, 1.0, 0.45, 1e-3, 0.08, kNvt);
  const auto hard = mos_level1_eval(1.4, 1.0, 0.45, 1e-3, 0.08);
  EXPECT_NEAR(smooth.id, hard.id, hard.id * 0.1);
  EXPECT_NEAR(smooth.gm, hard.gm, hard.gm * 0.1);
}

TEST(Subthreshold, GmContinuousAcrossThreshold) {
  const double h = 1e-4;
  const auto below = mos_eval_smooth(0.45 - h, 1.0, 0.45, 1e-3, 0.0, kNvt);
  const auto above = mos_eval_smooth(0.45 + h, 1.0, 0.45, 1e-3, 0.0, kNvt);
  EXPECT_NEAR(below.gm, above.gm, above.gm * 0.02);
  EXPECT_NEAR(below.id, above.id, above.id * 0.02);
}

TEST(Subthreshold, GmMatchesFiniteDifferenceEverywhere) {
  for (double vgs = 0.2; vgs <= 1.6; vgs += 0.1) {
    const double h = 1e-7;
    const auto e = mos_eval_smooth(vgs, 0.9, 0.45, 1e-3, 0.08, kNvt);
    const double fd = (mos_eval_smooth(vgs + h, 0.9, 0.45, 1e-3, 0.08, kNvt).id -
                       mos_eval_smooth(vgs - h, 0.9, 0.45, 1e-3, 0.08, kNvt).id) /
                      (2 * h);
    EXPECT_NEAR(e.gm, fd, std::max(1e-9, fd * 1e-4)) << "vgs=" << vgs;
  }
}

TEST(Subthreshold, DeepCutoffIsNumericallyZero) {
  const auto e = mos_eval_smooth(-2.0, 1.0, 0.45, 1e-3, 0.0, kNvt);
  EXPECT_TRUE(e.cutoff);
  EXPECT_DOUBLE_EQ(e.id, 0.0);
}

TEST(Subthreshold, DiodeBiasedBelowThresholdStillSolves) {
  // A 1 nA diode-connected device must bias into the subthreshold region.
  MosModel nm = MosModel::nmos_180();
  nm.subthreshold = true;
  Netlist n;
  const int a = n.node("a");
  n.add<ISource>(n.node("vdd"), a, Waveform::dc(1e-9));
  n.add<VSource>(n.find_node("vdd"), kGround, Waveform::dc(1.8));
  n.add<Mosfet>(a, a, kGround, kGround, nm, 10e-6, 1e-6);
  DcAnalysis dc;
  const auto r = dc.solve(n);
  ASSERT_TRUE(r.converged);
  const double va = Netlist::voltage(r.x, a);
  EXPECT_GT(va, 0.05);
  EXPECT_LT(va, 0.45);  // gate voltage below threshold at 1 nA
}

}  // namespace
}  // namespace maopt::spice
