#include "spice/op_report.hpp"

#include <gtest/gtest.h>

#include "spice/dc_analysis.hpp"
#include "spice/dc_sweep.hpp"
#include "spice/devices.hpp"
#include "spice/parser.hpp"

namespace maopt::spice {
namespace {

TEST(OpReport, NamesRegionsAndCurrentsFromParsedDeck) {
  auto parsed = parse_netlist(R"(
.model n180 NMOS
VDD vdd 0 1.8
VIN in 0 0.7
RL vdd out 5k
M1 out in 0 0 n180 W=20u L=1u
)");
  DcAnalysis dc;
  const auto op = dc.solve(parsed.netlist);
  ASSERT_TRUE(op.converged);
  const std::string report = operating_point_report(parsed.netlist, op.x);
  EXPECT_NE(report.find("M1"), std::string::npos);
  EXPECT_NE(report.find("saturation"), std::string::npos);
  EXPECT_NE(report.find("RL"), std::string::npos);
  EXPECT_NE(report.find("VDD"), std::string::npos);
  EXPECT_NE(report.find("V(out)"), std::string::npos);
}

TEST(OpReport, UnlabeledDevicesGetIndexedFallbackNames) {
  Netlist n;
  const int a = n.node("a");
  n.add<VSource>(a, kGround, Waveform::dc(1.0));
  n.add<Resistor>(a, kGround, 1e3);
  DcAnalysis dc;
  const auto op = dc.solve(n);
  ASSERT_TRUE(op.converged);
  const std::string report = operating_point_report(n, op.x);
  EXPECT_NE(report.find("V#1"), std::string::npos);
  EXPECT_NE(report.find("R#2"), std::string::npos);
}

TEST(DcSweepAnalysis, LinearGridEndpoints) {
  const auto grid = DcSweep::linear_grid(0.0, 1.0, 5);
  ASSERT_EQ(grid.size(), 5u);
  EXPECT_DOUBLE_EQ(grid.front(), 0.0);
  EXPECT_DOUBLE_EQ(grid.back(), 1.0);
  EXPECT_DOUBLE_EQ(grid[2], 0.5);
  EXPECT_THROW(DcSweep::linear_grid(0, 1, 1), std::invalid_argument);
}

TEST(DcSweepAnalysis, DividerTransferIsLinear) {
  Netlist n;
  const int vin = n.node("vin");
  const int mid = n.node("mid");
  auto* src = n.add<VSource>(vin, kGround, Waveform::dc(0.0));
  n.add<Resistor>(vin, mid, 1e3);
  n.add<Resistor>(mid, kGround, 1e3);
  DcSweep sweep;
  const auto grid = DcSweep::linear_grid(0.0, 2.0, 11);
  const auto result = sweep.run(n, grid, [&](double v) { src->set_dc(v); });
  ASSERT_TRUE(result.all_converged);
  const auto curve = result.node_curve(mid);
  for (std::size_t k = 0; k < grid.size(); ++k)
    EXPECT_NEAR(curve[k], 0.5 * grid[k], 1e-6) << k;
}

TEST(DcSweepAnalysis, WarmStartTracksNonlinearCurve) {
  // MOS inverter transfer curve: must be monotone decreasing and converged
  // at every point thanks to warm starting.
  auto parsed = parse_netlist(R"(
.model n180 NMOS
VDD vdd 0 1.8
VIN in 0 0
RL vdd out 10k
M1 out in 0 0 n180 W=10u L=0.5u
)");
  auto* vin = parsed.device<VSource>("VIN");
  DcSweep sweep;
  const auto grid = DcSweep::linear_grid(0.0, 1.8, 19);
  const auto result = sweep.run(parsed.netlist, grid, [&](double v) { vin->set_dc(v); });
  ASSERT_TRUE(result.all_converged);
  const auto curve = result.node_curve(parsed.netlist.find_node("out"));
  for (std::size_t k = 1; k < curve.size(); ++k) EXPECT_LE(curve[k], curve[k - 1] + 1e-9);
}

}  // namespace
}  // namespace maopt::spice
