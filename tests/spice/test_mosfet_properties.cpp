// Property sweeps over the MOSFET model: physical monotonicity and
// continuity invariants that must hold across the whole geometry range the
// optimizers explore.
#include <gtest/gtest.h>

#include <cmath>

#include "spice/mosfet.hpp"

namespace maopt::spice {
namespace {

struct Geometry {
  double w_um;
  double l_um;
};

class MosGeometrySweep : public ::testing::TestWithParam<Geometry> {};

TEST_P(MosGeometrySweep, CurrentIncreasesWithVgs) {
  const auto [w, l] = GetParam();
  const double k = 280e-6 * (w / l);
  const double lambda = 0.08e-6 / (l * 1e-6);
  double prev = -1.0;
  for (double vgs = 0.5; vgs <= 1.8; vgs += 0.1) {
    const auto e = mos_level1_eval(vgs, 1.0, 0.45, k, lambda);
    EXPECT_GT(e.id, prev) << "vgs=" << vgs;
    prev = e.id;
  }
}

TEST_P(MosGeometrySweep, CurrentIncreasesWithVds) {
  const auto [w, l] = GetParam();
  const double k = 280e-6 * (w / l);
  const double lambda = 0.08e-6 / (l * 1e-6);
  double prev = -1.0;
  for (double vds = 0.05; vds <= 1.8; vds += 0.05) {
    const auto e = mos_level1_eval(1.0, vds, 0.45, k, lambda);
    EXPECT_GE(e.id, prev) << "vds=" << vds;
    prev = e.id;
  }
}

TEST_P(MosGeometrySweep, ConductancesNonNegative) {
  const auto [w, l] = GetParam();
  const double k = 280e-6 * (w / l);
  const double lambda = 0.08e-6 / (l * 1e-6);
  for (double vgs = 0.0; vgs <= 1.8; vgs += 0.3)
    for (double vds = 0.0; vds <= 1.8; vds += 0.3) {
      const auto e = mos_level1_eval(vgs, vds, 0.45, k, lambda);
      EXPECT_GE(e.gm, 0.0);
      EXPECT_GE(e.gds, 0.0);
      EXPECT_GE(e.id, 0.0);
    }
}

TEST_P(MosGeometrySweep, CurrentContinuousAcrossRegionBoundary) {
  const auto [w, l] = GetParam();
  const double k = 280e-6 * (w / l);
  const double lambda = 0.08e-6 / (l * 1e-6);
  for (double vgs = 0.6; vgs <= 1.6; vgs += 0.2) {
    const double vov = vgs - 0.45;
    const auto below = mos_level1_eval(vgs, vov * (1 - 1e-9), 0.45, k, lambda);
    const auto above = mos_level1_eval(vgs, vov * (1 + 1e-9), 0.45, k, lambda);
    EXPECT_NEAR(below.id, above.id, std::max(1e-12, above.id * 1e-6));
  }
}

TEST_P(MosGeometrySweep, CutoffContinuousAtThreshold) {
  const auto [w, l] = GetParam();
  const double k = 280e-6 * (w / l);
  const auto below = mos_level1_eval(0.45 - 1e-9, 1.0, 0.45, k, 0.1);
  const auto above = mos_level1_eval(0.45 + 1e-9, 1.0, 0.45, k, 0.1);
  EXPECT_DOUBLE_EQ(below.id, 0.0);
  EXPECT_LT(above.id, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Geometries, MosGeometrySweep,
                         ::testing::Values(Geometry{0.22, 0.18}, Geometry{1.0, 0.18},
                                           Geometry{10.0, 0.5}, Geometry{150.0, 2.0},
                                           Geometry{50.0, 1.0}));

}  // namespace
}  // namespace maopt::spice
