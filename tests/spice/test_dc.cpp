#include "spice/dc_analysis.hpp"

#include <gtest/gtest.h>

#include "spice/devices.hpp"
#include "spice/mosfet.hpp"

namespace maopt::spice {
namespace {

TEST(Dc, ResistorDivider) {
  Netlist n;
  const int vin = n.node("vin");
  const int mid = n.node("mid");
  n.add<VSource>(vin, kGround, Waveform::dc(10.0));
  n.add<Resistor>(vin, mid, 1e3);
  n.add<Resistor>(mid, kGround, 3e3);
  DcAnalysis dc;
  const auto r = dc.solve(n);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(Netlist::voltage(r.x, mid), 7.5, 1e-6);
}

TEST(Dc, VsourceBranchCurrentSign) {
  Netlist n;
  const int vin = n.node("vin");
  auto* vs = n.add<VSource>(vin, kGround, Waveform::dc(5.0));
  n.add<Resistor>(vin, kGround, 1e3);
  DcAnalysis dc;
  const auto r = dc.solve(n);
  ASSERT_TRUE(r.converged);
  // 5 mA flows out of the + terminal into the resistor, so the branch
  // current (defined + -> - through the source) is -5 mA.
  EXPECT_NEAR(vs->branch_current(r.x), -5e-3, 1e-9);
}

TEST(Dc, CurrentSourceIntoResistor) {
  Netlist n;
  const int out = n.node("out");
  n.add<ISource>(kGround, out, Waveform::dc(2e-3));  // 2 mA from gnd into out
  n.add<Resistor>(out, kGround, 1e3);
  DcAnalysis dc;
  const auto r = dc.solve(n);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(Netlist::voltage(r.x, out), 2.0, 1e-6);
}

TEST(Dc, SuperpositionOfTwoSources) {
  Netlist n;
  const int a = n.node("a");
  n.add<VSource>(a, kGround, Waveform::dc(1.0));
  const int b = n.node("b");
  n.add<Resistor>(a, b, 1e3);
  n.add<Resistor>(b, kGround, 1e3);
  n.add<ISource>(kGround, b, Waveform::dc(1e-3));
  DcAnalysis dc;
  const auto r = dc.solve(n);
  ASSERT_TRUE(r.converged);
  // V(b) = 1.0 * 0.5 (divider) + 1 mA * 500 Ohm (parallel) = 1.0
  EXPECT_NEAR(Netlist::voltage(r.x, b), 1.0, 1e-6);
}

TEST(Dc, VcvsGain) {
  Netlist n;
  const int in = n.node("in");
  const int out = n.node("out");
  n.add<VSource>(in, kGround, Waveform::dc(0.1));
  n.add<Vcvs>(out, kGround, in, kGround, 25.0);
  n.add<Resistor>(out, kGround, 1e3);
  DcAnalysis dc;
  const auto r = dc.solve(n);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(Netlist::voltage(r.x, out), 2.5, 1e-6);
}

TEST(Dc, CapacitorIsOpenAtDc) {
  Netlist n;
  const int vin = n.node("vin");
  const int mid = n.node("mid");
  n.add<VSource>(vin, kGround, Waveform::dc(3.0));
  n.add<Resistor>(vin, mid, 1e3);
  n.add<Capacitor>(mid, kGround, 1e-9);
  DcAnalysis dc;
  const auto r = dc.solve(n);
  ASSERT_TRUE(r.converged);
  // No DC path to ground except gmin: node floats to the source voltage.
  EXPECT_NEAR(Netlist::voltage(r.x, mid), 3.0, 1e-3);
}

TEST(Dc, InductorIsShortAtDc) {
  Netlist n;
  const int vin = n.node("vin");
  const int mid = n.node("mid");
  n.add<VSource>(vin, kGround, Waveform::dc(2.0));
  n.add<Resistor>(vin, mid, 1e3);
  n.add<Inductor>(mid, kGround, 1e-3);
  DcAnalysis dc;
  const auto r = dc.solve(n);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(Netlist::voltage(r.x, mid), 0.0, 1e-9);
}

TEST(Dc, WarmStartConverges) {
  Netlist n;
  const int vin = n.node("vin");
  const int mid = n.node("mid");
  auto* vs = n.add<VSource>(vin, kGround, Waveform::dc(1.0));
  n.add<Resistor>(vin, mid, 1e3);
  n.add<Resistor>(mid, kGround, 1e3);
  DcAnalysis dc;
  auto r = dc.solve(n);
  ASSERT_TRUE(r.converged);
  vs->set_dc(1.1);
  const auto r2 = dc.solve(n, &r.x);
  ASSERT_TRUE(r2.converged);
  EXPECT_NEAR(Netlist::voltage(r2.x, mid), 0.55, 1e-6);
}

TEST(Dc, NmosDiodeStringConverges) {
  // Nonlinear network: current source into two stacked diode-connected NMOS.
  Netlist n;
  const int a = n.node("a");
  const int b = n.node("b");
  n.add<ISource>(kGround, a, Waveform::dc(100e-6));
  n.add<Mosfet>(a, a, b, kGround, MosModel::nmos_180(), 10e-6, 1e-6);
  n.add<Mosfet>(b, b, kGround, kGround, MosModel::nmos_180(), 10e-6, 1e-6);
  DcAnalysis dc;
  const auto r = dc.solve(n);
  ASSERT_TRUE(r.converged);
  const double va = Netlist::voltage(r.x, a);
  const double vb = Netlist::voltage(r.x, b);
  // Both devices saturated diode-connected: Vgs > Vth each.
  EXPECT_GT(vb, 0.45);
  EXPECT_GT(va - vb, 0.45);
  EXPECT_LT(va, 3.0);
}

TEST(Dc, NewtonReportsNonConvergenceWhenIterationBudgetTooSmall) {
  Netlist n;
  const int vin = n.node("vin");
  n.add<VSource>(vin, kGround, Waveform::dc(1.0));
  n.add<Resistor>(vin, kGround, 1.0);
  n.prepare();
  DcOptions opt;
  opt.max_iterations = 1;  // linear circuits need 2 iterations (solve + verify)
  Vec x;
  EXPECT_FALSE(DcAnalysis::newton(n, 1.0, -1.0, opt.gmin, opt, x, nullptr));
  opt.max_iterations = 5;
  EXPECT_TRUE(DcAnalysis::newton(n, 1.0, -1.0, opt.gmin, opt, x, nullptr));
}

TEST(Dc, MosInverterTransferIsMonotoneDecreasing) {
  // NMOS common-source with resistor load: increasing Vin lowers Vout.
  Netlist n;
  const int vdd = n.node("vdd");
  const int in = n.node("in");
  const int out = n.node("out");
  n.add<VSource>(vdd, kGround, Waveform::dc(1.8));
  auto* vin = n.add<VSource>(in, kGround, Waveform::dc(0.0));
  n.add<Resistor>(vdd, out, 10e3);
  n.add<Mosfet>(out, in, kGround, kGround, MosModel::nmos_180(), 10e-6, 0.5e-6);
  DcAnalysis dc;
  double prev = 1e9;
  Vec guess;
  for (double v = 0.0; v <= 1.8; v += 0.2) {
    vin->set_dc(v);
    const auto r = guess.empty() ? dc.solve(n) : dc.solve(n, &guess);
    ASSERT_TRUE(r.converged) << "vin=" << v;
    guess = r.x;
    const double vo = Netlist::voltage(r.x, out);
    EXPECT_LE(vo, prev + 1e-9) << "vin=" << v;
    prev = vo;
  }
  EXPECT_LT(prev, 0.2);  // fully on at Vin = 1.8
}

}  // namespace
}  // namespace maopt::spice
