#include "spice/ac_analysis.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "spice/dc_analysis.hpp"
#include "spice/devices.hpp"
#include "spice/mosfet.hpp"

namespace maopt::spice {
namespace {

TEST(Ac, LogFrequencyGridEndpointsAndMonotonicity) {
  const auto f = log_frequency_grid(1.0, 1e6, 10);
  EXPECT_NEAR(f.front(), 1.0, 1e-9);
  EXPECT_NEAR(f.back(), 1e6, 1e-3);
  for (std::size_t i = 1; i < f.size(); ++i) EXPECT_GT(f[i], f[i - 1]);
  EXPECT_GE(f.size(), 61u);
}

/// RC low-pass: |H| = 1/sqrt(1+(f/fc)^2), phase = -atan(f/fc).
class RcLowPass : public ::testing::Test {
 protected:
  RcLowPass() {
    vin_ = net_.node("vin");
    out_ = net_.node("out");
    net_.add<VSource>(vin_, kGround, Waveform::dc(0.0), /*ac_mag=*/1.0);
    net_.add<Resistor>(vin_, out_, 1e3);
    net_.add<Capacitor>(out_, kGround, 1e-6);
    net_.prepare();
    op_.assign(net_.system_size(), 0.0);
  }
  static constexpr double kFc = 1.0 / (2.0 * std::numbers::pi * 1e3 * 1e-6);
  Netlist net_;
  int vin_, out_;
  Vec op_;
};

TEST_F(RcLowPass, MagnitudeAtCornerIsMinus3Db) {
  AcAnalysis ac;
  const auto sweep = ac.run(net_, op_, {kFc});
  EXPECT_NEAR(std::abs(sweep.voltage(0, out_)), 1.0 / std::sqrt(2.0), 1e-6);
}

TEST_F(RcLowPass, PhaseAtCornerIsMinus45Deg) {
  AcAnalysis ac;
  const auto sweep = ac.run(net_, op_, {kFc});
  EXPECT_NEAR(std::arg(sweep.voltage(0, out_)) * 180.0 / std::numbers::pi, -45.0, 1e-3);
}

TEST_F(RcLowPass, MagnitudeMatchesAnalyticAcrossSweep) {
  AcAnalysis ac;
  const auto freqs = log_frequency_grid(1.0, 1e5, 5);
  const auto sweep = ac.run(net_, op_, freqs);
  for (std::size_t k = 0; k < freqs.size(); ++k) {
    const double expect = 1.0 / std::sqrt(1.0 + std::pow(freqs[k] / kFc, 2));
    EXPECT_NEAR(std::abs(sweep.voltage(k, out_)), expect, 1e-6) << "f=" << freqs[k];
  }
}

TEST(Ac, RlHighPass) {
  // Series R from source, inductor to ground: |H| = wL / sqrt(R^2 + (wL)^2).
  Netlist n;
  const int vin = n.node("vin");
  const int out = n.node("out");
  n.add<VSource>(vin, kGround, Waveform::dc(0.0), 1.0);
  n.add<Resistor>(vin, out, 100.0);
  n.add<Inductor>(out, kGround, 1e-3);
  n.prepare();
  Vec op(n.system_size(), 0.0);
  AcAnalysis ac;
  const double f = 50e3;
  const auto sweep = ac.run(n, op, {f});
  const double wl = 2.0 * std::numbers::pi * f * 1e-3;
  EXPECT_NEAR(std::abs(sweep.voltage(0, out)), wl / std::hypot(100.0, wl), 1e-4);
}

TEST(Ac, CommonSourceAmpGainIsGmOverGl) {
  // NMOS CS stage with ideal resistor load; low-frequency gain = gm * (R || ro).
  Netlist n;
  const int vdd = n.node("vdd");
  const int in = n.node("in");
  const int out = n.node("out");
  n.add<VSource>(vdd, kGround, Waveform::dc(1.8));
  n.add<VSource>(in, kGround, Waveform::dc(0.7), /*ac_mag=*/1.0);
  n.add<Resistor>(vdd, out, 5e3);
  auto* m = n.add<Mosfet>(out, in, kGround, kGround, MosModel::nmos_180(), 20e-6, 1e-6);
  DcAnalysis dc;
  const auto r = dc.solve(n);
  ASSERT_TRUE(r.converged);
  const auto e = m->operating_point(r.x);
  ASSERT_TRUE(e.saturated);
  AcAnalysis ac;
  const auto sweep = ac.run(n, r.x, {10.0});
  const double gl = 1.0 / 5e3 + e.gds;
  EXPECT_NEAR(std::abs(sweep.voltage(0, out)), e.gm / gl, 0.01 * e.gm / gl);
  // Inverting stage: phase ~ 180 degrees at low frequency.
  const double phase = std::abs(std::arg(sweep.voltage(0, out))) * 180.0 / std::numbers::pi;
  EXPECT_NEAR(phase, 180.0, 1.0);
}

TEST(Ac, SourceWithZeroAcMagnitudeProducesZeroResponse) {
  Netlist n;
  const int vin = n.node("vin");
  const int out = n.node("out");
  n.add<VSource>(vin, kGround, Waveform::dc(1.0), 0.0);
  n.add<Resistor>(vin, out, 1e3);
  n.add<Resistor>(out, kGround, 1e3);
  n.prepare();
  Vec op(n.system_size(), 0.0);
  AcAnalysis ac;
  const auto sweep = ac.run(n, op, {100.0});
  EXPECT_LT(std::abs(sweep.voltage(0, out)), 1e-12);
}

}  // namespace
}  // namespace maopt::spice
