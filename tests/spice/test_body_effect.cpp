#include <gtest/gtest.h>

#include <cmath>

#include "spice/dc_analysis.hpp"
#include "spice/devices.hpp"
#include "spice/mosfet.hpp"

namespace maopt::spice {
namespace {

MosModel body_nmos() {
  MosModel m = MosModel::nmos_180();
  m.gamma = 0.4;
  m.phi = 0.7;
  return m;
}

/// NMOS with source lifted above bulk by `vsb`; returns drain current.
double id_at_vsb(const MosModel& model, double vsb) {
  Netlist n;
  const int d = n.node("d");
  const int g = n.node("g");
  const int s = n.node("s");
  n.add<VSource>(d, kGround, Waveform::dc(1.8 + vsb));  // keep vds = 1.8
  n.add<VSource>(g, kGround, Waveform::dc(1.0 + vsb));  // keep vgs = 1.0
  n.add<VSource>(s, kGround, Waveform::dc(vsb));
  auto* m1 = n.add<Mosfet>(d, g, s, kGround, model, 10e-6, 1e-6);
  DcAnalysis dc;
  const auto r = dc.solve(n);
  EXPECT_TRUE(r.converged);
  return m1->drain_current(r.x);
}

TEST(BodyEffect, GammaZeroIgnoresBulkBias) {
  const MosModel nominal = MosModel::nmos_180();
  EXPECT_NEAR(id_at_vsb(nominal, 0.0), id_at_vsb(nominal, 0.5), 1e-12);
}

TEST(BodyEffect, ReverseBodyBiasReducesCurrent) {
  const MosModel m = body_nmos();
  const double i0 = id_at_vsb(m, 0.0);
  const double i1 = id_at_vsb(m, 0.3);
  const double i2 = id_at_vsb(m, 0.6);
  EXPECT_GT(i0, i1);
  EXPECT_GT(i1, i2);
}

TEST(BodyEffect, ThresholdShiftMatchesFormula) {
  // Infer delta-vth from the sqrt-law current ratio (saturation, lambda small).
  MosModel m = body_nmos();
  m.lambda_l = 1e-12;  // suppress CLM for a clean comparison
  const double vsb = 0.5;
  const double i0 = id_at_vsb(m, 0.0);
  const double i1 = id_at_vsb(m, vsb);
  // id ~ (vgs - vth)^2: vov0 = 0.55, vov1 = vov0 - dvth.
  const double dvth_measured = 0.55 - 0.55 * std::sqrt(i1 / i0);
  const double dvth_expected = 0.4 * (std::sqrt(0.7 + vsb) - std::sqrt(0.7));
  EXPECT_NEAR(dvth_measured, dvth_expected, 1e-3);
}

TEST(BodyEffect, GmbReportedPositiveAndSmallerThanGm) {
  Netlist n;
  const int d = n.node("d");
  const int g = n.node("g");
  const int s = n.node("s");
  n.add<VSource>(d, kGround, Waveform::dc(1.8));
  n.add<VSource>(g, kGround, Waveform::dc(1.5));
  n.add<VSource>(s, kGround, Waveform::dc(0.5));
  auto* m1 = n.add<Mosfet>(d, g, s, kGround, body_nmos(), 10e-6, 1e-6);
  DcAnalysis dc;
  const auto r = dc.solve(n);
  ASSERT_TRUE(r.converged);
  const auto e = m1->operating_point(r.x);
  EXPECT_GT(e.gmb, 0.0);
  EXPECT_LT(e.gmb, e.gm);
}

TEST(BodyEffect, GmbMatchesFiniteDifferenceOfBulkBias) {
  // Perturb the bulk with its own source and compare dId/dVb to gmb.
  auto id_with_vb = [](double vbulk, MosEval* eval_out) {
    Netlist n;
    const int d = n.node("d");
    const int g = n.node("g");
    const int s = n.node("s");
    const int b = n.node("b");
    n.add<VSource>(d, kGround, Waveform::dc(1.8));
    n.add<VSource>(g, kGround, Waveform::dc(1.5));
    n.add<VSource>(s, kGround, Waveform::dc(0.5));
    n.add<VSource>(b, kGround, Waveform::dc(vbulk));
    auto* m1 = n.add<Mosfet>(d, g, s, b, body_nmos(), 10e-6, 1e-6);
    DcAnalysis dc;
    const auto r = dc.solve(n);
    EXPECT_TRUE(r.converged);
    if (eval_out) *eval_out = m1->operating_point(r.x);
    return m1->drain_current(r.x);
  };
  MosEval e{};
  id_with_vb(0.0, &e);
  const double h = 1e-5;
  const double fd = (id_with_vb(h, nullptr) - id_with_vb(-h, nullptr)) / (2 * h);
  EXPECT_NEAR(e.gmb, fd, std::abs(fd) * 1e-3 + 1e-12);
}

TEST(BodyEffect, ForwardBiasClampKeepsNewtonStable) {
  // Bulk well above source (forward bias): the clamp must keep the solve
  // convergent and the current finite.
  Netlist n;
  const int d = n.node("d");
  const int g = n.node("g");
  n.add<VSource>(d, kGround, Waveform::dc(1.8));
  n.add<VSource>(g, kGround, Waveform::dc(1.0));
  const int b = n.node("b");
  n.add<VSource>(b, kGround, Waveform::dc(1.5));
  auto* m1 = n.add<Mosfet>(d, g, kGround, b, body_nmos(), 10e-6, 1e-6);
  DcAnalysis dc;
  const auto r = dc.solve(n);
  ASSERT_TRUE(r.converged);
  EXPECT_TRUE(std::isfinite(m1->drain_current(r.x)));
}

}  // namespace
}  // namespace maopt::spice
