// Additional AC-analysis properties: superposition, electronic-load
// small-signal behaviour, and PULSE-driven transients.
#include <gtest/gtest.h>

#include <cmath>

#include "spice/ac_analysis.hpp"
#include "spice/dc_analysis.hpp"
#include "spice/devices.hpp"
#include "spice/tran_analysis.hpp"

namespace maopt::spice {
namespace {

TEST(AcExtra, SuperpositionOfTwoSources) {
  // Linear network: response to both AC sources equals the sum of the
  // responses to each alone.
  auto response = [](double mag1, double mag2) {
    Netlist n;
    const int a = n.node("a");
    const int b = n.node("b");
    const int out = n.node("out");
    n.add<VSource>(a, kGround, Waveform::dc(0.0), mag1);
    n.add<VSource>(b, kGround, Waveform::dc(0.0), mag2);
    n.add<Resistor>(a, out, 1e3);
    n.add<Resistor>(b, out, 2e3);
    n.add<Resistor>(out, kGround, 3e3);
    n.prepare();
    Vec op(n.system_size(), 0.0);
    AcAnalysis ac;
    return ac.run(n, op, {1e3}).voltage(0, out);
  };
  const auto both = response(1.0, 1.0);
  const auto only1 = response(1.0, 0.0);
  const auto only2 = response(0.0, 1.0);
  EXPECT_NEAR(both.real(), (only1 + only2).real(), 1e-12);
  EXPECT_NEAR(both.imag(), (only1 + only2).imag(), 1e-12);
}

TEST(AcExtra, CurrentSinkLoadIsOpenAboveKneeInSmallSignal) {
  // Above the knee df/dv = 0: the load contributes no AC conductance.
  Netlist n;
  const int out = n.node("out");
  n.add<ISource>(kGround, out, Waveform::dc(10e-3), /*ac_mag=*/1.0);
  n.add<Resistor>(out, kGround, 100.0);
  n.add<CurrentSinkLoad>(out, kGround, Waveform::dc(5e-3), 0.2);
  DcAnalysis dc;
  const auto op = dc.solve(n);
  ASSERT_TRUE(op.converged);
  ASSERT_GT(Netlist::voltage(op.x, out), 0.2);  // above knee
  AcAnalysis ac;
  const auto sweep = ac.run(n, op.x, {1e3});
  // AC current of 1 A into 100 Ohm -> 100 V if the load adds nothing.
  EXPECT_NEAR(std::abs(sweep.voltage(0, out)), 100.0, 0.01);
}

TEST(AcExtra, CurrentSinkLoadAddsConductanceInComplianceRegion) {
  Netlist n;
  const int out = n.node("out");
  n.add<ISource>(kGround, out, Waveform::dc(1e-3), /*ac_mag=*/1.0);
  n.add<Resistor>(out, kGround, 100.0);
  n.add<CurrentSinkLoad>(out, kGround, Waveform::dc(50e-3), 0.5);  // starved
  DcAnalysis dc;
  const auto op = dc.solve(n);
  ASSERT_TRUE(op.converged);
  ASSERT_LT(Netlist::voltage(op.x, out), 0.5);  // in compliance region
  AcAnalysis ac;
  const auto sweep = ac.run(n, op.x, {1e3});
  // Load conductance 50mA/0.5V = 0.1 S in parallel with 0.01 S -> |Z| = 1/0.11.
  EXPECT_NEAR(std::abs(sweep.voltage(0, out)), 1.0 / 0.11, 0.05);
}

TEST(AcExtra, PulseSourceDrivesRepeatingTransient) {
  Netlist n;
  const int in = n.node("in");
  const int out = n.node("out");
  n.add<VSource>(in, kGround,
                 Waveform::pulse(0.0, 1.0, /*delay=*/50e-9, /*rise=*/1e-9, /*fall=*/1e-9,
                                 /*width=*/100e-9, /*period=*/200e-9));
  n.add<Resistor>(in, out, 100.0);
  n.add<Capacitor>(out, kGround, 10e-12);  // tau = 1 ns << pulse width
  TranOptions topt;
  topt.t_stop = 450e-9;
  topt.dt = 1e-9;
  const auto tr = TranAnalysis(topt).run(n);
  ASSERT_TRUE(tr.converged);
  const auto wave = tr.node_waveform(out);
  auto at = [&](double t) {
    std::size_t k = 0;
    while (k + 1 < tr.time.size() && tr.time[k] < t) ++k;
    return wave[k];
  };
  EXPECT_NEAR(at(20e-9), 0.0, 0.02);    // before first pulse
  EXPECT_NEAR(at(120e-9), 1.0, 0.02);   // during first pulse
  EXPECT_NEAR(at(180e-9), 0.0, 0.05);   // between pulses
  EXPECT_NEAR(at(320e-9), 1.0, 0.02);   // second period
}

TEST(AcExtra, TwoToneDividerMagnitudeIndependentOfFrequency) {
  // Purely resistive network: identical response at widely spaced tones.
  Netlist n;
  const int in = n.node("in");
  const int out = n.node("out");
  n.add<VSource>(in, kGround, Waveform::dc(0.0), 1.0);
  n.add<Resistor>(in, out, 1e3);
  n.add<Resistor>(out, kGround, 1e3);
  n.prepare();
  Vec op(n.system_size(), 0.0);
  AcAnalysis ac;
  const auto sweep = ac.run(n, op, {1.0, 1e6, 1e12});
  for (std::size_t k = 0; k < 3; ++k)
    EXPECT_NEAR(std::abs(sweep.voltage(k, out)), 0.5, 1e-9);
}

}  // namespace
}  // namespace maopt::spice
