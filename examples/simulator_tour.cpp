// A tour of the circuit-simulation substrate on its own — no optimizer.
// Builds a common-source amplifier, then runs all four analyses the
// testbenches use: DC operating point, AC sweep, transient, and noise.
//
//   ./examples/simulator_tour
#include <cmath>
#include <cstdio>

#include "maopt.hpp"

int main() {
  using namespace maopt;
  using namespace maopt::spice;

  // --- Netlist: NMOS common-source stage, 5 kOhm load, 200 fF at the output.
  Netlist n;
  const int vdd = n.node("vdd");
  const int in = n.node("in");
  const int out = n.node("out");
  auto* supply = n.add<VSource>(vdd, kGround, Waveform::dc(1.8));
  auto* input = n.add<VSource>(in, kGround, Waveform::dc(0.70), /*ac_mag=*/1.0);
  n.add<Resistor>(vdd, out, 5e3);
  auto* m1 = n.add<Mosfet>(out, in, kGround, kGround, MosModel::nmos_180(), 20e-6, 1e-6);
  n.add<Capacitor>(out, kGround, 200e-15);

  // --- DC operating point.
  DcAnalysis dc;
  const DcResult op = dc.solve(n);
  std::printf("DC operating point (%s, %d Newton iterations):\n", op.method.c_str(),
              op.iterations);
  std::printf("  V(out) = %.4f V, Id = %.1f uA, power = %.1f uW\n",
              Netlist::voltage(op.x, out), m1->drain_current(op.x) * 1e6,
              std::abs(supply->branch_current(op.x)) * 1.8 * 1e6);
  const MosEval e = m1->operating_point(op.x);
  std::printf("  M1: %s, gm = %.3f mS, gds = %.1f uS\n",
              e.saturated ? "saturation" : (e.cutoff ? "cutoff" : "triode"), e.gm * 1e3,
              e.gds * 1e6);

  // --- AC sweep: gain, bandwidth, unity-gain frequency.
  AcAnalysis ac;
  const AcSweep sweep = ac.run(n, op.x, log_frequency_grid(1e3, 100e9, 10));
  std::printf("\nAC analysis:\n");
  std::printf("  low-frequency gain = %.1f dB\n", dc_gain_db(sweep, out));
  std::printf("  -3 dB bandwidth    = %.1f MHz\n", bandwidth_3db(sweep, out).value_or(0) * 1e-6);
  std::printf("  unity-gain freq    = %.2f GHz\n",
              unity_gain_frequency(sweep, out).value_or(0) * 1e-9);

  // --- Transient: response to a 100 mV input step.
  input->set_waveform(Waveform::pwl({{0.0, 0.70}, {2e-9, 0.70}, {2.2e-9, 0.80}}));
  TranOptions topt;
  topt.t_stop = 30e-9;
  topt.dt = 20e-12;
  const TranResult tr = TranAnalysis(topt).run(n);
  const auto wave = tr.node_waveform(out);
  const auto st = settling_time(tr.time, wave, 2e-9, wave.back(), 0.01 * 0.1);
  std::printf("\nTransient (100 mV input step):\n");
  std::printf("  V(out): %.3f V -> %.3f V, settling (1%%) = %.2f ns\n", wave.front(), wave.back(),
              st.value_or(-1) * 1e9);
  input->set_dc(0.70);

  // --- Noise: output PSD and integrated noise.
  NoiseAnalysis noise;
  const NoiseResult nr = noise.run(n, op.x, out, kGround, log_frequency_grid(1.0, 10e9, 8));
  std::printf("\nNoise analysis (1 Hz .. 10 GHz):\n");
  std::printf("  output PSD @ 1 MHz = %.3g V^2/Hz\n",
              nr.output_psd[static_cast<std::size_t>(
                  std::distance(nr.frequencies.begin(),
                                std::lower_bound(nr.frequencies.begin(), nr.frequencies.end(),
                                                 1e6)))]);
  std::printf("  integrated output noise = %.1f uVrms\n", nr.total_rms * 1e6);
  return 0;
}
