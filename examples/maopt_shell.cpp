// maopt_shell — CLI client/REPL for the in-process optimization daemon
// (serve::OptDaemon) with shell-style job control.
//
//   ./examples/maopt_shell [--threads N] [--capacity N] [--quantum N]
//                          [--work-dir DIR] [--jsonl PATH] [--seed N]
//                          [--fault-rate F]
//
// --fault-rate F > 0 registers a fourth problem "quad-faulty" (the quadratic
// behind seeded fault injection at total rate F) and turns on the resilient
// retry layer for every problem stack — the CI daemon-smoke job uses it to
// prove a faulty tenant cannot take the daemon down.
//
// Commands (one per line; reads stdin, so it works interactively and piped —
// the CI daemon-smoke job drives it with a heredoc):
//
//   help                          this text
//   problems                      registered problems
//   load NAME DECK [SPEC]         compile a SPICE deck (+ spec file, default
//                                 DECK with .spec) and register it as NAME
//   tenant NAME [WEIGHT]          register NAME and make it the current tenant
//   submit NAME [k=v ...] [&]     run a job; trailing & backgrounds it
//                                 keys: problem= algo= seed= sims= init=
//                                       ckpt-every= jsonl= deck= spec= resume
//                                 deck= compiles and registers the deck on
//                                 the fly (problem= names it; default stem)
//   jobs                          job table (%n is the job id)
//   status %N|NAME                one job's detail
//   pause %N|NAME                 checkpoint + vacate (MA-family only)
//   resume %N|NAME                foreground-resume a paused job
//   bg %N|NAME                    background-resume a paused job
//   fg %N|NAME                    wait for a job (returns on pause, like a
//                                 shell fg returning on Ctrl-Z)
//   kill %N|NAME                  terminate a job
//   sched                         fair-share scheduler stats
//   quit | exit                   kill remaining jobs and leave
//
// The daemon-level --jsonl stream carries only job-scoped events
// (job_submitted / job_state_changed / job_finished) and validates with
// tools/check_telemetry.py --min-jobs N; per-run event streams go to each
// job's own jsonl= sink.
#include <unistd.h>

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "maopt.hpp"

namespace {

using namespace maopt;

void print_jobs(const std::vector<serve::JobStatus>& jobs) {
  std::printf("%-4s %-12s %-10s %-8s %-8s %-9s %12s\n", "id", "name", "tenant", "algo", "state",
              "sims", "best_fom");
  for (const auto& job : jobs) {
    std::printf("%%%-3llu %-12s %-10s %-8s %-8s %4llu/%-4llu %12.4g\n",
                static_cast<unsigned long long>(job.id), job.spec.name.c_str(),
                job.spec.tenant.empty() ? "-" : job.spec.tenant.c_str(),
                job.spec.algorithm.c_str(), serve::to_string(job.state),
                static_cast<unsigned long long>(job.simulations),
                static_cast<unsigned long long>(job.spec.simulation_budget), job.best_fom);
  }
}

/// Resolves "%N" (job id) or a plain job name to the job's name; empty when
/// the reference matches nothing.
std::string resolve_job(serve::OptDaemon& daemon, const std::string& ref) {
  if (ref.empty()) return {};
  if (ref[0] == '%') {
    const auto id = static_cast<std::uint64_t>(std::strtoull(ref.c_str() + 1, nullptr, 10));
    for (const auto& job : daemon.jobs())
      if (job.id == id) return job.spec.name;
    return {};
  }
  return ref;
}

void report(const serve::JobStatus& status) {
  std::printf("[%s] %s: %llu sims, best fom %.6g%s%s\n", serve::to_string(status.state),
              status.spec.name.c_str(), static_cast<unsigned long long>(status.simulations),
              status.best_fom, status.feasible ? ", feasible" : "",
              status.error.empty() ? "" : (", error: " + status.error).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  if (args.has("help")) {
    std::printf("usage: maopt_shell [--threads N] [--capacity N] [--quantum N]\n"
                "                   [--work-dir DIR] [--jsonl PATH] [--seed N]\n"
                "                   [--fault-rate F]\n"
                "Interactive job-control shell over the optimization daemon; type "
                "'help' at the prompt.\n");
    return 0;
  }
  const double fault_rate = args.get_double("fault-rate", 0.0);

  std::unique_ptr<obs::JsonlObserver> job_events;
  const std::string jsonl_path = args.get("jsonl", "");
  if (!jsonl_path.empty()) job_events = std::make_unique<obs::JsonlObserver>(jsonl_path);

  // Built-in problem roster: the two SPICE testbenches plus a fast analytic
  // problem that keeps piped smoke runs cheap. Declared before the daemon —
  // its destructor joins worker threads that may still be evaluating them.
  ckt::TwoStageOta ota;
  ckt::ThreeStageTia tia;
  ckt::ConstrainedQuadratic quad(6);
  std::unique_ptr<ckt::FaultInjectingProblem> faulty;
  if (fault_rate > 0.0) {
    ckt::FaultInjectionConfig faults;
    faults.throw_rate = fault_rate / 2.0;  // no hangs: smoke runs stay fast
    faults.nan_rate = fault_rate / 4.0;
    faults.garbage_rate = fault_rate / 4.0;
    faulty = std::make_unique<ckt::FaultInjectingProblem>(quad, faults);
  }

  serve::DaemonConfig config;
  config.work_dir = args.get("work-dir", "maopt_daemon");
  config.num_threads = static_cast<std::size_t>(args.get_int("threads", 0));
  config.scheduler.capacity = static_cast<std::size_t>(args.get_int("capacity", 0));
  config.scheduler.quantum = static_cast<std::size_t>(args.get_int("quantum", 8));
  config.observer = job_events.get();
  if (fault_rate > 0.0) config.service.resilient = true;  // retries absorb injected faults
  serve::OptDaemon daemon(config);

  daemon.add_problem("ota", ota);
  daemon.add_problem("tia", tia);
  daemon.add_problem("quad", quad);
  if (faulty) daemon.add_problem("quad-faulty", *faulty);

  const auto default_seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const bool interactive = isatty(fileno(stdin)) != 0;
  std::string tenant;
  std::string line;
  std::vector<std::pair<std::string, std::string>> loaded_decks;  // name -> deck path

  while (true) {
    if (interactive) {
      std::printf("maopt> ");
      std::fflush(stdout);
    }
    if (!std::getline(std::cin, line)) break;
    std::istringstream in(line);
    std::vector<std::string> words;
    for (std::string word; in >> word;) words.push_back(word);
    if (words.empty() || words[0][0] == '#') continue;
    const std::string& cmd = words[0];

    try {
      if (cmd == "quit" || cmd == "exit") break;
      if (cmd == "help") {
        std::printf("commands: help problems load tenant submit jobs status pause resume bg fg "
                    "kill sched quit\n");
      } else if (cmd == "problems") {
        std::printf("ota  — two-stage OTA (SPICE)\ntia  — three-stage TIA (SPICE)\n"
                    "quad — constrained quadratic (analytic, fast)\n");
        if (faulty)
          std::printf("quad-faulty — quad behind %.0f%% injected faults\n", fault_rate * 100.0);
        for (const auto& [name, path] : loaded_decks)
          std::printf("%s — deck-compiled (%s)\n", name.c_str(), path.c_str());
      } else if (cmd == "load") {
        if (words.size() < 3) {
          std::printf("usage: load NAME DECK [SPEC]\n");
          continue;
        }
        daemon.add_deck(words[1], words[2], words.size() > 3 ? words[3] : "");
        loaded_decks.emplace_back(words[1], words[2]);
        std::printf("%s loaded from %s\n", words[1].c_str(), words[2].c_str());
      } else if (cmd == "tenant") {
        if (words.size() < 2) {
          std::printf("current tenant: %s\n", tenant.empty() ? "(default)" : tenant.c_str());
        } else {
          tenant = words[1];
          const double weight = words.size() > 2 ? spice::parse_spice_value(words[2]) : 1.0;
          daemon.register_tenant(tenant, weight);
          std::printf("tenant %s (weight %g)\n", tenant.c_str(), weight);
        }
      } else if (cmd == "submit") {
        if (words.size() < 2) {
          std::printf("usage: submit NAME [problem=quad] [algo=MA-Opt] [seed=N] [sims=N] "
                      "[init=N] [ckpt-every=N] [jsonl=PATH] [deck=PATH] [spec=PATH] "
                      "[resume] [&]\n");
          continue;
        }
        serve::JobSpec spec;
        spec.name = words[1];
        spec.tenant = tenant;
        spec.problem = "quad";
        spec.seed = default_seed;
        bool background = false;
        for (std::size_t i = 2; i < words.size(); ++i) {
          const std::string& word = words[i];
          const auto eq = word.find('=');
          const std::string key = word.substr(0, eq);
          const std::string value = eq == std::string::npos ? "" : word.substr(eq + 1);
          if (word == "&") background = true;
          else if (word == "resume") spec.resume_from_checkpoint = true;
          else if (key == "deck") { spec.deck_path = value; spec.problem.clear(); }
          else if (key == "spec") spec.spec_path = value;
          else if (key == "problem") spec.problem = value;
          else if (key == "algo") spec.algorithm = value;
          else if (key == "seed") spec.seed = std::strtoull(value.c_str(), nullptr, 10);
          else if (key == "sims") spec.simulation_budget = std::strtoull(value.c_str(), nullptr, 10);
          else if (key == "init") spec.initial_samples = std::strtoull(value.c_str(), nullptr, 10);
          else if (key == "ckpt-every") spec.checkpoint_every = std::atoi(value.c_str());
          else if (key == "jsonl") spec.jsonl_path = value;
          else std::printf("ignoring unknown key: %s\n", word.c_str());
        }
        const std::uint64_t id = daemon.submit(spec);
        std::printf("[%%%llu] %s submitted\n", static_cast<unsigned long long>(id),
                    spec.name.c_str());
        if (!background) report(daemon.wait(spec.name));
      } else if (cmd == "jobs") {
        print_jobs(daemon.jobs());
      } else if (cmd == "sched") {
        for (const auto& [name, s] : daemon.scheduler().stats())
          std::printf("%-10s weight %4.1f  granted %6llu sims  waiting %zu\n",
                      name.empty() ? "(default)" : name.c_str(), s.weight,
                      static_cast<unsigned long long>(s.granted_sims), s.waiting);
      } else if (cmd == "status" || cmd == "pause" || cmd == "resume" || cmd == "bg" ||
                 cmd == "fg" || cmd == "kill" || cmd == "wait") {
        if (words.size() < 2) {
          std::printf("usage: %s %%N|NAME\n", cmd.c_str());
          continue;
        }
        const std::string name = resolve_job(daemon, words[1]);
        if (name.empty()) {
          std::printf("no such job: %s\n", words[1].c_str());
          continue;
        }
        if (cmd == "status") {
          report(daemon.status(name));
        } else if (cmd == "pause") {
          std::printf(daemon.pause(name) ? "%s: pause requested\n"
                                         : "%s: not pausable (not running, or not MA-family)\n",
                      name.c_str());
        } else if (cmd == "bg") {
          std::printf(daemon.resume(name) ? "%s: resumed in background\n" : "%s: not paused\n",
                      name.c_str());
        } else if (cmd == "resume") {
          if (!daemon.resume(name)) {
            std::printf("%s: not paused\n", name.c_str());
          } else {
            report(daemon.wait(name));
          }
        } else if (cmd == "fg" || cmd == "wait") {
          report(daemon.wait(name));
        } else {  // kill
          std::printf(daemon.kill(name) ? "%s: kill requested\n" : "%s: already finished\n",
                      name.c_str());
          report(daemon.wait(name));
        }
      } else {
        std::printf("unknown command: %s (try 'help')\n", cmd.c_str());
      }
    } catch (const std::exception& e) {
      std::printf("error: %s\n", e.what());
    }
  }

  // Daemon destructor kills whatever is still running and joins the workers.
  return 0;
}
