// minispice — the circuit-simulation substrate as a standalone SPICE-like
// command-line tool.
//
//   ./examples/minispice <deck.cir> [--op]
//                        [--ac <fstart> <fstop> <node>]
//                        [--tran <tstop> <dt> <node>]
//                        [--noise <node>]
//
// With no analysis flags, runs the operating point and prints the report.
// AC/TRAN/NOISE results are printed as CSV on stdout.
//
// Example deck:
//   .model n180 NMOS
//   VDD vdd 0 1.8
//   VIN in 0 DC 0.7 AC 1
//   RL vdd out 5k
//   M1 out in 0 0 n180 W=20u L=1u
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "maopt.hpp"

int main(int argc, char** argv) {
  using namespace maopt;
  using namespace maopt::spice;
  const CliArgs args(argc, argv);
  if (args.positional().empty()) {
    std::fprintf(stderr, "usage: minispice <deck.cir> [--op] [--ac f0 f1 node] "
                         "[--tran tstop dt node] [--noise node]\n");
    return 2;
  }

  std::ifstream file(args.positional()[0]);
  if (!file) {
    std::fprintf(stderr, "cannot open '%s'\n", args.positional()[0].c_str());
    return 2;
  }
  std::stringstream deck;
  deck << file.rdbuf();

  ParsedNetlist parsed;
  try {
    parsed = parse_netlist(deck.str());
  } catch (const ParseError& e) {
    std::fprintf(stderr, "parse error: %s\n", e.what());
    return 1;
  }

  DcAnalysis dc;
  const DcResult op = dc.solve(parsed.netlist);
  if (!op.converged) {
    std::fprintf(stderr, "DC operating point did not converge\n");
    return 1;
  }

  const bool any_analysis = args.has("ac") || args.has("tran") || args.has("noise");
  if (args.has("op") || !any_analysis)
    std::fputs(operating_point_report(parsed.netlist, op.x).c_str(), stdout);

  if (args.has("ac")) {
    // --ac consumes one value via CliArgs; remaining operands are positional.
    if (args.positional().size() < 3) {
      std::fprintf(stderr, "--ac needs: <fstart(flag value)> <fstop> <node> "
                           "(fstop/node as positionals)\n");
      return 2;
    }
    const double f0 = args.get_double("ac", 1.0);
    const double f1 = spice::parse_spice_value(args.positional()[1]);
    const int node = parsed.netlist.find_node(args.positional()[2]);
    AcAnalysis ac;
    const AcSweep sweep = ac.run(parsed.netlist, op.x, log_frequency_grid(f0, f1, 10));
    std::printf("frequency,magnitude_db,phase_deg\n");
    const auto db = magnitude_db(sweep, node);
    const auto ph = phase_deg_unwrapped(sweep, node);
    for (std::size_t k = 0; k < sweep.frequencies.size(); ++k)
      std::printf("%g,%g,%g\n", sweep.frequencies[k], db[k], ph[k]);
  }

  if (args.has("tran")) {
    if (args.positional().size() < 3) {
      std::fprintf(stderr, "--tran needs: <tstop(flag value)> <dt> <node>\n");
      return 2;
    }
    TranOptions topt;
    topt.t_stop = args.get_double("tran", 1e-6);
    topt.dt = spice::parse_spice_value(args.positional()[1]);
    const int node = parsed.netlist.find_node(args.positional()[2]);
    const TranResult tr = TranAnalysis(topt).run(parsed.netlist);
    if (!tr.converged) {
      std::fprintf(stderr, "transient did not converge\n");
      return 1;
    }
    std::printf("time,voltage\n");
    const auto wave = tr.node_waveform(node);
    for (std::size_t k = 0; k < tr.time.size(); ++k)
      std::printf("%g,%g\n", tr.time[k], wave[k]);
  }

  if (args.has("noise")) {
    const int node = parsed.netlist.find_node(args.get("noise", "out"));
    NoiseAnalysis noise;
    const NoiseResult nr =
        noise.run(parsed.netlist, op.x, node, kGround, log_frequency_grid(1.0, 1e9, 8));
    std::printf("frequency,psd_v2hz\n");
    for (std::size_t k = 0; k < nr.frequencies.size(); ++k)
      std::printf("%g,%g\n", nr.frequencies[k], nr.output_psd[k]);
    std::printf("# integrated: %g uVrms\n", nr.total_rms * 1e6);
  }
  return 0;
}
