// minispice — the circuit-simulation substrate as a standalone SPICE-like
// command-line tool.
//
//   ./examples/minispice <deck.cir> [--op]
//                        [--ac <fstart> <fstop> <node>]
//                        [--tran <tstop> <dt> <node>]
//                        [--noise <node>]
//
// With no analysis flags, runs the operating point and prints the report.
// AC/TRAN/NOISE results are printed as CSV on stdout.
//
// Decks go through the full deck elaborator (src/deck/), so `.include`,
// `.param` expressions and `.subckt`/`X` flattening all work; the deck's own
// analysis and measure cards are ignored here — this tool drives analyses
// from the command line. Elaboration warnings go to stderr.
//
// Example deck:
//   .model n180 NMOS
//   .param W=20u
//   VDD vdd 0 1.8
//   VIN in 0 DC 0.7 AC 1
//   RL vdd out 5k
//   M1 out in 0 0 n180 W={W} L=1u
#include <cmath>
#include <cstdio>

#include "maopt.hpp"

int main(int argc, char** argv) {
  using namespace maopt;
  using namespace maopt::spice;
  const CliArgs args(argc, argv);
  if (args.positional().empty()) {
    std::fprintf(stderr, "usage: minispice <deck.cir> [--op] [--ac f0 f1 node] "
                         "[--tran tstop dt node] [--noise node]\n");
    return 2;
  }

  Netlist netlist;
  try {
    const deck::ElaboratedDeck elaborated = deck::elaborate_deck_file(args.positional()[0]);
    for (const auto& warning : elaborated.warnings)
      std::fprintf(stderr, "warning: %s\n", warning.c_str());
    deck::build_nominal_netlist(elaborated, netlist);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "deck error: %s\n", e.what());
    return 1;
  }

  DcAnalysis dc;
  const DcResult op = dc.solve(netlist);
  if (!op.converged) {
    std::fprintf(stderr, "DC operating point did not converge\n");
    return 1;
  }

  const bool any_analysis = args.has("ac") || args.has("tran") || args.has("noise");
  if (args.has("op") || !any_analysis)
    std::fputs(operating_point_report(netlist, op.x).c_str(), stdout);

  if (args.has("ac")) {
    // --ac consumes one value via CliArgs; remaining operands are positional.
    if (args.positional().size() < 3) {
      std::fprintf(stderr, "--ac needs: <fstart(flag value)> <fstop> <node> "
                           "(fstop/node as positionals)\n");
      return 2;
    }
    const double f0 = args.get_double("ac", 1.0);
    const double f1 = spice::parse_spice_value(args.positional()[1]);
    const int node = netlist.find_node(args.positional()[2]);
    AcAnalysis ac;
    const AcSweep sweep = ac.run(netlist, op.x, log_frequency_grid(f0, f1, 10));
    std::printf("frequency,magnitude_db,phase_deg\n");
    const auto db = magnitude_db(sweep, node);
    const auto ph = phase_deg_unwrapped(sweep, node);
    for (std::size_t k = 0; k < sweep.frequencies.size(); ++k)
      std::printf("%g,%g,%g\n", sweep.frequencies[k], db[k], ph[k]);
  }

  if (args.has("tran")) {
    if (args.positional().size() < 3) {
      std::fprintf(stderr, "--tran needs: <tstop(flag value)> <dt> <node>\n");
      return 2;
    }
    TranOptions topt;
    topt.t_stop = args.get_double("tran", 1e-6);
    topt.dt = spice::parse_spice_value(args.positional()[1]);
    const int node = netlist.find_node(args.positional()[2]);
    const TranResult tr = TranAnalysis(topt).run(netlist);
    if (!tr.converged) {
      std::fprintf(stderr, "transient did not converge\n");
      return 1;
    }
    std::printf("time,voltage\n");
    const auto wave = tr.node_waveform(node);
    for (std::size_t k = 0; k < tr.time.size(); ++k)
      std::printf("%g,%g\n", tr.time[k], wave[k]);
  }

  if (args.has("noise")) {
    const int node = netlist.find_node(args.get("noise", "out"));
    NoiseAnalysis noise;
    const NoiseResult nr =
        noise.run(netlist, op.x, node, kGround, log_frequency_grid(1.0, 1e9, 8));
    std::printf("frequency,psd_v2hz\n");
    for (std::size_t k = 0; k < nr.frequencies.size(); ++k)
      std::printf("%g,%g\n", nr.frequencies[k], nr.output_psd[k]);
    std::printf("# integrated: %g uVrms\n", nr.total_rms * 1e6);
  }
  return 0;
}
