// Size the 3.3 V -> 1.8 V LDO regulator (the paper's hardest testbench:
// 16 parameters, 9 constraints including four transient settling specs)
// and print the winning design's full spec sheet.
//
//   ./examples/ldo_design [--sims 60] [--seed 3] [--fine]
#include <cstdio>

#include "maopt.hpp"

int main(int argc, char** argv) {
  using namespace maopt;
  const CliArgs args(argc, argv);
  if (args.has("help")) {
    std::printf("usage: ldo_design [--sims N] [--seed N] [--fine]\n"
                "Sizes the LDO regulator with MA-Opt (--fine uses full transients).\n");
    return 0;
  }
  const auto sims = static_cast<std::size_t>(args.get_int("sims", 60));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 3));

  ckt::LdoTranProfile profile;
  if (!args.get_bool("fine")) {  // coarse transients keep the example snappy
    profile.t_stop = 10e-6;
    profile.dt = 50e-9;
    profile.t_event = 1e-6;
  }
  ckt::LdoRegulator problem(profile);

  Rng rng(seed);
  std::printf("Simulating 40 random LDO designs (4 transients each)...\n");
  auto initial = core::sample_initial_set(problem, 40, rng);
  std::vector<linalg::Vec> rows;
  for (const auto& r : initial) rows.push_back(r.metrics);
  const auto fom = ckt::FomEvaluator::fit_reference(problem, rows);

  core::MaOptimizer optimizer(core::MaOptConfig::ma_opt());
  std::printf("Optimizing quiescent current with %s (%zu simulations)...\n",
              optimizer.name().c_str(), sims);
  const auto history = optimizer.run(problem, initial, fom, {.seed = seed, .simulation_budget = sims});

  const core::SimRecord* best = history.best_feasible();
  const bool feasible = best != nullptr;
  if (!best) best = history.best();

  std::printf("\n%s design (FoM %.4g):\n", feasible ? "Feasible" : "Best-effort", best->fom);
  const auto names = problem.parameter_names();
  for (std::size_t i = 0; i < problem.dim(); ++i)
    std::printf("  %-4s = %10.4g\n", names[i].c_str(), best->x[i]);

  std::printf("\nSpec sheet:\n");
  std::printf("  quiescent current @ 50 mA load : %8.4f mA\n", best->metrics[0]);
  const char* labels[] = {"Vout (min bound)", "Vout (max bound)", "load regulation",
                          "line regulation",  "T load 0.1uA->150mA", "T load 150mA->0.1uA",
                          "T line 2.0->3.3V", "T line 3.3->2.0V",   "PSRR @ 1 kHz"};
  for (std::size_t i = 0; i < problem.spec().constraints.size(); ++i) {
    const auto& c = problem.spec().constraints[i];
    const bool ok = ckt::normalized_violation(c, best->metrics[i + 1]) == 0.0;
    std::printf("  %-30s : %10.4f %-6s (%s %g)  %s\n", labels[i], best->metrics[i + 1],
                c.unit.c_str(), c.kind == ckt::ConstraintKind::GreaterEqual ? ">=" : "<=",
                c.bound, ok ? "PASS" : "FAIL");
  }
  return 0;
}
