// Compare the paper's algorithms head-to-head on one circuit with a shared
// initial population, printing the telemetry summary of each run — a
// miniature of the Table II/IV/VI + Fig. 5 experiment, driven entirely
// through the unified Optimizer::run(RunOptions) API.
//
//   ./examples/compare_optimizers [--circuit tia|ota] [--sims 60] [--seed 1]
//                                 [--jsonl run.jsonl] [--cache-dir DIR]
//                                 [--warm-start]
//
// With --cache-dir every simulation goes through an eval::EvalService backed
// by a persistent result journal in DIR: rerunning the same command yields
// cache hits (the hit/miss/coal columns of the table) and a bit-identical
// trajectory. --warm-start additionally seeds each run's initial set from
// the cached results of prior runs.
#include <cmath>
#include <cstdio>
#include <memory>

#include "maopt.hpp"

int main(int argc, char** argv) {
  using namespace maopt;
  const CliArgs args(argc, argv);
  if (args.has("help")) {
    std::printf(
        "usage: compare_optimizers [--circuit tia|ota] [--sims N] [--seed N]\n"
        "                          [--jsonl PATH] [--cache-dir DIR] [--warm-start]\n"
        "Runs the full algorithm roster on one circuit with a shared initial set.\n");
    return 0;
  }
  const auto sims = static_cast<std::size_t>(args.get_int("sims", 60));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const std::string jsonl_path = args.get("jsonl", "");
  const std::string cache_dir = args.get("cache-dir", "");
  const bool warm_start = args.has("warm-start");

  std::unique_ptr<ckt::SizingProblem> problem;
  if (args.get("circuit", "tia") == "ota")
    problem = std::make_unique<ckt::TwoStageOta>();
  else
    problem = std::make_unique<ckt::ThreeStageTia>();

  // With a cache dir the whole roster shares one EvalService (and one result
  // journal): later optimizers hit designs earlier ones already simulated.
  std::unique_ptr<serve::ServiceStack> stack;
  const ckt::SizingProblem* eval_target = problem.get();
  if (!cache_dir.empty() || warm_start) {
    stack = std::make_unique<serve::ServiceStack>(
        *problem, serve::ServiceConfig::builder().cache_dir(cache_dir).build());
    eval_target = &stack->service();
  }

  Rng rng(seed);
  auto initial = core::sample_initial_set(*eval_target, 40, rng);
  std::vector<linalg::Vec> rows;
  for (const auto& r : initial) rows.push_back(r.metrics);
  const auto fom = ckt::FomEvaluator::fit_reference(*problem, rows);

  std::vector<std::unique_ptr<core::Optimizer>> roster;
  roster.push_back(std::make_unique<core::RandomSearch>());
  roster.push_back(std::make_unique<core::PsoOptimizer>());
  roster.push_back(std::make_unique<core::DeOptimizer>());
  roster.push_back(std::make_unique<gp::BoOptimizer>());
  roster.push_back(std::make_unique<core::MaOptimizer>(core::MaOptConfig::dnn_opt()));
  roster.push_back(std::make_unique<core::MaOptimizer>(core::MaOptConfig::ma_opt2()));
  roster.push_back(std::make_unique<core::MaOptimizer>(core::MaOptConfig::ma_opt()));

  // One report across the whole roster gives one summary row per run; the
  // optional JSONL sink receives the full event stream of every run.
  obs::RunReport report;
  obs::MulticastObserver observer;
  observer.add(&report);
  std::unique_ptr<obs::JsonlObserver> jsonl;
  if (!jsonl_path.empty()) {
    jsonl = std::make_unique<obs::JsonlObserver>(jsonl_path);
    observer.add(jsonl.get());
  }

  core::RunOptions options;
  options.seed = seed;
  options.simulation_budget = sims;
  options.observer = &observer;
  options.warm_start = warm_start;

  std::printf("%s, %zu simulations each, shared initial set of %zu\n\n",
              problem->spec().name.c_str(), sims, initial.size());
  for (auto& opt : roster) opt->run(*eval_target, initial, fom, options);

  std::printf("%s\n", report.table().c_str());
  if (stack != nullptr) {
    const eval::EvalService& service = stack->service();
    const auto c = service.counters();
    std::printf("eval service: %llu requested, %llu hits, %llu misses, %llu coalesced, "
                "%llu simulations (cache: %zu entries%s%s)\n",
                static_cast<unsigned long long>(c.requested),
                static_cast<unsigned long long>(c.hits),
                static_cast<unsigned long long>(c.misses),
                static_cast<unsigned long long>(c.coalesced),
                static_cast<unsigned long long>(c.simulations), service.cache().size(),
                cache_dir.empty() ? ", memory-only" : ", journal in ", cache_dir.c_str());
  }
  if (jsonl != nullptr) std::printf("event stream: %s\n", jsonl->path().c_str());
  std::printf("Expected ordering (paper): MA-Opt <= MA-Opt2 < DNN-Opt < BO ~ Random.\n");
  return 0;
}
