// Compare the paper's five algorithms head-to-head on one circuit with a
// shared initial population, printing the best-FoM trajectory of each —
// a miniature of the Table II/IV/VI + Fig. 5 experiment.
//
//   ./examples/compare_optimizers [--circuit tia|ota] [--sims 60] [--seed 1]
#include <cmath>
#include <cstdio>
#include <memory>

#include "maopt.hpp"

int main(int argc, char** argv) {
  using namespace maopt;
  const CliArgs args(argc, argv);
  const auto sims = static_cast<std::size_t>(args.get_int("sims", 60));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  std::unique_ptr<ckt::SizingProblem> problem;
  if (args.get("circuit", "tia") == "ota")
    problem = std::make_unique<ckt::TwoStageOta>();
  else
    problem = std::make_unique<ckt::ThreeStageTia>();

  Rng rng(seed);
  auto initial = core::sample_initial_set(*problem, 40, rng);
  std::vector<linalg::Vec> rows;
  for (const auto& r : initial) rows.push_back(r.metrics);
  const auto fom = ckt::FomEvaluator::fit_reference(*problem, rows);

  std::vector<std::unique_ptr<core::Optimizer>> roster;
  roster.push_back(std::make_unique<core::RandomSearch>());
  roster.push_back(std::make_unique<gp::BoOptimizer>());
  roster.push_back(std::make_unique<core::MaOptimizer>(core::MaOptConfig::dnn_opt()));
  roster.push_back(std::make_unique<core::MaOptimizer>(core::MaOptConfig::ma_opt2()));
  roster.push_back(std::make_unique<core::MaOptimizer>(core::MaOptConfig::ma_opt()));

  std::printf("%s, %zu simulations each, shared initial set of %zu\n\n",
              problem->spec().name.c_str(), sims, initial.size());
  std::printf("%-10s %14s %14s %10s %10s\n", "Algorithm", "final FoM", "log10(FoM)", "feasible",
              "wall (s)");
  for (auto& opt : roster) {
    const core::RunHistory h = opt->run(*problem, initial, fom, seed, sims);
    const double final_fom = h.best_fom_after.back();
    std::printf("%-10s %14.5g %14.2f %10s %10.1f\n", opt->name().c_str(), final_fom,
                std::log10(std::max(final_fom, 1e-12)),
                h.best_feasible() ? "yes" : "no", h.wall_seconds);
  }
  std::printf("\nExpected ordering (paper): MA-Opt <= MA-Opt2 < DNN-Opt < BO ~ Random.\n");
  return 0;
}
