// Fault-tolerant optimization demo: MA-Opt driven over a simulator that
// throws, hangs, and returns NaN/garbage at a configurable rate — wrapped in
// the ResilientEvaluator (deadline + retries + scrubbing) and checkpointed so
// a killed run can resume without repeating simulations.
//
//   ./examples/fault_tolerance [--fault-rate 25] [--sims 40] [--seed 7]
//
// The demo runs the same budget twice: once uninterrupted, once resumed from
// the last mid-run checkpoint, and verifies both trajectories agree.
#include <cmath>
#include <cstdio>

#include "maopt.hpp"

int main(int argc, char** argv) {
  using namespace maopt;
  const CliArgs args(argc, argv);
  if (args.has("help")) {
    std::printf("usage: fault_tolerance [--fault-rate PCT] [--sims N] [--seed N]\n"
                "Runs MA-Opt over a faulty simulator, then resumes from a checkpoint\n"
                "and verifies the trajectories agree.\n");
    return 0;
  }
  const auto sims = static_cast<std::size_t>(args.get_int("sims", 40));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
  const double fault_rate = args.get_int("fault-rate", 25) / 100.0;

  // A clean analytic circuit, then a decorator stack that makes it nasty and
  // a second decorator that makes it safe again:
  //   ConstrainedQuadratic -> FaultInjectingProblem -> ResilientEvaluator
  ckt::ConstrainedQuadratic circuit(6);
  const ckt::FaultInjectingProblem faulty(
      circuit, ckt::FaultInjectionConfig::mixed(fault_rate, seed, /*hang_seconds=*/0.05));
  ckt::ResilientConfig rcfg;
  rcfg.deadline_seconds = 0.01;      // hangs become timeouts well before 50 ms
  rcfg.max_retries = 1;
  rcfg.max_metric_magnitude = 1e6;   // screens the injected ~1e12 garbage
  const ckt::ResilientEvaluator resilient(faulty, rcfg);

  Rng rng(seed);
  const auto initial = core::sample_initial_set(resilient, 30, rng);
  // Fit the FoM reference on clean rows only: failure sentinels would skew
  // f0_ref and silently rescale the FoM (making runs incomparable).
  std::vector<linalg::Vec> rows;
  for (const auto& r : initial)
    if (r.simulation_ok) rows.push_back(r.metrics);
  if (rows.empty())
    for (const auto& r : initial) rows.push_back(r.metrics);
  const auto fom = ckt::FomEvaluator::fit_reference(circuit, rows);

  core::MaOptConfig cfg = core::MaOptConfig::ma_opt();
  cfg.checkpoint_path = "/tmp/maopt_demo.ckpt";
  cfg.checkpoint_every = 7;

  std::printf("%s with %.0f%% injected faults (throw/hang/NaN/garbage), %zu simulations\n\n",
              circuit.spec().name.c_str(), fault_rate * 100, sims);

  core::MaOptimizer opt(cfg);
  const core::RunHistory h = opt.run(resilient, initial, fom, {.seed = seed, .simulation_budget = sims});

  std::printf("run:      best FoM %.5g  (log10 %.2f), %zu/%zu simulations failed%s\n",
              h.best_fom_after.back(), std::log10(std::max(h.best_fom_after.back(), 1e-12)),
              h.failures(), h.simulations_used(), h.aborted ? " [ABORTED]" : "");
  std::printf("injector: %llu faults injected\n",
              static_cast<unsigned long long>(faulty.injected()));
  std::printf("shield:   %s\n\n", resilient.stats().report().c_str());

  // Pretend the run above was killed: resume from its last mid-run snapshot.
  // Replayed iterations retrain from the recorded simulations, so the resumed
  // trajectory lands on exactly the same designs and best FoM.
  const core::RunCheckpoint snapshot = core::load_checkpoint(cfg.checkpoint_path);
  std::printf("resuming from checkpoint at %zu/%zu simulations...\n",
              snapshot.history.simulations_used(), sims);
  core::MaOptimizer resumed_opt(cfg);
  const core::RunHistory resumed = resumed_opt.resume(resilient, snapshot, fom, sims);
  const bool identical = resumed.records.size() == h.records.size() &&
                         resumed.best_fom_after.back() == h.best_fom_after.back();
  std::printf("resumed:  best FoM %.5g — trajectories %s\n", resumed.best_fom_after.back(),
              identical ? "identical" : "DIVERGED");
  return identical ? 0 : 1;
}
