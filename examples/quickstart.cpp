// Quickstart: size the two-stage OTA with MA-Opt in ~a minute.
//
//   ./examples/quickstart [--sims 60] [--init 40] [--seed 0]
//
// Flow: sample a random initial population, fit the FoM reference on it,
// run MA-Opt (3 actors, shared elite set, near-sampling), print the best
// feasible design and its measured performance.
#include <cstdio>

#include "maopt.hpp"

int main(int argc, char** argv) {
  using namespace maopt;
  const CliArgs args(argc, argv);
  if (args.has("help")) {
    std::printf("usage: quickstart [--sims N] [--init N] [--seed N]\n"
                "Sizes the two-stage OTA with MA-Opt and prints the best design.\n");
    return 0;
  }
  const auto sims = static_cast<std::size_t>(args.get_int("sims", 60));
  const auto n_init = static_cast<std::size_t>(args.get_int("init", 40));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 0));

  ckt::TwoStageOta problem;
  std::printf("Problem: %s — minimize %s (%s) subject to %zu constraints\n",
              problem.spec().name.c_str(), problem.spec().target_name.c_str(),
              problem.spec().target_unit.c_str(), problem.spec().constraints.size());

  // 1) Initial population (the paper simulates 100 random designs).
  Rng rng(seed);
  std::printf("Simulating %zu random initial designs...\n", n_init);
  auto initial = core::sample_initial_set(problem, n_init, rng);

  // 2) FoM (Eq. 2) referenced to the initial population's target scale.
  std::vector<linalg::Vec> rows;
  for (const auto& r : initial) rows.push_back(r.metrics);
  const auto fom = ckt::FomEvaluator::fit_reference(problem, rows);

  // 3) Optimize.
  core::MaOptimizer optimizer(core::MaOptConfig::ma_opt());
  std::printf("Running %s for %zu simulations...\n", optimizer.name().c_str(), sims);
  const core::RunHistory history = optimizer.run(problem, initial, fom, {.seed = seed, .simulation_budget = sims});

  // 4) Report.
  const core::SimRecord* best = history.best_feasible();
  if (best == nullptr) {
    std::printf("No fully feasible design found within the budget; best FoM = %.4g\n",
                history.best()->fom);
    best = history.best();
  } else {
    std::printf("\nFeasible design found! %s = %.4f %s\n", problem.spec().target_name.c_str(),
                best->metrics[0], problem.spec().target_unit.c_str());
  }

  std::printf("\nBest design parameters:\n");
  const auto names = problem.parameter_names();
  for (std::size_t i = 0; i < problem.dim(); ++i)
    std::printf("  %-4s = %10.4g\n", names[i].c_str(), best->x[i]);

  std::printf("\nMeasured performance:\n");
  std::printf("  %-16s = %10.4f %s (target)\n", problem.spec().target_name.c_str(),
              best->metrics[0], problem.spec().target_unit.c_str());
  for (std::size_t i = 0; i < problem.spec().constraints.size(); ++i) {
    const auto& c = problem.spec().constraints[i];
    const double v = best->metrics[i + 1];
    const bool ok = ckt::normalized_violation(c, v) == 0.0;
    std::printf("  %-16s = %10.4f %-8s (%s %g)  %s\n", c.name.c_str(), v, c.unit.c_str(),
                c.kind == ckt::ConstraintKind::GreaterEqual ? ">=" : "<=", c.bound,
                ok ? "PASS" : "FAIL");
  }
  std::printf("\nSpent %zu simulations, wall %.1f s (train %.1f s, sim %.1f s, NS %.2f s)\n",
              history.simulations_used(), history.wall_seconds, history.train_seconds,
              history.sim_seconds, history.ns_seconds);
  return 0;
}
