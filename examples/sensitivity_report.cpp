// Sensitivity report: which design knob moves which metric, at a given
// design point — printed for the two-stage OTA reference design.
//
//   ./examples/sensitivity_report [--rel-step 0.02]
#include <cstdio>

#include "maopt.hpp"

int main(int argc, char** argv) {
  using namespace maopt;
  const CliArgs args(argc, argv);
  if (args.has("help")) {
    std::printf("usage: sensitivity_report [--rel-step F]\n"
                "Prints the parameter-to-metric sensitivity table of the OTA.\n");
    return 0;
  }
  const double rel_step = args.get_double("rel-step", 0.02);

  ckt::TwoStageOta problem;
  const linalg::Vec x =
      problem.clip({1.0, 1.0, 1.0, 0.5, 0.5, 20, 10, 5, 40, 20, 2.0, 500, 1000, 4, 4, 4});

  std::printf("Probing %zu parameters x 2 simulations (central differences)...\n\n",
              problem.dim());
  const auto s = ckt::sensitivity_analysis(problem, x, rel_step);
  if (!s.ok) {
    std::fprintf(stderr, "a probe simulation failed\n");
    return 1;
  }
  std::fputs(ckt::format_sensitivity_table(problem, s).c_str(), stdout);

  std::printf("\nBase metrics at the probed design:\n");
  std::printf("  %-16s = %.4g %s\n", problem.spec().target_name.c_str(), s.base_metrics[0],
              problem.spec().target_unit.c_str());
  for (std::size_t i = 0; i < problem.spec().constraints.size(); ++i)
    std::printf("  %-16s = %.4g %s\n", problem.spec().constraints[i].name.c_str(),
                s.base_metrics[i + 1], problem.spec().constraints[i].unit.c_str());
  return 0;
}
