// maopt_run_deck — compile SPICE decks into optimization problems and run
// them, entirely from the command line.
//
// Check mode (CI's deck gate — compiles everything, runs nothing):
//
//   ./examples/maopt_run_deck --check decks/*.cir
//
// Each deck is elaborated and compiled against its spec file (the deck path
// with a .spec extension, or --spec for a single deck) and a one-paragraph
// summary is printed: parameter space, objective, constraints, warnings.
// Exit 1 if any deck fails to compile.
//
// Run mode (one deck, optimized through the daemon):
//
//   ./examples/maopt_run_deck decks/five_transistor_ota.cir \
//       [--spec PATH] [--algo MA-Opt] [--sims N] [--init N] [--seed N] \
//       [--threads N] [--work-dir DIR] [--jsonl PATH] [--run-jsonl PATH]
//
// The deck goes through serve::OptDaemon's deck submission path (the same
// one `maopt_shell` exposes as `submit ... deck=`), so the run exercises the
// full service stack: result cache keyed by the deck's content fingerprint,
// fair-share scheduler, checkpointable MA-family optimizers. --jsonl is the
// daemon-level job-event stream, --run-jsonl the per-run event stream; both
// validate with tools/check_telemetry.py.
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>

#include "maopt.hpp"

namespace {

using namespace maopt;

int check_decks(const CliArgs& args, const std::vector<std::string>& decks) {
  int failures = 0;
  for (const std::string& path : decks) {
    try {
      const deck::DeckProblem problem =
          deck::DeckProblem::from_files(path, args.get("spec", ""));
      const ckt::ProblemSpec& spec = problem.spec();
      std::printf("%s: ok (problem '%s')\n", path.c_str(), spec.name.c_str());
      const auto names = problem.parameter_names();
      for (std::size_t i = 0; i < problem.dim(); ++i)
        std::printf("  param %-10s in [%g, %g]%s\n", names[i].c_str(),
                    problem.lower_bounds()[i], problem.upper_bounds()[i],
                    problem.integer_mask()[i] ? " (integer)" : "");
      std::printf("  minimize %s [%s]\n", spec.target_name.c_str(), spec.target_unit.c_str());
      for (const auto& c : spec.constraints)
        std::printf("  s.t. %s %s %g %s\n", c.name.c_str(),
                    c.kind == ckt::ConstraintKind::GreaterEqual ? ">=" : "<=", c.bound,
                    c.unit.c_str());
      std::printf("  %zu measures, %zu analyses, fingerprint %016llx\n",
                  problem.deck().measures.size(), problem.deck().analyses.size(),
                  static_cast<unsigned long long>(problem.content_fingerprint()));
      for (const auto& warning : problem.deck().warnings)
        std::printf("  warning: %s\n", warning.c_str());
    } catch (const std::exception& e) {
      std::printf("%s: FAILED\n  %s\n", path.c_str(), e.what());
      ++failures;
    }
  }
  std::printf("%zu deck(s), %d failure(s)\n", decks.size(), failures);
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace maopt;
  const CliArgs args(argc, argv);
  // CliArgs consumes the token after a flag as its value, so the first deck
  // after `--check` lands in the flag map; pull it back into the deck list.
  std::vector<std::string> decks = args.positional();
  const std::string check_value = args.get("check", "");
  if (!check_value.empty() && check_value != "true") decks.insert(decks.begin(), check_value);
  if (args.has("help") || decks.empty()) {
    std::printf(
        "usage: maopt_run_deck --check <deck.cir> [more.cir ...] [--spec PATH]\n"
        "       maopt_run_deck <deck.cir> [--spec PATH] [--algo MA-Opt] [--sims N]\n"
        "                      [--init N] [--seed N] [--threads N] [--work-dir DIR]\n"
        "                      [--jsonl PATH] [--run-jsonl PATH]\n"
        "Compile SPICE decks (+ sibling .spec files) into sizing problems; with\n"
        "--check just validate them, otherwise optimize the deck via the daemon.\n");
    return args.has("help") ? 0 : 2;
  }

  if (args.has("check")) return check_decks(args, decks);

  const std::string deck_path = decks[0];

  std::unique_ptr<obs::JsonlObserver> job_events;
  const std::string jsonl_path = args.get("jsonl", "");
  if (!jsonl_path.empty()) job_events = std::make_unique<obs::JsonlObserver>(jsonl_path);

  serve::DaemonConfig config;
  config.work_dir = args.get("work-dir", "maopt_deck_run");
  config.num_threads = static_cast<std::size_t>(args.get_int("threads", 0));
  config.observer = job_events.get();
  serve::OptDaemon daemon(config);

  serve::JobSpec spec;
  spec.deck_path = deck_path;
  spec.spec_path = args.get("spec", "");
  spec.name = std::filesystem::path(deck_path).stem().string() + "-run";
  spec.algorithm = args.get("algo", "MA-Opt");
  spec.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  spec.simulation_budget = static_cast<std::size_t>(args.get_int("sims", 60));
  spec.initial_samples = static_cast<std::size_t>(args.get_int("init", 20));
  spec.jsonl_path = args.get("run-jsonl", "");

  try {
    daemon.submit(spec);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "submit failed: %s\n", e.what());
    return 1;
  }
  const serve::JobStatus status = daemon.wait(spec.name);

  std::printf("%s: %s after %llu sims — best %s %.6g%s\n", deck_path.c_str(),
              serve::to_string(status.state),
              static_cast<unsigned long long>(status.simulations),
              daemon.status(spec.name).spec.problem.c_str(), status.best_fom,
              status.feasible ? " (feasible)" : " (infeasible)");
  if (!status.error.empty()) std::printf("error: %s\n", status.error.c_str());
  return status.state == serve::JobState::Done ? 0 : 1;
}
