// Bring your own circuit: define a SizingProblem around a hand-built
// netlist and hand it to MA-Opt. The example sizes a two-transistor
// cascode-free common-source amplifier for maximum bandwidth under gain and
// power constraints — ~80 lines of user code end to end.
//
//   ./examples/custom_circuit [--sims 50] [--seed 2]
#include <cmath>
#include <cstdio>

#include "maopt.hpp"

namespace {

using namespace maopt;
using namespace maopt::spice;

/// Parameters: [W (um), L (um), Rload (kOhm), Vbias (V)].
class CsAmpProblem final : public ckt::SizingProblem {
 public:
  CsAmpProblem() {
    spec_.name = "custom_cs_amp";
    spec_.target_name = "neg_bandwidth";  // maximize bandwidth = minimize -BW
    spec_.target_unit = "-MHz";
    spec_.target_weight = 0.01;
    spec_.constraints = {
        {"gain", "dB", ckt::ConstraintKind::GreaterEqual, 20.0, 1.0},
        {"power", "mW", ckt::ConstraintKind::LessEqual, 1.0, 1.0},
    };
    lower_ = {0.22, 0.18, 0.5, 0.5};
    upper_ = {150.0, 2.0, 50.0, 1.2};
    integer_.assign(4, false);
  }

  const ckt::ProblemSpec& spec() const override { return spec_; }
  std::size_t dim() const override { return 4; }
  const linalg::Vec& lower_bounds() const override { return lower_; }
  const linalg::Vec& upper_bounds() const override { return upper_; }
  const std::vector<bool>& integer_mask() const override { return integer_; }
  std::vector<std::string> parameter_names() const override { return {"W", "L", "R", "Vb"}; }

  ckt::EvalResult evaluate(const linalg::Vec& x) const override {
    ckt::EvalResult result;
    result.metrics = failure_metrics();
    result.simulation_ok = false;
    try {
      Netlist n;
      const int vdd = n.node("vdd");
      const int in = n.node("in");
      const int out = n.node("out");
      auto* vs = n.add<VSource>(vdd, kGround, Waveform::dc(1.8));
      n.add<VSource>(in, kGround, Waveform::dc(x[3]), /*ac_mag=*/1.0);
      n.add<Resistor>(vdd, out, x[2] * 1e3);
      n.add<Mosfet>(out, in, kGround, kGround, MosModel::nmos_180(), x[0] * 1e-6, x[1] * 1e-6);
      n.add<Capacitor>(out, kGround, 200e-15);  // fixed load

      DcAnalysis dc;
      const DcResult op = dc.solve(n);
      if (!op.converged) return result;

      AcAnalysis ac;
      const AcSweep sweep = ac.run(n, op.x, log_frequency_grid(1e3, 100e9, 10));
      const double gain_db = dc_gain_db(sweep, out);
      const double bw_mhz = bandwidth_3db(sweep, out).value_or(1e3) * 1e-6;
      const double power_mw = std::abs(vs->branch_current(op.x)) * 1.8 * 1e3;

      result.metrics = {-bw_mhz, gain_db, power_mw};
      result.simulation_ok = true;
    } catch (const std::exception&) {
    }
    return result;
  }

 private:
  ckt::ProblemSpec spec_;
  linalg::Vec lower_, upper_;
  std::vector<bool> integer_;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace maopt;
  const CliArgs args(argc, argv);
  if (args.has("help")) {
    std::printf("usage: custom_circuit [--sims N] [--seed N]\n"
                "Optimizes the hand-rolled common-source amplifier problem.\n");
    return 0;
  }
  const auto sims = static_cast<std::size_t>(args.get_int("sims", 50));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 2));

  CsAmpProblem problem;
  Rng rng(seed);
  auto initial = core::sample_initial_set(problem, 30, rng);
  std::vector<linalg::Vec> rows;
  for (const auto& r : initial) rows.push_back(r.metrics);
  const auto fom = ckt::FomEvaluator::fit_reference(problem, rows);

  core::MaOptimizer optimizer(core::MaOptConfig::ma_opt());
  const auto history = optimizer.run(problem, initial, fom, {.seed = seed, .simulation_budget = sims});

  const core::SimRecord* best = history.best_feasible();
  if (!best) best = history.best();
  std::printf("Best common-source design after %zu simulations:\n", history.simulations_used());
  std::printf("  W = %.2f um, L = %.3f um, R = %.2f kOhm, Vb = %.3f V\n", best->x[0], best->x[1],
              best->x[2], best->x[3]);
  std::printf("  bandwidth = %.1f MHz, gain = %.1f dB, power = %.3f mW, feasible = %s\n",
              -best->metrics[0], best->metrics[1], best->metrics[2],
              best->feasible ? "yes" : "no");
  return 0;
}
