// Yield analysis (extension beyond the paper): optimize the OTA nominally
// with MA-Opt, then Monte-Carlo the winning design under device mismatch to
// see how much margin the nominal optimum really has.
//
//   ./examples/yield_analysis [--sims 60] [--mc 25] [--sigma_vth 0.01]
//                             [--sigma_kp 0.03] [--seed 0]
#include <cstdio>

#include "maopt.hpp"

int main(int argc, char** argv) {
  using namespace maopt;
  const CliArgs args(argc, argv);
  const auto sims = static_cast<std::size_t>(args.get_int("sims", 60));
  const int mc = static_cast<int>(args.get_int("mc", 25));
  const double sigma_vth = args.get_double("sigma_vth", 0.01);
  const double sigma_kp = args.get_double("sigma_kp", 0.03);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 0));

  ckt::TwoStageOta problem;
  Rng rng(seed);
  auto initial = core::sample_initial_set(problem, 40, rng);
  std::vector<linalg::Vec> rows;
  for (const auto& r : initial) rows.push_back(r.metrics);
  const auto fom = ckt::FomEvaluator::fit_reference(problem, rows);

  core::MaOptimizer optimizer(core::MaOptConfig::ma_opt());
  std::printf("Optimizing nominally (%zu simulations)...\n", sims);
  const auto history = optimizer.run(problem, initial, fom, seed, sims);
  const core::SimRecord* best = history.best_feasible();
  if (!best) best = history.best();
  std::printf("Nominal design: fom=%.4g, feasible=%s, power=%.4g mW\n", best->fom,
              best->feasible ? "yes" : "no", best->metrics[0]);

  std::printf("\nMonte Carlo mismatch: %d instances, sigma_vth=%.0f mV, sigma_kp=%.0f%%\n", mc,
              sigma_vth * 1e3, sigma_kp * 1e2);
  const ckt::YieldResult y = ckt::estimate_yield(problem, best->x, mc, sigma_vth, sigma_kp);
  std::printf("Yield: %d/%d = %.0f%% (%d simulation failures)\n", y.feasible, y.total,
              y.yield() * 100.0, y.simulation_failures);

  // Per-constraint pass rates across the Monte Carlo set.
  const auto& cs = problem.spec().constraints;
  std::printf("\nPer-constraint pass rates under mismatch:\n");
  for (std::size_t c = 0; c < cs.size(); ++c) {
    int pass = 0;
    for (const auto& m : y.metric_samples)
      if (ckt::normalized_violation(cs[c], m[c + 1]) == 0.0) ++pass;
    std::printf("  %-16s %3d/%d\n", cs[c].name.c_str(), pass, y.total);
  }
  // Corner sweep: the five classic process corners.
  std::printf("\nProcess corners (vth +/- 30 mV, KP +/- 10%%):\n");
  const auto corners = ckt::evaluate_corners(problem, best->x);
  const ckt::ProcessCorner ids[] = {ckt::ProcessCorner::TT, ckt::ProcessCorner::FF,
                                    ckt::ProcessCorner::SS, ckt::ProcessCorner::FS,
                                    ckt::ProcessCorner::SF};
  for (std::size_t k = 0; k < corners.size(); ++k) {
    const bool ok = corners[k].simulation_ok && problem.feasible(corners[k].metrics);
    std::printf("  %s: power=%.4g mW, feasible=%s\n", ckt::corner_name(ids[k]),
                corners[k].metrics[0], ok ? "yes" : "no");
  }

  std::printf("\nA design optimized only at nominal sits close to its constraint\n"
              "boundaries; yield and corners quantify the robustness cost of that choice.\n");
  return 0;
}
