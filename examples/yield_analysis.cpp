// Robust & yield workloads (extension beyond the paper): optimize the OTA
// across the five classic process corners with MA-Opt — every evaluation the
// optimizer sees is a fault-tolerant batched corner sweep — then Monte-Carlo
// the winning design under device mismatch and report the yield quantile.
//
// The whole stack is the production robustness pipeline:
//
//   TwoStageOta  <-  FaultInjectingProblem  <-  EvalService  <-  RobustProblem
//                    (optional, --fault-rate)   (batched fan-out)  / YieldProblem
//
// Partial simulation failures degrade per the chosen policy instead of
// poisoning the run, and --jsonl streams the corner-tagged sweep telemetry
// (validate with tools/check_telemetry.py <file> --min-sweeps N).
//
//   ./examples/yield_analysis [--sims 40] [--init 30] [--mc 64]
//                             [--sigma-vth 0.01] [--sigma-kp 0.03]
//                             [--yield-target 0.9] [--fault-rate 0]
//                             [--policy penalize-failed] [--threads 4]
//                             [--jsonl PATH] [--seed 0]
//
// (Flag spellings are canonicalized by CliArgs: --sigma_vth == --sigma-vth.)
//
// Budgets count sweep evaluations: one --sims unit is 5 corner simulations,
// and the Monte Carlo step adds --mc instance simulations.
#include <cstdio>
#include <memory>
#include <string>

#include "maopt.hpp"

namespace {

bool parse_policy(const std::string& name, maopt::ckt::SweepFailurePolicy* out) {
  using maopt::ckt::SweepFailurePolicy;
  if (name == "fail-fast") {
    *out = SweepFailurePolicy::FailFast;
  } else if (name == "penalize-failed") {
    *out = SweepFailurePolicy::PenalizeFailedVariant;
  } else if (name == "conservative-bound") {
    *out = SweepFailurePolicy::ConservativeBound;
  } else {
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace maopt;
  const CliArgs args(argc, argv);
  if (args.has("help")) {
    std::printf(
        "usage: yield_analysis [--sims N] [--init N] [--mc N] [--sigma-vth V]\n"
        "                      [--sigma-kp F] [--yield-target F] [--fault-rate F]\n"
        "                      [--policy fail-fast|penalize-failed|conservative-bound]\n"
        "                      [--threads N] [--jsonl PATH] [--seed N]\n"
        "Corner-robust MA-Opt run plus Monte-Carlo mismatch yield on the winner.\n");
    return 0;
  }
  const auto sims = static_cast<std::size_t>(args.get_int("sims", 40));
  const auto init = static_cast<std::size_t>(args.get_int("init", 30));
  const int mc = static_cast<int>(args.get_int("mc", 64));
  const double sigma_vth = args.get_double("sigma-vth", 0.01);
  const double sigma_kp = args.get_double("sigma-kp", 0.03);
  const double yield_target = args.get_double("yield-target", 0.9);
  const double fault_rate = args.get_double("fault-rate", 0.0);
  const auto threads = static_cast<std::size_t>(args.get_int("threads", 4));
  const std::string jsonl = args.get("jsonl", "");
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 0));

  ckt::SweepFailurePolicy failure_policy;
  if (!parse_policy(args.get("policy", "penalize-failed"), &failure_policy)) {
    std::fprintf(stderr, "unknown --policy (use fail-fast | penalize-failed | "
                         "conservative-bound)\n");
    return 2;
  }

  // The stack: real OTA, seeded fault injection, batched evaluation service —
  // assembled from one validated ServiceConfig instead of per-layer structs.
  ckt::TwoStageOta ota;
  const ckt::FaultInjectingProblem faulty(
      ota, ckt::FaultInjectionConfig::mixed(fault_rate, seed + 0xFA));
  const auto service_config = serve::ServiceConfig::builder()
                                  .threads(threads)
                                  .failure_policy(failure_policy)
                                  .yield_target(yield_target)
                                  .build();
  const serve::ServiceStack stack(faulty, service_config);
  const eval::EvalService& service = stack.service();

  ckt::RobustConfig robust_config;
  robust_config.policy = service_config.sweep;
  ckt::RobustProblem robust(service, robust_config);

  std::unique_ptr<obs::JsonlObserver> sink;
  if (!jsonl.empty()) {
    sink = std::make_unique<obs::JsonlObserver>(jsonl);
    robust.set_observer(sink.get());
  }

  std::printf("Robust optimization: %zu sweep evaluations x %zu corners, "
              "policy %s, fault rate %.0f%%, %zu worker threads%s\n",
              sims, robust.num_corners(), ckt::to_string(failure_policy), fault_rate * 100.0,
              threads, robust.batched() ? " (batched)" : "");

  Rng rng(seed);
  auto initial = core::sample_initial_set(robust, init, rng);
  std::vector<linalg::Vec> rows;
  for (const auto& r : initial) rows.push_back(r.metrics);
  const auto fom = ckt::FomEvaluator::fit_reference(robust, rows);

  core::MaOptimizer optimizer(core::MaOptConfig::ma_opt());
  const auto history = optimizer.run(robust, initial, fom, {.seed = seed, .simulation_budget = sims});
  const core::SimRecord* best = history.best_feasible();
  if (best == nullptr) best = history.best();
  std::printf("Best across corners: fom=%.4g, feasible=%s, worst-corner power=%.4g mW\n",
              best->fom, best->feasible ? "yes" : "no", best->metrics[0]);
  std::printf("  sweep engine: %s\n", robust.stats().report().c_str());
  if (fault_rate > 0.0)
    std::printf("  injected faults so far: %llu\n",
                static_cast<unsigned long long>(faulty.injected()));

  // Monte Carlo mismatch on the winner: one YieldProblem evaluation fans the
  // seeded instances through the same batched service and aggregates the
  // empirical yield quantile.
  ckt::YieldConfig yield_config;
  yield_config.mismatch.instances = mc;
  yield_config.mismatch.sigma_vth = sigma_vth;
  yield_config.mismatch.sigma_kp_rel = sigma_kp;
  yield_config.policy = service_config.sweep;  // failure policy + yield target
  ckt::YieldProblem yield(service, yield_config);
  if (sink) yield.set_observer(sink.get());

  std::printf("\nMonte Carlo mismatch: %d instances, sigma_vth=%.0f mV, sigma_kp=%.0f%%, "
              "target fraction %.0f%%\n",
              mc, sigma_vth * 1e3, sigma_kp * 1e2, yield_target * 100.0);
  const ckt::EvalResult agg = yield.evaluate(best->x);
  if (!agg.simulation_ok) {
    std::printf("Yield sweep failed outright (%u/%u instances lost) — "
                "per the %s policy.\n",
                agg.variants_failed, agg.variants_total, ckt::to_string(failure_policy));
  } else {
    std::printf("Yield quantile%s: power=%.4g mW, feasible at target fraction: %s "
                "(%u/%u instances failed)\n",
                agg.degraded ? " (degraded)" : "", agg.metrics[0],
                yield.feasible(agg.metrics) ? "yes" : "no", agg.variants_failed,
                agg.variants_total);
    const auto& cs = ota.spec().constraints;
    std::printf("Per-constraint quantile values (met by >= %.0f%% of instances?):\n",
                yield_target * 100.0);
    for (std::size_t c = 0; c < cs.size(); ++c) {
      const double v = agg.metrics[c + 1];
      std::printf("  %-16s %10.4g  %s\n", cs[c].name.c_str(), v,
                  ckt::normalized_violation(cs[c], v) == 0.0 ? "yes" : "no");
    }
  }
  std::printf("  sweep engine: %s\n", yield.stats().report().c_str());

  const auto counters = service.counters();
  std::printf("\nEvaluation service: %llu requested, %llu cache hits, %llu simulated\n",
              static_cast<unsigned long long>(counters.requested),
              static_cast<unsigned long long>(counters.hits),
              static_cast<unsigned long long>(counters.misses));
  if (sink) std::printf("Sweep telemetry written to %s\n", sink->path().c_str());

  std::printf("\nOptimizing across corners buys robustness the nominal optimum lacks;\n"
              "the yield quantile then prices the residual mismatch risk — and both\n"
              "survive injected simulator faults by degrading per policy.\n");
  return 0;
}
