// RunObserver — the sink interface of the run-telemetry layer — plus the
// pieces optimizers use to feed it: RunTelemetry (a null-safe emitting
// facade holding the run's counters), SpanCollector (thread-safe per-phase
// span accumulation, actor threads reporting into per-actor lanes) and
// ScopedSpan (RAII wall-clock timer over a phase).
//
// Threading contract: observer callbacks are invoked only on the run's
// driving thread, in event order, so observer implementations need no
// locking of their own. Actor worker threads never call an observer; they
// report spans into the SpanCollector, which the driving thread drains into
// the iteration event.
#pragma once

#include <vector>

#include "common/log.hpp"
#include "common/thread_annotations.hpp"
#include "obs/events.hpp"

namespace maopt::obs {

/// Telemetry sink. Default implementations are no-ops so observers override
/// only the events they care about. Built-ins: JsonlObserver (jsonl_writer
/// .hpp), RunReport (run_report.hpp), MulticastObserver (below).
class RunObserver {
 public:
  RunObserver() = default;
  RunObserver(const RunObserver&) = default;
  RunObserver& operator=(const RunObserver&) = default;
  RunObserver(RunObserver&&) = default;
  RunObserver& operator=(RunObserver&&) = default;
  virtual ~RunObserver() = default;

  virtual void on_run_started(const RunStarted& /*event*/) {}
  virtual void on_simulation_completed(const SimulationCompleted& /*event*/) {}
  virtual void on_iteration_completed(const IterationCompleted& /*event*/) {}
  virtual void on_checkpoint_written(const CheckpointWritten& /*event*/) {}
  virtual void on_run_finished(const RunFinished& /*event*/) {}

  /// Sweep brackets (circuits/variation_sweep.hpp). Unlike the run events
  /// above, these may arrive from whichever thread evaluated the sweep — the
  /// engine serializes whole brackets under its own mutex, so brackets never
  /// interleave, but a sink shared with a concurrent driver must be
  /// thread-safe (JsonlObserver and MulticastObserver are).
  virtual void on_sweep_started(const SweepStarted& /*event*/) {}
  virtual void on_sweep_variant_evaluated(const SweepVariantEvaluated& /*event*/) {}
  virtual void on_sweep_completed(const SweepCompleted& /*event*/) {}

  /// Daemon job lifecycle (serve::OptDaemon). Arrive from daemon control
  /// threads — concurrent jobs interleave, so shared sinks must be
  /// thread-safe (JsonlObserver and MulticastObserver are).
  virtual void on_job_submitted(const JobSubmitted& /*event*/) {}
  virtual void on_job_state_changed(const JobStateChanged& /*event*/) {}
  virtual void on_job_finished(const JobFinished& /*event*/) {}
};

/// Fans every event out to a list of sinks (e.g. JSONL file + in-memory
/// report in one run). Sinks are not owned and must outlive this object.
/// The sink list is mutex-guarded so add() is safe concurrent with dispatch
/// — several runs on different threads can share one multicast fan-out (the
/// multi-tenant daemon shape); the *sinks* they fan to must then be
/// thread-safe themselves (JsonlObserver is; RunReport is per-run).
class MulticastObserver final : public RunObserver {
 public:
  MulticastObserver() = default;
  explicit MulticastObserver(std::vector<RunObserver*> sinks) : sinks_(std::move(sinks)) {}

  void add(RunObserver* sink) {
    const MutexLock lock(mutex_);
    sinks_.push_back(sink);
  }

  void on_run_started(const RunStarted& event) override;
  void on_simulation_completed(const SimulationCompleted& event) override;
  void on_iteration_completed(const IterationCompleted& event) override;
  void on_checkpoint_written(const CheckpointWritten& event) override;
  void on_run_finished(const RunFinished& event) override;
  void on_sweep_started(const SweepStarted& event) override;
  void on_sweep_variant_evaluated(const SweepVariantEvaluated& event) override;
  void on_sweep_completed(const SweepCompleted& event) override;
  void on_job_submitted(const JobSubmitted& event) override;
  void on_job_state_changed(const JobStateChanged& event) override;
  void on_job_finished(const JobFinished& event) override;

 private:
  mutable Mutex mutex_;
  std::vector<RunObserver*> sinks_ MAOPT_GUARDED_BY(mutex_);
};

/// Per-run emitting facade held by every optimizer loop. With no observer
/// attached every emit collapses to one branch on a null pointer — the
/// telemetry layer costs nothing when unused (<1% on bench_train, see
/// EXPERIMENTS.md). Also owns the run's monotonic counters, which the
/// Optimizer base class folds into RunFinished.
class RunTelemetry {
 public:
  explicit RunTelemetry(RunObserver* observer = nullptr) : observer_(observer) {}

  bool enabled() const { return observer_ != nullptr; }
  RunCounters& counters() { return counters_; }
  const RunCounters& counters() const { return counters_; }

  void emit(const RunStarted& event) {
    if (observer_ != nullptr) observer_->on_run_started(event);
  }
  void emit(const SimulationCompleted& event) {
    if (observer_ != nullptr) observer_->on_simulation_completed(event);
  }
  void emit(const IterationCompleted& event) {
    if (observer_ != nullptr) observer_->on_iteration_completed(event);
  }
  void emit(const CheckpointWritten& event) {
    if (observer_ != nullptr) observer_->on_checkpoint_written(event);
  }
  void emit(const RunFinished& event) {
    if (observer_ != nullptr) observer_->on_run_finished(event);
  }
  void emit(const SweepStarted& event) {
    if (observer_ != nullptr) observer_->on_sweep_started(event);
  }
  void emit(const SweepVariantEvaluated& event) {
    if (observer_ != nullptr) observer_->on_sweep_variant_evaluated(event);
  }
  void emit(const SweepCompleted& event) {
    if (observer_ != nullptr) observer_->on_sweep_completed(event);
  }

 private:
  RunObserver* observer_;
  RunCounters counters_;
};

/// Accumulates the spans of one optimizer iteration. add() is thread-safe so
/// concurrent actor workers report into their own lanes; take() drains on
/// the driving thread at the iteration boundary. A disabled collector (no
/// observer attached) makes add() a no-op so call sites skip clock reads.
class SpanCollector {
 public:
  explicit SpanCollector(bool enabled) : enabled_(enabled) {}

  bool enabled() const { return enabled_; }

  void add(Phase phase, int lane, double seconds) {
    if (!enabled_) return;
    const MutexLock lock(mutex_);
    spans_.push_back({phase, lane, seconds});
  }

  /// Drains the collected spans (ready for the next iteration).
  std::vector<PhaseSpan> take() {
    const MutexLock lock(mutex_);
    std::vector<PhaseSpan> out;
    out.swap(spans_);
    return out;
  }

 private:
  bool enabled_;
  Mutex mutex_;
  std::vector<PhaseSpan> spans_ MAOPT_GUARDED_BY(mutex_);
};

/// RAII wall-clock span: records [construction, stop-or-destruction) into
/// `collector` under (phase, lane). Safe to use unconditionally — when the
/// collector is disabled both the clock reads and the record are skipped.
class ScopedSpan {
 public:
  ScopedSpan(SpanCollector& collector, Phase phase, int lane = -1)
      : collector_(&collector), phase_(phase), lane_(lane), armed_(collector.enabled()) {}
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ScopedSpan(ScopedSpan&&) = delete;
  ScopedSpan& operator=(ScopedSpan&&) = delete;
  ~ScopedSpan() { stop(); }

  /// Ends the span now (idempotent).
  void stop() {
    if (!armed_) return;
    armed_ = false;
    collector_->add(phase_, lane_, clock_.elapsed_seconds());
  }

 private:
  SpanCollector* collector_;
  Phase phase_;
  int lane_;
  bool armed_;
  Stopwatch clock_;
};

}  // namespace maopt::obs
