// In-memory telemetry aggregator: one Row per observed run, accumulating
// per-phase seconds (summed over lanes) and the run counters, and rendering
// the EXPERIMENTS.md-style summary table the bench harnesses print. Attach
// one RunReport across several sequential runs (e.g. a whole optimizer
// roster) to get one table row per run.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "obs/observer.hpp"

namespace maopt::obs {

class RunReport final : public RunObserver {
 public:
  struct Row {
    std::string algorithm;
    std::string problem;
    std::uint64_t seed = 0;
    std::uint64_t budget = 0;
    std::uint64_t simulations = 0;
    std::uint64_t iterations = 0;
    double best_fom = 0.0;
    bool feasible = false;
    bool aborted = false;
    double wall_seconds = 0.0;
    /// Wall-clock seconds per Phase, indexed by static_cast<size_t>(Phase),
    /// summed over lanes (so parallel actor lanes add up; on one core this
    /// equals elapsed time, on N cores it is the aggregate lane time).
    std::array<double, kNumPhases> phase_seconds{};
    RunCounters counters;
    /// Sweep tallies (corner / Monte Carlo brackets observed on this row);
    /// all zero for runs that never routed through a sweep engine.
    std::uint64_t sweeps = 0;
    std::uint64_t sweep_variants_ok = 0;
    std::uint64_t sweep_variants_failed = 0;
    std::uint64_t sweep_variants_skipped = 0;
    std::uint64_t sweeps_degraded = 0;
    bool finished = false;  ///< run_finished arrived (row is complete)

    double phase(Phase p) const { return phase_seconds[static_cast<std::size_t>(p)]; }
  };

  const std::vector<Row>& rows() const { return rows_; }

  /// Renders the summary table (one line per run); empty string when no runs
  /// were observed.
  std::string table() const;

  void on_run_started(const RunStarted& event) override;
  void on_iteration_completed(const IterationCompleted& event) override;
  void on_run_finished(const RunFinished& event) override;
  void on_sweep_completed(const SweepCompleted& event) override;

 private:
  std::vector<Row> rows_;
};

}  // namespace maopt::obs
