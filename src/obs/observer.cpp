#include "obs/observer.hpp"

namespace maopt::obs {

const char* to_string(Phase phase) {
  switch (phase) {
    case Phase::CriticTrain: return "critic-train";
    case Phase::ActorTrain: return "actor-train";
    case Phase::Simulate: return "simulate";
    case Phase::NearSample: return "near-sample";
    case Phase::EliteUpdate: return "elite-update";
  }
  return "unknown";
}

// Dispatch holds the sink-list lock for the duration of the fan-out: sinks
// are leaves of the lock hierarchy (JsonlObserver's io_mutex_ is acquired
// below this), and events on one multicast stay serialized even when several
// runs share the observer.

void MulticastObserver::on_run_started(const RunStarted& event) {
  const MutexLock lock(mutex_);
  for (RunObserver* sink : sinks_) sink->on_run_started(event);
}

void MulticastObserver::on_simulation_completed(const SimulationCompleted& event) {
  const MutexLock lock(mutex_);
  for (RunObserver* sink : sinks_) sink->on_simulation_completed(event);
}

void MulticastObserver::on_iteration_completed(const IterationCompleted& event) {
  const MutexLock lock(mutex_);
  for (RunObserver* sink : sinks_) sink->on_iteration_completed(event);
}

void MulticastObserver::on_checkpoint_written(const CheckpointWritten& event) {
  const MutexLock lock(mutex_);
  for (RunObserver* sink : sinks_) sink->on_checkpoint_written(event);
}

void MulticastObserver::on_run_finished(const RunFinished& event) {
  const MutexLock lock(mutex_);
  for (RunObserver* sink : sinks_) sink->on_run_finished(event);
}

void MulticastObserver::on_sweep_started(const SweepStarted& event) {
  const MutexLock lock(mutex_);
  for (RunObserver* sink : sinks_) sink->on_sweep_started(event);
}

void MulticastObserver::on_sweep_variant_evaluated(const SweepVariantEvaluated& event) {
  const MutexLock lock(mutex_);
  for (RunObserver* sink : sinks_) sink->on_sweep_variant_evaluated(event);
}

void MulticastObserver::on_sweep_completed(const SweepCompleted& event) {
  const MutexLock lock(mutex_);
  for (RunObserver* sink : sinks_) sink->on_sweep_completed(event);
}

void MulticastObserver::on_job_submitted(const JobSubmitted& event) {
  const MutexLock lock(mutex_);
  for (RunObserver* sink : sinks_) sink->on_job_submitted(event);
}

void MulticastObserver::on_job_state_changed(const JobStateChanged& event) {
  const MutexLock lock(mutex_);
  for (RunObserver* sink : sinks_) sink->on_job_state_changed(event);
}

void MulticastObserver::on_job_finished(const JobFinished& event) {
  const MutexLock lock(mutex_);
  for (RunObserver* sink : sinks_) sink->on_job_finished(event);
}

}  // namespace maopt::obs
