// Typed run-telemetry events (PR 4). Every optimizer run driven through
// core::Optimizer::run emits these through a RunObserver: one RunStarted,
// per-iteration IterationCompleted (with per-phase wall-clock spans, actor
// threads reporting into per-actor lanes), one SimulationCompleted per
// budgeted simulation, CheckpointWritten when a snapshot lands on disk, and
// one RunFinished carrying the monotonic counters. The payloads are plain
// data on purpose: observers (JSONL writer, RunReport, user sinks) need no
// knowledge of the optimizer internals, and the events mirror exactly the
// quantities the paper's Section V runtime analysis is built from.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace maopt::obs {

/// The phases of one optimizer iteration (Section III-C cost model). For
/// non-MA optimizers the mapping is: surrogate/GP fitting reports as
/// CriticTrain, candidate selection as ActorTrain, evaluation as Simulate.
enum class Phase : std::uint8_t {
  CriticTrain = 0,  ///< critic / surrogate training (main lane)
  ActorTrain = 1,   ///< per-actor DNN training + candidate selection
  Simulate = 2,     ///< SizingProblem::evaluate
  NearSample = 3,   ///< Algorithm 3 near-sampling scan
  EliteUpdate = 4,  ///< elite-set insertion / bookkeeping
};
inline constexpr std::size_t kNumPhases = 5;

const char* to_string(Phase phase);

/// One timed region. `lane` identifies the reporting thread's role: actor
/// worker i reports into lane i; -1 is the run's driving thread.
struct PhaseSpan {
  Phase phase = Phase::Simulate;
  int lane = -1;
  double seconds = 0.0;
};

/// Monotonic per-run counters, delivered with RunFinished. `simulations` /
/// `failures` cover post-initial simulations only (the budgeted ones).
struct RunCounters {
  std::uint64_t simulations = 0;
  std::uint64_t failures = 0;
  std::uint64_t retries = 0;  ///< ResilientEvaluator retry attempts consumed
  std::uint64_t iterations = 0;
  std::uint64_t ns_iterations = 0;  ///< iterations spent in near-sampling
  std::uint64_t checkpoints = 0;
  std::uint64_t checkpoint_bytes = 0;
  /// Evaluation-service cache totals (eval::EvalService); all zero when the
  /// run is not routed through a service. Invariants:
  ///   cache_hits + cache_misses == simulations (every budgeted request is
  ///   one or the other), cache_coalesced <= cache_misses.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_coalesced = 0;
};

struct RunStarted {
  std::string algorithm;
  std::string problem;
  std::uint64_t seed = 0;
  std::uint64_t simulation_budget = 0;
  std::uint64_t num_initial = 0;
  std::uint64_t dim = 0;
};

/// One budgeted simulation finished (annotated and appended to the history).
struct SimulationCompleted {
  std::uint64_t index = 0;      ///< 0-based post-initial simulation index
  std::uint64_t iteration = 0;  ///< 1-based optimizer iteration it belongs to
  int lane = -1;                ///< actor lane that proposed it; -1 otherwise
  bool ok = false;              ///< SimRecord::simulation_ok after scrubbing
  bool feasible = false;
  double fom = 0.0;          ///< annotated FoM (penalty FoM when !ok)
  double seconds = 0.0;      ///< wall-clock spent inside evaluate
  std::uint32_t retries = 0; ///< ResilientEvaluator retries for this call
  std::string failure_kind;  ///< ckt::to_string(FailureKind); empty when ok
                             ///< or the problem reports no failure detail
  bool cache_hit = false;    ///< served from the eval-service result cache
  bool coalesced = false;    ///< shared a concurrent request's simulation
};

struct IterationCompleted {
  std::uint64_t iteration = 0;  ///< 1-based
  std::uint64_t simulations_done = 0;
  double best_fom = 0.0;  ///< running best (trajectory semantics)
  bool feasible_found = false;
  bool near_sampling = false;  ///< iteration ran Algorithm 3 instead of 1
  double wall_seconds = 0.0;   ///< this iteration's wall clock
  std::vector<PhaseSpan> spans;
};

struct CheckpointWritten {
  std::string path;
  std::uint64_t iteration = 0;
  std::uint64_t simulations_done = 0;
  std::uint64_t bytes = 0;
};

/// One corner / Monte Carlo sweep opening (circuits/variation_sweep.hpp).
/// Sweep events are bracketed: every SweepStarted is followed by exactly
/// `variants` SweepVariantEvaluated events and one SweepCompleted with the
/// same sweep_id, with no events of another sweep interleaved (the engine
/// buffers and emits the whole bracket atomically at sweep end, so the
/// guarantee holds even when sweeps for different designs run concurrently).
struct SweepStarted {
  std::uint64_t sweep_id = 0;  ///< unique per engine instance, monotonic
  std::string kind;            ///< "corners" or "monte-carlo"
  std::string aggregation;     ///< to_string(RobustAggregation)
  std::uint64_t variants = 0;  ///< sweep width (corners or MC instances)
};

/// One variant of a sweep finished (or was short-circuited). Exactly one of
/// {ok, failed, skipped} holds per variant: ok = usable metrics, skipped =
/// a tripped circuit breaker suppressed the simulation, otherwise failed.
struct SweepVariantEvaluated {
  std::uint64_t sweep_id = 0;
  std::uint64_t variant = 0;  ///< 0-based index within the sweep
  std::string label;          ///< corner name ("ss") or MC tag ("mc17")
  bool ok = false;
  bool skipped = false;   ///< breaker open: no simulation was attempted
  double fom0 = 0.0;      ///< metrics[0] of the variant (0 when not ok)
  double seconds = 0.0;   ///< wall-clock of this variant's evaluation
};

/// Sweep closing bracket: tallies plus the failure-policy provenance that
/// also lands in the aggregate EvalResult.
struct SweepCompleted {
  std::uint64_t sweep_id = 0;
  std::uint64_t variants_ok = 0;
  std::uint64_t variants_failed = 0;
  std::uint64_t variants_skipped = 0;
  bool degraded = false;  ///< a partial-failure policy shaped the aggregate
  std::string policy;     ///< to_string(SweepFailurePolicy) in force
  double seconds = 0.0;   ///< wall-clock of the whole sweep
};

struct RunFinished {
  std::string algorithm;
  std::uint64_t simulations = 0;  ///< post-initial simulations performed
  double best_fom = 0.0;          ///< final trajectory value (NaN if none)
  bool feasible = false;          ///< a spec-meeting design was found
  bool aborted = false;
  std::string abort_reason;
  double wall_seconds = 0.0;
  RunCounters counters;
};

/// Daemon job lifecycle (serve::OptDaemon). Unlike run brackets, job
/// brackets of different jobs MAY interleave in one stream — jobs are
/// concurrent by design; `job_id` is the correlation key. Each job emits one
/// JobSubmitted, a chain of JobStateChanged whose `from` continues the
/// previous `to`, and one terminal JobFinished.
struct JobSubmitted {
  std::uint64_t job_id = 0;  ///< unique per daemon instance, monotonic
  std::string name;          ///< caller-chosen job name (unique among live jobs)
  std::string tenant;
  std::string problem;    ///< registered problem name the job optimizes
  std::string algorithm;  ///< optimizer roster name ("MA-Opt", "Random", ...)
  std::uint64_t seed = 0;
  std::uint64_t simulation_budget = 0;
};

struct JobStateChanged {
  std::uint64_t job_id = 0;
  std::string name;
  std::string from;  ///< serve::to_string(JobState)
  std::string to;
  std::string reason;  ///< operator-facing cause ("pause requested", ...)
};

/// Terminal job bracket: final state plus the job's run-level totals
/// (carried per job so a multi-job stream stays attributable).
struct JobFinished {
  std::uint64_t job_id = 0;
  std::string name;
  std::string tenant;
  std::string state;              ///< "done" | "failed" | "killed"
  std::uint64_t simulations = 0;  ///< budgeted simulations the job consumed
  double best_fom = 0.0;          ///< NaN when the job never produced one
  bool feasible = false;
  double wall_seconds = 0.0;  ///< job wall-clock across all running segments
  RunCounters counters;       ///< last run segment's counters
};

}  // namespace maopt::obs
