#include "obs/jsonl_writer.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace maopt::obs {

namespace {

/// JSON has no NaN/Inf literals; non-finite values serialize as null.
void append_double(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  out += std::to_string(v);
}

void append_string(std::string& out, const std::string& s) {
  out += '"';
  out += json_escape(s);
  out += '"';
}

void append_bool(std::string& out, bool v) { out += v ? "true" : "false"; }

std::string event_head(const char* name) {
  std::string line = "{\"event\":\"";
  line += name;
  line += '"';
  return line;
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

JsonlObserver::JsonlObserver(const std::string& path) : path_(path) {
  // out_ is guarded by io_mutex_; construction is single-threaded but the
  // lock keeps the annotation contract uniform (same idiom as ResultCache).
  const MutexLock lock(io_mutex_);
  out_.open(path, std::ios::out | std::ios::app);
  if (!out_) throw std::runtime_error("JsonlObserver: cannot open " + path);
}

void JsonlObserver::write_line(const std::string& line) {
  const MutexLock lock(io_mutex_);
  out_ << line << '\n';
  out_.flush();
}

void JsonlObserver::on_run_started(const RunStarted& e) {
  std::string line = event_head("run_started");
  line += ",\"algorithm\":";
  append_string(line, e.algorithm);
  line += ",\"problem\":";
  append_string(line, e.problem);
  line += ",\"seed\":";
  append_u64(line, e.seed);
  line += ",\"budget\":";
  append_u64(line, e.simulation_budget);
  line += ",\"num_initial\":";
  append_u64(line, e.num_initial);
  line += ",\"dim\":";
  append_u64(line, e.dim);
  line += ",\"t\":";
  append_double(line, since_open_.elapsed_seconds());
  line += '}';
  write_line(line);
}

void JsonlObserver::on_simulation_completed(const SimulationCompleted& e) {
  std::string line = event_head("simulation_completed");
  line += ",\"index\":";
  append_u64(line, e.index);
  line += ",\"iteration\":";
  append_u64(line, e.iteration);
  line += ",\"lane\":";
  line += std::to_string(e.lane);
  line += ",\"ok\":";
  append_bool(line, e.ok);
  line += ",\"feasible\":";
  append_bool(line, e.feasible);
  line += ",\"fom\":";
  append_double(line, e.fom);
  line += ",\"seconds\":";
  append_double(line, e.seconds);
  line += ",\"retries\":";
  append_u64(line, e.retries);
  line += ",\"failure_kind\":";
  append_string(line, e.failure_kind);
  line += ",\"cache_hit\":";
  append_bool(line, e.cache_hit);
  line += ",\"coalesced\":";
  append_bool(line, e.coalesced);
  line += ",\"t\":";
  append_double(line, since_open_.elapsed_seconds());
  line += '}';
  write_line(line);
}

void JsonlObserver::on_iteration_completed(const IterationCompleted& e) {
  std::string line = event_head("iteration_completed");
  line += ",\"iteration\":";
  append_u64(line, e.iteration);
  line += ",\"simulations\":";
  append_u64(line, e.simulations_done);
  line += ",\"best_fom\":";
  append_double(line, e.best_fom);
  line += ",\"feasible_found\":";
  append_bool(line, e.feasible_found);
  line += ",\"near_sampling\":";
  append_bool(line, e.near_sampling);
  line += ",\"wall_seconds\":";
  append_double(line, e.wall_seconds);
  line += ",\"spans\":[";
  for (std::size_t i = 0; i < e.spans.size(); ++i) {
    if (i > 0) line += ',';
    line += "{\"phase\":";
    append_string(line, to_string(e.spans[i].phase));
    line += ",\"lane\":";
    line += std::to_string(e.spans[i].lane);
    line += ",\"seconds\":";
    append_double(line, e.spans[i].seconds);
    line += '}';
  }
  line += "],\"t\":";
  append_double(line, since_open_.elapsed_seconds());
  line += '}';
  write_line(line);
}

void JsonlObserver::on_checkpoint_written(const CheckpointWritten& e) {
  std::string line = event_head("checkpoint_written");
  line += ",\"path\":";
  append_string(line, e.path);
  line += ",\"iteration\":";
  append_u64(line, e.iteration);
  line += ",\"simulations\":";
  append_u64(line, e.simulations_done);
  line += ",\"bytes\":";
  append_u64(line, e.bytes);
  line += ",\"t\":";
  append_double(line, since_open_.elapsed_seconds());
  line += '}';
  write_line(line);
}

void JsonlObserver::on_run_finished(const RunFinished& e) {
  std::string line = event_head("run_finished");
  line += ",\"algorithm\":";
  append_string(line, e.algorithm);
  line += ",\"simulations\":";
  append_u64(line, e.simulations);
  line += ",\"best_fom\":";
  append_double(line, e.best_fom);
  line += ",\"feasible\":";
  append_bool(line, e.feasible);
  line += ",\"aborted\":";
  append_bool(line, e.aborted);
  line += ",\"abort_reason\":";
  append_string(line, e.abort_reason);
  line += ",\"wall_seconds\":";
  append_double(line, e.wall_seconds);
  line += ",\"counters\":{\"simulations\":";
  append_u64(line, e.counters.simulations);
  line += ",\"failures\":";
  append_u64(line, e.counters.failures);
  line += ",\"retries\":";
  append_u64(line, e.counters.retries);
  line += ",\"iterations\":";
  append_u64(line, e.counters.iterations);
  line += ",\"ns_iterations\":";
  append_u64(line, e.counters.ns_iterations);
  line += ",\"checkpoints\":";
  append_u64(line, e.counters.checkpoints);
  line += ",\"checkpoint_bytes\":";
  append_u64(line, e.counters.checkpoint_bytes);
  line += ",\"cache_hits\":";
  append_u64(line, e.counters.cache_hits);
  line += ",\"cache_misses\":";
  append_u64(line, e.counters.cache_misses);
  line += ",\"cache_coalesced\":";
  append_u64(line, e.counters.cache_coalesced);
  line += "},\"t\":";
  append_double(line, since_open_.elapsed_seconds());
  line += '}';
  write_line(line);
}

void JsonlObserver::on_sweep_started(const SweepStarted& e) {
  std::string line = event_head("sweep_started");
  line += ",\"sweep_id\":";
  append_u64(line, e.sweep_id);
  line += ",\"kind\":";
  append_string(line, e.kind);
  line += ",\"aggregation\":";
  append_string(line, e.aggregation);
  line += ",\"variants\":";
  append_u64(line, e.variants);
  line += ",\"t\":";
  append_double(line, since_open_.elapsed_seconds());
  line += '}';
  write_line(line);
}

void JsonlObserver::on_sweep_variant_evaluated(const SweepVariantEvaluated& e) {
  std::string line = event_head("sweep_variant");
  line += ",\"sweep_id\":";
  append_u64(line, e.sweep_id);
  line += ",\"variant\":";
  append_u64(line, e.variant);
  line += ",\"label\":";
  append_string(line, e.label);
  line += ",\"ok\":";
  append_bool(line, e.ok);
  line += ",\"skipped\":";
  append_bool(line, e.skipped);
  line += ",\"fom0\":";
  append_double(line, e.fom0);
  line += ",\"seconds\":";
  append_double(line, e.seconds);
  line += ",\"t\":";
  append_double(line, since_open_.elapsed_seconds());
  line += '}';
  write_line(line);
}

void JsonlObserver::on_job_submitted(const JobSubmitted& e) {
  std::string line = event_head("job_submitted");
  line += ",\"job_id\":";
  append_u64(line, e.job_id);
  line += ",\"name\":";
  append_string(line, e.name);
  line += ",\"tenant\":";
  append_string(line, e.tenant);
  line += ",\"problem\":";
  append_string(line, e.problem);
  line += ",\"algorithm\":";
  append_string(line, e.algorithm);
  line += ",\"seed\":";
  append_u64(line, e.seed);
  line += ",\"simulation_budget\":";
  append_u64(line, e.simulation_budget);
  line += ",\"t\":";
  append_double(line, since_open_.elapsed_seconds());
  line += '}';
  write_line(line);
}

void JsonlObserver::on_job_state_changed(const JobStateChanged& e) {
  std::string line = event_head("job_state_changed");
  line += ",\"job_id\":";
  append_u64(line, e.job_id);
  line += ",\"name\":";
  append_string(line, e.name);
  line += ",\"from\":";
  append_string(line, e.from);
  line += ",\"to\":";
  append_string(line, e.to);
  line += ",\"reason\":";
  append_string(line, e.reason);
  line += ",\"t\":";
  append_double(line, since_open_.elapsed_seconds());
  line += '}';
  write_line(line);
}

void JsonlObserver::on_job_finished(const JobFinished& e) {
  std::string line = event_head("job_finished");
  line += ",\"job_id\":";
  append_u64(line, e.job_id);
  line += ",\"name\":";
  append_string(line, e.name);
  line += ",\"tenant\":";
  append_string(line, e.tenant);
  line += ",\"state\":";
  append_string(line, e.state);
  line += ",\"simulations\":";
  append_u64(line, e.simulations);
  line += ",\"best_fom\":";
  append_double(line, e.best_fom);
  line += ",\"feasible\":";
  append_bool(line, e.feasible);
  line += ",\"wall_seconds\":";
  append_double(line, e.wall_seconds);
  line += ",\"counters\":{\"simulations\":";
  append_u64(line, e.counters.simulations);
  line += ",\"failures\":";
  append_u64(line, e.counters.failures);
  line += ",\"retries\":";
  append_u64(line, e.counters.retries);
  line += ",\"cache_hits\":";
  append_u64(line, e.counters.cache_hits);
  line += ",\"cache_misses\":";
  append_u64(line, e.counters.cache_misses);
  line += ",\"cache_coalesced\":";
  append_u64(line, e.counters.cache_coalesced);
  line += "},\"t\":";
  append_double(line, since_open_.elapsed_seconds());
  line += '}';
  write_line(line);
}

void JsonlObserver::on_sweep_completed(const SweepCompleted& e) {
  std::string line = event_head("sweep_completed");
  line += ",\"sweep_id\":";
  append_u64(line, e.sweep_id);
  line += ",\"ok\":";
  append_u64(line, e.variants_ok);
  line += ",\"failed\":";
  append_u64(line, e.variants_failed);
  line += ",\"skipped\":";
  append_u64(line, e.variants_skipped);
  line += ",\"degraded\":";
  append_bool(line, e.degraded);
  line += ",\"policy\":";
  append_string(line, e.policy);
  line += ",\"seconds\":";
  append_double(line, e.seconds);
  line += ",\"t\":";
  append_double(line, since_open_.elapsed_seconds());
  line += '}';
  write_line(line);
}

}  // namespace maopt::obs
