#include "obs/run_report.hpp"

#include <cmath>
#include <cstdio>

namespace maopt::obs {

void RunReport::on_run_started(const RunStarted& event) {
  Row row;
  row.algorithm = event.algorithm;
  row.problem = event.problem;
  row.seed = event.seed;
  row.budget = event.simulation_budget;
  rows_.push_back(std::move(row));
}

void RunReport::on_iteration_completed(const IterationCompleted& event) {
  // Tolerate events arriving without a run_started (partial streams).
  if (rows_.empty() || rows_.back().finished) rows_.emplace_back();
  Row& row = rows_.back();
  row.iterations = event.iteration;
  for (const PhaseSpan& span : event.spans)
    row.phase_seconds[static_cast<std::size_t>(span.phase)] += span.seconds;
}

void RunReport::on_run_finished(const RunFinished& event) {
  if (rows_.empty() || rows_.back().finished) rows_.emplace_back();
  Row& row = rows_.back();
  if (row.algorithm.empty()) row.algorithm = event.algorithm;
  row.simulations = event.simulations;
  row.best_fom = event.best_fom;
  row.feasible = event.feasible;
  row.aborted = event.aborted;
  row.wall_seconds = event.wall_seconds;
  row.counters = event.counters;
  if (row.iterations == 0) row.iterations = event.counters.iterations;
  row.finished = true;
}

void RunReport::on_sweep_completed(const SweepCompleted& event) {
  if (rows_.empty() || rows_.back().finished) rows_.emplace_back();
  Row& row = rows_.back();
  row.sweeps += 1;
  row.sweep_variants_ok += event.variants_ok;
  row.sweep_variants_failed += event.variants_failed;
  row.sweep_variants_skipped += event.variants_skipped;
  if (event.degraded) row.sweeps_degraded += 1;
}

std::string RunReport::table() const {
  if (rows_.empty()) return {};
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "%-12s %5s %5s %5s %6s %5s %5s %5s %12s %5s %9s %9s %8s %8s %8s %8s\n",
                "Algorithm", "sims", "fail", "retry", "iters", "hit", "miss", "coal", "best FoM",
                "feas", "critic(s)", "actor(s)", "sim(s)", "ns(s)", "elite(s)", "wall(s)");
  out += buf;
  for (const Row& r : rows_) {
    std::snprintf(
        buf, sizeof buf,
        "%-12s %5llu %5llu %5llu %6llu %5llu %5llu %5llu %12.4g %5s %9.3f %9.3f %8.3f %8.3f "
        "%8.3f %8.2f%s\n",
        r.algorithm.c_str(), static_cast<unsigned long long>(r.simulations),
        static_cast<unsigned long long>(r.counters.failures),
        static_cast<unsigned long long>(r.counters.retries),
        static_cast<unsigned long long>(r.iterations),
        static_cast<unsigned long long>(r.counters.cache_hits),
        static_cast<unsigned long long>(r.counters.cache_misses),
        static_cast<unsigned long long>(r.counters.cache_coalesced), r.best_fom,
        r.feasible ? "yes" : "no", r.phase(Phase::CriticTrain), r.phase(Phase::ActorTrain),
        r.phase(Phase::Simulate), r.phase(Phase::NearSample), r.phase(Phase::EliteUpdate),
        r.wall_seconds, r.aborted ? "  [ABORTED]" : "");
    out += buf;
  }
  return out;
}

}  // namespace maopt::obs
