// JSONL event-stream observer: one JSON object per line, appended and
// flushed per event so a crashed run leaves a valid prefix that tooling
// (tools/check_telemetry.py, pandas.read_json(lines=True)) can still parse.
// The schema is documented in README.md ("Observability").
#pragma once

#include <fstream>
#include <string>

#include "common/log.hpp"
#include "common/thread_annotations.hpp"
#include "obs/observer.hpp"

namespace maopt::obs {

/// Escapes `s` for inclusion inside a JSON string literal.
std::string json_escape(const std::string& s);

class JsonlObserver final : public RunObserver {
 public:
  /// Opens `path` for appending (parent directory must exist); throws
  /// std::runtime_error when the file cannot be opened.
  explicit JsonlObserver(const std::string& path);

  const std::string& path() const { return path_; }

  void on_run_started(const RunStarted& event) override;
  void on_simulation_completed(const SimulationCompleted& event) override;
  void on_iteration_completed(const IterationCompleted& event) override;
  void on_checkpoint_written(const CheckpointWritten& event) override;
  void on_run_finished(const RunFinished& event) override;
  void on_sweep_started(const SweepStarted& event) override;
  void on_sweep_variant_evaluated(const SweepVariantEvaluated& event) override;
  void on_sweep_completed(const SweepCompleted& event) override;
  void on_job_submitted(const JobSubmitted& event) override;
  void on_job_state_changed(const JobStateChanged& event) override;
  void on_job_finished(const JobFinished& event) override;

 private:
  /// Appends one line and flushes (the crash-safety contract). Serialized by
  /// io_mutex_ so several runs can share one sink without interleaving lines
  /// mid-record (each handler formats its line off-lock, then appends).
  void write_line(const std::string& line) MAOPT_EXCLUDES(io_mutex_);

  std::string path_;
  Mutex io_mutex_;  ///< leaf lock: nothing is acquired while it is held
  std::ofstream out_ MAOPT_GUARDED_BY(io_mutex_);
  Stopwatch since_open_;  ///< source of the per-event "t" timestamp (const after open)
};

}  // namespace maopt::obs
