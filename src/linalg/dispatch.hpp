// Load-time SIMD dispatch for hot numeric kernels.
//
// The portable baseline targets x86-64 SSE2; on hosts with AVX2+FMA the
// ifunc resolver picks a 4-wide FMA clone of the same source at load time,
// so the plain build still gets vector throughput without -march=native.
// (With MAOPT_NATIVE=ON the whole TU is already compiled for the host and
// cloning would be redundant.) Sanitizer builds must not clone: the ifunc
// resolver runs before the sanitizer runtime initializes, and the clones
// hide reports behind uninstrumented dispatch — MAOPT_SAN defines
// MAOPT_NO_TARGET_CLONES (and GCC's own __SANITIZE_* macros back it up for
// ASan/TSan).
//
// Shared by the GEMM kernels (gemm.cpp), the LU factorization trailing
// update (lu.cpp), and the AC sweep combine kernel (ac_analysis.cpp).
#pragma once

#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__) && !defined(__AVX2__) && \
    !defined(MAOPT_NO_TARGET_CLONES) && !defined(__SANITIZE_ADDRESS__) &&                    \
    !defined(__SANITIZE_THREAD__)
#define MAOPT_TARGET_CLONES __attribute__((target_clones("default", "arch=x86-64-v3")))
#else
#define MAOPT_TARGET_CLONES
#endif
