#include "linalg/matrix.hpp"

#include <cmath>
#include <stdexcept>

namespace maopt::linalg {

template <typename T>
Matrix<T> matmul(const Matrix<T>& a, const Matrix<T>& b) {
  if (a.cols() != b.rows()) throw std::invalid_argument("matmul: dimension mismatch");
  Matrix<T> c(a.rows(), b.cols());
  // i-k-j loop order keeps the inner loop contiguous in both B and C.
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const T aik = a(i, k);
      const auto brow = b.row(k);
      auto crow = c.row(i);
      for (std::size_t j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

template <typename T>
std::vector<T> matvec(const Matrix<T>& a, const std::vector<T>& x) {
  if (a.cols() != x.size()) throw std::invalid_argument("matvec: dimension mismatch");
  std::vector<T> y(a.rows(), T{});
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const auto row = a.row(i);
    T s{};
    for (std::size_t j = 0; j < a.cols(); ++j) s += row[j] * x[j];
    y[i] = s;
  }
  return y;
}

template <typename T>
std::vector<T> matvec_transposed(const Matrix<T>& a, const std::vector<T>& x) {
  if (a.rows() != x.size()) throw std::invalid_argument("matvec_transposed: dimension mismatch");
  std::vector<T> y(a.cols(), T{});
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const auto row = a.row(i);
    const T xi = x[i];
    for (std::size_t j = 0; j < a.cols(); ++j) y[j] += row[j] * xi;
  }
  return y;
}

double dot(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) throw std::invalid_argument("dot: dimension mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm2(std::span<const double> a) { return std::sqrt(dot(a, a)); }

double norm_inf(std::span<const double> a) {
  double m = 0.0;
  for (const double v : a) m = std::max(m, std::abs(v));
  return m;
}

void axpy(double s, std::span<const double> b, std::span<double> a) {
  if (a.size() != b.size()) throw std::invalid_argument("axpy: dimension mismatch");
  for (std::size_t i = 0; i < a.size(); ++i) a[i] += s * b[i];
}

template class Matrix<double>;
template class Matrix<std::complex<double>>;
template Matrix<double> matmul(const Matrix<double>&, const Matrix<double>&);
template Matrix<std::complex<double>> matmul(const Matrix<std::complex<double>>&,
                                             const Matrix<std::complex<double>>&);
template std::vector<double> matvec(const Matrix<double>&, const std::vector<double>&);
template std::vector<std::complex<double>> matvec(const Matrix<std::complex<double>>&,
                                                  const std::vector<std::complex<double>>&);
template std::vector<double> matvec_transposed(const Matrix<double>&, const std::vector<double>&);

}  // namespace maopt::linalg
