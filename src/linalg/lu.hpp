// LU decomposition with partial pivoting, real and complex. This is the
// workhorse behind every MNA solve in the circuit simulator.
//
// Two layers:
//
//   * LuWorkspace + lu_factor / lu_solve_factored — the hot path. The caller
//     owns the workspace, assembles the system directly into ws.matrix(),
//     factors IN PLACE (no copy), and back-substitutes as many times as it
//     likes. Repeated solves of same-dimension systems reuse every buffer,
//     so a Newton loop, an AC frequency sweep, or a transient run performs
//     zero steady-state allocations. Singularity is reported by return value
//     (no exception on the hot path — the DC continuation ladder treats a
//     singular Jacobian as an ordinary escalation signal).
//
//   * LuDecomposition / lu_solve — the legacy one-shot convenience API,
//     now implemented on top of the workspace kernels. Factoring copies the
//     input and throws on singularity; kept for cold paths (GP baseline,
//     tests, reports) and as the golden reference the hot path is tested
//     against.
#pragma once

#include <complex>
#include <vector>

#include "linalg/matrix.hpp"

namespace maopt::linalg {

template <typename T>
class LuWorkspace;

/// Factors ws.matrix() in place (partial pivoting). Returns false — leaving
/// the workspace unfactored — when the matrix is numerically singular.
template <typename T>
bool lu_factor(LuWorkspace<T>& ws);

/// x = A^{-1} b for a factored workspace; x is resized, b is untouched.
/// b and x must not alias.
template <typename T>
void lu_solve_factored(const LuWorkspace<T>& ws, const std::vector<T>& b, std::vector<T>& x);

/// x = A^{-T} b (plain transpose, not conjugate) for a factored workspace.
/// The noise analysis adjoint solve.
template <typename T>
void lu_solve_factored_transposed(const LuWorkspace<T>& ws, const std::vector<T>& b,
                                  std::vector<T>& x);

/// Caller-owned pivoted factorization storage. Assemble into matrix(), call
/// lu_factor(), then lu_solve_factored() any number of times. Reusing one
/// workspace across same-dimension systems never reallocates.
template <typename T>
class LuWorkspace {
 public:
  /// The system matrix: assembled by the caller, overwritten by the factors.
  /// Any write invalidates a previous factorization (re-run lu_factor).
  Matrix<T>& matrix() {
    factored_ = false;
    return a_;
  }
  const Matrix<T>& matrix() const { return a_; }

  std::size_t size() const { return a_.rows(); }
  bool factored() const { return factored_; }

  /// Pivot sign * product of U's diagonal (valid after a successful factor).
  T determinant() const;

 private:
  template <typename U>
  friend bool lu_factor(LuWorkspace<U>& ws);
  template <typename U>
  friend void lu_solve_factored(const LuWorkspace<U>& ws, const std::vector<U>& b,
                                std::vector<U>& x);
  template <typename U>
  friend void lu_solve_factored_transposed(const LuWorkspace<U>& ws, const std::vector<U>& b,
                                           std::vector<U>& x);

  Matrix<T> a_;
  std::vector<std::size_t> perm_;
  // Reciprocals of U's diagonal, captured during elimination (where each
  // pivot's inverse is computed anyway). Back substitution multiplies by
  // these instead of dividing — for complex systems that replaces n full
  // complex divisions per solve with cheap multiplies.
  std::vector<T> inv_diag_;
  // Intermediate for the transposed (adjoint) solve; mutable so repeated
  // noise-analysis solves on a const workspace stay allocation-free.
  mutable std::vector<T> scratch_;
  int perm_sign_ = 1;
  bool factored_ = false;
};

using LuWorkReal = LuWorkspace<double>;
using LuWorkComplex = LuWorkspace<std::complex<double>>;

/// Factored form of a square matrix; solve() may be called repeatedly.
/// One-shot convenience layer over LuWorkspace (copies, allocates, throws).
template <typename T>
class LuDecomposition {
 public:
  /// Factors `a` (moved/copied in). Throws std::runtime_error if singular.
  explicit LuDecomposition(Matrix<T> a);

  std::size_t size() const { return ws_.size(); }

  /// Solves A x = b.
  std::vector<T> solve(const std::vector<T>& b) const;

  /// Solves A^T x = b (plain transpose; complex conjugate NOT applied).
  std::vector<T> solve_transposed(const std::vector<T>& b) const;

  /// |det A| can over/underflow for big systems; sign + log-magnitude form.
  T determinant() const { return ws_.determinant(); }

 private:
  LuWorkspace<T> ws_;
};

/// One-shot convenience: solve A x = b.
template <typename T>
std::vector<T> lu_solve(Matrix<T> a, const std::vector<T>& b);

using LuReal = LuDecomposition<double>;
using LuComplex = LuDecomposition<std::complex<double>>;

extern template class LuWorkspace<double>;
extern template class LuWorkspace<std::complex<double>>;
extern template bool lu_factor(LuWorkspace<double>&);
extern template bool lu_factor(LuWorkspace<std::complex<double>>&);
extern template void lu_solve_factored(const LuWorkspace<double>&, const std::vector<double>&,
                                       std::vector<double>&);
extern template void lu_solve_factored(const LuWorkspace<std::complex<double>>&,
                                       const std::vector<std::complex<double>>&,
                                       std::vector<std::complex<double>>&);
extern template void lu_solve_factored_transposed(const LuWorkspace<double>&,
                                                  const std::vector<double>&,
                                                  std::vector<double>&);
extern template void lu_solve_factored_transposed(const LuWorkspace<std::complex<double>>&,
                                                  const std::vector<std::complex<double>>&,
                                                  std::vector<std::complex<double>>&);
extern template class LuDecomposition<double>;
extern template class LuDecomposition<std::complex<double>>;
extern template std::vector<double> lu_solve(Matrix<double>, const std::vector<double>&);
extern template std::vector<std::complex<double>> lu_solve(Matrix<std::complex<double>>,
                                                           const std::vector<std::complex<double>>&);

}  // namespace maopt::linalg
