// LU decomposition with partial pivoting, real and complex. This is the
// workhorse behind every MNA solve in the circuit simulator: the DC Newton
// iteration refactors the real Jacobian each step, and the AC / noise
// analyses factor the complex system matrix once per frequency point.
#pragma once

#include <complex>
#include <vector>

#include "linalg/matrix.hpp"

namespace maopt::linalg {

/// Factored form of a square matrix; solve() may be called repeatedly.
template <typename T>
class LuDecomposition {
 public:
  /// Factors `a` (copied). Throws std::runtime_error if (numerically) singular.
  explicit LuDecomposition(Matrix<T> a);

  std::size_t size() const { return lu_.rows(); }

  /// Solves A x = b.
  std::vector<T> solve(const std::vector<T>& b) const;

  /// Solves A^T x = b (real) / A^H for complex is NOT provided; the noise
  /// analysis uses explicit per-source forward solves instead.
  std::vector<T> solve_transposed(const std::vector<T>& b) const;

  /// |det A| can over/underflow for big systems; sign + log-magnitude form.
  T determinant() const;

 private:
  Matrix<T> lu_;
  std::vector<std::size_t> perm_;
  int perm_sign_ = 1;
};

/// One-shot convenience: solve A x = b.
template <typename T>
std::vector<T> lu_solve(Matrix<T> a, const std::vector<T>& b);

using LuReal = LuDecomposition<double>;
using LuComplex = LuDecomposition<std::complex<double>>;

extern template class LuDecomposition<double>;
extern template class LuDecomposition<std::complex<double>>;
extern template std::vector<double> lu_solve(Matrix<double>, const std::vector<double>&);
extern template std::vector<std::complex<double>> lu_solve(Matrix<std::complex<double>>,
                                                           const std::vector<std::complex<double>>&);

}  // namespace maopt::linalg
