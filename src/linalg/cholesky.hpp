// Cholesky factorization of symmetric positive-definite matrices, used by
// the Gaussian-process baseline (kernel matrices) where it is both ~2x
// faster than LU and the standard route to the log-determinant term of the
// GP log-marginal likelihood.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace maopt::linalg {

class Cholesky {
 public:
  /// Factors SPD `a` as L L^T (lower triangular). Throws std::runtime_error
  /// if a non-positive pivot is met (matrix not positive definite).
  explicit Cholesky(const Mat& a);

  std::size_t size() const { return l_.rows(); }
  const Mat& lower() const { return l_; }

  /// Solves A x = b via two triangular solves.
  Vec solve(const Vec& b) const;

  /// Solves L y = b (forward substitution only).
  Vec solve_lower(const Vec& b) const;

  /// log(det A) = 2 * sum(log diag L); never over/underflows.
  double log_determinant() const;

 private:
  Mat l_;
};

}  // namespace maopt::linalg
