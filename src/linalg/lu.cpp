#include "linalg/lu.hpp"

#include <cmath>
#include <stdexcept>

namespace maopt::linalg {
namespace {
double magnitude(double v) { return std::abs(v); }
double magnitude(const std::complex<double>& v) { return std::abs(v); }
}  // namespace

template <typename T>
LuDecomposition<T>::LuDecomposition(Matrix<T> a) : lu_(std::move(a)) {
  if (lu_.rows() != lu_.cols()) throw std::invalid_argument("LU: matrix must be square");
  const std::size_t n = lu_.rows();
  perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: pick the largest magnitude in column k below the diagonal.
    std::size_t pivot = k;
    double best = magnitude(lu_(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double m = magnitude(lu_(i, k));
      if (m > best) {
        best = m;
        pivot = i;
      }
    }
    if (best < 1e-300) throw std::runtime_error("LU: matrix is singular");
    if (pivot != k) {
      for (std::size_t j = 0; j < n; ++j) std::swap(lu_(k, j), lu_(pivot, j));
      std::swap(perm_[k], perm_[pivot]);
      perm_sign_ = -perm_sign_;
    }
    const T inv_pivot = T{1} / lu_(k, k);
    for (std::size_t i = k + 1; i < n; ++i) {
      const T factor = lu_(i, k) * inv_pivot;
      lu_(i, k) = factor;
      if (factor == T{}) continue;
      for (std::size_t j = k + 1; j < n; ++j) lu_(i, j) -= factor * lu_(k, j);
    }
  }
}

template <typename T>
std::vector<T> LuDecomposition<T>::solve(const std::vector<T>& b) const {
  const std::size_t n = size();
  if (b.size() != n) throw std::invalid_argument("LU solve: dimension mismatch");
  std::vector<T> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = b[perm_[i]];
  // Forward substitution (L has unit diagonal).
  for (std::size_t i = 1; i < n; ++i) {
    T s = x[i];
    for (std::size_t j = 0; j < i; ++j) s -= lu_(i, j) * x[j];
    x[i] = s;
  }
  // Back substitution.
  for (std::size_t ii = n; ii-- > 0;) {
    T s = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) s -= lu_(ii, j) * x[j];
    x[ii] = s / lu_(ii, ii);
  }
  return x;
}

template <typename T>
std::vector<T> LuDecomposition<T>::solve_transposed(const std::vector<T>& b) const {
  // A = P^T L U  =>  A^T = U^T L^T P. Solve U^T y = b, L^T z = y, x = P^T z.
  const std::size_t n = size();
  if (b.size() != n) throw std::invalid_argument("LU solve_transposed: dimension mismatch");
  std::vector<T> y(b);
  for (std::size_t i = 0; i < n; ++i) {
    T s = y[i];
    for (std::size_t j = 0; j < i; ++j) s -= lu_(j, i) * y[j];
    y[i] = s / lu_(i, i);
  }
  for (std::size_t ii = n; ii-- > 0;) {
    T s = y[ii];
    for (std::size_t j = ii + 1; j < n; ++j) s -= lu_(j, ii) * y[j];
    y[ii] = s;
  }
  std::vector<T> x(n);
  for (std::size_t i = 0; i < n; ++i) x[perm_[i]] = y[i];
  return x;
}

template <typename T>
T LuDecomposition<T>::determinant() const {
  T det = static_cast<T>(perm_sign_);
  for (std::size_t i = 0; i < size(); ++i) det *= lu_(i, i);
  return det;
}

template <typename T>
std::vector<T> lu_solve(Matrix<T> a, const std::vector<T>& b) {
  return LuDecomposition<T>(std::move(a)).solve(b);
}

template class LuDecomposition<double>;
template class LuDecomposition<std::complex<double>>;
template std::vector<double> lu_solve(Matrix<double>, const std::vector<double>&);
template std::vector<std::complex<double>> lu_solve(Matrix<std::complex<double>>,
                                                    const std::vector<std::complex<double>>&);

}  // namespace maopt::linalg
