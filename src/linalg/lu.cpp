#include "linalg/lu.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <type_traits>

#include "common/check.hpp"
#include "common/thread_annotations.hpp"
#include "linalg/dispatch.hpp"

namespace maopt::linalg {
namespace {

// --- Whole in-place factorization kernels: pivot search, row swap, and the
// rank-1 trailing update all live in ONE dispatched function. MNA systems
// are small (n ~ 10), so a per-pivot-step kernel call pays more in indirect
// ifunc dispatch than in arithmetic — hoisting the k-loop inside the kernel
// removes ~n function calls per factorization from the sweep hot path. The
// j-loops are elementwise-independent so the AVX2 clone vectorizes them
// without changing any rounding (no reductions).

MAOPT_TARGET_CLONES
MAOPT_HOT bool factor_kernel(double* a, std::size_t n, std::size_t* perm, double* inv_diag, int* sign) {
  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: largest magnitude in column k on/below the diagonal.
    std::size_t pivot = k;
    double best = std::abs(a[k * n + k]);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double m = std::abs(a[i * n + k]);
      if (m > best) {
        best = m;
        pivot = i;
      }
    }
    if (best < 1e-300) return false;
    double* rowk = a + k * n;
    if (pivot != k) {
      double* rowp = a + pivot * n;
      for (std::size_t j = 0; j < n; ++j) std::swap(rowk[j], rowp[j]);
      std::swap(perm[k], perm[pivot]);
      *sign = -*sign;
    }
    const double inv_pivot = 1.0 / rowk[k];
    inv_diag[k] = inv_pivot;
    for (std::size_t i = k + 1; i < n; ++i) {
      double* rowi = a + i * n;
      const double factor = rowi[k] * inv_pivot;
      rowi[k] = factor;
      if (factor == 0.0) continue;
      for (std::size_t j = k + 1; j < n; ++j) rowi[j] -= factor * rowk[j];
    }
  }
  return true;
}

// Complex rows viewed as interleaved (re, im) doubles. The naive multiply
// below is exactly what std::complex computes for finite operands, written
// out so the compiler can vectorize across the row; the pivot magnitude
// keeps std::abs(std::complex) semantics (hypot) so pivot choices are
// unchanged from the generic path.
MAOPT_TARGET_CLONES
MAOPT_HOT bool factor_kernel_cplx(double* a, std::size_t n, std::size_t* perm, double* inv_diag, int* sign) {
  for (std::size_t k = 0; k < n; ++k) {
    std::size_t pivot = k;
    double best = std::hypot(a[2 * (k * n + k)], a[2 * (k * n + k) + 1]);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double m = std::hypot(a[2 * (i * n + k)], a[2 * (i * n + k) + 1]);
      if (m > best) {
        best = m;
        pivot = i;
      }
    }
    if (best < 1e-300) return false;
    double* rowk = a + 2 * k * n;
    if (pivot != k) {
      double* rowp = a + 2 * pivot * n;
      for (std::size_t j = 0; j < 2 * n; ++j) std::swap(rowk[j], rowp[j]);
      std::swap(perm[k], perm[pivot]);
      *sign = -*sign;
    }
    const std::complex<double> piv{rowk[2 * k], rowk[2 * k + 1]};
    const std::complex<double> inv_pivot = std::complex<double>{1.0} / piv;
    const double ir = inv_pivot.real(), ii = inv_pivot.imag();
    inv_diag[2 * k] = ir;
    inv_diag[2 * k + 1] = ii;
    for (std::size_t i = k + 1; i < n; ++i) {
      double* rowi = a + 2 * i * n;
      const double cr = rowi[2 * k], ci = rowi[2 * k + 1];
      const double fr = cr * ir - ci * ii;
      const double fi = cr * ii + ci * ir;
      rowi[2 * k] = fr;
      rowi[2 * k + 1] = fi;
      if (fr == 0.0 && fi == 0.0) continue;
      for (std::size_t j = k + 1; j < n; ++j) {
        const double br = rowk[2 * j], bi = rowk[2 * j + 1];
        rowi[2 * j] -= fr * br - fi * bi;
        rowi[2 * j + 1] -= fr * bi + fi * br;
      }
    }
  }
  return true;
}

// Triangular substitution over the interleaved (re, im) view of a factored
// complex system: forward with L's unit diagonal, then backward multiplying
// by the stored pivot reciprocals. Spelled out in real arithmetic so no
// library complex-multiply/divide calls land on the sweep hot path.
MAOPT_TARGET_CLONES
MAOPT_HOT void trisolve_cplx(const double* lu, const double* inv_diag, double* x, std::size_t n) {
  for (std::size_t i = 1; i < n; ++i) {
    const double* row = lu + 2 * i * n;
    double sr = x[2 * i], si = x[2 * i + 1];
    for (std::size_t j = 0; j < i; ++j) {
      const double ar = row[2 * j], ai = row[2 * j + 1];
      const double br = x[2 * j], bi = x[2 * j + 1];
      sr -= ar * br - ai * bi;
      si -= ar * bi + ai * br;
    }
    x[2 * i] = sr;
    x[2 * i + 1] = si;
  }
  for (std::size_t ii = n; ii-- > 0;) {
    const double* row = lu + 2 * ii * n;
    double sr = x[2 * ii], si = x[2 * ii + 1];
    for (std::size_t j = ii + 1; j < n; ++j) {
      const double ar = row[2 * j], ai = row[2 * j + 1];
      const double br = x[2 * j], bi = x[2 * j + 1];
      sr -= ar * br - ai * bi;
      si -= ar * bi + ai * br;
    }
    const double dr = inv_diag[2 * ii], di = inv_diag[2 * ii + 1];
    x[2 * ii] = sr * dr - si * di;
    x[2 * ii + 1] = sr * di + si * dr;
  }
}

// Transposed counterpart (U^T then L^T), reading columns of the row-major
// factors; used by the noise-analysis adjoint solve.
MAOPT_TARGET_CLONES
MAOPT_HOT void trisolve_cplx_transposed(const double* lu, const double* inv_diag, double* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    double sr = y[2 * i], si = y[2 * i + 1];
    for (std::size_t j = 0; j < i; ++j) {
      const double ar = lu[2 * (j * n + i)], ai = lu[2 * (j * n + i) + 1];
      const double br = y[2 * j], bi = y[2 * j + 1];
      sr -= ar * br - ai * bi;
      si -= ar * bi + ai * br;
    }
    const double dr = inv_diag[2 * i], di = inv_diag[2 * i + 1];
    y[2 * i] = sr * dr - si * di;
    y[2 * i + 1] = sr * di + si * dr;
  }
  for (std::size_t ii = n; ii-- > 0;) {
    double sr = y[2 * ii], si = y[2 * ii + 1];
    for (std::size_t j = ii + 1; j < n; ++j) {
      const double ar = lu[2 * (j * n + ii)], ai = lu[2 * (j * n + ii) + 1];
      const double br = y[2 * j], bi = y[2 * j + 1];
      sr -= ar * br - ai * bi;
      si -= ar * bi + ai * br;
    }
    y[2 * ii] = sr;
    y[2 * ii + 1] = si;
  }
}

}  // namespace

template <typename T>
bool lu_factor(LuWorkspace<T>& ws) {
  Matrix<T>& a = ws.a_;
  if (a.rows() != a.cols()) throw std::invalid_argument("LU: matrix must be square");
  const std::size_t n = a.rows();
  ws.factored_ = false;
  ws.perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) ws.perm_[i] = i;
  ws.perm_sign_ = 1;
  ws.inv_diag_.resize(n);

  bool ok;
  if constexpr (std::is_same_v<T, std::complex<double>>) {
    // std::complex<double> is layout-compatible with double[2].
    ok = factor_kernel_cplx(reinterpret_cast<double*>(a.data().data()), n, ws.perm_.data(),
                            reinterpret_cast<double*>(ws.inv_diag_.data()), &ws.perm_sign_);
  } else {
    ok = factor_kernel(a.data().data(), n, ws.perm_.data(), ws.inv_diag_.data(), &ws.perm_sign_);
  }
  ws.factored_ = ok;
  return ok;
}

template <typename T>
void lu_solve_factored(const LuWorkspace<T>& ws, const std::vector<T>& b, std::vector<T>& x) {
  const Matrix<T>& lu = ws.a_;
  const std::size_t n = lu.rows();
  MAOPT_CHECK(ws.factored_, "lu_solve_factored: workspace not factored");
  MAOPT_CHECK(b.size() == n, "lu_solve_factored: dimension mismatch");
  MAOPT_CHECK(&b != &x, "lu_solve_factored: b and x must not alias");
  x.resize(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = b[ws.perm_[i]];
  if constexpr (std::is_same_v<T, std::complex<double>>) {
    trisolve_cplx(reinterpret_cast<const double*>(lu.data().data()),
                  reinterpret_cast<const double*>(ws.inv_diag_.data()),
                  reinterpret_cast<double*>(x.data()), n);
    return;
  } else {
    // Forward substitution (L has unit diagonal).
    for (std::size_t i = 1; i < n; ++i) {
      T s = x[i];
      for (std::size_t j = 0; j < i; ++j) s -= lu(i, j) * x[j];
      x[i] = s;
    }
    // Back substitution, multiplying by the pivot reciprocals from the factor.
    for (std::size_t ii = n; ii-- > 0;) {
      T s = x[ii];
      for (std::size_t j = ii + 1; j < n; ++j) s -= lu(ii, j) * x[j];
      x[ii] = s * ws.inv_diag_[ii];
    }
  }
}

template <typename T>
void lu_solve_factored_transposed(const LuWorkspace<T>& ws, const std::vector<T>& b,
                                  std::vector<T>& x) {
  // A = P^T L U  =>  A^T = U^T L^T P. Solve U^T y = b, L^T z = y, x = P^T z.
  const Matrix<T>& lu = ws.a_;
  const std::size_t n = lu.rows();
  MAOPT_CHECK(ws.factored_, "lu_solve_factored_transposed: workspace not factored");
  MAOPT_CHECK(b.size() == n, "lu_solve_factored_transposed: dimension mismatch");
  std::vector<T>& y = ws.scratch_;
  y.assign(b.begin(), b.end());
  if constexpr (std::is_same_v<T, std::complex<double>>) {
    trisolve_cplx_transposed(reinterpret_cast<const double*>(lu.data().data()),
                             reinterpret_cast<const double*>(ws.inv_diag_.data()),
                             reinterpret_cast<double*>(y.data()), n);
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      T s = y[i];
      for (std::size_t j = 0; j < i; ++j) s -= lu(j, i) * y[j];
      y[i] = s * ws.inv_diag_[i];
    }
    for (std::size_t ii = n; ii-- > 0;) {
      T s = y[ii];
      for (std::size_t j = ii + 1; j < n; ++j) s -= lu(j, ii) * y[j];
      y[ii] = s;
    }
  }
  x.resize(n);
  for (std::size_t i = 0; i < n; ++i) x[ws.perm_[i]] = y[i];
}

template <typename T>
T LuWorkspace<T>::determinant() const {
  MAOPT_CHECK(factored_, "LuWorkspace::determinant: not factored");
  T det = static_cast<T>(perm_sign_);
  for (std::size_t i = 0; i < size(); ++i) det *= a_(i, i);
  return det;
}

template <typename T>
LuDecomposition<T>::LuDecomposition(Matrix<T> a) {
  ws_.matrix() = std::move(a);
  if (!lu_factor(ws_)) throw std::runtime_error("LU: matrix is singular");
}

template <typename T>
std::vector<T> LuDecomposition<T>::solve(const std::vector<T>& b) const {
  if (b.size() != size()) throw std::invalid_argument("LU solve: dimension mismatch");
  std::vector<T> x;
  lu_solve_factored(ws_, b, x);
  return x;
}

template <typename T>
std::vector<T> LuDecomposition<T>::solve_transposed(const std::vector<T>& b) const {
  if (b.size() != size()) throw std::invalid_argument("LU solve_transposed: dimension mismatch");
  std::vector<T> x;
  lu_solve_factored_transposed(ws_, b, x);
  return x;
}

template <typename T>
std::vector<T> lu_solve(Matrix<T> a, const std::vector<T>& b) {
  return LuDecomposition<T>(std::move(a)).solve(b);
}

template class LuWorkspace<double>;
template class LuWorkspace<std::complex<double>>;
template bool lu_factor(LuWorkspace<double>&);
template bool lu_factor(LuWorkspace<std::complex<double>>&);
template void lu_solve_factored(const LuWorkspace<double>&, const std::vector<double>&,
                                std::vector<double>&);
template void lu_solve_factored(const LuWorkspace<std::complex<double>>&,
                                const std::vector<std::complex<double>>&,
                                std::vector<std::complex<double>>&);
template void lu_solve_factored_transposed(const LuWorkspace<double>&, const std::vector<double>&,
                                           std::vector<double>&);
template void lu_solve_factored_transposed(const LuWorkspace<std::complex<double>>&,
                                           const std::vector<std::complex<double>>&,
                                           std::vector<std::complex<double>>&);
template class LuDecomposition<double>;
template class LuDecomposition<std::complex<double>>;
template std::vector<double> lu_solve(Matrix<double>, const std::vector<double>&);
template std::vector<std::complex<double>> lu_solve(Matrix<std::complex<double>>,
                                                    const std::vector<std::complex<double>>&);

}  // namespace maopt::linalg
