#include "linalg/cholesky.hpp"

#include <cmath>
#include <stdexcept>

namespace maopt::linalg {

Cholesky::Cholesky(const Mat& a) {
  if (a.rows() != a.cols()) throw std::invalid_argument("Cholesky: matrix must be square");
  const std::size_t n = a.rows();
  l_.resize(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l_(i, k) * l_(j, k);
      if (i == j) {
        if (s <= 0.0) throw std::runtime_error("Cholesky: matrix not positive definite");
        l_(i, i) = std::sqrt(s);
      } else {
        l_(i, j) = s / l_(j, j);
      }
    }
  }
}

Vec Cholesky::solve_lower(const Vec& b) const {
  const std::size_t n = size();
  if (b.size() != n) throw std::invalid_argument("Cholesky solve: dimension mismatch");
  Vec y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= l_(i, k) * y[k];
    y[i] = s / l_(i, i);
  }
  return y;
}

Vec Cholesky::solve(const Vec& b) const {
  Vec y = solve_lower(b);
  const std::size_t n = size();
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= l_(k, ii) * y[k];
    y[ii] = s / l_(ii, ii);
  }
  return y;
}

double Cholesky::log_determinant() const {
  double s = 0.0;
  for (std::size_t i = 0; i < size(); ++i) s += std::log(l_(i, i));
  return 2.0 * s;
}

}  // namespace maopt::linalg
