// Dense row-major matrix / vector types shared by the neural-network stack
// (real), the MNA circuit solver (real for DC/transient, complex for AC),
// and the Gaussian-process baseline (real, SPD systems).
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <vector>

#include "common/check.hpp"

namespace maopt::linalg {

using Vec = std::vector<double>;
using CVec = std::vector<std::complex<double>>;

template <typename T>
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, T fill = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}
  Matrix(std::size_t rows, std::size_t cols, std::initializer_list<T> values)
      : rows_(rows), cols_(cols), data_(values) {
    MAOPT_CHECK(data_.size() == rows * cols, "Matrix: initializer size != rows * cols");
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  T& operator()(std::size_t r, std::size_t c) {
    MAOPT_DCHECK(r < rows_ && c < cols_, "Matrix: index out of range");
    return data_[r * cols_ + c];
  }
  const T& operator()(std::size_t r, std::size_t c) const {
    MAOPT_DCHECK(r < rows_ && c < cols_, "Matrix: index out of range");
    return data_[r * cols_ + c];
  }

  /// Bounds-checked element access: like operator() but the range check is
  /// compiled into every build flavor (throws ContractViolation). Use on
  /// cold paths and anywhere indices come from external input.
  T& at(std::size_t r, std::size_t c) {
    MAOPT_CHECK(r < rows_ && c < cols_, "Matrix::at: index out of range");
    return data_[r * cols_ + c];
  }
  const T& at(std::size_t r, std::size_t c) const {
    MAOPT_CHECK(r < rows_ && c < cols_, "Matrix::at: index out of range");
    return data_[r * cols_ + c];
  }

  std::span<T> row(std::size_t r) {
    MAOPT_DCHECK(r < rows_, "Matrix::row: index out of range");
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const T> row(std::size_t r) const {
    MAOPT_DCHECK(r < rows_, "Matrix::row: index out of range");
    return {data_.data() + r * cols_, cols_};
  }

  std::vector<T>& data() { return data_; }
  const std::vector<T>& data() const { return data_; }

  void fill(T value) { data_.assign(data_.size(), value); }
  void resize(std::size_t rows, std::size_t cols, T fill = T{}) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, fill);
    ++generation_;
  }
  /// Reshape without clearing retained elements; reuses capacity, so a
  /// buffer reshaped to the same (or smaller) size never reallocates.
  /// Contents are unspecified — callers must overwrite every entry.
  void ensure_shape(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
    ++generation_;
  }

  /// Buffer-reuse generation: bumped by every reshape (ensure_shape /
  /// resize), i.e. whenever previously read contents become unspecified.
  /// Consumers that borrow a matrix across calls (Linear's forward input)
  /// snapshot this and verify it unchanged when they finally read — the
  /// machine-checked form of the "keep the input alive until backward"
  /// lifetime contract in nn/layer.hpp.
  std::uint64_t generation() const { return generation_; }

  static Matrix identity(std::size_t n) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = T{1};
    return m;
  }

  Matrix transposed() const {
    Matrix t(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r)
      for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
    return t;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
  std::uint64_t generation_ = 0;
};

using Mat = Matrix<double>;
using CMat = Matrix<std::complex<double>>;

/// C = A * B.
template <typename T>
Matrix<T> matmul(const Matrix<T>& a, const Matrix<T>& b);

/// y = A * x.
template <typename T>
std::vector<T> matvec(const Matrix<T>& a, const std::vector<T>& x);

/// y = A^T * x (without materializing the transpose).
template <typename T>
std::vector<T> matvec_transposed(const Matrix<T>& a, const std::vector<T>& x);

// --- Vector helpers (double) ---
double dot(std::span<const double> a, std::span<const double> b);
double norm2(std::span<const double> a);
double norm_inf(std::span<const double> a);
/// a += s * b
void axpy(double s, std::span<const double> b, std::span<double> a);

extern template class Matrix<double>;
extern template class Matrix<std::complex<double>>;
extern template Matrix<double> matmul(const Matrix<double>&, const Matrix<double>&);
extern template Matrix<std::complex<double>> matmul(const Matrix<std::complex<double>>&,
                                                    const Matrix<std::complex<double>>&);
extern template std::vector<double> matvec(const Matrix<double>&, const std::vector<double>&);
extern template std::vector<std::complex<double>> matvec(const Matrix<std::complex<double>>&,
                                                         const std::vector<std::complex<double>>&);
extern template std::vector<double> matvec_transposed(const Matrix<double>&,
                                                      const std::vector<double>&);

}  // namespace maopt::linalg
