// Cache-blocked dense GEMM kernels for the neural-network training hot path.
//
// The naive matmul in matrix.cpp streams all of B through cache for every
// row of A; at the sizes the critic/actor MLPs use (batch x 100 x 100 and
// larger near-sampling batches) that is memory-bound. The kernels here tile
// the i-k-j loop nest so a panel of B rows stays resident while four A
// scalars at a time are broadcast against it, and every kernel *accumulates*
// into a caller-owned C so the surrounding code can reuse buffers instead of
// constructing fresh matrices per call.
//
// Three transpose variants cover the whole backprop triangle without ever
// materializing a transpose:
//   gemm_nn: C += A B        (forward:  Y += X W)
//   gemm_tn: C += A^T B      (weights:  dW += X^T dY)
//   gemm_nt: C += A B^T      (inputs:   dX += dY W^T)
#pragma once

#include <cstddef>

#include "linalg/matrix.hpp"

namespace maopt {
class ThreadPool;
}

namespace maopt::linalg {

/// C (m x n) += A (m x k) * B (k x n); all row-major, C pre-sized.
void gemm_nn(std::size_t m, std::size_t n, std::size_t k, const double* a, const double* b,
             double* c);

/// C (m x n) += A^T * B where A is stored (k x m) row-major.
void gemm_tn(std::size_t m, std::size_t n, std::size_t k, const double* a, const double* b,
             double* c);

/// C (m x n) += A * B^T where B is stored (n x k) row-major.
void gemm_nt(std::size_t m, std::size_t n, std::size_t k, const double* a, const double* b,
             double* c);

/// c = a * b via the blocked serial kernel; c is reshaped (capacity reused).
void matmul_blocked(const Mat& a, const Mat& b, Mat& c);
Mat matmul_blocked(const Mat& a, const Mat& b);

/// Below this many FLOPs (2*m*n*k) a parallel dispatch costs more than it
/// saves and matmul_parallel falls back to the serial blocked kernel.
inline constexpr double kParallelMinFlops = 4e6;

/// c = a * b with row panels of A split across `pool`. Falls back to the
/// serial blocked kernel for small shapes (see `min_flops`) or a 1-worker
/// pool. Results are identical to matmul_blocked for every thread count.
void matmul_parallel(const Mat& a, const Mat& b, Mat& c, ThreadPool& pool,
                     double min_flops = kParallelMinFlops);
Mat matmul_parallel(const Mat& a, const Mat& b, ThreadPool& pool,
                    double min_flops = kParallelMinFlops);

}  // namespace maopt::linalg
