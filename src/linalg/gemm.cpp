#include "linalg/gemm.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/thread_pool.hpp"
#include "common/thread_annotations.hpp"
#include "linalg/dispatch.hpp"

namespace maopt::linalg {

namespace {

// Tile sizes: a kRowsTile x kDepthTile panel of A (32 KB) plus a
// kDepthTile x kColsTile panel of B (128 KB) fit in L2, while the
// kColsTile-wide C/B row segments the inner loop touches stay in L1.
constexpr std::size_t kRowsTile = 64;
constexpr std::size_t kDepthTile = 64;
constexpr std::size_t kColsTile = 256;

}  // namespace

// Dispatch rationale lives in linalg/dispatch.hpp (shared with lu.cpp and
// the AC sweep combine kernel).
#define MAOPT_GEMM_CLONES MAOPT_TARGET_CLONES

namespace {
// Shared precondition of the three raw kernels: when any work is implied,
// all panels must be real memory (a null here was silent UB before).
inline void dcheck_gemm_args(std::size_t m, std::size_t n, std::size_t k, const double* a,
                             const double* b, const double* c) {
  MAOPT_DCHECK(m == 0 || n == 0 || k == 0 || (a != nullptr && b != nullptr && c != nullptr),
               "gemm: null operand with nonzero extents");
  (void)m;
  (void)n;
  (void)k;
  (void)a;
  (void)b;
  (void)c;
}
}  // namespace

MAOPT_GEMM_CLONES
MAOPT_HOT void gemm_nn(std::size_t m, std::size_t n, std::size_t k, const double* a, const double* b,
             double* c) {
  dcheck_gemm_args(m, n, k, a, b, c);
  for (std::size_t jj = 0; jj < n; jj += kColsTile) {
    const std::size_t jend = std::min(n, jj + kColsTile);
    for (std::size_t kk = 0; kk < k; kk += kDepthTile) {
      const std::size_t kend = std::min(k, kk + kDepthTile);
      for (std::size_t ii = 0; ii < m; ii += kRowsTile) {
        const std::size_t iend = std::min(m, ii + kRowsTile);
        std::size_t i = ii;
        // 2x4 register micro-kernel: two C rows retire four rank-1 updates
        // per pass, so each quartet of B-row loads feeds sixteen flops.
        for (; i + 2 <= iend; i += 2) {
          const double* arow0 = a + i * k;
          const double* arow1 = arow0 + k;
          double* crow0 = c + i * n;
          double* crow1 = crow0 + n;
          std::size_t p = kk;
          for (; p + 4 <= kend; p += 4) {
            const double a00 = arow0[p], a01 = arow0[p + 1], a02 = arow0[p + 2],
                         a03 = arow0[p + 3];
            const double a10 = arow1[p], a11 = arow1[p + 1], a12 = arow1[p + 2],
                         a13 = arow1[p + 3];
            const double* b0 = b + p * n;
            const double* b1 = b0 + n;
            const double* b2 = b1 + n;
            const double* b3 = b2 + n;
            for (std::size_t j = jj; j < jend; ++j) {
              const double bv0 = b0[j], bv1 = b1[j], bv2 = b2[j], bv3 = b3[j];
              crow0[j] += a00 * bv0 + a01 * bv1 + a02 * bv2 + a03 * bv3;
              crow1[j] += a10 * bv0 + a11 * bv1 + a12 * bv2 + a13 * bv3;
            }
          }
          for (; p < kend; ++p) {
            const double a0 = arow0[p], a1 = arow1[p];
            const double* bp = b + p * n;
            for (std::size_t j = jj; j < jend; ++j) {
              crow0[j] += a0 * bp[j];
              crow1[j] += a1 * bp[j];
            }
          }
        }
        for (; i < iend; ++i) {
          const double* arow = a + i * k;
          double* crow = c + i * n;
          std::size_t p = kk;
          for (; p + 4 <= kend; p += 4) {
            const double a0 = arow[p], a1 = arow[p + 1], a2 = arow[p + 2], a3 = arow[p + 3];
            const double* b0 = b + p * n;
            const double* b1 = b0 + n;
            const double* b2 = b1 + n;
            const double* b3 = b2 + n;
            for (std::size_t j = jj; j < jend; ++j)
              crow[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
          }
          for (; p < kend; ++p) {
            const double ap = arow[p];
            const double* bp = b + p * n;
            for (std::size_t j = jj; j < jend; ++j) crow[j] += ap * bp[j];
          }
        }
      }
    }
  }
}

MAOPT_GEMM_CLONES
MAOPT_HOT void gemm_tn(std::size_t m, std::size_t n, std::size_t k, const double* a, const double* b,
             double* c) {
  dcheck_gemm_args(m, n, k, a, b, c);
  // A is (k x m): column i of A^T is the stride-m column i of A.
  for (std::size_t kk = 0; kk < k; kk += kDepthTile) {
    const std::size_t kend = std::min(k, kk + kDepthTile);
    for (std::size_t ii = 0; ii < m; ii += kRowsTile) {
      const std::size_t iend = std::min(m, ii + kRowsTile);
      std::size_t i = ii;
      // Same 2x4 micro-kernel as gemm_nn; the A columns i and i+1 sit next
      // to each other in memory, so the strided loads pair up naturally.
      for (; i + 2 <= iend; i += 2) {
        double* crow0 = c + i * n;
        double* crow1 = crow0 + n;
        std::size_t p = kk;
        for (; p + 4 <= kend; p += 4) {
          const double a00 = a[p * m + i], a10 = a[p * m + i + 1];
          const double a01 = a[(p + 1) * m + i], a11 = a[(p + 1) * m + i + 1];
          const double a02 = a[(p + 2) * m + i], a12 = a[(p + 2) * m + i + 1];
          const double a03 = a[(p + 3) * m + i], a13 = a[(p + 3) * m + i + 1];
          const double* b0 = b + p * n;
          const double* b1 = b0 + n;
          const double* b2 = b1 + n;
          const double* b3 = b2 + n;
          for (std::size_t j = 0; j < n; ++j) {
            const double bv0 = b0[j], bv1 = b1[j], bv2 = b2[j], bv3 = b3[j];
            crow0[j] += a00 * bv0 + a01 * bv1 + a02 * bv2 + a03 * bv3;
            crow1[j] += a10 * bv0 + a11 * bv1 + a12 * bv2 + a13 * bv3;
          }
        }
        for (; p < kend; ++p) {
          const double a0 = a[p * m + i], a1 = a[p * m + i + 1];
          const double* bp = b + p * n;
          for (std::size_t j = 0; j < n; ++j) {
            crow0[j] += a0 * bp[j];
            crow1[j] += a1 * bp[j];
          }
        }
      }
      for (; i < iend; ++i) {
        double* crow = c + i * n;
        std::size_t p = kk;
        for (; p + 4 <= kend; p += 4) {
          const double a0 = a[p * m + i];
          const double a1 = a[(p + 1) * m + i];
          const double a2 = a[(p + 2) * m + i];
          const double a3 = a[(p + 3) * m + i];
          const double* b0 = b + p * n;
          const double* b1 = b0 + n;
          const double* b2 = b1 + n;
          const double* b3 = b2 + n;
          for (std::size_t j = 0; j < n; ++j)
            crow[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
        }
        for (; p < kend; ++p) {
          const double ap = a[p * m + i];
          const double* bp = b + p * n;
          for (std::size_t j = 0; j < n; ++j) crow[j] += ap * bp[j];
        }
      }
    }
  }
}

MAOPT_GEMM_CLONES
MAOPT_HOT void gemm_nt(std::size_t m, std::size_t n, std::size_t k, const double* a, const double* b,
             double* c) {
  dcheck_gemm_args(m, n, k, a, b, c);
  // c(i, j) = dot(A.row(i), B.row(j)): both operands contiguous. A 2x4 block
  // of dot products per pass shares each quartet of B loads between two A
  // rows, halving the streamed bytes per flop.
  std::size_t i = 0;
  for (; i + 2 <= m; i += 2) {
    const double* arow0 = a + i * k;
    const double* arow1 = arow0 + k;
    double* crow0 = c + i * n;
    double* crow1 = crow0 + n;
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const double* b0 = b + j * k;
      const double* b1 = b0 + k;
      const double* b2 = b1 + k;
      const double* b3 = b2 + k;
      double s00 = 0.0, s01 = 0.0, s02 = 0.0, s03 = 0.0;
      double s10 = 0.0, s11 = 0.0, s12 = 0.0, s13 = 0.0;
      for (std::size_t p = 0; p < k; ++p) {
        const double a0 = arow0[p], a1 = arow1[p];
        const double bv0 = b0[p], bv1 = b1[p], bv2 = b2[p], bv3 = b3[p];
        s00 += a0 * bv0;
        s01 += a0 * bv1;
        s02 += a0 * bv2;
        s03 += a0 * bv3;
        s10 += a1 * bv0;
        s11 += a1 * bv1;
        s12 += a1 * bv2;
        s13 += a1 * bv3;
      }
      crow0[j] += s00;
      crow0[j + 1] += s01;
      crow0[j + 2] += s02;
      crow0[j + 3] += s03;
      crow1[j] += s10;
      crow1[j + 1] += s11;
      crow1[j + 2] += s12;
      crow1[j + 3] += s13;
    }
    for (; j < n; ++j) {
      const double* brow = b + j * k;
      double s0 = 0.0, s1 = 0.0;
      for (std::size_t p = 0; p < k; ++p) {
        s0 += arow0[p] * brow[p];
        s1 += arow1[p] * brow[p];
      }
      crow0[j] += s0;
      crow1[j] += s1;
    }
  }
  for (; i < m; ++i) {
    const double* arow = a + i * k;
    double* crow = c + i * n;
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const double* b0 = b + j * k;
      const double* b1 = b0 + k;
      const double* b2 = b1 + k;
      const double* b3 = b2 + k;
      double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
      for (std::size_t p = 0; p < k; ++p) {
        const double ap = arow[p];
        s0 += ap * b0[p];
        s1 += ap * b1[p];
        s2 += ap * b2[p];
        s3 += ap * b3[p];
      }
      crow[j] += s0;
      crow[j + 1] += s1;
      crow[j + 2] += s2;
      crow[j + 3] += s3;
    }
    for (; j < n; ++j) {
      const double* brow = b + j * k;
      double s = 0.0;
      for (std::size_t p = 0; p < k; ++p) s += arow[p] * brow[p];
      crow[j] += s;
    }
  }
}

void matmul_blocked(const Mat& a, const Mat& b, Mat& c) {
  MAOPT_CHECK(a.cols() == b.rows(), "matmul_blocked: dimension mismatch");
  MAOPT_CHECK(&c != &a && &c != &b, "matmul_blocked: c must not alias an operand");
  c.ensure_shape(a.rows(), b.cols());
  c.fill(0.0);
  gemm_nn(a.rows(), b.cols(), a.cols(), a.data().data(), b.data().data(), c.data().data());
}

Mat matmul_blocked(const Mat& a, const Mat& b) {
  Mat c;
  matmul_blocked(a, b, c);
  return c;
}

void matmul_parallel(const Mat& a, const Mat& b, Mat& c, ThreadPool& pool, double min_flops) {
  MAOPT_CHECK(a.cols() == b.rows(), "matmul_parallel: dimension mismatch");
  MAOPT_CHECK(&c != &a && &c != &b, "matmul_parallel: c must not alias an operand");
  const std::size_t m = a.rows(), n = b.cols(), k = a.cols();
  const double flops = 2.0 * static_cast<double>(m) * static_cast<double>(n) *
                       static_cast<double>(k);
  if (pool.size() <= 1 || m < 2 || flops < min_flops) {
    matmul_blocked(a, b, c);
    return;
  }
  c.ensure_shape(m, n);
  c.fill(0.0);
  const std::size_t panels = std::min(m, pool.size());
  const std::size_t rows_per_panel = (m + panels - 1) / panels;
  pool.parallel_for(panels, [&](std::size_t p) {
    const std::size_t lo = p * rows_per_panel;
    const std::size_t hi = std::min(m, lo + rows_per_panel);
    if (lo >= hi) return;
    // Each panel owns C rows [lo, hi) — disjoint writes, no synchronization.
    gemm_nn(hi - lo, n, k, a.data().data() + lo * k, b.data().data(), c.data().data() + lo * n);
  });
}

Mat matmul_parallel(const Mat& a, const Mat& b, ThreadPool& pool, double min_flops) {
  Mat c;
  matmul_parallel(a, b, c, pool, min_flops);
  return c;
}

}  // namespace maopt::linalg
