// Particle swarm optimization over the FoM — the paper's related-work
// population baseline (ref. [7]: "Analog circuit sizing via swarm
// intelligence"). Canonical gbest PSO with inertia weight and clamped
// velocities; the swarm is seeded from the best designs of the shared
// initial set so every method starts from the same information.
#pragma once

#include "core/optimizer.hpp"

namespace maopt::core {

struct PsoConfig {
  std::size_t swarm_size = 10;
  double inertia = 0.72;
  double cognitive = 1.49;  ///< c1
  double social = 1.49;     ///< c2
  double v_max_frac = 0.25;  ///< velocity clamp as a fraction of each range
};

class PsoOptimizer final : public Optimizer {
 public:
  explicit PsoOptimizer(PsoConfig config = {}) : config_(config) {}

  std::string name() const override { return "PSO"; }

 protected:
  RunHistory do_run(const SizingProblem& problem, const std::vector<SimRecord>& initial,
                    const FomEvaluator& fom, const RunOptions& options,
                    obs::RunTelemetry& telemetry) override;

 private:
  PsoConfig config_;
};

}  // namespace maopt::core
