#include "core/pseudo_samples.hpp"

#include <stdexcept>

namespace maopt::core {

PseudoSampleBatcher::PseudoSampleBatcher(const std::vector<SimRecord>& records,
                                         const nn::RangeScaler& scaler)
    : records_(&records), scaler_(&scaler) {
  if (records.empty()) throw std::invalid_argument("PseudoSampleBatcher: empty population");
}

void PseudoSampleBatcher::sample(std::size_t batch, Rng& rng, nn::Mat& x, nn::Mat& y) const {
  const auto& recs = *records_;
  const std::size_t n = recs.size();
  const std::size_t d = recs.front().x.size();
  const std::size_t m1 = recs.front().metrics.size();
  x.resize(batch, 2 * d);
  y.resize(batch, m1);
  for (std::size_t k = 0; k < batch; ++k) {
    const auto i = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    const auto j = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    const Vec ui = scaler_->to_unit(recs[i].x);
    const Vec uj = scaler_->to_unit(recs[j].x);
    auto row = x.row(k);
    for (std::size_t c = 0; c < d; ++c) {
      row[c] = ui[c];
      row[d + c] = uj[c] - ui[c];
    }
    auto yrow = y.row(k);
    for (std::size_t c = 0; c < m1; ++c) yrow[c] = recs[j].metrics[c];
  }
}

}  // namespace maopt::core
