#include "core/pseudo_samples.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace maopt::core {

PseudoSampleBatcher::PseudoSampleBatcher(const std::vector<SimRecord>& records,
                                         const nn::RangeScaler& scaler) {
  MAOPT_CHECK(!records.empty(), "PseudoSampleBatcher: empty population");
  const std::size_t n = records.size();
  const std::size_t d = records.front().x.size();
  const std::size_t m1 = records.front().metrics.size();
  MAOPT_CHECK(d > 0 && m1 > 0, "PseudoSampleBatcher: zero-dimensional records");
  unit_.ensure_shape(n, d);
  metrics_.ensure_shape(n, m1);
  for (std::size_t i = 0; i < n; ++i) {
    MAOPT_CHECK(records[i].x.size() == d && records[i].metrics.size() == m1,
                "PseudoSampleBatcher: inconsistent record dimensions");
    const Vec u = scaler.to_unit(records[i].x);
    std::copy(u.begin(), u.end(), unit_.row(i).begin());
    std::copy(records[i].metrics.begin(), records[i].metrics.end(), metrics_.row(i).begin());
  }
}

void PseudoSampleBatcher::sample(std::size_t batch, Rng& rng, nn::Mat& x, nn::Mat& y) const {
  MAOPT_CHECK(batch > 0, "PseudoSampleBatcher::sample: batch must be >= 1");
  const std::size_t n = unit_.rows();
  const std::size_t d = unit_.cols();
  const std::size_t m1 = metrics_.cols();
  x.ensure_shape(batch, 2 * d);
  y.ensure_shape(batch, m1);
  for (std::size_t k = 0; k < batch; ++k) {
    const auto i = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    const auto j = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    const auto ui = unit_.row(i);
    const auto uj = unit_.row(j);
    auto row = x.row(k);
    for (std::size_t c = 0; c < d; ++c) {
      row[c] = ui[c];
      row[d + c] = uj[c] - ui[c];
    }
    const auto mj = metrics_.row(j);
    std::copy(mj.begin(), mj.end(), y.row(k).begin());
  }
}

}  // namespace maopt::core
