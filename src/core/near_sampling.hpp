// Near-sampling method (paper Algorithm 2, Fig. 3): dense uniform sampling
// in a small box around the best design found so far, ranked entirely by the
// critic; only the predicted-best sample is simulated. Exploitation
// counterpart to the exploratory actor-critic iterations.
#pragma once

#include "circuits/fom.hpp"
#include "core/critic.hpp"
#include "nn/normalizer.hpp"

namespace maopt::core {

struct NearSamplingConfig {
  int num_samples = 2000;    ///< N_samples (paper: 2000)
  double delta_frac = 0.02;  ///< delta_i as a fraction of each parameter's range
};

/// Returns the critic-predicted best design (raw units, clipped to bounds)
/// among `num_samples` draws in [x_opt - delta, x_opt + delta].
Vec near_sampling_candidate(const ckt::SizingProblem& problem, const FomEvaluator& fom,
                            Surrogate& critic, const nn::RangeScaler& scaler, const Vec& x_opt_raw,
                            const NearSamplingConfig& config, Rng& rng);

}  // namespace maopt::core
