// Shared bookkeeping for optimization runs: every simulated design is a
// SimRecord; a RunHistory stores them in simulation order together with the
// best-FoM-so-far trajectory (Fig. 5) and wall-clock breakdowns (the
// runtime rows of Tables II/IV/VI and the Section III-C analysis).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "circuits/fom.hpp"
#include "circuits/sizing_problem.hpp"
#include "common/rng.hpp"

namespace maopt::core {

using ckt::FomEvaluator;
using ckt::SizingProblem;
using linalg::Vec;

struct SimRecord {
  Vec x;
  Vec metrics;
  double fom = 0.0;
  bool feasible = false;
  bool simulation_ok = false;
};

struct RunHistory {
  std::string algorithm;
  std::vector<SimRecord> records;      ///< simulation order, initial samples first
  std::vector<double> best_fom_after;  ///< best FoM after each *post-initial* simulation
  std::size_t num_initial = 0;

  double wall_seconds = 0.0;   ///< total optimization wall clock (excl. initial sampling)
  double sim_seconds = 0.0;    ///< time inside SizingProblem::evaluate
  double train_seconds = 0.0;  ///< critic + actor training time
  double ns_seconds = 0.0;     ///< near-sampling scan time

  /// Record with the lowest FoM (feasibility folds into FoM by construction).
  const SimRecord* best() const;
  /// Best record that satisfies all constraints; nullptr if none.
  const SimRecord* best_feasible() const;
  /// Number of post-initial simulations performed.
  std::size_t simulations_used() const { return records.size() - num_initial; }
};

/// Evaluates `n` uniform random designs (the paper's X_init protocol:
/// 100 random designs simulated once and shared across all methods).
std::vector<SimRecord> sample_initial_set(const SizingProblem& problem, std::size_t n, Rng& rng);

/// Latin-hypercube variant: per dimension, one sample in each of n equal
/// strata (randomly permuted) — better space coverage than i.i.d. uniform
/// at the same budget. Integer parameters are rounded afterwards.
std::vector<SimRecord> sample_initial_set_lhs(const SizingProblem& problem, std::size_t n,
                                              Rng& rng);

/// Fills fom / feasible fields using `fom` (initial records are created
/// before the FoM reference exists).
void annotate_foms(std::vector<SimRecord>& records, const SizingProblem& problem,
                   const FomEvaluator& fom);

/// Abstract optimizer: consumes a pre-evaluated initial set and a simulation
/// budget, produces the full run history. Implementations: MaOptimizer
/// (DNN-Opt / MA-Opt variants), BoOptimizer, RandomSearch.
class Optimizer {
 public:
  virtual ~Optimizer() = default;
  virtual std::string name() const = 0;
  virtual RunHistory run(const SizingProblem& problem, const std::vector<SimRecord>& initial,
                         const FomEvaluator& fom, std::uint64_t seed,
                         std::size_t simulation_budget) = 0;
};

}  // namespace maopt::core
