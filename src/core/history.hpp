// Shared bookkeeping for optimization runs: every simulated design is a
// SimRecord; a RunHistory stores them in simulation order together with the
// best-FoM-so-far trajectory (Fig. 5) and wall-clock breakdowns (the
// runtime rows of Tables II/IV/VI and the Section III-C analysis).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "circuits/fom.hpp"
#include "circuits/sizing_problem.hpp"
#include "common/rng.hpp"

namespace maopt::core {

using ckt::FomEvaluator;
using ckt::SizingProblem;
using linalg::Vec;

struct SimRecord {
  Vec x;
  Vec metrics;
  double fom = 0.0;
  bool feasible = false;
  bool simulation_ok = false;
  /// Robustness provenance, copied from EvalResult when the problem is a
  /// corner / Monte Carlo sweep (variation_sweep.hpp): variants_total = 0
  /// marks a plain single-point simulation; degraded marks an aggregate
  /// shaped by a partial-failure policy. Persisted in checkpoints (format
  /// v2) so resumed runs keep their failure provenance.
  bool degraded = false;
  std::uint32_t variants_failed = 0;
  std::uint32_t variants_total = 0;
};

struct RunHistory {
  std::string algorithm;
  std::vector<SimRecord> records;      ///< simulation order, initial samples first
  std::vector<double> best_fom_after;  ///< best FoM after each *post-initial* simulation
  std::size_t num_initial = 0;

  double wall_seconds = 0.0;   ///< total optimization wall clock (excl. initial sampling)
  double sim_seconds = 0.0;    ///< time inside SizingProblem::evaluate
  double train_seconds = 0.0;  ///< critic + actor training time
  double ns_seconds = 0.0;     ///< near-sampling scan time

  bool aborted = false;      ///< circuit breaker tripped; the history is partial
  std::string abort_reason;  ///< human-readable cause when aborted

  /// Record with the lowest FoM (feasibility folds into FoM by construction).
  /// Failed simulations carry a penalty FoM and are skipped, so the result
  /// is safe to use as a near-sampling anchor; nullptr if every record
  /// failed (or the history is empty).
  const SimRecord* best() const;
  /// Best record that satisfies all constraints; nullptr if none.
  const SimRecord* best_feasible() const;
  /// Number of post-initial simulations performed.
  std::size_t simulations_used() const { return records.size() - num_initial; }
  /// Number of failed (simulation_ok = false) records, initial included.
  std::size_t failures() const;
};

/// Evaluates `n` uniform random designs (the paper's X_init protocol:
/// 100 random designs simulated once and shared across all methods).
std::vector<SimRecord> sample_initial_set(const SizingProblem& problem, std::size_t n, Rng& rng);

/// Latin-hypercube variant: per dimension, one sample in each of n equal
/// strata (randomly permuted) — better space coverage than i.i.d. uniform
/// at the same budget. Integer parameters are rounded afterwards.
std::vector<SimRecord> sample_initial_set_lhs(const SizingProblem& problem, std::size_t n,
                                              Rng& rng);

/// Copies the sweep provenance fields (degraded / variants_failed /
/// variants_total) from an evaluation result into a record. Kept out of
/// annotate_record so every record-construction site — serial, pooled, and
/// the service batch path — applies it uniformly right where the EvalResult
/// is consumed.
void copy_provenance(SimRecord& record, const ckt::EvalResult& eval);

/// Fills fom / feasible for one record, scrubbing failures: when the
/// simulation failed or produced non-finite metrics or a non-finite FoM, the
/// metrics are replaced by problem.failure_metrics(), the FoM by the finite
/// penalty FoM of those metrics, and the record is marked
/// simulation_ok = false / infeasible. Returns true for a clean simulation.
bool annotate_record(SimRecord& record, const SizingProblem& problem, const FomEvaluator& fom);

/// Fills fom / feasible fields using `fom` (initial records are created
/// before the FoM reference exists). Applies annotate_record per record, so
/// NaN/Inf metrics never survive into a history.
void annotate_foms(std::vector<SimRecord>& records, const SizingProblem& problem,
                   const FomEvaluator& fom);

/// Evaluates `x`, capturing solver exceptions: a throw from
/// SizingProblem::evaluate becomes a {failure_metrics, simulation_ok=false}
/// record instead of propagating (fom / feasible are left for
/// annotate_record). Safe to call from parallel_for workers.
SimRecord evaluate_record(const SizingProblem& problem, Vec x);

}  // namespace maopt::core
