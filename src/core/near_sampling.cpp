#include "core/near_sampling.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace maopt::core {

Vec near_sampling_candidate(const ckt::SizingProblem& problem, const FomEvaluator& fom,
                            Surrogate& critic, const nn::RangeScaler& scaler, const Vec& x_opt_raw,
                            const NearSamplingConfig& config, Rng& rng) {
  const std::size_t d = problem.dim();
  MAOPT_CHECK(x_opt_raw.size() == d, "near_sampling: x_opt dimension != problem dim");
  MAOPT_CHECK(critic.dim() == d, "near_sampling: critic dimension != problem dim");
  MAOPT_CHECK(config.num_samples >= 1, "near_sampling: num_samples must be >= 1");
  MAOPT_CHECK(config.delta_frac > 0.0, "near_sampling: delta_frac must be positive");
  const Vec& lo = problem.lower_bounds();
  const Vec& hi = problem.upper_bounds();
  const Vec x_opt_unit = scaler.to_unit(x_opt_raw);

  const auto n = static_cast<std::size_t>(config.num_samples);
  std::vector<Vec> raw_samples;
  raw_samples.reserve(n);
  nn::Mat critic_in(n, 2 * d);
  for (std::size_t k = 0; k < n; ++k) {
    Vec s(d);
    for (std::size_t i = 0; i < d; ++i) {
      const double delta = config.delta_frac * (hi[i] - lo[i]);
      s[i] = std::clamp(x_opt_raw[i] + rng.uniform(-delta, delta), lo[i], hi[i]);
    }
    s = problem.clip(std::move(s));
    const Vec su = scaler.to_unit(s);
    for (std::size_t i = 0; i < d; ++i) {
      critic_in(k, i) = x_opt_unit[i];
      critic_in(k, d + i) = su[i] - x_opt_unit[i];
    }
    raw_samples.push_back(std::move(s));
  }

  const nn::Mat raw_metrics = critic.predict(critic_in);
  std::size_t best = 0;
  double best_g = 1e300;
  for (std::size_t k = 0; k < n; ++k) {
    const double g = fom(raw_metrics.row(k));
    if (g < best_g) {
      best_g = g;
      best = k;
    }
  }
  return raw_samples[best];
}

}  // namespace maopt::core
