#include "core/optimizer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_set>
#include <utility>

#include "circuits/resilient_problem.hpp"
#include "eval/eval_service.hpp"

namespace maopt::core {

RunHistory Optimizer::run(const SizingProblem& problem, const std::vector<SimRecord>& initial,
                          const FomEvaluator& fom, const RunOptions& options) {
  obs::RunTelemetry telemetry(options.observer);
  const std::vector<SimRecord>* initial_set = &initial;
  std::vector<SimRecord> seeded;
  if (options.warm_start) {
    std::vector<SimRecord> warm = warm_start_records(problem, initial, fom, options);
    if (!warm.empty()) {
      seeded = initial;
      seeded.insert(seeded.end(), std::make_move_iterator(warm.begin()),
                    std::make_move_iterator(warm.end()));
      initial_set = &seeded;
    }
  }
  emit_run_started(telemetry, name(), problem, initial_set->size(), options);
  RunHistory history = do_run(problem, *initial_set, fom, options, telemetry);
  emit_run_finished(telemetry, history);
  return history;
}

std::vector<SimRecord> Optimizer::warm_start_records(const SizingProblem& problem,
                                                     const std::vector<SimRecord>& initial,
                                                     const FomEvaluator& fom,
                                                     const RunOptions& options) {
  const auto* service = dynamic_cast<const eval::EvalService*>(&problem);
  if (service == nullptr || options.warm_start_max == 0) return {};
  const double epsilon = service->config().quant_epsilon;

  // Designs already present in the initial set must not be duplicated: a
  // duplicate would bias the critic pseudo-pool toward them for free.
  std::unordered_set<eval::CacheKey, eval::CacheKeyHash> seen;
  seen.reserve(initial.size());
  for (const SimRecord& r : initial)
    seen.insert(eval::make_cache_key(service->fingerprint(), r.x, epsilon));

  std::vector<SimRecord> warm;
  for (eval::CachedEval& cached : service->cached()) {
    const eval::CacheKey key = eval::make_cache_key(service->fingerprint(), cached.x, epsilon);
    if (!seen.insert(key).second) continue;
    SimRecord record;
    record.x = std::move(cached.x);
    record.metrics = std::move(cached.metrics);
    record.simulation_ok = true;
    annotate_record(record, problem, fom);
    warm.push_back(std::move(record));
  }
  std::sort(warm.begin(), warm.end(),
            [](const SimRecord& a, const SimRecord& b) { return a.fom < b.fom; });
  if (warm.size() > options.warm_start_max) warm.resize(options.warm_start_max);
  return warm;
}

void Optimizer::emit_run_started(obs::RunTelemetry& telemetry, const std::string& algorithm,
                                 const SizingProblem& problem, std::size_t num_initial,
                                 const RunOptions& options) {
  if (!telemetry.enabled()) return;
  obs::RunStarted event;
  event.algorithm = algorithm;
  event.problem = problem.spec().name;
  event.seed = options.seed;
  event.simulation_budget = options.simulation_budget;
  event.num_initial = num_initial;
  event.dim = problem.dim();
  telemetry.emit(event);
}

void Optimizer::emit_run_finished(obs::RunTelemetry& telemetry, const RunHistory& history) {
  if (!telemetry.enabled()) return;
  obs::RunCounters& counters = telemetry.counters();
  counters.simulations = history.simulations_used();
  counters.failures = 0;
  for (std::size_t i = history.num_initial; i < history.records.size(); ++i)
    counters.failures += history.records[i].simulation_ok ? 0 : 1;

  obs::RunFinished event;
  event.algorithm = history.algorithm;
  event.simulations = history.simulations_used();
  event.best_fom = history.best_fom_after.empty() ? std::numeric_limits<double>::quiet_NaN()
                                                  : history.best_fom_after.back();
  event.feasible = history.best_feasible() != nullptr;
  event.aborted = history.aborted;
  event.abort_reason = history.abort_reason;
  event.wall_seconds = history.wall_seconds;
  event.counters = counters;
  telemetry.emit(event);
}

void Optimizer::emit_simulation(obs::RunTelemetry& telemetry, const SimRecord& record,
                                std::uint64_t index, std::uint64_t iteration, int lane,
                                double seconds, const SizingProblem& problem,
                                const eval::EvalOutcome* outcome) {
  if (!telemetry.enabled()) return;
  obs::SimulationCompleted event;
  event.index = index;
  event.iteration = iteration;
  event.lane = lane;
  event.ok = record.simulation_ok;
  event.feasible = record.feasible;
  event.fom = record.fom;
  event.seconds = seconds;
  eval::EvalOutcome local;
  if (outcome == nullptr && dynamic_cast<const eval::EvalService*>(&problem) != nullptr) {
    local = eval::EvalService::last_outcome();
    outcome = &local;
  }
  if (outcome != nullptr) {
    event.cache_hit = outcome->cache_hit;
    event.coalesced = outcome->coalesced;
    event.retries = outcome->call.retries;
    obs::RunCounters& counters = telemetry.counters();
    counters.retries += outcome->call.retries;
    ++(outcome->cache_hit ? counters.cache_hits : counters.cache_misses);
    if (outcome->coalesced) ++counters.cache_coalesced;
    if (!record.simulation_ok && outcome->call.failed)
      event.failure_kind = ckt::to_string(outcome->call.last_kind);
  } else if (dynamic_cast<const ckt::ResilientEvaluator*>(&problem) != nullptr) {
    const auto call = ckt::ResilientEvaluator::last_call_stats();
    event.retries = call.retries;
    telemetry.counters().retries += call.retries;
    if (!record.simulation_ok && call.failed) event.failure_kind = ckt::to_string(call.last_kind);
  }
  telemetry.emit(event);
}

void Optimizer::emit_iteration(obs::RunTelemetry& telemetry, std::uint64_t iteration,
                               std::size_t simulations_done, double best_fom, bool feasible_found,
                               double wall_seconds, std::vector<obs::PhaseSpan> spans) {
  ++telemetry.counters().iterations;
  if (!telemetry.enabled()) return;
  obs::IterationCompleted event;
  event.iteration = iteration;
  event.simulations_done = simulations_done;
  event.best_fom = best_fom;
  event.feasible_found = feasible_found;
  event.wall_seconds = wall_seconds;
  event.spans = std::move(spans);
  telemetry.emit(event);
}

}  // namespace maopt::core
