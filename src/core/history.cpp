#include "core/history.hpp"

namespace maopt::core {

const SimRecord* RunHistory::best() const {
  const SimRecord* best = nullptr;
  for (const auto& r : records)
    if (!best || r.fom < best->fom) best = &r;
  return best;
}

const SimRecord* RunHistory::best_feasible() const {
  const SimRecord* best = nullptr;
  for (const auto& r : records)
    if (r.feasible && (!best || r.metrics[0] < best->metrics[0])) best = &r;
  return best;
}

std::vector<SimRecord> sample_initial_set(const SizingProblem& problem, std::size_t n, Rng& rng) {
  std::vector<SimRecord> records;
  records.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    SimRecord r;
    r.x = problem.random_design(rng);
    const ckt::EvalResult eval = problem.evaluate(r.x);
    r.metrics = eval.metrics;
    r.simulation_ok = eval.simulation_ok;
    records.push_back(std::move(r));
  }
  return records;
}

std::vector<SimRecord> sample_initial_set_lhs(const SizingProblem& problem, std::size_t n,
                                              Rng& rng) {
  const std::size_t d = problem.dim();
  const Vec& lo = problem.lower_bounds();
  const Vec& hi = problem.upper_bounds();
  // One stratum permutation per dimension.
  std::vector<std::vector<std::size_t>> strata(d);
  for (std::size_t j = 0; j < d; ++j) {
    strata[j].resize(n);
    for (std::size_t i = 0; i < n; ++i) strata[j][i] = i;
    rng.shuffle(strata[j]);
  }
  std::vector<SimRecord> records;
  records.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Vec x(d);
    for (std::size_t j = 0; j < d; ++j) {
      const double u = (static_cast<double>(strata[j][i]) + rng.uniform()) /
                       static_cast<double>(n);
      x[j] = lo[j] + u * (hi[j] - lo[j]);
    }
    SimRecord r;
    r.x = problem.clip(std::move(x));
    const ckt::EvalResult eval = problem.evaluate(r.x);
    r.metrics = eval.metrics;
    r.simulation_ok = eval.simulation_ok;
    records.push_back(std::move(r));
  }
  return records;
}

void annotate_foms(std::vector<SimRecord>& records, const SizingProblem& problem,
                   const FomEvaluator& fom) {
  for (auto& r : records) {
    r.fom = fom(r.metrics);
    r.feasible = r.simulation_ok && problem.feasible(r.metrics);
  }
}

}  // namespace maopt::core
