#include "core/history.hpp"

#include <cmath>

namespace maopt::core {

const SimRecord* RunHistory::best() const {
  // Failed simulations carry a penalty FoM; they must never become the
  // anchor Algorithm 2 samples around, so only clean finite records count.
  const SimRecord* best = nullptr;
  for (const auto& r : records) {
    if (!r.simulation_ok || !std::isfinite(r.fom)) continue;
    if (!best || r.fom < best->fom) best = &r;
  }
  return best;
}

std::size_t RunHistory::failures() const {
  std::size_t n = 0;
  for (const auto& r : records)
    if (!r.simulation_ok) ++n;
  return n;
}

const SimRecord* RunHistory::best_feasible() const {
  const SimRecord* best = nullptr;
  for (const auto& r : records)
    if (r.feasible && (!best || r.metrics[0] < best->metrics[0])) best = &r;
  return best;
}

std::vector<SimRecord> sample_initial_set(const SizingProblem& problem, std::size_t n, Rng& rng) {
  std::vector<SimRecord> records;
  records.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    SimRecord r;
    r.x = problem.random_design(rng);
    const ckt::EvalResult eval = problem.evaluate(r.x);
    r.metrics = eval.metrics;
    r.simulation_ok = eval.simulation_ok;
    copy_provenance(r, eval);
    records.push_back(std::move(r));
  }
  return records;
}

std::vector<SimRecord> sample_initial_set_lhs(const SizingProblem& problem, std::size_t n,
                                              Rng& rng) {
  const std::size_t d = problem.dim();
  const Vec& lo = problem.lower_bounds();
  const Vec& hi = problem.upper_bounds();
  // One stratum permutation per dimension.
  std::vector<std::vector<std::size_t>> strata(d);
  for (std::size_t j = 0; j < d; ++j) {
    strata[j].resize(n);
    for (std::size_t i = 0; i < n; ++i) strata[j][i] = i;
    rng.shuffle(strata[j]);
  }
  std::vector<SimRecord> records;
  records.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Vec x(d);
    for (std::size_t j = 0; j < d; ++j) {
      const double u = (static_cast<double>(strata[j][i]) + rng.uniform()) /
                       static_cast<double>(n);
      x[j] = lo[j] + u * (hi[j] - lo[j]);
    }
    SimRecord r;
    r.x = problem.clip(std::move(x));
    const ckt::EvalResult eval = problem.evaluate(r.x);
    r.metrics = eval.metrics;
    r.simulation_ok = eval.simulation_ok;
    copy_provenance(r, eval);
    records.push_back(std::move(r));
  }
  return records;
}

void copy_provenance(SimRecord& record, const ckt::EvalResult& eval) {
  record.degraded = eval.degraded;
  record.variants_failed = eval.variants_failed;
  record.variants_total = eval.variants_total;
}

bool annotate_record(SimRecord& record, const SizingProblem& problem, const FomEvaluator& fom) {
  bool ok = record.simulation_ok && record.metrics.size() == problem.num_metrics();
  for (std::size_t i = 0; ok && i < record.metrics.size(); ++i)
    ok = std::isfinite(record.metrics[i]);
  if (ok) {
    record.fom = fom(record.metrics);
    ok = std::isfinite(record.fom);
  }
  if (!ok) {
    record.metrics = problem.failure_metrics();
    record.fom = fom(record.metrics);
    record.simulation_ok = false;
    record.feasible = false;
    return false;
  }
  record.feasible = problem.feasible(record.metrics);
  return true;
}

void annotate_foms(std::vector<SimRecord>& records, const SizingProblem& problem,
                   const FomEvaluator& fom) {
  for (auto& r : records) annotate_record(r, problem, fom);
}

SimRecord evaluate_record(const SizingProblem& problem, Vec x) {
  SimRecord rec;
  try {
    ckt::EvalResult eval = problem.evaluate(x);
    rec.metrics = std::move(eval.metrics);
    rec.simulation_ok = eval.simulation_ok;
    copy_provenance(rec, eval);
  } catch (...) {
    rec.metrics = problem.failure_metrics();
    rec.simulation_ok = false;
  }
  rec.x = std::move(x);
  return rec;
}

}  // namespace maopt::core
