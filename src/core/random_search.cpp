#include "core/random_search.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace maopt::core {

RunHistory RandomSearch::run(const SizingProblem& problem, const std::vector<SimRecord>& initial,
                             const FomEvaluator& fom, std::uint64_t seed,
                             std::size_t simulation_budget) {
  RunHistory history;
  history.algorithm = name();
  history.records = initial;
  history.num_initial = initial.size();
  annotate_foms(history.records, problem, fom);

  Rng rng(derive_seed(seed, 0x7A));
  Stopwatch total;
  double best = 1e300;
  for (const auto& r : history.records) best = std::min(best, r.fom);

  for (std::size_t i = 0; i < simulation_budget; ++i) {
    SimRecord rec;
    rec.x = problem.random_design(rng);
    Stopwatch sim;
    const ckt::EvalResult eval = problem.evaluate(rec.x);
    history.sim_seconds += sim.elapsed_seconds();
    rec.metrics = eval.metrics;
    rec.simulation_ok = eval.simulation_ok;
    rec.fom = fom(rec.metrics);
    rec.feasible = eval.simulation_ok && problem.feasible(rec.metrics);
    best = std::min(best, rec.fom);
    history.records.push_back(std::move(rec));
    history.best_fom_after.push_back(best);
  }
  history.wall_seconds = total.elapsed_seconds();
  return history;
}

}  // namespace maopt::core
