#include "core/random_search.hpp"

#include <algorithm>
#include <utility>

#include "common/log.hpp"

namespace maopt::core {

RunHistory RandomSearch::do_run(const SizingProblem& problem,
                                const std::vector<SimRecord>& initial, const FomEvaluator& fom,
                                const RunOptions& options, obs::RunTelemetry& telemetry) {
  RunHistory history;
  history.algorithm = name();
  history.records = initial;
  history.num_initial = initial.size();
  annotate_foms(history.records, problem, fom);

  Rng rng(derive_seed(options.seed, 0x7A));
  Stopwatch total;
  double best = 1e300;
  bool feasible_found = false;
  for (const auto& r : history.records) {
    best = std::min(best, r.fom);
    feasible_found = feasible_found || r.feasible;
  }

  // Every simulation is its own iteration: there is no training phase, so
  // the iteration event carries a single Simulate span.
  for (std::size_t i = 0; i < options.simulation_budget; ++i) {
    if (options.control != nullptr) {
      const RunControl::Signal signal = options.control->poll();
      if (signal == RunControl::Signal::Kill) {
        history.aborted = true;
        history.abort_reason = "killed";
        break;
      }
      if (signal == RunControl::Signal::Pause) break;
    }
    Stopwatch sim;
    SimRecord rec = evaluate_record(problem, problem.random_design(rng));
    const double sim_s = sim.elapsed_seconds();
    history.sim_seconds += sim_s;
    annotate_record(rec, problem, fom);
    best = std::min(best, rec.fom);
    feasible_found = feasible_found || rec.feasible;
    history.records.push_back(std::move(rec));
    history.best_fom_after.push_back(best);

    emit_simulation(telemetry, history.records.back(), i, i + 1, -1, sim_s, problem);
    std::vector<obs::PhaseSpan> spans;
    if (telemetry.enabled()) spans.push_back({obs::Phase::Simulate, -1, sim_s});
    emit_iteration(telemetry, i + 1, i + 1, best, feasible_found, sim_s, std::move(spans));
  }
  history.wall_seconds = total.elapsed_seconds();
  return history;
}

}  // namespace maopt::core
