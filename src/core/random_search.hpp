// Uniform random search — a sanity baseline (not in the paper's tables, but
// any learned method must beat it for the comparison to mean anything).
#pragma once

#include "core/history.hpp"

namespace maopt::core {

class RandomSearch final : public Optimizer {
 public:
  std::string name() const override { return "Random"; }
  RunHistory run(const SizingProblem& problem, const std::vector<SimRecord>& initial,
                 const FomEvaluator& fom, std::uint64_t seed,
                 std::size_t simulation_budget) override;
};

}  // namespace maopt::core
