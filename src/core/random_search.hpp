// Uniform random search — a sanity baseline (not in the paper's tables, but
// any learned method must beat it for the comparison to mean anything).
#pragma once

#include "core/optimizer.hpp"

namespace maopt::core {

class RandomSearch final : public Optimizer {
 public:
  std::string name() const override { return "Random"; }

 protected:
  RunHistory do_run(const SizingProblem& problem, const std::vector<SimRecord>& initial,
                    const FomEvaluator& fom, const RunOptions& options,
                    obs::RunTelemetry& telemetry) override;
};

}  // namespace maopt::core
