#include "core/history_io.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "common/thread_annotations.hpp"

namespace maopt::core {

namespace {
std::ofstream open_or_throw(const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open '" + path + "' for writing");
  return out;
}

// --- checkpoint binary primitives -----------------------------------------
// Fixed-width little-endian-as-stored POD fields; strings and vectors are
// u64 length + payload. Every read is checked so truncated or corrupted
// files fail loudly instead of yielding a garbage history.

constexpr char kCheckpointMagic[8] = {'M', 'A', 'O', 'P', 'T', 'C', 'K', 'P'};
constexpr std::uint64_t kMaxCheckpointElems = 1ULL << 32U;  ///< corruption guard

template <typename T>
void put_pod(std::ostream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

void put_string(std::ostream& out, const std::string& s) {
  put_pod<std::uint64_t>(out, s.size());
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

void put_vec(std::ostream& out, const linalg::Vec& v) {
  put_pod<std::uint64_t>(out, v.size());
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(double)));
}

template <typename T>
T get_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(value));
  if (!in) throw std::runtime_error("checkpoint: truncated file");
  return value;
}

std::uint64_t get_count(std::istream& in) {
  const auto n = get_pod<std::uint64_t>(in);
  if (n > kMaxCheckpointElems) throw std::runtime_error("checkpoint: corrupt element count");
  return n;
}

std::string get_string(std::istream& in) {
  std::string s(get_count(in), '\0');
  in.read(s.data(), static_cast<std::streamsize>(s.size()));
  if (!in) throw std::runtime_error("checkpoint: truncated file");
  return s;
}

linalg::Vec get_vec(std::istream& in) {
  linalg::Vec v(get_count(in));
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(v.size() * sizeof(double)));
  if (!in) throw std::runtime_error("checkpoint: truncated file");
  return v;
}
}  // namespace

void write_records_csv(std::ostream& out, const RunHistory& history,
                       const SizingProblem& problem) {
  out << "index,phase";
  for (const auto& name : problem.parameter_names()) out << "," << name;
  out << "," << problem.spec().target_name;
  for (const auto& c : problem.spec().constraints) out << "," << c.name;
  out << ",fom,feasible,simulation_ok\n";

  for (std::size_t i = 0; i < history.records.size(); ++i) {
    const auto& r = history.records[i];
    out << i << "," << (i < history.num_initial ? "initial" : "search");
    for (const double v : r.x) out << "," << v;
    for (const double m : r.metrics) out << "," << m;
    out << "," << r.fom << "," << (r.feasible ? 1 : 0) << "," << (r.simulation_ok ? 1 : 0)
        << "\n";
  }
}

void write_records_csv(const std::string& path, const RunHistory& history,
                       const SizingProblem& problem) {
  auto out = open_or_throw(path);
  write_records_csv(out, history, problem);
}

void write_trajectory_csv(std::ostream& out, const RunHistory& history) {
  out << "simulation,best_fom\n";
  for (std::size_t i = 0; i < history.best_fom_after.size(); ++i)
    out << (i + 1) << "," << history.best_fom_after[i] << "\n";
}

void write_trajectory_csv(const std::string& path, const RunHistory& history) {
  auto out = open_or_throw(path);
  write_trajectory_csv(out, history);
}

namespace {
/// Serializes checkpoint writes process-wide. The tmp name is derived from
/// `path` alone, so two concurrent runs checkpointing to the same path would
/// interleave writes into one tmp file and commit a torn snapshot — a latent
/// race once many runs share a process (the multi-tenant daemon). A leaf
/// lock held only for the write + rename; checkpoints are cadence-paced, so
/// contention is nil.
Mutex g_checkpoint_mutex;
}  // namespace

std::uint64_t save_checkpoint(const std::string& path, const RunHistory& history,
                              std::uint64_t seed) {
  const MutexLock io_lock(g_checkpoint_mutex);
  const std::string tmp = path + ".tmp";
  std::uint64_t bytes = 0;
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("checkpoint: cannot open '" + tmp + "' for writing");
    out.write(kCheckpointMagic, sizeof(kCheckpointMagic));
    put_pod<std::uint32_t>(out, kCheckpointFormatVersion);
    put_pod<std::uint64_t>(out, seed);
    put_string(out, history.algorithm);
    put_pod<std::uint64_t>(out, history.num_initial);
    put_pod<std::uint8_t>(out, history.aborted ? 1 : 0);
    put_string(out, history.abort_reason);
    put_pod<double>(out, history.wall_seconds);
    put_pod<double>(out, history.sim_seconds);
    put_pod<double>(out, history.train_seconds);
    put_pod<double>(out, history.ns_seconds);
    put_pod<std::uint64_t>(out, history.records.size());
    for (const auto& r : history.records) {
      put_vec(out, r.x);
      put_vec(out, r.metrics);
      put_pod<double>(out, r.fom);
      put_pod<std::uint8_t>(out, r.feasible ? 1 : 0);
      put_pod<std::uint8_t>(out, r.simulation_ok ? 1 : 0);
      put_pod<std::uint8_t>(out, r.degraded ? 1 : 0);
      put_pod<std::uint32_t>(out, r.variants_failed);
      put_pod<std::uint32_t>(out, r.variants_total);
    }
    put_pod<std::uint64_t>(out, history.best_fom_after.size());
    out.write(reinterpret_cast<const char*>(history.best_fom_after.data()),
              static_cast<std::streamsize>(history.best_fom_after.size() * sizeof(double)));
    out.flush();
    if (!out) throw std::runtime_error("checkpoint: write failed for '" + tmp + "'");
    bytes = static_cast<std::uint64_t>(out.tellp());
  }
  // The rename is the commit point: a crash before it leaves any previous
  // checkpoint untouched; after it the new snapshot is fully visible.
  if (std::rename(tmp.c_str(), path.c_str()) != 0)
    throw std::runtime_error("checkpoint: rename '" + tmp + "' -> '" + path + "' failed");
  return bytes;
}

RunCheckpoint load_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("checkpoint: cannot open '" + path + "'");
  char magic[sizeof(kCheckpointMagic)] = {};
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kCheckpointMagic, sizeof(magic)) != 0)
    throw std::runtime_error("checkpoint: '" + path + "' is not a MA-Opt checkpoint");

  RunCheckpoint ckpt;
  ckpt.version = get_pod<std::uint32_t>(in);
  if (ckpt.version != 1 && ckpt.version != kCheckpointFormatVersion)
    throw std::runtime_error("checkpoint: unsupported format version " +
                             std::to_string(ckpt.version));
  ckpt.seed = get_pod<std::uint64_t>(in);
  RunHistory& h = ckpt.history;
  h.algorithm = get_string(in);
  h.num_initial = get_pod<std::uint64_t>(in);
  h.aborted = get_pod<std::uint8_t>(in) != 0;
  h.abort_reason = get_string(in);
  h.wall_seconds = get_pod<double>(in);
  h.sim_seconds = get_pod<double>(in);
  h.train_seconds = get_pod<double>(in);
  h.ns_seconds = get_pod<double>(in);
  const std::uint64_t num_records = get_count(in);
  h.records.reserve(num_records);
  for (std::uint64_t i = 0; i < num_records; ++i) {
    SimRecord r;
    r.x = get_vec(in);
    r.metrics = get_vec(in);
    r.fom = get_pod<double>(in);
    r.feasible = get_pod<std::uint8_t>(in) != 0;
    r.simulation_ok = get_pod<std::uint8_t>(in) != 0;
    if (ckpt.version >= 2) {
      // v1 predates sweeps: its records keep the single-point defaults.
      r.degraded = get_pod<std::uint8_t>(in) != 0;
      r.variants_failed = get_pod<std::uint32_t>(in);
      r.variants_total = get_pod<std::uint32_t>(in);
    }
    h.records.push_back(std::move(r));
  }
  h.best_fom_after.resize(get_count(in));
  in.read(reinterpret_cast<char*>(h.best_fom_after.data()),
          static_cast<std::streamsize>(h.best_fom_after.size() * sizeof(double)));
  if (!in) throw std::runtime_error("checkpoint: truncated file");
  if (h.num_initial > h.records.size())
    throw std::runtime_error("checkpoint: corrupt header (num_initial > records)");
  return ckpt;
}

}  // namespace maopt::core
