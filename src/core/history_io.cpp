#include "core/history_io.hpp"

#include <fstream>
#include <ostream>
#include <stdexcept>

namespace maopt::core {

namespace {
std::ofstream open_or_throw(const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open '" + path + "' for writing");
  return out;
}
}  // namespace

void write_records_csv(std::ostream& out, const RunHistory& history,
                       const SizingProblem& problem) {
  out << "index,phase";
  for (const auto& name : problem.parameter_names()) out << "," << name;
  out << "," << problem.spec().target_name;
  for (const auto& c : problem.spec().constraints) out << "," << c.name;
  out << ",fom,feasible,simulation_ok\n";

  for (std::size_t i = 0; i < history.records.size(); ++i) {
    const auto& r = history.records[i];
    out << i << "," << (i < history.num_initial ? "initial" : "search");
    for (const double v : r.x) out << "," << v;
    for (const double m : r.metrics) out << "," << m;
    out << "," << r.fom << "," << (r.feasible ? 1 : 0) << "," << (r.simulation_ok ? 1 : 0)
        << "\n";
  }
}

void write_records_csv(const std::string& path, const RunHistory& history,
                       const SizingProblem& problem) {
  auto out = open_or_throw(path);
  write_records_csv(out, history, problem);
}

void write_trajectory_csv(std::ostream& out, const RunHistory& history) {
  out << "simulation,best_fom\n";
  for (std::size_t i = 0; i < history.best_fom_after.size(); ++i)
    out << (i + 1) << "," << history.best_fom_after[i] << "\n";
}

void write_trajectory_csv(const std::string& path, const RunHistory& history) {
  auto out = open_or_throw(path);
  write_trajectory_csv(out, history);
}

}  // namespace maopt::core
