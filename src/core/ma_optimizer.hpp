// MA-Opt (paper Algorithms 1 and 3) and its ablations, configured by
// MaOptConfig:
//   * DNN-Opt  [16]: 1 actor,            no near-sampling
//   * MA-Opt^1     : N_act actors, individual elite sets, no near-sampling
//   * MA-Opt^2     : N_act actors, shared elite set,      no near-sampling
//   * MA-Opt       : N_act actors, shared elite set,      near-sampling
//
// Per iteration (Algorithm 1): the critic is trained on pseudo-samples of
// the total design set, then each actor — concurrently on its own thread,
// with a private critic copy — trains against the critic (Eq. 5), picks the
// elite state whose proposed move has the lowest predicted FoM, and
// simulates the proposal. Once specs are met, every T_NS-th iteration runs
// the near-sampling method instead (Algorithm 3), costing one simulation
// and no actor training.
#pragma once

#include "core/actor.hpp"
#include "core/critic.hpp"
#include "core/history.hpp"
#include "core/near_sampling.hpp"

namespace maopt::core {

struct MaOptConfig {
  std::string name = "MA-Opt";
  int num_actors = 3;          ///< N_act (paper: 3)
  int num_critics = 1;         ///< >1: ensemble (paper rejects this for memory; see ablation)
  bool shared_elite_set = true;
  bool use_near_sampling = true;
  int t_ns = 5;                ///< T_NS (paper: 5)
  std::size_t elite_size = 20; ///< N_es
  NearSamplingConfig near_sampling{};  ///< N_samples = 2000 (paper)
  CriticConfig critic{};
  ActorConfig actor{};
  std::size_t num_threads = 0;  ///< 0 -> num_actors

  /// Paper configurations.
  static MaOptConfig dnn_opt();
  static MaOptConfig ma_opt1();
  static MaOptConfig ma_opt2();
  static MaOptConfig ma_opt();
};

class MaOptimizer final : public Optimizer {
 public:
  explicit MaOptimizer(MaOptConfig config = MaOptConfig::ma_opt()) : config_(std::move(config)) {}

  std::string name() const override { return config_.name; }
  const MaOptConfig& config() const { return config_; }

  RunHistory run(const SizingProblem& problem, const std::vector<SimRecord>& initial,
                 const FomEvaluator& fom, std::uint64_t seed,
                 std::size_t simulation_budget) override;

 private:
  MaOptConfig config_;
};

}  // namespace maopt::core
