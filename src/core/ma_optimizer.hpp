// MA-Opt (paper Algorithms 1 and 3) and its ablations, configured by
// MaOptConfig:
//   * DNN-Opt  [16]: 1 actor,            no near-sampling
//   * MA-Opt^1     : N_act actors, individual elite sets, no near-sampling
//   * MA-Opt^2     : N_act actors, shared elite set,      no near-sampling
//   * MA-Opt       : N_act actors, shared elite set,      near-sampling
//
// Per iteration (Algorithm 1): the critic is trained on pseudo-samples of
// the total design set, then each actor — concurrently on its own thread,
// with a private critic copy — trains against the critic (Eq. 5), picks the
// elite state whose proposed move has the lowest predicted FoM, and
// simulates the proposal. Once specs are met, every T_NS-th iteration runs
// the near-sampling method instead (Algorithm 3), costing one simulation
// and no actor training.
#pragma once

#include "core/actor.hpp"
#include "core/critic.hpp"
#include "core/history.hpp"
#include "core/history_io.hpp"
#include "core/near_sampling.hpp"
#include "core/optimizer.hpp"

namespace maopt::core {

struct MaOptConfig {
  std::string name = "MA-Opt";
  int num_actors = 3;          ///< N_act (paper: 3)
  int num_critics = 1;         ///< >1: ensemble (paper rejects this for memory; see ablation)
  bool shared_elite_set = true;
  bool use_near_sampling = true;
  int t_ns = 5;                ///< T_NS (paper: 5)
  std::size_t elite_size = 20; ///< N_es
  NearSamplingConfig near_sampling{};  ///< N_samples = 2000 (paper)
  CriticConfig critic{};
  ActorConfig actor{};
  std::size_t num_threads = 0;  ///< 0 -> num_actors

  // Fault tolerance / checkpointing (see README "Fault tolerance"). Failed
  // simulations always count against the budget (the paper budgets runs in
  // simulations, successful or not); the breaker only guards against a
  // simulator that stops producing usable results altogether.
  int max_consecutive_failures = 100;  ///< circuit breaker; 0 disables
  std::string checkpoint_path;         ///< snapshot target; empty disables
  int checkpoint_every = 0;            ///< snapshot every K iterations; 0 disables

  /// Paper configurations.
  static MaOptConfig dnn_opt();
  static MaOptConfig ma_opt1();
  static MaOptConfig ma_opt2();
  static MaOptConfig ma_opt();
};

class MaOptimizer final : public Optimizer {
 public:
  explicit MaOptimizer(MaOptConfig config = MaOptConfig::ma_opt()) : config_(std::move(config)) {}

  std::string name() const override { return config_.name; }
  const MaOptConfig& config() const { return config_; }

  /// Resumes a run from a snapshot written via MaOptConfig::checkpoint_path
  /// (or save_checkpoint): the recorded post-initial trajectory is replayed
  /// — critic/actor/elite/RNG state is rebuilt by re-running the training
  /// side deterministically while simulations are taken from the record —
  /// then the run continues live until `options.simulation_budget`
  /// (options.seed is ignored: the checkpoint carries the run's seed).
  /// Called with the same problem, FoM, config, and budget as the original
  /// run, the resumed run reproduces the uninterrupted trajectory exactly.
  /// Emits the same telemetry bracketing as run().
  RunHistory resume(const SizingProblem& problem, const RunCheckpoint& checkpoint,
                    const FomEvaluator& fom, const RunOptions& options);
  RunHistory resume(const SizingProblem& problem, const RunCheckpoint& checkpoint,
                    const FomEvaluator& fom, std::size_t simulation_budget);

 protected:
  RunHistory do_run(const SizingProblem& problem, const std::vector<SimRecord>& initial,
                    const FomEvaluator& fom, const RunOptions& options,
                    obs::RunTelemetry& telemetry) override;

 private:
  RunHistory run_impl(const SizingProblem& problem, std::vector<SimRecord> initial,
                      std::vector<SimRecord> replay, const FomEvaluator& fom, std::uint64_t seed,
                      std::size_t simulation_budget, const RunHistory* checkpoint_timers,
                      RunControl* control, obs::RunTelemetry& telemetry);

  MaOptConfig config_;
};

}  // namespace maopt::core
