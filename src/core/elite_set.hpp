// Elite solution set (paper Section II-B, Fig. 2): the N_es best designs
// simulated so far, ranked by FoM. Its bounding box restricts actor actions
// through the boundary-violation term of Eq. 5/6.
//
// The class is thread-safe so it can be *shared* across actors (the paper's
// first contribution): each of the N_act simulations of an iteration can
// refresh the shared set, versus one refresh per iteration for per-actor
// individual sets (MA-Opt^1).
#pragma once

#include <cstdint>
#include <vector>

#include "common/thread_annotations.hpp"
#include "linalg/matrix.hpp"

namespace maopt::core {

using linalg::Vec;

class EliteSet {
 public:
  struct Entry {
    Vec x;
    double fom;
    std::uint64_t hash = 0;  ///< hash_design(x) — duplicate screen
  };

  explicit EliteSet(std::size_t capacity);

  /// Inserts if the set is not full or `fom` beats the current worst.
  /// Returns true when the design entered the set. A design identical to an
  /// existing member (same hash_design + same coordinates) never occupies a
  /// second slot: with a result cache in the loop the same elite design can
  /// be re-proposed and re-reported many times, and duplicates would shrink
  /// the effective set — in the extreme collapsing its bounding box to a
  /// point. A duplicate with a better FoM re-ranks the existing member; one
  /// with an equal-or-worse FoM is rejected.
  bool try_insert(const Vec& x, double fom);

  /// Snapshot of the members (ascending FoM).
  std::vector<Entry> snapshot() const;

  /// Member with the lowest FoM. Throws if empty.
  Entry best() const;

  /// Column-wise bounding box over the members: lb_rest / ub_rest of Eq. 6.
  /// Throws if empty.
  void bounds(Vec& lower, Vec& upper) const;

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

 private:
  mutable Mutex mutex_;  ///< leaf lock: shared across actor threads, nothing acquired under it
  std::vector<Entry> entries_ MAOPT_GUARDED_BY(mutex_);  ///< kept sorted by ascending fom
  std::size_t capacity_;
};

}  // namespace maopt::core
