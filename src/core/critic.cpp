#include "core/critic.hpp"

#include "common/check.hpp"

namespace maopt::core {

namespace {
nn::Mlp make_net(std::size_t dim, std::size_t num_metrics, const CriticConfig& config, Rng& rng) {
  return nn::Mlp(2 * dim, config.hidden, num_metrics, rng, nn::Activation::Relu,
                 /*output_tanh=*/false);
}
}  // namespace

Critic::Critic(std::size_t dim, std::size_t num_metrics, const CriticConfig& config, Rng& rng)
    : dim_(dim),
      num_metrics_(num_metrics),
      config_(config),
      mlp_(make_net(dim, num_metrics, config, rng)),
      adam_(mlp_.params(), {.lr = config.learning_rate}) {}

Critic::Critic(const Critic& other)
    : dim_(other.dim_),
      num_metrics_(other.num_metrics_),
      config_(other.config_),
      mlp_(other.mlp_),
      adam_(mlp_.params(), {.lr = other.config_.learning_rate}),
      norm_(other.norm_) {}

void Critic::fit_normalizer(const std::vector<SimRecord>& records) {
  MAOPT_CHECK(!records.empty(), "Critic::fit_normalizer: empty population");
  nn::Mat metrics(records.size(), num_metrics_);
  for (std::size_t i = 0; i < records.size(); ++i) {
    MAOPT_CHECK(records[i].metrics.size() == num_metrics_,
                "Critic::fit_normalizer: record metric count != num_metrics");
    for (std::size_t j = 0; j < num_metrics_; ++j) metrics(i, j) = records[i].metrics[j];
  }
  norm_.fit(metrics);
}

double Critic::train_round(const PseudoSampleBatcher& batcher, Rng& rng) {
  MAOPT_CHECK(norm_.fitted(), "Critic::train_round: fit_normalizer must run first");
  MAOPT_CHECK(config_.batch_size > 0, "Critic::train_round: batch_size must be >= 1");
  double total = 0.0;
  for (int s = 0; s < config_.steps_per_round; ++s) {
    batcher.sample(config_.batch_size, rng, batch_x_, batch_y_raw_);
    norm_.transform_into(batch_y_raw_, batch_y_);
    const nn::Mat& pred = mlp_.forward(batch_x_);
    total += nn::mse_loss(pred, batch_y_, &batch_grad_);
    mlp_.backward_params(batch_grad_);
    adam_.step();
  }
  return total / std::max(1, config_.steps_per_round);
}

nn::Mat Critic::predict(const nn::Mat& x_dx) {
  MAOPT_CHECK(x_dx.cols() == 2 * dim_, "Critic::predict: input must be (batch x 2*dim)");
  MAOPT_CHECK(norm_.fitted(), "Critic::predict: fit_normalizer must run first");
  return norm_.inverse(mlp_.forward(x_dx));
}

Vec Critic::predict_one(const Vec& x_unit, const Vec& dx_unit) {
  nn::Mat in(1, 2 * dim_);
  for (std::size_t i = 0; i < dim_; ++i) {
    in(0, i) = x_unit[i];
    in(0, dim_ + i) = dx_unit[i];
  }
  const nn::Mat out = predict(in);
  return Vec(out.row(0).begin(), out.row(0).end());
}

nn::Mat Critic::action_gradient(const nn::Mat& d_loss_d_raw_metrics) {
  MAOPT_CHECK(d_loss_d_raw_metrics.cols() == num_metrics_,
              "Critic::action_gradient: gradient width != num_metrics");
  // Chain through the inverse z-score: raw = z * std + mean  =>  dz = draw * std.
  nn::Mat dz = d_loss_d_raw_metrics;
  const Vec& std = norm_.std();
  for (std::size_t r = 0; r < dz.rows(); ++r)
    for (std::size_t c = 0; c < dz.cols(); ++c) dz(r, c) *= std[c];
  const nn::Mat dx_full = mlp_.input_gradient(dz);
  nn::Mat da(dx_full.rows(), dim_);
  for (std::size_t r = 0; r < dx_full.rows(); ++r)
    for (std::size_t c = 0; c < dim_; ++c) da(r, c) = dx_full(r, dim_ + c);
  return da;
}

CriticEnsemble::CriticEnsemble(std::size_t num_critics, std::size_t dim,
                               std::size_t num_metrics, const CriticConfig& config, Rng& rng) {
  MAOPT_CHECK(num_critics > 0, "CriticEnsemble: need >= 1 member");
  MAOPT_CHECK(dim > 0 && num_metrics > 0, "CriticEnsemble: zero-dimensional surrogate");
  members_.reserve(num_critics);
  for (std::size_t i = 0; i < num_critics; ++i) members_.emplace_back(dim, num_metrics, config, rng);
}

double CriticEnsemble::train_round(const PseudoSampleBatcher& batcher, Rng& rng,
                                   ThreadPool* pool) {
  // One draw keys every member's private stream: the caller's rng advances
  // the same amount regardless of member count, and member i's minibatch
  // sequence is independent of who else trains when — so parallel and serial
  // execution produce bit-identical parameters.
  const std::uint64_t round_key = rng.next();
  std::vector<double> losses(members_.size(), 0.0);
  auto train_member = [&](std::size_t i) {
    Rng member_rng(derive_seed(round_key, i));
    losses[i] = members_[i].train_round(batcher, member_rng);
  };
  if (pool != nullptr && pool->size() > 1 && members_.size() > 1) {
    pool->parallel_for(members_.size(), train_member);
  } else {
    for (std::size_t i = 0; i < members_.size(); ++i) train_member(i);
  }
  double total = 0.0;
  for (const double l : losses) total += l;  // fixed order: thread-count invariant
  return total / static_cast<double>(members_.size());
}

void CriticEnsemble::fit_normalizer(const std::vector<SimRecord>& records, ThreadPool* pool) {
  if (pool != nullptr && pool->size() > 1 && members_.size() > 1) {
    pool->parallel_for(members_.size(), [&](std::size_t i) { members_[i].fit_normalizer(records); });
  } else {
    for (auto& m : members_) m.fit_normalizer(records);
  }
}

nn::Mat CriticEnsemble::predict(const nn::Mat& x_dx) {
  nn::Mat sum = members_.front().predict(x_dx);
  for (std::size_t i = 1; i < members_.size(); ++i) {
    const nn::Mat p = members_[i].predict(x_dx);
    for (std::size_t k = 0; k < sum.data().size(); ++k) sum.data()[k] += p.data()[k];
  }
  const double inv = 1.0 / static_cast<double>(members_.size());
  for (auto& v : sum.data()) v *= inv;
  return sum;
}

nn::Mat CriticEnsemble::action_gradient(const nn::Mat& d_loss_d_raw_metrics) {
  // d(mean of members)/d(dx) = mean of member gradients. Each member's
  // forward cache is still valid from predict() because predict() ran every
  // member's forward pass last.
  nn::Mat sum = members_.front().action_gradient(d_loss_d_raw_metrics);
  for (std::size_t i = 1; i < members_.size(); ++i) {
    const nn::Mat g = members_[i].action_gradient(d_loss_d_raw_metrics);
    for (std::size_t k = 0; k < sum.data().size(); ++k) sum.data()[k] += g.data()[k];
  }
  const double inv = 1.0 / static_cast<double>(members_.size());
  for (auto& v : sum.data()) v *= inv;
  return sum;
}

std::size_t CriticEnsemble::num_parameters() const {
  std::size_t n = 0;
  for (const auto& m : members_) n += m.num_parameters();
  return n;
}

}  // namespace maopt::core
