#include "core/de.hpp"

#include <algorithm>
#include <utility>

#include "common/log.hpp"

namespace maopt::core {

RunHistory DeOptimizer::do_run(const SizingProblem& problem,
                               const std::vector<SimRecord>& initial, const FomEvaluator& fom,
                               const RunOptions& options, obs::RunTelemetry& telemetry) {
  RunHistory history;
  history.algorithm = name();
  history.records = initial;
  history.num_initial = initial.size();
  annotate_foms(history.records, problem, fom);

  Rng rng(derive_seed(options.seed, 0xDE01));
  const std::size_t d = problem.dim();
  const std::size_t simulation_budget = options.simulation_budget;

  std::vector<const SimRecord*> sorted;
  for (const auto& r : history.records) sorted.push_back(&r);
  std::sort(sorted.begin(), sorted.end(),
            [](const SimRecord* a, const SimRecord* b) { return a->fom < b->fom; });

  const std::size_t np = std::max<std::size_t>(4, config_.population);
  std::vector<Vec> pop(np);
  std::vector<double> pop_fom(np);
  double best = 1e300;
  for (std::size_t i = 0; i < np; ++i) {
    if (i < sorted.size()) {
      pop[i] = sorted[i]->x;
      pop_fom[i] = sorted[i]->fom;
    } else {
      pop[i] = problem.random_design(rng);
      pop_fom[i] = 1e300;  // unevaluated filler loses its first selection
    }
    best = std::min(best, pop_fom[i]);
  }

  Stopwatch total;
  bool feasible_found = false;
  for (const auto& r : history.records) feasible_found = feasible_found || r.feasible;
  std::size_t sims = 0;
  std::uint64_t iteration = 0;
  // One iteration = one generation; mutation/crossover reports as an
  // ActorTrain span (candidate selection), evaluations as Simulate spans.
  while (sims < simulation_budget) {
    if (options.control != nullptr) {
      const RunControl::Signal signal = options.control->poll();
      if (signal == RunControl::Signal::Kill) {
        history.aborted = true;
        history.abort_reason = "killed";
        break;
      }
      if (signal == RunControl::Signal::Pause) break;
    }
    ++iteration;
    Stopwatch iter_clock;
    std::vector<obs::PhaseSpan> spans;
    double select_s = 0.0;
    for (std::size_t i = 0; i < np && sims < simulation_budget; ++i) {
      Stopwatch select;
      // Mutation: three distinct partners, none equal to i.
      std::size_t a, b, c;
      do a = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(np) - 1));
      while (a == i);
      do b = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(np) - 1));
      while (b == i || b == a);
      do c = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(np) - 1));
      while (c == i || c == a || c == b);

      // Binomial crossover with a guaranteed mutated coordinate.
      Vec trial = pop[i];
      const auto forced = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(d) - 1));
      for (std::size_t k = 0; k < d; ++k)
        if (k == forced || rng.uniform() < config_.cr)
          trial[k] = pop[a][k] + config_.f * (pop[b][k] - pop[c][k]);
      trial = problem.clip(std::move(trial));
      select_s += select.elapsed_seconds();

      Stopwatch sim;
      SimRecord rec = evaluate_record(problem, std::move(trial));
      const double sim_s = sim.elapsed_seconds();
      history.sim_seconds += sim_s;
      annotate_record(rec, problem, fom);

      if (rec.fom < pop_fom[i]) {  // greedy selection
        pop_fom[i] = rec.fom;
        pop[i] = rec.x;
      }
      best = std::min(best, rec.fom);
      feasible_found = feasible_found || rec.feasible;
      history.records.push_back(std::move(rec));
      history.best_fom_after.push_back(best);
      emit_simulation(telemetry, history.records.back(), sims, iteration, -1, sim_s, problem);
      if (telemetry.enabled()) spans.push_back({obs::Phase::Simulate, -1, sim_s});
      ++sims;
    }
    if (telemetry.enabled()) spans.push_back({obs::Phase::ActorTrain, -1, select_s});
    emit_iteration(telemetry, iteration, sims, best, feasible_found,
                   iter_clock.elapsed_seconds(), std::move(spans));
  }
  history.wall_seconds = total.elapsed_seconds();
  return history;
}

}  // namespace maopt::core
