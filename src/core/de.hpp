// Differential evolution over the FoM — the paper's second related-work
// population baseline (ref. [8]). Classic DE/rand/1/bin with greedy
// selection; the population is seeded from the best designs of the shared
// initial set.
#pragma once

#include "core/optimizer.hpp"

namespace maopt::core {

struct DeConfig {
  std::size_t population = 12;
  double f = 0.5;   ///< differential weight
  double cr = 0.9;  ///< crossover rate
};

class DeOptimizer final : public Optimizer {
 public:
  explicit DeOptimizer(DeConfig config = {}) : config_(config) {}

  std::string name() const override { return "DE"; }

 protected:
  RunHistory do_run(const SizingProblem& problem, const std::vector<SimRecord>& initial,
                    const FomEvaluator& fom, const RunOptions& options,
                    obs::RunTelemetry& telemetry) override;

 private:
  DeConfig config_;
};

}  // namespace maopt::core
