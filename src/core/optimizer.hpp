// The unified optimizer-facing run API (PR 4). Every optimizer — MaOptimizer
// (DNN-Opt / MA-Opt variants), BoOptimizer, DeOptimizer, PsoOptimizer,
// RandomSearch — is driven through Optimizer::run(problem, initial, fom,
// RunOptions) and instrumented through the obs:: telemetry layer behind it:
// the non-virtual entry point emits RunStarted / RunFinished around the
// optimizer-specific loop, which reports IterationCompleted /
// SimulationCompleted / CheckpointWritten as it goes. With no observer
// attached the instrumentation reduces to a branch on a null pointer.
#pragma once

#include "core/history.hpp"
#include "obs/observer.hpp"

namespace maopt::eval {
struct EvalOutcome;
}

namespace maopt::core {

/// Cooperative run control: an external party (serve::OptDaemon, a signal
/// handler, a test) raises Pause or Kill and the optimizer loop observes it
/// at its next iteration boundary. poll() must be thread-safe — it is called
/// from the run's driving thread while the signal is raised from another.
/// Semantics at a yield point:
///   Pause — stop cleanly; MaOptimizer writes a checkpoint first (when
///           checkpoint_path is set) so the run can resume bit-identically.
///           The history is NOT marked aborted: the run is suspended, and
///           pause is deferred while a checkpoint replay is in progress
///           (pausing mid-replay would re-checkpoint a prefix).
///   Kill  — stop immediately; the history is marked aborted with reason
///           "killed".
/// Signals are level-triggered: poll() keeps returning the raised signal
/// until the controller clears it.
class RunControl {
 public:
  enum class Signal { None, Pause, Kill };

  RunControl() = default;
  RunControl(const RunControl&) = default;
  RunControl& operator=(const RunControl&) = default;
  RunControl(RunControl&&) = default;
  RunControl& operator=(RunControl&&) = default;
  virtual ~RunControl() = default;

  virtual Signal poll() = 0;
};

/// Per-run parameters for Optimizer::run. Aggregates what used to be loose
/// (seed, budget) trailing arguments so adding a knob no longer churns every
/// optimizer signature.
struct RunOptions {
  std::uint64_t seed = 0;
  std::size_t simulation_budget = 0;
  /// Telemetry sink; not owned, may be nullptr (disables all emission).
  obs::RunObserver* observer = nullptr;
  /// Cooperative pause/kill signal source; not owned, may be nullptr (the
  /// run is then uninterruptible). Polled once per optimizer iteration.
  RunControl* control = nullptr;
  /// Seed the run from cached prior-run results: when `problem` is an
  /// eval::EvalService, its cached evaluations for this problem (deduplicated
  /// against `initial`, best FoM first, at most `warm_start_max`) are
  /// appended to the initial set before the optimizer loop. They count as
  /// initial samples, so the simulation budget is unchanged — the warm run
  /// starts from strictly more information at the same cost. Ignored when
  /// the problem is not a service.
  bool warm_start = false;
  std::size_t warm_start_max = 256;
};

/// Abstract optimizer: consumes a pre-evaluated initial set and a simulation
/// budget, produces the full run history. Implementations: MaOptimizer
/// (DNN-Opt / MA-Opt variants), BoOptimizer, DeOptimizer, PsoOptimizer,
/// RandomSearch.
class Optimizer {
 public:
  Optimizer() = default;
  Optimizer(const Optimizer&) = default;
  Optimizer& operator=(const Optimizer&) = default;
  Optimizer(Optimizer&&) = default;
  Optimizer& operator=(Optimizer&&) = default;
  virtual ~Optimizer() = default;

  virtual std::string name() const = 0;

  /// The single entry point: brackets the optimizer-specific loop with
  /// RunStarted / RunFinished and threads options.observer through it.
  RunHistory run(const SizingProblem& problem, const std::vector<SimRecord>& initial,
                 const FomEvaluator& fom, const RunOptions& options);

  /// Legacy 5-argument form. Deprecated for one release (PR 9); every
  /// in-tree caller now uses the RunOptions overload above.
  [[deprecated("use run(problem, initial, fom, RunOptions) instead")]] RunHistory run(
      const SizingProblem& problem, const std::vector<SimRecord>& initial, const FomEvaluator& fom,
      std::uint64_t seed, std::size_t simulation_budget) {
    RunOptions options;
    options.seed = seed;
    options.simulation_budget = simulation_budget;
    return run(problem, initial, fom, options);
  }

 protected:
  /// Optimizer-specific loop. Implementations emit IterationCompleted /
  /// SimulationCompleted / CheckpointWritten through `telemetry` and bump
  /// the counters the base class cannot see (iterations, ns_iterations,
  /// retries, checkpoints); simulations / failures / RunStarted /
  /// RunFinished are handled by the caller.
  virtual RunHistory do_run(const SizingProblem& problem, const std::vector<SimRecord>& initial,
                            const FomEvaluator& fom, const RunOptions& options,
                            obs::RunTelemetry& telemetry) = 0;

  /// RunStarted / RunFinished bracketing, factored out so instrumented
  /// side entries (MaOptimizer::resume) reuse the exact run() semantics.
  static void emit_run_started(obs::RunTelemetry& telemetry, const std::string& algorithm,
                               const SizingProblem& problem, std::size_t num_initial,
                               const RunOptions& options);
  static void emit_run_finished(obs::RunTelemetry& telemetry, const RunHistory& history);

  /// Emits SimulationCompleted for `record`. With `outcome == nullptr` the
  /// per-call detail is probed from `problem`: an eval::EvalService yields
  /// cache/coalesce flags + inner retry stats via last_outcome(), a bare
  /// ckt::ResilientEvaluator yields retry stats via last_call_stats() — both
  /// thread-local, so the call must run on the thread that performed the
  /// evaluation. Batched callers pass the EvalOutcome captured per request
  /// instead. No-op without an observer.
  static void emit_simulation(obs::RunTelemetry& telemetry, const SimRecord& record,
                              std::uint64_t index, std::uint64_t iteration, int lane,
                              double seconds, const SizingProblem& problem,
                              const eval::EvalOutcome* outcome = nullptr);

  /// The warm-start records for this run: cached prior-run results of
  /// `problem` (when it is an eval::EvalService), annotated with `fom`,
  /// deduplicated against `initial`, sorted best FoM first and capped at
  /// options.warm_start_max. Empty when the problem is not a service or the
  /// cache holds nothing new.
  static std::vector<SimRecord> warm_start_records(const SizingProblem& problem,
                                                   const std::vector<SimRecord>& initial,
                                                   const FomEvaluator& fom,
                                                   const RunOptions& options);

  /// Bumps the iteration counter and emits IterationCompleted; `spans` is
  /// consumed. The event itself is skipped without an observer.
  static void emit_iteration(obs::RunTelemetry& telemetry, std::uint64_t iteration,
                             std::size_t simulations_done, double best_fom, bool feasible_found,
                             double wall_seconds, std::vector<obs::PhaseSpan> spans);
};

}  // namespace maopt::core
