// The unified optimizer-facing run API (PR 4). Every optimizer — MaOptimizer
// (DNN-Opt / MA-Opt variants), BoOptimizer, DeOptimizer, PsoOptimizer,
// RandomSearch — is driven through Optimizer::run(problem, initial, fom,
// RunOptions) and instrumented through the obs:: telemetry layer behind it:
// the non-virtual entry point emits RunStarted / RunFinished around the
// optimizer-specific loop, which reports IterationCompleted /
// SimulationCompleted / CheckpointWritten as it goes. With no observer
// attached the instrumentation reduces to a branch on a null pointer.
#pragma once

#include "core/history.hpp"
#include "obs/observer.hpp"

namespace maopt::core {

/// Per-run parameters for Optimizer::run. Aggregates what used to be loose
/// (seed, budget) trailing arguments so adding a knob no longer churns every
/// optimizer signature.
struct RunOptions {
  std::uint64_t seed = 0;
  std::size_t simulation_budget = 0;
  /// Telemetry sink; not owned, may be nullptr (disables all emission).
  obs::RunObserver* observer = nullptr;
};

/// Abstract optimizer: consumes a pre-evaluated initial set and a simulation
/// budget, produces the full run history. Implementations: MaOptimizer
/// (DNN-Opt / MA-Opt variants), BoOptimizer, DeOptimizer, PsoOptimizer,
/// RandomSearch.
class Optimizer {
 public:
  Optimizer() = default;
  Optimizer(const Optimizer&) = default;
  Optimizer& operator=(const Optimizer&) = default;
  Optimizer(Optimizer&&) = default;
  Optimizer& operator=(Optimizer&&) = default;
  virtual ~Optimizer() = default;

  virtual std::string name() const = 0;

  /// The single entry point: brackets the optimizer-specific loop with
  /// RunStarted / RunFinished and threads options.observer through it.
  RunHistory run(const SizingProblem& problem, const std::vector<SimRecord>& initial,
                 const FomEvaluator& fom, const RunOptions& options);

  /// Legacy 5-argument form, kept as a thin delegating overload so existing
  /// callers compile unchanged.
  RunHistory run(const SizingProblem& problem, const std::vector<SimRecord>& initial,
                 const FomEvaluator& fom, std::uint64_t seed, std::size_t simulation_budget);

 protected:
  /// Optimizer-specific loop. Implementations emit IterationCompleted /
  /// SimulationCompleted / CheckpointWritten through `telemetry` and bump
  /// the counters the base class cannot see (iterations, ns_iterations,
  /// retries, checkpoints); simulations / failures / RunStarted /
  /// RunFinished are handled by the caller.
  virtual RunHistory do_run(const SizingProblem& problem, const std::vector<SimRecord>& initial,
                            const FomEvaluator& fom, const RunOptions& options,
                            obs::RunTelemetry& telemetry) = 0;

  /// RunStarted / RunFinished bracketing, factored out so instrumented
  /// side entries (MaOptimizer::resume) reuse the exact run() semantics.
  static void emit_run_started(obs::RunTelemetry& telemetry, const std::string& algorithm,
                               const SizingProblem& problem, std::size_t num_initial,
                               const RunOptions& options);
  static void emit_run_finished(obs::RunTelemetry& telemetry, const RunHistory& history);

  /// Emits SimulationCompleted for `record`, probing retry / failure-kind
  /// detail when `problem` is a ckt::ResilientEvaluator. Must run on the
  /// thread that performed the evaluation (the per-call stats are
  /// thread-local). No-op without an observer.
  static void emit_simulation(obs::RunTelemetry& telemetry, const SimRecord& record,
                              std::uint64_t index, std::uint64_t iteration, int lane,
                              double seconds, const SizingProblem& problem);

  /// Bumps the iteration counter and emits IterationCompleted; `spans` is
  /// consumed. The event itself is skipped without an observer.
  static void emit_iteration(obs::RunTelemetry& telemetry, std::uint64_t iteration,
                             std::size_t simulations_done, double best_fom, bool feasible_found,
                             double wall_seconds, std::vector<obs::PhaseSpan> spans);
};

}  // namespace maopt::core
