#include "core/actor.hpp"

#include <cmath>
#include <stdexcept>

namespace maopt::core {

Actor::Actor(std::size_t dim, const ActorConfig& config, Rng& rng)
    : dim_(dim),
      config_(config),
      mlp_(dim, config.hidden, dim, rng, nn::Activation::Relu, /*output_tanh=*/true),
      adam_(mlp_.params(), {.lr = config.learning_rate}) {}

double Actor::train_round(Surrogate& critic, const FomEvaluator& fom,
                          const std::vector<SimRecord>& records, const nn::RangeScaler& scaler,
                          const Vec& elite_lb_unit, const Vec& elite_ub_unit, Rng& rng) {
  if (records.empty()) throw std::invalid_argument("Actor::train_round: empty population");
  const std::size_t nb = config_.batch_size;
  double total_loss = 0.0;

  nn::Mat states(nb, dim_);
  for (int step = 0; step < config_.steps_per_round; ++step) {
    for (std::size_t k = 0; k < nb; ++k) {
      const auto idx = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(records.size()) - 1));
      const Vec u = scaler.to_unit(records[idx].x);
      for (std::size_t c = 0; c < dim_; ++c) states(k, c) = u[c];
    }

    const nn::Mat actions = mlp_.forward(states);

    nn::Mat critic_in(nb, 2 * dim_);
    for (std::size_t k = 0; k < nb; ++k)
      for (std::size_t c = 0; c < dim_; ++c) {
        critic_in(k, c) = states(k, c);
        critic_in(k, dim_ + c) = actions(k, c);
      }
    const nn::Mat raw = critic.predict(critic_in);

    // dL/d(raw metrics) from the FoM, averaged over the batch.
    nn::Mat d_raw(nb, raw.cols());
    double batch_loss = 0.0;
    for (std::size_t k = 0; k < nb; ++k) {
      batch_loss += fom(raw.row(k));
      const Vec g = fom.gradient(raw.row(k));
      for (std::size_t c = 0; c < raw.cols(); ++c) d_raw(k, c) = g[c] / static_cast<double>(nb);
    }
    nn::Mat d_action = critic.action_gradient(d_raw);

    // Boundary violation against the elite bounding box (Eq. 6), unit space.
    for (std::size_t k = 0; k < nb; ++k) {
      Vec v(dim_, 0.0), sign(dim_, 0.0);
      double norm = 0.0;
      for (std::size_t c = 0; c < dim_; ++c) {
        const double xn = states(k, c) + actions(k, c);
        if (xn < elite_lb_unit[c]) {
          v[c] = elite_lb_unit[c] - xn;
          sign[c] = -1.0;
        } else if (xn > elite_ub_unit[c]) {
          v[c] = xn - elite_ub_unit[c];
          sign[c] = 1.0;
        }
        norm += v[c] * v[c];
      }
      norm = std::sqrt(norm);
      batch_loss += config_.lambda * norm;
      if (norm > 1e-12) {
        for (std::size_t c = 0; c < dim_; ++c)
          d_action(k, c) += config_.lambda * sign[c] * v[c] / norm / static_cast<double>(nb);
      }
    }

    mlp_.backward_params(d_action);
    adam_.step();
    total_loss += batch_loss / static_cast<double>(nb);
  }
  return total_loss / std::max(1, config_.steps_per_round);
}

Vec Actor::propose_unit(const Vec& x_unit) {
  nn::Mat in(1, dim_);
  for (std::size_t c = 0; c < dim_; ++c) in(0, c) = x_unit[c];
  const nn::Mat out = mlp_.forward(in);
  return Vec(out.row(0).begin(), out.row(0).end());
}

Vec Actor::select_candidate_unit(Surrogate& critic, const FomEvaluator& fom,
                                 const std::vector<EliteSet::Entry>& elites,
                                 const nn::RangeScaler& scaler) {
  if (elites.empty()) throw std::invalid_argument("Actor::select_candidate_unit: empty elite set");
  const std::size_t n = elites.size();
  nn::Mat states(n, dim_);
  for (std::size_t k = 0; k < n; ++k) {
    const Vec u = scaler.to_unit(elites[k].x);
    for (std::size_t c = 0; c < dim_; ++c) states(k, c) = u[c];
  }
  const nn::Mat actions = mlp_.forward(states);
  nn::Mat critic_in(n, 2 * dim_);
  for (std::size_t k = 0; k < n; ++k)
    for (std::size_t c = 0; c < dim_; ++c) {
      critic_in(k, c) = states(k, c);
      critic_in(k, dim_ + c) = actions(k, c);
    }
  const nn::Mat raw = critic.predict(critic_in);
  std::size_t best = 0;
  double best_g = 1e300;
  for (std::size_t k = 0; k < n; ++k) {
    const double g = fom(raw.row(k));
    if (g < best_g) {
      best_g = g;
      best = k;
    }
  }
  Vec proposal(dim_);
  for (std::size_t c = 0; c < dim_; ++c) proposal[c] = states(best, c) + actions(best, c);
  return proposal;
}

}  // namespace maopt::core
