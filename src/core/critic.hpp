// Critic network (paper Eq. 4): an MLP regression surrogate of the SPICE
// simulator. Input (x, dx) in the unit design space, output the m+1 metric
// vector (z-scored internally). Unlike a true RL critic it predicts the
// full simulation outcome, and the FoM g(.) is applied on top (Eq. 5).
#pragma once

#include "circuits/fom.hpp"
#include "common/thread_pool.hpp"
#include "core/pseudo_samples.hpp"
#include "nn/adam.hpp"
#include "nn/mlp.hpp"

namespace maopt::core {

/// Interface shared by a single critic and a critic ensemble — everything
/// the actors and the near-sampling method need from the simulator
/// surrogate Q(x, dx).
class Surrogate {
 public:
  virtual ~Surrogate() = default;
  /// Predicted raw metric vectors for a batch of (x, dx) unit-space inputs.
  virtual nn::Mat predict(const nn::Mat& x_dx) = 0;
  /// Gradient of a scalar loss w.r.t. the dx part of the input, given the
  /// loss gradient w.r.t. the raw predicted metrics; must follow the
  /// matching predict() call (forward caches).
  virtual nn::Mat action_gradient(const nn::Mat& d_loss_d_raw_metrics) = 0;
  virtual std::size_t dim() const = 0;
  virtual std::size_t num_metrics() const = 0;
};

struct CriticConfig {
  std::vector<std::size_t> hidden = {100, 100};  ///< paper: 2 x 100
  double learning_rate = 1e-3;
  std::size_t batch_size = 64;   ///< N_b
  int steps_per_round = 50;      ///< minibatch SGD steps per training round
};

class Critic final : public Surrogate {
 public:
  Critic(std::size_t dim, std::size_t num_metrics, const CriticConfig& config, Rng& rng);

  /// Copy shares no state; used to give each actor-training thread a private
  /// forward/backward workspace. The optimizer state is reset in the copy.
  Critic(const Critic& other);
  Critic& operator=(const Critic&) = delete;

  /// Refits the metric normalizer on the current population and runs
  /// `steps_per_round` minibatch steps on pseudo-samples. Returns mean MSE
  /// (normalized units) over the round.
  double train_round(const PseudoSampleBatcher& batcher, Rng& rng);

  nn::Mat predict(const nn::Mat& x_dx) override;
  /// Single-sample convenience.
  Vec predict_one(const Vec& x_unit, const Vec& dx_unit);

  nn::Mat action_gradient(const nn::Mat& d_loss_d_raw_metrics) override;

  void fit_normalizer(const std::vector<SimRecord>& records);
  bool normalizer_ready() const { return norm_.fitted(); }
  std::size_t dim() const override { return dim_; }
  std::size_t num_metrics() const override { return num_metrics_; }
  std::size_t num_parameters() const { return mlp_.num_parameters(); }
  nn::Mlp& network() { return mlp_; }

 private:
  std::size_t dim_;
  std::size_t num_metrics_;
  CriticConfig config_;
  nn::Mlp mlp_;
  nn::Adam adam_;
  nn::ZScoreNormalizer norm_;
  // Minibatch scratch reused across all train_round calls (not copied).
  nn::Mat batch_x_, batch_y_raw_, batch_y_, batch_grad_;
};

/// Ensemble of independently initialized critics whose predictions (and
/// action gradients) are averaged. The paper (Section II-B) considered
/// multiple critics and rejected them for memory cost; MaOptConfig's
/// num_critics > 1 reproduces that trade-off for the ablation bench.
class CriticEnsemble final : public Surrogate {
 public:
  CriticEnsemble(std::size_t num_critics, std::size_t dim, std::size_t num_metrics,
                 const CriticConfig& config, Rng& rng);
  CriticEnsemble(const CriticEnsemble& other) = default;

  /// Trains every member for one round, across `pool` when given (nullptr or
  /// a 1-worker pool trains serially). Each member draws from its own
  /// derive_seed-derived stream keyed off a single draw from `rng`, so the
  /// resulting parameters are bit-identical for every thread count.
  double train_round(const PseudoSampleBatcher& batcher, Rng& rng, ThreadPool* pool = nullptr);
  void fit_normalizer(const std::vector<SimRecord>& records, ThreadPool* pool = nullptr);

  nn::Mat predict(const nn::Mat& x_dx) override;
  nn::Mat action_gradient(const nn::Mat& d_loss_d_raw_metrics) override;
  std::size_t dim() const override { return members_.front().dim(); }
  std::size_t num_metrics() const override { return members_.front().num_metrics(); }

  std::size_t size() const { return members_.size(); }
  Critic& member(std::size_t i) { return members_[i]; }
  /// Total trainable parameters across members (the memory-cost axis).
  std::size_t num_parameters() const;

 private:
  std::vector<Critic> members_;
};

}  // namespace maopt::core
