#include "core/ma_optimizer.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <deque>

#include "circuits/resilient_problem.hpp"
#include "common/check.hpp"
#include "common/log.hpp"
#include "common/thread_pool.hpp"
#include "eval/eval_service.hpp"

namespace maopt::core {

MaOptConfig MaOptConfig::dnn_opt() {
  MaOptConfig c;
  c.name = "DNN-Opt";
  c.num_actors = 1;
  c.shared_elite_set = true;  // single actor: shared vs individual identical
  c.use_near_sampling = false;
  return c;
}

MaOptConfig MaOptConfig::ma_opt1() {
  MaOptConfig c;
  c.name = "MA-Opt1";
  c.num_actors = 3;
  c.shared_elite_set = false;
  c.use_near_sampling = false;
  return c;
}

MaOptConfig MaOptConfig::ma_opt2() {
  MaOptConfig c;
  c.name = "MA-Opt2";
  c.num_actors = 3;
  c.shared_elite_set = true;
  c.use_near_sampling = false;
  return c;
}

MaOptConfig MaOptConfig::ma_opt() {
  MaOptConfig c;
  c.name = "MA-Opt";
  c.num_actors = 3;
  c.shared_elite_set = true;
  c.use_near_sampling = true;
  return c;
}

RunHistory MaOptimizer::do_run(const SizingProblem& problem,
                               const std::vector<SimRecord>& initial, const FomEvaluator& fom,
                               const RunOptions& options, obs::RunTelemetry& telemetry) {
  return run_impl(problem, initial, {}, fom, options.seed, options.simulation_budget,
                  /*checkpoint_timers=*/nullptr, options.control, telemetry);
}

RunHistory MaOptimizer::resume(const SizingProblem& problem, const RunCheckpoint& checkpoint,
                               const FomEvaluator& fom, const RunOptions& options) {
  const RunHistory& h = checkpoint.history;
  MAOPT_CHECK(h.num_initial <= h.records.size(),
              "MaOptimizer::resume: corrupt checkpoint (num_initial > records)");
  const auto split = h.records.begin() + static_cast<std::ptrdiff_t>(h.num_initial);
  std::vector<SimRecord> initial(h.records.begin(), split);
  std::vector<SimRecord> replay(split, h.records.end());

  // Same telemetry bracketing as Optimizer::run — a resumed run is a run.
  obs::RunTelemetry telemetry(options.observer);
  RunOptions effective = options;
  effective.seed = checkpoint.seed;
  emit_run_started(telemetry, name(), problem, initial.size(), effective);
  RunHistory history = run_impl(problem, std::move(initial), std::move(replay), fom,
                                checkpoint.seed, options.simulation_budget, &h, options.control,
                                telemetry);
  emit_run_finished(telemetry, history);
  return history;
}

RunHistory MaOptimizer::resume(const SizingProblem& problem, const RunCheckpoint& checkpoint,
                               const FomEvaluator& fom, std::size_t simulation_budget) {
  RunOptions options;
  options.simulation_budget = simulation_budget;
  return resume(problem, checkpoint, fom, options);
}

RunHistory MaOptimizer::run_impl(const SizingProblem& problem, std::vector<SimRecord> initial,
                                 std::vector<SimRecord> replay, const FomEvaluator& fom,
                                 std::uint64_t seed, std::size_t simulation_budget,
                                 const RunHistory* checkpoint_timers, RunControl* control,
                                 obs::RunTelemetry& telemetry) {
  RunHistory history;
  history.algorithm = config_.name;
  history.records = std::move(initial);
  history.num_initial = history.records.size();
  annotate_foms(history.records, problem, fom);
  if (checkpoint_timers != nullptr) {
    // Replayed iterations retrain but do not simulate; carry the original
    // run's cost accounting and add only post-resume work on top.
    history.sim_seconds = checkpoint_timers->sim_seconds;
    history.train_seconds = checkpoint_timers->train_seconds;
    history.ns_seconds = checkpoint_timers->ns_seconds;
    history.wall_seconds = checkpoint_timers->wall_seconds;
  }

  const std::size_t d = problem.dim();
  const std::size_t m1 = problem.num_metrics();
  const nn::RangeScaler scaler(problem.lower_bounds(), problem.upper_bounds());
  const auto n_act = static_cast<std::size_t>(std::max(1, config_.num_actors));

  Rng critic_rng(derive_seed(seed, 0xC0));
  CriticEnsemble critic(static_cast<std::size_t>(std::max(1, config_.num_critics)), d, m1,
                        config_.critic, critic_rng);

  std::vector<Actor> actors;
  actors.reserve(n_act);
  for (std::size_t i = 0; i < n_act; ++i) {
    Rng actor_rng(derive_seed(seed, 0xA0 + i));
    actors.emplace_back(d, config_.actor, actor_rng);
  }

  // Elite sets: one shared, or one per actor (Fig. 2a vs 2b). Only clean
  // simulations may enter: a failed record's penalty FoM would anchor the
  // elite bounding box to a garbage design.
  const std::size_t n_sets = config_.shared_elite_set ? 1 : n_act;
  std::deque<EliteSet> elites;  // deque: EliteSet holds a mutex (immovable)
  for (std::size_t i = 0; i < n_sets; ++i) elites.emplace_back(config_.elite_size);
  for (const auto& r : history.records)
    if (r.simulation_ok)
      for (auto& es : elites) es.try_insert(r.x, r.fom);

  bool specs_met = false;
  for (const auto& r : history.records) specs_met = specs_met || r.feasible;

  // Surrogate training set: clean records only (failed simulations would
  // teach the critic penalty plateaus instead of circuit behaviour). The
  // scrubbed full history is the fallback for the all-failed degenerate case
  // so batching stays well-posed.
  std::vector<SimRecord> ok_records;
  ok_records.reserve(history.records.size() + simulation_budget);
  for (const auto& r : history.records)
    if (r.simulation_ok) ok_records.push_back(r);

  // Finite stand-in used by the trajectory until a clean design exists.
  const double penalty_fom = fom(problem.failure_metrics());

  ThreadPool pool(config_.num_threads == 0 ? n_act : config_.num_threads);
  Rng ns_rng(derive_seed(seed, 0x45));

  Stopwatch total;
  std::size_t sims = 0;
  bool critic_trained = false;
  int consecutive_failures = 0;
  double running_best = penalty_fom;
  bool have_best = false;
  for (const auto& r : history.records)
    if (r.simulation_ok) {
      running_best = have_best ? std::min(running_best, r.fom) : r.fom;
      have_best = true;
    }

  std::size_t replay_pos = 0;
  const std::size_t replay_count = replay.size();
  std::atomic<bool> replay_diverged{false};
  const bool checkpointing = config_.checkpoint_every > 0 && !config_.checkpoint_path.empty();

  // Telemetry plumbing: spans collected per iteration (actor workers report
  // into their own lanes), per-simulation retry/failure detail probed from a
  // ResilientEvaluator when the problem is one. With no observer every emit
  // below is a single branch on null.
  obs::SpanCollector spans(telemetry.enabled());
  const auto* resilient = dynamic_cast<const ckt::ResilientEvaluator*>(&problem);
  // When the problem is an EvalService, per-iteration proposals are routed
  // through evaluate_batch (one batch per iteration) and the per-request
  // EvalOutcome supplies cache/coalesce telemetry.
  const auto* service = dynamic_cast<const eval::EvalService*>(&problem);
  int current_iter = 0;

  struct SimMeta {
    int lane = -1;
    double seconds = 0.0;
    ckt::ResilientEvaluator::CallStats call;
    bool cache_hit = false;
    bool coalesced = false;
    bool via_service = false;  ///< evaluated through the EvalService this run
  };

  auto meta_from_outcome = [](SimMeta& meta, const eval::EvalOutcome& outcome) {
    meta.call = outcome.call;
    meta.cache_hit = outcome.cache_hit;
    meta.coalesced = outcome.coalesced;
    meta.via_service = true;
  };

  auto emit_checkpoint = [&](std::uint64_t bytes, int iteration) {
    ++telemetry.counters().checkpoints;
    telemetry.counters().checkpoint_bytes += bytes;
    if (telemetry.enabled()) {
      obs::CheckpointWritten event;
      event.path = config_.checkpoint_path;
      event.iteration = static_cast<std::uint64_t>(iteration);
      event.simulations_done = sims;
      event.bytes = bytes;
      telemetry.emit(event);
    }
  };

  auto append_record = [&](SimRecord rec, std::ptrdiff_t actor_set, const SimMeta& meta) {
    const bool ok = annotate_record(rec, problem, fom);
    specs_met = specs_met || rec.feasible;
    if (ok) {
      consecutive_failures = 0;
      const obs::ScopedSpan elite_span(spans, obs::Phase::EliteUpdate);
      if (config_.shared_elite_set) {
        elites[0].try_insert(rec.x, rec.fom);
      } else if (actor_set >= 0) {
        // Individual sets: actor i's result refreshes only its own set.
        elites[static_cast<std::size_t>(actor_set)].try_insert(rec.x, rec.fom);
      } else {
        // Near-sampling results are not tied to one actor; refresh every set.
        for (auto& es : elites) es.try_insert(rec.x, rec.fom);
      }
      ok_records.push_back(rec);
      running_best = have_best ? std::min(running_best, rec.fom) : rec.fom;
      have_best = true;
    } else {
      ++consecutive_failures;
    }
    history.records.push_back(std::move(rec));
    // Failed records never improve the trajectory: their penalty FoM is
    // budget bookkeeping, not a design the run could return.
    history.best_fom_after.push_back(running_best);
    if (telemetry.enabled()) {
      const SimRecord& stored = history.records.back();
      obs::SimulationCompleted event;
      event.index = sims;
      event.iteration = static_cast<std::uint64_t>(current_iter);
      event.lane = meta.lane;
      event.ok = stored.simulation_ok;
      event.feasible = stored.feasible;
      event.fom = stored.fom;
      event.seconds = meta.seconds;
      event.retries = meta.call.retries;
      event.cache_hit = meta.cache_hit;
      event.coalesced = meta.coalesced;
      if (!stored.simulation_ok && meta.call.failed)
        event.failure_kind = ckt::to_string(meta.call.last_kind);
      telemetry.emit(event);
    }
    telemetry.counters().retries += meta.call.retries;
    if (meta.via_service) {
      obs::RunCounters& counters = telemetry.counters();
      ++(meta.cache_hit ? counters.cache_hits : counters.cache_misses);
      if (meta.coalesced) ++counters.cache_coalesced;
    }
    ++sims;
  };

  for (int t = 1; sims < simulation_budget; ++t) {
    // Cooperative yield point: records are consistent at iteration
    // boundaries, so this is the one place a pause checkpoint may be taken.
    // Pause is deferred while a resume replay is still in progress — the
    // on-disk snapshot already covers the replayed prefix.
    if (control != nullptr) {
      const RunControl::Signal signal = control->poll();
      if (signal == RunControl::Signal::Kill) {
        history.aborted = true;
        history.abort_reason = "killed";
        break;
      }
      if (signal == RunControl::Signal::Pause && replay_pos >= replay_count) {
        if (!config_.checkpoint_path.empty())
          emit_checkpoint(save_checkpoint(config_.checkpoint_path, history, seed), t - 1);
        break;
      }
    }

    if (config_.max_consecutive_failures > 0 &&
        consecutive_failures >= config_.max_consecutive_failures) {
      history.aborted = true;
      history.abort_reason = std::to_string(consecutive_failures) +
                             " consecutive failed simulations (circuit breaker)";
      log_warn() << config_.name << ": aborting run after " << history.abort_reason;
      break;
    }

    current_iter = t;
    Stopwatch iter_clock;
    const bool replaying = replay_pos < replay_count;
    const bool ns_turn = specs_met && config_.use_near_sampling && critic_trained &&
                         (t % std::max(1, config_.t_ns) == 0);
    const SimRecord* anchor = ns_turn ? history.best() : nullptr;
    const bool ns_iteration = ns_turn && anchor != nullptr;
    if (ns_iteration) {
      // --- Algorithm 2: near-sampling, one simulation, no training ---
      Stopwatch ns_clock;
      Vec candidate;
      {
        const obs::ScopedSpan ns_span(spans, obs::Phase::NearSample);
        candidate = near_sampling_candidate(problem, fom, critic, scaler, anchor->x,
                                            config_.near_sampling, ns_rng);
      }
      if (!replaying) history.ns_seconds += ns_clock.elapsed_seconds();

      SimRecord rec;
      SimMeta meta;
      if (replaying) {
        rec = std::move(replay[replay_pos++]);
        if (rec.x != candidate) replay_diverged.store(true, std::memory_order_relaxed);
      } else {
        Stopwatch sim_clock;
        {
          const obs::ScopedSpan sim_span(spans, obs::Phase::Simulate);
          rec = evaluate_record(problem, candidate);
        }
        const double sim_s = sim_clock.elapsed_seconds();
        history.sim_seconds += sim_s;
        meta.seconds = sim_s;
        if (service != nullptr) {
          meta_from_outcome(meta, eval::EvalService::last_outcome());
        } else if (resilient != nullptr) {
          meta.call = ckt::ResilientEvaluator::last_call_stats();
        }
      }
      append_record(std::move(rec), /*actor_set=*/-1, meta);
      ++telemetry.counters().ns_iterations;
    } else {
      // --- Algorithm 1: critic training, then parallel actor rounds ---
      Stopwatch train_clock;
      const std::vector<SimRecord>& training_set =
          ok_records.empty() ? history.records : ok_records;
      {
        const obs::ScopedSpan train_span(spans, obs::Phase::CriticTrain);
        const PseudoSampleBatcher batcher(training_set, scaler);
        critic.fit_normalizer(training_set, &pool);
        critic.train_round(batcher, critic_rng, &pool);
      }
      critic_trained = true;
      if (!replaying) history.train_seconds += train_clock.elapsed_seconds();

      const std::size_t workers = std::min(n_act, simulation_budget - sims);
      std::vector<SimRecord> results(workers);
      std::vector<double> worker_train_s(workers, 0.0), worker_sim_s(workers, 0.0);
      std::vector<SimMeta> worker_meta(workers);
      // Batched path: workers only *propose*; the proposals are evaluated
      // below as one evaluate_batch call (in-batch duplicates coalesce).
      std::vector<Vec> pending(workers);
      std::vector<unsigned char> needs_sim(workers, 0);

      pool.parallel_for(workers, [&](std::size_t i) {
        Rng rng(derive_seed(seed, 0x1000 + static_cast<std::uint64_t>(t) * 64 + i));
        EliteSet& elite = config_.shared_elite_set ? elites[0] : elites[i];

        ThreadCpuTimer tclock;
        obs::ScopedSpan train_span(spans, obs::Phase::ActorTrain, static_cast<int>(i));
        CriticEnsemble local_critic(critic);  // private forward/backward workspace
        Vec lb_raw, ub_raw;
        elite.bounds(lb_raw, ub_raw);
        // Map the elite box to unit space (degenerate boxes stay degenerate:
        // the violation term then pins proposals to the elite's column values).
        const Vec lb_unit = scaler.to_unit(lb_raw);
        const Vec ub_unit = scaler.to_unit(ub_raw);
        actors[i].train_round(local_critic, fom, training_set, scaler, lb_unit, ub_unit, rng);
        const Vec proposal_unit =
            actors[i].select_candidate_unit(local_critic, fom, elite.snapshot(), scaler);
        worker_train_s[i] = tclock.elapsed_seconds();
        train_span.stop();
        worker_meta[i].lane = static_cast<int>(i);

        Vec candidate(d);
        for (std::size_t c = 0; c < d; ++c) candidate[c] = std::clamp(proposal_unit[c], -1.0, 1.0);
        candidate = problem.clip(scaler.from_unit(candidate));

        if (replay_pos + i < replay_count) {
          results[i] = replay[replay_pos + i];
          if (results[i].x != candidate) replay_diverged.store(true, std::memory_order_relaxed);
        } else if (service != nullptr) {
          pending[i] = std::move(candidate);
          needs_sim[i] = 1;
        } else {
          ThreadCpuTimer sclock;
          Stopwatch sim_wall;
          {
            const obs::ScopedSpan sim_span(spans, obs::Phase::Simulate, static_cast<int>(i));
            results[i] = evaluate_record(problem, std::move(candidate));
          }
          worker_sim_s[i] = sclock.elapsed_seconds();
          worker_meta[i].seconds = sim_wall.elapsed_seconds();
          if (resilient != nullptr)
            worker_meta[i].call = ckt::ResilientEvaluator::last_call_stats();
        }
      });

      if (service != nullptr) {
        // One batch per iteration: the N_act proposals fan over the service
        // pool, sharing the cache and coalescing duplicates.
        std::vector<Vec> batch;
        std::vector<std::size_t> owner;
        for (std::size_t i = 0; i < workers; ++i) {
          if (needs_sim[i] == 0) continue;
          batch.push_back(std::move(pending[i]));
          owner.push_back(i);
        }
        if (!batch.empty()) {
          std::vector<eval::EvalOutcome> outcomes;
          std::vector<ckt::EvalResult> batch_results;
          bool batch_ok = true;
          try {
            batch_results = service->evaluate_batch(batch, &outcomes);
          } catch (...) {
            batch_ok = false;  // fall back to per-item exception capture below
          }
          for (std::size_t k = 0; k < owner.size(); ++k) {
            const std::size_t i = owner[k];
            eval::EvalOutcome outcome;
            if (batch_ok) {
              results[i].x = std::move(batch[k]);
              results[i].metrics = std::move(batch_results[k].metrics);
              results[i].simulation_ok = batch_results[k].simulation_ok;
              copy_provenance(results[i], batch_results[k]);
              outcome = outcomes[k];
            } else {
              results[i] = evaluate_record(problem, std::move(batch[k]));
              outcome = eval::EvalService::last_outcome();
            }
            worker_sim_s[i] = outcome.seconds;
            worker_meta[i].seconds = outcome.seconds;
            meta_from_outcome(worker_meta[i], outcome);
            // Not a ScopedSpan: the duration was measured inside the service
            // worker; a call-site span would time result bookkeeping instead.
            spans.add(obs::Phase::Simulate, static_cast<int>(i), outcome.seconds);  // maopt-lint: allow(observer-bracketing)
          }
        }
      }

      for (std::size_t i = 0; i < workers; ++i) {
        if (replay_pos + i >= replay_count) {
          history.train_seconds += worker_train_s[i];
          history.sim_seconds += worker_sim_s[i];
        }
        append_record(std::move(results[i]),
                      config_.shared_elite_set ? 0 : static_cast<std::ptrdiff_t>(i),
                      worker_meta[i]);
      }
      replay_pos += std::min(workers, replay_count - replay_pos);
    }

    ++telemetry.counters().iterations;
    if (telemetry.enabled()) {
      obs::IterationCompleted event;
      event.iteration = static_cast<std::uint64_t>(t);
      event.simulations_done = sims;
      event.best_fom = running_best;
      event.feasible_found = specs_met;
      event.near_sampling = ns_iteration;
      event.wall_seconds = iter_clock.elapsed_seconds();
      event.spans = spans.take();
      telemetry.emit(event);
    }

    // Snapshot at iteration boundaries only (records are consistent there);
    // replayed iterations are skipped — the on-disk state already covers them.
    if (checkpointing && replay_pos >= replay_count && t % config_.checkpoint_every == 0)
      emit_checkpoint(save_checkpoint(config_.checkpoint_path, history, seed), t);
  }

  if (replay_diverged.load(std::memory_order_relaxed))
    log_warn() << config_.name
               << ": resume replay diverged from the checkpointed trajectory (different "
                  "problem/config/budget?); the recorded simulations were kept";
  // A final snapshot on abort lets the operator inspect (or resume) the
  // partial run the circuit breaker saved.
  if (history.aborted && checkpointing)
    emit_checkpoint(save_checkpoint(config_.checkpoint_path, history, seed), current_iter);
  history.wall_seconds += total.elapsed_seconds();
  return history;
}

}  // namespace maopt::core
