#include "core/ma_optimizer.hpp"

#include <algorithm>
#include <deque>

#include "common/log.hpp"
#include "common/thread_pool.hpp"

namespace maopt::core {

MaOptConfig MaOptConfig::dnn_opt() {
  MaOptConfig c;
  c.name = "DNN-Opt";
  c.num_actors = 1;
  c.shared_elite_set = true;  // single actor: shared vs individual identical
  c.use_near_sampling = false;
  return c;
}

MaOptConfig MaOptConfig::ma_opt1() {
  MaOptConfig c;
  c.name = "MA-Opt1";
  c.num_actors = 3;
  c.shared_elite_set = false;
  c.use_near_sampling = false;
  return c;
}

MaOptConfig MaOptConfig::ma_opt2() {
  MaOptConfig c;
  c.name = "MA-Opt2";
  c.num_actors = 3;
  c.shared_elite_set = true;
  c.use_near_sampling = false;
  return c;
}

MaOptConfig MaOptConfig::ma_opt() {
  MaOptConfig c;
  c.name = "MA-Opt";
  c.num_actors = 3;
  c.shared_elite_set = true;
  c.use_near_sampling = true;
  return c;
}

RunHistory MaOptimizer::run(const SizingProblem& problem, const std::vector<SimRecord>& initial,
                            const FomEvaluator& fom, std::uint64_t seed,
                            std::size_t simulation_budget) {
  RunHistory history;
  history.algorithm = config_.name;
  history.records = initial;
  history.num_initial = initial.size();
  annotate_foms(history.records, problem, fom);

  const std::size_t d = problem.dim();
  const std::size_t m1 = problem.num_metrics();
  const nn::RangeScaler scaler(problem.lower_bounds(), problem.upper_bounds());
  const auto n_act = static_cast<std::size_t>(std::max(1, config_.num_actors));

  Rng critic_rng(derive_seed(seed, 0xC0));
  CriticEnsemble critic(static_cast<std::size_t>(std::max(1, config_.num_critics)), d, m1,
                        config_.critic, critic_rng);

  std::vector<Actor> actors;
  actors.reserve(n_act);
  for (std::size_t i = 0; i < n_act; ++i) {
    Rng actor_rng(derive_seed(seed, 0xA0 + i));
    actors.emplace_back(d, config_.actor, actor_rng);
  }

  // Elite sets: one shared, or one per actor (Fig. 2a vs 2b).
  const std::size_t n_sets = config_.shared_elite_set ? 1 : n_act;
  std::deque<EliteSet> elites;  // deque: EliteSet holds a mutex (immovable)
  for (std::size_t i = 0; i < n_sets; ++i) elites.emplace_back(config_.elite_size);
  for (const auto& r : history.records)
    for (auto& es : elites) es.try_insert(r.x, r.fom);

  bool specs_met = false;
  for (const auto& r : history.records) specs_met = specs_met || r.feasible;

  ThreadPool pool(config_.num_threads == 0 ? n_act : config_.num_threads);
  Rng ns_rng(derive_seed(seed, 0x45));

  Stopwatch total;
  std::size_t sims = 0;
  bool critic_trained = false;

  auto append_record = [&](SimRecord rec, bool insert_all_sets) {
    rec.fom = fom(rec.metrics);
    rec.feasible = rec.simulation_ok && problem.feasible(rec.metrics);
    specs_met = specs_met || rec.feasible;
    if (config_.shared_elite_set) {
      elites[0].try_insert(rec.x, rec.fom);
    } else if (insert_all_sets) {
      // Near-sampling results are not tied to one actor; refresh every set.
      for (auto& es : elites) es.try_insert(rec.x, rec.fom);
    }
    history.records.push_back(std::move(rec));
    double best;
    if (history.best_fom_after.empty()) {
      best = history.records[0].fom;
      for (const auto& r : history.records) best = std::min(best, r.fom);
    } else {
      best = std::min(history.best_fom_after.back(), history.records.back().fom);
    }
    history.best_fom_after.push_back(best);
    ++sims;
  };

  for (int t = 1; sims < simulation_budget; ++t) {
    const bool ns_turn = specs_met && config_.use_near_sampling && critic_trained &&
                         (t % std::max(1, config_.t_ns) == 0);
    if (ns_turn) {
      // --- Algorithm 2: near-sampling, one simulation, no training ---
      Stopwatch ns_clock;
      const SimRecord* best = history.best();
      const Vec candidate = near_sampling_candidate(problem, fom, critic, scaler, best->x,
                                                    config_.near_sampling, ns_rng);
      history.ns_seconds += ns_clock.elapsed_seconds();

      Stopwatch sim_clock;
      const ckt::EvalResult eval = problem.evaluate(candidate);
      history.sim_seconds += sim_clock.elapsed_seconds();

      SimRecord rec;
      rec.x = candidate;
      rec.metrics = eval.metrics;
      rec.simulation_ok = eval.simulation_ok;
      append_record(std::move(rec), /*insert_all_sets=*/true);
      continue;
    }

    // --- Algorithm 1: critic training, then parallel actor rounds ---
    Stopwatch train_clock;
    const PseudoSampleBatcher batcher(history.records, scaler);
    critic.fit_normalizer(history.records, &pool);
    critic.train_round(batcher, critic_rng, &pool);
    critic_trained = true;
    history.train_seconds += train_clock.elapsed_seconds();

    const std::size_t workers = std::min(n_act, simulation_budget - sims);
    std::vector<SimRecord> results(workers);
    std::vector<double> worker_train_s(workers, 0.0), worker_sim_s(workers, 0.0);

    pool.parallel_for(workers, [&](std::size_t i) {
      Rng rng(derive_seed(seed, 0x1000 + static_cast<std::uint64_t>(t) * 64 + i));
      EliteSet& elite = config_.shared_elite_set ? elites[0] : elites[i];

      ThreadCpuTimer tclock;
      CriticEnsemble local_critic(critic);  // private forward/backward workspace
      Vec lb_raw, ub_raw;
      elite.bounds(lb_raw, ub_raw);
      // Map the elite box to unit space (degenerate boxes stay degenerate:
      // the violation term then pins proposals to the elite's column values).
      const Vec lb_unit = scaler.to_unit(lb_raw);
      const Vec ub_unit = scaler.to_unit(ub_raw);
      actors[i].train_round(local_critic, fom, history.records, scaler, lb_unit, ub_unit, rng);
      const Vec proposal_unit =
          actors[i].select_candidate_unit(local_critic, fom, elite.snapshot(), scaler);
      worker_train_s[i] = tclock.elapsed_seconds();

      Vec candidate(d);
      for (std::size_t c = 0; c < d; ++c) candidate[c] = std::clamp(proposal_unit[c], -1.0, 1.0);
      candidate = problem.clip(scaler.from_unit(candidate));

      ThreadCpuTimer sclock;
      const ckt::EvalResult eval = problem.evaluate(candidate);
      worker_sim_s[i] = sclock.elapsed_seconds();

      results[i].x = std::move(candidate);
      results[i].metrics = eval.metrics;
      results[i].simulation_ok = eval.simulation_ok;
    });

    for (std::size_t i = 0; i < workers; ++i) {
      history.train_seconds += worker_train_s[i];
      history.sim_seconds += worker_sim_s[i];
      // Individual sets: actor i's result refreshes only its own set.
      if (!config_.shared_elite_set) {
        const double f = fom(results[i].metrics);
        elites[i].try_insert(results[i].x, f);
      }
      append_record(std::move(results[i]), /*insert_all_sets=*/false);
    }
  }

  history.wall_seconds = total.elapsed_seconds();
  return history;
}

}  // namespace maopt::core
