// Pseudo-sample generation (paper Eq. 3, population-based technique [20]):
// from N simulated designs, up to N^2 training pairs
//   input  (x_i, x_j - x_i)   ->   target f(x_j)
// teach the critic the effect of *moves* in the design space, not just
// point values. Pairs are drawn on demand instead of materializing N^2 rows.
#pragma once

#include "common/rng.hpp"
#include "core/history.hpp"
#include "nn/normalizer.hpp"

namespace maopt::core {

class PseudoSampleBatcher {
 public:
  /// Inputs are expressed in the unit design space defined by `scaler`;
  /// targets are raw metric vectors. The unit-scaled design matrix and the
  /// metric matrix are precomputed here — O(n*(d+m)) once — so sample() is
  /// pure row copies. Neither `records` nor `scaler` is retained.
  PseudoSampleBatcher(const std::vector<SimRecord>& records, const nn::RangeScaler& scaler);

  /// Draws `batch` (i, j) pairs uniformly with replacement and fills
  /// X (batch x 2d) = [unit(x_i), unit(x_j) - unit(x_i)] and
  /// Y (batch x (m+1)) = metrics(x_j). X and Y reuse capacity across calls:
  /// zero allocations once warmed. Thread-safe for concurrent callers with
  /// distinct `rng`/`x`/`y` (all shared state is read-only).
  void sample(std::size_t batch, Rng& rng, nn::Mat& x, nn::Mat& y) const;

  std::size_t population() const { return unit_.rows(); }

 private:
  nn::Mat unit_;     ///< (n x d) unit-space designs
  nn::Mat metrics_;  ///< (n x (m+1)) raw metric vectors
};

}  // namespace maopt::core
