// Pseudo-sample generation (paper Eq. 3, population-based technique [20]):
// from N simulated designs, up to N^2 training pairs
//   input  (x_i, x_j - x_i)   ->   target f(x_j)
// teach the critic the effect of *moves* in the design space, not just
// point values. Pairs are drawn on demand instead of materializing N^2 rows.
#pragma once

#include "common/rng.hpp"
#include "core/history.hpp"
#include "nn/normalizer.hpp"

namespace maopt::core {

class PseudoSampleBatcher {
 public:
  /// `records` must outlive the batcher. Inputs are expressed in the unit
  /// design space defined by `scaler`; targets are raw metric vectors.
  PseudoSampleBatcher(const std::vector<SimRecord>& records, const nn::RangeScaler& scaler);

  /// Draws `batch` (i, j) pairs uniformly with replacement and fills
  /// X (batch x 2d) = [unit(x_i), unit(x_j) - unit(x_i)] and
  /// Y (batch x (m+1)) = metrics(x_j).
  void sample(std::size_t batch, Rng& rng, nn::Mat& x, nn::Mat& y) const;

  std::size_t population() const { return records_->size(); }

 private:
  const std::vector<SimRecord>* records_;
  const nn::RangeScaler* scaler_;
};

}  // namespace maopt::core
