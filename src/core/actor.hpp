// Actor network (paper Eq. 5/6): predicts the design change dx = mu(x) that
// minimizes the critic-predicted FoM, with a boundary-violation penalty
// lambda * ||viol||_2 boxing the proposed design into the elite set's
// bounding box. Training is the deterministic-policy-gradient chain
//   dL/dtheta = (dg/dQ . dQ/da + dviol/da) . da/dtheta,
// implemented with the critic's input-gradient path.
#pragma once

#include "circuits/fom.hpp"
#include "core/critic.hpp"
#include "core/elite_set.hpp"

namespace maopt::core {

struct ActorConfig {
  std::vector<std::size_t> hidden = {100, 100};  ///< paper: 2 x 100
  double learning_rate = 1e-3;
  std::size_t batch_size = 64;  ///< N_b
  int steps_per_round = 30;
  double lambda = 10.0;  ///< boundary-violation weight (paper: "significantly large")
};

class Actor {
 public:
  Actor(std::size_t dim, const ActorConfig& config, Rng& rng);

  /// One training round against `critic` (each thread passes its own copy).
  /// States are drawn from `records`; `elite_lb/ub` are the elite bounding
  /// box mapped to unit space. Returns the mean loss over the round.
  double train_round(Surrogate& critic, const FomEvaluator& fom,
                     const std::vector<SimRecord>& records, const nn::RangeScaler& scaler,
                     const Vec& elite_lb_unit, const Vec& elite_ub_unit, Rng& rng);

  /// Action mu(x) for a single unit-space state.
  Vec propose_unit(const Vec& x_unit);

  /// Algorithm 1 line 8: over the elite entries, pick the state whose
  /// proposed move has the lowest critic-predicted FoM; returns the proposed
  /// design in unit space (x* + mu(x*), unclipped).
  Vec select_candidate_unit(Surrogate& critic, const FomEvaluator& fom,
                            const std::vector<EliteSet::Entry>& elites,
                            const nn::RangeScaler& scaler);

  std::size_t dim() const { return dim_; }
  nn::Mlp& network() { return mlp_; }

 private:
  std::size_t dim_;
  ActorConfig config_;
  nn::Mlp mlp_;
  nn::Adam adam_;
};

}  // namespace maopt::core
