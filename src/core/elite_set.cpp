#include "core/elite_set.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/hash.hpp"

namespace maopt::core {

EliteSet::EliteSet(std::size_t capacity) : capacity_(capacity) {
  MAOPT_CHECK(capacity > 0, "EliteSet: capacity must be >= 1");
  entries_.reserve(capacity);
}

bool EliteSet::try_insert(const Vec& x, double fom) {
  // A NaN FoM would violate the strict weak ordering the sorted vector
  // relies on and silently corrupt the ranking.
  MAOPT_CHECK(!std::isnan(fom), "EliteSet::try_insert: NaN FoM");
  MAOPT_CHECK(!x.empty(), "EliteSet::try_insert: empty design vector");
  const MutexLock lock(mutex_);
  MAOPT_CHECK(entries_.empty() || x.size() == entries_.front().x.size(),
              "EliteSet::try_insert: design dimension differs from existing members");
  if (entries_.size() >= capacity_ && fom >= entries_.back().fom) return false;
  // Exact-duplicate screen (epsilon 0: bit-identical designs). The hash
  // filters candidates; the coordinate compare rules out collisions. A
  // duplicate with a better FoM re-ranks the existing member in place.
  const std::uint64_t h = hash_design(x);
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->hash != h || it->x != x) continue;
    if (fom >= it->fom) return false;
    entries_.erase(it);
    break;
  }
  const auto pos = std::upper_bound(entries_.begin(), entries_.end(), fom,
                                    [](double f, const Entry& e) { return f < e.fom; });
  entries_.insert(pos, Entry{x, fom, h});
  if (entries_.size() > capacity_) entries_.pop_back();
  return true;
}

std::vector<EliteSet::Entry> EliteSet::snapshot() const {
  const MutexLock lock(mutex_);
  return entries_;
}

EliteSet::Entry EliteSet::best() const {
  const MutexLock lock(mutex_);
  MAOPT_CHECK(!entries_.empty(), "EliteSet::best: empty");
  return entries_.front();
}

void EliteSet::bounds(Vec& lower, Vec& upper) const {
  const MutexLock lock(mutex_);
  MAOPT_CHECK(!entries_.empty(), "EliteSet::bounds: empty");
  const std::size_t d = entries_.front().x.size();
  lower.assign(d, 1e300);
  upper.assign(d, -1e300);
  for (const auto& e : entries_) {
    for (std::size_t i = 0; i < d; ++i) {
      lower[i] = std::min(lower[i], e.x[i]);
      upper[i] = std::max(upper[i], e.x[i]);
    }
  }
}

std::size_t EliteSet::size() const {
  const MutexLock lock(mutex_);
  return entries_.size();
}

}  // namespace maopt::core
