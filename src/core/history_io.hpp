// Run persistence: CSV export of per-simulation records and best-FoM
// trajectories (offline analysis, Fig. 5-style plots), plus versioned binary
// checkpoints that let a killed run resume mid-budget instead of losing
// hundreds of simulations (see MaOptimizer::resume).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "core/history.hpp"

namespace maopt::core {

/// One row per record: index, phase (initial/search), every design
/// parameter (named), every metric (named), fom, feasible, simulation_ok.
void write_records_csv(std::ostream& out, const RunHistory& history,
                       const SizingProblem& problem);
void write_records_csv(const std::string& path, const RunHistory& history,
                       const SizingProblem& problem);

/// One row per post-initial simulation: index, best-FoM-so-far.
void write_trajectory_csv(std::ostream& out, const RunHistory& history);
void write_trajectory_csv(const std::string& path, const RunHistory& history);

/// Current on-disk checkpoint format version. v2 appends the sweep
/// provenance fields (degraded / variants_failed / variants_total) to each
/// record. load_checkpoint still reads v1 snapshots (provenance defaults to
/// single-point) and rejects anything else.
inline constexpr std::uint32_t kCheckpointFormatVersion = 2;

/// A resumable snapshot of a run: the full history plus the master seed the
/// run's RNG streams derive from. Because every optimizer RNG stream is
/// re-derived from (seed, stream-id, iteration), history + seed is enough to
/// deterministically replay surrogate state without re-simulating — see
/// MaOptimizer::resume.
struct RunCheckpoint {
  std::uint32_t version = kCheckpointFormatVersion;
  std::uint64_t seed = 0;
  RunHistory history;
};

/// Writes the snapshot atomically: the payload goes to `path` + ".tmp" and
/// is renamed over `path`, so readers never observe a torn file and a crash
/// mid-write leaves any previous checkpoint intact. Returns the snapshot
/// size in bytes (reported in obs::CheckpointWritten). Throws
/// std::runtime_error on I/O failure.
std::uint64_t save_checkpoint(const std::string& path, const RunHistory& history,
                              std::uint64_t seed);

/// Loads a snapshot written by save_checkpoint. Throws std::runtime_error on
/// a missing file, bad magic, unsupported version, or truncation.
RunCheckpoint load_checkpoint(const std::string& path);

}  // namespace maopt::core
