// CSV export of optimization runs: per-simulation design/metric records and
// best-FoM trajectories, for offline analysis or plotting Fig. 5-style
// curves with external tools.
#pragma once

#include <iosfwd>
#include <string>

#include "core/history.hpp"

namespace maopt::core {

/// One row per record: index, phase (initial/search), every design
/// parameter (named), every metric (named), fom, feasible, simulation_ok.
void write_records_csv(std::ostream& out, const RunHistory& history,
                       const SizingProblem& problem);
void write_records_csv(const std::string& path, const RunHistory& history,
                       const SizingProblem& problem);

/// One row per post-initial simulation: index, best-FoM-so-far.
void write_trajectory_csv(std::ostream& out, const RunHistory& history);
void write_trajectory_csv(const std::string& path, const RunHistory& history);

}  // namespace maopt::core
