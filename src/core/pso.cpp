#include "core/pso.hpp"

#include <algorithm>
#include <utility>

#include "common/log.hpp"

namespace maopt::core {

RunHistory PsoOptimizer::do_run(const SizingProblem& problem,
                                const std::vector<SimRecord>& initial, const FomEvaluator& fom,
                                const RunOptions& options, obs::RunTelemetry& telemetry) {
  RunHistory history;
  history.algorithm = name();
  history.records = initial;
  history.num_initial = initial.size();
  annotate_foms(history.records, problem, fom);

  Rng rng(derive_seed(options.seed, 0x9507));
  const std::size_t d = problem.dim();
  const Vec& lo = problem.lower_bounds();
  const Vec& hi = problem.upper_bounds();
  const std::size_t simulation_budget = options.simulation_budget;

  // Seed the swarm with the best initial designs (fill with random if the
  // initial set is smaller than the swarm).
  std::vector<const SimRecord*> sorted;
  for (const auto& r : history.records) sorted.push_back(&r);
  std::sort(sorted.begin(), sorted.end(),
            [](const SimRecord* a, const SimRecord* b) { return a->fom < b->fom; });

  const std::size_t n = config_.swarm_size;
  std::vector<Vec> pos(n), vel(n, Vec(d, 0.0)), pbest(n);
  std::vector<double> pbest_fom(n);
  Vec gbest;
  double gbest_fom = 1e300;
  for (std::size_t i = 0; i < n; ++i) {
    pos[i] = i < sorted.size() ? sorted[i]->x : problem.random_design(rng);
    pbest[i] = pos[i];
    pbest_fom[i] = i < sorted.size() ? sorted[i]->fom : 1e300;
    if (pbest_fom[i] < gbest_fom) {
      gbest_fom = pbest_fom[i];
      gbest = pbest[i];
    }
  }

  Stopwatch total;
  double best = gbest_fom;
  bool feasible_found = false;
  for (const auto& r : history.records) feasible_found = feasible_found || r.feasible;
  std::size_t sims = 0;
  std::uint64_t iteration = 0;
  // One iteration = one sweep over the swarm; the velocity/position updates
  // report as an ActorTrain span (candidate selection), evaluations as
  // per-simulation Simulate spans.
  while (sims < simulation_budget) {
    if (options.control != nullptr) {
      const RunControl::Signal signal = options.control->poll();
      if (signal == RunControl::Signal::Kill) {
        history.aborted = true;
        history.abort_reason = "killed";
        break;
      }
      if (signal == RunControl::Signal::Pause) break;
    }
    ++iteration;
    Stopwatch iter_clock;
    std::vector<obs::PhaseSpan> spans;
    double select_s = 0.0;
    for (std::size_t i = 0; i < n && sims < simulation_budget; ++i) {
      Stopwatch select;
      // Velocity / position update with per-dimension velocity clamp.
      for (std::size_t c = 0; c < d; ++c) {
        const double span = hi[c] - lo[c];
        const double vmax = config_.v_max_frac * span;
        double v = config_.inertia * vel[i][c] +
                   config_.cognitive * rng.uniform() * (pbest[i][c] - pos[i][c]) +
                   config_.social * rng.uniform() * (gbest[c] - pos[i][c]);
        vel[i][c] = std::clamp(v, -vmax, vmax);
        pos[i][c] = pos[i][c] + vel[i][c];
      }
      pos[i] = problem.clip(std::move(pos[i]));
      select_s += select.elapsed_seconds();

      Stopwatch sim;
      SimRecord rec = evaluate_record(problem, pos[i]);
      const double sim_s = sim.elapsed_seconds();
      history.sim_seconds += sim_s;
      annotate_record(rec, problem, fom);

      if (rec.fom < pbest_fom[i]) {
        pbest_fom[i] = rec.fom;
        pbest[i] = rec.x;
      }
      if (rec.fom < gbest_fom) {
        gbest_fom = rec.fom;
        gbest = rec.x;
      }
      best = std::min(best, rec.fom);
      feasible_found = feasible_found || rec.feasible;
      history.records.push_back(std::move(rec));
      history.best_fom_after.push_back(best);
      emit_simulation(telemetry, history.records.back(), sims, iteration, -1, sim_s, problem);
      if (telemetry.enabled()) spans.push_back({obs::Phase::Simulate, -1, sim_s});
      ++sims;
    }
    if (telemetry.enabled()) spans.push_back({obs::Phase::ActorTrain, -1, select_s});
    emit_iteration(telemetry, iteration, sims, best, feasible_found,
                   iter_clock.elapsed_seconds(), std::move(spans));
  }
  history.wall_seconds = total.elapsed_seconds();
  return history;
}

}  // namespace maopt::core
