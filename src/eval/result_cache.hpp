// Content-addressed evaluation-result cache — the storage half of the
// evaluation service (eval_service.hpp).
//
// Keys are 128-bit hashes of (problem fingerprint, quantized design vector):
// the fingerprint covers everything that changes what a simulation means
// (spec, dimension, bounds, integer mask, constraint bounds/weights), and the
// design vector is quantized by a configurable epsilon (common/hash.hpp), so
// a journal written by one run addresses the results of any later run of the
// same problem. Two levels:
//
//   L1  bounded in-memory LRU of full results (metrics + the exact design
//       that produced them).
//   L2  append-only on-disk journal (versioned MAOPTEVC header carrying the
//       quantization epsilon). Records are appended + flushed one at a time,
//       so a crash loses at most the record being written; loading tolerates
//       a truncated tail and compacts the file via tmp + rename — the same
//       atomic-replace discipline as history_io checkpoints. An L2 hit reads
//       the record back from disk and promotes it into L1.
//
// Only successful simulations are stored: a failure (timeout, garbage, NaN)
// may be transient, and replaying it from a cache would turn a recoverable
// fault into a permanent one.
#pragma once

#include <cstdint>
#include <fstream>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.hpp"

#include "circuits/sizing_problem.hpp"
#include "linalg/matrix.hpp"

namespace maopt::eval {

using linalg::Vec;

/// 128-bit content address: two independently-seeded 64-bit design hashes,
/// making accidental collisions (which would silently alias two designs'
/// results) negligible at any realistic cache size.
struct CacheKey {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
  bool operator==(const CacheKey&) const = default;
};

struct CacheKeyHash {
  std::size_t operator()(const CacheKey& k) const {
    return static_cast<std::size_t>(k.hi ^ (k.lo * 0x9E3779B97F4A7C15ULL));
  }
};

/// Stable identity hash of a sizing problem: spec name, target name/weight,
/// every constraint (name, kind, bound, weight), dimension, bounds and
/// integer mask. Decorators that forward spec()/bounds() unchanged
/// (ResilientEvaluator, EvalService itself) share the fingerprint of the
/// problem they wrap, which is what makes a cache survive re-wrapping.
std::uint64_t problem_fingerprint(const ckt::SizingProblem& problem);

CacheKey make_cache_key(std::uint64_t problem_fp, std::span<const double> x, double epsilon);

/// Stable identity hash of a process-variation setting, folded into the
/// problem fingerprint for per-variant cache keys: corner and Monte Carlo
/// results are addressed separately from nominal ones (and from each other),
/// so a sweep never aliases a nominal cache entry. Returns 0 for a disabled
/// (all-default) variation — callers skip the fold so nominal keys, and with
/// them every pre-existing journal, stay byte-identical.
std::uint64_t variation_fingerprint(const ckt::ProcessVariation& pv);

/// One cached evaluation: the exact design simulated (not the quantized
/// bucket) and its metric vector. `problem_fp` routes warm starts to the
/// right problem when one journal holds several.
struct CachedEval {
  std::uint64_t problem_fp = 0;
  Vec x;
  Vec metrics;
};

/// Current journal format version (load rejects other versions by starting
/// an empty cache; compaction rewrites the current version).
inline constexpr std::uint32_t kJournalFormatVersion = 1;

class ResultCache {
 public:
  struct Config {
    std::size_t memory_capacity = 4096;  ///< L1 entries (>= 1)
    std::string journal_path;            ///< empty: memory-only (no L2)
    double quant_epsilon = 0.0;          ///< must match the journal's header
  };

  /// Loads the journal when one exists. A missing file starts empty; a
  /// corrupt header or epsilon mismatch starts empty and logs a warning (the
  /// stale journal is replaced on the first insert-triggered compaction); a
  /// truncated tail keeps every complete record and compacts immediately.
  explicit ResultCache(Config config);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Metrics for `key`, or nullopt. An L2 hit is promoted into L1.
  std::optional<Vec> lookup(const CacheKey& key);

  /// Stores a successful evaluation under `key` (first writer wins; a key
  /// already present is left untouched). Appends to the journal when
  /// persistence is enabled.
  void insert(const CacheKey& key, std::uint64_t problem_fp, const Vec& x, const Vec& metrics);

  /// Every resident entry whose problem fingerprint matches, in insertion
  /// order (journal order first, then this process's inserts). Entries
  /// evicted from a memory-only cache are gone and skipped.
  std::vector<CachedEval> entries_for(std::uint64_t problem_fp) const;

  /// Rewrites the journal with exactly the current entries (tmp + rename).
  void compact();

  std::size_t size() const;
  const Config& config() const { return config_; }

 private:
  struct Entry {
    CachedEval eval;
    std::list<CacheKey>::iterator lru_pos;  ///< valid iff resident in L1
    bool in_l1 = false;
    std::uint64_t file_offset = 0;  ///< valid iff on disk
    bool on_disk = false;
  };

  void load_journal() MAOPT_REQUIRES(mutex_);
  void append_journal(const CacheKey& key, Entry& entry) MAOPT_REQUIRES(mutex_);
  std::optional<CachedEval> read_record_at(std::uint64_t offset) const MAOPT_REQUIRES(mutex_);
  void evict_overflow() MAOPT_REQUIRES(mutex_);
  void compact_locked() MAOPT_REQUIRES(mutex_);

  Config config_;
  /// Leaf lock (DESIGN.md "Lock hierarchy"): acquired below
  /// EvalService::inflight_mutex_ (the dedup re-check calls lookup() with the
  /// in-flight map locked); nothing is acquired while this is held. Guards
  /// the whole store — including the journal streams, so L2 reads and
  /// appends are serialized with the index they are consistent with.
  mutable Mutex mutex_;
  std::unordered_map<CacheKey, Entry, CacheKeyHash> entries_ MAOPT_GUARDED_BY(mutex_);
  std::list<CacheKey> lru_ MAOPT_GUARDED_BY(mutex_);  ///< front = most recent
  std::vector<CacheKey> insertion_order_ MAOPT_GUARDED_BY(mutex_);
  mutable std::ifstream reader_ MAOPT_GUARDED_BY(mutex_);
  std::ofstream writer_ MAOPT_GUARDED_BY(mutex_);
  std::uint64_t journal_bytes_ MAOPT_GUARDED_BY(mutex_) = 0;
};

}  // namespace maopt::eval
