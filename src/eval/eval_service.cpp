#include "eval/eval_service.hpp"

#include <filesystem>
#include <thread>
#include <utility>

#include "common/log.hpp"
#include "common/thread_pool.hpp"

namespace maopt::eval {

namespace {

thread_local EvalOutcome t_last_outcome;  // NOLINT(cppcoreguidelines-avoid-non-const-global-variables)
thread_local std::string t_tenant;        // NOLINT(cppcoreguidelines-avoid-non-const-global-variables)

std::string journal_path_for(const std::string& cache_dir) {
  if (cache_dir.empty()) return {};
  return (std::filesystem::path(cache_dir) / "eval_cache.bin").string();
}

/// RAII admission grant: blocks in the constructor until the tenant is
/// granted `n` simulation slots, returns them on destruction (every exit
/// path, including exceptions thrown by the inner simulator).
class AdmissionGuard {
 public:
  AdmissionGuard(BatchAdmission* admission, std::string tenant, std::size_t n)
      : admission_(admission), tenant_(std::move(tenant)), n_(n) {
    if (admission_ != nullptr && n_ > 0) admission_->acquire(tenant_, n_);
  }
  ~AdmissionGuard() {
    if (admission_ != nullptr && n_ > 0) admission_->release(tenant_, n_);
  }

  AdmissionGuard(const AdmissionGuard&) = delete;
  AdmissionGuard& operator=(const AdmissionGuard&) = delete;
  AdmissionGuard(AdmissionGuard&&) = delete;
  AdmissionGuard& operator=(AdmissionGuard&&) = delete;

 private:
  BatchAdmission* admission_;
  std::string tenant_;
  std::size_t n_;
};

}  // namespace

ScopedTenant::ScopedTenant(std::string name) : previous_(std::move(t_tenant)) {
  t_tenant = std::move(name);
}

ScopedTenant::~ScopedTenant() { t_tenant = std::move(previous_); }

const std::string& EvalService::current_tenant() { return t_tenant; }

EvalService::EvalService(const ckt::SizingProblem& inner, EvalServiceConfig config)
    : inner_(&inner),
      resilient_(dynamic_cast<const ckt::ResilientEvaluator*>(&inner)),
      config_(std::move(config)),
      problem_fp_(problem_fingerprint(inner)) {
  ResultCache::Config cache_config;
  cache_config.memory_capacity = config_.memory_capacity;
  cache_config.journal_path = journal_path_for(config_.cache_dir);
  cache_config.quant_epsilon = config_.quant_epsilon;
  cache_ = std::make_unique<ResultCache>(std::move(cache_config));
}

EvalService::~EvalService() = default;

ThreadPool& EvalService::batch_pool() const {
  if (config_.shared_pool != nullptr) return *config_.shared_pool;
  const MutexLock lock(pool_mutex_);
  if (!pool_) {
    std::size_t n = config_.num_threads;
    if (n == 0) n = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    pool_ = std::make_unique<ThreadPool>(n);
  }
  return *pool_;
}

void EvalService::register_tenant(const std::string& name, const std::string& cache_dir) {
  if (name.empty()) return;  // the empty name is the default namespace
  const MutexLock lock(tenants_mutex_);
  if (tenants_.contains(name)) return;
  ResultCache::Config cache_config;
  cache_config.memory_capacity = config_.memory_capacity;
  cache_config.journal_path = journal_path_for(cache_dir);
  cache_config.quant_epsilon = config_.quant_epsilon;
  tenants_.emplace(name, std::make_unique<ResultCache>(std::move(cache_config)));
}

ResultCache& EvalService::cache_for(const std::string& tenant) const {
  if (tenant.empty()) return *cache_;
  const MutexLock lock(tenants_mutex_);
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? *cache_ : *it->second;
}

std::unique_ptr<ckt::EvalSession> EvalService::acquire_session() const {
  if (!config_.use_sessions) return nullptr;
  {
    const MutexLock lock(sessions_mutex_);
    if (!sessions_.empty()) {
      auto session = std::move(sessions_.back());
      sessions_.pop_back();
      return session;
    }
  }
  return inner_->make_session();
}

void EvalService::release_session(std::unique_ptr<ckt::EvalSession> session) const {
  if (session == nullptr) return;
  const MutexLock lock(sessions_mutex_);
  sessions_.push_back(std::move(session));
}

EvalOutcome EvalService::last_outcome() { return t_last_outcome; }

EvalCounters EvalService::counters() const {
  EvalCounters c;
  c.requested = requested_.load(std::memory_order_relaxed);
  c.hits = hits_.load(std::memory_order_relaxed);
  c.misses = misses_.load(std::memory_order_relaxed);
  c.coalesced = coalesced_.load(std::memory_order_relaxed);
  c.simulations = simulations_.load(std::memory_order_relaxed);
  return c;
}

ckt::EvalResult EvalService::evaluate(const Vec& x) const {
  t_last_outcome = EvalOutcome{};  // a throwing call must not leave a stale outcome
  const AdmissionGuard grant(admission_.load(std::memory_order_acquire), t_tenant, 1);
  EvalOutcome outcome;
  ckt::EvalResult result = evaluate_impl(x, ckt::ProcessVariation{}, cache_for(t_tenant), outcome);
  t_last_outcome = outcome;
  return result;
}

ckt::EvalResult EvalService::evaluate_at(const Vec& x, const ckt::ProcessVariation& pv) const {
  ckt::validate_process_variation(pv);
  t_last_outcome = EvalOutcome{};  // a throwing call must not leave a stale outcome
  const AdmissionGuard grant(admission_.load(std::memory_order_acquire), t_tenant, 1);
  EvalOutcome outcome;
  ckt::EvalResult result = evaluate_impl(x, pv, cache_for(t_tenant), outcome);
  t_last_outcome = outcome;
  return result;
}

std::vector<ckt::EvalResult> EvalService::evaluate_variants(
    const Vec& x, std::span<const ckt::ProcessVariation> pvs) const {
  std::vector<ckt::EvalResult> results(pvs.size());
  if (pvs.empty()) return results;
  // Tenant and admission are resolved here, on the caller's thread — pool
  // workers never inherit the thread-local namespace.
  const AdmissionGuard grant(admission_.load(std::memory_order_acquire), t_tenant, pvs.size());
  ResultCache& cache = cache_for(t_tenant);

  // A throwing variant must become a failed result, not a lost sweep: the
  // sweep engine owns partial-failure semantics and needs every slot filled.
  const auto run_one = [this, &x, &pvs, &results, &cache](std::size_t i) {
    EvalOutcome outcome;
    try {
      results[i] = evaluate_impl(x, pvs[i], cache, outcome);
    } catch (...) {
      results[i].metrics = inner_->failure_metrics();
      results[i].simulation_ok = false;
    }
  };

  if (pvs.size() == 1) {
    run_one(0);
    return results;
  }
  ThreadPool& pool = batch_pool();
  std::vector<std::future<void>> futures;
  futures.reserve(pvs.size());
  for (std::size_t i = 0; i < pvs.size(); ++i)
    futures.push_back(pool.submit([&run_one, i] { run_one(i); }));
  for (auto& fut : futures) fut.get();
  return results;
}

ckt::EvalResult EvalService::evaluate_impl(const Vec& x, const ckt::ProcessVariation& pv,
                                           ResultCache& cache, EvalOutcome& outcome) const {
  requested_.fetch_add(1, std::memory_order_relaxed);
  // Per-variant content address: an enabled variation folds its fingerprint
  // into the problem fingerprint, so every corner / MC instance of a design
  // caches (and dedups) independently; nominal keys are unchanged.
  const std::uint64_t fp =
      pv.enabled() ? problem_fp_ ^ variation_fingerprint(pv) : problem_fp_;
  const CacheKey key = make_cache_key(fp, x, config_.quant_epsilon);

  // Fast path: already cached (in this request's tenant namespace).
  if (auto metrics = cache.lookup(key)) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    outcome = EvalOutcome{};
    outcome.cache_hit = true;
    return ckt::EvalResult{std::move(*metrics), /*simulation_ok=*/true};
  }

  std::shared_ptr<InFlight> flight;
  bool producer = false;
  {
    const MutexLock lock(inflight_mutex_);
    // Re-check under the lock: a producer may have published between our
    // lookup above and here (publishers insert into the cache *before*
    // erasing their in-flight entry, so this pair of checks has no gap).
    if (auto metrics = cache.lookup(key)) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      outcome = EvalOutcome{};
      outcome.cache_hit = true;
      return ckt::EvalResult{std::move(*metrics), /*simulation_ok=*/true};
    }
    auto it = inflight_.find(key);
    if (it != inflight_.end()) {
      flight = it->second;  // join the running simulation
    } else {
      flight = std::make_shared<InFlight>();
      flight->future = flight->promise.get_future().share();
      inflight_.emplace(key, flight);
      producer = true;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);

  if (!producer) {
    coalesced_.fetch_add(1, std::memory_order_relaxed);
    ckt::EvalResult result = flight->future.get();
    // The producer wrote its outcome before resolving the promise, so this
    // read is ordered-after the write.
    outcome = flight->outcome;
    outcome.coalesced = true;
    outcome.seconds = 0.0;  // no new simulation ran for this request
    // Cross-tenant dedup: a consumer in a different namespace records the
    // shared result in its own cache, so its journal stays self-contained.
    if (result.simulation_ok && flight->published_to != &cache)
      cache.insert(key, fp, x, result.metrics);
    return result;
  }

  // Producer: run the simulation on this thread, publish, then resolve.
  // Evaluation goes through a pooled session when enabled, so repeated
  // same-topology designs reuse one prepared testbench and its solver
  // workspaces instead of rebuilding everything per design.
  simulations_.fetch_add(1, std::memory_order_relaxed);
  // Pooled sessions are pinned to the nominal variation (the service-lifetime
  // assumption use_sessions documents); varied evaluations go through the
  // thread-safe variation-pinned primitive instead.
  std::unique_ptr<ckt::EvalSession> session = pv.enabled() ? nullptr : acquire_session();
  ckt::EvalResult result;
  Stopwatch timer;
  try {
    result = session != nullptr ? session->evaluate(x) : inner_->evaluate_at(x, pv);
  } catch (...) {
    // Keep the waiters and the in-flight map consistent even when the inner
    // problem throws (possible when the service wraps a raw problem rather
    // than a ResilientEvaluator).
    outcome = EvalOutcome{};
    outcome.seconds = timer.elapsed_seconds();
    outcome.call.failed = true;
    outcome.call.last_kind = ckt::FailureKind::Exception;
    flight->outcome = outcome;
    {
      const MutexLock lock(inflight_mutex_);
      inflight_.erase(key);
    }
    flight->promise.set_exception(std::current_exception());
    throw;
  }
  outcome = EvalOutcome{};
  outcome.seconds = timer.elapsed_seconds();
  if (resilient_ != nullptr) outcome.call = ckt::ResilientEvaluator::last_call_stats();

  release_session(std::move(session));  // the throw path drops it instead

  if (result.simulation_ok) cache.insert(key, fp, x, result.metrics);
  flight->outcome = outcome;
  flight->published_to = &cache;
  {
    const MutexLock lock(inflight_mutex_);
    inflight_.erase(key);
  }
  flight->promise.set_value(result);
  return result;
}

std::vector<ckt::EvalResult> EvalService::evaluate_batch(
    std::span<const Vec> xs, std::vector<EvalOutcome>* outcomes) const {
  std::vector<ckt::EvalResult> results(xs.size());
  if (outcomes != nullptr) {
    outcomes->clear();
    outcomes->resize(xs.size());
  }
  if (xs.empty()) return results;
  // This is the scheduler's throttle point: the whole batch is one grant, so
  // a greedy job waits here while other tenants' batches drain. Tenant and
  // cache are resolved on the caller's thread (workers have no namespace).
  const AdmissionGuard grant(admission_.load(std::memory_order_acquire), t_tenant, xs.size());
  ResultCache& cache = cache_for(t_tenant);
  if (xs.size() == 1) {
    EvalOutcome outcome;
    results[0] = evaluate_impl(xs[0], ckt::ProcessVariation{}, cache, outcome);
    t_last_outcome = outcome;
    if (outcomes != nullptr) (*outcomes)[0] = outcome;
    return results;
  }

  ThreadPool& pool = batch_pool();
  std::vector<std::future<void>> futures;
  futures.reserve(xs.size());
  std::vector<EvalOutcome> local(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    futures.push_back(pool.submit([this, &xs, &results, &local, &cache, i] {
      results[i] = evaluate_impl(xs[i], ckt::ProcessVariation{}, cache, local[i]);
    }));
  }
  // Wait on everything before rethrowing so the captured references above
  // are dead when an exception propagates.
  std::exception_ptr first_error;
  for (auto& fut : futures) {
    try {
      fut.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  if (outcomes != nullptr) *outcomes = std::move(local);
  return results;
}

}  // namespace maopt::eval
