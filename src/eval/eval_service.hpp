// EvalService — the single owner of simulator calls.
//
// A SizingProblem decorator (same shape as ResilientEvaluator, and designed
// to wrap it) that gives every optimizer, point-path or batched, the same
// three wins:
//
//   * Content-addressed result cache. Each request is keyed by
//     (problem fingerprint, quantized design); a hit returns the stored
//     metrics without touching the simulator. Two levels — in-memory LRU +
//     optional on-disk journal (result_cache.hpp) — so results survive the
//     process and warm-start later runs.
//   * In-flight deduplication. Concurrent requests for the same key share
//     one underlying simulation: the first becomes the producer, the rest
//     block on its shared future and receive the identical result.
//   * Batched evaluation. evaluate_batch() fans a span of designs over an
//     internal ThreadPool, so the N_act proposals of one MA-Opt iteration
//     (or an NS candidate ranking) become one parallel batch.
//
// Budget semantics: a cache hit still *counts* as a simulation for budget
// purposes — callers consume budget per request exactly as before — the
// service only removes the wall-clock cost. This keeps trajectories
// bit-identical between cold and warm runs at the same seed, which is what
// makes the persistence smoke test (same seed twice) meaningful.
//
// Only simulation_ok results are cached; failures may be transient and are
// re-attempted on every request.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.hpp"

#include "circuits/resilient_problem.hpp"
#include "circuits/sizing_problem.hpp"
#include "circuits/variation_sweep.hpp"
#include "eval/result_cache.hpp"

namespace maopt {
class ThreadPool;
}

namespace maopt::eval {

struct EvalServiceConfig {
  /// Workers for evaluate_batch(); 0 uses hardware_concurrency. The pool is
  /// created lazily on the first batch call, so point-path users pay nothing.
  std::size_t num_threads = 0;
  /// Externally-owned worker pool shared across services (the daemon gives
  /// every per-problem EvalService one pool so N jobs contend for one set of
  /// simulator workers). Overrides num_threads; must outlive the service.
  ThreadPool* shared_pool = nullptr;
  std::size_t memory_capacity = 4096;  ///< L1 LRU entries
  /// Directory for the persistent journal (`eval_cache.bin` inside it);
  /// empty disables persistence (memory-only cache).
  std::string cache_dir;
  double quant_epsilon = 0.0;  ///< design quantization for cache keys
  /// Evaluate through pooled EvalSessions (see ckt::EvalSession): persistent
  /// per-worker testbenches amortize netlist construction and solver
  /// workspaces across same-topology designs. Sessions snapshot the inner
  /// problem's process-variation settings when first created — the same
  /// service-lifetime assumption the cache fingerprint already makes.
  bool use_sessions = true;
};

/// Monotonic service totals. Invariants (validated by check_telemetry.py):
///   hits + misses == requested
///   coalesced     <= misses
///   simulations   == misses - coalesced   (underlying simulator calls)
struct EvalCounters {
  std::uint64_t requested = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t coalesced = 0;
  std::uint64_t simulations = 0;
};

/// Simulation-grant gate, called at every public evaluation entry point.
/// acquire() blocks the calling tenant until the scheduler grants it `n`
/// simulation slots; release() returns them once the work (simulated, hit,
/// or coalesced — grants meter *requests*, the budget currency) completes.
/// Implementations must be thread-safe and must always eventually grant —
/// the service holds no lock while blocked in acquire(). The daemon's
/// serve::FairShareScheduler is the production implementation.
class BatchAdmission {
 public:
  BatchAdmission() = default;
  BatchAdmission(const BatchAdmission&) = default;
  BatchAdmission& operator=(const BatchAdmission&) = default;
  BatchAdmission(BatchAdmission&&) = default;
  BatchAdmission& operator=(BatchAdmission&&) = default;
  virtual ~BatchAdmission() = default;

  virtual void acquire(const std::string& tenant, std::size_t n) = 0;
  virtual void release(const std::string& tenant, std::size_t n) = 0;
};

/// Scopes the calling thread to a tenant namespace: cache lookups/inserts on
/// this thread go to the tenant's ResultCache (see
/// EvalService::register_tenant) and admission grants are accounted to it.
/// Thread-local and recursive-safe; the previous tenant is restored on
/// destruction. Pool workers do NOT inherit the caller's tenant — the
/// service captures it at the API entry point and threads it through.
class ScopedTenant {
 public:
  explicit ScopedTenant(std::string name);
  ~ScopedTenant();

  ScopedTenant(const ScopedTenant&) = delete;
  ScopedTenant& operator=(const ScopedTenant&) = delete;
  ScopedTenant(ScopedTenant&&) = delete;
  ScopedTenant& operator=(ScopedTenant&&) = delete;

 private:
  std::string previous_;
};

/// Per-request telemetry, mirroring ResilientEvaluator::CallStats: how the
/// result the caller just received was produced.
struct EvalOutcome {
  bool cache_hit = false;  ///< served from the result cache
  bool coalesced = false;  ///< shared a concurrent producer's simulation
  double seconds = 0.0;    ///< wall-clock of the underlying simulation; 0 when
                           ///< no new simulation ran (hit or coalesced)
  ckt::ResilientEvaluator::CallStats call;  ///< inner resilient stats (producer's)
};

class EvalService final : public ckt::SizingProblem, public ckt::SweepBackend {
 public:
  /// `inner` is not owned and must outlive this service. When `inner` is a
  /// ResilientEvaluator its per-call retry/failure stats are captured on the
  /// executing thread and surfaced through EvalOutcome::call.
  explicit EvalService(const ckt::SizingProblem& inner, EvalServiceConfig config = {});
  ~EvalService() override;

  EvalService(const EvalService&) = delete;
  EvalService& operator=(const EvalService&) = delete;

  const ckt::ProblemSpec& spec() const override { return inner_->spec(); }
  std::size_t dim() const override { return inner_->dim(); }
  const Vec& lower_bounds() const override { return inner_->lower_bounds(); }
  const Vec& upper_bounds() const override { return inner_->upper_bounds(); }
  const std::vector<bool>& integer_mask() const override { return inner_->integer_mask(); }
  std::vector<std::string> parameter_names() const override {
    return inner_->parameter_names();
  }
  Vec failure_metrics() const override { return inner_->failure_metrics(); }

  /// Point path: cache lookup -> in-flight join -> simulate. Thread-safe
  /// whenever the inner problem's evaluate() is.
  ckt::EvalResult evaluate(const Vec& x) const override;

  /// Variation-pinned point path: same cache/dedup pipeline under a
  /// per-variant key (problem fingerprint folded with the variation
  /// fingerprint when `pv` is enabled — nominal keys are unchanged, so
  /// existing journals stay valid). Enabled variations bypass the pooled
  /// sessions (those are pinned to the nominal setting) and evaluate through
  /// the inner problem's evaluate_at.
  ckt::EvalResult evaluate_at(const Vec& x,
                              const ckt::ProcessVariation& pv) const override;
  bool supports_process_variation() const override {
    return inner_->supports_process_variation();
  }
  std::uint64_t content_fingerprint() const override { return inner_->content_fingerprint(); }

  /// SweepBackend: fans one design's variants over the batch pool, each
  /// through the variation-pinned point path above. A variant whose
  /// simulation throws is returned as a failed EvalResult — partial failure
  /// is the expected case for sweep callers (variation_sweep.hpp).
  std::vector<ckt::EvalResult> evaluate_variants(
      const Vec& x, std::span<const ckt::ProcessVariation> pvs) const override;

  /// Batched path: evaluates every design over the internal pool (duplicates
  /// within the batch coalesce onto one simulation). Results are positional.
  /// When `outcomes` is non-null it is resized to xs.size() and filled with
  /// the per-request telemetry — the batched analog of last_outcome().
  std::vector<ckt::EvalResult> evaluate_batch(std::span<const Vec> xs,
                                              std::vector<EvalOutcome>* outcomes = nullptr) const;

  /// The EvalOutcome of the most recent evaluate() on the *calling thread*
  /// (thread-local, shared across instances — the same idiom as
  /// ResilientEvaluator::last_call_stats()).
  static EvalOutcome last_outcome();

  EvalCounters counters() const;

  /// Stable identity of the wrapped problem (see problem_fingerprint()).
  std::uint64_t fingerprint() const { return problem_fp_; }

  /// Cached results for the wrapped problem, in insertion order — the feed
  /// for warm starts. Reads the calling thread's tenant namespace.
  std::vector<CachedEval> cached() const {
    return cache_for(current_tenant()).entries_for(problem_fp_);
  }

  ResultCache& cache() const { return *cache_; }
  const EvalServiceConfig& config() const { return config_; }

  /// Registers a tenant namespace: requests made under ScopedTenant(name) go
  /// through a private ResultCache whose journal lives in `cache_dir`
  /// (`eval_cache.bin` inside it; empty = memory-only). Journals are fully
  /// isolated per tenant while the in-flight dedup layer stays shared, so
  /// two tenants asking for the same design still share one simulation.
  /// Idempotent for an existing name; never removed for the service's life.
  void register_tenant(const std::string& name, const std::string& cache_dir = {});

  /// Installs the simulation-grant gate consulted by every public evaluation
  /// entry (not owned, may be null to remove; must outlive its installation).
  void set_admission(BatchAdmission* admission) {
    admission_.store(admission, std::memory_order_release);
  }

  /// The calling thread's tenant namespace (empty = the default namespace).
  static const std::string& current_tenant();

 private:
  struct InFlight {
    std::promise<ckt::EvalResult> promise;
    std::shared_future<ckt::EvalResult> future;
    EvalOutcome outcome;  ///< written by the producer before the promise resolves
    ResultCache* published_to = nullptr;  ///< producer's namespace (same ordering)
  };

  /// The tenant's ResultCache (the default cache for the empty / an unknown
  /// name). References stay valid for the service's lifetime.
  ResultCache& cache_for(const std::string& tenant) const;

  ckt::EvalResult evaluate_impl(const Vec& x, const ckt::ProcessVariation& pv, ResultCache& cache,
                                EvalOutcome& outcome) const;
  ThreadPool& batch_pool() const;

  /// Session pool: producers check a session out for the duration of one
  /// simulation and return it afterwards, so concurrent batch workers each
  /// drive their own persistent testbench. Returns null when sessions are
  /// disabled. A session whose evaluation threw is discarded, not returned.
  std::unique_ptr<ckt::EvalSession> acquire_session() const;
  void release_session(std::unique_ptr<ckt::EvalSession> session) const;

  const ckt::SizingProblem* inner_;
  const ckt::ResilientEvaluator* resilient_;  ///< inner_ when it is resilient
  EvalServiceConfig config_;
  std::uint64_t problem_fp_;
  std::unique_ptr<ResultCache> cache_;

  /// Lock hierarchy (DESIGN.md "Lock hierarchy"): inflight_mutex_ is held
  /// while calling into ResultCache (whose mutex_ is below it); the other two
  /// are leaves. No maopt lock is ever taken while holding pool_mutex_ or
  /// sessions_mutex_.
  mutable Mutex inflight_mutex_;
  mutable std::unordered_map<CacheKey, std::shared_ptr<InFlight>, CacheKeyHash> inflight_
      MAOPT_GUARDED_BY(inflight_mutex_);

  mutable Mutex pool_mutex_;
  mutable std::unique_ptr<ThreadPool> pool_ MAOPT_GUARDED_BY(pool_mutex_);

  mutable Mutex sessions_mutex_;
  mutable std::vector<std::unique_ptr<ckt::EvalSession>> sessions_
      MAOPT_GUARDED_BY(sessions_mutex_);  ///< idle sessions

  /// Leaf lock, held only for map resolution (never across cache or
  /// simulator calls). Tenant caches are append-only for the service's life.
  mutable Mutex tenants_mutex_;
  mutable std::unordered_map<std::string, std::unique_ptr<ResultCache>> tenants_
      MAOPT_GUARDED_BY(tenants_mutex_);

  std::atomic<BatchAdmission*> admission_{nullptr};

  mutable std::atomic<std::uint64_t> requested_{0};
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  mutable std::atomic<std::uint64_t> coalesced_{0};
  mutable std::atomic<std::uint64_t> simulations_{0};
};

}  // namespace maopt::eval
