#include "eval/result_cache.hpp"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <utility>

#include "common/check.hpp"
#include "common/hash.hpp"
#include "common/log.hpp"

namespace maopt::eval {

namespace {

constexpr char kJournalMagic[8] = {'M', 'A', 'O', 'P', 'T', 'E', 'V', 'C'};
constexpr std::uint64_t kMaxJournalElems = 1ULL << 20U;  ///< corruption guard
constexpr std::uint64_t kJournalHeaderBytes =
    sizeof(kJournalMagic) + sizeof(std::uint32_t) + sizeof(double);

// The lo lane folds the fingerprint under a different seed so hi/lo are
// decorrelated and the effective key width is genuinely 128 bits.
constexpr std::uint64_t kKeySeedHi = kHashSeed;
constexpr std::uint64_t kKeySeedLo = 0x9AE16A3B2F90404FULL;

template <typename T>
void put_pod(std::ostream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

void put_vec(std::ostream& out, const Vec& v) {
  put_pod<std::uint64_t>(out, v.size());
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(double)));
}

/// Checked reads return false on truncation instead of throwing: a torn tail
/// after a crash is an expected state the loader recovers from.
template <typename T>
bool get_pod(std::istream& in, T& value) {
  in.read(reinterpret_cast<char*>(&value), sizeof(value));
  return static_cast<bool>(in);
}

bool get_vec(std::istream& in, Vec& v) {
  std::uint64_t n = 0;
  if (!get_pod(in, n) || n > kMaxJournalElems) return false;
  v.resize(n);
  in.read(reinterpret_cast<char*>(v.data()), static_cast<std::streamsize>(n * sizeof(double)));
  return static_cast<bool>(in);
}

std::uint64_t record_bytes(const CachedEval& eval) {
  return 3 * sizeof(std::uint64_t)  // key.hi, key.lo, problem_fp
         + sizeof(std::uint64_t) + eval.x.size() * sizeof(double) + sizeof(std::uint64_t) +
         eval.metrics.size() * sizeof(double);
}

}  // namespace

std::uint64_t problem_fingerprint(const ckt::SizingProblem& problem) {
  const ckt::ProblemSpec& spec = problem.spec();
  std::uint64_t h = hash_bytes(spec.name.data(), spec.name.size());
  h = hash_bytes(spec.target_name.data(), spec.target_name.size(), h);
  h = hash_design({&spec.target_weight, 1}, 0.0, h);
  h = hash_u64(spec.constraints.size(), h);
  for (const auto& c : spec.constraints) {
    h = hash_bytes(c.name.data(), c.name.size(), h);
    h = hash_u64(static_cast<std::uint64_t>(c.kind), h);
    const double bw[2] = {c.bound, c.weight};
    h = hash_design(bw, 0.0, h);
  }
  h = hash_u64(problem.dim(), h);
  h = hash_design(problem.lower_bounds(), 0.0, h);
  h = hash_design(problem.upper_bounds(), 0.0, h);
  for (const bool b : problem.integer_mask()) h = hash_u64(b ? 1 : 0, h);
  // Data-defined problems (deck-compiled circuits) carry a content hash of
  // their semantic payload; folded only when present so every fingerprint —
  // and every on-disk journal — of the built-in problems stays unchanged.
  if (const std::uint64_t content = problem.content_fingerprint(); content != 0)
    h = hash_u64(content, h);
  return h;
}

std::uint64_t variation_fingerprint(const ckt::ProcessVariation& pv) {
  if (!pv.enabled()) return 0;
  const double fields[6] = {pv.sigma_vth,      pv.sigma_kp_rel,  pv.nmos_vth_shift,
                            pv.pmos_vth_shift, pv.nmos_kp_factor, pv.pmos_kp_factor};
  return hash_design(fields, 0.0, hash_u64(pv.seed, kKeySeedLo));
}

CacheKey make_cache_key(std::uint64_t problem_fp, std::span<const double> x, double epsilon) {
  CacheKey key;
  key.hi = hash_design(x, epsilon, hash_u64(problem_fp, kKeySeedHi));
  key.lo = hash_design(x, epsilon, hash_u64(problem_fp, kKeySeedLo));
  return key;
}

ResultCache::ResultCache(Config config) : config_(std::move(config)) {
  MAOPT_CHECK(config_.memory_capacity >= 1, "ResultCache: memory_capacity must be >= 1");
  // No concurrent access is possible during construction, but load_journal()
  // REQUIRES the cache lock (it touches every guarded member), so take it —
  // uncontended, and the annotation contract holds on every path.
  const MutexLock lock(mutex_);
  if (!config_.journal_path.empty()) load_journal();
}

void ResultCache::load_journal() {
  const std::filesystem::path path(config_.journal_path);
  if (path.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(path.parent_path(), ec);
  }

  bool dirty = false;
  std::ifstream in(config_.journal_path, std::ios::binary);
  if (in) {
    char magic[sizeof(kJournalMagic)] = {};
    std::uint32_t version = 0;
    double epsilon = 0.0;
    in.read(magic, sizeof(magic));
    if (!in || std::memcmp(magic, kJournalMagic, sizeof(magic)) != 0 ||
        !get_pod(in, version) || !get_pod(in, epsilon)) {
      log_warn() << "eval cache: '" << config_.journal_path
                 << "' is not a result journal; starting empty";
      dirty = true;
    } else if (version != kJournalFormatVersion) {
      log_warn() << "eval cache: journal version " << version << " unsupported; starting empty";
      dirty = true;
    } else if (epsilon != config_.quant_epsilon) {
      // Keys were computed under a different quantization grid: every address
      // in the file is meaningless for this configuration.
      log_warn() << "eval cache: journal quantization epsilon " << epsilon << " != configured "
                 << config_.quant_epsilon << "; starting empty";
      dirty = true;
    } else {
      journal_bytes_ = kJournalHeaderBytes;
      while (true) {
        const auto offset = static_cast<std::uint64_t>(in.tellg());
        Entry entry;
        CacheKey key;
        if (!get_pod(in, key.hi)) break;  // clean EOF
        if (!get_pod(in, key.lo) || !get_pod(in, entry.eval.problem_fp) ||
            !get_vec(in, entry.eval.x) || !get_vec(in, entry.eval.metrics)) {
          log_warn() << "eval cache: truncated journal tail in '" << config_.journal_path
                     << "'; keeping " << entries_.size() << " complete records";
          dirty = true;
          break;
        }
        entry.on_disk = true;
        entry.file_offset = offset;
        entry.eval.x.clear();  // L2-resident only until first lookup
        entry.eval.metrics.clear();
        if (entries_.emplace(key, std::move(entry)).second) {
          insertion_order_.push_back(key);
        } else {
          dirty = true;  // duplicate key: compaction will drop it
        }
        journal_bytes_ = static_cast<std::uint64_t>(in.tellg());
      }
    }
    in.close();
  }

  reader_.open(config_.journal_path, std::ios::binary);
  if (dirty || journal_bytes_ < kJournalHeaderBytes) {
    compact_locked();  // constructor: no concurrent access yet
  }
  if (!reader_.is_open()) reader_.open(config_.journal_path, std::ios::binary);
  writer_.open(config_.journal_path, std::ios::binary | std::ios::app);
  if (!writer_)
    throw std::runtime_error("eval cache: cannot open '" + config_.journal_path +
                             "' for appending");
}

std::optional<CachedEval> ResultCache::read_record_at(std::uint64_t offset) const {
  reader_.clear();
  reader_.seekg(static_cast<std::streamoff>(offset));
  CachedEval eval;
  CacheKey key;
  if (!get_pod(reader_, key.hi) || !get_pod(reader_, key.lo) ||
      !get_pod(reader_, eval.problem_fp) || !get_vec(reader_, eval.x) ||
      !get_vec(reader_, eval.metrics))
    return std::nullopt;
  return eval;
}

void ResultCache::evict_overflow() {
  while (lru_.size() > config_.memory_capacity) {
    const auto victim = entries_.find(lru_.back());
    lru_.pop_back();
    if (victim == entries_.end()) continue;
    victim->second.in_l1 = false;
    if (victim->second.on_disk) {
      // Keep the index entry (fingerprint + offset); drop the payload.
      victim->second.eval.x.clear();
      victim->second.eval.x.shrink_to_fit();
      victim->second.eval.metrics.clear();
      victim->second.eval.metrics.shrink_to_fit();
    } else {
      entries_.erase(victim);  // memory-only cache: the result is gone
    }
  }
}

std::optional<Vec> ResultCache::lookup(const CacheKey& key) {
  const MutexLock lock(mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  Entry& entry = it->second;
  if (entry.in_l1) {
    lru_.splice(lru_.begin(), lru_, entry.lru_pos);
    return entry.eval.metrics;
  }
  if (!entry.on_disk) return std::nullopt;
  auto eval = read_record_at(entry.file_offset);
  if (!eval.has_value()) return std::nullopt;
  entry.eval = std::move(*eval);
  entry.in_l1 = true;
  lru_.push_front(key);
  entry.lru_pos = lru_.begin();
  Vec metrics = entry.eval.metrics;  // copy before eviction could drop `entry`
  evict_overflow();
  return metrics;
}

void ResultCache::insert(const CacheKey& key, std::uint64_t problem_fp, const Vec& x,
                         const Vec& metrics) {
  const MutexLock lock(mutex_);
  if (entries_.contains(key)) return;
  Entry entry;
  entry.eval.problem_fp = problem_fp;
  entry.eval.x = x;
  entry.eval.metrics = metrics;
  if (writer_.is_open()) append_journal(key, entry);
  auto [it, inserted] = entries_.emplace(key, std::move(entry));
  (void)inserted;
  insertion_order_.push_back(key);
  lru_.push_front(key);
  it->second.in_l1 = true;
  it->second.lru_pos = lru_.begin();
  evict_overflow();
}

void ResultCache::append_journal(const CacheKey& key, Entry& entry) {
  entry.file_offset = journal_bytes_;
  put_pod<std::uint64_t>(writer_, key.hi);
  put_pod<std::uint64_t>(writer_, key.lo);
  put_pod<std::uint64_t>(writer_, entry.eval.problem_fp);
  put_vec(writer_, entry.eval.x);
  put_vec(writer_, entry.eval.metrics);
  writer_.flush();  // one record per append: a crash loses at most this one
  if (!writer_) {
    log_warn() << "eval cache: journal append failed; entry kept in memory only";
    return;
  }
  entry.on_disk = true;
  journal_bytes_ += record_bytes(entry.eval);
}

std::vector<CachedEval> ResultCache::entries_for(std::uint64_t problem_fp) const {
  const MutexLock lock(mutex_);
  std::vector<CachedEval> out;
  for (const CacheKey& key : insertion_order_) {
    const auto it = entries_.find(key);
    if (it == entries_.end()) continue;
    const Entry& entry = it->second;
    if (entry.eval.problem_fp != problem_fp) continue;
    if (entry.in_l1) {
      out.push_back(entry.eval);
    } else if (entry.on_disk) {
      auto eval = read_record_at(entry.file_offset);
      if (eval.has_value()) out.push_back(std::move(*eval));
    }
  }
  return out;
}

void ResultCache::compact() {
  const MutexLock lock(mutex_);
  writer_.close();
  compact_locked();
  writer_.open(config_.journal_path, std::ios::binary | std::ios::app);
}

void ResultCache::compact_locked() {
  if (config_.journal_path.empty()) return;
  // Materialize every surviving record before replacing the file we read from.
  std::vector<std::pair<CacheKey, CachedEval>> survivors;
  survivors.reserve(insertion_order_.size());
  for (const CacheKey& key : insertion_order_) {
    const auto it = entries_.find(key);
    if (it == entries_.end()) continue;
    if (it->second.in_l1) {
      survivors.emplace_back(key, it->second.eval);
    } else if (it->second.on_disk) {
      auto eval = read_record_at(it->second.file_offset);
      if (eval.has_value()) survivors.emplace_back(key, std::move(*eval));
    }
  }
  reader_.close();

  const std::string tmp = config_.journal_path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("eval cache: cannot open '" + tmp + "' for writing");
    out.write(kJournalMagic, sizeof(kJournalMagic));
    put_pod<std::uint32_t>(out, kJournalFormatVersion);
    put_pod<double>(out, config_.quant_epsilon);
    for (auto& [key, eval] : survivors) {
      put_pod<std::uint64_t>(out, key.hi);
      put_pod<std::uint64_t>(out, key.lo);
      put_pod<std::uint64_t>(out, eval.problem_fp);
      put_vec(out, eval.x);
      put_vec(out, eval.metrics);
    }
    out.flush();
    if (!out) throw std::runtime_error("eval cache: write failed for '" + tmp + "'");
  }
  if (std::rename(tmp.c_str(), config_.journal_path.c_str()) != 0)
    throw std::runtime_error("eval cache: rename '" + tmp + "' -> '" + config_.journal_path +
                             "' failed");

  // Rebuild the in-memory index against the compacted offsets.
  entries_.clear();
  lru_.clear();
  insertion_order_.clear();
  std::uint64_t offset = kJournalHeaderBytes;
  for (auto& [key, eval] : survivors) {
    Entry entry;
    entry.on_disk = true;
    entry.file_offset = offset;
    offset += record_bytes(eval);
    entry.eval.problem_fp = eval.problem_fp;
    if (lru_.size() < config_.memory_capacity) {
      entry.eval = std::move(eval);
      lru_.push_back(key);
      entry.in_l1 = true;
      entry.lru_pos = std::prev(lru_.end());
    }
    entries_.emplace(key, std::move(entry));
    insertion_order_.push_back(key);
  }
  journal_bytes_ = offset;
  reader_.open(config_.journal_path, std::ios::binary);
}

std::size_t ResultCache::size() const {
  const MutexLock lock(mutex_);
  return entries_.size();
}

}  // namespace maopt::eval
