// Gaussian-process regression with the O(N^3) Cholesky training cost the
// paper cites as BO's main drawback — reproduced faithfully here so the
// runtime columns of Tables II/IV/VI show the same growth.
#pragma once

#include <memory>
#include <optional>

#include "common/rng.hpp"
#include "gp/kernel.hpp"
#include "linalg/cholesky.hpp"

namespace maopt::gp {

struct GpPrediction {
  double mean;
  double variance;  ///< predictive variance (>= 0)
};

struct GpHyperparams {
  double signal_variance = 1.0;
  double noise_variance = 1e-4;
  Vec lengthscales;  ///< one per input dimension
  KernelKind kernel = KernelKind::SquaredExponential;
};

class GpRegression {
 public:
  /// Fits on inputs X (n x d) and targets y (centered internally).
  GpRegression(Mat x, Vec y, GpHyperparams hp);

  GpPrediction predict(std::span<const double> z) const;
  double log_marginal_likelihood() const { return lml_; }
  std::size_t num_points() const { return x_.rows(); }
  const GpHyperparams& hyperparams() const { return hp_; }

  /// Random-search maximization of the log marginal likelihood around an
  /// isotropic prior; `restarts` candidate draws (cost: one Cholesky each).
  /// With `isotropic` set, all lengthscales are tied to a single value
  /// (the vanilla Snoek-style baseline); otherwise ARD is used.
  static GpHyperparams fit_hyperparams(const Mat& x, const Vec& y, Rng& rng, int restarts = 24,
                                       bool isotropic = false);

 private:
  Mat x_;
  Vec y_centered_;
  double y_mean_;
  GpHyperparams hp_;
  Kernel kernel_;
  std::unique_ptr<linalg::Cholesky> chol_;
  Vec alpha_;  ///< (K + sn2 I)^-1 (y - mean)
  double lml_ = 0.0;
};

}  // namespace maopt::gp
