#include "gp/gp_regression.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace maopt::gp {

GpRegression::GpRegression(Mat x, Vec y, GpHyperparams hp)
    : x_(std::move(x)),
      y_mean_(0.0),
      hp_(std::move(hp)),
      kernel_(hp_.kernel, hp_.signal_variance, hp_.lengthscales) {
  if (x_.rows() != y.size()) throw std::invalid_argument("GpRegression: X/y size mismatch");
  if (hp_.lengthscales.size() != x_.cols())
    throw std::invalid_argument("GpRegression: lengthscale dimension mismatch");

  for (const double v : y) y_mean_ += v;
  y_mean_ /= static_cast<double>(y.size());
  y_centered_ = std::move(y);
  for (auto& v : y_centered_) v -= y_mean_;

  Mat k = kernel_.gram(x_);
  for (std::size_t i = 0; i < k.rows(); ++i) k(i, i) += hp_.noise_variance;
  chol_ = std::make_unique<linalg::Cholesky>(k);
  alpha_ = chol_->solve(y_centered_);

  const double n = static_cast<double>(x_.rows());
  lml_ = -0.5 * linalg::dot(y_centered_, alpha_) - 0.5 * chol_->log_determinant() -
         0.5 * n * std::log(2.0 * std::numbers::pi);
}

GpPrediction GpRegression::predict(std::span<const double> z) const {
  const Vec k_star = kernel_.cross(x_, z);
  const double mean = y_mean_ + linalg::dot(k_star, alpha_);
  const Vec v = chol_->solve_lower(k_star);
  double var = hp_.signal_variance - linalg::dot(v, v);
  if (var < 1e-12) var = 1e-12;
  return {mean, var};
}

GpHyperparams GpRegression::fit_hyperparams(const Mat& x, const Vec& y, Rng& rng, int restarts,
                                            bool isotropic) {
  const std::size_t d = x.cols();
  // Target variance as the signal-variance prior center.
  double ymean = 0.0, yvar = 0.0;
  for (const double v : y) ymean += v;
  ymean /= static_cast<double>(y.size());
  for (const double v : y) yvar += (v - ymean) * (v - ymean);
  yvar = std::max(yvar / std::max<std::size_t>(1, y.size() - 1), 1e-8);

  GpHyperparams best;
  best.signal_variance = yvar;
  best.noise_variance = 1e-4 * yvar;
  best.lengthscales.assign(d, 0.5);
  double best_lml = -1e300;

  for (int r = 0; r < restarts; ++r) {
    GpHyperparams cand;
    cand.signal_variance = yvar * std::pow(10.0, rng.uniform(-0.5, 0.5));
    cand.noise_variance = yvar * std::pow(10.0, rng.uniform(-6.0, -2.0));
    cand.lengthscales.resize(d);
    // Inputs live in [0,1]; draw a base scale, optionally perturbed per
    // dimension (ARD) or tied (isotropic).
    const double base = std::pow(10.0, rng.uniform(-1.0, 0.5));
    for (auto& l : cand.lengthscales)
      l = isotropic ? base : base * std::pow(10.0, rng.uniform(-0.3, 0.3));
    try {
      const GpRegression gp(x, y, cand);
      if (gp.log_marginal_likelihood() > best_lml) {
        best_lml = gp.log_marginal_likelihood();
        best = cand;
      }
    } catch (const std::runtime_error&) {
      // Non-PD draw (extreme hyperparameters): skip.
    }
  }
  return best;
}

}  // namespace maopt::gp
