#include "gp/acquisition.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace maopt::gp {

namespace {
double normal_pdf(double z) {
  return std::exp(-0.5 * z * z) / std::sqrt(2.0 * std::numbers::pi);
}
double normal_cdf(double z) { return 0.5 * std::erfc(-z / std::numbers::sqrt2); }
}  // namespace

double expected_improvement(const GpPrediction& pred, double best_value) {
  const double sigma = std::sqrt(pred.variance);
  if (sigma < 1e-12) return std::max(0.0, best_value - pred.mean);
  const double z = (best_value - pred.mean) / sigma;
  return (best_value - pred.mean) * normal_cdf(z) + sigma * normal_pdf(z);
}

Vec maximize_ei(const GpRegression& gp, double best_value, std::size_t dim, Rng& rng,
                int random_candidates, int local_candidates) {
  Vec best_x(dim, 0.5);
  double best_ei = -1.0;
  auto consider = [&](const Vec& x) {
    const double ei = expected_improvement(gp.predict(x), best_value);
    if (ei > best_ei) {
      best_ei = ei;
      best_x = x;
    }
  };

  Vec x(dim);
  for (int c = 0; c < random_candidates; ++c) {
    for (auto& v : x) v = rng.uniform();
    consider(x);
  }
  // Local refinement with shrinking Gaussian perturbations.
  for (int c = 0; c < local_candidates; ++c) {
    const double scale = 0.2 * std::pow(0.99, c);
    for (std::size_t i = 0; i < dim; ++i)
      x[i] = std::clamp(best_x[i] + rng.normal(0.0, scale), 0.0, 1.0);
    consider(x);
  }
  return best_x;
}

}  // namespace maopt::gp
