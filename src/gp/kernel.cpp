#include "gp/kernel.hpp"

#include <cmath>
#include <stdexcept>

namespace maopt::gp {

SquaredExponentialArd::SquaredExponentialArd(double signal_variance, Vec lengthscales)
    : sf2_(signal_variance), ls_(std::move(lengthscales)) {
  if (!(sf2_ > 0.0)) throw std::invalid_argument("SE kernel: signal variance must be > 0");
  for (const double l : ls_)
    if (!(l > 0.0)) throw std::invalid_argument("SE kernel: lengthscales must be > 0");
}

double SquaredExponentialArd::operator()(std::span<const double> a,
                                         std::span<const double> b) const {
  double s = 0.0;
  for (std::size_t i = 0; i < ls_.size(); ++i) {
    const double d = (a[i] - b[i]) / ls_[i];
    s += d * d;
  }
  return sf2_ * std::exp(-0.5 * s);
}

Mat SquaredExponentialArd::gram(const Mat& x) const {
  const std::size_t n = x.rows();
  Mat k(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    k(i, i) = sf2_;
    for (std::size_t j = i + 1; j < n; ++j) {
      const double v = (*this)(x.row(i), x.row(j));
      k(i, j) = v;
      k(j, i) = v;
    }
  }
  return k;
}

Vec SquaredExponentialArd::cross(const Mat& x, std::span<const double> z) const {
  Vec k(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) k[i] = (*this)(x.row(i), z);
  return k;
}

Matern52Ard::Matern52Ard(double signal_variance, Vec lengthscales)
    : sf2_(signal_variance), ls_(std::move(lengthscales)) {
  if (!(sf2_ > 0.0)) throw std::invalid_argument("Matern kernel: signal variance must be > 0");
  for (const double l : ls_)
    if (!(l > 0.0)) throw std::invalid_argument("Matern kernel: lengthscales must be > 0");
}

double Matern52Ard::operator()(std::span<const double> a, std::span<const double> b) const {
  double r2 = 0.0;
  for (std::size_t i = 0; i < ls_.size(); ++i) {
    const double d = (a[i] - b[i]) / ls_[i];
    r2 += d * d;
  }
  const double r = std::sqrt(r2);
  const double sr = std::sqrt(5.0) * r;
  return sf2_ * (1.0 + sr + 5.0 * r2 / 3.0) * std::exp(-sr);
}

Mat Matern52Ard::gram(const Mat& x) const {
  const std::size_t n = x.rows();
  Mat k(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    k(i, i) = sf2_;
    for (std::size_t j = i + 1; j < n; ++j) {
      const double v = (*this)(x.row(i), x.row(j));
      k(i, j) = v;
      k(j, i) = v;
    }
  }
  return k;
}

Vec Matern52Ard::cross(const Mat& x, std::span<const double> z) const {
  Vec k(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) k[i] = (*this)(x.row(i), z);
  return k;
}

Kernel::Kernel(KernelKind kind, double signal_variance, Vec lengthscales)
    : kind_(kind), se_(signal_variance, lengthscales), matern_(signal_variance, std::move(lengthscales)) {}

double Kernel::operator()(std::span<const double> a, std::span<const double> b) const {
  return kind_ == KernelKind::SquaredExponential ? se_(a, b) : matern_(a, b);
}

Mat Kernel::gram(const Mat& x) const {
  return kind_ == KernelKind::SquaredExponential ? se_.gram(x) : matern_.gram(x);
}

Vec Kernel::cross(const Mat& x, std::span<const double> z) const {
  return kind_ == KernelKind::SquaredExponential ? se_.cross(x, z) : matern_.cross(x, z);
}

}  // namespace maopt::gp
