// Bayesian-optimization baseline (paper reference [21], Snoek-style):
// a GP models the scalar FoM g[f(x)] over the unit-scaled design box and
// Expected Improvement selects the next simulation.
#pragma once

#include "core/optimizer.hpp"
#include "gp/gp_regression.hpp"
#include "nn/normalizer.hpp"

namespace maopt::gp {

struct BoConfig {
  int hyperfit_restarts = 24;
  int refit_period = 1;  ///< refit hyperparameters every k-th iteration
  int random_candidates = 1024;
  int local_candidates = 256;
  // The defaults mirror the paper's vanilla baseline [21]: GP directly on
  // the FoM with a single (isotropic) lengthscale. Enabling both makes BO
  // substantially stronger on these problems (see EXPERIMENTS.md).
  bool log_fom = false;    ///< model log10(fom) instead of the raw FoM
  bool ard = false;        ///< per-dimension lengthscales
  KernelKind kernel = KernelKind::SquaredExponential;
  std::string name = "BO";
  /// Circuit breaker: abort (with RunHistory::aborted set) after this many
  /// consecutive failed simulations; 0 disables. Failed simulations get a
  /// penalty FoM, are excluded from GP training, and count against the
  /// budget.
  int max_consecutive_failures = 100;

  /// Modernized variant used in the extended-baselines bench.
  static BoConfig tuned() {
    BoConfig c;
    c.log_fom = true;
    c.ard = true;
    c.name = "BO-tuned";
    return c;
  }
};

class BoOptimizer final : public core::Optimizer {
 public:
  explicit BoOptimizer(BoConfig config = {}) : config_(config) {}

  std::string name() const override { return config_.name; }
  const BoConfig& config() const { return config_; }

 protected:
  core::RunHistory do_run(const core::SizingProblem& problem,
                          const std::vector<core::SimRecord>& initial,
                          const core::FomEvaluator& fom, const core::RunOptions& options,
                          obs::RunTelemetry& telemetry) override;

 private:
  BoConfig config_;
};

}  // namespace maopt::gp
