// Covariance kernels for Gaussian-process regression (the BO baseline,
// paper reference [21]).
#pragma once

#include "linalg/matrix.hpp"

namespace maopt::gp {

using linalg::Mat;
using linalg::Vec;

/// Squared-exponential kernel with automatic relevance determination:
///   k(x, x') = sf2 * exp(-1/2 * sum_i ((x_i - x'_i) / l_i)^2)
class SquaredExponentialArd {
 public:
  SquaredExponentialArd(double signal_variance, Vec lengthscales);

  double operator()(std::span<const double> a, std::span<const double> b) const;

  /// Gram matrix K(X, X) for row-major sample matrix X (n x d).
  Mat gram(const Mat& x) const;
  /// Cross-covariances k(X, z) as a vector of length n.
  Vec cross(const Mat& x, std::span<const double> z) const;

  double signal_variance() const { return sf2_; }
  const Vec& lengthscales() const { return ls_; }

 private:
  double sf2_;
  Vec ls_;
};

/// Matern-5/2 kernel with ARD: smoother than Matern-3/2, rougher than SE —
/// the other standard choice for BO response surfaces.
///   k(r) = sf2 * (1 + sqrt(5) r + 5 r^2 / 3) exp(-sqrt(5) r),
///   r^2 = sum_i ((x_i - x'_i)/l_i)^2.
class Matern52Ard {
 public:
  Matern52Ard(double signal_variance, Vec lengthscales);

  double operator()(std::span<const double> a, std::span<const double> b) const;
  Mat gram(const Mat& x) const;
  Vec cross(const Mat& x, std::span<const double> z) const;

  double signal_variance() const { return sf2_; }
  const Vec& lengthscales() const { return ls_; }

 private:
  double sf2_;
  Vec ls_;
};

enum class KernelKind { SquaredExponential, Matern52 };

/// Runtime-dispatched kernel facade used by GpRegression.
class Kernel {
 public:
  Kernel(KernelKind kind, double signal_variance, Vec lengthscales);

  double operator()(std::span<const double> a, std::span<const double> b) const;
  Mat gram(const Mat& x) const;
  Vec cross(const Mat& x, std::span<const double> z) const;
  KernelKind kind() const { return kind_; }

 private:
  KernelKind kind_;
  SquaredExponentialArd se_;
  Matern52Ard matern_;
};

}  // namespace maopt::gp
