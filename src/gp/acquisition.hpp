// Acquisition functions for Bayesian optimization.
#pragma once

#include "common/rng.hpp"
#include "gp/gp_regression.hpp"

namespace maopt::gp {

/// Expected improvement for *minimization*:
///   EI(x) = (best - mu) * Phi(z) + sigma * phi(z),  z = (best - mu) / sigma.
double expected_improvement(const GpPrediction& pred, double best_value);

/// Maximizes EI over the unit box [0,1]^d with random multistart plus a
/// Gaussian local-perturbation refinement around the incumbent.
Vec maximize_ei(const GpRegression& gp, double best_value, std::size_t dim, Rng& rng,
                int random_candidates = 1024, int local_candidates = 256);

}  // namespace maopt::gp
