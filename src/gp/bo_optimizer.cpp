#include "gp/bo_optimizer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/log.hpp"
#include "gp/acquisition.hpp"

namespace maopt::gp {

core::RunHistory BoOptimizer::do_run(const core::SizingProblem& problem,
                                     const std::vector<core::SimRecord>& initial,
                                     const core::FomEvaluator& fom,
                                     const core::RunOptions& options,
                                     obs::RunTelemetry& telemetry) {
  core::RunHistory history;
  history.algorithm = name();
  history.records = initial;
  history.num_initial = initial.size();
  core::annotate_foms(history.records, problem, fom);

  const std::size_t simulation_budget = options.simulation_budget;
  Rng rng(derive_seed(options.seed, 0xB0));
  const nn::RangeScaler scaler(problem.lower_bounds(), problem.upper_bounds());
  const std::size_t d = problem.dim();

  Stopwatch total;
  GpHyperparams hp;
  int consecutive_failures = 0;
  bool feasible_found = false;
  for (const auto& r : history.records) feasible_found = feasible_found || r.feasible;
  // One iteration = one simulation. GP (re)fitting reports as a CriticTrain
  // span, the EI acquisition search as ActorTrain, evaluation as Simulate.
  for (std::size_t it = 0; it < simulation_budget; ++it) {
    if (options.control != nullptr) {
      const core::RunControl::Signal signal = options.control->poll();
      if (signal == core::RunControl::Signal::Kill) {
        history.aborted = true;
        history.abort_reason = "killed";
        break;
      }
      if (signal == core::RunControl::Signal::Pause) break;
    }
    if (config_.max_consecutive_failures > 0 &&
        consecutive_failures >= config_.max_consecutive_failures) {
      history.aborted = true;
      history.abort_reason = std::to_string(consecutive_failures) +
                             " consecutive failed simulations (circuit breaker)";
      log_warn() << name() << ": aborting run after " << history.abort_reason;
      break;
    }

    // Assemble training data in [0,1]^d from clean simulations only: failed
    // records carry a penalty FoM that is budget bookkeeping, not circuit
    // behaviour the GP should interpolate.
    std::size_t n = 0;
    for (const auto& r : history.records) n += r.simulation_ok ? 1 : 0;
    Mat x(n, d);
    Vec y(n);
    std::size_t row = 0;
    for (const auto& r : history.records) {
      if (!r.simulation_ok) continue;
      const Vec u = scaler.to_unit(r.x);
      for (std::size_t j = 0; j < d; ++j) x(row, j) = 0.5 * (u[j] + 1.0);
      y[row] = config_.log_fom ? std::log10(std::max(r.fom, 1e-12)) : r.fom;
      ++row;
    }

    Stopwatch iter_clock;
    Stopwatch train;
    double fit_s = 0.0;
    double select_s = 0.0;
    Vec next_unit01;
    if (n == 0) {
      // Every simulation so far failed: no surrogate to fit, probe randomly.
      next_unit01.resize(d);
      for (auto& v : next_unit01) v = rng.uniform();
    } else {
      Stopwatch fit_clock;
      if (it % static_cast<std::size_t>(std::max(1, config_.refit_period)) == 0 ||
          hp.lengthscales.empty()) {
        hp = GpRegression::fit_hyperparams(x, y, rng, config_.hyperfit_restarts,
                                           /*isotropic=*/!config_.ard);
        hp.kernel = config_.kernel;
      }
      double best_fom_y = y[0];
      for (const double v : y) best_fom_y = std::min(best_fom_y, v);

      try {
        const GpRegression gp(std::move(x), std::move(y), hp);
        fit_s = fit_clock.elapsed_seconds();
        Stopwatch select_clock;
        next_unit01 = maximize_ei(gp, best_fom_y, d, rng, config_.random_candidates,
                                  config_.local_candidates);
        select_s = select_clock.elapsed_seconds();
      } catch (const std::runtime_error&) {
        // Degenerate kernel matrix: fall back to a random probe.
        fit_s = fit_clock.elapsed_seconds();
        next_unit01.resize(d);
        for (auto& v : next_unit01) v = rng.uniform();
      }
    }
    history.train_seconds += train.elapsed_seconds();

    Vec u(d);
    for (std::size_t j = 0; j < d; ++j) u[j] = 2.0 * next_unit01[j] - 1.0;
    Vec candidate = problem.clip(scaler.from_unit(u));

    Stopwatch sim;
    core::SimRecord rec = core::evaluate_record(problem, std::move(candidate));
    const double sim_s = sim.elapsed_seconds();
    history.sim_seconds += sim_s;
    const bool ok = core::annotate_record(rec, problem, fom);
    consecutive_failures = ok ? 0 : consecutive_failures + 1;
    feasible_found = feasible_found || rec.feasible;
    history.records.push_back(std::move(rec));

    // Best-so-far over clean records only; failed sims never improve it.
    double best = std::numeric_limits<double>::infinity();
    bool have_best = false;
    for (const auto& r : history.records) {
      if (!r.simulation_ok) continue;
      best = have_best ? std::min(best, r.fom) : r.fom;
      have_best = true;
    }
    if (!have_best) best = fom(problem.failure_metrics());
    history.best_fom_after.push_back(best);

    emit_simulation(telemetry, history.records.back(), it, it + 1, -1, sim_s, problem);
    std::vector<obs::PhaseSpan> spans;
    if (telemetry.enabled()) {
      spans.push_back({obs::Phase::CriticTrain, -1, fit_s});
      spans.push_back({obs::Phase::ActorTrain, -1, select_s});
      spans.push_back({obs::Phase::Simulate, -1, sim_s});
    }
    emit_iteration(telemetry, it + 1, history.simulations_used(), best, feasible_found,
                   iter_clock.elapsed_seconds(), std::move(spans));
  }
  history.wall_seconds = total.elapsed_seconds();
  return history;
}

}  // namespace maopt::gp
