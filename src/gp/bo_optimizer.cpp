#include "gp/bo_optimizer.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"
#include "gp/acquisition.hpp"

namespace maopt::gp {

namespace {

}  // namespace

core::RunHistory BoOptimizer::run(const core::SizingProblem& problem,
                                  const std::vector<core::SimRecord>& initial,
                                  const core::FomEvaluator& fom, std::uint64_t seed,
                                  std::size_t simulation_budget) {
  core::RunHistory history;
  history.algorithm = name();
  history.records = initial;
  history.num_initial = initial.size();
  core::annotate_foms(history.records, problem, fom);

  Rng rng(derive_seed(seed, 0xB0));
  const nn::RangeScaler scaler(problem.lower_bounds(), problem.upper_bounds());
  const std::size_t d = problem.dim();

  Stopwatch total;
  GpHyperparams hp;
  for (std::size_t it = 0; it < simulation_budget; ++it) {
    // Assemble training data in [0,1]^d.
    const std::size_t n = history.records.size();
    Mat x(n, d);
    Vec y(n);
    for (std::size_t i = 0; i < n; ++i) {
      const Vec u = scaler.to_unit(history.records[i].x);
      for (std::size_t j = 0; j < d; ++j) x(i, j) = 0.5 * (u[j] + 1.0);
      y[i] = config_.log_fom ? std::log10(std::max(history.records[i].fom, 1e-12))
                              : history.records[i].fom;
    }

    Stopwatch train;
    if (it % static_cast<std::size_t>(std::max(1, config_.refit_period)) == 0 ||
        hp.lengthscales.empty()) {
      hp = GpRegression::fit_hyperparams(x, y, rng, config_.hyperfit_restarts,
                                         /*isotropic=*/!config_.ard);
      hp.kernel = config_.kernel;
    }
    double best_fom_y = y[0];
    for (const double v : y) best_fom_y = std::min(best_fom_y, v);

    Vec next_unit01;
    try {
      const GpRegression gp(std::move(x), std::move(y), hp);
      next_unit01 = maximize_ei(gp, best_fom_y, d, rng, config_.random_candidates,
                                config_.local_candidates);
    } catch (const std::runtime_error&) {
      // Degenerate kernel matrix: fall back to a random probe.
      next_unit01.resize(d);
      for (auto& v : next_unit01) v = rng.uniform();
    }
    history.train_seconds += train.elapsed_seconds();

    Vec u(d);
    for (std::size_t j = 0; j < d; ++j) u[j] = 2.0 * next_unit01[j] - 1.0;
    const Vec candidate = problem.clip(scaler.from_unit(u));

    Stopwatch sim;
    const ckt::EvalResult eval = problem.evaluate(candidate);
    history.sim_seconds += sim.elapsed_seconds();

    core::SimRecord rec;
    rec.x = candidate;
    rec.metrics = eval.metrics;
    rec.simulation_ok = eval.simulation_ok;
    rec.fom = fom(rec.metrics);
    rec.feasible = eval.simulation_ok && problem.feasible(rec.metrics);
    history.records.push_back(std::move(rec));

    double best = history.records[0].fom;
    for (const auto& r : history.records) best = std::min(best, r.fom);
    history.best_fom_after.push_back(best);
  }
  history.wall_seconds = total.elapsed_seconds();
  return history;
}

}  // namespace maopt::gp
