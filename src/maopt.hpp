// Umbrella header: the full public API of the MA-Opt reproduction library.
//
// Typical usage (see examples/quickstart.cpp):
//
//   maopt::ckt::TwoStageOta problem;
//   maopt::Rng rng(seed);
//   auto init = maopt::core::sample_initial_set(problem, 100, rng);
//   auto fom  = maopt::ckt::FomEvaluator::fit_reference(problem, ...);
//   maopt::core::MaOptimizer opt(maopt::core::MaOptConfig::ma_opt());
//   auto history = opt.run(problem, init, fom, seed, 200);
//   const auto* best = history.best_feasible();
#pragma once

#include "circuits/analytic_problems.hpp"
#include "circuits/fom.hpp"
#include "circuits/folded_cascode_ota.hpp"
#include "circuits/ldo_regulator.hpp"
#include "circuits/process_variation.hpp"
#include "circuits/resilient_problem.hpp"
#include "circuits/robust_problem.hpp"
#include "circuits/sensitivity.hpp"
#include "circuits/sizing_problem.hpp"
#include "circuits/three_stage_tia.hpp"
#include "circuits/two_stage_ota.hpp"
#include "common/cli.hpp"
#include "common/hash.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/statistics.hpp"
#include "common/thread_pool.hpp"
#include "core/actor.hpp"
#include "core/critic.hpp"
#include "core/elite_set.hpp"
#include "core/history.hpp"
#include "core/history_io.hpp"
#include "core/ma_optimizer.hpp"
#include "core/near_sampling.hpp"
#include "core/optimizer.hpp"
#include "core/pseudo_samples.hpp"
#include "core/de.hpp"
#include "core/pso.hpp"
#include "core/random_search.hpp"
#include "eval/eval_service.hpp"
#include "eval/result_cache.hpp"
#include "gp/bo_optimizer.hpp"
#include "gp/gp_regression.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"
#include "nn/adam.hpp"
#include "nn/mlp.hpp"
#include "nn/normalizer.hpp"
#include "nn/serialize.hpp"
#include "obs/events.hpp"
#include "obs/jsonl_writer.hpp"
#include "obs/observer.hpp"
#include "obs/run_report.hpp"
#include "spice/ac_analysis.hpp"
#include "spice/dc_analysis.hpp"
#include "spice/dc_sweep.hpp"
#include "spice/devices.hpp"
#include "spice/measure.hpp"
#include "spice/mosfet.hpp"
#include "spice/netlist.hpp"
#include "spice/noise_analysis.hpp"
#include "spice/op_report.hpp"
#include "spice/parser.hpp"
#include "spice/tran_analysis.hpp"
