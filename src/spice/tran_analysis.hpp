// Transient analysis with trapezoidal integration.
//
// Capacitances (explicit capacitors plus MOSFET parasitics) are collected
// once at the initial operating point and integrated as linear elements via
// companion models; the nonlinear device currents are re-linearized by a
// full Newton solve at every time step. This "OP-frozen capacitance"
// simplification preserves the dominant time constants that the settling
// time measurements depend on, at a fraction of the cost of re-evaluating
// charge models per iteration.
#pragma once

#include <vector>

#include "spice/dc_analysis.hpp"
#include "spice/netlist.hpp"

namespace maopt::spice {

struct TranOptions {
  double t_stop = 1e-6;
  double dt = 1e-9;
  int max_step_halvings = 6;  ///< local step halving on Newton failure
  DcOptions dc;               ///< Newton settings for the initial OP and steps
};

struct TranResult {
  std::vector<double> time;
  std::vector<Vec> x;  ///< full solution per accepted step (including t=0)
  bool converged = false;

  /// Waveform of one node across all accepted steps.
  std::vector<double> node_waveform(int node) const {
    std::vector<double> v;
    v.reserve(x.size());
    for (const auto& xi : x) v.push_back(Netlist::voltage(xi, node));
    return v;
  }
};

class TranAnalysis {
 public:
  explicit TranAnalysis(TranOptions options) : options_(options) {}

  /// Runs from a DC operating point computed at t = 0. Throws
  /// std::logic_error if the netlist contains inductors.
  TranResult run(Netlist& netlist) const;

 private:
  TranOptions options_;
};

}  // namespace maopt::spice
