// Transient analysis with trapezoidal integration.
//
// Capacitances (explicit capacitors plus MOSFET parasitics) are collected
// once at the initial operating point and integrated as linear elements via
// companion models; the nonlinear device currents are re-linearized by a
// full Newton solve at every time step. This "OP-frozen capacitance"
// simplification preserves the dominant time constants that the settling
// time measurements depend on, at a fraction of the cost of re-evaluating
// charge models per iteration.
#pragma once

#include <vector>

#include "spice/dc_analysis.hpp"
#include "spice/netlist.hpp"

namespace maopt::spice {

struct TranOptions {
  double t_stop = 1e-6;
  double dt = 1e-9;
  int max_step_halvings = 6;  ///< local step halving on Newton failure
  DcOptions dc;               ///< Newton settings for the initial OP and steps
};

struct TranResult {
  std::vector<double> time;
  /// Accepted solutions (including t=0), flattened row-major: step k's state
  /// occupies states[k*stride .. k*stride+stride). One flat buffer instead
  /// of a Vec per step keeps the fixed-step hot loop allocation-free.
  Vec states;
  std::size_t stride = 0;
  bool converged = false;
  std::size_t newton_iterations = 0;  ///< total Newton iterations across the run
  std::size_t newton_memo_hits = 0;   ///< factor+solves skipped via the identical-system memo
  std::size_t step_memo_hits = 0;     ///< whole steps (assembly included) served from the step memo

  std::size_t num_steps() const { return time.size(); }

  /// Unknown `i` (node voltage or branch current) at accepted step `k`.
  double value(std::size_t k, int i) const {
    return i == kGround ? 0.0 : states[k * stride + static_cast<std::size_t>(i)];
  }

  /// Waveform of one node across all accepted steps.
  std::vector<double> node_waveform(int node) const {
    std::vector<double> v;
    v.reserve(num_steps());
    for (std::size_t k = 0; k < num_steps(); ++k) v.push_back(value(k, node));
    return v;
  }
};

class TranAnalysis {
 public:
  explicit TranAnalysis(TranOptions options) : options_(options) {}

  /// Runs from a DC operating point computed at t = 0. Throws
  /// std::logic_error if the netlist contains inductors.
  TranResult run(Netlist& netlist) const;

 private:
  TranOptions options_;
};

}  // namespace maopt::spice
