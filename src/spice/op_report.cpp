#include "spice/op_report.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "spice/devices.hpp"
#include "spice/mosfet.hpp"

namespace maopt::spice {

namespace {

std::string fmt(const char* format, double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, format, v);
  return buf;
}

std::string name_or(const Netlist& netlist, const Device* dev, const char* fallback, int index) {
  const std::string& label = netlist.label(dev);
  if (!label.empty()) return label;
  return std::string(fallback) + "#" + std::to_string(index);
}

}  // namespace

std::string operating_point_report(const Netlist& netlist, const Vec& op) {
  std::ostringstream out;
  out << "Operating point (" << netlist.num_nodes() << " nodes, "
      << netlist.devices().size() << " devices)\n";

  out << "-- node voltages --\n";
  for (std::size_t n = 0; n < netlist.num_nodes(); ++n) {
    std::string name = netlist.node_name(static_cast<int>(n));
    if (name.empty()) name = "n" + std::to_string(n);
    out << "  V(" << name << ") = " << fmt("%.6g", op[n]) << " V\n";
  }

  out << "-- devices --\n";
  int index = 0;
  for (const auto& dev : netlist.devices()) {
    ++index;
    if (const auto* m = dynamic_cast<const Mosfet*>(dev.get())) {
      const MosEval e = m->operating_point(op);
      const char* region = e.cutoff ? "cutoff" : (e.saturated ? "saturation" : "triode");
      out << "  " << name_or(netlist, dev.get(), "M", index) << " ("
          << (m->type() == MosType::Nmos ? "NMOS" : "PMOS") << " W=" << fmt("%.3g", m->width() * 1e6)
          << "u L=" << fmt("%.3g", m->length() * 1e6) << "u m=" << fmt("%.0f", m->multiplier())
          << "): " << region << ", Id=" << fmt("%.4g", m->drain_current(op) * 1e6)
          << " uA, gm=" << fmt("%.4g", e.gm * 1e3) << " mS, gds=" << fmt("%.4g", e.gds * 1e6)
          << " uS\n";
    } else if (const auto* r = dynamic_cast<const Resistor*>(dev.get())) {
      const double v = Netlist::voltage(op, r->node_a()) - Netlist::voltage(op, r->node_b());
      out << "  " << name_or(netlist, dev.get(), "R", index) << " (" << fmt("%.4g", r->resistance())
          << " Ohm): I=" << fmt("%.4g", v / r->resistance() * 1e6) << " uA, V=" << fmt("%.4g", v)
          << " V\n";
    } else if (const auto* v = dynamic_cast<const VSource*>(dev.get())) {
      out << "  " << name_or(netlist, dev.get(), "V", index)
          << ": I(branch)=" << fmt("%.4g", v->branch_current(op) * 1e3) << " mA\n";
    }
  }
  return out.str();
}

}  // namespace maopt::spice
