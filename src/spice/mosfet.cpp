#include "spice/mosfet.hpp"

#include <cmath>
#include <stdexcept>

namespace maopt::spice {

namespace {
constexpr double kBoltzmann = 1.380649e-23;
constexpr double kRoomTemp = 300.0;
}  // namespace

MosModel MosModel::nmos_180() {
  MosModel m;
  m.type = MosType::Nmos;
  m.vth0 = 0.45;
  m.kp = 280e-6;
  m.lambda_l = 0.08e-6;
  m.kf = 3e-25;
  return m;
}

MosModel MosModel::pmos_180() {
  MosModel m;
  m.type = MosType::Pmos;
  m.vth0 = 0.45;
  m.kp = 70e-6;
  m.lambda_l = 0.10e-6;
  m.kf = 1e-25;
  return m;
}

MosEval mos_level1_eval(double vgs, double vds, double vth, double k, double lambda) {
  return mos_eval_smooth(vgs, vds, vth, k, lambda, /*nvt=*/0.0);
}

MosEval mos_eval_smooth(double vgs, double vds, double vth, double k, double lambda, double nvt) {
  MosEval e{0.0, 0.0, 0.0, 0.0, false, false};
  double vov = vgs - vth;
  double dvov = 1.0;  // d vov_eff / d vgs
  if (nvt > 0.0) {
    // Softplus smoothing: vov_eff = nvt*ln(1+exp(vov/nvt)), dvov = sigmoid.
    const double a = vov / nvt;
    if (a > 40.0) {
      dvov = 1.0;  // deep strong inversion: softplus == identity numerically
    } else if (a < -40.0) {
      e.cutoff = true;
      return e;  // below any representable subthreshold current
    } else {
      vov = nvt * std::log1p(std::exp(a));
      dvov = 1.0 / (1.0 + std::exp(-a));
    }
    e.cutoff = vgs - vth <= 0.0;
  } else if (vov <= 0.0) {
    e.cutoff = true;
    return e;  // gmin at the netlist level keeps the Jacobian regular
  }
  const double clm = 1.0 + lambda * vds;
  if (vds >= vov) {
    e.saturated = true;
    e.id = 0.5 * k * vov * vov * clm;
    e.gm = k * vov * clm * dvov;
    e.gds = 0.5 * k * vov * vov * lambda;
  } else {
    e.id = k * (vov - 0.5 * vds) * vds * clm;
    e.gm = k * vds * clm * dvov;
    e.gds = k * (vov - vds) * clm + k * (vov - 0.5 * vds) * vds * lambda;
  }
  return e;
}

Mosfet::Mosfet(int d, int g, int s, int b, MosModel model, double w, double l, double m)
    : d_(d), g_(g), s_(s), b_(b), model_(model), w_(w), l_(l), m_(m) {
  set_geometry(w, l, m);
}

void Mosfet::set_geometry(double w, double l, double m) {
  if (!(w > 0.0) || !(l > 0.0) || !(m >= 1.0))
    throw std::invalid_argument("Mosfet: invalid geometry (w, l must be > 0, m >= 1)");
  w_ = w;
  l_ = l;
  m_ = m;
  memo_valid_ = false;
}

Mosfet::Linearized Mosfet::linearize(const Vec& x) const {
  const double raw_vg = Netlist::voltage(x, g_);
  const double raw_vd = Netlist::voltage(x, d_);
  const double raw_vs = Netlist::voltage(x, s_);
  const double raw_vb = Netlist::voltage(x, b_);
  if (memo_valid_ && raw_vg == memo_vg_ && raw_vd == memo_vd_ && raw_vs == memo_vs_ &&
      raw_vb == memo_vb_)
    return memo_lin_;
  const Linearized lin = linearize_uncached(raw_vg, raw_vd, raw_vs, raw_vb);
  memo_vg_ = raw_vg;
  memo_vd_ = raw_vd;
  memo_vs_ = raw_vs;
  memo_vb_ = raw_vb;
  memo_lin_ = lin;
  memo_valid_ = true;
  return lin;
}

Mosfet::Linearized Mosfet::linearize_uncached(double raw_vg, double raw_vd, double raw_vs,
                                              double raw_vb) const {
  const double sign = model_.type == MosType::Nmos ? 1.0 : -1.0;
  const double vg = sign * raw_vg;
  const double vd = sign * raw_vd;
  const double vs = sign * raw_vs;
  const double vb = sign * raw_vb;

  const double k = model_.kp * (w_ / l_) * m_;
  const double lambda = model_.lambda_l / l_;
  constexpr double kThermalVoltage = 0.02585;  // kT/q at 300 K
  // Factor 2: id ~ vov_eff^2, so softplus scale 2*n*vt yields tail exp(vov/(n*vt)).
  const double nvt = model_.subthreshold ? 2.0 * model_.n_ss * kThermalVoltage : 0.0;

  // Body effect: threshold shift from the (effective-)source-to-bulk bias,
  // with forward bias clamped for Newton robustness.
  auto vth_and_chi = [&](double vs_eff) {
    double vth = model_.vth0;
    double chi = 0.0;  // gmb / gm
    if (model_.gamma > 0.0) {
      const double vbs = std::min(vb - vs_eff, 0.5 * model_.phi);
      const double root = std::sqrt(model_.phi - vbs);
      vth += model_.gamma * (root - std::sqrt(model_.phi));
      chi = model_.gamma / (2.0 * root);
    }
    return std::pair<double, double>(vth, chi);
  };

  Linearized lin{};
  if (vd >= vs) {
    const auto [vth, chi] = vth_and_chi(vs);
    MosEval e = mos_eval_smooth(vg - vs, vd - vs, vth, k, lambda, nvt);
    e.gmb = e.gm * chi;
    lin.canon = e;
    lin.gg = e.gm;
    lin.gd = e.gds;
    lin.gb = e.gmb;
    lin.id_real = sign * e.id;
  } else {
    // Drain/source swap: the physical source acts as the channel drain.
    const auto [vth, chi] = vth_and_chi(vd);
    MosEval e = mos_eval_smooth(vg - vd, vs - vd, vth, k, lambda, nvt);
    e.gmb = e.gm * chi;
    lin.canon = e;
    lin.gg = -e.gm;
    lin.gb = -e.gmb;
    lin.gd = e.gm + e.gds + e.gmb;
    lin.id_real = sign * (-e.id);
  }
  lin.gs = -lin.gg - lin.gd - lin.gb;
  return lin;
}

void Mosfet::stamp_nonlinear(RealStamper& s, const NonlinearStampArgs& args) const {
  const Linearized lin = linearize(args.x);
  const double vg = Netlist::voltage(args.x, g_);
  const double vd = Netlist::voltage(args.x, d_);
  const double vs = Netlist::voltage(args.x, s_);
  const double vb = Netlist::voltage(args.x, b_);
  // Companion current source so that the stamped linear model reproduces
  // id_real at the current iterate.
  const double ieq = lin.id_real - (lin.gg * vg + lin.gd * vd + lin.gs * vs + lin.gb * vb);
  s.add(d_, g_, lin.gg);
  s.add(d_, d_, lin.gd);
  s.add(d_, s_, lin.gs);
  s.add(d_, b_, lin.gb);
  s.add(s_, g_, -lin.gg);
  s.add(s_, d_, -lin.gd);
  s.add(s_, s_, -lin.gs);
  s.add(s_, b_, -lin.gb);
  s.current_into(d_, -ieq);
  s.current_into(s_, ieq);
}

void Mosfet::stamp_ac(ComplexStamper& s, double omega, const Vec& op) const {
  const Linearized lin = linearize(op);
  s.add(d_, g_, {lin.gg, 0.0});
  s.add(d_, d_, {lin.gd, 0.0});
  s.add(d_, s_, {lin.gs, 0.0});
  s.add(d_, b_, {lin.gb, 0.0});
  s.add(s_, g_, {-lin.gg, 0.0});
  s.add(s_, d_, {-lin.gd, 0.0});
  s.add(s_, s_, {-lin.gs, 0.0});
  s.add(s_, b_, {-lin.gb, 0.0});
  // Parasitic capacitances evaluated at the OP.
  std::vector<CapacitorStamp> caps;
  collect_caps(caps, op);
  for (const auto& c : caps) s.conductance(c.node_a, c.node_b, {0.0, omega * c.capacitance});
}

void Mosfet::stamp_ac_parts(RealStamper& g, RealStamper& c, CVec&, const Vec& op) const {
  const Linearized lin = linearize(op);
  g.add(d_, g_, lin.gg);
  g.add(d_, d_, lin.gd);
  g.add(d_, s_, lin.gs);
  g.add(d_, b_, lin.gb);
  g.add(s_, g_, -lin.gg);
  g.add(s_, d_, -lin.gd);
  g.add(s_, s_, -lin.gs);
  g.add(s_, b_, -lin.gb);
  const MeyerCaps mc = meyer_caps(lin);
  c.conductance(g_, s_, mc.cgs);
  c.conductance(g_, d_, mc.cgd);
  c.conductance(d_, b_, mc.cj);
  c.conductance(s_, b_, mc.cj);
}

Mosfet::MeyerCaps Mosfet::meyer_caps(const Linearized& lin) const {
  const double c_gate = model_.cox * w_ * l_ * m_;
  const double c_ov = model_.cov * w_ * m_;
  MeyerCaps mc{};
  if (lin.canon.cutoff) {
    mc.cgs = c_ov;
    mc.cgd = c_ov;
  } else if (lin.canon.saturated) {
    mc.cgs = (2.0 / 3.0) * c_gate + c_ov;  // Meyer saturation partition
    mc.cgd = c_ov;
  } else {
    mc.cgs = 0.5 * c_gate + c_ov;
    mc.cgd = 0.5 * c_gate + c_ov;
  }
  mc.cj = model_.cj_w * w_ * m_;
  return mc;
}

void Mosfet::collect_caps(std::vector<CapacitorStamp>& caps, const Vec& op) const {
  const MeyerCaps mc = meyer_caps(linearize(op));
  caps.push_back({g_, s_, mc.cgs});
  caps.push_back({g_, d_, mc.cgd});
  caps.push_back({d_, b_, mc.cj});
  caps.push_back({s_, b_, mc.cj});
}

void Mosfet::collect_noise(std::vector<NoiseSource>& sources, const Vec& op) const {
  const Linearized lin = linearize(op);
  const double gm = lin.canon.gm;
  if (gm <= 0.0) return;
  // Channel thermal noise 4kT*(2/3)*gm; flicker S(f) = kf*gm^2/(Cox*W*L*f).
  const double white = 4.0 * kBoltzmann * kRoomTemp * (2.0 / 3.0) * gm;
  const double flicker = model_.kf * gm * gm / (model_.cox * w_ * l_ * m_);
  sources.push_back({d_, s_, white, flicker, "M"});
}

double Mosfet::drain_current(const Vec& x) const { return linearize(x).id_real; }

MosEval Mosfet::operating_point(const Vec& x) const { return linearize(x).canon; }

}  // namespace maopt::spice
