#include "spice/dc_analysis.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/lu.hpp"

#include "common/thread_annotations.hpp"

namespace maopt::spice {

MAOPT_HOT bool DcAnalysis::newton(const Netlist& netlist, double source_scale, double time,
                                  double gmin, const DcOptions& options, Vec& x,
                                  int* iterations_out, NewtonWorkspace& ws,
                                  const std::vector<CapacitorStamp>* companion_caps,
                                  const Vec* companion_ieq) {
  const std::size_t n = netlist.system_size();
  const std::size_t num_nodes = netlist.num_nodes();
  if (x.size() != n) x.assign(n, 0.0);  // maopt-lint: allow(hot-alloc) cold-start sizing
  ++ws.solves;

  Vec& x_new = ws.x_new;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    netlist.build_nonlinear_system(x, source_scale, time, gmin, ws.lu.matrix(), ws.rhs);
    if (companion_caps) {
      // Transient companion models: conductance + equivalent current per cap.
      RealStamper s(ws.lu.matrix(), ws.rhs);
      for (std::size_t k = 0; k < companion_caps->size(); ++k) {
        const auto& c = (*companion_caps)[k];
        // geq was folded into the cap list as `capacitance` by the caller
        // (already 2C/dt); ieq provided alongside.
        s.conductance(c.node_a, c.node_b, c.capacitance);
        s.current_into(c.node_a, (*companion_ieq)[k]);
        s.current_into(c.node_b, -(*companion_ieq)[k]);
      }
    }

    ++ws.iterations;
    // Identical-system memo (transient steps only): in the settled tail of a
    // run the assembled (A, rhs) repeats bit-identically with period <= 2
    // (see NewtonWorkspace::memo); the cached solution of those exact bits
    // replaces the factor+solve.
    const bool memo_on = companion_caps != nullptr;
    bool memo_hit = false;
    if (memo_on) {
      for (const auto& slot : ws.memo) {
        if (slot.valid && ws.rhs == slot.rhs && ws.lu.matrix().data() == slot.a.data()) {
          x_new = slot.x;
          ++ws.memo_hits;
          memo_hit = true;
          break;
        }
      }
    }
    if (!memo_hit) {
      NewtonWorkspace::MemoSlot* slot = memo_on ? &ws.memo[ws.memo_next] : nullptr;
      if (slot) {
        slot->valid = false;
        slot->a = ws.lu.matrix();  // snapshot before the in-place factor
        slot->rhs = ws.rhs;
      }
      if (!linalg::lu_factor(ws.lu)) {
        return false;  // singular Jacobian; caller escalates the continuation
      }
      linalg::lu_solve_factored(ws.lu, ws.rhs, x_new);
      if (slot) {
        slot->x = x_new;
        slot->valid = true;
        ws.memo_next = (ws.memo_next + 1) % ws.memo.size();
      }
    }

    // Damping: clamp the max node-voltage change.
    double max_dv = 0.0;
    for (std::size_t i = 0; i < num_nodes; ++i) max_dv = std::max(max_dv, std::abs(x_new[i] - x[i]));
    double alpha = 1.0;
    if (max_dv > options.max_step) alpha = options.max_step / max_dv;

    bool converged = alpha == 1.0;
    if (alpha == 1.0) {
      // Settle snap: when every component moves by less than kSettleSnap of
      // the convergence tolerance the update is last-ulp noise (trapezoidal
      // companion ringing, rounding in the solve), not information. Keeping
      // the previous iterate bit-for-bit lets settled transients reach an
      // exactly periodic state, which the identical-system and step memos
      // then collapse to table lookups. Well below the stated tolerance, so
      // accuracy is unaffected.
      constexpr double kSettleSnap = 1e-3;
      bool settled = true;
      for (std::size_t i = 0; i < n; ++i) {
        const double dx = std::abs(x_new[i] - x[i]);
        const double tol = i < num_nodes ? options.v_tol : options.i_tol;
        const double scale = 1.0 + std::abs(x[i]);
        if (dx > tol * scale) converged = false;
        if (dx > kSettleSnap * tol * scale) settled = false;
      }
      // Undamped accept adopts the solved iterate bit-for-bit (writing
      // x += (x_new - x) would perturb the last ulp every step).
      if (!settled) {
        for (std::size_t i = 0; i < n; ++i) x[i] = x_new[i];
      }
    } else {
      for (std::size_t i = 0; i < n; ++i) x[i] += alpha * (x_new[i] - x[i]);
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (!std::isfinite(x[i])) return false;
    }
    if (converged) {
      if (iterations_out) *iterations_out = iter + 1;
      return true;
    }
  }
  return false;
}

bool DcAnalysis::newton(const Netlist& netlist, double source_scale, double time, double gmin,
                        const DcOptions& options, Vec& x, int* iterations_out,
                        const std::vector<CapacitorStamp>* companion_caps,
                        const Vec* companion_ieq) {
  NewtonWorkspace ws;
  return newton(netlist, source_scale, time, gmin, options, x, iterations_out, ws, companion_caps,
                companion_ieq);
}

DcResult DcAnalysis::solve(Netlist& netlist, const Vec* initial_guess) const {
  if (!netlist.prepared()) netlist.prepare();
  DcResult result;
  result.x.assign(netlist.system_size(), 0.0);
  if (initial_guess && initial_guess->size() == netlist.system_size()) result.x = *initial_guess;

  // 1) Direct attempt.
  if (newton(netlist, 1.0, -1.0, options_.gmin, options_, result.x, &result.iterations, ws_)) {
    result.converged = true;
    result.method = "direct";
    return result;
  }

  // 2) gmin stepping: start heavily damped toward ground, relax to target.
  if (options_.allow_gmin_stepping) {
    Vec x(netlist.system_size(), 0.0);
    bool ok = true;
    for (double g = 1e-2; g >= options_.gmin * 0.99; g *= 1e-2) {
      if (!newton(netlist, 1.0, -1.0, std::max(g, options_.gmin), options_, x, nullptr, ws_)) {
        ok = false;
        break;
      }
    }
    if (ok && newton(netlist, 1.0, -1.0, options_.gmin, options_, x, &result.iterations, ws_)) {
      result.x = std::move(x);
      result.converged = true;
      result.method = "gmin";
      return result;
    }
  }

  // 3) Source stepping: ramp all independent sources from 0.
  if (options_.allow_source_stepping) {
    Vec x(netlist.system_size(), 0.0);
    bool ok = true;
    for (double scale = 0.1; scale < 1.0001; scale += 0.1) {
      // The final ramp step (scale ~ 1.0) is the real solve; report its
      // Newton count instead of the old max_iterations placeholder.
      int* iters = scale > 0.95 ? &result.iterations : nullptr;
      if (!newton(netlist, std::min(scale, 1.0), -1.0, options_.gmin, options_, x, iters, ws_)) {
        ok = false;
        break;
      }
    }
    if (ok) {
      result.x = std::move(x);
      result.converged = true;
      result.method = "source";
      return result;
    }
  }

  result.converged = false;
  return result;
}

}  // namespace maopt::spice
