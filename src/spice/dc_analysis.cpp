#include "spice/dc_analysis.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/lu.hpp"

namespace maopt::spice {

bool DcAnalysis::newton(const Netlist& netlist, double source_scale, double time, double gmin,
                        const DcOptions& options, Vec& x, int* iterations_out,
                        const std::vector<CapacitorStamp>* companion_caps,
                        const Vec* companion_ieq) {
  const std::size_t n = netlist.system_size();
  const std::size_t num_nodes = netlist.num_nodes();
  if (x.size() != n) x.assign(n, 0.0);

  Mat a;
  Vec rhs;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    netlist.build_nonlinear_system(x, source_scale, time, gmin, a, rhs);
    if (companion_caps) {
      // Transient companion models: conductance + equivalent current per cap.
      RealStamper s(a, rhs);
      for (std::size_t k = 0; k < companion_caps->size(); ++k) {
        const auto& c = (*companion_caps)[k];
        // geq was folded into the cap list as `capacitance` by the caller
        // (already 2C/dt); ieq provided alongside.
        s.conductance(c.node_a, c.node_b, c.capacitance);
        s.current_into(c.node_a, (*companion_ieq)[k]);
        s.current_into(c.node_b, -(*companion_ieq)[k]);
      }
    }

    Vec x_new;
    try {
      x_new = linalg::lu_solve(std::move(a), rhs);
    } catch (const std::runtime_error&) {
      return false;  // singular Jacobian; caller escalates the continuation
    }

    // Damping: clamp the max node-voltage change.
    double max_dv = 0.0;
    for (std::size_t i = 0; i < num_nodes; ++i) max_dv = std::max(max_dv, std::abs(x_new[i] - x[i]));
    double alpha = 1.0;
    if (max_dv > options.max_step) alpha = options.max_step / max_dv;

    bool converged = alpha == 1.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double dx = x_new[i] - x[i];
      if (converged) {
        const double tol = i < num_nodes ? options.v_tol : options.i_tol;
        if (std::abs(dx) > tol * (1.0 + std::abs(x[i]))) converged = false;
      }
      x[i] += alpha * dx;
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (!std::isfinite(x[i])) return false;
    }
    if (converged) {
      if (iterations_out) *iterations_out = iter + 1;
      return true;
    }
  }
  return false;
}

DcResult DcAnalysis::solve(Netlist& netlist, const Vec* initial_guess) const {
  if (!netlist.prepared()) netlist.prepare();
  DcResult result;
  result.x.assign(netlist.system_size(), 0.0);
  if (initial_guess && initial_guess->size() == netlist.system_size()) result.x = *initial_guess;

  // 1) Direct attempt.
  if (newton(netlist, 1.0, -1.0, options_.gmin, options_, result.x, &result.iterations)) {
    result.converged = true;
    result.method = "direct";
    return result;
  }

  // 2) gmin stepping: start heavily damped toward ground, relax to target.
  if (options_.allow_gmin_stepping) {
    Vec x(netlist.system_size(), 0.0);
    bool ok = true;
    for (double g = 1e-2; g >= options_.gmin * 0.99; g *= 1e-2) {
      if (!newton(netlist, 1.0, -1.0, std::max(g, options_.gmin), options_, x, nullptr)) {
        ok = false;
        break;
      }
    }
    if (ok && newton(netlist, 1.0, -1.0, options_.gmin, options_, x, &result.iterations)) {
      result.x = std::move(x);
      result.converged = true;
      result.method = "gmin";
      return result;
    }
  }

  // 3) Source stepping: ramp all independent sources from 0.
  if (options_.allow_source_stepping) {
    Vec x(netlist.system_size(), 0.0);
    bool ok = true;
    for (double scale = 0.1; scale < 1.0001; scale += 0.1) {
      if (!newton(netlist, std::min(scale, 1.0), -1.0, options_.gmin, options_, x, nullptr)) {
        ok = false;
        break;
      }
    }
    if (ok) {
      result.x = std::move(x);
      result.converged = true;
      result.method = "source";
      result.iterations = options_.max_iterations;
      return result;
    }
  }

  result.converged = false;
  return result;
}

}  // namespace maopt::spice
