// Small-signal noise analysis.
//
// Each device contributes equivalent noise current generators (thermal,
// flicker). At every frequency point the transfer from *all* injection
// nodes to the designated output is obtained with a single adjoint solve
// A^T z = e_out, giving the output noise PSD
//   S_out(f) = sum_sources |z[a] - z[b]|^2 * S_source(f)   [V^2/Hz].
#pragma once

#include <vector>

#include "linalg/lu.hpp"
#include "spice/netlist.hpp"

namespace maopt::spice {

struct NoiseResult {
  std::vector<double> frequencies;
  std::vector<double> output_psd;  ///< V^2/Hz at the output node
  double total_rms = 0.0;          ///< sqrt(integral of PSD over the sweep) [Vrms]
};

/// Trapezoidal integration of a PSD over (possibly log-spaced) frequencies.
double integrate_psd(const std::vector<double>& freqs, const std::vector<double>& psd);

class NoiseAnalysis {
 public:
  /// Output measured as V(out_pos) - V(out_neg); pass kGround for single-ended.
  /// The G/C parts are assembled once; each frequency is a combine + in-place
  /// factor + one adjoint back-substitution into reused workspace buffers.
  /// Not safe to call concurrently on one NoiseAnalysis instance.
  NoiseResult run(Netlist& netlist, const Vec& op, int out_pos, int out_neg,
                  const std::vector<double>& frequencies) const;

 private:
  mutable Mat g_, c_;
  mutable CVec rhs_, e_out_, z_;
  mutable linalg::LuWorkComplex lu_;
};

}  // namespace maopt::spice
