// Human-readable operating-point report — the equivalent of a SPICE
// ".op" printout: per-MOSFET region / current / small-signal parameters,
// per-resistor current, per-source branch current. Device names come from
// netlist labels (set automatically by the deck parser).
#pragma once

#include <string>

#include "spice/netlist.hpp"

namespace maopt::spice {

/// Formats the operating point `op` (a converged DC solution) as a table.
std::string operating_point_report(const Netlist& netlist, const Vec& op);

}  // namespace maopt::spice
