#include "spice/tran_analysis.hpp"

#include <array>
#include <cmath>
#include <stdexcept>

#include "spice/devices.hpp"

namespace maopt::spice {

TranResult TranAnalysis::run(Netlist& netlist) const {
  if (!netlist.prepared()) netlist.prepare();
  for (const auto& dev : netlist.devices())
    if (dynamic_cast<const Inductor*>(dev.get()) != nullptr)
      throw std::logic_error("TranAnalysis: inductors are not supported in transient");

  TranResult result;

  // One Newton workspace for the whole run: the t=0 point and every time
  // step (including halved retries) factor into the same buffers.
  NewtonWorkspace ws;

  // Initial operating point with sources evaluated at t = 0.
  Vec x(netlist.system_size(), 0.0);
  if (!DcAnalysis::newton(netlist, 1.0, 0.0, options_.dc.gmin, options_.dc, x, nullptr, ws)) {
    // Fall back to the full continuation ladder for the t=0 point.
    DcAnalysis dc(options_.dc);
    DcResult op = dc.solve(netlist);
    if (!op.converged) return result;
    x = std::move(op.x);
    // Re-polish at t=0 source values (solve() used DC waveform values, which
    // equal value(0) for all shipped waveform kinds).
    if (!DcAnalysis::newton(netlist, 1.0, 0.0, options_.dc.gmin, options_.dc, x, nullptr, ws))
      return result;
  }

  const std::vector<CapacitorStamp> caps = netlist.collect_caps(x);

  // Per-capacitor trapezoidal state.
  std::vector<double> v_prev(caps.size()), i_prev(caps.size(), 0.0);
  auto cap_voltage = [&](const CapacitorStamp& c, const Vec& sol) {
    return Netlist::voltage(sol, c.node_a) - Netlist::voltage(sol, c.node_b);
  };
  for (std::size_t k = 0; k < caps.size(); ++k) v_prev[k] = cap_voltage(caps[k], x);

  // Fixed-step run: the final size is known up front, so the waveform
  // storage never reallocates mid-run (halved retries only add entries).
  const auto expected_steps = static_cast<std::size_t>(options_.t_stop / options_.dt) + 2;
  result.stride = netlist.system_size();
  result.time.reserve(expected_steps);
  result.states.reserve(expected_steps * result.stride);
  result.time.push_back(0.0);
  result.states.insert(result.states.end(), x.begin(), x.end());

  std::vector<CapacitorStamp> companions(caps.size());
  Vec ieq(caps.size());

  // Whole-step memo: the accepted solution of a step is a pure function of
  // (starting iterate, companion currents, source waveform values, step
  // size) — everything else (topology, device parameters, gmin, Newton
  // options) is fixed for the run. Once the waveform settles into an exactly
  // periodic state (the settle snap in DcAnalysis::newton makes that happen
  // in FP, with the trapezoidal companion current alternating at period 2),
  // the whole Newton solve — assembly included — collapses to a lookup.
  struct StepMemo {
    double step = 0.0;
    Vec x_in, ieq, src, x_out;
    bool valid = false;
  };
  std::array<StepMemo, 2> smemo;
  std::size_t smemo_next = 0;
  Vec src_now;

  double t = 0.0;
  double dt = options_.dt;
  Vec x_try;
  while (t < options_.t_stop - 1e-18) {
    double step = std::min(dt, options_.t_stop - t);
    bool ok = false;
    int halvings = 0;
    while (!ok) {
      const double geq_scale = 2.0 / step;
      for (std::size_t k = 0; k < caps.size(); ++k) {
        const double geq = geq_scale * caps[k].capacitance;
        companions[k] = {caps[k].node_a, caps[k].node_b, geq};
        ieq[k] = geq * v_prev[k] + i_prev[k];
      }
      netlist.collect_time_inputs(t + step, src_now);
      bool memo_hit = false;
      for (const auto& slot : smemo) {
        if (slot.valid && slot.step == step && slot.ieq == ieq && slot.src == src_now &&
            slot.x_in == x) {
          x_try = slot.x_out;
          ++result.step_memo_hits;
          memo_hit = ok = true;
          break;
        }
      }
      if (!memo_hit) {
        x_try = x;
        ok = DcAnalysis::newton(netlist, 1.0, t + step, options_.dc.gmin, options_.dc, x_try,
                                nullptr, ws, &companions, &ieq);
        if (ok) {
          StepMemo& slot = smemo[smemo_next];
          slot.step = step;
          slot.x_in = x;
          slot.ieq = ieq;
          slot.src = src_now;
          slot.x_out = x_try;
          slot.valid = true;
          smemo_next = (smemo_next + 1) % smemo.size();
        }
      }
      if (!ok) {
        if (++halvings > options_.max_step_halvings) return result;  // converged=false
        step *= 0.5;
      }
    }
    // Accept the step; update trapezoidal states.
    for (std::size_t k = 0; k < caps.size(); ++k) {
      const double geq = companions[k].capacitance;
      const double v_new = cap_voltage(caps[k], x_try);
      i_prev[k] = geq * v_new - ieq[k];
      v_prev[k] = v_new;
    }
    t += step;
    std::swap(x, x_try);  // keep x_try's storage for the next step
    result.time.push_back(t);
    result.states.insert(result.states.end(), x.begin(), x.end());
  }
  result.converged = true;
  result.newton_iterations = ws.iterations;
  result.newton_memo_hits = ws.memo_hits;
  return result;
}

}  // namespace maopt::spice
