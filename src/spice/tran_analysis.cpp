#include "spice/tran_analysis.hpp"

#include <cmath>
#include <stdexcept>

#include "spice/devices.hpp"

namespace maopt::spice {

TranResult TranAnalysis::run(Netlist& netlist) const {
  if (!netlist.prepared()) netlist.prepare();
  for (const auto& dev : netlist.devices())
    if (dynamic_cast<const Inductor*>(dev.get()) != nullptr)
      throw std::logic_error("TranAnalysis: inductors are not supported in transient");

  TranResult result;

  // Initial operating point with sources evaluated at t = 0.
  Vec x(netlist.system_size(), 0.0);
  if (!DcAnalysis::newton(netlist, 1.0, 0.0, options_.dc.gmin, options_.dc, x, nullptr)) {
    // Fall back to the full continuation ladder for the t=0 point.
    DcAnalysis dc(options_.dc);
    DcResult op = dc.solve(netlist);
    if (!op.converged) return result;
    x = std::move(op.x);
    // Re-polish at t=0 source values (solve() used DC waveform values, which
    // equal value(0) for all shipped waveform kinds).
    if (!DcAnalysis::newton(netlist, 1.0, 0.0, options_.dc.gmin, options_.dc, x, nullptr)) return result;
  }

  const std::vector<CapacitorStamp> caps = netlist.collect_caps(x);

  // Per-capacitor trapezoidal state.
  std::vector<double> v_prev(caps.size()), i_prev(caps.size(), 0.0);
  auto cap_voltage = [&](const CapacitorStamp& c, const Vec& sol) {
    return Netlist::voltage(sol, c.node_a) - Netlist::voltage(sol, c.node_b);
  };
  for (std::size_t k = 0; k < caps.size(); ++k) v_prev[k] = cap_voltage(caps[k], x);

  result.time.push_back(0.0);
  result.x.push_back(x);

  std::vector<CapacitorStamp> companions(caps.size());
  Vec ieq(caps.size());

  double t = 0.0;
  double dt = options_.dt;
  while (t < options_.t_stop - 1e-18) {
    double step = std::min(dt, options_.t_stop - t);
    Vec x_try = x;
    bool ok = false;
    int halvings = 0;
    while (!ok) {
      const double geq_scale = 2.0 / step;
      for (std::size_t k = 0; k < caps.size(); ++k) {
        const double geq = geq_scale * caps[k].capacitance;
        companions[k] = {caps[k].node_a, caps[k].node_b, geq};
        ieq[k] = geq * v_prev[k] + i_prev[k];
      }
      x_try = x;
      ok = DcAnalysis::newton(netlist, 1.0, t + step, options_.dc.gmin, options_.dc, x_try,
                              nullptr, &companions, &ieq);
      if (!ok) {
        if (++halvings > options_.max_step_halvings) return result;  // converged=false
        step *= 0.5;
      }
    }
    // Accept the step; update trapezoidal states.
    for (std::size_t k = 0; k < caps.size(); ++k) {
      const double geq = companions[k].capacitance;
      const double v_new = cap_voltage(caps[k], x_try);
      i_prev[k] = geq * v_new - ieq[k];
      v_prev[k] = v_new;
    }
    t += step;
    x = std::move(x_try);
    result.time.push_back(t);
    result.x.push_back(x);
  }
  result.converged = true;
  return result;
}

}  // namespace maopt::spice
