#include "spice/netlist.hpp"

#include <stdexcept>

namespace maopt::spice {

int Netlist::node(const std::string& name) {
  if (name == "0" || name == "gnd" || name == "GND") return kGround;
  const auto it = node_ids_.find(name);
  if (it != node_ids_.end()) return it->second;
  const int id = static_cast<int>(num_nodes_++);
  node_ids_.emplace(name, id);
  prepared_ = false;
  return id;
}

int Netlist::find_node(const std::string& name) const {
  if (name == "0" || name == "gnd" || name == "GND") return kGround;
  const auto it = node_ids_.find(name);
  if (it == node_ids_.end()) throw std::invalid_argument("Netlist: unknown node '" + name + "'");
  return it->second;
}

void Netlist::set_label(const Device* device, std::string label) {
  labels_[device] = std::move(label);
}

const std::string& Netlist::label(const Device* device) const {
  static const std::string kEmpty;
  const auto it = labels_.find(device);
  return it == labels_.end() ? kEmpty : it->second;
}

std::string Netlist::node_name(int node) const {
  if (node == kGround) return "0";
  for (const auto& [name, id] : node_ids_)
    if (id == node) return name;
  return "";
}

void Netlist::prepare() {
  int branch = static_cast<int>(num_nodes_);
  for (const auto& dev : devices_) {
    if (dev->num_branches() > 0) {
      dev->set_branch_base(branch);
      branch += dev->num_branches();
    }
  }
  system_size_ = static_cast<std::size_t>(branch);
  prepared_ = true;
}

void Netlist::build_nonlinear_system(const Vec& x, double source_scale, double time, double gmin,
                                     Mat& a, Vec& rhs) const {
  if (!prepared_) throw std::logic_error("Netlist: prepare() not called");
  a.resize(system_size_, system_size_);
  rhs.assign(system_size_, 0.0);
  RealStamper s(a, rhs);
  // gmin from every node to ground keeps the Jacobian nonsingular when
  // devices are cut off or nodes float mid-continuation.
  for (std::size_t n = 0; n < num_nodes_; ++n) s.add(static_cast<int>(n), static_cast<int>(n), gmin);
  const NonlinearStampArgs args{x, source_scale, time};
  for (const auto& dev : devices_) dev->stamp_nonlinear(s, args);
}

void Netlist::build_ac_system(double omega, const Vec& op, CMat& a, CVec& rhs) const {
  if (!prepared_) throw std::logic_error("Netlist: prepare() not called");
  a.resize(system_size_, system_size_);
  rhs.assign(system_size_, std::complex<double>{});
  ComplexStamper s(a, rhs);
  constexpr double kAcGmin = 1e-12;
  for (std::size_t n = 0; n < num_nodes_; ++n)
    s.add(static_cast<int>(n), static_cast<int>(n), kAcGmin);
  for (const auto& dev : devices_) dev->stamp_ac(s, omega, op);
}

void Netlist::build_ac_parts(const Vec& op, Mat& g, Mat& c, CVec& rhs) const {
  if (!prepared_) throw std::logic_error("Netlist: prepare() not called");
  g.resize(system_size_, system_size_);
  c.resize(system_size_, system_size_);
  rhs.assign(system_size_, std::complex<double>{});
  RealStamper gs(g);
  RealStamper cs(c);
  constexpr double kAcGmin = 1e-12;
  for (std::size_t n = 0; n < num_nodes_; ++n)
    gs.add(static_cast<int>(n), static_cast<int>(n), kAcGmin);
  for (const auto& dev : devices_) dev->stamp_ac_parts(gs, cs, rhs, op);
}

void Netlist::build_ac_rhs(CVec& rhs) const {
  if (!prepared_) throw std::logic_error("Netlist: prepare() not called");
  rhs.assign(system_size_, std::complex<double>{});
  for (const auto& dev : devices_) dev->stamp_ac_rhs(rhs);
}

std::vector<CapacitorStamp> Netlist::collect_caps(const Vec& op) const {
  std::vector<CapacitorStamp> caps;
  for (const auto& dev : devices_) dev->collect_caps(caps, op);
  return caps;
}

std::vector<NoiseSource> Netlist::collect_noise(const Vec& op) const {
  std::vector<NoiseSource> sources;
  for (const auto& dev : devices_) dev->collect_noise(sources, op);
  return sources;
}

void Netlist::collect_time_inputs(double time, Vec& out) const {
  out.clear();
  for (const auto& dev : devices_) dev->collect_time_inputs(time, out);
}

}  // namespace maopt::spice
