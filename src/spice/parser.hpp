// SPICE-format netlist parser.
//
// Supports the element subset the simulator implements, enough to describe
// every testbench in this repo as a plain-text deck:
//
//   * comment        — lines starting with '*' or ';', blank lines
//   * R/C/L          — Rname n1 n2 value
//   * V/I            — Vname n+ n- [DC v] [AC mag] [PULSE(v1 v2 td tr tf pw per)]
//                      [PWL(t1 v1 t2 v2 ...)]
//   * E (VCVS)       — Ename p n cp cn gain
//   * M (MOSFET)     — Mname d g s b model [W=..] [L=..] [M=..]
//   * .model         — .model name NMOS|PMOS [VTO=..] [KP=..] [LAMBDAL=..]
//                      [COX=..] [COV=..] [CJW=..] [KF=..]
//
// Engineering suffixes are honored (f p n u m k meg g t); ground is node
// "0"/"gnd". Unknown cards raise ParseError with a line number.
#pragma once

#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "spice/devices.hpp"
#include "spice/mosfet.hpp"
#include "spice/netlist.hpp"

namespace maopt::spice {

class ParseError : public std::runtime_error {
 public:
  ParseError(int line, const std::string& message)
      : ParseError(std::string(), line, message, {}) {}

  /// Attributed form: `file` is the deck the offending line lives in and
  /// `include_chain` the stack of "path:line" frames that .include'd it
  /// (outermost first), so errors deep inside included libraries point at
  /// both the bad line and how the parser got there.
  ParseError(std::string file, int line, const std::string& message,
             std::vector<std::string> include_chain = {})
      : std::runtime_error(format(file, line, message, include_chain)),
        file_(std::move(file)),
        line_(line),
        include_chain_(std::move(include_chain)) {}

  int line() const { return line_; }
  const std::string& file() const { return file_; }
  const std::vector<std::string>& include_chain() const { return include_chain_; }

 private:
  static std::string format(const std::string& file, int line, const std::string& message,
                            const std::vector<std::string>& chain) {
    std::string out = file.empty() ? "line " + std::to_string(line)
                                   : file + ":" + std::to_string(line);
    if (!chain.empty()) {
      out += " (included from ";
      for (std::size_t i = 0; i < chain.size(); ++i) out += (i ? ", " : "") + chain[i];
      out += ")";
    }
    return out + ": " + message;
  }

  std::string file_;
  int line_;
  std::vector<std::string> include_chain_;
};

/// Parses "1.5k", "100f", "2meg", "1e-9" ... into a double. Multi-letter
/// suffixes MEG (1e6) and MIL (25.4e-6) are matched before the single-letter
/// engineering set, so "2MEGHz" and "5mil" do the right thing.
/// Throws std::invalid_argument on malformed input.
double parse_spice_value(const std::string& token);

struct ParsedNetlist {
  Netlist netlist;
  std::map<std::string, Device*> devices;       ///< by element name (upper-cased)
  std::map<std::string, MosModel> models;       ///< .model cards (upper-cased)
  std::vector<std::string> warnings;            ///< non-fatal issues ("line N: ...")

  /// Typed device lookup; throws std::out_of_range / std::bad_cast-style
  /// errors as std::runtime_error for friendlier messages.
  template <typename T>
  T* device(const std::string& name) const {
    const auto it = devices.find(name);
    if (it == devices.end()) throw std::runtime_error("no device named '" + name + "'");
    T* typed = dynamic_cast<T*>(it->second);
    if (typed == nullptr) throw std::runtime_error("device '" + name + "' has a different type");
    return typed;
  }
};

/// Parses a full deck; the returned netlist is prepare()d and ready for
/// analysis. Unknown dot-cards are collected into `warnings` instead of
/// being dropped silently; `.end` terminates parsing.
ParsedNetlist parse_netlist(const std::string& deck);

/// Result-type alias: parse_netlist returns devices + warnings, not just
/// a netlist, and call sites that only care about diagnostics read better
/// with this name.
using ParseResult = ParsedNetlist;

}  // namespace maopt::spice
