// SPICE-format netlist parser.
//
// Supports the element subset the simulator implements, enough to describe
// every testbench in this repo as a plain-text deck:
//
//   * comment        — lines starting with '*' or ';', blank lines
//   * R/C/L          — Rname n1 n2 value
//   * V/I            — Vname n+ n- [DC v] [AC mag] [PULSE(v1 v2 td tr tf pw per)]
//                      [PWL(t1 v1 t2 v2 ...)]
//   * E (VCVS)       — Ename p n cp cn gain
//   * M (MOSFET)     — Mname d g s b model [W=..] [L=..] [M=..]
//   * .model         — .model name NMOS|PMOS [VTO=..] [KP=..] [LAMBDAL=..]
//                      [COX=..] [COV=..] [CJW=..] [KF=..]
//
// Engineering suffixes are honored (f p n u m k meg g t); ground is node
// "0"/"gnd". Unknown cards raise ParseError with a line number.
#pragma once

#include <map>
#include <stdexcept>
#include <string>

#include "spice/devices.hpp"
#include "spice/mosfet.hpp"
#include "spice/netlist.hpp"

namespace maopt::spice {

class ParseError : public std::runtime_error {
 public:
  ParseError(int line, const std::string& message)
      : std::runtime_error("line " + std::to_string(line) + ": " + message), line_(line) {}
  int line() const { return line_; }

 private:
  int line_;
};

/// Parses "1.5k", "100f", "2meg", "1e-9" ... into a double.
/// Throws std::invalid_argument on malformed input.
double parse_spice_value(const std::string& token);

struct ParsedNetlist {
  Netlist netlist;
  std::map<std::string, Device*> devices;       ///< by element name (upper-cased)
  std::map<std::string, MosModel> models;       ///< .model cards (upper-cased)

  /// Typed device lookup; throws std::out_of_range / std::bad_cast-style
  /// errors as std::runtime_error for friendlier messages.
  template <typename T>
  T* device(const std::string& name) const {
    const auto it = devices.find(name);
    if (it == devices.end()) throw std::runtime_error("no device named '" + name + "'");
    T* typed = dynamic_cast<T*>(it->second);
    if (typed == nullptr) throw std::runtime_error("device '" + name + "' has a different type");
    return typed;
  }
};

/// Parses a full deck; the returned netlist is prepare()d and ready for
/// analysis.
ParsedNetlist parse_netlist(const std::string& deck);

}  // namespace maopt::spice
