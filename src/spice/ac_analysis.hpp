// Small-signal AC analysis: the netlist is linearized at a DC operating
// point and the complex MNA system (G + jwC) x = b is solved per frequency.
//
// Hot path: the ω-independent G/C parts and the excitation are assembled
// ONCE per sweep (one device-model linearization total, instead of one per
// frequency), then each frequency point is a cheap SIMD combine
// A = G + jωC into a reused complex LU workspace plus an in-place factor
// and back-substitution — zero steady-state allocations across the sweep.
#pragma once

#include <vector>

#include "linalg/lu.hpp"
#include "spice/netlist.hpp"

namespace maopt::spice {

struct AcSweep {
  std::vector<double> frequencies;       ///< Hz
  std::vector<CVec> solutions;           ///< one complex solution vector per frequency

  /// Complex voltage of `node` at sweep point `k`.
  std::complex<double> voltage(std::size_t k, int node) const {
    return Netlist::voltage(solutions[k], node);
  }
};

/// Log-spaced frequency grid [f_start, f_stop] with `points_per_decade`.
std::vector<double> log_frequency_grid(double f_start, double f_stop, int points_per_decade);

/// A = G + jωC (SIMD-dispatched elementwise combine over matching shapes).
/// Shared by the AC and noise sweeps.
void combine_ac_system(const Mat& g, const Mat& c, double omega, CMat& a);

class AcAnalysis {
 public:
  /// `op` is a converged DC solution for `netlist`. Reuses the analysis
  /// object's workspace across sweeps (and across designs in a batch);
  /// not safe to call concurrently on one AcAnalysis instance.
  AcSweep run(Netlist& netlist, const Vec& op, const std::vector<double>& frequencies) const;

  /// One sweep per excitation over a shared factorization: A(ω) = G + jωC
  /// does not depend on source magnitudes, so the combine+factor at each
  /// frequency is done once and back-substituted against every rhs in
  /// `excitations` (capture them with Netlist::build_ac_rhs between
  /// magnitude changes). Solutions are bit-identical to running `run` once
  /// per excitation — the same factored bits back-substitute the same rhs.
  std::vector<AcSweep> run_multi(Netlist& netlist, const Vec& op,
                                 const std::vector<double>& frequencies,
                                 const std::vector<CVec>& excitations) const;

 private:
  mutable Mat g_, c_;
  mutable CVec rhs_;
  mutable linalg::LuWorkComplex lu_;
};

}  // namespace maopt::spice
