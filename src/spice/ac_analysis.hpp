// Small-signal AC analysis: the netlist is linearized at a DC operating
// point and the complex MNA system (G + jwC) x = b is solved per frequency.
#pragma once

#include <vector>

#include "spice/netlist.hpp"

namespace maopt::spice {

struct AcSweep {
  std::vector<double> frequencies;       ///< Hz
  std::vector<CVec> solutions;           ///< one complex solution vector per frequency

  /// Complex voltage of `node` at sweep point `k`.
  std::complex<double> voltage(std::size_t k, int node) const {
    return Netlist::voltage(solutions[k], node);
  }
};

/// Log-spaced frequency grid [f_start, f_stop] with `points_per_decade`.
std::vector<double> log_frequency_grid(double f_start, double f_stop, int points_per_decade);

class AcAnalysis {
 public:
  /// `op` is a converged DC solution for `netlist`.
  AcSweep run(Netlist& netlist, const Vec& op, const std::vector<double>& frequencies) const;
};

}  // namespace maopt::spice
