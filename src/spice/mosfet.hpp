// Square-law (SPICE level-1) MOSFET with channel-length modulation,
// drain/source symmetry (automatic swap for vds < 0), Meyer-style gate
// capacitances, junction capacitances and thermal + flicker noise.
//
// This stands in for the commercial 180 nm BSIM models the paper simulates
// with HSpice: the optimizer treats the simulator as a black box, so what
// matters is a nonlinear, region-dependent, multi-metric response surface
// produced by the same analysis pipeline — not BSIM-level accuracy.
#pragma once

#include <string>

#include "spice/netlist.hpp"

namespace maopt::spice {

enum class MosType { Nmos, Pmos };

struct MosModel {
  MosType type = MosType::Nmos;
  double vth0 = 0.45;        ///< threshold voltage magnitude [V]
  double kp = 280e-6;        ///< transconductance parameter mu*Cox [A/V^2]
  double lambda_l = 0.08e-6; ///< channel-length modulation: lambda = lambda_l / L [1/V]
  double cox = 8.5e-3;       ///< gate oxide capacitance [F/m^2]
  double cov = 3e-10;        ///< gate overlap capacitance per width [F/m]
  double cj_w = 8e-10;       ///< junction capacitance per width [F/m]
  double kf = 3e-25;         ///< flicker noise coefficient [V^2*F]

  /// Body effect (opt-in): vth = vth0 + gamma*(sqrt(phi - vbs) - sqrt(phi))
  /// in the canonical frame (vbs <= 0 for normal reverse-biased junctions;
  /// forward bias is clamped at phi/2 for Newton robustness). gamma = 0
  /// disables it (default, preserving the calibrated testbenches).
  double gamma = 0.0;        ///< body-effect coefficient [sqrt(V)]
  double phi = 0.7;          ///< surface potential 2*phi_F [V]

  /// Subthreshold smoothing (opt-in): replaces the hard cutoff with a
  /// softplus-smoothed effective overdrive vov_eff = s*ln(1 + exp(vov/s)).
  /// Because the drain current is quadratic in vov_eff, the subthreshold
  /// tail decays as exp(2*vov/s); the device uses s = 2*n_ss*vt so the
  /// effective subthreshold slope factor equals n_ss. Strong inversion
  /// recovers exact level-1 behaviour, and gm is C1 across the threshold.
  bool subthreshold = false;
  double n_ss = 1.5;         ///< subthreshold slope factor

  /// Representative 180 nm-class device cards.
  static MosModel nmos_180();
  static MosModel pmos_180();
};

/// Large-signal evaluation result in the canonical (NMOS, vds >= 0) frame.
struct MosEval {
  double id;   ///< drain current [A]
  double gm;   ///< d id / d vgs [S]
  double gds;  ///< d id / d vds [S]
  double gmb = 0.0;  ///< d id / d vbs [S] (body transconductance)
  bool saturated;
  bool cutoff;
};

/// Canonical square-law evaluation; `k = kp * W/L * m`, `lambda` absolute.
MosEval mos_level1_eval(double vgs, double vds, double vth, double k, double lambda);

/// Level-1 evaluation with softplus-smoothed overdrive; `nvt = n_ss * kT/q`.
/// Passing nvt <= 0 reproduces the hard-cutoff mos_level1_eval exactly.
MosEval mos_eval_smooth(double vgs, double vds, double vth, double k, double lambda, double nvt);

class Mosfet final : public Device {
 public:
  /// Terminals: drain, gate, source, bulk. `w`/`l` in meters, `m` parallel multiplier.
  Mosfet(int d, int g, int s, int b, MosModel model, double w, double l, double m = 1.0);

  void stamp_nonlinear(RealStamper& s, const NonlinearStampArgs& args) const override;
  void stamp_ac(ComplexStamper& s, double omega, const Vec& op) const override;
  /// Single-linearize fast path: stamp_ac calls linearize() twice (directly
  /// and again through collect_caps); this evaluates the device model once.
  void stamp_ac_parts(RealStamper& g, RealStamper& c, CVec& rhs, const Vec& op) const override;
  void collect_caps(std::vector<CapacitorStamp>& caps, const Vec& op) const override;
  void collect_noise(std::vector<NoiseSource>& sources, const Vec& op) const override;

  /// Drain current (positive = conventional current into drain for NMOS,
  /// out of drain for PMOS reported as positive magnitude? No: signed,
  /// current flowing drain->source through the channel in real polarity).
  double drain_current(const Vec& x) const;
  MosEval operating_point(const Vec& x) const;

  void set_geometry(double w, double l, double m);
  double width() const { return w_; }
  double length() const { return l_; }
  double multiplier() const { return m_; }
  MosType type() const { return model_.type; }
  int drain() const { return d_; }
  int gate() const { return g_; }
  int source() const { return s_; }
  int bulk() const { return b_; }

 private:
  struct Linearized {
    double gg, gd, gs, gb;  ///< partials of I_D(real) w.r.t. Vg, Vd, Vs, Vb
    double id_real;         ///< current into the real drain terminal
    MosEval canon;          ///< canonical-frame evaluation
  };
  /// Memoized on the four terminal voltages: Newton re-stamps every device
  /// each iteration, but in converged/settled regions (transient tails, DC
  /// sweep plateaus) most devices see unchanged bias and skip the model
  /// evaluation. Identical inputs return the identical stored result.
  Linearized linearize(const Vec& x) const;
  Linearized linearize_uncached(double vg, double vd, double vs, double vb) const;

  struct MeyerCaps {
    double cgs, cgd, cj;  ///< gate-source, gate-drain, junction (per d/s) [F]
  };
  MeyerCaps meyer_caps(const Linearized& lin) const;

  int d_, g_, s_, b_;
  MosModel model_;
  double w_, l_, m_;

  // linearize() memo: raw terminal voltages of the last evaluation and its
  // result. Invalidated by set_geometry() (the model card never changes
  // after construction). Mutable for the same reason analysis workspaces
  // are: caching does not change observable device behaviour.
  mutable double memo_vg_ = 0.0, memo_vd_ = 0.0, memo_vs_ = 0.0, memo_vb_ = 0.0;
  mutable Linearized memo_lin_{};
  mutable bool memo_valid_ = false;
};

}  // namespace maopt::spice
