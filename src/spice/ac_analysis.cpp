#include "spice/ac_analysis.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "linalg/dispatch.hpp"
#include "common/thread_annotations.hpp"
#include "linalg/lu.hpp"

namespace maopt::spice {

namespace {

// A = G + jωC over the flattened n*n system: out is the interleaved
// (re, im) view of the complex MNA matrix. Elementwise and branch-free, so
// the AVX2 clone processes 2 complex entries per 4-wide vector op.
MAOPT_TARGET_CLONES
MAOPT_HOT void combine_gc(const double* g, const double* c, double omega, double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    out[2 * i] = g[i];
    out[2 * i + 1] = omega * c[i];
  }
}

}  // namespace

void combine_ac_system(const Mat& g, const Mat& c, double omega, CMat& a) {
  a.ensure_shape(g.rows(), g.cols());
  combine_gc(g.data().data(), c.data().data(), omega,
             reinterpret_cast<double*>(a.data().data()), g.data().size());
}

std::vector<double> log_frequency_grid(double f_start, double f_stop, int points_per_decade) {
  std::vector<double> freqs;
  const double decades = std::log10(f_stop / f_start);
  const int n = std::max(2, static_cast<int>(std::ceil(decades * points_per_decade)) + 1);
  freqs.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(n - 1);
    freqs.push_back(f_start * std::pow(f_stop / f_start, t));
  }
  return freqs;
}

std::vector<AcSweep> AcAnalysis::run_multi(Netlist& netlist, const Vec& op,
                                           const std::vector<double>& frequencies,
                                           const std::vector<CVec>& excitations) const {
  if (!netlist.prepared()) netlist.prepare();
  std::vector<AcSweep> sweeps(excitations.size());
  for (auto& sweep : sweeps) {
    sweep.frequencies = frequencies;
    sweep.solutions.reserve(frequencies.size());
  }
  netlist.build_ac_parts(op, g_, c_, rhs_);  // rhs_ discarded: callers pass excitations
  for (const double f : frequencies) {
    const double omega = 2.0 * std::numbers::pi * f;
    combine_ac_system(g_, c_, omega, lu_.matrix());
    if (!linalg::lu_factor(lu_)) throw std::runtime_error("LU: matrix is singular");
    for (std::size_t e = 0; e < excitations.size(); ++e) {
      sweeps[e].solutions.emplace_back();
      linalg::lu_solve_factored(lu_, excitations[e], sweeps[e].solutions.back());
    }
  }
  return sweeps;
}

AcSweep AcAnalysis::run(Netlist& netlist, const Vec& op, const std::vector<double>& frequencies) const {
  if (!netlist.prepared()) netlist.prepare();
  AcSweep sweep;
  sweep.frequencies = frequencies;
  sweep.solutions.reserve(frequencies.size());
  netlist.build_ac_parts(op, g_, c_, rhs_);
  for (const double f : frequencies) {
    const double omega = 2.0 * std::numbers::pi * f;
    combine_ac_system(g_, c_, omega, lu_.matrix());
    if (!linalg::lu_factor(lu_)) throw std::runtime_error("LU: matrix is singular");
    sweep.solutions.emplace_back();
    linalg::lu_solve_factored(lu_, rhs_, sweep.solutions.back());
  }
  return sweep;
}

}  // namespace maopt::spice
