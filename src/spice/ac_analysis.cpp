#include "spice/ac_analysis.hpp"

#include <cmath>
#include <numbers>

#include "linalg/lu.hpp"

namespace maopt::spice {

std::vector<double> log_frequency_grid(double f_start, double f_stop, int points_per_decade) {
  std::vector<double> freqs;
  const double decades = std::log10(f_stop / f_start);
  const int n = std::max(2, static_cast<int>(std::ceil(decades * points_per_decade)) + 1);
  freqs.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(n - 1);
    freqs.push_back(f_start * std::pow(f_stop / f_start, t));
  }
  return freqs;
}

AcSweep AcAnalysis::run(Netlist& netlist, const Vec& op, const std::vector<double>& frequencies) const {
  if (!netlist.prepared()) netlist.prepare();
  AcSweep sweep;
  sweep.frequencies = frequencies;
  sweep.solutions.reserve(frequencies.size());
  CMat a;
  CVec rhs;
  for (const double f : frequencies) {
    const double omega = 2.0 * std::numbers::pi * f;
    netlist.build_ac_system(omega, op, a, rhs);
    sweep.solutions.push_back(linalg::lu_solve(std::move(a), rhs));
  }
  return sweep;
}

}  // namespace maopt::spice
