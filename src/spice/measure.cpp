#include "spice/measure.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace maopt::spice {

std::vector<double> magnitude_db(const AcSweep& sweep, int node) {
  std::vector<double> out;
  out.reserve(sweep.frequencies.size());
  for (std::size_t k = 0; k < sweep.frequencies.size(); ++k) {
    const double mag = std::abs(sweep.voltage(k, node));
    out.push_back(20.0 * std::log10(std::max(mag, 1e-30)));
  }
  return out;
}

std::vector<double> phase_deg_unwrapped(const AcSweep& sweep, int node) {
  std::vector<double> out;
  out.reserve(sweep.frequencies.size());
  double prev = 0.0;
  for (std::size_t k = 0; k < sweep.frequencies.size(); ++k) {
    double ph = std::arg(sweep.voltage(k, node)) * 180.0 / std::numbers::pi;
    if (k > 0) {
      while (ph - prev > 180.0) ph -= 360.0;
      while (ph - prev < -180.0) ph += 360.0;
    }
    out.push_back(ph);
    prev = ph;
  }
  return out;
}

double dc_gain_db(const AcSweep& sweep, int node) {
  if (sweep.frequencies.empty()) throw std::invalid_argument("dc_gain_db: empty sweep");
  return 20.0 * std::log10(std::max(std::abs(sweep.voltage(0, node)), 1e-30));
}

std::optional<double> unity_gain_frequency(const AcSweep& sweep, int node) {
  const auto db = magnitude_db(sweep, node);
  for (std::size_t k = 1; k < db.size(); ++k) {
    if (db[k - 1] >= 0.0 && db[k] < 0.0) {
      // Interpolate in log-frequency where gain(dB) hits zero.
      const double t = db[k - 1] / (db[k - 1] - db[k]);
      const double lf = std::log10(sweep.frequencies[k - 1]) +
                        t * (std::log10(sweep.frequencies[k]) - std::log10(sweep.frequencies[k - 1]));
      return std::pow(10.0, lf);
    }
  }
  return std::nullopt;
}

std::optional<double> phase_margin_deg(const AcSweep& sweep, int node) {
  const auto fu = unity_gain_frequency(sweep, node);
  if (!fu) return std::nullopt;
  const auto phase = phase_deg_unwrapped(sweep, node);
  // Interpolate the unwrapped phase at the unity crossing.
  double ph_at_fu = phase.back();
  for (std::size_t k = 1; k < sweep.frequencies.size(); ++k) {
    if (sweep.frequencies[k] >= *fu) {
      const double l0 = std::log10(sweep.frequencies[k - 1]);
      const double l1 = std::log10(sweep.frequencies[k]);
      const double t = (std::log10(*fu) - l0) / (l1 - l0);
      ph_at_fu = phase[k - 1] + t * (phase[k] - phase[k - 1]);
      break;
    }
  }
  // Phase relative to the low-frequency phase handles inverting paths.
  return 180.0 + (ph_at_fu - phase.front());
}

std::optional<double> bandwidth_3db(const AcSweep& sweep, int node) {
  const auto db = magnitude_db(sweep, node);
  const double target = db.front() - 3.0103;
  for (std::size_t k = 1; k < db.size(); ++k) {
    if (db[k - 1] >= target && db[k] < target) {
      const double t = (db[k - 1] - target) / (db[k - 1] - db[k]);
      const double lf = std::log10(sweep.frequencies[k - 1]) +
                        t * (std::log10(sweep.frequencies[k]) - std::log10(sweep.frequencies[k - 1]));
      return std::pow(10.0, lf);
    }
  }
  return std::nullopt;
}

double magnitude_at(const AcSweep& sweep, int node, double f) {
  const auto& freqs = sweep.frequencies;
  if (freqs.empty()) throw std::invalid_argument("magnitude_at: empty sweep");
  if (f <= freqs.front()) return std::abs(sweep.voltage(0, node));
  if (f >= freqs.back()) return std::abs(sweep.voltage(freqs.size() - 1, node));
  for (std::size_t k = 1; k < freqs.size(); ++k) {
    if (freqs[k] >= f) {
      const double t = (std::log10(f) - std::log10(freqs[k - 1])) /
                       (std::log10(freqs[k]) - std::log10(freqs[k - 1]));
      const double m0 = std::abs(sweep.voltage(k - 1, node));
      const double m1 = std::abs(sweep.voltage(k, node));
      return m0 * std::pow(m1 / std::max(m0, 1e-30), t);
    }
  }
  return std::abs(sweep.voltage(freqs.size() - 1, node));
}

std::optional<double> settling_time(const std::vector<double>& time,
                                    const std::vector<double>& waveform, double t_from,
                                    double final_value, double tol) {
  if (time.size() != waveform.size() || time.empty())
    throw std::invalid_argument("settling_time: bad inputs");
  // Scan backwards for the last point outside the band.
  std::optional<double> last_outside;
  for (std::size_t k = time.size(); k-- > 0;) {
    if (time[k] < t_from) break;
    if (std::abs(waveform[k] - final_value) > tol) {
      last_outside = time[k];
      break;
    }
  }
  if (!last_outside) return 0.0;  // already settled at t_from
  if (*last_outside >= time.back()) return std::nullopt;  // never settles
  return *last_outside - t_from;
}

double overshoot_fraction(const std::vector<double>& waveform, std::size_t from_index,
                          double initial_value, double final_value) {
  const double step = final_value - initial_value;
  if (std::abs(step) < 1e-30) return 0.0;
  double worst = 0.0;
  for (std::size_t k = from_index; k < waveform.size(); ++k) {
    const double beyond = (waveform[k] - final_value) * (step > 0 ? 1.0 : -1.0);
    worst = std::max(worst, beyond);
  }
  return worst / std::abs(step);
}

std::optional<double> gain_margin_db(const AcSweep& sweep, int node) {
  const auto phase = phase_deg_unwrapped(sweep, node);
  const auto db = magnitude_db(sweep, node);
  const double ref = phase.front();
  for (std::size_t k = 1; k < phase.size(); ++k) {
    const double p0 = phase[k - 1] - ref;
    const double p1 = phase[k] - ref;
    if (p0 > -180.0 && p1 <= -180.0) {
      const double t = (p0 + 180.0) / (p0 - p1);
      const double mag_db = db[k - 1] + t * (db[k] - db[k - 1]);
      return -mag_db;
    }
  }
  return std::nullopt;
}

double slew_rate(const std::vector<double>& time, const std::vector<double>& waveform) {
  if (time.size() != waveform.size())
    throw std::invalid_argument("slew_rate: size mismatch");
  double best = 0.0;
  for (std::size_t k = 1; k < time.size(); ++k) {
    const double dt = time[k] - time[k - 1];
    if (dt <= 0.0) continue;
    best = std::max(best, std::abs(waveform[k] - waveform[k - 1]) / dt);
  }
  return best;
}

std::optional<double> rise_time(const std::vector<double>& time,
                                const std::vector<double>& waveform, double t_from,
                                double initial_value, double final_value) {
  if (time.size() != waveform.size() || time.empty())
    throw std::invalid_argument("rise_time: bad inputs");
  const double lo = initial_value + 0.1 * (final_value - initial_value);
  const double hi = initial_value + 0.9 * (final_value - initial_value);
  const double direction = final_value > initial_value ? 1.0 : -1.0;
  std::optional<double> t_lo, t_hi;
  for (std::size_t k = 1; k < time.size(); ++k) {
    if (time[k] < t_from) continue;
    auto crossing = [&](double level) -> std::optional<double> {
      const double a = (waveform[k - 1] - level) * direction;
      const double b = (waveform[k] - level) * direction;
      if (a < 0.0 && b >= 0.0) {
        const double t = a / (a - b);
        return time[k - 1] + t * (time[k] - time[k - 1]);
      }
      return std::nullopt;
    };
    if (!t_lo) t_lo = crossing(lo);
    if (!t_hi) t_hi = crossing(hi);
    if (t_lo && t_hi) return *t_hi - *t_lo;
  }
  return std::nullopt;
}

}  // namespace maopt::spice
