#include "spice/parser.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <sstream>

namespace maopt::spice {

namespace {

std::string upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
  return s;
}

/// Splits a line into tokens, treating '(' ')' ',' '=' as separators but
/// keeping '=' pairs reconstructible: "W=10u" -> "W", "=", "10u".
std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::string cur;
  auto flush = [&] {
    if (!cur.empty()) {
      tokens.push_back(cur);
      cur.clear();
    }
  };
  for (const char c : line) {
    if (std::isspace(static_cast<unsigned char>(c)) || c == '(' || c == ')' || c == ',') {
      flush();
    } else if (c == '=') {
      flush();
      tokens.emplace_back("=");
    } else {
      cur.push_back(c);
    }
  }
  flush();
  return tokens;
}

/// key=value map from tokens[start..]; returns consumed tokens count.
std::map<std::string, std::string> parse_kv(const std::vector<std::string>& tokens,
                                            std::size_t start, int line) {
  std::map<std::string, std::string> kv;
  std::size_t i = start;
  while (i < tokens.size()) {
    if (i + 2 < tokens.size() + 1 && i + 1 < tokens.size() && tokens[i + 1] == "=") {
      if (i + 2 >= tokens.size()) throw ParseError(line, "missing value after '" + tokens[i] + "='");
      kv[upper(tokens[i])] = tokens[i + 2];
      i += 3;
    } else {
      throw ParseError(line, "expected key=value, got '" + tokens[i] + "'");
    }
  }
  return kv;
}

}  // namespace

double parse_spice_value(const std::string& token) {
  if (token.empty()) throw std::invalid_argument("empty value");
  std::size_t pos = 0;
  double v;
  try {
    v = std::stod(token, &pos);
  } catch (const std::exception&) {
    throw std::invalid_argument("malformed value '" + token + "'");
  }
  std::string suffix = upper(token.substr(pos));
  if (suffix.empty()) return v;
  // Multi-letter suffixes first — "MEG"/"MIL" must win over milli even with
  // trailing unit letters ("2MEGHz", "5milInch").
  if (suffix.compare(0, 3, "MEG") == 0) return v * 1e6;
  if (suffix.compare(0, 3, "MIL") == 0) return v * 25.4e-6;
  // Single-letter engineering suffixes; trailing unit letters are ignored
  // SPICE-style ("10pF" == "10p").
  switch (suffix[0]) {
    case 'T': return v * 1e12;
    case 'G': return v * 1e9;
    case 'K': return v * 1e3;
    case 'M': return v * 1e-3;
    case 'U': return v * 1e-6;
    case 'N': return v * 1e-9;
    case 'P': return v * 1e-12;
    case 'F': return v * 1e-15;
    default:
      throw std::invalid_argument("unknown suffix '" + suffix + "' in '" + token + "'");
  }
}

ParsedNetlist parse_netlist(const std::string& deck) {
  ParsedNetlist out;
  std::istringstream stream(deck);
  std::string raw;
  int line_no = 0;

  auto node = [&](const std::string& name) { return out.netlist.node(name); };

  while (std::getline(stream, raw)) {
    ++line_no;
    // Strip comments and whitespace.
    const auto semi = raw.find(';');
    if (semi != std::string::npos) raw = raw.substr(0, semi);
    std::vector<std::string> t = tokenize(raw);
    if (t.empty() || t[0][0] == '*') continue;

    const std::string name = upper(t[0]);

    if (name == ".MODEL") {
      if (t.size() < 3) throw ParseError(line_no, ".model needs a name and a type");
      MosModel model;
      const std::string type = upper(t[2]);
      if (type == "NMOS")
        model = MosModel::nmos_180();
      else if (type == "PMOS")
        model = MosModel::pmos_180();
      else
        throw ParseError(line_no, "unknown model type '" + t[2] + "'");
      const auto kv = parse_kv(t, 3, line_no);
      for (const auto& [key, value] : kv) {
        const double v = parse_spice_value(value);
        if (key == "VTO")
          model.vth0 = v;
        else if (key == "KP")
          model.kp = v;
        else if (key == "LAMBDAL")
          model.lambda_l = v;
        else if (key == "COX")
          model.cox = v;
        else if (key == "COV")
          model.cov = v;
        else if (key == "CJW")
          model.cj_w = v;
        else if (key == "KF")
          model.kf = v;
        else if (key == "GAMMA")
          model.gamma = v;
        else if (key == "PHI")
          model.phi = v;
        else if (key == "NSS") {
          model.subthreshold = true;
          model.n_ss = v;
        }
        else
          throw ParseError(line_no, "unknown model parameter '" + key + "'");
      }
      out.models[upper(t[1])] = model;
      continue;
    }
    if (name == ".END") break;  // end of deck — anything after it is not parsed
    if (name[0] == '.') {
      // Unknown dot-cards are almost always a typo or a feature the caller
      // meant to use (deck::elaborate_deck_* handles the full card set) —
      // warn instead of dropping them without a trace.
      out.warnings.push_back("line " + std::to_string(line_no) + ": ignoring unsupported card '" +
                             t[0] + "'");
      continue;
    }

    try {
      switch (name[0]) {
        case 'R': {
          if (t.size() != 4) throw ParseError(line_no, "R: expected Rname n1 n2 value");
          out.devices[name] =
              out.netlist.add<Resistor>(node(t[1]), node(t[2]), parse_spice_value(t[3]));
          break;
        }
        case 'C': {
          if (t.size() != 4) throw ParseError(line_no, "C: expected Cname n1 n2 value");
          out.devices[name] =
              out.netlist.add<Capacitor>(node(t[1]), node(t[2]), parse_spice_value(t[3]));
          break;
        }
        case 'L': {
          if (t.size() != 4) throw ParseError(line_no, "L: expected Lname n1 n2 value");
          out.devices[name] =
              out.netlist.add<Inductor>(node(t[1]), node(t[2]), parse_spice_value(t[3]));
          break;
        }
        case 'V':
        case 'I': {
          if (t.size() < 3) throw ParseError(line_no, "source needs two nodes");
          Waveform wave = Waveform::dc(0.0);
          double ac_mag = 0.0;
          std::size_t i = 3;
          // Bare value shorthand: "V1 a 0 1.8".
          if (i < t.size() && upper(t[i]) != "DC" && upper(t[i]) != "AC" &&
              upper(t[i]) != "PULSE" && upper(t[i]) != "PWL") {
            wave = Waveform::dc(parse_spice_value(t[i]));
            ++i;
          }
          while (i < t.size()) {
            const std::string kw = upper(t[i]);
            if (kw == "DC") {
              if (i + 1 >= t.size()) throw ParseError(line_no, "DC needs a value");
              wave = Waveform::dc(parse_spice_value(t[i + 1]));
              i += 2;
            } else if (kw == "AC") {
              if (i + 1 >= t.size()) throw ParseError(line_no, "AC needs a magnitude");
              ac_mag = parse_spice_value(t[i + 1]);
              i += 2;
            } else if (kw == "PULSE") {
              if (i + 7 >= t.size()) throw ParseError(line_no, "PULSE needs 7 arguments");
              wave = Waveform::pulse(parse_spice_value(t[i + 1]), parse_spice_value(t[i + 2]),
                                     parse_spice_value(t[i + 3]), parse_spice_value(t[i + 4]),
                                     parse_spice_value(t[i + 5]), parse_spice_value(t[i + 6]),
                                     parse_spice_value(t[i + 7]));
              i += 8;
            } else if (kw == "PWL") {
              std::vector<std::pair<double, double>> points;
              ++i;
              while (i < t.size() && upper(t[i]) != "DC" && upper(t[i]) != "AC") {
                if (i + 1 >= t.size()) throw ParseError(line_no, "PWL needs time/value pairs");
                points.emplace_back(parse_spice_value(t[i]), parse_spice_value(t[i + 1]));
                i += 2;
              }
              if (points.empty()) throw ParseError(line_no, "PWL needs at least one pair");
              wave = Waveform::pwl(std::move(points));
            } else {
              throw ParseError(line_no, "unknown source keyword '" + t[i] + "'");
            }
          }
          if (name[0] == 'V')
            out.devices[name] = out.netlist.add<VSource>(node(t[1]), node(t[2]), wave, ac_mag);
          else
            out.devices[name] = out.netlist.add<ISource>(node(t[1]), node(t[2]), wave, ac_mag);
          break;
        }
        case 'E': {
          if (t.size() != 6) throw ParseError(line_no, "E: expected Ename p n cp cn gain");
          out.devices[name] = out.netlist.add<Vcvs>(node(t[1]), node(t[2]), node(t[3]),
                                                    node(t[4]), parse_spice_value(t[5]));
          break;
        }
        case 'M': {
          if (t.size() < 6) throw ParseError(line_no, "M: expected Mname d g s b model [kv...]");
          const auto model_it = out.models.find(upper(t[5]));
          if (model_it == out.models.end())
            throw ParseError(line_no, "unknown model '" + t[5] + "' (missing .model card?)");
          double w = 1e-6, l = 1e-6, m = 1.0;
          for (const auto& [key, value] : parse_kv(t, 6, line_no)) {
            const double v = parse_spice_value(value);
            if (key == "W")
              w = v;
            else if (key == "L")
              l = v;
            else if (key == "M")
              m = v;
            else
              throw ParseError(line_no, "unknown MOSFET parameter '" + key + "'");
          }
          out.devices[name] = out.netlist.add<Mosfet>(node(t[1]), node(t[2]), node(t[3]),
                                                      node(t[4]), model_it->second, w, l, m);
          break;
        }
        default:
          throw ParseError(line_no, "unknown element '" + t[0] + "'");
      }
    } catch (const std::invalid_argument& e) {
      throw ParseError(line_no, e.what());
    }
    if (const auto it = out.devices.find(name); it != out.devices.end())
      out.netlist.set_label(it->second, name);
  }
  out.netlist.prepare();
  return out;
}

}  // namespace maopt::spice
