#include "spice/devices.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace maopt::spice {

namespace {
constexpr double kBoltzmann = 1.380649e-23;
constexpr double kRoomTemp = 300.0;
}  // namespace

// --- Waveform ---

Waveform Waveform::dc(double value) {
  Waveform w;
  w.kind_ = Kind::Dc;
  w.dc_ = value;
  return w;
}

Waveform Waveform::pwl(std::vector<std::pair<double, double>> points) {
  if (points.empty()) throw std::invalid_argument("Waveform::pwl: empty point list");
  Waveform w;
  w.kind_ = Kind::Pwl;
  w.points_ = std::move(points);
  return w;
}

Waveform Waveform::pulse(double v1, double v2, double delay, double rise, double fall,
                         double width, double period) {
  Waveform w;
  w.kind_ = Kind::Pulse;
  w.v1_ = v1;
  w.v2_ = v2;
  w.delay_ = delay;
  w.rise_ = std::max(rise, 1e-15);
  w.fall_ = std::max(fall, 1e-15);
  w.width_ = width;
  w.period_ = period;
  return w;
}

double Waveform::value(double t) const {
  switch (kind_) {
    case Kind::Dc:
      return dc_;
    case Kind::Pwl: {
      if (t <= points_.front().first) return points_.front().second;
      if (t >= points_.back().first) return points_.back().second;
      for (std::size_t i = 1; i < points_.size(); ++i) {
        if (t <= points_[i].first) {
          const auto& [t0, v0] = points_[i - 1];
          const auto& [t1, v1] = points_[i];
          const double frac = (t - t0) / (t1 - t0);
          return v0 + frac * (v1 - v0);
        }
      }
      return points_.back().second;
    }
    case Kind::Pulse: {
      if (t < delay_) return v1_;
      double tp = t - delay_;
      if (period_ > 0.0) tp = std::fmod(tp, period_);
      if (tp < rise_) return v1_ + (v2_ - v1_) * tp / rise_;
      if (tp < rise_ + width_) return v2_;
      if (tp < rise_ + width_ + fall_) return v2_ + (v1_ - v2_) * (tp - rise_ - width_) / fall_;
      return v1_;
    }
  }
  return 0.0;
}

// --- Resistor ---

Resistor::Resistor(int a, int b, double ohms) : a_(a), b_(b), ohms_(ohms) {
  if (!(ohms > 0.0)) throw std::invalid_argument("Resistor: resistance must be positive");
}

void Resistor::set_resistance(double ohms) {
  if (!(ohms > 0.0)) throw std::invalid_argument("Resistor: resistance must be positive");
  ohms_ = ohms;
}

void Resistor::stamp_nonlinear(RealStamper& s, const NonlinearStampArgs&) const {
  s.conductance(a_, b_, 1.0 / ohms_);
}

void Resistor::stamp_ac(ComplexStamper& s, double, const Vec&) const {
  s.conductance(a_, b_, {1.0 / ohms_, 0.0});
}

void Resistor::stamp_ac_parts(RealStamper& g, RealStamper&, CVec&, const Vec&) const {
  g.conductance(a_, b_, 1.0 / ohms_);
}

void Resistor::collect_noise(std::vector<NoiseSource>& sources, const Vec&) const {
  // Johnson-Nyquist thermal noise: S_i = 4 k T / R  [A^2/Hz].
  sources.push_back({a_, b_, 4.0 * kBoltzmann * kRoomTemp / ohms_, 0.0, "R"});
}

// --- Capacitor ---

Capacitor::Capacitor(int a, int b, double farads) : a_(a), b_(b), farads_(farads) {
  if (!(farads >= 0.0)) throw std::invalid_argument("Capacitor: capacitance must be >= 0");
}

void Capacitor::stamp_nonlinear(RealStamper&, const NonlinearStampArgs&) const {
  // Open at DC; the transient engine integrates it via collect_caps().
}

void Capacitor::stamp_ac(ComplexStamper& s, double omega, const Vec&) const {
  s.conductance(a_, b_, {0.0, omega * farads_});
}

void Capacitor::stamp_ac_parts(RealStamper&, RealStamper& c, CVec&, const Vec&) const {
  c.conductance(a_, b_, farads_);
}

void Capacitor::collect_caps(std::vector<CapacitorStamp>& caps, const Vec&) const {
  caps.push_back({a_, b_, farads_});
}

// --- Inductor ---

Inductor::Inductor(int a, int b, double henries) : a_(a), b_(b), henries_(henries) {
  if (!(henries > 0.0)) throw std::invalid_argument("Inductor: inductance must be positive");
}

void Inductor::stamp_nonlinear(RealStamper& s, const NonlinearStampArgs&) const {
  // DC short: V(a) - V(b) = 0 with branch current unknown.
  const int br = branch_base();
  s.add(a_, br, 1.0);
  s.add(b_, br, -1.0);
  s.add(br, a_, 1.0);
  s.add(br, b_, -1.0);
}

void Inductor::stamp_ac(ComplexStamper& s, double omega, const Vec&) const {
  const int br = branch_base();
  s.add(a_, br, {1.0, 0.0});
  s.add(b_, br, {-1.0, 0.0});
  s.add(br, a_, {1.0, 0.0});
  s.add(br, b_, {-1.0, 0.0});
  s.add(br, br, {0.0, -omega * henries_});
}

void Inductor::stamp_ac_parts(RealStamper& g, RealStamper& c, CVec&, const Vec&) const {
  const int br = branch_base();
  g.add(a_, br, 1.0);
  g.add(b_, br, -1.0);
  g.add(br, a_, 1.0);
  g.add(br, b_, -1.0);
  c.add(br, br, -henries_);
}

// --- VSource ---

VSource::VSource(int a, int b, Waveform waveform, double ac_mag)
    : a_(a), b_(b), waveform_(std::move(waveform)), ac_mag_(ac_mag) {}

void VSource::stamp_nonlinear(RealStamper& s, const NonlinearStampArgs& args) const {
  const int br = branch_base();
  s.add(a_, br, 1.0);
  s.add(b_, br, -1.0);
  s.add(br, a_, 1.0);
  s.add(br, b_, -1.0);
  const double v = (args.time < 0.0 ? waveform_.dc_value() : waveform_.value(args.time));
  s.rhs_add(br, v * args.source_scale);
}

void VSource::stamp_ac(ComplexStamper& s, double, const Vec&) const {
  const int br = branch_base();
  s.add(a_, br, {1.0, 0.0});
  s.add(b_, br, {-1.0, 0.0});
  s.add(br, a_, {1.0, 0.0});
  s.add(br, b_, {-1.0, 0.0});
  s.rhs_add(br, {ac_mag_, 0.0});
}

void VSource::stamp_ac_parts(RealStamper& g, RealStamper&, CVec& rhs, const Vec&) const {
  const int br = branch_base();
  g.add(a_, br, 1.0);
  g.add(b_, br, -1.0);
  g.add(br, a_, 1.0);
  g.add(br, b_, -1.0);
  rhs[static_cast<std::size_t>(br)] += std::complex<double>{ac_mag_, 0.0};
}

void VSource::stamp_ac_rhs(CVec& rhs) const {
  rhs[static_cast<std::size_t>(branch_base())] += std::complex<double>{ac_mag_, 0.0};
}

void VSource::collect_time_inputs(double time, Vec& out) const {
  out.push_back(time < 0.0 ? waveform_.dc_value() : waveform_.value(time));
}

// --- ISource ---

ISource::ISource(int a, int b, Waveform waveform, double ac_mag)
    : a_(a), b_(b), waveform_(std::move(waveform)), ac_mag_(ac_mag) {}

void ISource::stamp_nonlinear(RealStamper& s, const NonlinearStampArgs& args) const {
  const double i = (args.time < 0.0 ? waveform_.dc_value() : waveform_.value(args.time)) *
                   args.source_scale;
  s.current_into(a_, -i);
  s.current_into(b_, i);
}

void ISource::stamp_ac(ComplexStamper& s, double, const Vec&) const {
  s.current_into(a_, {-ac_mag_, 0.0});
  s.current_into(b_, {ac_mag_, 0.0});
}

void ISource::stamp_ac_parts(RealStamper&, RealStamper&, CVec& rhs, const Vec&) const {
  if (a_ != kGround) rhs[static_cast<std::size_t>(a_)] += std::complex<double>{-ac_mag_, 0.0};
  if (b_ != kGround) rhs[static_cast<std::size_t>(b_)] += std::complex<double>{ac_mag_, 0.0};
}

void ISource::stamp_ac_rhs(CVec& rhs) const {
  if (a_ != kGround) rhs[static_cast<std::size_t>(a_)] += std::complex<double>{-ac_mag_, 0.0};
  if (b_ != kGround) rhs[static_cast<std::size_t>(b_)] += std::complex<double>{ac_mag_, 0.0};
}

void ISource::collect_time_inputs(double time, Vec& out) const {
  out.push_back(time < 0.0 ? waveform_.dc_value() : waveform_.value(time));
}

// --- CurrentSinkLoad ---

CurrentSinkLoad::CurrentSinkLoad(int a, int b, Waveform current, double v_knee)
    : a_(a), b_(b), current_(std::move(current)), v_knee_(v_knee) {
  if (!(v_knee > 0.0)) throw std::invalid_argument("CurrentSinkLoad: v_knee must be > 0");
}

std::pair<double, double> CurrentSinkLoad::shape(double v) const {
  if (v <= 0.0) return {0.0, 0.0};
  if (v >= v_knee_) return {1.0, 0.0};
  return {v / v_knee_, 1.0 / v_knee_};
}

void CurrentSinkLoad::stamp_nonlinear(RealStamper& s, const NonlinearStampArgs& args) const {
  const double i_target = (args.time < 0.0 ? current_.dc_value() : current_.value(args.time)) *
                          args.source_scale;
  const double v = Netlist::voltage(args.x, a_) - Netlist::voltage(args.x, b_);
  const auto [f, dfdv] = shape(v);
  const double i = i_target * f;
  const double g = i_target * dfdv;
  // Linear companion: i(v') ~ i + g (v' - v)  =>  conductance g + source.
  s.conductance(a_, b_, g);
  const double ieq = i - g * v;
  s.current_into(a_, -ieq);
  s.current_into(b_, ieq);
}

double CurrentSinkLoad::current_at(const Vec& x) const {
  const double v = Netlist::voltage(x, a_) - Netlist::voltage(x, b_);
  return current_.dc_value() * shape(v).first;
}

void CurrentSinkLoad::collect_time_inputs(double time, Vec& out) const {
  out.push_back(time < 0.0 ? current_.dc_value() : current_.value(time));
}

void CurrentSinkLoad::stamp_ac(ComplexStamper& s, double, const Vec& op) const {
  const double v = Netlist::voltage(op, a_) - Netlist::voltage(op, b_);
  const auto [f, dfdv] = shape(v);
  (void)f;
  s.conductance(a_, b_, {current_.dc_value() * dfdv, 0.0});
}

void CurrentSinkLoad::stamp_ac_parts(RealStamper& g, RealStamper&, CVec&, const Vec& op) const {
  const double v = Netlist::voltage(op, a_) - Netlist::voltage(op, b_);
  const auto [f, dfdv] = shape(v);
  (void)f;
  g.conductance(a_, b_, current_.dc_value() * dfdv);
}

// --- Vcvs ---

Vcvs::Vcvs(int p, int n, int cp, int cn, double gain)
    : p_(p), n_(n), cp_(cp), cn_(cn), gain_(gain) {}

void Vcvs::stamp_nonlinear(RealStamper& s, const NonlinearStampArgs&) const {
  const int br = branch_base();
  s.add(p_, br, 1.0);
  s.add(n_, br, -1.0);
  s.add(br, p_, 1.0);
  s.add(br, n_, -1.0);
  s.add(br, cp_, -gain_);
  s.add(br, cn_, gain_);
}

void Vcvs::stamp_ac(ComplexStamper& s, double, const Vec&) const {
  const int br = branch_base();
  s.add(p_, br, {1.0, 0.0});
  s.add(n_, br, {-1.0, 0.0});
  s.add(br, p_, {1.0, 0.0});
  s.add(br, n_, {-1.0, 0.0});
  s.add(br, cp_, {-gain_, 0.0});
  s.add(br, cn_, {gain_, 0.0});
}

void Vcvs::stamp_ac_parts(RealStamper& g, RealStamper&, CVec&, const Vec&) const {
  const int br = branch_base();
  g.add(p_, br, 1.0);
  g.add(n_, br, -1.0);
  g.add(br, p_, 1.0);
  g.add(br, n_, -1.0);
  g.add(br, cp_, -gain_);
  g.add(br, cn_, gain_);
}

}  // namespace maopt::spice
