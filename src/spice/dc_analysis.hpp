// DC operating-point analysis: damped Newton-Raphson over the nonlinear MNA
// system, with gmin stepping and source stepping as convergence fallbacks
// (the standard HSPICE-style continuation ladder).
#pragma once

#include <array>
#include <cstddef>
#include <optional>

#include "linalg/lu.hpp"
#include "spice/netlist.hpp"

namespace maopt::spice {

struct DcOptions {
  int max_iterations = 200;
  double v_tol = 1e-6;        ///< node-voltage convergence tolerance [V]
  double i_tol = 1e-9;        ///< branch-current convergence tolerance [A]
  double max_step = 0.5;      ///< per-iteration node-voltage step clamp [V]
  double gmin = 1e-12;        ///< final gmin value [S]
  bool allow_gmin_stepping = true;
  bool allow_source_stepping = true;
};

struct DcResult {
  Vec x;            ///< node voltages then branch currents
  bool converged = false;
  int iterations = 0;
  std::string method;  ///< "direct", "gmin", or "source"
};

/// Reusable storage for the Newton loop: the Jacobian (inside the pivoted LU
/// workspace), the residual, and the candidate iterate. One workspace reused
/// across Newton calls — the continuation ladder, every transient step, every
/// design in a batch — makes the loop allocation-free in steady state.
/// Also accumulates the solver effort counters the benchmarks report.
struct NewtonWorkspace {
  linalg::LuWorkReal lu;
  Vec rhs;
  Vec x_new;
  std::size_t solves = 0;      ///< newton() invocations
  std::size_t iterations = 0;  ///< total Newton iterations (incl. memo hits)

  /// Identical-system memo, used only on transient steps (companion-model
  /// solves): in the settled tail of a waveform the assembled (A, rhs)
  /// repeats bit-identically, so the cached solution of those exact bits —
  /// a pure function of them — replaces the factor+solve. Two slots because
  /// the trapezoidal companion current alternates sign when the node
  /// voltages are static (i' = geq·(v_new − v_prev) − i = −i), making the
  /// settled system period-2, not period-1.
  struct MemoSlot {
    Mat a;
    Vec rhs;
    Vec x;
    bool valid = false;
  };
  std::array<MemoSlot, 2> memo;
  std::size_t memo_next = 0;  ///< round-robin replacement cursor
  std::size_t memo_hits = 0;  ///< factor+solves skipped via the memo
};

class DcAnalysis {
 public:
  explicit DcAnalysis(DcOptions options = {}) : options_(options) {}

  /// Solves for the operating point; `initial_guess` (if given and the right
  /// size) seeds Newton — essential for fast DC sweeps. Reuses the analysis
  /// object's internal workspace, so one DcAnalysis solving many points (a
  /// DC sweep, a batch of designs) performs zero steady-state allocations.
  /// Not safe to call concurrently on one DcAnalysis instance.
  DcResult solve(Netlist& netlist, const Vec* initial_guess = nullptr) const;

  /// Inner Newton loop at fixed gmin / source scale; exposed for the
  /// transient engine, which performs its own continuation over time.
  static bool newton(const Netlist& netlist, double source_scale, double time, double gmin,
                     const DcOptions& options, Vec& x, int* iterations_out, NewtonWorkspace& ws,
                     const std::vector<CapacitorStamp>* companion_caps = nullptr,
                     const Vec* companion_ieq = nullptr);

  /// Convenience overload with a throwaway workspace (cold paths, tests).
  static bool newton(const Netlist& netlist, double source_scale, double time, double gmin,
                     const DcOptions& options, Vec& x, int* iterations_out,
                     const std::vector<CapacitorStamp>* companion_caps = nullptr,
                     const Vec* companion_ieq = nullptr);

  /// Solver-effort counters and buffers (inspection only; benchmarks report
  /// Newton-iterations/solve, tests assert buffer pointer stability).
  const NewtonWorkspace& workspace() const { return ws_; }

 private:
  DcOptions options_;
  mutable NewtonWorkspace ws_;
};

}  // namespace maopt::spice
