// DC operating-point analysis: damped Newton-Raphson over the nonlinear MNA
// system, with gmin stepping and source stepping as convergence fallbacks
// (the standard HSPICE-style continuation ladder).
#pragma once

#include <optional>

#include "spice/netlist.hpp"

namespace maopt::spice {

struct DcOptions {
  int max_iterations = 200;
  double v_tol = 1e-6;        ///< node-voltage convergence tolerance [V]
  double i_tol = 1e-9;        ///< branch-current convergence tolerance [A]
  double max_step = 0.5;      ///< per-iteration node-voltage step clamp [V]
  double gmin = 1e-12;        ///< final gmin value [S]
  bool allow_gmin_stepping = true;
  bool allow_source_stepping = true;
};

struct DcResult {
  Vec x;            ///< node voltages then branch currents
  bool converged = false;
  int iterations = 0;
  std::string method;  ///< "direct", "gmin", or "source"
};

class DcAnalysis {
 public:
  explicit DcAnalysis(DcOptions options = {}) : options_(options) {}

  /// Solves for the operating point; `initial_guess` (if given and the right
  /// size) seeds Newton — essential for fast DC sweeps.
  DcResult solve(Netlist& netlist, const Vec* initial_guess = nullptr) const;

  /// Inner Newton loop at fixed gmin / source scale; exposed for the
  /// transient engine, which performs its own continuation over time.
  static bool newton(const Netlist& netlist, double source_scale, double time, double gmin,
                     const DcOptions& options, Vec& x, int* iterations_out,
                     const std::vector<CapacitorStamp>* companion_caps = nullptr,
                     const Vec* companion_ieq = nullptr);

 private:
  DcOptions options_;
};

}  // namespace maopt::spice
