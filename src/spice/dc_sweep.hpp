// DC sweep analysis: re-solve the operating point across a grid of values
// of one swept quantity (a source voltage/current or any caller-provided
// setter), warm-starting each point from the previous solution — the
// engine behind transfer curves, output-swing and regulation measurements.
#pragma once

#include <functional>
#include <vector>

#include "spice/dc_analysis.hpp"
#include "spice/netlist.hpp"

namespace maopt::spice {

struct DcSweepResult {
  std::vector<double> values;   ///< swept values actually solved
  std::vector<Vec> solutions;   ///< one operating point per value
  std::vector<bool> converged;  ///< per-point convergence flag
  bool all_converged = true;

  /// Waveform of one node across the sweep (non-converged points hold the
  /// last converged solution's value).
  std::vector<double> node_curve(int node) const {
    std::vector<double> v;
    v.reserve(solutions.size());
    for (const auto& x : solutions) v.push_back(Netlist::voltage(x, node));
    return v;
  }
};

class DcSweep {
 public:
  explicit DcSweep(DcOptions options = {}) : options_(options) {}

  /// Sweeps by calling `apply(value)` before each solve. Points are solved
  /// in order with warm starts; a failed point falls back to the full
  /// continuation ladder before being marked non-converged.
  DcSweepResult run(Netlist& netlist, const std::vector<double>& values,
                    const std::function<void(double)>& apply) const;

  /// Convenience: linear grid [from, to] with `points` samples.
  static std::vector<double> linear_grid(double from, double to, int points);

 private:
  DcOptions options_;
};

}  // namespace maopt::spice
